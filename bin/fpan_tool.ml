(* Command-line tool for inspecting, checking, and searching FPANs. *)

open Cmdliner

let find_network name =
  match List.assoc_opt name Fpan.Networks.all with
  | Some net -> net
  | None ->
      Printf.eprintf "unknown network %s; available: %s\n" name
        (String.concat ", " (List.map fst Fpan.Networks.all));
      exit 2

let terms_of name = int_of_string (String.sub name (String.length name - 1) 1)

let check_network name cases seed =
  let net = find_network name in
  let n = terms_of name in
  let report =
    if String.length name >= 3 && String.sub name 0 3 = "mul" then
      Fpan.Checker.check_mul net ~terms:n ~expand:(Fpan.Networks.mul_expand n) ~cases ~seed
    else Fpan.Checker.check_add net ~terms:n ~cases ~seed
  in
  Format.printf "%s: %a@." name Fpan.Checker.pp_report report;
  Fpan.Checker.passed report

let list_cmd =
  let doc = "List all networks with size, depth, and flop counts." in
  let run () =
    Format.printf "%-6s %6s %6s %6s %10s@." "name" "size" "depth" "flops" "error";
    List.iter
      (fun (name, net) ->
        Format.printf "%-6s %6d %6d %6d %10s@." name (Fpan.Network.size net)
          (Fpan.Network.depth net) (Fpan.Network.flops net)
          (Printf.sprintf "2^-%d" net.Fpan.Network.error_exp))
      Fpan.Networks.all
  in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

let name_arg = Arg.(required & pos 0 (some string) None & info [] ~docv:"NETWORK")

let cases_arg =
  Arg.(value & opt int 100_000 & info [ "cases"; "n" ] ~docv:"N" ~doc:"Number of random cases.")

let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed.")

let show_cmd =
  let doc = "Print the gate listing of a network." in
  let run name = Format.printf "%a@." Fpan.Network.pp (find_network name) in
  Cmd.v (Cmd.info "show" ~doc) Term.(const run $ name_arg)

let check_cmd =
  let doc = "Check a network's correctness conditions on random adversarial inputs." in
  let run name cases seed = if not (check_network name cases seed) then exit 1 in
  Cmd.v (Cmd.info "check" ~doc) Term.(const run $ name_arg $ cases_arg $ seed_arg)

let check_all_cmd =
  let doc = "Check every network." in
  let run cases seed =
    let ok = List.for_all (fun (name, _) -> check_network name cases seed) Fpan.Networks.all in
    if not ok then exit 1
  in
  Cmd.v (Cmd.info "check-all" ~doc) Term.(const run $ cases_arg $ seed_arg)

let dot_cmd =
  let doc = "Emit a Graphviz rendering of a network." in
  let run name = print_string (Fpan.Dot.render (find_network name)) in
  Cmd.v (Cmd.info "dot" ~doc) Term.(const run $ name_arg)

let search_cmd =
  let doc = "Run the simulated-annealing search to shrink a network." in
  let steps_arg =
    Arg.(value & opt int 20_000 & info [ "steps" ] ~docv:"N" ~doc:"Annealing steps.")
  in
  let run name steps seed =
    let net = find_network name in
    let n = terms_of name in
    let is_mul = String.length name >= 3 && String.sub name 0 3 = "mul" in
    let best = Fpan.Search.anneal ~seed ~steps ~terms:n ~is_mul net in
    Format.printf "%a@." Fpan.Network.pp best
  in
  Cmd.v (Cmd.info "search" ~doc) Term.(const run $ name_arg $ steps_arg $ seed_arg)

let analyze_cmd =
  let doc = "Print the static exponent-domain certificate for a network." in
  let run name =
    let net = find_network name in
    let n = terms_of name in
    let kind =
      if String.length name >= 3 && String.sub name 0 3 = "mul" then Fpan.Analyze.Mul_inputs n
      else Fpan.Analyze.Add_inputs n
    in
    let r = Fpan.Analyze.analyze net kind in
    Format.printf "%s: %a@." name Fpan.Analyze.pp r;
    Format.printf "claimed bound 2^-%d; static certificate proves 2^%d in the no-cancellation regime@."
      net.Fpan.Network.error_exp r.Fpan.Analyze.discarded_total_exponent
  in
  Cmd.v (Cmd.info "analyze" ~doc) Term.(const run $ name_arg)

let enumerate_cmd =
  let doc =
    "Exhaustively enumerate all 2-term-addition FPANs of a given size against the Figure 2 \
     specification (the lower-bound half of the paper's optimality proof)."
  in
  let size_arg = Arg.(value & opt int 4 & info [ "size" ] ~docv:"N" ~doc:"Gate count to enumerate.") in
  let run size cases =
    let r = Fpan.Enumerate.search_size ~size ~checker_cases:cases () in
    Format.printf "size %d: %a@." size Fpan.Enumerate.pp_result r;
    List.iter (fun net -> Format.printf "%a@." Fpan.Network.pp net) r.Fpan.Enumerate.verified_correct;
    if r.Fpan.Enumerate.verified_correct = [] then
      Format.printf "no %d-gate FPAN meets the Figure 2 specification@." size
  in
  Cmd.v (Cmd.info "enumerate" ~doc) Term.(const run $ size_arg $ cases_arg)

let check_n_cmd =
  let doc = "Check the programmatic n-term addition network (any n >= 2)." in
  let n_arg = Arg.(required & pos 0 (some int) None & info [] ~docv:"N") in
  let run n cases seed =
    let net = Fpan.Networks.add_n n in
    Format.printf "%a@." Fpan.Network.pp net;
    let report = Fpan.Checker.check_add net ~terms:n ~cases ~seed in
    Format.printf "%a@." Fpan.Checker.pp_report report;
    if not (Fpan.Checker.passed report) then exit 1
  in
  Cmd.v (Cmd.info "check-n" ~doc) Term.(const run $ n_arg $ cases_arg $ seed_arg)

let fuzz_cmd =
  let doc =
    "Differential fuzz of every extended-precision implementation (MultiFloat scalar and batch, \
     QD, CAMPARY, software FPU) against the exact-arithmetic oracle, with ulp histograms, \
     bitwise scalar-vs-batch comparison, and counterexample shrinking.  Writes a JSON audit \
     report and exits nonzero on any gated failure."
  in
  let cases_arg =
    Arg.(value & opt int Check.Fuzz.default.Check.Fuzz.cases
         & info [ "cases"; "n" ] ~docv:"N" ~doc:"Scalar cases per precision tier.")
  in
  let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed.") in
  let ops_arg =
    Arg.(value & opt (some string) None
         & info [ "ops" ] ~docv:"OPS"
             ~doc:"Comma-separated operation filter (add,sub,mul,div,sqrt,dot,axpy,gemv).")
  in
  let tiers_arg =
    Arg.(value & opt (some string) None
         & info [ "tiers" ] ~docv:"TIERS" ~doc:"Comma-separated term counts to audit (2,3,4).")
  in
  let vec_len_arg =
    Arg.(value & opt int Check.Fuzz.default.Check.Fuzz.vec_len
         & info [ "vec-len" ] ~docv:"N" ~doc:"Vector length for DOT/AXPY/GEMV cases.")
  in
  let out_arg =
    Arg.(value & opt string "CHECK_report.json"
         & info [ "out"; "o" ] ~docv:"FILE" ~doc:"Where to write the JSON audit report.")
  in
  let split_commas s = String.split_on_char ',' s |> List.filter (fun p -> p <> "") in
  let run cases seed ops tiers vec_len out =
    (* The harness must prove it can catch a broken renormalization
       before its clean bill of health means anything. *)
    (match Check.Fuzz.self_test () with
    | Error msg ->
        prerr_endline msg;
        exit 2
    | Ok (finding, _, terms) ->
        Printf.printf
          "self-test: sloppy_add caught (%s on %s corpus, %.3g ulps), shrunk to %d terms\n%!"
          (Check.Differ.kind_name finding.Check.Differ.kind)
          (Check.Corpus.cls_name finding.Check.Differ.cls)
          finding.Check.Differ.ulps terms);
    let cfg =
      { Check.Fuzz.default with
        Check.Fuzz.cases; seed; vec_len;
        ops =
          (match ops with
          | None -> Check.Fuzz.default.Check.Fuzz.ops
          | Some s -> List.map Check.Corpus.op_of_name (split_commas s));
        tiers =
          (match tiers with
          | None -> Check.Fuzz.default.Check.Fuzz.tiers
          | Some s -> List.map int_of_string (split_commas s))
      }
    in
    let report = Check.Fuzz.run cfg in
    List.iter
      (fun row ->
        let st = row.Check.Fuzz.stats in
        Printf.printf "%-10s %-5s %s  cases %7d  skipped %5d  max %10.4g ulps  mean %10.4g%s\n"
          row.Check.Fuzz.impl row.Check.Fuzz.op
          (if row.Check.Fuzz.gated then "gated" else "audit")
          (Check.Ulp_stats.count st)
          (Check.Ulp_stats.skipped st)
          (Check.Ulp_stats.max_ulps st) (Check.Ulp_stats.mean st)
          (if Check.Ulp_stats.exceed st > 0 then
             Printf.sprintf "  EXCEED %d" (Check.Ulp_stats.exceed st)
           else ""))
      report.Check.Fuzz.rows;
    List.iter
      (fun f ->
        Printf.printf "FAIL %s %s [%s] %s: shrunk to %d terms\n"
          f.Check.Fuzz.finding.Check.Differ.impl
          (Check.Corpus.op_name f.Check.Fuzz.finding.Check.Differ.op)
          (Check.Corpus.cls_name f.Check.Fuzz.finding.Check.Differ.cls)
          (Check.Differ.kind_name f.Check.Fuzz.finding.Check.Differ.kind)
          f.Check.Fuzz.shrunk_terms;
        Array.iteri
          (fun i o ->
            Printf.printf "  operand %d: %s\n" i
              (String.concat " " (Array.to_list (Array.map (Printf.sprintf "%h") o))))
          f.Check.Fuzz.shrunk)
      report.Check.Fuzz.failures;
    Check.Fuzz.write_report out report;
    Printf.printf "%d scalar + %d vector cases; %d failure(s); report: %s\n"
      report.Check.Fuzz.scalar_cases report.Check.Fuzz.vector_cases
      report.Check.Fuzz.failure_count out;
    if not (Check.Fuzz.passed report) then exit 1
  in
  Cmd.v (Cmd.info "fuzz" ~doc)
    Term.(const run $ cases_arg $ seed_arg $ ops_arg $ tiers_arg $ vec_len_arg $ out_arg)

(* ------------------------------------------------------------------ *)
(* bench-sched: worker-count scaling curve of the work-stealing tiled
   GEMM engine (lib/runtime), with execution telemetry and bitwise
   determinism checks against the sequential batched kernel and the
   legacy Parallel.Pool row-parallel path. *)

let bench_sched_run n terms workers_csv reps tile sweep obs out =
  let module B =
    (val (match terms with
         | 2 -> (module Blas.Instances.Mf2 : Blas.Numeric.BATCHED)
         | 3 -> (module Blas.Instances.Mf3)
         | 4 -> (module Blas.Instances.Mf4)
         | t ->
             Printf.eprintf "bench-sched: --terms must be 2, 3, or 4 (got %d)\n" t;
             exit 2))
  in
  let module K = Blas.Kernels.Make_batched (B) in
  let workers =
    String.split_on_char ',' workers_csv
    |> List.filter_map (fun s ->
           match int_of_string_opt (String.trim s) with
           | Some w when w >= 1 -> Some w
           | _ -> None)
  in
  let workers = if workers = [] then [ 1; 2; 4 ] else workers in
  let rng = Random.State.make [| 0x5ced; n; terms |] in
  let rand_vec len = K.vec_of_floats (Array.init len (fun _ -> Random.State.float rng 2.0 -. 1.0)) in
  let a = rand_vec (n * n) and b = rand_vec (n * n) in
  let ops = n * n * n in
  let time_gemm f =
    (* fresh C per rep (GEMM accumulates); one warmup, then best-of *)
    f (K.V.create (n * n));
    let best = ref infinity and result = ref None in
    for _ = 1 to max 1 reps do
      let c = K.V.create (n * n) in
      let t0 = Unix.gettimeofday () in
      f c;
      let dt = Unix.gettimeofday () -. t0 in
      if dt < !best then best := dt;
      result := Some (K.vec_to_floats c)
    done;
    (!best, Option.get !result)
  in
  let gops dt = Float.of_int ops /. dt *. 1e-9 in
  Printf.printf "bench-sched: %d-bit GEMM, n = %d, tile %dx%d, best of %d\n" B.bits n (fst tile)
    (snd tile) reps;
  let t_seq, ref_c = time_gemm (fun c -> K.gemm ~m:n ~n ~k:n ~a ~b ~c) in
  Printf.printf "  sequential batched kernel: %.4f s  (%.4f Gop/s)\n" t_seq (gops t_seq);
  let mismatches = ref 0 in
  let module J = Check.Json_out in
  if obs then begin
    Obs.Trace.set_enabled true;
    Obs.Trace.clear ();
    Obs.Metrics.reset ()
  end;
  let last_sched = ref None in
  let curve =
    List.map
      (fun w ->
        Runtime.Sched.with_sched ~workers:w (fun rt ->
            Runtime.Sched.reset_stats rt;
            let t_rt, c_rt = time_gemm (fun c -> K.gemm_rt rt ~tile ~m:n ~n ~k:n ~a ~b ~c ()) in
            let stats = Runtime.Sched.stats rt in
            let bitwise = c_rt = ref_c in
            if not bitwise then incr mismatches;
            let t_pool, c_pool =
              Parallel.Pool.with_pool ~domains:w (fun pool ->
                  time_gemm (fun c -> K.gemm_pool pool ~m:n ~n ~k:n ~a ~b ~c))
            in
            if c_pool <> ref_c then incr mismatches;
            let steals = Array.fold_left (fun acc s -> acc + s.Runtime.Sched.steals) 0 stats in
            Printf.printf
              "  %2d worker%s: runtime %.4f s (%.4f Gop/s, %.2fx vs seq, %d steals)  pool %.4f s  bitwise %s\n"
              w
              (if w = 1 then " " else "s")
              t_rt (gops t_rt) (t_seq /. t_rt) steals t_pool
              (if bitwise then "ok" else "MISMATCH");
            let telemetry = Runtime.Sched.stats_json stats in
            last_sched := Some telemetry;
            J.Obj
              [ ("workers", J.Num (Float.of_int w));
                ("runtime_wall_s", J.Num t_rt);
                ("runtime_gops", J.Num (gops t_rt));
                ("speedup_vs_seq", J.Num (t_seq /. t_rt));
                ("pool_wall_s", J.Num t_pool);
                ("pool_gops", J.Num (gops t_pool));
                ("bitwise_equal_seq", J.Bool bitwise);
                ("telemetry", telemetry) ]))
      workers
  in
  let tile_sweep =
    if not sweep then []
    else begin
      Printf.printf "  tile sweep (workers = %d):\n" (List.hd workers);
      List.map
        (fun t ->
          let dt, c =
            Runtime.Sched.with_sched ~workers:(List.hd workers) (fun rt ->
                time_gemm (fun cc -> K.gemm_rt rt ~tile:(t, t) ~m:n ~n ~k:n ~a ~b ~c:cc ()))
          in
          if c <> ref_c then incr mismatches;
          Printf.printf "    %3dx%-3d: %.4f s  (%.4f Gop/s)\n" t t dt (gops dt);
          J.Obj [ ("tile", J.Num (Float.of_int t)); ("wall_s", J.Num dt); ("gops", J.Num (gops dt)) ])
        [ 8; 16; 32; 64; 128 ]
    end
  in
  (* With --obs the whole curve ran traced: export the spans as a
     Chrome trace plus an fpan-trace/1 summary (the summary's sched
     rows are the last curve point's telemetry, verbatim) and link
     both from the BENCH json. *)
  let obs_block =
    if not obs then []
    else begin
      Obs.Trace.set_enabled false;
      let dropped = Obs.Trace.dropped () in
      let spans = Obs.Trace.drain () in
      let unbalanced = Obs.Trace.unbalanced () in
      let base = Filename.remove_extension out in
      let summary_path = base ^ "_trace.json" in
      let chrome_path = base ^ "_chrome_trace.json" in
      let summary =
        Obs.Export.summary ~workload:"bench-sched" ?sched:!last_sched ~spans
          ~metrics:(Obs.Metrics.snapshot ()) ~dropped ~unbalanced ()
      in
      Obs.Schema.check ~name:summary_path Obs.Schemas.trace_summary summary;
      let chrome = Obs.Export.chrome_trace spans in
      Obs.Schema.check ~name:chrome_path Obs.Schemas.chrome_trace chrome;
      Obs.Export.write_json summary_path summary;
      Obs.Export.write_json chrome_path chrome;
      Printf.printf "  trace summary: %s; chrome trace: %s (%d spans, %d dropped)\n" summary_path
        chrome_path (List.length spans) dropped;
      [ ("obs", J.Obj [ ("trace_summary", J.Str summary_path); ("chrome_trace", J.Str chrome_path) ]) ]
    end
  in
  let json =
    J.Obj
      ([ ("schema", J.Str "fpan-bench-sched/1");
         ("kernel", J.Str "GEMM");
         ("bits", J.Num (Float.of_int B.bits));
         ("n", J.Num (Float.of_int n));
         ("tile_m", J.Num (Float.of_int (fst tile)));
         ("tile_n", J.Num (Float.of_int (snd tile)));
         ("reps", J.Num (Float.of_int reps));
         ("seq_wall_s", J.Num t_seq);
         ("seq_gops", J.Num (gops t_seq));
         ("curve", J.List curve) ]
      @ (if tile_sweep = [] then [] else [ ("tile_sweep", J.List tile_sweep) ])
      @ obs_block)
  in
  Obs.Schema.check ~name:out Obs.Schemas.bench_sched json;
  J.write_file out json;
  Printf.printf "  scaling curve written to %s\n" out;
  if !mismatches > 0 then begin
    Printf.eprintf "bench-sched: %d bitwise mismatch(es) -- determinism violated\n" !mismatches;
    exit 1
  end

let bench_sched_cmd =
  let doc =
    "Benchmark the work-stealing tiled GEMM runtime across worker counts (scaling curve, \
     per-worker telemetry, bitwise-determinism checks)."
  in
  let n_arg =
    Arg.(value & opt int 256 & info [ "n"; "size" ] ~docv:"N" ~doc:"Matrix dimension.")
  in
  let terms_arg =
    Arg.(value & opt int 2 & info [ "terms" ] ~docv:"T" ~doc:"MultiFloat terms (2, 3, or 4).")
  in
  let workers_arg =
    Arg.(
      value & opt string "1,2,4"
      & info [ "workers" ] ~docv:"W,W,..." ~doc:"Comma-separated worker counts.")
  in
  let reps_arg =
    Arg.(value & opt int 3 & info [ "reps" ] ~docv:"R" ~doc:"Timed repetitions (best-of).")
  in
  let tile_arg =
    let parse s =
      match String.split_on_char 'x' (String.lowercase_ascii s) with
      | [ a ] | [ a; "" ] -> (
          match int_of_string_opt a with Some t when t > 0 -> Ok (t, t) | _ -> Error (`Msg "bad tile"))
      | [ a; b ] -> (
          match (int_of_string_opt a, int_of_string_opt b) with
          | Some tm, Some tn when tm > 0 && tn > 0 -> Ok (tm, tn)
          | _ -> Error (`Msg "bad tile"))
      | _ -> Error (`Msg "bad tile")
    in
    let print ppf (tm, tn) = Format.fprintf ppf "%dx%d" tm tn in
    Arg.(
      value
      & opt (conv (parse, print)) (32, 32)
      & info [ "tile" ] ~docv:"MxN" ~doc:"GEMM tile size (e.g. 32 or 32x64).")
  in
  let sweep_arg =
    Arg.(value & flag & info [ "sweep-tiles" ] ~doc:"Also sweep square tile sizes 8..128.")
  in
  let obs_arg =
    Arg.(
      value & flag
      & info [ "obs" ]
          ~doc:
            "Trace the whole run and also write a Chrome trace and an fpan-trace/1 summary next \
             to the output file.")
  in
  let out_arg =
    Arg.(
      value & opt string "BENCH_sched.json"
      & info [ "out"; "o" ] ~docv:"FILE" ~doc:"JSON output path.")
  in
  Cmd.v
    (Cmd.info "bench-sched" ~doc)
    Term.(
      const bench_sched_run $ n_arg $ terms_arg $ workers_arg $ reps_arg $ tile_arg $ sweep_arg
      $ obs_arg $ out_arg)

(* ------------------------------------------------------------------ *)
(* trace: run an instrumented workload untraced then traced, measure
   the overhead, and export the Chrome trace + fpan-trace/1 summary.
   The summary's sched rows are Sched.stats_json verbatim; we parse
   the written file back and demand the rows survived the round trip
   bitwise, which is the acceptance check that BENCH telemetry and
   trace telemetry cannot disagree. *)

let trace_run workload n terms workers reps out_prefix =
  let module J = Check.Json_out in
  (* One execution of the workload: wall seconds plus the per-worker
     telemetry when a scheduler was involved. *)
  let execute =
    match workload with
    | "gemm" ->
        let module B =
          (val (match terms with
               | 2 -> (module Blas.Instances.Mf2 : Blas.Numeric.BATCHED)
               | 3 -> (module Blas.Instances.Mf3)
               | 4 -> (module Blas.Instances.Mf4)
               | t ->
                   Printf.eprintf "trace: --terms must be 2, 3, or 4 (got %d)\n" t;
                   exit 2))
        in
        let module K = Blas.Kernels.Make_batched (B) in
        let rng = Random.State.make [| 0x7ace; n; terms |] in
        let rand_vec len =
          K.vec_of_floats (Array.init len (fun _ -> Random.State.float rng 2.0 -. 1.0))
        in
        let a = rand_vec (n * n) and b = rand_vec (n * n) in
        fun () ->
          Runtime.Sched.with_sched ~workers (fun rt ->
              Runtime.Sched.reset_stats rt;
              let c = K.V.create (n * n) in
              let t0 = Unix.gettimeofday () in
              K.gemm_rt rt ~m:n ~n ~k:n ~a ~b ~c ();
              let wall = Unix.gettimeofday () -. t0 in
              (wall, Some (Runtime.Sched.stats_json (Runtime.Sched.stats rt))))
    | "refine" ->
        let module M = Multifloat.Mf2 in
        let module RB = Linalg.Refine_batched (M) (Multifloat.Batch.Mf2v) in
        let rng = Random.State.make [| 0xbeef; n |] in
        let a = Array.init (n * n) (fun _ -> Random.State.float rng 2.0 -. 1.0) in
        for i = 0 to n - 1 do
          (* diagonally dominant, so refinement converges *)
          a.((i * n) + i) <- a.((i * n) + i) +. Float.of_int n
        done;
        let b = Array.init n (fun _ -> M.of_float (Random.State.float rng 2.0 -. 1.0)) in
        fun () ->
          Runtime.Sched.with_sched ~workers (fun rt ->
              Runtime.Sched.reset_stats rt;
              let t0 = Unix.gettimeofday () in
              let _x, _stats = RB.solve ~rt ~n ~a ~b () in
              let wall = Unix.gettimeofday () -. t0 in
              (wall, Some (Runtime.Sched.stats_json (Runtime.Sched.stats rt))))
    | "fuzz" ->
        let cfg =
          { Check.Fuzz.default with Check.Fuzz.cases = Stdlib.max 50 n; tiers = [ 2; 3 ] }
        in
        fun () ->
          let t0 = Unix.gettimeofday () in
          let r = Check.Fuzz.run cfg in
          ignore r.Check.Fuzz.failure_count;
          (Unix.gettimeofday () -. t0, None)
    | w ->
        Printf.eprintf "trace: unknown workload %s (gemm, refine, fuzz)\n" w;
        exit 2
  in
  let best_of reps =
    let best = ref infinity and sched = ref None in
    for _ = 1 to Stdlib.max 1 reps do
      let dt, s = execute () in
      if dt < !best then best := dt;
      sched := s (* telemetry of the most recent run *)
    done;
    (!best, !sched)
  in
  ignore (execute ()) (* warmup *);
  Obs.Trace.set_enabled false;
  let t_un, _ = best_of reps in
  Obs.Trace.set_enabled true;
  ignore (execute ()) (* traced warmup: creates the per-domain rings *);
  Obs.Trace.clear ();
  Obs.Metrics.reset ();
  let t_tr, sched = best_of reps in
  Obs.Trace.set_enabled false;
  let dropped = Obs.Trace.dropped () in
  let spans = Obs.Trace.drain () in
  let unbalanced = Obs.Trace.unbalanced () in
  let metrics = Obs.Metrics.snapshot () in
  let overhead_pct = (t_tr -. t_un) /. t_un *. 100.0 in
  let overhead =
    J.Obj
      [ ("untraced_wall_s", J.Num t_un);
        ("traced_wall_s", J.Num t_tr);
        ("overhead_pct", J.Num overhead_pct) ]
  in
  let summary =
    Obs.Export.summary ~workload ?sched ~extra:[ ("overhead", overhead) ] ~spans ~metrics
      ~dropped ~unbalanced ()
  in
  let summary_path = Printf.sprintf "%s_%s.json" out_prefix workload in
  let chrome_path = Printf.sprintf "%s_%s_chrome.json" out_prefix workload in
  Obs.Schema.check ~name:summary_path Obs.Schemas.trace_summary summary;
  let chrome = Obs.Export.chrome_trace spans in
  Obs.Schema.check ~name:chrome_path Obs.Schemas.chrome_trace chrome;
  Obs.Export.write_json summary_path summary;
  Obs.Export.write_json chrome_path chrome;
  Printf.printf "trace %s: untraced %.4f s, traced %.4f s (overhead %+.2f%%)\n" workload t_un t_tr
    overhead_pct;
  Printf.printf "  %d spans (%d dropped, %d unbalanced); summary %s; chrome trace %s\n"
    (List.length spans) dropped unbalanced summary_path chrome_path;
  (* round-trip cross-check: the sched rows in the file on disk must
     be bitwise the rows Sched.stats produced *)
  match sched with
  | None -> ()
  | Some expect -> (
      match J.parse_file summary_path with
      | Error msg ->
          Printf.eprintf "trace: cannot re-read %s: %s\n" summary_path msg;
          exit 1
      | Ok doc -> (
          match J.member "sched" doc with
          | Some got when J.to_string got = J.to_string expect ->
              Printf.printf "  sched telemetry round-trips bitwise against Sched.stats: ok\n"
          | _ ->
              Printf.eprintf "trace: sched telemetry in %s differs from Sched.stats\n" summary_path;
              exit 1))

let trace_cmd =
  let doc =
    "Run an instrumented workload with tracing off then on, report the tracing overhead, and \
     export a Chrome trace (load in Perfetto / about:tracing) plus an fpan-trace/1 summary whose \
     scheduler telemetry is bitwise that of Runtime.Sched.stats."
  in
  let workload_arg =
    Arg.(value & pos 0 string "gemm" & info [] ~docv:"WORKLOAD" ~doc:"gemm, refine, or fuzz.")
  in
  let n_arg =
    Arg.(value & opt int 192
         & info [ "n"; "size" ] ~docv:"N"
             ~doc:"Problem size (matrix dimension; for fuzz: scalar cases per tier).")
  in
  let terms_arg =
    Arg.(value & opt int 2 & info [ "terms" ] ~docv:"T" ~doc:"MultiFloat terms (gemm only).")
  in
  let workers_arg =
    Arg.(value & opt int 4 & info [ "workers" ] ~docv:"W" ~doc:"Scheduler worker count.")
  in
  let reps_arg =
    Arg.(value & opt int 3 & info [ "reps" ] ~docv:"R" ~doc:"Timed repetitions (best-of).")
  in
  let out_arg =
    Arg.(value & opt string "TRACE"
         & info [ "out"; "o" ] ~docv:"PREFIX" ~doc:"Output path prefix.")
  in
  Cmd.v (Cmd.info "trace" ~doc)
    Term.(const trace_run $ workload_arg $ n_arg $ terms_arg $ workers_arg $ reps_arg $ out_arg)

let () =
  let doc = "Inspect and verify floating-point accumulation networks." in
  let info = Cmd.info "fpan_tool" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ list_cmd; show_cmd; check_cmd; check_all_cmd; check_n_cmd; dot_cmd; search_cmd; analyze_cmd; enumerate_cmd; fuzz_cmd; bench_sched_cmd; trace_cmd ]))
