(* Command-line tool for inspecting, checking, and searching FPANs. *)

open Cmdliner

(* SIGINT/SIGTERM on a long-running subcommand: drain every live
   scheduler (running registered drain hooks, so in-flight work and
   artifacts flush) before dying with the conventional 128+signum
   status. *)
let drain_on_signal () =
  let handler signum =
    prerr_endline "fpan_tool: signal received, draining schedulers";
    (try Runtime.Sched.drain_all () with _ -> ());
    exit (128 + signum)
  in
  List.iter
    (fun s -> try Sys.set_signal s (Sys.Signal_handle handler) with _ -> ())
    [ Sys.sigint; Sys.sigterm ]

let find_network name =
  match List.assoc_opt name Fpan.Networks.all with
  | Some net -> net
  | None ->
      Printf.eprintf "unknown network %s; available: %s\n" name
        (String.concat ", " (List.map fst Fpan.Networks.all));
      exit 2

let terms_of name = int_of_string (String.sub name (String.length name - 1) 1)

let check_network name cases seed =
  let net = find_network name in
  let n = terms_of name in
  let report =
    if String.length name >= 3 && String.sub name 0 3 = "mul" then
      Fpan.Checker.check_mul net ~terms:n ~expand:(Fpan.Networks.mul_expand n) ~cases ~seed
    else Fpan.Checker.check_add net ~terms:n ~cases ~seed
  in
  Format.printf "%s: %a@." name Fpan.Checker.pp_report report;
  Fpan.Checker.passed report

let list_cmd =
  let doc = "List all networks with size, depth, and flop counts." in
  let run () =
    Format.printf "%-6s %6s %6s %6s %10s@." "name" "size" "depth" "flops" "error";
    List.iter
      (fun (name, net) ->
        Format.printf "%-6s %6d %6d %6d %10s@." name (Fpan.Network.size net)
          (Fpan.Network.depth net) (Fpan.Network.flops net)
          (Printf.sprintf "2^-%d" net.Fpan.Network.error_exp))
      Fpan.Networks.all
  in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

let name_arg = Arg.(required & pos 0 (some string) None & info [] ~docv:"NETWORK")

let cases_arg =
  Arg.(value & opt int 100_000 & info [ "cases"; "n" ] ~docv:"N" ~doc:"Number of random cases.")

let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed.")

let show_cmd =
  let doc = "Print the gate listing of a network." in
  let run name = Format.printf "%a@." Fpan.Network.pp (find_network name) in
  Cmd.v (Cmd.info "show" ~doc) Term.(const run $ name_arg)

let check_cmd =
  let doc = "Check a network's correctness conditions on random adversarial inputs." in
  let run name cases seed = if not (check_network name cases seed) then exit 1 in
  Cmd.v (Cmd.info "check" ~doc) Term.(const run $ name_arg $ cases_arg $ seed_arg)

let check_all_cmd =
  let doc = "Check every network." in
  let run cases seed =
    let ok = List.for_all (fun (name, _) -> check_network name cases seed) Fpan.Networks.all in
    if not ok then exit 1
  in
  Cmd.v (Cmd.info "check-all" ~doc) Term.(const run $ cases_arg $ seed_arg)

let dot_cmd =
  let doc = "Emit a Graphviz rendering of a network." in
  let run name = print_string (Fpan.Dot.render (find_network name)) in
  Cmd.v (Cmd.info "dot" ~doc) Term.(const run $ name_arg)

let search_cmd =
  let doc = "Run the simulated-annealing search to shrink a network." in
  let steps_arg =
    Arg.(value & opt int 20_000 & info [ "steps" ] ~docv:"N" ~doc:"Annealing steps.")
  in
  let run name steps seed =
    let net = find_network name in
    let n = terms_of name in
    let is_mul = String.length name >= 3 && String.sub name 0 3 = "mul" in
    let best = Fpan.Search.anneal ~seed ~steps ~terms:n ~is_mul net in
    Format.printf "%a@." Fpan.Network.pp best
  in
  Cmd.v (Cmd.info "search" ~doc) Term.(const run $ name_arg $ steps_arg $ seed_arg)

let analyze_cmd =
  let doc = "Print the static exponent-domain certificate for a network." in
  let run name =
    let net = find_network name in
    let n = terms_of name in
    let kind =
      if String.length name >= 3 && String.sub name 0 3 = "mul" then Fpan.Analyze.Mul_inputs n
      else Fpan.Analyze.Add_inputs n
    in
    let r = Fpan.Analyze.analyze net kind in
    Format.printf "%s: %a@." name Fpan.Analyze.pp r;
    Format.printf "claimed bound 2^-%d; static certificate proves 2^%d in the no-cancellation regime@."
      net.Fpan.Network.error_exp r.Fpan.Analyze.discarded_total_exponent
  in
  Cmd.v (Cmd.info "analyze" ~doc) Term.(const run $ name_arg)

let enumerate_cmd =
  let doc =
    "Exhaustively enumerate all 2-term-addition FPANs of a given size against the Figure 2 \
     specification (the lower-bound half of the paper's optimality proof)."
  in
  let size_arg = Arg.(value & opt int 4 & info [ "size" ] ~docv:"N" ~doc:"Gate count to enumerate.") in
  let run size cases =
    let r = Fpan.Enumerate.search_size ~size ~checker_cases:cases () in
    Format.printf "size %d: %a@." size Fpan.Enumerate.pp_result r;
    List.iter (fun net -> Format.printf "%a@." Fpan.Network.pp net) r.Fpan.Enumerate.verified_correct;
    if r.Fpan.Enumerate.verified_correct = [] then
      Format.printf "no %d-gate FPAN meets the Figure 2 specification@." size
  in
  Cmd.v (Cmd.info "enumerate" ~doc) Term.(const run $ size_arg $ cases_arg)

let check_n_cmd =
  let doc = "Check the programmatic n-term addition network (any n >= 2)." in
  let n_arg = Arg.(required & pos 0 (some int) None & info [] ~docv:"N") in
  let run n cases seed =
    let net = Fpan.Networks.add_n n in
    Format.printf "%a@." Fpan.Network.pp net;
    let report = Fpan.Checker.check_add net ~terms:n ~cases ~seed in
    Format.printf "%a@." Fpan.Checker.pp_report report;
    if not (Fpan.Checker.passed report) then exit 1
  in
  Cmd.v (Cmd.info "check-n" ~doc) Term.(const run $ n_arg $ cases_arg $ seed_arg)

let fuzz_cmd =
  let doc =
    "Differential fuzz of every extended-precision implementation (MultiFloat scalar and batch, \
     QD, CAMPARY, software FPU) against the exact-arithmetic oracle, with ulp histograms, \
     bitwise scalar-vs-batch comparison, and counterexample shrinking.  Writes a JSON audit \
     report and exits nonzero on any gated failure."
  in
  let cases_arg =
    Arg.(value & opt int Check.Fuzz.default.Check.Fuzz.cases
         & info [ "cases"; "n" ] ~docv:"N" ~doc:"Scalar cases per precision tier.")
  in
  let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed.") in
  let ops_arg =
    Arg.(value & opt (some string) None
         & info [ "ops" ] ~docv:"OPS"
             ~doc:"Comma-separated operation filter (add,sub,mul,div,sqrt,dot,axpy,gemv).")
  in
  let tiers_arg =
    Arg.(value & opt (some string) None
         & info [ "tiers" ] ~docv:"TIERS" ~doc:"Comma-separated term counts to audit (2,3,4).")
  in
  let vec_len_arg =
    Arg.(value & opt int Check.Fuzz.default.Check.Fuzz.vec_len
         & info [ "vec-len" ] ~docv:"N" ~doc:"Vector length for DOT/AXPY/GEMV cases.")
  in
  let out_arg =
    Arg.(value & opt string "CHECK_report.json"
         & info [ "out"; "o" ] ~docv:"FILE" ~doc:"Where to write the JSON audit report.")
  in
  let split_commas s = String.split_on_char ',' s |> List.filter (fun p -> p <> "") in
  let run cases seed ops tiers vec_len out =
    drain_on_signal ();
    (* The harness must prove it can catch a broken renormalization
       before its clean bill of health means anything. *)
    (match Check.Fuzz.self_test () with
    | Error msg ->
        prerr_endline msg;
        exit 2
    | Ok (finding, _, terms) ->
        Printf.printf
          "self-test: sloppy_add caught (%s on %s corpus, %.3g ulps), shrunk to %d terms\n%!"
          (Check.Differ.kind_name finding.Check.Differ.kind)
          (Check.Corpus.cls_name finding.Check.Differ.cls)
          finding.Check.Differ.ulps terms);
    let cfg =
      { Check.Fuzz.default with
        Check.Fuzz.cases; seed; vec_len;
        ops =
          (match ops with
          | None -> Check.Fuzz.default.Check.Fuzz.ops
          | Some s -> List.map Check.Corpus.op_of_name (split_commas s));
        tiers =
          (match tiers with
          | None -> Check.Fuzz.default.Check.Fuzz.tiers
          | Some s -> List.map int_of_string (split_commas s))
      }
    in
    let report = Check.Fuzz.run cfg in
    List.iter
      (fun row ->
        let st = row.Check.Fuzz.stats in
        Printf.printf "%-10s %-5s %s  cases %7d  skipped %5d  max %10.4g ulps  mean %10.4g%s\n"
          row.Check.Fuzz.impl row.Check.Fuzz.op
          (if row.Check.Fuzz.gated then "gated" else "audit")
          (Check.Ulp_stats.count st)
          (Check.Ulp_stats.skipped st)
          (Check.Ulp_stats.max_ulps st) (Check.Ulp_stats.mean st)
          (if Check.Ulp_stats.exceed st > 0 then
             Printf.sprintf "  EXCEED %d" (Check.Ulp_stats.exceed st)
           else ""))
      report.Check.Fuzz.rows;
    List.iter
      (fun f ->
        Printf.printf "FAIL %s %s [%s] %s: shrunk to %d terms\n"
          f.Check.Fuzz.finding.Check.Differ.impl
          (Check.Corpus.op_name f.Check.Fuzz.finding.Check.Differ.op)
          (Check.Corpus.cls_name f.Check.Fuzz.finding.Check.Differ.cls)
          (Check.Differ.kind_name f.Check.Fuzz.finding.Check.Differ.kind)
          f.Check.Fuzz.shrunk_terms;
        Array.iteri
          (fun i o ->
            Printf.printf "  operand %d: %s\n" i
              (String.concat " " (Array.to_list (Array.map (Printf.sprintf "%h") o))))
          f.Check.Fuzz.shrunk)
      report.Check.Fuzz.failures;
    Check.Fuzz.write_report out report;
    Printf.printf "%d scalar + %d vector cases; %d failure(s); report: %s\n"
      report.Check.Fuzz.scalar_cases report.Check.Fuzz.vector_cases
      report.Check.Fuzz.failure_count out;
    if not (Check.Fuzz.passed report) then exit 1
  in
  Cmd.v (Cmd.info "fuzz" ~doc)
    Term.(const run $ cases_arg $ seed_arg $ ops_arg $ tiers_arg $ vec_len_arg $ out_arg)

(* ------------------------------------------------------------------ *)
(* bench-sched: worker-count scaling curve of the work-stealing tiled
   GEMM engine (lib/runtime), with execution telemetry and bitwise
   determinism checks against the sequential batched kernel and the
   legacy Parallel.Pool row-parallel path. *)

let bench_sched_run n terms workers_csv reps tile sweep obs out =
  drain_on_signal ();
  let module B =
    (val (match terms with
         | 2 -> (module Blas.Instances.Mf2 : Blas.Numeric.BATCHED)
         | 3 -> (module Blas.Instances.Mf3)
         | 4 -> (module Blas.Instances.Mf4)
         | t ->
             Printf.eprintf "bench-sched: --terms must be 2, 3, or 4 (got %d)\n" t;
             exit 2))
  in
  let module K = Blas.Kernels.Make_batched (B) in
  let workers =
    String.split_on_char ',' workers_csv
    |> List.filter_map (fun s ->
           match int_of_string_opt (String.trim s) with
           | Some w when w >= 1 -> Some w
           | _ -> None)
  in
  let workers = if workers = [] then [ 1; 2; 4 ] else workers in
  let rng = Random.State.make [| 0x5ced; n; terms |] in
  let rand_vec len = K.vec_of_floats (Array.init len (fun _ -> Random.State.float rng 2.0 -. 1.0)) in
  let a = rand_vec (n * n) and b = rand_vec (n * n) in
  let ops = n * n * n in
  let time_gemm f =
    (* fresh C per rep (GEMM accumulates); one warmup, then best-of *)
    f (K.V.create (n * n));
    let best = ref infinity and result = ref None in
    for _ = 1 to max 1 reps do
      let c = K.V.create (n * n) in
      let t0 = Unix.gettimeofday () in
      f c;
      let dt = Unix.gettimeofday () -. t0 in
      if dt < !best then best := dt;
      result := Some (K.vec_to_floats c)
    done;
    (!best, Option.get !result)
  in
  let gops dt = Float.of_int ops /. dt *. 1e-9 in
  Printf.printf "bench-sched: %d-bit GEMM, n = %d, tile %dx%d, best of %d\n" B.bits n (fst tile)
    (snd tile) reps;
  let t_seq, ref_c = time_gemm (fun c -> K.gemm ~m:n ~n ~k:n ~a ~b ~c) in
  Printf.printf "  sequential batched kernel: %.4f s  (%.4f Gop/s)\n" t_seq (gops t_seq);
  let mismatches = ref 0 in
  let module J = Check.Json_out in
  if obs then begin
    Obs.Trace.set_enabled true;
    Obs.Trace.clear ();
    Obs.Metrics.reset ()
  end;
  let last_sched = ref None in
  let curve =
    List.map
      (fun w ->
        Runtime.Sched.with_sched ~workers:w (fun rt ->
            Runtime.Sched.reset_stats rt;
            let t_rt, c_rt = time_gemm (fun c -> K.gemm_rt rt ~tile ~m:n ~n ~k:n ~a ~b ~c ()) in
            let stats = Runtime.Sched.stats rt in
            let bitwise = c_rt = ref_c in
            if not bitwise then incr mismatches;
            let t_pool, c_pool =
              Parallel.Pool.with_pool ~domains:w (fun pool ->
                  time_gemm (fun c -> K.gemm_pool pool ~m:n ~n ~k:n ~a ~b ~c))
            in
            if c_pool <> ref_c then incr mismatches;
            let steals = Array.fold_left (fun acc s -> acc + s.Runtime.Sched.steals) 0 stats in
            Printf.printf
              "  %2d worker%s: runtime %.4f s (%.4f Gop/s, %.2fx vs seq, %d steals)  pool %.4f s  bitwise %s\n"
              w
              (if w = 1 then " " else "s")
              t_rt (gops t_rt) (t_seq /. t_rt) steals t_pool
              (if bitwise then "ok" else "MISMATCH");
            let telemetry = Runtime.Sched.stats_json stats in
            last_sched := Some telemetry;
            J.Obj
              [ ("workers", J.Num (Float.of_int w));
                ("runtime_wall_s", J.Num t_rt);
                ("runtime_gops", J.Num (gops t_rt));
                ("speedup_vs_seq", J.Num (t_seq /. t_rt));
                ("pool_wall_s", J.Num t_pool);
                ("pool_gops", J.Num (gops t_pool));
                ("bitwise_equal_seq", J.Bool bitwise);
                ("telemetry", telemetry) ]))
      workers
  in
  let tile_sweep =
    if not sweep then []
    else begin
      Printf.printf "  tile sweep (workers = %d):\n" (List.hd workers);
      List.map
        (fun t ->
          let dt, c =
            Runtime.Sched.with_sched ~workers:(List.hd workers) (fun rt ->
                time_gemm (fun cc -> K.gemm_rt rt ~tile:(t, t) ~m:n ~n ~k:n ~a ~b ~c:cc ()))
          in
          if c <> ref_c then incr mismatches;
          Printf.printf "    %3dx%-3d: %.4f s  (%.4f Gop/s)\n" t t dt (gops dt);
          J.Obj [ ("tile", J.Num (Float.of_int t)); ("wall_s", J.Num dt); ("gops", J.Num (gops dt)) ])
        [ 8; 16; 32; 64; 128 ]
    end
  in
  (* With --obs the whole curve ran traced: export the spans as a
     Chrome trace plus an fpan-trace/1 summary (the summary's sched
     rows are the last curve point's telemetry, verbatim) and link
     both from the BENCH json. *)
  let obs_block =
    if not obs then []
    else begin
      Obs.Trace.set_enabled false;
      let dropped = Obs.Trace.dropped () in
      let spans = Obs.Trace.drain () in
      let unbalanced = Obs.Trace.unbalanced () in
      let base = Filename.remove_extension out in
      let summary_path = base ^ "_trace.json" in
      let chrome_path = base ^ "_chrome_trace.json" in
      let summary =
        Obs.Export.summary ~workload:"bench-sched" ?sched:!last_sched ~spans
          ~metrics:(Obs.Metrics.snapshot ()) ~dropped ~unbalanced ()
      in
      Obs.Schema.check ~name:summary_path Obs.Schemas.trace_summary summary;
      let chrome = Obs.Export.chrome_trace spans in
      Obs.Schema.check ~name:chrome_path Obs.Schemas.chrome_trace chrome;
      Obs.Export.write_json summary_path summary;
      Obs.Export.write_json chrome_path chrome;
      Printf.printf "  trace summary: %s; chrome trace: %s (%d spans, %d dropped)\n" summary_path
        chrome_path (List.length spans) dropped;
      [ ("obs", J.Obj [ ("trace_summary", J.Str summary_path); ("chrome_trace", J.Str chrome_path) ]) ]
    end
  in
  let json =
    J.Obj
      ([ ("schema", J.Str "fpan-bench-sched/1");
         ("kernel", J.Str "GEMM");
         ("bits", J.Num (Float.of_int B.bits));
         ("n", J.Num (Float.of_int n));
         ("tile_m", J.Num (Float.of_int (fst tile)));
         ("tile_n", J.Num (Float.of_int (snd tile)));
         ("reps", J.Num (Float.of_int reps));
         ("seq_wall_s", J.Num t_seq);
         ("seq_gops", J.Num (gops t_seq));
         ("curve", J.List curve) ]
      @ (if tile_sweep = [] then [] else [ ("tile_sweep", J.List tile_sweep) ])
      @ obs_block)
  in
  Obs.Schema.check ~name:out Obs.Schemas.bench_sched json;
  J.write_file out json;
  Printf.printf "  scaling curve written to %s\n" out;
  if !mismatches > 0 then begin
    Printf.eprintf "bench-sched: %d bitwise mismatch(es) -- determinism violated\n" !mismatches;
    exit 1
  end

let bench_sched_cmd =
  let doc =
    "Benchmark the work-stealing tiled GEMM runtime across worker counts (scaling curve, \
     per-worker telemetry, bitwise-determinism checks)."
  in
  let n_arg =
    Arg.(value & opt int 256 & info [ "n"; "size" ] ~docv:"N" ~doc:"Matrix dimension.")
  in
  let terms_arg =
    Arg.(value & opt int 2 & info [ "terms" ] ~docv:"T" ~doc:"MultiFloat terms (2, 3, or 4).")
  in
  let workers_arg =
    Arg.(
      value & opt string "1,2,4"
      & info [ "workers" ] ~docv:"W,W,..." ~doc:"Comma-separated worker counts.")
  in
  let reps_arg =
    Arg.(value & opt int 3 & info [ "reps" ] ~docv:"R" ~doc:"Timed repetitions (best-of).")
  in
  let tile_arg =
    let parse s =
      match String.split_on_char 'x' (String.lowercase_ascii s) with
      | [ a ] | [ a; "" ] -> (
          match int_of_string_opt a with Some t when t > 0 -> Ok (t, t) | _ -> Error (`Msg "bad tile"))
      | [ a; b ] -> (
          match (int_of_string_opt a, int_of_string_opt b) with
          | Some tm, Some tn when tm > 0 && tn > 0 -> Ok (tm, tn)
          | _ -> Error (`Msg "bad tile"))
      | _ -> Error (`Msg "bad tile")
    in
    let print ppf (tm, tn) = Format.fprintf ppf "%dx%d" tm tn in
    Arg.(
      value
      & opt (conv (parse, print)) (32, 32)
      & info [ "tile" ] ~docv:"MxN" ~doc:"GEMM tile size (e.g. 32 or 32x64).")
  in
  let sweep_arg =
    Arg.(value & flag & info [ "sweep-tiles" ] ~doc:"Also sweep square tile sizes 8..128.")
  in
  let obs_arg =
    Arg.(
      value & flag
      & info [ "obs" ]
          ~doc:
            "Trace the whole run and also write a Chrome trace and an fpan-trace/1 summary next \
             to the output file.")
  in
  let out_arg =
    Arg.(
      value & opt string "BENCH_sched.json"
      & info [ "out"; "o" ] ~docv:"FILE" ~doc:"JSON output path.")
  in
  Cmd.v
    (Cmd.info "bench-sched" ~doc)
    Term.(
      const bench_sched_run $ n_arg $ terms_arg $ workers_arg $ reps_arg $ tile_arg $ sweep_arg
      $ obs_arg $ out_arg)

(* ------------------------------------------------------------------ *)
(* trace: run an instrumented workload untraced then traced, measure
   the overhead, and export the Chrome trace + fpan-trace/1 summary.
   The summary's sched rows are Sched.stats_json verbatim; we parse
   the written file back and demand the rows survived the round trip
   bitwise, which is the acceptance check that BENCH telemetry and
   trace telemetry cannot disagree. *)

let trace_run workload n terms workers reps out_prefix =
  drain_on_signal ();
  let module J = Check.Json_out in
  (* One execution of the workload: wall seconds plus the per-worker
     telemetry when a scheduler was involved. *)
  let execute =
    match workload with
    | "gemm" ->
        let module B =
          (val (match terms with
               | 2 -> (module Blas.Instances.Mf2 : Blas.Numeric.BATCHED)
               | 3 -> (module Blas.Instances.Mf3)
               | 4 -> (module Blas.Instances.Mf4)
               | t ->
                   Printf.eprintf "trace: --terms must be 2, 3, or 4 (got %d)\n" t;
                   exit 2))
        in
        let module K = Blas.Kernels.Make_batched (B) in
        let rng = Random.State.make [| 0x7ace; n; terms |] in
        let rand_vec len =
          K.vec_of_floats (Array.init len (fun _ -> Random.State.float rng 2.0 -. 1.0))
        in
        let a = rand_vec (n * n) and b = rand_vec (n * n) in
        fun () ->
          Runtime.Sched.with_sched ~workers (fun rt ->
              Runtime.Sched.reset_stats rt;
              let c = K.V.create (n * n) in
              let t0 = Unix.gettimeofday () in
              K.gemm_rt rt ~m:n ~n ~k:n ~a ~b ~c ();
              let wall = Unix.gettimeofday () -. t0 in
              (wall, Some (Runtime.Sched.stats_json (Runtime.Sched.stats rt))))
    | "refine" ->
        let module M = Multifloat.Mf2 in
        let module RB = Linalg.Refine_batched (M) (Multifloat.Batch.Mf2v) in
        let rng = Random.State.make [| 0xbeef; n |] in
        let a = Array.init (n * n) (fun _ -> Random.State.float rng 2.0 -. 1.0) in
        for i = 0 to n - 1 do
          (* diagonally dominant, so refinement converges *)
          a.((i * n) + i) <- a.((i * n) + i) +. Float.of_int n
        done;
        let b = Array.init n (fun _ -> M.of_float (Random.State.float rng 2.0 -. 1.0)) in
        fun () ->
          Runtime.Sched.with_sched ~workers (fun rt ->
              Runtime.Sched.reset_stats rt;
              let t0 = Unix.gettimeofday () in
              let _x, _stats = RB.solve ~rt ~n ~a ~b () in
              let wall = Unix.gettimeofday () -. t0 in
              (wall, Some (Runtime.Sched.stats_json (Runtime.Sched.stats rt))))
    | "fuzz" ->
        let cfg =
          { Check.Fuzz.default with Check.Fuzz.cases = Stdlib.max 50 n; tiers = [ 2; 3 ] }
        in
        fun () ->
          let t0 = Unix.gettimeofday () in
          let r = Check.Fuzz.run cfg in
          ignore r.Check.Fuzz.failure_count;
          (Unix.gettimeofday () -. t0, None)
    | w ->
        Printf.eprintf "trace: unknown workload %s (gemm, refine, fuzz)\n" w;
        exit 2
  in
  let best_of reps =
    let best = ref infinity and sched = ref None in
    for _ = 1 to Stdlib.max 1 reps do
      let dt, s = execute () in
      if dt < !best then best := dt;
      sched := s (* telemetry of the most recent run *)
    done;
    (!best, !sched)
  in
  ignore (execute ()) (* warmup *);
  Obs.Trace.set_enabled false;
  let t_un, _ = best_of reps in
  Obs.Trace.set_enabled true;
  ignore (execute ()) (* traced warmup: creates the per-domain rings *);
  Obs.Trace.clear ();
  Obs.Metrics.reset ();
  let t_tr, sched = best_of reps in
  Obs.Trace.set_enabled false;
  let dropped = Obs.Trace.dropped () in
  let spans = Obs.Trace.drain () in
  let unbalanced = Obs.Trace.unbalanced () in
  let metrics = Obs.Metrics.snapshot () in
  let overhead_pct = (t_tr -. t_un) /. t_un *. 100.0 in
  let overhead =
    J.Obj
      [ ("untraced_wall_s", J.Num t_un);
        ("traced_wall_s", J.Num t_tr);
        ("overhead_pct", J.Num overhead_pct) ]
  in
  let summary =
    Obs.Export.summary ~workload ?sched ~extra:[ ("overhead", overhead) ] ~spans ~metrics
      ~dropped ~unbalanced ()
  in
  let summary_path = Printf.sprintf "%s_%s.json" out_prefix workload in
  let chrome_path = Printf.sprintf "%s_%s_chrome.json" out_prefix workload in
  Obs.Schema.check ~name:summary_path Obs.Schemas.trace_summary summary;
  let chrome = Obs.Export.chrome_trace spans in
  Obs.Schema.check ~name:chrome_path Obs.Schemas.chrome_trace chrome;
  Obs.Export.write_json summary_path summary;
  Obs.Export.write_json chrome_path chrome;
  Printf.printf "trace %s: untraced %.4f s, traced %.4f s (overhead %+.2f%%)\n" workload t_un t_tr
    overhead_pct;
  Printf.printf "  %d spans (%d dropped, %d unbalanced); summary %s; chrome trace %s\n"
    (List.length spans) dropped unbalanced summary_path chrome_path;
  (* round-trip cross-check: the sched rows in the file on disk must
     be bitwise the rows Sched.stats produced *)
  match sched with
  | None -> ()
  | Some expect -> (
      match J.parse_file summary_path with
      | Error msg ->
          Printf.eprintf "trace: cannot re-read %s: %s\n" summary_path msg;
          exit 1
      | Ok doc -> (
          match J.member "sched" doc with
          | Some got when J.to_string got = J.to_string expect ->
              Printf.printf "  sched telemetry round-trips bitwise against Sched.stats: ok\n"
          | _ ->
              Printf.eprintf "trace: sched telemetry in %s differs from Sched.stats\n" summary_path;
              exit 1))

let trace_cmd =
  let doc =
    "Run an instrumented workload with tracing off then on, report the tracing overhead, and \
     export a Chrome trace (load in Perfetto / about:tracing) plus an fpan-trace/1 summary whose \
     scheduler telemetry is bitwise that of Runtime.Sched.stats."
  in
  let workload_arg =
    Arg.(value & pos 0 string "gemm" & info [] ~docv:"WORKLOAD" ~doc:"gemm, refine, or fuzz.")
  in
  let n_arg =
    Arg.(value & opt int 192
         & info [ "n"; "size" ] ~docv:"N"
             ~doc:"Problem size (matrix dimension; for fuzz: scalar cases per tier).")
  in
  let terms_arg =
    Arg.(value & opt int 2 & info [ "terms" ] ~docv:"T" ~doc:"MultiFloat terms (gemm only).")
  in
  let workers_arg =
    Arg.(value & opt int 4 & info [ "workers" ] ~docv:"W" ~doc:"Scheduler worker count.")
  in
  let reps_arg =
    Arg.(value & opt int 3 & info [ "reps" ] ~docv:"R" ~doc:"Timed repetitions (best-of).")
  in
  let out_arg =
    Arg.(value & opt string "TRACE"
         & info [ "out"; "o" ] ~docv:"PREFIX" ~doc:"Output path prefix.")
  in
  Cmd.v (Cmd.info "trace" ~doc)
    Term.(const trace_run $ workload_arg $ n_arg $ terms_arg $ workers_arg $ reps_arg $ out_arg)

(* ------------------------------------------------------------------ *)
(* serve / loadgen: the batched extended-precision evaluation service
   (lib/serve) and its load generator. *)

module SP = Serve.Protocol

let parse_endpoint s : Serve.Server.addr =
  if String.contains s '/' then Serve.Server.Unix_path s
  else
    match String.rindex_opt s ':' with
    | Some i -> (
        match int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1)) with
        | Some port -> Serve.Server.Tcp { host = String.sub s 0 i; port }
        | None -> Serve.Server.Unix_path s)
    | None -> Serve.Server.Unix_path s

let show_sockaddr = function
  | Unix.ADDR_UNIX p -> "unix:" ^ p
  | Unix.ADDR_INET (ip, port) ->
      Printf.sprintf "tcp:%s:%d" (Unix.string_of_inet_addr ip) port

let serve_run endpoint workers queue max_batch window_us shards cache max_conns =
  let addr = parse_endpoint endpoint in
  let stop_flag = ref false in
  List.iter
    (fun s -> Sys.set_signal s (Sys.Signal_handle (fun _ -> stop_flag := true)))
    [ Sys.sigint; Sys.sigterm ];
  let wait () =
    while not !stop_flag do
      try Unix.sleepf 0.2 with Unix.Unix_error (EINTR, _, _) -> ()
    done
  in
  if shards >= 1 then begin
    (* sharded: this (parent) process stays domain-free — the shards
       are forked first and each builds its own scheduler *)
    let t =
      Serve.Shard.start ~addr ~shards ~sched_workers:workers ~queue_capacity:queue
        ~max_batch ~window_us ~cache_capacity:cache ~max_conns ()
    in
    Printf.printf "fpan_tool serve: listening on %s, %d shard(s) %s\n"
      (show_sockaddr (Serve.Shard.bound_addr t))
      shards
      (String.concat "," (List.map string_of_int (Serve.Shard.pids t)));
    Printf.printf
      "  workers %d/shard, queue %d, max-batch %d, window %g us, cache %d; \
       SIGINT/SIGTERM drains\n%!"
      workers queue max_batch window_us cache;
    wait ();
    print_endline "fpan_tool serve: draining";
    Serve.Shard.stop t;
    let s = Serve.Shard.stats t in
    Printf.printf "dispatched %s, restarts %d, refused %d\n"
      (String.concat "," (Array.to_list (Array.map string_of_int s.Serve.Shard.dispatched)))
      s.Serve.Shard.restarts s.Serve.Shard.refused
  end
  else
    Runtime.Sched.with_sched ~workers (fun sched ->
        let srv =
          Serve.Server.start ~sched ~addr ~queue_capacity:queue ~max_batch ~window_us
            ~cache_capacity:cache ~max_conns ()
        in
        Printf.printf "fpan_tool serve: listening on %s\n"
          (show_sockaddr (Serve.Server.bound_addr srv));
        Printf.printf
          "  workers %d, queue %d, max-batch %d, window %g us, cache %d; \
           SIGINT/SIGTERM drains\n%!"
          workers queue max_batch window_us cache;
        wait ();
        print_endline "fpan_tool serve: draining";
        Serve.Server.stop srv;
        print_endline (Check.Json_out.to_string (Serve.Server.stats_doc srv)))

let serve_cmd =
  let doc =
    "Run the batched extended-precision evaluation server: length-prefixed JSON frames \
     (fpan-serve/1) over a unix or TCP socket, deadline-aware micro-batching onto the \
     work-stealing scheduler, bounded admission with explicit shed responses, and a graceful \
     drain on SIGINT/SIGTERM that answers every accepted request before exiting."
  in
  let endpoint_arg =
    Arg.(value & opt string "./fpan_serve.sock"
         & info [ "listen"; "l" ] ~docv:"ADDR"
             ~doc:"Socket to serve on: a unix path, or HOST:PORT for TCP (port 0 = ephemeral).")
  in
  let workers_arg =
    Arg.(value & opt int 4 & info [ "workers" ] ~docv:"W" ~doc:"Scheduler worker count.")
  in
  let queue_arg =
    Arg.(value & opt int 64 & info [ "queue" ] ~docv:"N" ~doc:"Admission queue capacity.")
  in
  let max_batch_arg =
    Arg.(value & opt int 32 & info [ "max-batch" ] ~docv:"N" ~doc:"Micro-batch size cap.")
  in
  let window_arg =
    Arg.(value & opt float 200.
         & info [ "window-us" ] ~docv:"US"
             ~doc:"Batching window in microseconds (0 = batch-size-1 serving).")
  in
  let shards_arg =
    Arg.(value & opt int 0
         & info [ "shards" ] ~docv:"N"
             ~doc:"Fork N server processes behind a connection distributor \
                   (0 = single-process).  Each shard runs its own scheduler and \
                   cache; dead shards are detected and restarted.")
  in
  let cache_arg =
    Arg.(value & opt int 0
         & info [ "cache" ] ~docv:"N"
             ~doc:"Memoizing LRU capacity for repeated scalar requests \
                   (0 = off).  Hits are bitwise-identical to misses.")
  in
  let max_conns_arg =
    Arg.(value & opt int 16384
         & info [ "max-conns" ] ~docv:"N"
             ~doc:"Concurrent connection cap (per shard when sharded).")
  in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(const serve_run $ endpoint_arg $ workers_arg $ queue_arg $ max_batch_arg
          $ window_arg $ shards_arg $ cache_arg $ max_conns_arg)

(* --- loadgen -------------------------------------------------------- *)

(* Deterministic request mix: ops x tiers round-robin over the id
   space, operand values a function of the id alone.  With [slas] the
   tier axis is replaced by an accuracy-budget axis: requests carry an
   SLA exponent q (round-robin over the list) and 2-component operands,
   so every ladder starts at mf2 and the escalation mix is the swept
   variable. *)
let lg_request ?(slas = []) ~ops ~tiers id =
  let op = List.nth ops (id mod List.length ops) in
  let sla =
    match slas with
    | [] -> None
    | qs -> Some (List.nth qs (id / List.length ops mod List.length qs))
  in
  let tier =
    match sla with
    | Some _ -> SP.Mf2
    | None -> List.nth tiers (id / List.length ops mod List.length tiers)
  in
  let terms = match sla with Some _ -> 2 | None -> SP.tier_terms tier in
  let element k =
    let v = 1.0 +. (Float.of_int ((id + k) mod 97) /. 97.0) in
    Array.init terms (fun j -> v *. (1e-17 ** Float.of_int j))
  in
  let vec n k0 = Array.init n (fun k -> element (k0 + k)) in
  let prog, x, y, z =
    match op with
    | SP.Add | SP.Mul | SP.Div -> ([], [| element 0 |], [| element 1 |], [||])
    | SP.Sqrt | SP.Exp | SP.Log | SP.Sin -> ([], [| element 0 |], [||], [||])
    | SP.Dot -> ([], vec 8 0, vec 8 8, [||])
    | SP.Axpy -> ([], vec 8 0, vec 9 8, [||])
    | SP.Sum -> ([], vec 8 0, [||], [||])
    | SP.Poly_eval -> ([], vec 8 0, [| element 9 |], [||])
    | SP.Program ->
        (* round-robin over the fused chains *)
        (match List.nth SP.programs (id mod List.length SP.programs) with
        | [ "sum" ] as p -> (p, vec 8 0, [||], [||])
        | [ "mul"; "sum" ] as p -> (p, vec 8 0, vec 8 8, [||])
        | p -> (p, vec 8 0, vec 9 8, vec 8 17))
    | SP.Stats -> ([], [||], [||], [||])
  in
  { SP.id; op; tier; sla; deadline_ms = None; prog; x; y; z }

type lg_counts = {
  mutable lg_sent : int;
  mutable lg_ok : int;
  mutable lg_shed : int;
  mutable lg_err : int;
  mutable lg_lats : float list;  (** latency, microseconds *)
}

(* Find the char right after [sub] in [s], or -1.  Payloads are tiny
   and we control the encoder, so naive scan is fine. *)
let lg_after s sub =
  let n = String.length s and m = String.length sub in
  let rec eq i j = j >= m || (s.[i + j] = sub.[j] && eq i (j + 1)) in
  let rec go i = if i + m > n then -1 else if eq i 0 then i + m else go (i + 1) in
  go 0

(* (id, status initial) without a full JSON parse: the load generator
   is measurement harness, so it stays off the codec it is measuring
   (wrk-style).  Correctness of the served bytes is test_serve's job. *)
let lg_scan payload =
  let id = ref 0 in
  let k = ref (lg_after payload "\"id\":") in
  if !k >= 0 then
    while
      !k < String.length payload && payload.[!k] >= '0' && payload.[!k] <= '9'
    do
      id := (!id * 10) + (Char.code payload.[!k] - Char.code '0');
      incr k
    done;
  let sp = lg_after payload "\"status\":\"" in
  let status = if sp >= 0 && sp < String.length payload then payload.[sp] else 'e' in
  (!id, status)

(* One multiplexed closed-loop connection: [pipeline] requests in
   flight until the deadline, then drain what is still outstanding.
   Request frames are encoded once per pipeline slot up front and
   resent verbatim (slot ids recycle, one in flight per id); replies
   are scanned, not parsed.  Thousands of these ride on a handful of
   poll-based driver threads — a domain per connection stops scaling
   around a hundred. *)
type lg_conn = {
  lc_fd : Unix.file_descr;
  lc_frames : string array;
  lc_tsend : float array;
  lc_defr : SP.deframer;
  lc_counts : lg_counts;
  mutable lc_pend : string;  (* bytes not yet accepted by the kernel *)
  mutable lc_wreg : bool;  (* write interest currently registered *)
  mutable lc_alive : bool;
}

let lg_conn_make ~sockaddr ~slas ~ops ~tiers ~pipeline ~cid =
  let fd = Unix.socket ~cloexec:true (Unix.domain_of_sockaddr sockaddr) SOCK_STREAM 0 in
  let rec connect tries =
    try Unix.connect fd sockaddr
    with Unix.Unix_error ((ECONNREFUSED | EAGAIN | EINTR), _, _) when tries < 50 ->
      (* backlog overflow under a connection storm: back off and retry *)
      Unix.sleepf 0.01;
      connect (tries + 1)
  in
  connect 0;
  Unix.set_nonblock fd;
  {
    lc_fd = fd;
    lc_frames =
      Array.init pipeline (fun i ->
          let req = lg_request ~slas ~ops ~tiers ((i * 131) + (cid * 17)) in
          let req = { req with SP.id = i + 1 } in
          SP.frame_of_string (Obs.Json_out.to_string_compact (SP.request_to_json req)));
    lc_tsend = Array.make (pipeline + 1) 0.0;
    lc_defr = SP.deframer ();
    lc_counts = { lg_sent = 0; lg_ok = 0; lg_shed = 0; lg_err = 0; lg_lats = [] };
    lc_pend = "";
    lc_wreg = false;
    lc_alive = true;
  }

let lg_outstanding cn =
  let c = cn.lc_counts in
  c.lg_sent - (c.lg_ok + c.lg_shed + c.lg_err)

(* One driver thread: [nconns] connections multiplexed over a poll
   set.  Write interest is registered only while a connection has
   kernel-refused bytes pending, so the steady-state poll watches
   reads alone. *)
let lg_driver ~sockaddr ~slas ~ops ~tiers ~pipeline ~t_end ~cid0 ~nconns =
  let rd = Serve.Readiness.create () in
  let conns = Hashtbl.create (2 * nconns) in
  let made = ref [] in
  (try
     for i = 0 to nconns - 1 do
       let cn = lg_conn_make ~sockaddr ~slas ~ops ~tiers ~pipeline ~cid:(cid0 + i) in
       Hashtbl.replace conns (Obj.magic cn.lc_fd : int) cn;
       Serve.Readiness.add rd cn.lc_fd ~read:true ~write:false;
       made := cn :: !made
     done
   with Unix.Unix_error ((EMFILE | ENFILE), _, _) -> ());
  let made = List.rev !made in
  let drop cn =
    if cn.lc_alive then begin
      cn.lc_alive <- false;
      Serve.Readiness.remove rd cn.lc_fd;
      Hashtbl.remove conns (Obj.magic cn.lc_fd : int);
      try Unix.close cn.lc_fd with _ -> ()
    end
  in
  let flush cn =
    if cn.lc_alive && String.length cn.lc_pend > 0 then begin
      let s = cn.lc_pend in
      let n = String.length s in
      let k = ref 0 in
      let stalled = ref false in
      (try
         while !k < n && not !stalled do
           match Unix.write_substring cn.lc_fd s !k (n - !k) with
           | w -> k := !k + w
           | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) -> stalled := true
           | exception Unix.Unix_error (EINTR, _, _) -> ()
         done
       with Unix.Unix_error _ -> drop cn);
      if cn.lc_alive then begin
        cn.lc_pend <- (if !k >= n then "" else String.sub s !k (n - !k));
        let want_w = String.length cn.lc_pend > 0 in
        if want_w <> cn.lc_wreg then begin
          Serve.Readiness.modify rd cn.lc_fd ~read:true ~write:want_w;
          cn.lc_wreg <- want_w
        end
      end
    end
  in
  let send_slot cn id =
    cn.lc_pend <- cn.lc_pend ^ cn.lc_frames.(id - 1);
    cn.lc_tsend.(id) <- Obs.Clock.now_ns ();
    cn.lc_counts.lg_sent <- cn.lc_counts.lg_sent + 1
  in
  let absorb cn ~resend payload =
    let id, status = lg_scan payload in
    if id >= 1 && id <= pipeline then begin
      let c = cn.lc_counts in
      (match status with
      | 'o' ->
          c.lg_ok <- c.lg_ok + 1;
          c.lg_lats <- ((Obs.Clock.now_ns () -. cn.lc_tsend.(id)) *. 1e-3) :: c.lg_lats
      | 's' -> c.lg_shed <- c.lg_shed + 1
      | _ -> c.lg_err <- c.lg_err + 1);
      if resend then send_slot cn id
    end
  in
  let rbuf = Bytes.create 65536 in
  let read_conn cn ~resend =
    let continue = ref true in
    while !continue && cn.lc_alive do
      match Unix.read cn.lc_fd rbuf 0 (Bytes.length rbuf) with
      | 0 -> drop cn
      | n -> (
          match SP.feed cn.lc_defr rbuf n with
          | Ok fs ->
              List.iter (absorb cn ~resend) fs;
              flush cn
          | Error _ -> drop cn)
      | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) -> continue := false
      | exception Unix.Unix_error (EINTR, _, _) -> ()
      | exception Unix.Unix_error _ -> drop cn
    done
  in
  List.iter
    (fun cn ->
      for id = 1 to pipeline do
        send_slot cn id
      done;
      flush cn)
    made;
  let step ~resend =
    match Serve.Readiness.wait rd ~timeout_ms:100 with
    | [] -> ()
    | evs ->
        List.iter
          (fun (e : Serve.Readiness.event) ->
            match Hashtbl.find_opt conns (Obj.magic e.Serve.Readiness.fd : int) with
            | None -> ()
            | Some cn ->
                if e.Serve.Readiness.error then drop cn
                else begin
                  if e.Serve.Readiness.writable then flush cn;
                  if cn.lc_alive && (e.Serve.Readiness.readable || e.Serve.Readiness.hangup) then
                    read_conn cn ~resend
                end)
          evs
  in
  while Unix.gettimeofday () < t_end do
    step ~resend:true
  done;
  (* drain: stop re-offering load, collect what is still in flight *)
  let t_drain = t_end +. 5.0 in
  let rec outstanding = function
    | [] -> false
    | cn :: rest -> (cn.lc_alive && lg_outstanding cn > 0) || outstanding rest
  in
  while outstanding made && Unix.gettimeofday () < t_drain do
    step ~resend:false
  done;
  List.iter drop made;
  List.map (fun cn -> cn.lc_counts) made

let lg_percentiles lats =
  let a = Array.of_list lats in
  Array.sort compare a;
  let n = Array.length a in
  let module J = Check.Json_out in
  let pct p =
    if n = 0 then J.Null
    else J.Num a.(min (n - 1) (int_of_float ((p *. Float.of_int (n - 1)) +. 0.5)))
  in
  J.Obj
    [ ("p50", pct 0.50); ("p90", pct 0.90); ("p95", pct 0.95); ("p99", pct 0.99);
      ("max", if n = 0 then J.Null else J.Num a.(n - 1)) ]

(* Drive one cell: [conns] closed-loop connections against [sockaddr]
   for [duration] seconds, multiplexed over up to 16 driver threads. *)
let lg_drive ~sockaddr ~slas ~ops ~tiers ~conns ~pipeline ~duration =
  let t0 = Unix.gettimeofday () in
  let t_end = t0 +. duration in
  let nthreads = max 1 (min 16 ((conns + 255) / 256)) in
  let base = conns / nthreads and extra = conns mod nthreads in
  let chunks =
    List.init nthreads (fun i ->
        let n = base + if i < extra then 1 else 0 in
        let cid0 = (i * base) + min i extra in
        (cid0, n))
  in
  let results = Array.make nthreads [] in
  let threads =
    List.mapi
      (fun i (cid0, n) ->
        Thread.create
          (fun () ->
            results.(i) <-
              lg_driver ~sockaddr ~slas ~ops ~tiers ~pipeline ~t_end ~cid0 ~nconns:n)
          ())
      chunks
  in
  List.iter Thread.join threads;
  let per_conn = List.concat (Array.to_list results) in
  let wall = Unix.gettimeofday () -. t0 in
  let total f = List.fold_left (fun acc c -> acc + f c) 0 per_conn in
  let lats = List.concat_map (fun c -> c.lg_lats) per_conn in
  (total (fun c -> c.lg_sent), total (fun c -> c.lg_ok), total (fun c -> c.lg_shed),
   total (fun c -> c.lg_err), lats, wall)

(* The bitwise canary: a hard gate, not a statistic.  Every response
   the service hands back — from any shard, cached or not — must be
   bit-for-bit what the single-process scalar path computes.  Each
   request goes twice so a cache-enabled server answers the repeat
   from the LRU; a mismatch anywhere fails the whole loadgen run. *)
let lg_canary ~sockaddr ~slas ~ops ~tiers ~pipeline =
  let addr =
    match sockaddr with
    | Unix.ADDR_UNIX p -> Serve.Server.Unix_path p
    | Unix.ADDR_INET (ip, port) ->
        Serve.Server.Tcp { host = Unix.string_of_inet_addr ip; port }
  in
  let cl = Serve.Client.connect ~deadline_ms:30_000 addr in
  let checked = ref 0 in
  let mismatches = ref 0 in
  let bits_equal a b =
    Array.length a = Array.length b
    && Array.for_all2
         (fun ea eb ->
           Array.length ea = Array.length eb
           && Array.for_all2
                (fun x y -> Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y))
                ea eb)
         a b
  in
  for i = 0 to (2 * pipeline) - 1 do
    (* i and i + pipeline build the same request: the second pass hits
       the cache when one is configured *)
    let req = lg_request ~slas ~ops ~tiers (i mod pipeline * 131) in
    let req = { req with SP.id = i + 1 } in
    incr checked;
    match (Serve.Client.call cl req, Serve.Batcher.eval_one req) with
    | SP.Result { result; chosen; _ }, Ok expect when bits_equal result expect -> (
        (* an SLA response settled at a MultiFloat rung must also be
           bitwise what a direct fixed-tier request at the chosen tier
           computes (the bigfloat fallback has no fixed-tier twin) *)
        match (req.SP.sla, chosen) with
        | Some _, Some ("mf2" | "mf3" | "mf4" as tname) -> (
            let terms = if tname = "mf2" then 2 else if tname = "mf3" then 3 else 4 in
            match Serve.Batcher.eval_one (Serve.Batcher.pad_request ~terms req) with
            | Ok twin when bits_equal result twin -> ()
            | _ -> incr mismatches)
        | _ -> ())
    | _ -> incr mismatches
  done;
  Serve.Client.close cl;
  (!checked, !mismatches)

let loadgen_run connect workers queue duration conns_csv pipeline ops_csv tiers_csv
    slas_csv configs_csv shards_csv cache out =
  let module J = Check.Json_out in
  drain_on_signal ();
  let split s = String.split_on_char ',' s |> List.filter (fun p -> String.trim p <> "") in
  let slas =
    List.map
      (fun s ->
        match int_of_string_opt (String.trim s) with
        | Some q when q >= 1 && q <= 200 -> q
        | _ ->
            Printf.eprintf "loadgen: bad sla exponent %s (want 1..200)\n" s;
            exit 2)
      (split slas_csv)
  in
  let ops =
    List.map
      (fun name ->
        match SP.op_of_name (String.trim name) with
        | Some SP.Stats | None ->
            Printf.eprintf "loadgen: unknown op %s\n" name;
            exit 2
        | Some op ->
            if
              slas <> []
              && op <> SP.Program
              && not (List.mem (SP.op_name op) Adaptive.Sla.supported_wire_ops)
            then begin
              Printf.eprintf
                "loadgen: op %s cannot carry an sla (certifiable ops: %s)\n" name
                (String.concat ", " Adaptive.Sla.supported_wire_ops);
              exit 2
            end;
            op)
      (split ops_csv)
  in
  let tiers =
    List.map
      (fun name ->
        match SP.tier_of_name (String.trim name) with
        | Some t -> t
        | None ->
            Printf.eprintf "loadgen: unknown tier %s (mf2, mf3, mf4)\n" name;
            exit 2)
      (split tiers_csv)
  in
  let conns_list =
    List.filter_map (fun s -> int_of_string_opt (String.trim s)) (split conns_csv)
  in
  let conns_list = if conns_list = [] then [ 8 ] else conns_list in
  let shard_counts =
    List.filter_map (fun s -> int_of_string_opt (String.trim s)) (split shards_csv)
  in
  let shard_counts = if shard_counts = [] then [ 0 ] else shard_counts in
  let configs =
    List.map
      (fun spec ->
        match String.split_on_char ':' (String.trim spec) with
        | [ b; w ] -> (
            match (int_of_string_opt b, float_of_string_opt w) with
            | Some b, Some w when b >= 1 && w >= 0. -> (b, w)
            | _ ->
                Printf.eprintf "loadgen: bad config %s (want MAXBATCH:WINDOW_US)\n" spec;
                exit 2)
        | _ ->
            Printf.eprintf "loadgen: bad config %s (want MAXBATCH:WINDOW_US)\n" spec;
            exit 2)
      (split configs_csv)
  in
  let mode = match connect with None -> "inproc" | Some _ -> "connect" in
  Printf.printf "loadgen: mode %s, %d cell(s), %.2fs each\n%!" mode
    (List.length configs * List.length shard_counts * List.length conns_list)
    duration;
  (* Every sharded fleet forks up front: Unix.fork is illegal once any
     single-process cell has spawned a scheduler domain in this
     process, so the forking all happens while we are still clean. *)
  let fleets =
    if connect <> None then []
    else
      List.concat_map
        (fun (b, w) ->
          List.filter_map
            (fun s ->
              if s < 1 then None
              else begin
                let sock =
                  Printf.sprintf "./fpan_loadgen_%d_b%d_w%g_s%d.sock" (Unix.getpid ())
                    b w s
                in
                let t =
                  Serve.Shard.start ~addr:(Serve.Server.Unix_path sock) ~shards:s
                    ~sched_workers:workers ~queue_capacity:queue ~max_batch:b
                    ~window_us:w ~cache_capacity:cache ()
                in
                Some ((b, w, s), t)
              end)
            shard_counts)
        configs
  in
  let canary_checked = ref 0 in
  let canary_bad = ref 0 in
  let canary sockaddr =
    let checked, bad = lg_canary ~sockaddr ~slas ~ops ~tiers ~pipeline in
    canary_checked := !canary_checked + checked;
    canary_bad := !canary_bad + bad
  in
  (* one cell = (max_batch, window) x shard count x connection count *)
  let run_cell (max_batch, window_us) nshards conns =
    let label = Printf.sprintf "b%d-w%g-s%d-c%d" max_batch window_us nshards conns in
    let drive sockaddr =
      lg_drive ~sockaddr ~slas ~ops ~tiers ~conns ~pipeline ~duration
    in
    let (sent, ok, shed, errors, lats, wall), stats =
      match connect with
      | Some endpoint ->
          let addr = parse_endpoint endpoint in
          let probe = Serve.Client.connect ~deadline_ms:30_000 addr in
          let sockaddr =
            match addr with
            | Serve.Server.Unix_path p -> Unix.ADDR_UNIX p
            | Serve.Server.Tcp { host; port } ->
                let ip =
                  try Unix.inet_addr_of_string host
                  with _ -> (Unix.gethostbyname host).h_addr_list.(0)
                in
                Unix.ADDR_INET (ip, port)
          in
          let res = drive sockaddr in
          canary sockaddr;
          let stats = Serve.Client.stats probe in
          Serve.Client.close probe;
          (res, stats)
      | None when nshards >= 1 ->
          let t = List.assoc (max_batch, window_us, nshards) fleets in
          let sockaddr = Serve.Shard.bound_addr t in
          let res = drive sockaddr in
          canary sockaddr;
          (* the stats probe reaches one shard — representative, not
             fleet-aggregated *)
          let probe =
            Serve.Client.connect ~deadline_ms:30_000
              (match sockaddr with
              | Unix.ADDR_UNIX p -> Serve.Server.Unix_path p
              | Unix.ADDR_INET (ip, port) ->
                  Serve.Server.Tcp { host = Unix.string_of_inet_addr ip; port })
          in
          let stats = Serve.Client.stats probe in
          Serve.Client.close probe;
          (res, stats)
      | None ->
          Runtime.Sched.with_sched ~workers (fun sched ->
              let sock = Printf.sprintf "./fpan_loadgen_%d.sock" (Unix.getpid ()) in
              let srv =
                Serve.Server.start ~sched ~addr:(Serve.Server.Unix_path sock)
                  ~queue_capacity:queue ~max_batch ~window_us ~cache_capacity:cache ()
              in
              let res = drive (Serve.Server.bound_addr srv) in
              canary (Serve.Server.bound_addr srv);
              let stats = Serve.Server.stats_doc srv in
              Serve.Server.stop srv;
              (res, stats))
    in
    let throughput = if wall > 0. then Float.of_int ok /. wall else 0. in
    let shed_rate = if sent > 0 then Float.of_int shed /. Float.of_int sent else 0. in
    Printf.printf
      "  %-18s sent %7d  ok %7d  shed %6d  err %3d  %8.0f req/s  shed %5.1f%%\n%!"
      label sent ok shed errors throughput (100. *. shed_rate);
    let member key =
      match J.member key stats with Some v -> v | None -> J.List []
    in
    ( label, max_batch, nshards, conns, throughput,
      J.Obj
        [ ("label", J.Str label);
          ("max_batch", J.Num (Float.of_int max_batch));
          ("window_us", J.Num window_us);
          ("shards", J.Num (Float.of_int nshards));
          ("conns", J.Num (Float.of_int conns));
          ("pipeline", J.Num (Float.of_int pipeline));
          ("sent", J.Num (Float.of_int sent));
          ("ok", J.Num (Float.of_int ok));
          ("shed", J.Num (Float.of_int shed));
          ("errors", J.Num (Float.of_int errors));
          ("wall_s", J.Num wall);
          ("throughput_rps", J.Num throughput);
          ("shed_rate", J.Num shed_rate);
          ("latency_us", lg_percentiles lats);
          ("batch_histogram", member "batch_histogram");
          ("sched", member "sched") ] )
  in
  let cells =
    List.concat_map
      (fun cfg ->
        List.concat_map
          (fun s -> List.map (fun c -> run_cell cfg s c) conns_list)
          shard_counts)
      configs
  in
  List.iter (fun (_, t) -> Serve.Shard.stop t) fleets;
  (* batching vs batch-size-1, at the highest offered load in the
     first swept topology *)
  let top = List.fold_left max 1 conns_list in
  let s0 = List.hd shard_counts in
  let tput_of pred =
    List.filter_map
      (fun (_, b, s, c, tput, _) ->
        if c = top && s = s0 && pred b then Some tput else None)
      cells
  in
  let speedup =
    match (tput_of (fun b -> b = 1), tput_of (fun b -> b > 1)) with
    | base :: _, batched when batched <> [] && base > 0. ->
        Some (List.fold_left max 0. batched /. base)
    | _ -> None
  in
  (match speedup with
  | Some s -> Printf.printf "  micro-batching speedup at %d conns: %.2fx\n" top s
  | None -> ());
  (* the connection- and shard-scaling curve: one point per cell *)
  let scaling =
    List.map
      (fun (label, _, s, c, tput, _) ->
        J.Obj
          [ ("label", J.Str label);
            ("shards", J.Num (Float.of_int s));
            ("conns", J.Num (Float.of_int c));
            ("throughput_rps", J.Num tput) ])
      cells
  in
  if !canary_bad > 0 then begin
    Printf.eprintf
      "loadgen: BITWISE CANARY FAILED: %d of %d responses differ from the \
       single-process scalar path\n"
      !canary_bad !canary_checked;
    exit 3
  end;
  Printf.printf "  bitwise canary: %d/%d responses exact\n" !canary_checked
    !canary_checked;
  let json =
    J.Obj
      [ ("schema", J.Str "fpan-serve/3");
        ("mode", J.Str mode);
        ("workers", J.Num (Float.of_int workers));
        ("queue_capacity", J.Num (Float.of_int queue));
        ("cache_capacity", J.Num (Float.of_int cache));
        ("duration_s", J.Num duration);
        ("ops", J.List (List.map (fun o -> J.Str (SP.op_name o)) ops));
        ("tiers", J.List (List.map (fun t -> J.Str (SP.tier_name t)) tiers));
        ("slas", J.List (List.map (fun q -> J.Num (Float.of_int q)) slas));
        ("cells", J.List (List.map (fun (_, _, _, _, _, doc) -> doc) cells));
        ("scaling", J.List scaling);
        ( "canary",
          J.Obj
            [ ("checked", J.Num (Float.of_int !canary_checked));
              ("mismatches", J.Num (Float.of_int !canary_bad)) ] );
        ("batching_speedup",
         match speedup with Some s -> J.Num s | None -> J.Null) ]
  in
  Obs.Schema.check ~name:out Obs.Schemas.bench_serve json;
  J.write_file out json;
  Printf.printf "  written to %s\n" out

let loadgen_cmd =
  let doc =
    "Generate load against the evaluation service and write BENCH_serve.json: sweeps \
     micro-batch configuration x offered load with closed-loop pipelined clients, reports \
     throughput, latency percentiles, shed rates, and the server's batch-size histogram, and \
     computes the micro-batching speedup over batch-size-1 serving.  By default each cell \
     spins up its own in-process server; --connect drives an external one."
  in
  let connect_arg =
    Arg.(value & opt (some string) None
         & info [ "connect" ] ~docv:"ADDR"
             ~doc:"Drive an already-running server (unix path or HOST:PORT) instead of \
                   in-process ones.")
  in
  let workers_arg =
    Arg.(value & opt int 4
         & info [ "workers" ] ~docv:"W" ~doc:"Scheduler workers for in-process servers.")
  in
  let queue_arg =
    Arg.(value & opt int 256
         & info [ "queue" ] ~docv:"N" ~doc:"Admission queue capacity for in-process servers.")
  in
  let duration_arg =
    Arg.(value & opt float 1.5 & info [ "duration" ] ~docv:"S" ~doc:"Seconds per cell.")
  in
  let conns_arg =
    Arg.(value & opt string "4,8"
         & info [ "conns"; "clients" ] ~docv:"N,N,..."
             ~doc:
               "Concurrent connection counts to sweep (thousands are fine: connections \
                are multiplexed over poll-based driver threads); the batching-speedup \
                headline is computed at the highest count.")
  in
  let pipeline_arg =
    Arg.(value & opt int 32
         & info [ "pipeline" ] ~docv:"N" ~doc:"In-flight requests per client.")
  in
  let ops_arg =
    Arg.(value & opt string "add,mul,div,sqrt"
         & info [ "ops" ] ~docv:"OPS" ~doc:"Comma-separated operation mix.")
  in
  let tiers_arg =
    Arg.(value & opt string "mf2,mf4"
         & info [ "tiers" ] ~docv:"TIERS" ~doc:"Comma-separated tier mix (mf2,mf3,mf4).")
  in
  let slas_arg =
    Arg.(value & opt string ""
         & info [ "sla" ] ~docv:"Q,Q,..."
             ~doc:
               "Accuracy-SLA sweep: requests carry an error budget of 2^-Q \
                (round-robin over the list) instead of a fixed tier, and the server \
                escalates mf2 -> mf3 -> mf4 -> bigfloat until the certified bound \
                meets each budget.  Only the certifiable ops qualify.  Empty (the \
                default) keeps fixed-tier requests.")
  in
  let configs_arg =
    Arg.(value & opt string "1:0,8:200,32:1000,128:3000"
         & info [ "configs" ] ~docv:"B:W,..."
             ~doc:"Micro-batch configurations to sweep, MAXBATCH:WINDOW_US each \
                   (1:0 is the batch-size-1 baseline).")
  in
  let shards_arg =
    Arg.(value & opt string "0"
         & info [ "shards" ] ~docv:"N,N,..."
             ~doc:
               "Shard counts to sweep for in-process servers (0 = single-process; \
                each count >= 1 forks that many server processes behind a \
                distributor).  The scaling curve in the output has one point per \
                (shards, conns) cell.")
  in
  let cache_arg =
    Arg.(value & opt int 0
         & info [ "cache" ] ~docv:"N"
             ~doc:"Memoizing LRU capacity for in-process servers (0 = off).")
  in
  let out_arg =
    Arg.(value & opt string "BENCH_serve.json"
         & info [ "out"; "o" ] ~docv:"FILE" ~doc:"JSON output path.")
  in
  Cmd.v (Cmd.info "loadgen" ~doc)
    Term.(const loadgen_run $ connect_arg $ workers_arg $ queue_arg $ duration_arg
          $ conns_arg $ pipeline_arg $ ops_arg $ tiers_arg $ slas_arg $ configs_arg
          $ shards_arg $ cache_arg $ out_arg)

(* ------------------------------------------------------------------ *)
(* chaos: the fault-injection campaign runner (lib/chaos).  Runs each
   named scenario against a real forked shard fleet, drives a
   deterministic request sequence through a retrying client while
   injecting the scenario's wire faults, and asserts three invariants:
   no server death, every request answered bitwise-identical to the
   fault-free scalar path, no descriptor leak.  Everything written to
   CHAOS_report.json is a pure function of (seed, shards, requests) —
   re-running with the same arguments reproduces the file byte for
   byte. *)

let chaos_buckets = [| "fixed"; "q1-50"; "q51-100"; "q101-150"; "q151-200" |]

let chaos_fd_count () =
  match Sys.readdir "/proc/self/fd" with
  | entries -> Array.length entries
  | exception _ -> -1 (* no procfs: leak check degrades to a no-op *)

let chaos_bits_equal a b =
  Array.length a = Array.length b
  && Array.for_all2
       (fun ea eb ->
         Array.length ea = Array.length eb
         && Array.for_all2
              (fun x y -> Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y))
              ea eb)
       a b

(* Deterministic request for campaign index n: cycles every scalar op
   and tier, with every fifth request carrying an accuracy SLA, so
   each fault class crosses each request class. *)
let chaos_request n =
  let req =
    if n mod 5 = 4 then
      lg_request ~slas:[ 40; 80; 120 ] ~ops:[ SP.Add; SP.Mul; SP.Div ]
        ~tiers:[ SP.Mf2 ] (n * 131)
    else
      lg_request
        ~ops:[ SP.Add; SP.Mul; SP.Div; SP.Sqrt; SP.Exp; SP.Log; SP.Sin ]
        ~tiers:[ SP.Mf2; SP.Mf3; SP.Mf4 ] (n * 131)
  in
  { req with SP.id = n + 1 }

let chaos_raw_conn sockaddr =
  let fd =
    Unix.socket ~cloexec:true (Unix.domain_of_sockaddr sockaddr) SOCK_STREAM 0
  in
  (try Unix.connect fd sockaddr
   with e ->
     (try Unix.close fd with _ -> ());
     raise e);
  fd

let chaos_write_all fd s =
  let n = String.length s in
  let k = ref 0 in
  while !k < n do
    k := !k + Unix.write_substring fd s !k (n - !k)
  done

(* Execute one wire action as noise on a throwaway connection; the
   real request always travels the retrying client afterwards, so the
   accounting stays exact whatever the server does with the wreck. *)
let chaos_noise ~sockaddr action req =
  let frame =
    SP.frame_of_string (Obs.Json_out.to_string_compact (SP.request_to_json req))
  in
  let finish fd =
    ignore (Serve.Readiness.wait_readable fd ~timeout_ms:2000);
    try Unix.close fd with _ -> ()
  in
  match action with
  | Chaos.Plan.Clean | Chaos.Plan.Kill_shard -> ()
  | Chaos.Plan.Corrupt_header ->
      let fd = chaos_raw_conn sockaddr in
      (* a length prefix far past max_frame followed by junk: the
         deframer must refuse it and the server must drop the conn *)
      (try chaos_write_all fd "\xff\xff\xff\xf0garbage-not-a-frame" with _ -> ());
      finish fd
  | Chaos.Plan.Truncate_close ->
      let fd = chaos_raw_conn sockaddr in
      let cut = max 5 (String.length frame / 2) in
      (try chaos_write_all fd (String.sub frame 0 cut) with _ -> ());
      (try Unix.close fd with _ -> ())
  | Chaos.Plan.Abort_close ->
      let fd = chaos_raw_conn sockaddr in
      (try chaos_write_all fd frame with _ -> ());
      (* close before reading: the reply hits a dead peer *)
      (try Unix.close fd with _ -> ())
  | Chaos.Plan.Stall_mid_us us ->
      let fd = chaos_raw_conn sockaddr in
      (try
         chaos_write_all fd (String.sub frame 0 6);
         Unix.sleepf (Float.of_int us *. 1e-6);
         chaos_write_all fd
           (String.sub frame 6 (String.length frame - 6))
       with _ -> ());
      finish fd

let chaos_wait_full fleet shards =
  let deadline = Unix.gettimeofday () +. 20.0 in
  let rec go () =
    if List.length (Serve.Shard.pids fleet) >= shards then true
    else if Unix.gettimeofday () > deadline then false
    else begin
      Unix.sleepf 0.01;
      go ()
    end
  in
  go ()

type chaos_outcome = {
  co_requests : int;
  co_answered : int;
  co_checked : int;
  co_mismatches : int;
  co_shed : int;
  co_restarts : int;
  co_deaths : int;
  co_shed_buckets : int array;
}

let chaos_fleet_scenario ~seed ~shards ~requests (s : Chaos.Plan.scenario) =
  let sock = Printf.sprintf "./fpan_chaos_%d.sock" (Unix.getpid ()) in
  (* children inherit the armed seam plan through fork; the parent
     swaps to its own (accept/dispatch) plan once the fleet is up *)
  Chaos.Injector.arm ~seed s.Chaos.Plan.seam_rules;
  let fleet =
    Serve.Shard.start ~addr:(Serve.Server.Unix_path sock) ~shards
      ~sched_workers:1 ~queue_capacity:64 ~max_batch:8 ~window_us:100.
      ~cache_capacity:32 ()
  in
  Chaos.Injector.disarm ();
  if s.Chaos.Plan.parent_rules <> [] then
    Chaos.Injector.arm ~seed s.Chaos.Plan.parent_rules;
  let sockaddr = Serve.Shard.bound_addr fleet in
  let acts = Chaos.Plan.actions ~seed s ~n:requests in
  let answered = ref 0 in
  let checked = ref 0 in
  let mismatches = ref 0 in
  let kills = ref 0 in
  let cl = Serve.Client.connect_sockaddr ~deadline_ms:5000 sockaddr in
  for n = 0 to requests - 1 do
    let req = chaos_request n in
    match Serve.Batcher.eval_one req with
    | Error e -> failwith ("chaos: fault-free reference failed: " ^ e)
    | Ok expect -> (
        (match acts.(n) with
        | Chaos.Plan.Kill_shard -> (
            match Serve.Shard.pids fleet with
            | pid :: _ ->
                (try Unix.kill pid Sys.sigkill with _ -> ());
                incr kills;
                ignore (chaos_wait_full fleet shards)
            | [] -> ())
        | a -> ( try chaos_noise ~sockaddr a req with _ -> ()));
        match Serve.Client.call_retry ~seed ~max_attempts:12 cl req with
        | SP.Result { result; _ } ->
            incr answered;
            if chaos_bits_equal result expect then incr checked
            else incr mismatches
        | SP.Shed _ | SP.Failed _ | SP.Stats_reply _ -> incr mismatches
        | exception _ -> incr mismatches)
  done;
  (* the no-server-death invariant: the fleet must end the scenario at
     full strength (every kill re-forked, nothing else died) *)
  let full = chaos_wait_full fleet shards in
  let deaths = if full then 0 else shards - List.length (Serve.Shard.pids fleet) in
  Serve.Client.close cl;
  Serve.Shard.stop fleet;
  Chaos.Injector.disarm ();
  {
    co_requests = requests;
    co_answered = !answered;
    co_checked = !checked;
    co_mismatches = !mismatches;
    co_shed = 0;
    co_restarts = !kills;
    co_deaths = deaths;
    co_shed_buckets = Array.make (Array.length chaos_buckets) 0;
  }

(* The admission-overload scenario runs in-process: a bounded queue
   with no consumer, pushed one deterministic priority mix, so the
   per-bucket shed split is an exact function of the seed. *)
let chaos_admission_scenario ~seed ~requests (_s : Chaos.Plan.scenario) =
  let capacity = 8 in
  let q = Serve.Admission.create ~capacity in
  let shed_buckets = Array.make (Array.length chaos_buckets) 0 in
  let shed = ref 0 in
  for n = 0 to requests - 1 do
    let h = Chaos.Rng.hash ~seed ~salt:0x0ad ~n in
    let c = Int64.to_int (Int64.rem (Int64.logand h 0x7fffffffL) 5L) in
    let prio =
      if c = 0 then 53 * (2 + (n mod 3)) (* fixed tiers: mf2/mf3/mf4 *)
      else ((c - 1) * 50) + 1 + (n mod 50) (* sla q inside bucket c *)
    in
    match Serve.Admission.push ~priority:prio q c with
    | `Ok -> ()
    | `Full ->
        incr shed;
        shed_buckets.(c) <- shed_buckets.(c) + 1
    | `Displaced victim ->
        incr shed;
        shed_buckets.(victim) <- shed_buckets.(victim) + 1
    | `Closed -> ()
  done;
  Serve.Admission.close q;
  let rec drain k =
    match Serve.Admission.pop_batch q ~max:64 ~window_ns:0L with
    | [] -> k
    | l -> drain (k + List.length l)
  in
  let answered = drain 0 in
  Serve.Admission.destroy q;
  {
    co_requests = requests;
    co_answered = answered;
    co_checked = 0;
    co_mismatches = (if answered + !shed = requests then 0 else 1);
    co_shed = !shed;
    co_restarts = 0;
    co_deaths = 0;
    co_shed_buckets = shed_buckets;
  }

let chaos_run seed shards requests scenarios_csv out =
  let module J = Check.Json_out in
  if shards < 1 then begin
    prerr_endline "chaos: --shards must be >= 1";
    exit 2
  end;
  let scenarios =
    match
      String.split_on_char ',' scenarios_csv
      |> List.filter (fun s -> String.trim s <> "")
    with
    | [] -> Chaos.Plan.matrix
    | names ->
        List.map
          (fun name ->
            match Chaos.Plan.find (String.trim name) with
            | Some s -> s
            | None ->
                Printf.eprintf "chaos: unknown scenario %s (have: %s)\n"
                  name
                  (String.concat ", "
                     (List.map
                        (fun (s : Chaos.Plan.scenario) -> s.Chaos.Plan.name)
                        Chaos.Plan.matrix));
                exit 2)
          names
  in
  Printf.printf "fpan_tool chaos: seed %d, %d shard(s), %d request(s) x %d scenario(s)\n%!"
    seed shards requests (List.length scenarios);
  (* warm-up: one fault-free fleet cycle, so every lazily-created
     descriptor (metrics plumbing, readiness state) exists before the
     fd-leak baseline is taken *)
  let clean =
    {
      Chaos.Plan.name = "warmup";
      summary = "fault-free warm-up";
      kind = Chaos.Plan.Fleet;
      classes = [];
      seam_rules = [];
      parent_rules = [];
      wire = [];
    }
  in
  let warm = chaos_fleet_scenario ~seed ~shards:1 ~requests:2 clean in
  if warm.co_checked <> 2 then begin
    prerr_endline "chaos: fault-free warm-up failed; not a chaos finding";
    exit 2
  end;
  let fd_baseline = chaos_fd_count () in
  let results =
    List.map
      (fun (s : Chaos.Plan.scenario) ->
        let o =
          match s.Chaos.Plan.kind with
          | Chaos.Plan.Fleet -> chaos_fleet_scenario ~seed ~shards ~requests s
          | Chaos.Plan.Admission -> chaos_admission_scenario ~seed ~requests s
        in
        let injected = Chaos.Plan.injected_count ~seed s ~n:requests in
        let passed =
          o.co_mismatches = 0 && o.co_deaths = 0
          && o.co_answered + o.co_shed = o.co_requests
        in
        Printf.printf
          "  %-14s injected %-4s answered %d/%d  shed %-3d restarts %-2d %s\n%!"
          s.Chaos.Plan.name
          (match injected with Some k -> string_of_int k | None -> "-")
          o.co_answered o.co_requests o.co_shed o.co_restarts
          (if passed then "ok" else "FAILED");
        (s, o, injected, passed))
      scenarios
  in
  let fd_after = chaos_fd_count () in
  let fd_leak =
    if fd_baseline < 0 || fd_after < 0 then 0 else max 0 (fd_after - fd_baseline)
  in
  let deaths = List.fold_left (fun a (_, o, _, _) -> a + o.co_deaths) 0 results in
  let mismatches =
    List.fold_left (fun a (_, o, _, _) -> a + o.co_mismatches) 0 results
  in
  let passed =
    deaths = 0 && mismatches = 0 && fd_leak = 0
    && List.for_all (fun (_, _, _, p) -> p) results
  in
  let num k = J.Num (Float.of_int k) in
  let scenario_doc ((s : Chaos.Plan.scenario), o, injected, sp) =
    J.Obj
      [ ("name", J.Str s.Chaos.Plan.name);
        ("classes", J.List (List.map (fun c -> J.Str c) s.Chaos.Plan.classes));
        ("injected", match injected with Some k -> num k | None -> J.Null);
        ("requests", num o.co_requests);
        ("answered", num o.co_answered);
        ("checked_bitwise", num o.co_checked);
        ("shed", num o.co_shed);
        ("restarts", num o.co_restarts);
        ( "shed_by_bucket",
          J.List
            (List.init (Array.length chaos_buckets) (fun i ->
                 J.Obj
                   [ ("bucket", J.Str chaos_buckets.(i));
                     ("count", num o.co_shed_buckets.(i)) ])) );
        ("passed", J.Bool sp) ]
  in
  let json =
    J.Obj
      [ ("schema", J.Str "fpan-chaos/1");
        ("seed", num seed);
        ("shards", num shards);
        ("requests_per_scenario", num requests);
        ("scenarios", J.List (List.map scenario_doc results));
        ( "invariants",
          J.Obj
            [ ("server_deaths", num deaths);
              ("bitwise_mismatches", num mismatches);
              ("fd_leak", num fd_leak) ] );
        ("passed", J.Bool passed) ]
  in
  Obs.Schema.check ~name:out Obs.Schemas.chaos_report json;
  J.write_file out json;
  Printf.printf "  invariants: deaths %d, mismatches %d, fd leak %d -> %s\n"
    deaths mismatches fd_leak
    (if passed then "PASS" else "FAIL");
  Printf.printf "  written to %s\n%!" out;
  if not passed then exit 1

let chaos_cmd =
  let doc =
    "Run the seeded fault-injection campaign against a real forked shard fleet and write \
     CHAOS_report.json (fpan-chaos/1): each named scenario injects one fault family \
     (syscall noise at the read/write/wait seams, accept EMFILE, dispatch drops, wire \
     corruption/truncation/resets, latency stalls, shard SIGKILL storms, admission \
     overload) while a retrying client drives a deterministic request mix, asserting that \
     no server dies, every answer is bitwise-identical to the fault-free scalar path, and \
     no descriptor leaks.  The report is byte-reproducible for a fixed seed."
  in
  let seed_arg =
    Arg.(value & opt int 0 & info [ "seed" ] ~docv:"N" ~doc:"Campaign seed.")
  in
  let shards_arg =
    Arg.(value & opt int 2
         & info [ "shards" ] ~docv:"N" ~doc:"Shard processes per fleet scenario.")
  in
  let requests_arg =
    Arg.(value & opt int 48
         & info [ "requests" ] ~docv:"N" ~doc:"Requests driven per scenario.")
  in
  let scenarios_arg =
    Arg.(value & opt string ""
         & info [ "scenarios" ] ~docv:"NAME,..."
             ~doc:"Scenario subset to run (default: the full matrix).")
  in
  let out_arg =
    Arg.(value & opt string "CHAOS_report.json"
         & info [ "out"; "o" ] ~docv:"FILE" ~doc:"JSON output path.")
  in
  Cmd.v (Cmd.info "chaos" ~doc)
    Term.(const chaos_run $ seed_arg $ shards_arg $ requests_arg $ scenarios_arg
          $ out_arg)

(* ------------------------------------------------------------------ *)
(* adaptive: compute-path benchmark + fuzz gate of SLA-driven tier
   escalation.  Times the escalation engine (lib/adaptive) on a
   mixed-SLA workload against always-mf4 evaluation of the same
   requests, records the escalation histogram, runs the Sla_fuzz
   obligations (containment / monotonicity / bitwise identity), and
   merges the "adaptive" block into the BENCH_serve.json that loadgen
   writes. *)

module AD = Adaptive

let ad_op_of_name name =
  match AD.Sla.of_wire ~op:(String.trim name) ~prog:[] with
  | Some op -> op
  | None -> (
      (* allow the fused chains by their program spelling *)
      match AD.Sla.of_wire ~op:"program" ~prog:(String.split_on_char ';' (String.trim name)) with
      | Some op -> op
      | None ->
          Printf.eprintf "adaptive: op %s is not sla-certifiable (certifiable: %s)\n" name
            (String.concat ", " AD.Sla.supported_wire_ops);
          exit 2)

(* Deterministic mixed-SLA workload: ops x budgets round-robin,
   2-component operands so every ladder starts at mf2 and the budget
   alone decides how far each request climbs. *)
let ad_workload ~cases ~n ~ops ~slas ~seed =
  let rng = Random.State.make [| 0xada; seed |] in
  Array.init cases (fun i ->
      let op = List.nth ops (i mod List.length ops) in
      let q = List.nth slas (i / List.length ops mod List.length slas) in
      let element ?(pos = false) () =
        let v = Fpan.Gen.expansion rng ~n:2 ~e0_min:(-8) ~e0_max:8 () in
        if pos && v.(0) < 0.0 then Array.map Float.neg v else v
      in
      let vec len = Array.init len (fun _ -> element ()) in
      let x, y, z =
        match op with
        | AD.Sla.Add | AD.Sla.Mul | AD.Sla.Div -> ([| element () |], [| element () |], [||])
        | AD.Sla.Sqrt -> ([| element ~pos:true () |], [||], [||])
        | AD.Sla.Sum | AD.Sla.Chain [ "sum" ] -> (vec n, [||], [||])
        | AD.Sla.Dot | AD.Sla.Chain [ "mul"; "sum" ] -> (vec n, vec n, [||])
        | AD.Sla.Axpy -> (vec n, vec (n + 1), [||])
        | AD.Sla.Chain _ -> (vec n, vec (n + 1), vec n)
      in
      (op, q, { AD.Sla.x; y; z }))

let ad_best_of reps f =
  ignore (f ());
  let best = ref infinity in
  for _ = 1 to Stdlib.max 1 reps do
    let t0 = Unix.gettimeofday () in
    f ();
    let dt = Unix.gettimeofday () -. t0 in
    if dt < !best then best := dt
  done;
  !best

let adaptive_run cases n ops_csv slas_csv reps fuzz_cases seed out =
  let module J = Check.Json_out in
  let split s = String.split_on_char ',' s |> List.filter (fun p -> String.trim p <> "") in
  let ops = List.map ad_op_of_name (split ops_csv) in
  let slas =
    List.map
      (fun s ->
        match int_of_string_opt (String.trim s) with
        | Some q when q >= AD.Sla.q_min && q <= AD.Sla.q_max -> q
        | _ ->
            Printf.eprintf "adaptive: bad sla exponent %s (want %d..%d)\n" s AD.Sla.q_min
              AD.Sla.q_max;
            exit 2)
      (split slas_csv)
  in
  if ops = [] || slas = [] then begin
    Printf.eprintf "adaptive: need at least one op and one sla exponent\n";
    exit 2
  end;
  let work = ad_workload ~cases ~n ~ops ~slas ~seed in
  (* one recorded pass: escalation histogram + per-(op,q) mix *)
  let histo = Hashtbl.create 4 in
  let mix = Hashtbl.create 16 in
  let escalations = ref 0 in
  Array.iter
    (fun (op, q, inp) ->
      match AD.Escalate.run ~q ~op inp with
      | Error e ->
          Printf.eprintf "adaptive: escalation failed on a generated case: %s\n" e;
          exit 3
      | Ok o ->
          escalations := !escalations + o.AD.Escalate.escalations;
          let bump tbl key =
            match Hashtbl.find_opt tbl key with
            | Some r -> incr r
            | None -> Hashtbl.add tbl key (ref 1)
          in
          bump histo o.AD.Escalate.chosen;
          bump mix (AD.Sla.op_name op, q))
    work;
  (* timed passes: the SLA-driven path vs always-mf4 over the same
     workload.  Both sides widen the narrow client operands themselves
     (Sla.pad, exact), exactly as the respective service paths do: the
     comparison is "serve these requests adaptively" vs "serve these
     requests at the top tier". *)
  let sla_wall =
    ad_best_of reps (fun () ->
        Array.iter
          (fun (op, q, inp) -> ignore (AD.Escalate.run ~q ~op inp))
          work)
  in
  let mf4_wall =
    ad_best_of reps (fun () ->
        Array.iter
          (fun (op, _, inp) -> ignore (AD.Eval.eval ~terms:4 op (AD.Sla.pad ~terms:4 inp)))
          work)
  in
  let sla_rps = if sla_wall > 0. then Float.of_int cases /. sla_wall else 0. in
  let mf4_rps = if mf4_wall > 0. then Float.of_int cases /. mf4_wall else 0. in
  let speedup = if sla_wall > 0. then mf4_wall /. sla_wall else 0. in
  let tier_order = [ "mf2"; "mf3"; "mf4"; "bigfloat" ] in
  Printf.printf "adaptive: %d cases, %d escalations\n" cases !escalations;
  List.iter
    (fun t ->
      match Hashtbl.find_opt histo t with
      | Some r -> Printf.printf "  chosen %-9s %6d\n" t !r
      | None -> ())
    tier_order;
  Printf.printf "  sla-driven %8.0f req/s   always-mf4 %8.0f req/s   speedup %.2fx\n" sla_rps
    mf4_rps speedup;
  (* the fuzz gate: containment, monotonicity, bitwise identity *)
  let fz = Check.Sla_fuzz.run ~cases:fuzz_cases ~seed () in
  Printf.printf
    "  fuzz: %d cases, %d containment violations, %d monotonicity violations, %d bitwise \
     mismatches\n"
    fz.Check.Sla_fuzz.cases fz.Check.Sla_fuzz.containment_violations
    fz.Check.Sla_fuzz.monotonicity_violations fz.Check.Sla_fuzz.bitwise_mismatches;
  if not (Check.Sla_fuzz.passed fz) then begin
    Printf.eprintf "adaptive: FUZZ GATE FAILED (seed %d replays it)\n" seed;
    exit 3
  end;
  let block =
    J.Obj
      [ ("cases", J.Num (Float.of_int cases));
        ("n", J.Num (Float.of_int n));
        ( "mix",
          J.List
            (Hashtbl.fold
               (fun (op, q) r acc -> ((op, q), !r) :: acc)
               mix []
             |> List.sort compare
             |> List.map (fun ((op, q), count) ->
                    J.Obj
                      [ ("op", J.Str op);
                        ("q", J.Num (Float.of_int q));
                        ("count", J.Num (Float.of_int count)) ])) );
        ( "escalation_histogram",
          J.List
            (List.filter_map
               (fun t ->
                 Option.map
                   (fun r ->
                     J.Obj
                       [ ("chosen", J.Str t); ("count", J.Num (Float.of_int !r)) ])
                   (Hashtbl.find_opt histo t))
               tier_order) );
        ("escalations", J.Num (Float.of_int !escalations));
        ("sla_throughput_rps", J.Num sla_rps);
        ("mf4_throughput_rps", J.Num mf4_rps);
        ("speedup_vs_mf4", J.Num speedup);
        ( "fuzz",
          J.Obj
            [ ("cases", J.Num (Float.of_int fz.Check.Sla_fuzz.cases));
              ( "containment_violations",
                J.Num (Float.of_int fz.Check.Sla_fuzz.containment_violations) );
              ( "monotonicity_violations",
                J.Num (Float.of_int fz.Check.Sla_fuzz.monotonicity_violations) );
              ( "bitwise_mismatches",
                J.Num (Float.of_int fz.Check.Sla_fuzz.bitwise_mismatches) ) ] ) ]
  in
  (* merge into the loadgen artifact, keeping every other field *)
  let doc =
    match J.parse_file out with
    | Ok (J.Obj fields) ->
        J.Obj (List.filter (fun (k, _) -> k <> "adaptive") fields @ [ ("adaptive", block) ])
    | Ok _ | Error _ ->
        Printf.eprintf
          "adaptive: %s missing or unreadable -- run `fpan_tool loadgen` first to create it\n"
          out;
        exit 2
  in
  Obs.Schema.check ~name:out Obs.Schemas.bench_serve doc;
  J.write_file out doc;
  Printf.printf "  merged adaptive block into %s\n" out

let adaptive_cmd =
  let doc =
    "Benchmark and fuzz SLA-driven adaptive-precision evaluation: times the escalation \
     engine (cheapest certified tier first, mf2 -> mf3 -> mf4 -> bigfloat) on a mixed-SLA \
     workload against always-mf4 evaluation of the same requests, records the escalation \
     histogram, runs the certification fuzz gate (certified bounds must contain the true \
     error, escalation must be monotone in the budget, results must match the fixed-tier \
     path bitwise), and merges the results into the BENCH_serve.json written by loadgen."
  in
  let cases_arg =
    Arg.(value & opt int 4096 & info [ "cases" ] ~docv:"N" ~doc:"Workload size per timed pass.")
  in
  let n_arg =
    Arg.(value & opt int 32
         & info [ "n" ] ~docv:"LEN" ~doc:"Vector length for the reduction ops (sum, dot, axpy, chains).")
  in
  let ops_arg =
    Arg.(value & opt string "add,mul,dot,sum"
         & info [ "ops" ] ~docv:"OPS"
             ~doc:"Comma-separated certifiable op mix (fused chains by their program \
                   spelling, e.g. mul;sum).")
  in
  let slas_arg =
    Arg.(value & opt string "20,60,100,140,180"
         & info [ "sla" ] ~docv:"Q,Q,..."
             ~doc:"Error budgets 2^-Q to round-robin over the workload.")
  in
  let reps_arg =
    Arg.(value & opt int 5 & info [ "reps" ] ~docv:"R" ~doc:"Timed repetitions (best-of).")
  in
  let fuzz_arg =
    Arg.(value & opt int 5000
         & info [ "fuzz-cases" ] ~docv:"N" ~doc:"Cases for the certification fuzz gate.")
  in
  let seed_arg =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"S" ~doc:"Deterministic workload seed.")
  in
  let out_arg =
    Arg.(value & opt string "BENCH_serve.json"
         & info [ "out"; "o" ] ~docv:"FILE"
             ~doc:"Loadgen artifact to merge the adaptive block into.")
  in
  Cmd.v (Cmd.info "adaptive" ~doc)
    Term.(const adaptive_run $ cases_arg $ n_arg $ ops_arg $ slas_arg $ reps_arg
          $ fuzz_arg $ seed_arg $ out_arg)

(* ------------------------------------------------------------------ *)
(* fuse: the cross-op fusion ablation.  --dump prints the fused wire
   programs derived by the IR front end (lib/fpan_ir) -- the same
   programs the planar kernels in lib/multifloat/batch.ml are
   generated from.  Bench mode times each fused kernel against its
   op-by-op composition over the same planes, demands bitwise
   equality (fusion never reorders or drops a gate, so anything else
   is a bug), and writes the fpan-bench-fuse/1 artifact. *)

module Fuse_bench
    (M : Multifloat.Ops.S)
    (Vb : Multifloat.Batch.V with type elt = M.t) =
struct
  module E = Runtime.Engine.Make (M) (Vb)
  module RB = Linalg.Refine_batched (M) (Vb)

  let scalar_eq a b =
    Array.for_all2
      (fun u v -> Int64.bits_of_float u = Int64.bits_of_float v)
      (M.components a) (M.components b)

  let vec_eq a b =
    Vb.length a = Vb.length b && Array.for_all2 scalar_eq (Vb.to_array a) (Vb.to_array b)

  (* one warmup call, then best-of wall time (result is from the last
     rep; every rep is deterministic, so any rep's result will do) *)
  let best_of reps f =
    ignore (f ());
    let best = ref infinity and result = ref None in
    for _ = 1 to Stdlib.max 1 reps do
      let t0 = Unix.gettimeofday () in
      let r = f () in
      let dt = Unix.gettimeofday () -. t0 in
      if dt < !best then best := dt;
      result := Some r
    done;
    (!best, Option.get !result)

  let run ~n ~nref ~reps ~workers ~out =
    let module J = Check.Json_out in
    let rng = Random.State.make [| 0xf05e; n; Vb.terms |] in
    let rand_vec len =
      Vb.of_floats (Array.init len (fun _ -> Random.State.float rng 2.0 -. 1.0))
    in
    Printf.printf "fuse: %d-bit ablation, vectors n = %d, matrices n = %d, best of %d\n"
      M.precision_bits n nref reps;
    let mismatches = ref 0 in
    let cell ~kernel ~unfused ~len ~fused_s ~unfused_s ~bitwise =
      if not bitwise then incr mismatches;
      Printf.printf "  %-13s fused %.6f s   %-9s %.6f s   %.2fx  bitwise %s\n" kernel fused_s
        unfused unfused_s (unfused_s /. fused_s)
        (if bitwise then "ok" else "MISMATCH");
      J.Obj
        [ ("kernel", J.Str kernel);
          ("unfused", J.Str unfused);
          ("bits", J.Num (Float.of_int M.precision_bits));
          ("n", J.Num (Float.of_int len));
          ("reps", J.Num (Float.of_int reps));
          ("fused_wall_s", J.Num fused_s);
          ("unfused_wall_s", J.Num unfused_s);
          ("speedup", J.Num (unfused_s /. fused_s));
          ("bitwise_equal", J.Bool bitwise) ]
    in
    (* DOT (fig. 9): the fused mul;sum wire program in one pass vs the
       unfused spelling -- elementwise mul into a temporary plane set,
       then the sum fold re-reading it. *)
    let dot_cell =
      let x = rand_vec n and y = rand_vec n in
      let tmp = Vb.create n in
      let t_f, r_f =
        best_of reps (fun () -> Vb.dot ~init:M.zero ~x ~xoff:0 ~y ~yoff:0 ~len:n)
      in
      let t_u, r_u =
        best_of reps (fun () ->
            Vb.mul ~dst:tmp x y;
            Vb.sum ~init:M.zero ~x:tmp ~xoff:0 ~len:n)
      in
      cell ~kernel:"dot" ~unfused:"mul+sum" ~len:n ~fused_s:t_f ~unfused_s:t_u
        ~bitwise:(scalar_eq r_f r_u)
    in
    (* AXPY;DOT: the fused single-pass update-and-fold vs AXPY followed
       by DOT re-reading the updated plane set.  Also checks the
       engine's tree-reduced fused path against its own two-pass
       composition at [workers]. *)
    let axpy_dot_cell =
      let alpha = Vb.get (rand_vec 1) 0 in
      let x = rand_vec n and y0 = rand_vec n and w = rand_vec n in
      let t_f, (acc_f, y_f) =
        best_of reps (fun () ->
            let y = Vb.copy y0 in
            let acc = Vb.axpy_dot ~lo:0 ~hi:n ~alpha ~x ~y ~w ~init:M.zero in
            (acc, y))
      in
      let t_u, (acc_u, y_u) =
        best_of reps (fun () ->
            let y = Vb.copy y0 in
            Vb.axpy ~lo:0 ~hi:n ~alpha ~x ~y;
            (Vb.dot ~init:M.zero ~x:y ~xoff:0 ~y:w ~yoff:0 ~len:n, y))
      in
      let rt_ok =
        Runtime.Sched.with_sched ~workers (fun rt ->
            let yf = Vb.copy y0 and yu = Vb.copy y0 in
            let af = E.axpy_dot rt ~alpha ~x ~y:yf ~w () in
            E.axpy rt ~alpha ~x ~y:yu ();
            let au = E.dot rt yu w in
            scalar_eq af au && vec_eq yf yu)
      in
      cell ~kernel:"axpy_dot" ~unfused:"axpy+dot" ~len:n ~fused_s:t_f ~unfused_s:t_u
        ~bitwise:(scalar_eq acc_f acc_u && vec_eq y_f y_u && rt_ok)
    in
    (* GEMV residual: per-row fused dot;sub vs GEMV into a temporary
       vector followed by the elementwise subtract.  Also checks the
       row-parallel engine path at [workers]. *)
    let gemv_cell =
      let m = nref in
      let a = rand_vec (m * m) and xv = rand_vec m and bv = rand_vec m in
      let r_f = Vb.create m and r_u = Vb.create m and tmp = Vb.create m in
      let t_f, () =
        best_of reps (fun () ->
            for i = 0 to m - 1 do
              Vb.set r_f i
                (Vb.dot_sub ~b:(Vb.get bv i) ~x:a ~xoff:(i * m) ~y:xv ~yoff:0 ~len:m)
            done)
      in
      let t_u, () =
        best_of reps (fun () ->
            for i = 0 to m - 1 do
              Vb.set tmp i (Vb.dot ~init:M.zero ~x:a ~xoff:(i * m) ~y:xv ~yoff:0 ~len:m)
            done;
            Vb.sub ~dst:r_u bv tmp)
      in
      let rt_ok =
        Runtime.Sched.with_sched ~workers (fun rt ->
            let r_rt = Vb.create m in
            E.gemv_residual rt ~m ~n:m ~a ~x:xv ~b:bv ~r:r_rt ();
            vec_eq r_rt r_f)
      in
      cell ~kernel:"gemv_residual" ~unfused:"gemv+sub" ~len:m ~fused_s:t_f ~unfused_s:t_u
        ~bitwise:(vec_eq r_f r_u && rt_ok)
    in
    (* Refinement: solve a diagonally dominant system once (sequential
       and at [workers] -- solutions and stats must agree bitwise),
       then time the per-iteration extended-precision work, the
       residual pass, fused vs unfused at the converged solution. *)
    let refine =
      let nr = nref in
      let rng2 = Random.State.make [| 0xbeef; nr; Vb.terms |] in
      let a = Array.init (nr * nr) (fun _ -> Random.State.float rng2 2.0 -. 1.0) in
      for i = 0 to nr - 1 do
        a.((i * nr) + i) <- a.((i * nr) + i) +. Float.of_int nr
      done;
      let b = Array.init nr (fun _ -> M.of_float (Random.State.float rng2 2.0 -. 1.0)) in
      let x_seq, stats = RB.solve ~n:nr ~a ~b () in
      let x_rt, stats_rt =
        Runtime.Sched.with_sched ~workers (fun rt -> RB.solve ~rt ~n:nr ~a ~b ())
      in
      let det_ok =
        stats_rt.RB.iterations = stats.RB.iterations && Array.for_all2 scalar_eq x_rt x_seq
      in
      let am = Vb.of_floats a and xv = Vb.of_array x_seq and bv = Vb.of_array b in
      let r_f = Vb.create nr and r_u = Vb.create nr and tmp = Vb.create nr in
      let t_f, () =
        best_of reps (fun () ->
            for i = 0 to nr - 1 do
              Vb.set r_f i
                (Vb.dot_sub ~b:(Vb.get bv i) ~x:am ~xoff:(i * nr) ~y:xv ~yoff:0 ~len:nr)
            done)
      in
      let t_u, () =
        best_of reps (fun () ->
            for i = 0 to nr - 1 do
              Vb.set tmp i (Vb.dot ~init:M.zero ~x:am ~xoff:(i * nr) ~y:xv ~yoff:0 ~len:nr)
            done;
            Vb.sub ~dst:r_u bv tmp)
      in
      let bitwise = vec_eq r_f r_u && det_ok in
      if not bitwise then incr mismatches;
      Printf.printf
        "  refine        fused iter %.6f s   unfused iter %.6f s   %.2fx  (%d iterations)  bitwise %s\n"
        t_f t_u (t_u /. t_f) stats.RB.iterations
        (if bitwise then "ok" else "MISMATCH");
      J.Obj
        [ ("bits", J.Num (Float.of_int M.precision_bits));
          ("n", J.Num (Float.of_int nr));
          ("iterations", J.Num (Float.of_int stats.RB.iterations));
          ("fused_iter_s", J.Num t_f);
          ("unfused_iter_s", J.Num t_u);
          ("speedup", J.Num (t_u /. t_f));
          ("bitwise_equal", J.Bool bitwise) ]
    in
    let json =
      J.Obj
        [ ("schema", J.Str "fpan-bench-fuse/1");
          ("mode", J.Str "ablation-fusion");
          ("workers", J.Num (Float.of_int workers));
          ("cells", J.List [ dot_cell; axpy_dot_cell; gemv_cell ]);
          ("refine", refine) ]
    in
    Obs.Schema.check ~name:out Obs.Schemas.bench_fuse json;
    J.write_file out json;
    Printf.printf "  written to %s\n" out;
    if !mismatches > 0 then begin
      Printf.eprintf "fuse: %d bitwise mismatch(es) -- fusion changed results\n" !mismatches;
      exit 1
    end
end

let fuse_run dump terms n nref reps workers out =
  drain_on_signal ();
  if terms < 2 || terms > 4 then begin
    Printf.eprintf "fuse: --terms must be 2, 3, or 4 (got %d)\n" terms;
    exit 2
  end;
  match dump with
  | Some chain ->
      let dump_one (_, f) = Format.printf "%a@.@." Fpan_ir.Ir.pp (f terms) in
      if chain = "all" then List.iter dump_one Fpan_ir.Fuse.chains
      else (
        match List.assoc_opt chain Fpan_ir.Fuse.chains with
        | Some f -> dump_one (chain, f)
        | None ->
            Printf.eprintf "fuse: unknown chain %S (have: %s)\n" chain
              (String.concat ", " (List.map fst Fpan_ir.Fuse.chains));
            exit 2)
  | None -> (
      match terms with
      | 2 ->
          let module F = Fuse_bench (Multifloat.Mf2) (Multifloat.Batch.Mf2v) in
          F.run ~n ~nref ~reps ~workers ~out
      | 3 ->
          let module F = Fuse_bench (Multifloat.Mf3) (Multifloat.Batch.Mf3v) in
          F.run ~n ~nref ~reps ~workers ~out
      | _ ->
          let module F = Fuse_bench (Multifloat.Mf4) (Multifloat.Batch.Mf4v) in
          F.run ~n ~nref ~reps ~workers ~out)

let fuse_cmd =
  let doc =
    "Cross-op fusion ablation over the FPAN wire-program IR: --dump prints the fused wire \
     programs the planar kernels are generated from; otherwise times the fused kernels (dot, \
     axpy_dot, gemv_residual, the Refine_batched residual pass) against their op-by-op \
     compositions, demands bitwise equality, and writes BENCH_fuse.json."
  in
  let dump_arg =
    Arg.(
      value
      & opt ~vopt:(Some "all") (some string) None
      & info [ "dump" ] ~docv:"CHAIN"
          ~doc:"Print the named fused wire program (default: all of them) and exit.")
  in
  let terms_arg =
    Arg.(value & opt int 2 & info [ "terms" ] ~docv:"T" ~doc:"MultiFloat terms (2, 3, or 4).")
  in
  let n_arg =
    Arg.(value & opt int 65536 & info [ "n" ] ~docv:"N" ~doc:"Vector length for the 1-D kernels.")
  in
  let nref_arg =
    Arg.(
      value & opt int 256
      & info [ "nref" ] ~docv:"N" ~doc:"Matrix dimension for gemv_residual and refinement.")
  in
  let reps_arg =
    Arg.(value & opt int 5 & info [ "reps" ] ~docv:"R" ~doc:"Timed repetitions (best-of).")
  in
  let workers_arg =
    Arg.(
      value & opt int 4
      & info [ "workers" ] ~docv:"W" ~doc:"Workers for the runtime determinism checks.")
  in
  let out_arg =
    Arg.(
      value & opt string "BENCH_fuse.json"
      & info [ "out"; "o" ] ~docv:"FILE" ~doc:"JSON output path.")
  in
  Cmd.v (Cmd.info "fuse" ~doc)
    Term.(
      const fuse_run $ dump_arg $ terms_arg $ n_arg $ nref_arg $ reps_arg $ workers_arg $ out_arg)

(* ------------------------------------------------------------------ *)
(* verify: exhaustive small-width verification certificates.  Bit-blast
   the networks and fused chains to constraint circuits, enumerate the
   whole reduced-width operand space on the runtime, and write the
   fpan-verify/1 certificate.  Exit 1 on any violation, 2 if the
   verifier's own mutant self-test fails. *)

let verify_net_spec ?width name =
  let spec =
    match name with
    | "add2" -> Some (Verify.Sweep.add_network ?width ~window:1 ~gap:2 Fpan.Networks.add2 ~terms:2)
    | "add3" ->
        Some
          (Verify.Sweep.add_network ~width:(Option.value width ~default:3) ~window:1 ~gap:2
             Fpan.Networks.add3 ~terms:3)
    | "add4" ->
        Some
          (Verify.Sweep.add_network ~width:(Option.value width ~default:3) ~window:1 ~gap:1
             Fpan.Networks.add4 ~terms:4)
    | "mul2" -> Some (Verify.Sweep.mul_network ?width ~window:1 ~gap:2 Fpan.Networks.mul2 ~terms:2)
    | "mul3" ->
        Some
          (Verify.Sweep.mul_network ~width:(Option.value width ~default:3) ~window:1 ~gap:1
             Fpan.Networks.mul3 ~terms:3)
    | "sloppy-add2" ->
        let s = Verify.Mutants.mutant_spec () in
        Some (match width with None -> s | Some w -> { s with Verify.Sweep.width = w })
    | _ -> None
  in
  match spec with
  | Some s -> s
  | None ->
      Printf.eprintf "verify: unknown network %s (add2 add3 add4 mul2 mul3 sloppy-add2)\n" name;
      exit 2

let verify_chain_spec ?width name =
  (* "name:terms", e.g. sum_step:2 *)
  let chain, terms =
    match String.rindex_opt name ':' with
    | Some i ->
        ( String.sub name 0 i,
          try int_of_string (String.sub name (i + 1) (String.length name - i - 1))
          with _ ->
            Printf.eprintf "verify: bad chain spec %s (want name:terms)\n" name;
            exit 2 )
    | None -> (name, 2)
  in
  let default_width = match chain with "dot_step" | "mul" -> 3 | _ -> 4 in
  try Verify.Sweep.chain ~width:(Option.value width ~default:default_width) ~window:1 ~gap:2 chain ~terms
  with Invalid_argument msg ->
    prerr_endline msg;
    exit 2

let verify_run networks chains gate_width sweep_width workers max_cex no_self_test out =
  drain_on_signal ();
  let split_commas s = String.split_on_char ',' s |> List.filter (fun p -> p <> "") in
  (* The verifier must first prove it can catch a broken network at
     all: sloppy-add2 (a dropped TwoSum error) has to fail with a
     small shrunk counterexample, and the real add2 has to pass. *)
  if not no_self_test then begin
    match Verify.Mutants.self_test ~workers () with
    | Error msg ->
        prerr_endline ("verify: " ^ msg);
        exit 2
    | Ok f ->
        Printf.printf "self-test: sloppy-add2 caught (%s violation), shrunk to %d terms\n%!"
          (Verify.Sweep.obligation_name f.Verify.Sweep.obligation)
          f.Verify.Sweep.shrunk_terms
  end;
  let specs =
    List.map (verify_net_spec ?width:sweep_width) (split_commas networks)
    @ List.map (verify_chain_spec ?width:sweep_width) (split_commas chains)
  in
  let gate =
    if gate_width = 0 then None
    else begin
      let fmt = Gpu32.Minifloat.fmt ~p:gate_width ~emin:(-6) ~emax:6 in
      let g = Verify.Sweep.gate_level ~workers fmt in
      Printf.printf
        "gate level p=%d [%d values, %d ordered pairs]: two_sum %d/%d, fast_two_sum %d/%d, \
         two_prod %d/%d checked/skipped -> %s\n\
         %!"
        gate_width g.Verify.Sweep.values g.Verify.Sweep.pairs
        g.Verify.Sweep.two_sum.Verify.Sweep.g_checked g.Verify.Sweep.two_sum.Verify.Sweep.g_skipped
        g.Verify.Sweep.fast_two_sum.Verify.Sweep.g_checked
        g.Verify.Sweep.fast_two_sum.Verify.Sweep.g_skipped
        g.Verify.Sweep.two_prod.Verify.Sweep.g_checked
        g.Verify.Sweep.two_prod.Verify.Sweep.g_skipped
        (if Verify.Sweep.gate_passed g then "PASS" else "VIOLATED");
      Some g
    end
  in
  let results =
    List.map
      (fun spec ->
        let r =
          try Verify.Sweep.run ~max_cex ~workers spec
          with Invalid_argument msg ->
            prerr_endline ("verify: " ^ msg);
            exit 2
        in
        let bound =
          match r.Verify.Sweep.error_bound_exp with
          | Some q -> Printf.sprintf ", worst err 2^%.2f vs bound 2^-%d" r.Verify.Sweep.worst_err_log2 q
          | None -> ""
        in
        Printf.printf "%-18s width %d: %d tuples, %d constraints, footprint %d bits%s -> %s\n%!"
          r.Verify.Sweep.spec.Verify.Sweep.name r.Verify.Sweep.spec.Verify.Sweep.width
          r.Verify.Sweep.tuples r.Verify.Sweep.constraints r.Verify.Sweep.footprint bound
          (if Verify.Sweep.passed r then "PASS" else "VIOLATED");
        List.iter
          (fun (f : Verify.Sweep.failure) ->
            Printf.printf "  FAIL tuple %d (%s), shrunk to %d terms:\n" f.Verify.Sweep.index
              (Verify.Sweep.obligation_name f.Verify.Sweep.obligation)
              f.Verify.Sweep.shrunk_terms;
            Array.iteri
              (fun i o ->
                Printf.printf "    operand %d: %s\n" i
                  (String.concat " " (Array.to_list (Array.map (Printf.sprintf "%h") o))))
              f.Verify.Sweep.shrunk)
          r.Verify.Sweep.failures;
        r)
      specs
  in
  let json = Verify.Sweep.certificate ?gate results in
  Obs.Schema.check ~name:out Obs.Schemas.verify_certificate json;
  Obs.Json_out.write_file out json;
  let ok =
    List.for_all Verify.Sweep.passed results
    && match gate with None -> true | Some g -> Verify.Sweep.gate_passed g
  in
  Printf.printf "certificate: %s (%s)\n" out (if ok then "passed" else "VIOLATIONS");
  if not ok then exit 1

let verify_cmd =
  let doc =
    "Exhaustively verify networks and fused chains at reduced width: bit-blast each to a \
     constraint circuit, enumerate every operand tuple of the small-width space on the \
     work-stealing runtime, check EFT exactness, output nonoverlap, the scaled error bound, and \
     bitwise circuit-vs-interpreter equivalence, and write a machine-readable fpan-verify/1 \
     certificate.  Deterministic for any --workers.  Exits 1 on any violation (with a shrunk \
     counterexample), 2 if the verifier's own mutant self-test fails."
  in
  let networks_arg =
    Arg.(value & opt string "add2,add3,mul2"
         & info [ "networks" ] ~docv:"NAMES"
             ~doc:"Comma-separated networks to sweep (add2 add3 add4 mul2 mul3, plus the seeded \
                   mutant sloppy-add2).  Empty to skip.")
  in
  let chains_arg =
    Arg.(value & opt string "sum_step:2,dot_step:2,residual_tail:2"
         & info [ "chains" ] ~docv:"NAMES"
             ~doc:"Comma-separated fused chains as name:terms (see fpan_tool fuse --dump).  \
                   Empty to skip.")
  in
  let width_arg =
    Arg.(value & opt int 8
         & info [ "width" ] ~docv:"BITS"
             ~doc:"Gate-level format precision: every ordered pair of the full width-BITS format \
                   (emin -6, emax 6) is checked for TwoSum/FastTwoSum/TwoProd exactness.  0 \
                   skips the gate level.")
  in
  let sweep_width_arg =
    Arg.(value & opt (some int) None
         & info [ "sweep-width" ] ~docv:"BITS"
             ~doc:"Override every network/chain sweep width (defaults are tuned per target; the \
                   footprint guard rejects combinations whose double checks would stop being \
                   exact).")
  in
  let workers_arg =
    Arg.(value & opt int (Domain.recommended_domain_count ())
         & info [ "workers"; "j" ] ~docv:"N" ~doc:"Worker domains for the sweeps.")
  in
  let max_cex_arg =
    Arg.(value & opt int 5
         & info [ "max-cex" ] ~docv:"K" ~doc:"Counterexamples recorded and shrunk per sweep.")
  in
  let no_self_test_arg =
    Arg.(value & flag
         & info [ "no-self-test" ] ~doc:"Skip the sloppy-add2 mutant self-test (tests only).")
  in
  let out_arg =
    Arg.(value & opt string "VERIFY_core.json"
         & info [ "out"; "o" ] ~docv:"FILE" ~doc:"Where to write the certificate.")
  in
  Cmd.v (Cmd.info "verify" ~doc)
    Term.(
      const verify_run $ networks_arg $ chains_arg $ width_arg $ sweep_width_arg $ workers_arg
      $ max_cex_arg $ no_self_test_arg $ out_arg)

let () =
  let doc = "Inspect and verify floating-point accumulation networks." in
  let info = Cmd.info "fpan_tool" ~doc in
  (* bare `fpan_tool` prints the unified usage instead of an error *)
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  let group =
    Cmd.group ~default info
      [ list_cmd; show_cmd; check_cmd; check_all_cmd; check_n_cmd; dot_cmd; search_cmd;
        analyze_cmd; enumerate_cmd; fuzz_cmd; verify_cmd; bench_sched_cmd; fuse_cmd; trace_cmd; serve_cmd;
        loadgen_cmd; adaptive_cmd; chaos_cmd ]
  in
  match Cmd.eval_value group with
  | Ok (`Ok ()) | Ok `Help | Ok `Version -> exit 0
  | Error (`Parse | `Term) ->
      (* cmdliner already printed the diagnostic (unknown command ->
         `Parse, unknown/malformed option -> `Term); add the one-line
         hint and use the conventional usage-error status *)
      prerr_endline "fpan_tool: unknown or malformed option -- try 'fpan_tool --help'";
      exit 2
  | Error `Exn -> exit Cmd.Exit.internal_error
