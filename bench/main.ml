(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Section 5) on this machine, plus the ablations called
   out in DESIGN.md.

   Usage:
     dune exec bench/main.exe                 -- all experiments
     dune exec bench/main.exe -- fig9 fig11   -- selected experiments
     dune exec bench/main.exe -- --quick ...  -- shorter timing windows

   Experiments: counts accuracy fig8 fig9 fig10 fig11 exponent-range
                ablation-layout ablation-sched ablations application bechamel

   Absolute numbers are OCaml-on-one-core, not Zen 5/M3 silicon; the
   claims under reproduction are the RATIOS and RANKINGS (who wins, by
   roughly what factor).  EXPERIMENTS.md records paper-vs-measured. *)

let min_time = ref 0.30
let rng = Random.State.make [| 0xbe7c; 42 |]

(* ------------------------------------------------------------------ *)
(* Timing                                                              *)

let now_s () = Int64.to_float (Monotonic_clock.now ()) *. 1e-9

(* Run [f] repeatedly for at least [!min_time] seconds and return
   throughput in billions of extended-precision operations per second
   ([ops] operations per call, mul+add convention). *)
let gops ~ops f =
  f ();
  (* warmup + determine a batch size that lasts >= ~3ms *)
  let batch = ref 1 in
  let rec calibrate () =
    let t0 = now_s () in
    for _ = 1 to !batch do
      f ()
    done;
    let dt = now_s () -. t0 in
    if dt < 3e-3 && !batch < 1 lsl 20 then begin
      batch := !batch * 4;
      calibrate ()
    end
  in
  calibrate ();
  let best = ref 0.0 in
  let t_start = now_s () in
  while now_s () -. t_start < !min_time do
    let t0 = now_s () in
    for _ = 1 to !batch do
      f ()
    done;
    let dt = now_s () -. t0 in
    let rate = Float.of_int ops *. Float.of_int !batch /. dt in
    if rate > !best then best := rate
  done;
  !best *. 1e-9

(* ------------------------------------------------------------------ *)
(* Kernel benchmarks over a Numeric instance                           *)

(* Which data layout a spec benchmarks: the classic array-of-records
   path, or the planar (structure-of-arrays) batch kernels — the
   OCaml analogue of the paper's cross-element SIMD vectorization. *)
type arith =
  | Scalar of (module Blas.Numeric.S)
  | Batched of (module Blas.Numeric.BATCHED)

type spec = {
  label : string;
  bits : int;
  vec_n : int; (* AXPY/DOT length *)
  mv_n : int; (* GEMV size (n x n) *)
  mm_n : int; (* GEMM size (n x n x n) *)
  num : arith;
}

let layout_name = function Scalar _ -> "aos" | Batched _ -> "planar"

type kernel =
  | Axpy
  | Dot
  | Gemv
  | Gemm

let kernel_name = function Axpy -> "AXPY" | Dot -> "DOT" | Gemv -> "GEMV" | Gemm -> "GEMM"
let all_kernels = [ Axpy; Dot; Gemv; Gemm ]

let random_floats n = Array.init n (fun _ -> Random.State.float rng 2.0 -. 1.0)

let bench_cell_scalar (module N : Blas.Numeric.S) spec kernel =
  let module K = Blas.Kernels.Make (N) in
  match kernel with
  | Axpy ->
      let n = spec.vec_n in
      let x = K.vec_of_floats (random_floats n) in
      let y = K.vec_of_floats (random_floats n) in
      let alpha = N.of_float 0.999999 in
      gops ~ops:n (fun () -> K.axpy ~alpha ~x ~y)
  | Dot ->
      let n = spec.vec_n in
      let x = K.vec_of_floats (random_floats n) in
      let y = K.vec_of_floats (random_floats n) in
      let sink = ref N.zero in
      gops ~ops:n (fun () -> sink := K.dot ~x ~y)
  | Gemv ->
      let n = spec.mv_n in
      let a = K.vec_of_floats (random_floats (n * n)) in
      let x = K.vec_of_floats (random_floats n) in
      let y = Array.make n N.zero in
      gops ~ops:(n * n) (fun () -> K.gemv ~m:n ~n ~a ~x ~y)
  | Gemm ->
      let n = spec.mm_n in
      let a = K.vec_of_floats (random_floats (n * n)) in
      let b = K.vec_of_floats (random_floats (n * n)) in
      let c = Array.make (n * n) N.zero in
      gops ~ops:(n * n * n) (fun () -> K.gemm ~m:n ~n ~k:n ~a ~b ~c)

(* The production parallel substrate for the planar rows: one shared
   work-stealing scheduler (lib/runtime), sized to the machine.  The
   legacy Parallel.Pool path survives as the [ablation-sched]
   baseline. *)
let sched = lazy (Runtime.Sched.create ())

let sched_rt () = Lazy.force sched

let bench_cell_batched (module N : Blas.Numeric.BATCHED) spec kernel =
  let module K = Blas.Kernels.Make_batched (N) in
  let rt = sched_rt () in
  match kernel with
  | Axpy ->
      let n = spec.vec_n in
      let x = K.vec_of_floats (random_floats n) in
      let y = K.vec_of_floats (random_floats n) in
      let alpha = N.of_float 0.999999 in
      gops ~ops:n (fun () -> K.axpy_rt rt ~alpha ~x ~y)
  | Dot ->
      let n = spec.vec_n in
      let x = K.vec_of_floats (random_floats n) in
      let y = K.vec_of_floats (random_floats n) in
      let sink = ref N.zero in
      gops ~ops:n (fun () -> sink := K.dot_rt rt ~x ~y)
  | Gemv ->
      let n = spec.mv_n in
      let a = K.vec_of_floats (random_floats (n * n)) in
      let x = K.vec_of_floats (random_floats n) in
      let y = K.V.create n in
      gops ~ops:(n * n) (fun () -> K.gemv_rt rt ~m:n ~n ~a ~x ~y)
  | Gemm ->
      let n = spec.mm_n in
      let a = K.vec_of_floats (random_floats (n * n)) in
      let b = K.vec_of_floats (random_floats (n * n)) in
      let c = K.V.create (n * n) in
      gops ~ops:(n * n * n) (fun () -> K.gemm_rt rt ~m:n ~n ~k:n ~a ~b ~c ())

let bench_cell spec kernel =
  match spec.num with
  | Scalar num -> bench_cell_scalar num spec kernel
  | Batched num -> bench_cell_batched num spec kernel

(* Size classes: fast expansion arithmetic vs the (orders of magnitude
   slower) software FPU.  Throughput in ops/s is what is reported, so
   the differing problem sizes only control wall-clock per cell. *)
let fast_sizes = (2048, 64, 24)
let slow_sizes = (192, 24, 12)

let mk label bits (vn, gn, mn) num =
  { label; bits; vec_n = vn; mv_n = gn; mm_n = mn; num = Scalar num }

let mkb label bits (vn, gn, mn) num =
  { label; bits; vec_n = vn; mv_n = gn; mm_n = mn; num = Batched num }

(* ------------------------------------------------------------------ *)
(* Library zoo for the CPU tables                                      *)

(* Both MultiFloat<double,1> and CAMPARY at one term ARE native double
   (as in the paper's Figure 9, where their 53-bit rows agree to within
   noise); share one spec so the measurement is taken once. *)
let double_spec = mk "double" 53 fast_sizes (module Blas.Instances.Double)

(* The headline MultiFloat row runs the planar (SoA) batch kernels;
   the same arithmetics over arrays of boxed records ride along as the
   layout ablation (`ablation-layout`, AoS rows below). *)
let multifloats_row =
  [| Some (mkb "double" 53 fast_sizes (module Blas.Instances.Double));
     Some (mkb "MultiFloats (ours)" 103 fast_sizes (module Blas.Instances.Mf2));
     Some (mkb "MultiFloats (ours)" 156 fast_sizes (module Blas.Instances.Mf3));
     Some (mkb "MultiFloats (ours)" 208 fast_sizes (module Blas.Instances.Mf4)) |]

let aos_row =
  [| Some double_spec;
     Some (mk "MultiFloats (AoS)" 103 fast_sizes (module Blas.Instances.Mf2));
     Some (mk "MultiFloats (AoS)" 156 fast_sizes (module Blas.Instances.Mf3));
     Some (mk "MultiFloats (AoS)" 208 fast_sizes (module Blas.Instances.Mf4)) |]

let softfpu_row =
  [| Some (mk "SoftFPU (MPFR-class)" 53 slow_sizes (module Blas.Instances.Fpu53));
     Some (mk "SoftFPU (MPFR-class)" 103 slow_sizes (module Blas.Instances.Fpu103));
     Some (mk "SoftFPU (MPFR-class)" 156 slow_sizes (module Blas.Instances.Fpu156));
     Some (mk "SoftFPU (MPFR-class)" 208 slow_sizes (module Blas.Instances.Fpu208)) |]

let qd_row =
  [| None;
     Some (mk "QD" 103 fast_sizes (module Blas.Instances.Qd_dd));
     None;
     Some (mk "QD" 208 fast_sizes (module Blas.Instances.Qd_qd)) |]

let campary_row =
  [| Some double_spec;
     Some (mk "CAMPARY (certified)" 103 fast_sizes (module Blas.Instances.Campary2));
     Some (mk "CAMPARY (certified)" 156 fast_sizes (module Blas.Instances.Campary3));
     Some (mk "CAMPARY (certified)" 208 fast_sizes (module Blas.Instances.Campary4)) |]

let arb_row =
  [| Some (mk "Ball/Arb (FLINT-class)" 53 slow_sizes (module Blas.Instances.Arb53));
     Some (mk "Ball/Arb (FLINT-class)" 103 slow_sizes (module Blas.Instances.Arb103));
     Some (mk "Ball/Arb (FLINT-class)" 156 slow_sizes (module Blas.Instances.Arb156));
     Some (mk "Ball/Arb (FLINT-class)" 208 slow_sizes (module Blas.Instances.Arb208)) |]

let cpu_rows =
  [ ("MultiFloats (ours)", multifloats_row);
    ("MultiFloats (AoS ablation)", aos_row);
    ("SoftFPU (MPFR-class)", softfpu_row);
    ("Ball/Arb (FLINT-class)", arb_row);
    ("QD", qd_row);
    ("CAMPARY (certified)", campary_row) ]

(* No-FMA architecture proxy for Figure 10: the MultiFloat row uses
   the same multiplication FPANs with TwoProd realized by Dekker
   splitting instead of a hardware FMA (see DESIGN.md). *)
module Nofma2 : Blas.Numeric.S with type t = Multifloat.Mf2.t = struct
  include Blas.Instances.Mf2

  let mul = Multifloat.Mf2.mul_no_fma
end

module Nofma3 : Blas.Numeric.S with type t = Multifloat.Mf3.t = struct
  include Blas.Instances.Mf3

  let mul = Multifloat.Mf3.mul_no_fma
end

module Nofma4 : Blas.Numeric.S with type t = Multifloat.Mf4.t = struct
  include Blas.Instances.Mf4

  let mul = Multifloat.Mf4.mul_no_fma
end

let nofma_row =
  [| Some double_spec;
     Some (mk "MultiFloats (ours)" 103 fast_sizes (module Nofma2));
     Some (mk "MultiFloats (ours)" 156 fast_sizes (module Nofma3));
     Some (mk "MultiFloats (ours)" 208 fast_sizes (module Nofma4)) |]

let nofma_rows =
  [ ("MultiFloats (ours)", nofma_row);
    ("SoftFPU (MPFR-class)", softfpu_row);
    ("Ball/Arb (FLINT-class)", arb_row);
    ("QD", qd_row);
    ("CAMPARY (certified)", campary_row) ]

(* ------------------------------------------------------------------ *)
(* Table rendering                                                     *)

let memo : (spec * kernel * float) list ref = ref []

let bench_cell_memo spec kernel =
  match List.find_opt (fun (s, k, _) -> s == spec && k = kernel) !memo with
  | Some (_, _, g) -> g
  | None ->
      let g = bench_cell spec kernel in
      memo := (spec, kernel, g) :: !memo;
      g

let default_cols = [| "53-bit"; "103-bit"; "156-bit"; "208-bit" |]

let print_table ?(cols = default_cols) title rows kernel =
  Printf.printf "\n%s %s Performance (Gop/s)\n" title (kernel_name kernel);
  Printf.printf "%-26s" "Library";
  Array.iter (Printf.printf " %10s") cols;
  print_newline ();
  let results =
    List.map
      (fun (label, row) ->
        let cells =
          Array.map
            (function
              | None -> None
              | Some spec -> Some (spec, bench_cell_memo spec kernel))
            row
        in
        (label, cells))
      rows
  in
  List.iter
    (fun (label, cells) ->
      Printf.printf "%-26s" label;
      Array.iter
        (function
          | None -> Printf.printf " %10s" "N/A"
          | Some (_, g) -> Printf.printf " %10.4f" g)
        cells;
      print_newline ())
    results;
  results

(* Machine-readable mirror of the printed tables (satellite of the
   layout refactor): one object per kernel, one cell per measured
   (library, precision) point, layout recorded per cell. *)

let kernel_n spec = function
  | Axpy | Dot -> spec.vec_n
  | Gemv -> spec.mv_n
  | Gemm -> spec.mm_n

module Json_out = Check.Json_out

let json_of_tables tables =
  Json_out.List
    (List.map
       (fun (kernel, rows) ->
         Json_out.Obj
           [ ("kernel", Json_out.Str (kernel_name kernel));
             ( "rows",
               Json_out.List
                 (List.map
                    (fun (label, cells) ->
                      Json_out.Obj
                        [ ("label", Json_out.Str label);
                          ( "cells",
                            Json_out.List
                              (Array.to_list cells
                              |> List.filter_map (function
                                   | None -> None
                                   | Some (spec, g) ->
                                       Some
                                         (Json_out.Obj
                                            [ ("name", Json_out.Str spec.label);
                                              ("bits", Json_out.Num (Float.of_int spec.bits));
                                              ("layout", Json_out.Str (layout_name spec.num));
                                              ( "n",
                                                Json_out.Num (Float.of_int (kernel_n spec kernel))
                                              );
                                              ("gops", Json_out.Num g) ]))) ) ])
                    rows) ) ])
       tables)

(* Planar-over-AoS speedup per kernel and precision, from the two
   MultiFloat rows of the fig9 tables. *)
let layout_speedups tables =
  List.concat_map
    (fun (kernel, rows) ->
      match
        ( List.assoc_opt "MultiFloats (ours)" rows,
          List.assoc_opt "MultiFloats (AoS ablation)" rows )
      with
      | Some planar, Some aos ->
          List.filter_map
            (fun p ->
              match (planar.(p), aos.(p)) with
              | Some (spec, gp), Some (_, ga) when ga > 0.0 ->
                  Some
                    (Json_out.Obj
                       [ ("kernel", Json_out.Str (kernel_name kernel));
                         ("bits", Json_out.Num (Float.of_int spec.bits));
                         ("planar_over_aos", Json_out.Num (gp /. ga)) ])
              | _ -> None)
            [ 0; 1; 2; 3 ]
      | _ -> [])
    tables

let write_table_json ?(extra = []) ~file ~experiment ~note tables =
  if tables <> [] then begin
    let speedups = layout_speedups tables in
    let fields =
      [ ("experiment", Json_out.Str experiment);
        ("units", Json_out.Str "Gop/s");
        ("note", Json_out.Str note);
        ("tables", json_of_tables tables) ]
      @ (if speedups = [] then [] else [ ("layout_speedup", Json_out.List speedups) ])
      @ extra
    in
    Json_out.write_file file (Json_out.Obj fields)
  end

(* Execution-telemetry block for BENCH_fig9.json: run the tiled
   103-bit runtime GEMM on a fresh scheduler and serialize the
   per-worker counters.  Two workers minimum so the steal machinery is
   actually exercised (on a one-core box the domains time-slice; the
   counters stay exact either way). *)
let sched_telemetry_block () =
  let n = if !min_time < 0.2 then 96 else 256 in
  let workers = max 2 (Domain.recommended_domain_count ()) in
  let module K = Blas.Kernels.Make_batched (Blas.Instances.Mf2) in
  Runtime.Sched.with_sched ~workers (fun rt ->
      let a = K.vec_of_floats (random_floats (n * n)) in
      let b = K.vec_of_floats (random_floats (n * n)) in
      let c = K.V.create (n * n) in
      Runtime.Sched.reset_stats rt;
      let t0 = now_s () in
      K.gemm_rt rt ~m:n ~n ~k:n ~a ~b ~c ();
      let wall = now_s () -. t0 in
      let per_worker = Runtime.Sched.stats_json (Runtime.Sched.stats rt) in
      ( "sched",
        Json_out.Obj
          [ ("engine", Json_out.Str "work-stealing tiled runtime (lib/runtime)");
            ("kernel", Json_out.Str "GEMM");
            ("bits", Json_out.Num 103.0);
            ("n", Json_out.Num (Float.of_int n));
            ("workers", Json_out.Num (Float.of_int workers));
            ("tile", Json_out.Str "32x32");
            ("wall_s", Json_out.Num wall);
            ("per_worker", per_worker) ] ))

let fig9 () =
  print_endline "\n=== Figure 9 (CPU tables): AXPY/DOT/GEMV/GEMM at 53/103/156/208 bits ===";
  print_endline "(this machine; paper values are AMD Zen 5 -- compare rankings and ratios)";
  List.map (fun k -> (k, print_table "CPU" cpu_rows k)) all_kernels

let fig10 () =
  print_endline "\n=== Figure 10 (second architecture): no-FMA proxy (see DESIGN.md) ===";
  print_endline "(paper: Apple M3 with narrow SIMD; here: TwoProd via Dekker splitting,";
  print_endline " which shrinks the multiplication advantage the same way)";
  List.map (fun k -> (k, print_table "no-FMA" nofma_rows k)) all_kernels

let fig8 results =
  print_endline "\n=== Figure 8: ratio of MultiFloats peak over next-best library ===";
  Printf.printf "%-6s %10s %10s %10s %10s\n" "" "53-bit" "103-bit" "156-bit" "208-bit";
  List.iter
    (fun (kernel, table) ->
      let ours = List.assoc "MultiFloats (ours)" table in
      Printf.printf "%-6s" (kernel_name kernel);
      for p = 0 to 3 do
        let best_other =
          List.fold_left
            (fun acc (label, cells) ->
              (* every MultiFloats row is ours — the AoS ablation must
                 not count as a competing library *)
              if String.starts_with ~prefix:"MultiFloats" label then acc
              else match cells.(p) with None -> acc | Some (_, g) -> Float.max acc g)
            0.0 table
        in
        match ours.(p) with
        | Some (_, g) when best_other > 0.0 -> Printf.printf " %9.2fx" (g /. best_other)
        | _ -> Printf.printf " %10s" "-"
      done;
      print_newline ())
    results

let fig11 () =
  print_endline "\n=== Figure 11 (GPU substitute): MultiFloat<float32, N> data-parallel ===";
  print_endline "(paper: AMD RDNA3 with T = float; here: emulated binary32 base, planar";
  print_endline " batched layout through the generic Of_scalar fallback)";
  let specs =
    [| Some (mkb "1-term" 24 fast_sizes (module Blas.Instances.Gpu1));
       Some (mkb "2-term" 49 fast_sizes (module Blas.Instances.Gpu2));
       Some (mkb "3-term" 74 fast_sizes (module Blas.Instances.Gpu3));
       Some (mkb "4-term" 99 fast_sizes (module Blas.Instances.Gpu4)) |]
  in
  let cols = [| "1-term"; "2-term"; "3-term"; "4-term" |] in
  List.map
    (fun kernel -> (kernel, print_table ~cols "GPU(f32)" [ ("MultiFloat<f32,N>", specs) ] kernel))
    all_kernels

(* Focused console view of the tentpole layout claim: same FPAN wire
   sequences, same accumulation order (results bitwise identical —
   test/test_batch.ml), different memory layout.  Cells are shared with
   the fig9 rows, so when fig9 already ran these are free. *)
let ablation_layout () =
  print_endline "\n=== Ablation: planar SoA batch kernels vs AoS record arrays ===";
  Printf.printf "%-6s %6s %12s %12s %10s\n" "kernel" "bits" "planar" "AoS" "speedup";
  List.iter
    (fun kernel ->
      Array.iteri
        (fun p planar ->
          match (planar, aos_row.(p)) with
          | Some sp, Some sa ->
              let gp = bench_cell_memo sp kernel and ga = bench_cell_memo sa kernel in
              Printf.printf "%-6s %6d %12.4f %12.4f %9.2fx\n" (kernel_name kernel) sp.bits gp ga
                (gp /. ga)
          | _ -> ())
        multifloats_row)
    all_kernels;
  print_endline "(the planar path wins twice: no boxed-record pointer chase, and the";
  print_endline " hand-inlined plane loops replace one non-inlined closure call per";
  print_endline " element-op — which is why even the 53-bit row speeds up)"

(* Scheduler ablation: the work-stealing tiled runtime GEMM against
   the legacy row-parallel Parallel.Pool path and the sequential
   batched kernel, at matched domain counts, with bitwise-equality
   checks across every configuration (all three reproduce the
   sequential accumulation order). *)
let ablation_sched () =
  print_endline "\n=== Ablation: work-stealing tiled runtime vs legacy domain pool (103-bit GEMM) ===";
  let n = if !min_time < 0.2 then 96 else 256 in
  let reps = if !min_time < 0.2 then 2 else 3 in
  let module K = Blas.Kernels.Make_batched (Blas.Instances.Mf2) in
  let a = K.vec_of_floats (random_floats (n * n)) in
  let b = K.vec_of_floats (random_floats (n * n)) in
  let time_gemm f =
    (* fresh C per rep (GEMM accumulates); one untimed warmup, then
       report the best wall clock *)
    f (K.V.create (n * n));
    let best = ref infinity in
    let result = ref None in
    for _ = 1 to reps do
      let c = K.V.create (n * n) in
      let t0 = now_s () in
      f c;
      let dt = now_s () -. t0 in
      if dt < !best then best := dt;
      result := Some (K.vec_to_floats c)
    done;
    (!best, Option.get !result)
  in
  let gops_of dt = Float.of_int (n * n * n) /. dt *. 1e-9 in
  let t_seq, ref_c = time_gemm (fun c -> K.gemm ~m:n ~n ~k:n ~a ~b ~c) in
  Printf.printf "  n = %d, %d reps, best wall clock per configuration\n" n reps;
  Printf.printf "  %-34s %10s %10s %9s %8s\n" "configuration" "wall (s)" "Gop/s" "vs seq" "bitwise";
  Printf.printf "  %-34s %10.4f %10.4f %9s %8s\n" "sequential batched kernel" t_seq (gops_of t_seq)
    "1.00x" "ref";
  let check c = if c = ref_c then "yes" else "NO!" in
  List.iter
    (fun d ->
      let t_pool, c_pool =
        Parallel.Pool.with_pool ~domains:d (fun pool ->
            time_gemm (fun c -> K.gemm_pool pool ~m:n ~n ~k:n ~a ~b ~c))
      in
      Printf.printf "  %-34s %10.4f %10.4f %8.2fx %8s\n"
        (Printf.sprintf "pool (row-parallel), %d domains" d)
        t_pool (gops_of t_pool) (t_seq /. t_pool) (check c_pool);
      let (t_rt, c_rt), steals =
        Runtime.Sched.with_sched ~workers:d (fun rt ->
            Runtime.Sched.reset_stats rt;
            let r = time_gemm (fun c -> K.gemm_rt rt ~m:n ~n ~k:n ~a ~b ~c ()) in
            let steals =
              Array.fold_left
                (fun acc s -> acc + s.Runtime.Sched.steals)
                0 (Runtime.Sched.stats rt)
            in
            (r, steals))
      in
      Printf.printf "  %-34s %10.4f %10.4f %8.2fx %8s   (%d steals over %d reps)\n"
        (Printf.sprintf "runtime (tiled, stealing), %d workers" d)
        t_rt (gops_of t_rt) (t_seq /. t_rt) (check c_rt) steals reps)
    [ 1; 2; 4 ];
  print_endline "  (all configurations must agree bitwise: the tile decomposition never";
  print_endline "   splits the k accumulation, so parallelism cannot change a single bit)"

(* ------------------------------------------------------------------ *)
(* Structural counts (Section 4 claims; Figures 2-7 parameters)        *)

let counts () =
  print_endline "\n=== FPAN structure: size / depth / flops (Figures 2-7) ===";
  Printf.printf "%-6s %6s %6s %6s %14s %22s\n" "net" "size" "depth" "flops" "paper (sz,dep)" "error bound";
  let paper = [ ("add2", "(6,4)"); ("add3", "(14,8)"); ("add4", "(26,11)"); ("mul2", "(3,3)");
                ("mul3", "(12,7)"); ("mul4", "(27,10)") ] in
  List.iter
    (fun (name, net) ->
      Printf.printf "%-6s %6d %6d %6d %14s %22s\n" name (Fpan.Network.size net)
        (Fpan.Network.depth net) (Fpan.Network.flops net) (List.assoc name paper)
        (Printf.sprintf "2^-%d" net.Fpan.Network.error_exp))
    Fpan.Networks.all;
  print_endline "\nMultiplication totals (Section 4.2: n(n-1)/2 TwoProds + n products + FPAN):";
  List.iter
    (fun n -> Printf.printf "  %d-term multiply: %d flops\n" n (Fpan.Networks.mul_flops n))
    [ 2; 3; 4 ];
  print_endline "\nStatic no-cancellation certificates (SMT-verifier substitute, DESIGN.md):";
  List.iter
    (fun (name, net) ->
      let kind =
        if String.sub name 0 3 = "mul" then Fpan.Analyze.Mul_inputs (Fpan.Network.size net |> fun _ ->
          int_of_string (String.sub name 3 1))
        else Fpan.Analyze.Add_inputs (int_of_string (String.sub name 3 1))
      in
      let r = Fpan.Analyze.analyze net kind in
      Printf.printf "  %-6s claimed 2^-%d; statically proved 2^%d (no-cancellation regime)\n" name
        net.Fpan.Network.error_exp r.Fpan.Analyze.discarded_total_exponent)
    Fpan.Networks.all

(* ------------------------------------------------------------------ *)
(* Accuracy backstop (checker-driven; Figures 2-7 error bounds)        *)

let accuracy () =
  print_endline "\n=== Accuracy: randomized verification of the FPAN error bounds ===";
  let cases = if !min_time < 0.2 then 50_000 else 300_000 in
  Printf.printf "%-6s %10s %14s %16s %10s\n" "net" "cases" "failures" "worst error" "bound";
  List.iter
    (fun (name, net) ->
      let terms = int_of_string (String.sub name 3 1) in
      let report =
        if String.sub name 0 3 = "mul" then
          Fpan.Checker.check_mul net ~terms ~expand:(Fpan.Networks.mul_expand terms) ~cases
            ~seed:20250704
        else Fpan.Checker.check_add net ~terms ~cases ~seed:20250704
      in
      Printf.printf "%-6s %10d %14d %15.2f %10s\n" name report.Fpan.Checker.cases_run
        report.Fpan.Checker.failure_count report.Fpan.Checker.worst_error_log2
        (Printf.sprintf "2^-%d" net.Fpan.Network.error_exp))
    Fpan.Networks.all

(* ------------------------------------------------------------------ *)
(* Section 4.4: exponent range limits of low-precision base types      *)

module type EXP_MEASURE = sig
  type t

  val of_float : float -> t
  val components : t -> float array
  val add : t -> t -> t
  val mul : t -> t -> t
end

let exponent_range () =
  print_endline "\n=== Section 4.4: expansions cannot extend the exponent range ===";
  print_endline "(effective precision of n-term expansions; the paper: precision is lost";
  print_endline " 'at roughly 4 terms in single precision and just 2 terms in half precision')";
  let rng2 = Random.State.make [| 44; 11 |] in
  let measure (type a) ?(step = 53) ?(terms = 1) (module G : EXP_MEASURE with type t = a) =
    (* worst relative error of mul over random full-width inputs near
       scale 1: each operand carries [terms] components separated by
       the base precision. *)
    let rand_full () =
      let acc = ref (G.of_float (1.0 +. Random.State.float rng2 1.0)) in
      for i = 1 to terms - 1 do
        acc :=
          G.add !acc (G.of_float (Float.ldexp (Random.State.float rng2 2.0 -. 1.0) (-i * step)))
      done;
      !acc
    in
    let worst = ref 0.0 in
    for _ = 1 to 2000 do
      let x = rand_full () in
      let y = rand_full () in
      let p = G.mul x y in
      let exact =
        Exact.mul
          (Exact.sum_floats (G.components x))
          (Exact.sum_floats (G.components y))
      in
      let diff = Array.fold_left Exact.grow exact (Array.map Float.neg (G.components p)) in
      let d = Float.abs (Exact.approx (Exact.compress diff)) in
      let r = Float.abs (Exact.approx (Exact.compress exact)) in
      if r > 0.0 && d /. r > !worst then worst := d /. r
    done;
    if !worst = 0.0 then Float.infinity else -.Float.log2 !worst
  in
  let module H1 = Multifloat.Generic.Make (Gpu32.F16) (struct let terms = 1 end) in
  let module H2 = Multifloat.Generic.Make (Gpu32.F16) (struct let terms = 2 end) in
  let module H3 = Multifloat.Generic.Make (Gpu32.F16) (struct let terms = 3 end) in
  let module H4 = Multifloat.Generic.Make (Gpu32.F16) (struct let terms = 4 end) in
  Printf.printf "%-22s %8s %8s %8s %8s\n" "base type" "1-term" "2-term" "3-term" "4-term";
  Printf.printf "%-22s %8.1f %8.1f %8.1f %8.1f   (ideal 11/23/35/47)\n" "binary16 (5-bit exp)"
    (measure ~step:11 ~terms:1 (module H1))
    (measure ~step:11 ~terms:2 (module H2))
    (measure ~step:11 ~terms:3 (module H3))
    (measure ~step:11 ~terms:4 (module H4));
  Printf.printf "%-22s %8.1f %8.1f %8.1f %8.1f   (ideal 24/49/74/99)\n" "binary32 (8-bit exp)"
    (measure ~step:24 ~terms:1 (module Gpu32.Gpu.Mf1))
    (measure ~step:24 ~terms:2 (module Gpu32.Gpu.Mf2))
    (measure ~step:24 ~terms:3 (module Gpu32.Gpu.Mf3))
    (measure ~step:24 ~terms:4 (module Gpu32.Gpu.Mf4));
  let module D1 = struct
    type t = float

    let of_float x = x
    let components x = [| x |]
    let add = ( +. )
    let mul = ( *. )
  end in
  Printf.printf "%-22s %8.1f %8.1f %8.1f %8.1f   (ideal 53/103/156/208)\n" "binary64 (11-bit exp)"
    (measure ~step:53 ~terms:1 (module D1))
    (measure ~step:53 ~terms:2 (module Multifloat.Mf2))
    (measure ~step:53 ~terms:3 (module Multifloat.Mf3))
    (measure ~step:53 ~terms:4 (module Multifloat.Mf4));
  print_endline "\nbinary16 saturates after ~2 terms (the third term falls below the";
  print_endline "underflow threshold), reproducing the Section 4.4 claim."

(* ------------------------------------------------------------------ *)
(* Ablations                                                           *)

let raw_op_gops (type a) (module N : Blas.Numeric.S with type t = a) op =
  let xs = Array.init 256 (fun _ -> N.of_float (Random.State.float rng 2.0 -. 1.0)) in
  let sink = ref xs.(0) in
  gops ~ops:256 (fun () ->
      for i = 0 to 254 do
        sink := op xs.(i) xs.(i + 1)
      done;
      sink := op !sink xs.(0))

let ablations () =
  print_endline "\n=== Ablations (design choices called out in DESIGN.md) ===";

  print_endline "\n[ablation-fma] TwoProd via hardware FMA vs Dekker splitting:";
  let xs = random_floats 1024 in
  let sink = ref 0.0 in
  let g_fma =
    gops ~ops:1024 (fun () ->
        for i = 0 to 1022 do
          let p, e = Eft.two_prod xs.(i) xs.(i + 1) in
          sink := !sink +. p +. e
        done)
  in
  let g_dek =
    gops ~ops:1024 (fun () ->
        for i = 0 to 1022 do
          let p, e = Eft.two_prod_dekker xs.(i) xs.(i + 1) in
          sink := !sink +. p +. e
        done)
  in
  Printf.printf "  two_prod (FMA)    : %8.4f Gop/s\n" g_fma;
  Printf.printf "  two_prod (Dekker) : %8.4f Gop/s   (%.2fx slower)\n" g_dek (g_fma /. g_dek);

  print_endline "\n[ablation-renorm] raw ADD throughput: branch-free FPAN vs branching baselines:";
  Printf.printf "  4-term FPAN add (ours)      : %8.4f Gop/s\n"
    (raw_op_gops (module Blas.Instances.Mf4) Multifloat.Mf4.add);
  Printf.printf "  4-term QD add (branching)   : %8.4f Gop/s\n"
    (raw_op_gops (module Blas.Instances.Qd_qd) Baselines.Qd_qd.add);
  Printf.printf "  4-term CAMPARY certified    : %8.4f Gop/s\n"
    (raw_op_gops (module Blas.Instances.Campary4) Baselines.Campary.add);
  Printf.printf "  2-term FPAN add (ours)      : %8.4f Gop/s\n"
    (raw_op_gops (module Blas.Instances.Mf2) Multifloat.Mf2.add);
  Printf.printf "  2-term QD add (ieee)        : %8.4f Gop/s\n"
    (raw_op_gops (module Blas.Instances.Qd_dd) Baselines.Qd_dd.add);
  Printf.printf "  2-term QD add (sloppy/WRONG): %8.4f Gop/s\n"
    (raw_op_gops (module Blas.Instances.Qd_dd) Baselines.Qd_dd.sloppy_add);

  print_endline "\n[ablation-commutativity] mul3 with vs without the commutativity layer:";
  (* Non-commutative variant: drop the initial TwoSum pairing of
     (p01, p10) in favor of sequential adds -- one gate cheaper. *)
  let noncomm a b =
    match (Multifloat.Mf3.components a, Multifloat.Mf3.components b) with
    | [| a0; a1; a2 |], [| b0; b1; b2 |] ->
        let w0, w3 = Eft.two_prod a0 b0 in
        let w1, w7 = Eft.two_prod a0 b1 in
        let w2, w8 = Eft.two_prod a1 b0 in
        let o2 = (a0 *. b2) +. (a1 *. b1) +. (a2 *. b0) +. w7 +. w8 in
        let w1, w2 = Eft.two_sum w1 w2 in
        let w1, w3 = Eft.two_sum w1 w3 in
        let o2 = o2 +. w2 +. w3 in
        let w1, o2 = Eft.two_sum w1 o2 in
        let w0, w1 = Eft.two_sum w0 w1 in
        let w1, o2 = Eft.two_sum w1 o2 in
        Multifloat.Mf3.of_components [| w0; w1; o2 |]
    | _ -> assert false
  in
  Printf.printf "  commutative mul3 (ours)     : %8.4f Gop/s\n"
    (raw_op_gops (module Blas.Instances.Mf3) Multifloat.Mf3.mul);
  Printf.printf "  non-commutative variant     : %8.4f Gop/s\n"
    (raw_op_gops (module Blas.Instances.Mf3) noncomm);
  let asym = ref 0 in
  let rng2 = Random.State.make [| 5; 6 |] in
  for _ = 1 to 5000 do
    let a = Multifloat.Mf3.of_components (Fpan.Gen.expansion rng2 ~n:3 ~e0_min:(-8) ~e0_max:8 ()) in
    let b = Multifloat.Mf3.of_components (Fpan.Gen.expansion rng2 ~n:3 ~e0_min:(-8) ~e0_max:8 ()) in
    if Multifloat.Mf3.components (noncomm a b) <> Multifloat.Mf3.components (noncomm b a) then
      incr asym
  done;
  Printf.printf "  (non-commutative variant: ab <> ba on %d / 5000 random inputs;\n" !asym;
  Printf.printf "   ours: 0 by construction -- see examples/complex_conjugate.ml)\n";

  print_endline "\n[ablation-compensated] ~2-fold-precision dot products (Section 6 related work):";
  let n = 2048 in
  let xf = random_floats n and yf = random_floats n in
  let sinkf = ref 0.0 in
  let g_dot2 = gops ~ops:n (fun () -> sinkf := Blas.Compensated.dot2 xf yf) in
  let module KM2 = Blas.Kernels.Make (Blas.Instances.Mf2) in
  let xm = KM2.vec_of_floats xf and ym = KM2.vec_of_floats yf in
  let sinkm = ref Blas.Instances.Mf2.zero in
  let g_mf2 = gops ~ops:n (fun () -> sinkm := KM2.dot ~x:xm ~y:ym) in
  let g_oz = gops ~ops:n (fun () -> sinkf := Blas.Ozaki.dot xf yf) in
  Printf.printf "  Dot2 (Ogita-Rump, float in/out) : %8.4f Gop/s\n" g_dot2;
  Printf.printf "  Mf2 dot (composable 107-bit)    : %8.4f Gop/s\n" g_mf2;
  Printf.printf "  Ozaki slice dot (4 slices)      : %8.4f Gop/s\n" g_oz;
  Printf.printf "  (Dot2 is faster but returns only a double and composes no further;\n";
  Printf.printf "   the Ozaki scheme extends exponent range at a large constant cost --\n";
  Printf.printf "   the Section 4.4 trade-offs, quantified.)\n";

  print_endline "\n[ablation-sortnet] branchy magnitude merge vs fixed comparator schedule (Section 6):";
  let rng3 = Random.State.make [| 9; 9 |] in
  let pairs =
    Array.init 256 (fun _ -> Fpan.Gen.pair rng3 ~n:4 ~e0_min:(-40) ~e0_max:40 ())
  in
  let net8 = Fpan.Sortnet.batcher 8 in
  let sink_arr = ref [||] in
  let g_campary =
    gops ~ops:256 (fun () ->
        Array.iter (fun (x, y) -> sink_arr := Baselines.Campary.add x y) pairs)
  in
  let g_sortnet =
    gops ~ops:256 (fun () ->
        Array.iter
          (fun (x, y) ->
            let v = Array.append x y in
            Fpan.Sortnet.sort_floats_by_magnitude net8 v;
            sink_arr := Baselines.Campary.renormalize v 4)
          pairs)
  in
  let g_fpan =
    gops ~ops:256 (fun () ->
        Array.iter
          (fun (x, y) ->
            sink_arr :=
              Multifloat.Mf4.components
                (Multifloat.Mf4.add (Multifloat.Mf4.of_components x) (Multifloat.Mf4.of_components y)))
          pairs)
  in
  Printf.printf "  CAMPARY add (branchy merge)     : %8.4f Gop/s\n" g_campary;
  Printf.printf "  sorting-network merge + renorm  : %8.4f Gop/s\n" g_sortnet;
  Printf.printf "  FPAN add (ours, no merge at all): %8.4f Gop/s\n" g_fpan;

  print_endline "\n[ablation-newton] 208-bit division: Newton-Raphson vs software long division:";
  let mf4_div = raw_op_gops (module Blas.Instances.Mf4) Multifloat.Mf4.div in
  let fpu_div =
    let module B = Baselines.Fpu_emul.P208 in
    let xs = Array.init 64 (fun i -> B.of_float (1.5 +. Float.of_int i)) in
    let sink = ref xs.(0) in
    gops ~ops:64 (fun () ->
        for i = 0 to 62 do
          sink := B.div xs.(i) xs.(i + 1)
        done;
        sink := xs.(0))
  in
  Printf.printf "  Mf4 Newton division         : %8.4f Gop/s\n" mf4_div;
  Printf.printf "  SoftFPU long division       : %8.4f Gop/s   (%.1fx slower)\n" fpu_div
    (mf4_div /. fpu_div)

(* ------------------------------------------------------------------ *)
(* Application benchmark: mixed-precision iterative refinement         *)

let application () =
  print_endline "\n=== Application: solving to 215-bit accuracy (n = 80 dense system) ===";
  print_endline "(the introduction's workload: extended-precision linear algebra)";
  let n = 80 in
  let rng4 = Random.State.make [| 3; 14 |] in
  let a = Array.init (n * n) (fun _ -> Random.State.float rng4 2.0 -. 1.0) in
  for i = 0 to n - 1 do
    a.((i * n) + i) <- 8.0 +. Float.abs a.((i * n) + i)
  done;
  let module L = Linalg.Make (Multifloat.Mf4) in
  let module R = Linalg.Refine (Multifloat.Mf4) in
  let am = L.mat_of_floats a in
  let x_true = Array.init n (fun i -> Multifloat.Mf4.div (Multifloat.Mf4.of_int (i + 1)) (Multifloat.Mf4.of_int 7)) in
  let b = L.mat_vec ~n am x_true in
  let err x =
    let w = ref 0.0 in
    Array.iteri
      (fun i xi -> w := Float.max !w (Float.abs (Multifloat.Mf4.to_float (Multifloat.Mf4.sub xi x_true.(i)))))
      x;
    !w
  in
  let t0 = now_s () in
  let x1 = L.solve ~n am b in
  let t_direct = now_s () -. t0 in
  let t0 = now_s () in
  let x2, stats = R.solve ~n ~a ~b () in
  let t_refine = now_s () -. t0 in
  let module RB = Linalg.Refine_batched (Multifloat.Mf4) (Multifloat.Batch.Mf4v) in
  let t0 = now_s () in
  let x3, stats_b = RB.solve ~n ~a ~b () in
  let t_refine_b = now_s () -. t0 in
  let bitwise_same =
    Array.for_all2
      (fun u v -> Multifloat.Mf4.components u = Multifloat.Mf4.components v)
      x2 x3
  in
  Printf.printf "  direct LU in Mf4 arithmetic : %8.3f s   (err %.1e)\n" t_direct (err x1);
  Printf.printf "  double LU + Mf4 refinement  : %8.3f s   (err %.1e, %d iterations)\n" t_refine
    (err x2) stats.R.iterations;
  Printf.printf "  same, planar (SoA) residual : %8.3f s   (err %.1e, %d iterations%s)\n"
    t_refine_b (err x3) stats_b.RB.iterations
    (if bitwise_same then ", bitwise identical" else ", RESULTS DIFFER");
  Printf.printf "  speedup from mixed precision: %8.1fx\n" (t_direct /. t_refine);
  print_endline "  (refinement amortizes the O(n^3) factorization into doubles and";
  print_endline "   keeps only O(n^2) extended-precision work per iteration)"

(* ------------------------------------------------------------------ *)
(* Bechamel microbenchmarks: one Test.make per table                   *)

let bechamel_suite () =
  print_endline "\n=== Bechamel microbenchmarks (one Test per table/figure) ===";
  let open Bechamel in
  let make_kernel_test name (module N : Blas.Numeric.S) kernel n =
    let module K = Blas.Kernels.Make (N) in
    match kernel with
    | Axpy ->
        let x = K.vec_of_floats (random_floats n) and y = K.vec_of_floats (random_floats n) in
        let alpha = N.of_float 0.999999 in
        Test.make ~name (Staged.stage (fun () -> K.axpy ~alpha ~x ~y))
    | Dot ->
        let x = K.vec_of_floats (random_floats n) and y = K.vec_of_floats (random_floats n) in
        Test.make ~name (Staged.stage (fun () -> ignore (K.dot ~x ~y)))
    | Gemv ->
        let a = K.vec_of_floats (random_floats (n * n)) in
        let x = K.vec_of_floats (random_floats n) in
        let y = Array.make n N.zero in
        Test.make ~name (Staged.stage (fun () -> K.gemv ~m:n ~n ~a ~x ~y))
    | Gemm ->
        let a = K.vec_of_floats (random_floats (n * n)) in
        let b = K.vec_of_floats (random_floats (n * n)) in
        let c = Array.make (n * n) N.zero in
        Test.make ~name (Staged.stage (fun () -> K.gemm ~m:n ~n ~k:n ~a ~b ~c))
  in
  let tests =
    [ make_kernel_test "fig9-axpy-table (mf2 axpy 1024)" (module Blas.Instances.Mf2) Axpy 1024;
      make_kernel_test "fig9-dot-table (mf2 dot 1024)" (module Blas.Instances.Mf2) Dot 1024;
      make_kernel_test "fig9-gemv-table (mf2 gemv 48)" (module Blas.Instances.Mf2) Gemv 48;
      make_kernel_test "fig9-gemm-table (mf2 gemm 24)" (module Blas.Instances.Mf2) Gemm 24;
      make_kernel_test "fig10-tables (no-FMA mf2 dot 1024)" (module Nofma2) Dot 1024;
      make_kernel_test "fig11-table (gpu mf2 dot 1024)" (module Blas.Instances.Gpu2) Dot 1024;
      make_kernel_test "fig8-ratios (qd-dd dot 1024)" (module Blas.Instances.Qd_dd) Dot 1024 ]
  in
  let test = Test.make_grouped ~name:"tables" ~fmt:"%s %s" tests in
  let benchmark () =
    let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 0.5) ~kde:(Some 500) () in
    Benchmark.all cfg Toolkit.Instance.[ monotonic_clock ] test
  in
  let analyze raw =
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Bechamel.Measure.run |]
    in
    Analyze.all ols Toolkit.Instance.monotonic_clock raw
  in
  let results = analyze (benchmark ()) in
  Hashtbl.iter
    (fun name ols ->
      match Analyze.OLS.estimates ols with
      | Some [ est ] -> Printf.printf "  %-42s %12.1f ns/call\n" name est
      | _ -> Printf.printf "  %-42s (no estimate)\n" name)
    results

(* ------------------------------------------------------------------ *)

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let args =
    if List.mem "--quick" args then begin
      min_time := 0.05;
      List.filter (fun a -> a <> "--quick") args
    end
    else args
  in
  let selected =
    if args = [] then
      [ "counts"; "accuracy"; "fig9"; "fig8"; "fig10"; "fig11"; "exponent-range";
        "ablation-layout"; "ablation-sched"; "ablations"; "application"; "bechamel" ]
    else args
  in
  let want x = List.mem x selected in
  Printf.printf "MultiFloats benchmark harness (min window per cell: %.2fs)\n" !min_time;
  if want "counts" then counts ();
  if want "accuracy" then accuracy ();
  let fig9_results = if want "fig9" || want "fig8" then fig9 () else [] in
  let sched_extra = if fig9_results = [] then [] else [ sched_telemetry_block () ] in
  write_table_json ~extra:sched_extra ~file:"BENCH_fig9.json" ~experiment:"fig9"
    ~note:"CPU tables; MultiFloats (ours) = planar SoA batch kernels (runtime-scheduled), AoS ablation = same arithmetic over boxed record arrays"
    fig9_results;
  if want "fig8" then fig8 fig9_results;
  let fig10_results = if want "fig10" then fig10 () else [] in
  write_table_json ~file:"BENCH_fig10.json" ~experiment:"fig10"
    ~note:"no-FMA architecture proxy (TwoProd via Dekker splitting); scalar AoS path"
    fig10_results;
  let fig11_results = if want "fig11" then fig11 () else [] in
  write_table_json ~file:"BENCH_fig11.json" ~experiment:"fig11"
    ~note:"emulated-binary32 MultiFloat types, planar layout via the generic Of_scalar fallback"
    fig11_results;
  if want "exponent-range" then exponent_range ();
  if want "ablation-layout" then ablation_layout ();
  if want "ablation-sched" then ablation_sched ();
  if want "ablations" then ablations ();
  if want "application" then application ();
  if want "bechamel" then bechamel_suite ();
  if Lazy.is_val sched then Runtime.Sched.shutdown (Lazy.force sched);
  print_endline "\nDone."
