(* A small work-queue domain pool.  Workers block on a condition
   variable; jobs are thunks.  Completion is tracked per-batch by a
   counter under the same mutex. *)

type t = {
  mutex : Mutex.t;
  have_work : Condition.t;
  batch_done : Condition.t;
  queue : (unit -> unit) Queue.t;
  mutable outstanding : int;
  mutable first_exn : exn option;  (* first exception of the current batch *)
  mutable closed : bool;
  mutable workers : unit Domain.t array;
}

let record_exn pool e =
  match pool.first_exn with
  | None -> pool.first_exn <- Some e
  | Some _ -> ()

let worker_loop pool =
  let rec loop () =
    Mutex.lock pool.mutex;
    while Queue.is_empty pool.queue && not pool.closed do
      Condition.wait pool.have_work pool.mutex
    done;
    if pool.closed && Queue.is_empty pool.queue then Mutex.unlock pool.mutex
    else begin
      let job = Queue.pop pool.queue in
      Mutex.unlock pool.mutex;
      let err = (try job (); None with e -> Some e) in
      Mutex.lock pool.mutex;
      (match err with Some e -> record_exn pool e | None -> ());
      pool.outstanding <- pool.outstanding - 1;
      if pool.outstanding = 0 then Condition.broadcast pool.batch_done;
      Mutex.unlock pool.mutex;
      loop ()
    end
  in
  loop ()

let create ?domains () =
  let n =
    match domains with
    | Some d -> max 1 d
    | None -> Domain.recommended_domain_count ()
  in
  let pool =
    {
      mutex = Mutex.create ();
      have_work = Condition.create ();
      batch_done = Condition.create ();
      queue = Queue.create ();
      outstanding = 0;
      first_exn = None;
      closed = false;
      workers = [||];
    }
  in
  pool.workers <- Array.init (n - 1) (fun _ -> Domain.spawn (fun () -> worker_loop pool));
  pool

let size pool = Array.length pool.workers + 1

let run_batch pool jobs =
  match jobs with
  | [] -> ()
  | [ only ] -> only ()
  | first :: rest ->
      Mutex.lock pool.mutex;
      pool.first_exn <- None;
      List.iter
        (fun job ->
          Queue.push job pool.queue;
          pool.outstanding <- pool.outstanding + 1)
        rest;
      Condition.broadcast pool.have_work;
      Mutex.unlock pool.mutex;
      (* The calling domain takes the first chunk itself. *)
      let err = (try first (); None with e -> Some e) in
      Mutex.lock pool.mutex;
      (match err with Some e -> record_exn pool e | None -> ());
      (* Drain the queue alongside the workers: with queued jobs and no
         worker domains (a 1-domain pool) the caller runs them all here
         instead of deadlocking on [batch_done]. *)
      while pool.outstanding > 0 do
        match Queue.take_opt pool.queue with
        | Some job ->
            Mutex.unlock pool.mutex;
            let err = (try job (); None with e -> Some e) in
            Mutex.lock pool.mutex;
            (match err with Some e -> record_exn pool e | None -> ());
            pool.outstanding <- pool.outstanding - 1;
            if pool.outstanding = 0 then Condition.broadcast pool.batch_done
        | None -> Condition.wait pool.batch_done pool.mutex
      done;
      let exn = pool.first_exn in
      pool.first_exn <- None;
      Mutex.unlock pool.mutex;
      (match exn with Some e -> raise e | None -> ())

let chunks ~lo ~hi ~parts =
  let n = hi - lo in
  if n <= 0 then []
  else begin
    let parts = max 1 (min parts n) in
    let base = n / parts and extra = n mod parts in
    let rec go i start acc =
      if i = parts then List.rev acc
      else begin
        let len = base + if i < extra then 1 else 0 in
        go (i + 1) (start + len) ((start, start + len) :: acc)
      end
    in
    go 0 lo []
  end

let chunk_ranges ~lo ~hi ~parts = chunks ~lo ~hi ~parts

let parallel_for pool ~lo ~hi f =
  let jobs =
    List.map
      (fun (a, b) () ->
        for i = a to b - 1 do
          f i
        done)
      (chunks ~lo ~hi ~parts:(size pool))
  in
  run_batch pool jobs

let parallel_reduce pool ~lo ~hi ~init ~map ~combine =
  let cs = chunks ~lo ~hi ~parts:(size pool) in
  let partials = Array.make (List.length cs) init in
  let jobs =
    List.mapi
      (fun idx (a, b) () ->
        let acc = ref init in
        for i = a to b - 1 do
          acc := combine !acc (map i)
        done;
        partials.(idx) <- !acc)
      cs
  in
  run_batch pool jobs;
  Array.fold_left combine init partials

let shutdown pool =
  Mutex.lock pool.mutex;
  pool.closed <- true;
  Condition.broadcast pool.have_work;
  Mutex.unlock pool.mutex;
  Array.iter Domain.join pool.workers

let with_pool ?domains f =
  let pool = create ?domains () in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)
