(** A minimal OCaml 5 domain pool: the thread-per-core parallelization
    substrate for the BLAS benchmarks (the paper's kernels run under
    OpenMP with thread-per-core affinity; this is the OCaml analogue).

    Reductions are deterministic: chunk partials are combined in index
    order, so parallel results are bitwise independent of scheduling —
    a requirement for reproducibility experiments. *)

type t

val create : ?domains:int -> unit -> t
(** Start a pool with [domains] workers (default: the machine's
    recommended domain count).  A pool with one domain runs everything
    inline. *)

val size : t -> int
(** Number of workers, including the calling domain. *)

val chunk_ranges : lo:int -> hi:int -> parts:int -> (int * int) list
(** The deterministic contiguous partition of [\[lo, hi)] into at most
    [parts] half-open ranges that {!parallel_for} and
    {!parallel_reduce} use (pure; exposed so batched kernels can
    process the same chunks range-wise and reproduce the pooled
    reduction order bit-for-bit). *)

val run_batch : t -> (unit -> unit) list -> unit
(** Run a list of independent jobs to completion: the calling domain
    takes the first job, then drains the shared queue alongside the
    worker domains (so batches of any size complete even on a
    one-domain pool).  If any job raises, the remaining jobs still
    run, and the first recorded exception re-raises on the calling
    domain once the batch is quiescent. *)

val parallel_for : t -> lo:int -> hi:int -> (int -> unit) -> unit
(** [parallel_for pool ~lo ~hi f] runs [f i] for [lo <= i < hi],
    partitioned into contiguous chunks across workers.  [f] must be
    safe to run concurrently on distinct indices.  An exception aborts
    the remainder of its own chunk only; the first recorded exception
    re-raises on the calling domain after the whole batch finishes. *)

val parallel_reduce : t -> lo:int -> hi:int -> init:'a -> map:(int -> 'a) -> combine:('a -> 'a -> 'a) -> 'a
(** Chunked map-reduce; partials are combined left-to-right in chunk
    order (deterministic). *)

val shutdown : t -> unit
(** Stop the workers.  The pool must not be used afterwards. *)

val with_pool : ?domains:int -> (t -> 'a) -> 'a
(** [with_pool f] creates a pool, runs [f], and always shuts down. *)
