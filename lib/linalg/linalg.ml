exception Singular of int

module Make (M : Multifloat.Ops.S) = struct
  type vec = M.t array
  type mat = M.t array

  let mat_of_floats = Array.map M.of_float
  let vec_of_floats = Array.map M.of_float
  let vec_to_floats = Array.map M.to_float

  let mat_mul ~n a b =
    let c = Array.make (n * n) M.zero in
    for i = 0 to n - 1 do
      for p = 0 to n - 1 do
        let aip = a.((i * n) + p) in
        for j = 0 to n - 1 do
          c.((i * n) + j) <- M.add c.((i * n) + j) (M.mul aip b.((p * n) + j))
        done
      done
    done;
    c

  let mat_vec ~n a x =
    Array.init n (fun i ->
        let acc = ref M.zero in
        for j = 0 to n - 1 do
          acc := M.add !acc (M.mul a.((i * n) + j) x.(j))
        done;
        !acc)

  let residual ~n ~a ~x ~b =
    let ax = mat_vec ~n a x in
    Array.init n (fun i -> M.sub b.(i) ax.(i))

  let norm_inf v = Array.fold_left (fun acc x -> M.max acc (M.abs x)) M.zero v
  let norm2 v = M.sqrt (Array.fold_left (fun acc x -> M.add acc (M.mul x x)) M.zero v)
  let frobenius = norm2

  type lu = {
    factors : mat;
    pivots : int array;
    det_sign : int;
  }

  let lu_factor ~n a =
    let m = Array.copy a in
    let piv = Array.init n (fun i -> i) in
    let sign = ref 1 in
    for k = 0 to n - 1 do
      (* partial pivot on |column k| *)
      let best = ref k in
      for i = k + 1 to n - 1 do
        if Float.abs (M.to_float m.((i * n) + k)) > Float.abs (M.to_float m.((!best * n) + k))
        then best := i
      done;
      if !best <> k then begin
        sign := - !sign;
        let t = piv.(k) in
        piv.(k) <- piv.(!best);
        piv.(!best) <- t;
        for j = 0 to n - 1 do
          let t = m.((k * n) + j) in
          m.((k * n) + j) <- m.((!best * n) + j);
          m.((!best * n) + j) <- t
        done
      end;
      let pivot = m.((k * n) + k) in
      if M.is_zero pivot then raise (Singular k);
      for i = k + 1 to n - 1 do
        let f = M.div m.((i * n) + k) pivot in
        m.((i * n) + k) <- f;
        for j = k + 1 to n - 1 do
          m.((i * n) + j) <- M.sub m.((i * n) + j) (M.mul f m.((k * n) + j))
        done
      done
    done;
    { factors = m; pivots = piv; det_sign = !sign }

  let lu_solve ~n { factors = m; pivots = piv; _ } b =
    (* forward substitution on the permuted right-hand side *)
    let y = Array.init n (fun i -> b.(piv.(i))) in
    for i = 1 to n - 1 do
      let acc = ref y.(i) in
      for j = 0 to i - 1 do
        acc := M.sub !acc (M.mul m.((i * n) + j) y.(j))
      done;
      y.(i) <- !acc
    done;
    (* back substitution *)
    for i = n - 1 downto 0 do
      let acc = ref y.(i) in
      for j = i + 1 to n - 1 do
        acc := M.sub !acc (M.mul m.((i * n) + j) y.(j))
      done;
      y.(i) <- M.div !acc m.((i * n) + i)
    done;
    y

  let solve ~n a b = lu_solve ~n (lu_factor ~n a) b

  let det ~n a =
    match lu_factor ~n a with
    | { factors; det_sign; _ } ->
        let d = ref (if det_sign > 0 then M.one else M.neg M.one) in
        for i = 0 to n - 1 do
          d := M.mul !d factors.((i * n) + i)
        done;
        !d
    | exception Singular _ -> M.zero

  let cholesky ~n a =
    let l = Array.make (n * n) M.zero in
    for i = 0 to n - 1 do
      for j = 0 to i do
        let acc = ref a.((i * n) + j) in
        for k = 0 to j - 1 do
          acc := M.sub !acc (M.mul l.((i * n) + k) l.((j * n) + k))
        done;
        if i = j then begin
          if M.sign !acc <= 0 then raise (Singular i);
          l.((i * n) + i) <- M.sqrt !acc
        end
        else l.((i * n) + j) <- M.div !acc l.((j * n) + j)
      done
    done;
    l

  let cholesky_solve ~n a b =
    let l = cholesky ~n a in
    (* L y = b *)
    let y = Array.copy b in
    for i = 0 to n - 1 do
      let acc = ref y.(i) in
      for j = 0 to i - 1 do
        acc := M.sub !acc (M.mul l.((i * n) + j) y.(j))
      done;
      y.(i) <- M.div !acc l.((i * n) + i)
    done;
    (* L^T x = y *)
    for i = n - 1 downto 0 do
      let acc = ref y.(i) in
      for j = i + 1 to n - 1 do
        acc := M.sub !acc (M.mul l.((j * n) + i) y.(j))
      done;
      y.(i) <- M.div !acc l.((i * n) + i)
    done;
    y

  let inverse ~n a =
    let lu = lu_factor ~n a in
    let inv = Array.make (n * n) M.zero in
    for col = 0 to n - 1 do
      let e = Array.init n (fun i -> if i = col then M.one else M.zero) in
      let x = lu_solve ~n lu e in
      for i = 0 to n - 1 do
        inv.((i * n) + col) <- x.(i)
      done
    done;
    inv
end

module Refine (M : Multifloat.Ops.S) = struct
  module L = Make (M)

  type stats = {
    iterations : int;
    final_residual_norm : float;
    converged : bool;
  }

  (* Double-precision LU, reused for every correction solve. *)
  let factor_double n a =
    let m = Array.copy a in
    let piv = Array.init n (fun i -> i) in
    for k = 0 to n - 1 do
      let best = ref k in
      for i = k + 1 to n - 1 do
        if Float.abs m.((i * n) + k) > Float.abs m.((!best * n) + k) then best := i
      done;
      if !best <> k then begin
        let t = piv.(k) in
        piv.(k) <- piv.(!best);
        piv.(!best) <- t;
        for j = 0 to n - 1 do
          let t = m.((k * n) + j) in
          m.((k * n) + j) <- m.((!best * n) + j);
          m.((!best * n) + j) <- t
        done
      end;
      if m.((k * n) + k) = 0.0 then raise (Singular k);
      for i = k + 1 to n - 1 do
        let f = m.((i * n) + k) /. m.((k * n) + k) in
        m.((i * n) + k) <- f;
        for j = k + 1 to n - 1 do
          m.((i * n) + j) <- m.((i * n) + j) -. (f *. m.((k * n) + j))
        done
      done
    done;
    (m, piv)

  let solve_double n (m, piv) b =
    let y = Array.init n (fun i -> b.(piv.(i))) in
    for i = 1 to n - 1 do
      for j = 0 to i - 1 do
        y.(i) <- y.(i) -. (m.((i * n) + j) *. y.(j))
      done
    done;
    for i = n - 1 downto 0 do
      for j = i + 1 to n - 1 do
        y.(i) <- y.(i) -. (m.((i * n) + j) *. y.(j))
      done;
      y.(i) <- y.(i) /. m.((i * n) + i)
    done;
    y

  let solve ~n ~a ~b ?(max_iter = 50) () =
    let lu = factor_double n a in
    let am = Array.map M.of_float a in
    (* initial solve in double *)
    let x = ref (Array.map M.of_float (solve_double n lu (Array.map M.to_float b))) in
    let resid_norm x =
      let r = L.residual ~n ~a:am ~x ~b in
      (r, M.to_float (L.norm_inf r))
    in
    let r, rn = resid_norm !x in
    let r = ref r and best = ref rn in
    let iters = ref 0 in
    let stalled = ref false in
    (* Converged once the residual is at the level of the working
       precision relative to the solution. *)
    let target () =
      let xn = M.to_float (L.norm_inf !x) in
      Float.max xn 1e-300 *. Float.ldexp 1.0 (-(M.precision_bits + 2))
    in
    while (not !stalled) && !iters < max_iter && !best > target () do
      incr iters;
      (* correction solve in double on the extended residual's leading
         part, applied in extended precision *)
      let d = solve_double n lu (Array.map M.to_float !r) in
      Array.iteri (fun i di -> !x.(i) <- M.add_float !x.(i) di) d;
      let r', rn' = resid_norm !x in
      if rn' < !best then begin
        best := rn';
        r := r'
      end
      else stalled := true
    done;
    let xnorm = M.to_float (L.norm_inf !x) in
    let converged =
      !best = 0.0 || (xnorm > 0.0 && !best /. xnorm < Float.ldexp 1.0 (-(M.precision_bits - 15)))
    in
    (!x, { iterations = !iters; final_residual_norm = !best; converged })
end

(* Same refinement scheme, but the extended-precision matrix,
   solution, right-hand side and residual all live in planar
   (structure-of-arrays) vectors, and each residual row is the FUSED
   [dot_sub] wire program (lib/fpan_ir): the b - <row, x> subtraction
   is staged behind the dot accumulator, so the refinement hot loop is
   one pass over the planes with no boxed intermediates.  The fused
   program's gate sequence is the unfused composition's by
   construction, so the returned solution and stats are bitwise
   identical to [Refine] — only the layout and the allocation profile
   change. *)
module Refine_batched
    (M : Multifloat.Ops.S)
    (V : Multifloat.Batch.V with type elt = M.t) =
struct
  module R = Refine (M)

  type stats = R.stats = {
    iterations : int;
    final_residual_norm : float;
    converged : bool;
  }

  module E = Runtime.Engine.Make (M) (V)

  (* Same fold order as [Make.norm_inf], directly over the planes. *)
  let norm_inf_v v =
    let acc = ref M.zero in
    for i = 0 to V.length v - 1 do
      acc := M.max !acc (M.abs (V.get v i))
    done;
    M.to_float !acc

  let solve ?rt ~n ~a ~b ?(max_iter = 50) () =
    let tr = Obs.Trace.enabled () in
    if tr then Obs.Trace.begin_span Obs.Trace.Eft "refine.solve";
    let lu = R.factor_double n a in
    let am = V.of_array (Array.map M.of_float a) in
    let bv = V.of_array b in
    let xv = V.of_array (Array.map M.of_float (R.solve_double n lu (Array.map M.to_float b))) in
    (* Two residual buffers: the best-so-far residual feeds the next
       correction solve, so a candidate must not clobber it.  With a
       scheduler the fused residual runs row-parallel on the runtime
       engine; each row is the same fused dot_sub pass, so the
       refinement trajectory stays bitwise identical to the sequential
       path at any worker count. *)
    let rbest = ref (V.create n) and rtry = ref (V.create n) in
    let resid_norm dst =
      (match rt with
      | Some rt -> E.gemv_residual rt ~m:n ~n ~a:am ~x:xv ~b:bv ~r:dst ()
      | None ->
          for i = 0 to n - 1 do
            V.set dst i (V.dot_sub ~b:(V.get bv i) ~x:am ~xoff:(i * n) ~y:xv ~yoff:0 ~len:n)
          done);
      norm_inf_v dst
    in
    let best = ref (resid_norm !rbest) in
    let iters = ref 0 in
    let stalled = ref false in
    let target () =
      let xn = norm_inf_v xv in
      Float.max xn 1e-300 *. Float.ldexp 1.0 (-(M.precision_bits + 2))
    in
    while (not !stalled) && !iters < max_iter && !best > target () do
      incr iters;
      if tr then Obs.Trace.begin_span Obs.Trace.Eft "refine.iter";
      let d = R.solve_double n lu (V.to_floats !rbest) in
      Array.iteri (fun i di -> V.set xv i (M.add_float (V.get xv i) di)) d;
      let rn' = resid_norm !rtry in
      if rn' < !best then begin
        best := rn';
        let t = !rbest in
        rbest := !rtry;
        rtry := t
      end
      else stalled := true;
      (* each iteration span carries the residual norm it achieved *)
      if tr then Obs.Trace.end_span_f ~arg_name:"residual" ~arg:rn'
    done;
    let x = V.to_array xv in
    let xnorm = norm_inf_v xv in
    let converged =
      !best = 0.0 || (xnorm > 0.0 && !best /. xnorm < Float.ldexp 1.0 (-(M.precision_bits - 15)))
    in
    if tr then Obs.Trace.end_span_f ~arg_name:"residual" ~arg:!best;
    (x, { iterations = !iters; final_residual_norm = !best; converged })
end
