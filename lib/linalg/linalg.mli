(** Dense extended-precision linear algebra.

    The paper's motivation is exactly this workload: solving linear
    systems whose condition numbers (1e10-1e20) exhaust double
    precision.  This package provides LU and Cholesky factorizations,
    triangular solves, norms, and determinants over any MultiFloat
    precision, plus the classic {e mixed-precision iterative
    refinement} scheme (factor once in fast double precision, correct
    the solution with extended-precision residuals) in {!Refine}.

    Matrices are dense, row-major [t array] of size [n * n]. *)

exception Singular of int
(** Raised (with the offending pivot column) when a factorization
    encounters an exactly-zero pivot. *)

module Make (M : Multifloat.Ops.S) : sig
  type vec = M.t array
  type mat = M.t array

  val mat_of_floats : float array -> mat
  val vec_of_floats : float array -> vec
  val vec_to_floats : vec -> float array

  val mat_mul : n:int -> mat -> mat -> mat
  val mat_vec : n:int -> mat -> vec -> vec
  val residual : n:int -> a:mat -> x:vec -> b:vec -> vec
  (** [b - A x]. *)

  val norm_inf : vec -> M.t
  val norm2 : vec -> M.t
  val frobenius : mat -> M.t

  type lu = {
    factors : mat;  (** combined unit-L and U factors *)
    pivots : int array;  (** row permutation *)
    det_sign : int;
  }

  val lu_factor : n:int -> mat -> lu
  (** Partial-pivoting LU; raises {!Singular} on a zero pivot. *)

  val lu_solve : n:int -> lu -> vec -> vec
  val solve : n:int -> mat -> vec -> vec
  val det : n:int -> mat -> M.t

  val cholesky : n:int -> mat -> mat
  (** Lower-triangular Cholesky factor of a symmetric positive-definite
      matrix; raises {!Singular} when a diagonal entry is not
      positive. *)

  val cholesky_solve : n:int -> mat -> vec -> vec

  val inverse : n:int -> mat -> mat
end

(** Mixed-precision iterative refinement: LU in hardware doubles,
    residual and correction in MultiFloat precision [M].  Converges to
    ~[M.precision_bits] accuracy whenever double-precision LU is stable
    enough to contract (condition below ~1e15). *)
module Refine (M : Multifloat.Ops.S) : sig
  type stats = {
    iterations : int;
    final_residual_norm : float;
    converged : bool;
  }

  val solve :
    n:int -> a:float array -> b:M.t array -> ?max_iter:int -> unit -> M.t array * stats
  (** Solve [A x = b]: factor [a] once in double precision, then refine
      [x <- x + A^-1 (b - A x)] with the residual evaluated in [M]
      until the residual stops shrinking (typically
      [precision_bits / 50] iterations). *)
end

(** {!Refine} over a planar (structure-of-arrays) layout: the
    extended-precision matrix and solution are stored as
    {!Multifloat.Batch.V} vectors and the residual — the hot loop of
    refinement — is computed row-wise with the hand-inlined planar dot
    kernel.  Arithmetic and accumulation orders match {!Refine}
    exactly, so solutions and stats are bitwise identical; only the
    memory layout changes. *)
module Refine_batched
    (M : Multifloat.Ops.S)
    (_ : Multifloat.Batch.V with type elt = M.t) : sig
  type stats = {
    iterations : int;
    final_residual_norm : float;
    converged : bool;
  }

  val solve :
    ?rt:Runtime.Sched.t ->
    n:int ->
    a:float array ->
    b:M.t array ->
    ?max_iter:int ->
    unit ->
    M.t array * stats
  (** With [?rt], the residual matrix-vector product runs row-parallel
      on the work-stealing runtime; solutions and stats remain bitwise
      identical to the sequential path at any worker count. *)
end
