(* Trace export: Chrome trace-event JSON (loadable in about:tracing /
   Perfetto) and the compact fpan-trace/1 aggregate summary.

   Chrome events are emitted as balanced B/E pairs reconstructed from
   the completed-span records.  Spans are swept per ring (tid) in
   start order with a stack: before opening a span, every stacked span
   that ended before it starts — or ended exactly when it starts
   without being an ancestor (deeper depth) — is closed first.  The
   recorded nesting depth breaks timestamp ties, so zero-width spans
   at coarse clock resolution still close in stack order and the event
   stream is balanced by construction (asserted by test/test_obs.ml's
   round-trip test). *)

module J = Json_out

let us ns = ns /. 1e3

(* --- Chrome trace events -------------------------------------------- *)

let event_fields ~ph ~tid (s : Trace.span) ~ts =
  [ ("name", J.Str s.Trace.name);
    ("cat", J.Str (Trace.cat_name s.Trace.cat));
    ("ph", J.Str ph);
    ("ts", J.Num (us ts));
    ("pid", J.Num 1.0);
    ("tid", J.Num (Float.of_int tid)) ]

let begin_event s = J.Obj (event_fields ~ph:"B" ~tid:s.Trace.tid s ~ts:s.Trace.t0_ns)

let end_event s =
  let args =
    if s.Trace.arg_name = "" then []
    else [ ("args", J.Obj [ (s.Trace.arg_name, J.Num s.Trace.arg) ]) ]
  in
  J.Obj (event_fields ~ph:"E" ~tid:s.Trace.tid s ~ts:s.Trace.t1_ns @ args)

let chrome_events spans =
  (* group by tid, preserving the drain order (t0 asc, depth asc) *)
  let by_tid = Hashtbl.create 8 in
  List.iter
    (fun s ->
      let tid = s.Trace.tid in
      Hashtbl.replace by_tid tid (s :: (try Hashtbl.find by_tid tid with Not_found -> [])))
    spans;
  let tids = Hashtbl.fold (fun tid _ acc -> tid :: acc) by_tid [] |> List.sort compare in
  let events = ref [] in
  let emit e = events := e :: !events in
  List.iter
    (fun tid ->
      emit
        (J.Obj
           [ ("name", J.Str "thread_name"); ("ph", J.Str "M"); ("pid", J.Num 1.0);
             ("tid", J.Num (Float.of_int tid));
             ("args", J.Obj [ ("name", J.Str (Printf.sprintf "domain%d" tid)) ]) ]);
      let spans = List.rev (Hashtbl.find by_tid tid) in
      let stack = ref [] in
      (* [s] can only nest inside [top] if it is deeper; anything at
         the same depth or shallower closes the stacked span first
         (this is what keeps zero-width spans at coarse clock
         resolution, and rings with dropped ancestors, balanced). *)
      let closes_before (top : Trace.span) (s : Trace.span) =
        top.Trace.t1_ns < s.Trace.t0_ns || s.Trace.depth <= top.Trace.depth
      in
      List.iter
        (fun s ->
          let rec unwind () =
            match !stack with
            | top :: rest when closes_before top s ->
                emit (end_event top);
                stack := rest;
                unwind ()
            | _ -> ()
          in
          unwind ();
          emit (begin_event s);
          stack := s :: !stack)
        spans;
      List.iter (fun top -> emit (end_event top)) !stack)
    tids;
  List.rev !events

let chrome_trace spans =
  J.Obj [ ("traceEvents", J.List (chrome_events spans)); ("displayTimeUnit", J.Str "ms") ]

(* --- aggregate summary ---------------------------------------------- *)

type agg = {
  mutable count : int;
  mutable total_ns : float;
  mutable max_ns : float;
  mutable arg_name : string;
  mutable arg_sum : float;
}

let by_name spans =
  let tbl : (string * string, agg) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun (s : Trace.span) ->
      let key = (s.Trace.name, Trace.cat_name s.Trace.cat) in
      let a =
        match Hashtbl.find_opt tbl key with
        | Some a -> a
        | None ->
            let a = { count = 0; total_ns = 0.0; max_ns = 0.0; arg_name = ""; arg_sum = 0.0 } in
            Hashtbl.add tbl key a;
            a
      in
      let d = s.Trace.t1_ns -. s.Trace.t0_ns in
      a.count <- a.count + 1;
      a.total_ns <- a.total_ns +. d;
      if d > a.max_ns then a.max_ns <- d;
      if s.Trace.arg_name <> "" then begin
        a.arg_name <- s.Trace.arg_name;
        a.arg_sum <- a.arg_sum +. s.Trace.arg
      end)
    spans;
  Hashtbl.fold (fun k a acc -> (k, a) :: acc) tbl []
  |> List.sort (fun ((a, _), _) ((b, _), _) -> String.compare a b)

let summary ~workload ?sched ?(extra = []) ~spans ~metrics ~dropped ~unbalanced () =
  let rows =
    List.map
      (fun ((name, cat), a) ->
        J.Obj
          ([ ("name", J.Str name);
             ("cat", J.Str cat);
             ("count", J.Num (Float.of_int a.count));
             ("total_ns", J.Num a.total_ns);
             ("mean_ns", J.Num (if a.count = 0 then 0.0 else a.total_ns /. Float.of_int a.count));
             ("max_ns", J.Num a.max_ns) ]
          @
          if a.arg_name = "" then []
          else [ ("arg_name", J.Str a.arg_name); ("arg_sum", J.Num a.arg_sum) ]))
      (by_name spans)
  in
  J.Obj
    ([ ("schema", J.Str "fpan-trace/1");
       ("workload", J.Str workload);
       ("span_count", J.Num (Float.of_int (List.length spans)));
       ("dropped", J.Num (Float.of_int dropped));
       ("unbalanced", J.Num (Float.of_int unbalanced));
       ("by_name", J.List rows);
       ("metrics", Metrics.to_json metrics) ]
    @ (match sched with Some j -> [ ("sched", j) ] | None -> [])
    @ extra)

(* --- file output ---------------------------------------------------- *)

let write_json path json =
  let tr = Trace.enabled () in
  if tr then Trace.begin_span Trace.Io "io.write_json";
  Json_out.write_file path json;
  if tr then Trace.end_span ()
