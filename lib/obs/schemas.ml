(* The declared schemas of every machine-readable artifact the stack
   emits.  test/test_json_schemas.ml validates real artifacts against
   these; fpan_tool validates its own output before writing.  A shape
   change that is not reflected here fails `dune runtest` instead of
   downstream tooling. *)

open Schema

let num_or_null = nullable Num

(* Per-worker scheduler telemetry row (Runtime.Sched.stats_json).
   busy/idle seconds and the steal_attempts/join_helps counters were
   added after the first BENCH artifacts shipped, so they stay
   optional: committed pre-extension artifacts still validate. *)
let worker_row =
  Obj
    [ Req ("worker", Int);
      Req ("tasks", Int);
      Req ("steals", Int);
      Opt ("steal_attempts", Int);
      Opt ("join_helps", Int);
      Req ("tile_flops", Int);
      Opt ("busy_seconds", Num);
      Opt ("idle_seconds", Num);
      Req ("busy_fraction", Num) ]

(* --- BENCH_fig9/10/11.json ------------------------------------------ *)

let fig_cell =
  Obj
    [ Req ("name", Str);
      Req ("bits", Int);
      Req ("layout", Str);
      Req ("n", Int);
      Req ("gops", num_or_null) ]

let fig_table =
  Obj
    [ Req ("kernel", Str);
      Req ("rows", List (Obj [ Req ("label", Str); Req ("cells", List fig_cell) ])) ]

let fig_sched_block =
  Obj
    [ Req ("engine", Str);
      Req ("kernel", Str);
      Req ("bits", Int);
      Req ("n", Int);
      Req ("workers", Int);
      Req ("tile", Str);
      Req ("wall_s", Num);
      Req ("per_worker", List worker_row) ]

let bench_fig =
  Obj
    [ Req ("experiment", Str);
      Req ("units", Str);
      Req ("note", Str);
      Req ("tables", List fig_table);
      Opt
        ( "layout_speedup",
          List (Obj [ Req ("kernel", Str); Req ("bits", Int); Req ("planar_over_aos", num_or_null) ])
        );
      Opt ("sched", fig_sched_block) ]

(* --- BENCH_sched.json (fpan-bench-sched/1) -------------------------- *)

let sched_curve_row =
  Obj
    [ Req ("workers", Int);
      Req ("runtime_wall_s", Num);
      Req ("runtime_gops", Num);
      Req ("speedup_vs_seq", Num);
      Req ("pool_wall_s", Num);
      Req ("pool_gops", Num);
      Req ("bitwise_equal_seq", Bool);
      Req ("telemetry", List worker_row) ]

let bench_sched =
  Obj
    [ Req ("schema", Str_const "fpan-bench-sched/1");
      Req ("kernel", Str);
      Req ("bits", Int);
      Req ("n", Int);
      Req ("tile_m", Int);
      Req ("tile_n", Int);
      Req ("reps", Int);
      Req ("seq_wall_s", Num);
      Req ("seq_gops", Num);
      Req ("curve", List sched_curve_row);
      Opt ("tile_sweep", List (Obj [ Req ("tile", Int); Req ("wall_s", Num); Req ("gops", Num) ]));
      Opt ("obs", Obj [ Req ("trace_summary", Str); Req ("chrome_trace", Str) ]) ]

(* --- CHECK_report.json (fpan-check/1) ------------------------------- *)

let hex_floats = List Str

let check_failure =
  Obj
    [ Req ("impl", Str);
      Req ("op", Str);
      Req ("class", Str);
      Req ("kind", Str);
      Req ("ulps", num_or_null);
      Req ("inputs", List hex_floats);
      Req ("got", hex_floats);
      Req ("shrunk", List hex_floats);
      Req ("shrunk_terms", Int) ]

let check_result_row =
  Obj
    [ Req ("impl", Str);
      Req ("op", Str);
      Req ("q", Int);
      Req ("gated", Bool);
      Req ("count", Int);
      Req ("skipped", Int);
      Req ("nonfinite", Int);
      Req ("exceed", Int);
      Req ("max_ulps", num_or_null);
      Req ("mean_ulps", num_or_null);
      Req
        ( "histogram",
          Obj [ Req ("lo_exp", Int); Req ("hi_exp", Int); Req ("buckets", List Int) ] ) ]

let check_report =
  Obj
    [ Req ("schema", Str_const "fpan-check/1");
      Req ("seed", Int);
      Req ("cases", Int);
      Req ("scalar_cases", Int);
      Req ("vector_cases", Int);
      Req ("vec_len", Int);
      Req ("tiers", List Int);
      Req ("ops", List Str);
      Req ("passed", Bool);
      Req ("failure_count", Int);
      Req ("failures", List check_failure);
      Req ("results", List check_result_row) ]

(* --- VERIFY_*.json (fpan-verify/1) ---------------------------------- *)

let verify_obligation_names =
  [ "two_sum"; "fast_two_sum"; "two_prod"; "nonoverlap"; "error_bound"; "equivalence" ]

let verify_counts_row =
  Obj
    [ Req ("obligation", Str_enum verify_obligation_names);
      Req ("checked", Int);
      Req ("violations", Int);
      Req ("skipped", Int) ]

let verify_failure =
  Obj
    [ Req ("index", Int);
      Req ("obligation", Str_enum verify_obligation_names);
      Req ("operands", List hex_floats);
      Req ("outputs", hex_floats);
      Req ("shrunk", List hex_floats);
      Req ("shrunk_terms", Int) ]

let verify_sweep =
  Obj
    [ Req ("name", Str);
      Req ("kind", Str_enum [ "add_network"; "mul_network"; "chain" ]);
      Req ("width", Int);
      Req ("window", Int);
      Req ("gap", Int);
      Req ("terms", Int);
      Req ("slots", Int);
      Req ("tuples", Int);
      Req ("circuit_ops", Int);
      Req ("constraints", Int);
      Req ("footprint_bits", Int);
      Req ("error_bound_exp", nullable Int);
      Req ("obligations", List verify_counts_row);
      Req ("worst_error_log2", num_or_null);
      Req ("failures", List verify_failure);
      Req ("passed", Bool) ]

let verify_gate_op =
  Obj
    [ Req ("op", Str_enum [ "two_sum"; "fast_two_sum"; "two_prod" ]);
      Req ("checked", Int);
      Req ("violations", Int);
      Req ("skipped", Int) ]

let verify_gate_level =
  Obj
    [ Req ("precision", Int);
      Req ("emin", Int);
      Req ("emax", Int);
      Req ("values", Int);
      Req ("pairs", Int);
      Req ("ops", List verify_gate_op);
      Req ("passed", Bool) ]

let verify_certificate =
  Obj
    [ Req ("schema", Str_const "fpan-verify/1");
      Req ("gate_level", nullable verify_gate_level);
      Req ("sweeps", List verify_sweep);
      Req ("passed", Bool) ]

(* --- fpan-serve/1: wire frames, server stats, BENCH_serve.json ------ *)

(* Operands and results travel as C99 hex-float component strings
   (exact transport: Json_out numbers turn inf/nan into null). *)
let hex_elements = List (List Str)

(* Wire frames accept both generations: fpan-serve/1 is the fixed-tier
   protocol, fpan-serve/2 adds the adaptive-precision fields — an [sla]
   exponent instead of a tier on requests, and the chosen tier plus the
   certified error bound (hex-float string) on results. *)
let serve_schema_versions = Str_enum [ "fpan-serve/1"; "fpan-serve/2" ]

let serve_request =
  Obj
    [ Req ("schema", serve_schema_versions);
      Req ("id", Int);
      Req ("op", Str);
      Opt ("tier", Str);
      Opt ("sla", Int);
      Opt ("deadline_ms", Num);
      Opt ("prog", List Str);
      Opt ("x", hex_elements);
      Opt ("y", hex_elements);
      Opt ("z", hex_elements) ]

let serve_response =
  Obj
    [ Req ("schema", serve_schema_versions);
      Req ("id", Int);
      Req ("status", Str);
      Opt ("result", hex_elements);
      Opt ("batch", Int);
      Opt ("chosen", Str_enum [ "mf2"; "mf3"; "mf4"; "bigfloat" ]);
      Opt ("bound", Str);
      Opt ("reason", Str);
      Opt ("error", Str);
      Opt ("stats", Any) ]

let serve_batch_histogram = List (Obj [ Req ("size", Int); Req ("count", Int) ])

(* Stats and bench documents moved to fpan-serve/2 with the sharded /
   cached serving layer, and to fpan-serve/3 with adaptive-precision
   serving: per-kind cache counters, the SLA escalation block on stats,
   and the adaptive bench block on BENCH_serve.json. *)
let serve_cache_stats =
  Obj
    [ Req ("capacity", Int);
      Req ("hits", Int);
      Req ("misses", Int);
      Req ("size", Int);
      Req ("evictions", Int);
      Req
        ( "by_kind",
          List (Obj [ Req ("kind", Str); Req ("hits", Int); Req ("misses", Int) ]) ) ]

let serve_escalation_histogram =
  List (Obj [ Req ("chosen", Str); Req ("count", Int) ])

let serve_sla_stats =
  Obj
    [ Req ("requests", Int);
      Req ("escalations", Int);
      Req ("chosen", serve_escalation_histogram) ]

(* fpan-serve/4: priority shedding under overload — displacement count
   plus the per-SLA-bucket split of everything shed. *)
let serve_stats =
  Obj
    [ Req ("schema", Str_const "fpan-serve/4");
      Req ("backend", Str);
      Req ("accepted", Int);
      Req ("adopted_conns", Int);
      Req ("open_conns", Int);
      Req ("refused_conns", Int);
      Req ("completed", Int);
      Req ("shed_full", Int);
      Req ("shed_deadline", Int);
      Req ("shed_closed", Int);
      Req ("shed_displaced", Int);
      Req
        ( "shed_by_bucket",
          List (Obj [ Req ("bucket", Str); Req ("count", Int) ]) );
      Req ("errors", Int);
      Req ("batches", Int);
      Req ("queue_capacity", Int);
      Req ("queue_depth", Int);
      Req ("queue_max_depth", Int);
      Req ("cache", serve_cache_stats);
      Req ("sla", serve_sla_stats);
      Req ("batch_histogram", serve_batch_histogram);
      Req ("sched", List worker_row) ]

let serve_cell =
  Obj
    [ Req ("label", Str);
      Req ("max_batch", Int);
      Req ("window_us", Num);
      Req ("shards", Int);
      Req ("conns", Int);
      Req ("pipeline", Int);
      Req ("sent", Int);
      Req ("ok", Int);
      Req ("shed", Int);
      Req ("errors", Int);
      Req ("wall_s", Num);
      Req ("throughput_rps", Num);
      Req ("shed_rate", Num);
      Req
        ( "latency_us",
          Obj [ Req ("p50", num_or_null); Req ("p90", num_or_null);
                Req ("p95", num_or_null); Req ("p99", num_or_null);
                Req ("max", num_or_null) ] );
      Req ("batch_histogram", serve_batch_histogram);
      Req ("sched", List worker_row) ]

let serve_scaling_point =
  Obj
    [ Req ("label", Str);
      Req ("shards", Int);
      Req ("conns", Int);
      Req ("throughput_rps", Num) ]

(* The adaptive block: compute-path throughput of SLA-driven serving
   against always-mf4 at equal delivered accuracy, the escalation
   histogram over the mixed-SLA workload, and the fuzz gate counters
   (containment against the exact oracle, monotonicity in q, bitwise
   identity with the fixed-tier path). *)
let serve_adaptive_block =
  Obj
    [ Req ("cases", Int);
      Req ("n", Int);
      Req ("mix", List (Obj [ Req ("op", Str); Req ("q", Int); Req ("count", Int) ]));
      Req ("escalation_histogram", serve_escalation_histogram);
      Req ("escalations", Int);
      Req ("sla_throughput_rps", Num);
      Req ("mf4_throughput_rps", Num);
      Req ("speedup_vs_mf4", Num);
      Req
        ( "fuzz",
          Obj
            [ Req ("cases", Int);
              Req ("containment_violations", Int);
              Req ("monotonicity_violations", Int);
              Req ("bitwise_mismatches", Int) ] ) ]

let bench_serve =
  Obj
    [ Req ("schema", Str_const "fpan-serve/3");
      Req ("mode", Str);
      Req ("workers", Int);
      Req ("queue_capacity", Int);
      Req ("cache_capacity", Int);
      Req ("duration_s", Num);
      Req ("ops", List Str);
      Req ("tiers", List Str);
      Opt ("slas", List Int);
      Req ("cells", List serve_cell);
      Req ("scaling", List serve_scaling_point);
      Req ("canary", Obj [ Req ("checked", Int); Req ("mismatches", Int) ]);
      Req ("batching_speedup", num_or_null);
      Opt ("adaptive", serve_adaptive_block) ]

(* --- BENCH_fuse.json (fpan-bench-fuse/1) ---------------------------- *)

(* Cross-op fusion ablation: each cell times one fused wire-program
   kernel against its op-by-op composition ("ablation-fusion") and
   records that the two paths agreed bitwise. *)
let fuse_cell =
  Obj
    [ Req ("kernel", Str);
      Req ("unfused", Str);
      Req ("bits", Int);
      Req ("n", Int);
      Req ("reps", Int);
      Req ("fused_wall_s", Num);
      Req ("unfused_wall_s", Num);
      Req ("speedup", Num);
      Req ("bitwise_equal", Bool) ]

let fuse_refine =
  Obj
    [ Req ("bits", Int);
      Req ("n", Int);
      Req ("iterations", Int);
      Req ("fused_iter_s", Num);
      Req ("unfused_iter_s", Num);
      Req ("speedup", Num);
      Req ("bitwise_equal", Bool) ]

let bench_fuse =
  Obj
    [ Req ("schema", Str_const "fpan-bench-fuse/1");
      Req ("mode", Str_const "ablation-fusion");
      Req ("workers", Int);
      Req ("cells", List fuse_cell);
      Opt ("refine", fuse_refine) ]

(* --- CHAOS_report.json (fpan-chaos/1) ------------------------------- *)

(* One campaign scenario: the fault classes it exercises, exact
   client-driven injection count ([null] for seam-side scenarios whose
   firing count depends on syscall timing and is deliberately kept out
   of the committed artifact), and the invariant tallies.  Everything
   in this document is a pure function of (seed, shards, requests), so
   re-running the campaign must reproduce it byte for byte. *)
let chaos_scenario =
  Obj
    [ Req ("name", Str);
      Req ("classes", List Str);
      Req ("injected", num_or_null);
      Req ("requests", Int);
      Req ("answered", Int);
      Req ("checked_bitwise", Int);
      Req ("shed", Int);
      Req ("restarts", Int);
      Req
        ( "shed_by_bucket",
          List (Obj [ Req ("bucket", Str); Req ("count", Int) ]) );
      Req ("passed", Bool) ]

let chaos_report =
  Obj
    [ Req ("schema", Str_const "fpan-chaos/1");
      Req ("seed", Int);
      Req ("shards", Int);
      Req ("requests_per_scenario", Int);
      Req ("scenarios", List chaos_scenario);
      Req
        ( "invariants",
          Obj
            [ Req ("server_deaths", Int);
              Req ("bitwise_mismatches", Int);
              Req ("fd_leak", Int) ] );
      Req ("passed", Bool) ]

(* --- TRACE_*.json (fpan-trace/1) ------------------------------------ *)

let metric_row =
  One_of
    [ Obj [ Req ("name", Str); Req ("type", Str_const "counter"); Req ("value", Int) ];
      Obj [ Req ("name", Str); Req ("type", Str_const "gauge"); Req ("value", num_or_null) ];
      Obj
        [ Req ("name", Str);
          Req ("type", Str_const "histogram");
          Req ("lo_exp", Int);
          Req ("hi_exp", Int);
          Req ("count", Int);
          Req ("sum", num_or_null);
          Req ("max", num_or_null);
          Req ("buckets", List Int) ] ]

let trace_by_name_row =
  Obj
    [ Req ("name", Str);
      Req ("cat", Str);
      Req ("count", Int);
      Req ("total_ns", Num);
      Req ("mean_ns", Num);
      Req ("max_ns", Num);
      Opt ("arg_name", Str);
      Opt ("arg_sum", Num) ]

let trace_summary =
  Obj
    [ Req ("schema", Str_const "fpan-trace/1");
      Req ("workload", Str);
      Req ("span_count", Int);
      Req ("dropped", Int);
      Req ("unbalanced", Int);
      Req ("by_name", List trace_by_name_row);
      Req ("metrics", List metric_row);
      Opt ("sched", List worker_row);
      Opt
        ( "overhead",
          Obj
            [ Req ("untraced_wall_s", Num);
              Req ("traced_wall_s", Num);
              Req ("overhead_pct", Num) ] ) ]

(* Chrome trace files are externally specified; we still pin the
   envelope and the event fields we rely on. *)
let chrome_event =
  Obj
    [ Opt ("name", Str);
      Opt ("cat", Str);
      Req ("ph", Str);
      Opt ("ts", Num);
      Req ("pid", Int);
      Req ("tid", Int);
      Opt ("args", Any) ]

let chrome_trace =
  Obj [ Req ("traceEvents", List chrome_event); Req ("displayTimeUnit", Str) ]
