(** Global registry of counters, gauges, and log2 histograms.

    Counters and histograms are sharded per domain (one private cell
    per domain per metric, created on first touch), so updates are
    plain mutable stores — no locks, no atomics — and {!snapshot}
    merges the shards.  The merge is pointwise commutative: counter
    sum, gauge max, bucketwise histogram sum, so snapshots are
    independent of shard and merge order.

    Histogram bucketing follows Check.Ulp_stats: bucket 0 is
    everything below [2^lo_exp] (including NaN), the last bucket
    everything at or above [2^hi_exp], bucket [i] in between covers
    [[2^(lo_exp+i-1), 2^(lo_exp+i))]. *)

type histogram = {
  lo_exp : int;
  hi_exp : int;
  buckets : int array;
  count : int;
  sum : float;  (** finite observations only *)
  max_v : float;
}

type value = Counter of int | Gauge of float | Hist of histogram

type snapshot = (string * value) list
(** Sorted by metric name. *)

type counter
type gauge
type hist

val counter : string -> counter
(** Find or register.  [Invalid_argument] if the name is already
    registered with a different kind (same for {!gauge}, {!hist}). *)

val gauge : string -> gauge

val hist : ?lo_exp:int -> ?hi_exp:int -> string -> hist
(** Default bucket range [2^-12 .. 2^40] — wide enough for both ulp
    ratios and nanosecond durations. *)

val add : counter -> int -> unit
val incr : counter -> unit
val set : gauge -> float -> unit
val observe : hist -> float -> unit

val bucket_of : lo_exp:int -> hi_exp:int -> float -> int
(** The bucket index {!observe} uses (exposed for the boundary tests). *)

val snapshot : unit -> snapshot
(** Merge all shards of all metrics.  Take it while updating domains
    are quiescent for exact values. *)

val reset : unit -> unit

val merge : snapshot -> snapshot -> snapshot
(** Pointwise union-merge; commutative.  [Invalid_argument] on metric
    kind or histogram-shape mismatch. *)

val to_json : snapshot -> Json_out.t
