(** Monotonic time base for the observability layer. *)

val epoch : int64
(** Absolute monotonic reading (ns) taken at module initialisation. *)

val raw_ns : unit -> int64
(** Absolute monotonic nanoseconds (clock origin is unspecified). *)

val now_ns : unit -> float
(** Monotonic nanoseconds since {!epoch}.  Exactly representable as a
    float for ~104 days of process lifetime. *)

val ns_to_us : float -> float
