(* Low-overhead span tracing over per-domain ring buffers.

   Each domain that opens a span gets a private ring (created lazily —
   a disabled process never allocates one).  A span is pushed onto the
   domain's open-span stack by [begin_span] and written into the ring
   by [end_span] as one completed record (name, category, nesting
   depth, start/end timestamps, optional float argument), so records
   are naturally balanced and the ring holds the most recent [cap]
   completed spans; older ones are overwritten and counted as dropped.
   No locks or atomics are touched on the span path — the global
   registry lock is only taken when a ring is created and when the
   rings are drained.

   DISABLED MODE is a single branch: every entry point first reads the
   [on] flag and returns.  No ring exists, nothing is allocated —
   test/test_obs.ml asserts an exact zero minor-allocation delta over
   the begin/end fast path.  Because a float argument would be boxed
   at the call site even when tracing is off, hot instrumentation
   sites guard themselves:

     let tr = Trace.enabled () in
     if tr then Trace.begin_span Trace.Kernel "gemm.tile";
     ...
     if tr then Trace.end_span_f ~arg_name:"flops" ~arg:(float_of_int fl)

   [with_span] is the convenient (closure-allocating) form for cold
   entry points.

   Timestamps come from {!Clock} (monotonic ns since process start)
   and live in unboxed [floatarray]s. *)

type cat = Kernel | Sched | Eft | Fuzz | Io

let cat_name = function
  | Kernel -> "kernel"
  | Sched -> "sched"
  | Eft -> "eft"
  | Fuzz -> "fuzz"
  | Io -> "io"

let cat_idx = function Kernel -> 0 | Sched -> 1 | Eft -> 2 | Fuzz -> 3 | Io -> 4
let cat_of_idx = [| Kernel; Sched; Eft; Fuzz; Io |]

type span = {
  name : string;
  cat : cat;
  tid : int;  (* ring id: one per domain that ever traced *)
  depth : int;  (* open spans below this one on the same domain *)
  t0_ns : float;
  t1_ns : float;
  arg_name : string;  (* "" when absent *)
  arg : float;
}

(* --- the enabled flag ----------------------------------------------- *)

let on =
  Atomic.make
    (match Sys.getenv_opt "FPAN_OBS" with
    | Some ("1" | "true" | "on" | "yes") -> true
    | _ -> false)

let enabled () = Atomic.get on
let set_enabled b = Atomic.set on b

(* --- rings ---------------------------------------------------------- *)

let max_depth = 256
let default_capacity = ref 32768

let set_ring_capacity c = default_capacity := Stdlib.max 16 c

type ring = {
  tid : int;
  cap : int;
  r_name : string array;
  r_cat : int array;
  r_depth : int array;
  r_t0 : floatarray;
  r_t1 : floatarray;
  r_arg_name : string array;
  r_arg : floatarray;
  mutable widx : int;  (* completed spans ever written *)
  (* open-span stack *)
  s_name : string array;
  s_cat : int array;
  s_t0 : floatarray;
  mutable sp : int;
  mutable unbalanced : int;  (* end without begin / stack overflow *)
}

let rings : ring list ref = ref []
let rings_lock = Mutex.create ()
let next_tid = Atomic.make 0

let mk_ring () =
  let cap = !default_capacity in
  let r =
    { tid = Atomic.fetch_and_add next_tid 1; cap;
      r_name = Array.make cap ""; r_cat = Array.make cap 0; r_depth = Array.make cap 0;
      r_t0 = Float.Array.make cap 0.0; r_t1 = Float.Array.make cap 0.0;
      r_arg_name = Array.make cap ""; r_arg = Float.Array.make cap 0.0; widx = 0;
      s_name = Array.make max_depth ""; s_cat = Array.make max_depth 0;
      s_t0 = Float.Array.make max_depth 0.0; sp = 0; unbalanced = 0 }
  in
  Mutex.lock rings_lock;
  rings := r :: !rings;
  Mutex.unlock rings_lock;
  r

let ring_key = Domain.DLS.new_key mk_ring

(* --- span path ------------------------------------------------------ *)

let begin_span cat name =
  if Atomic.get on then begin
    let r = Domain.DLS.get ring_key in
    if r.sp >= max_depth then r.unbalanced <- r.unbalanced + 1
    else begin
      let sp = r.sp in
      r.s_name.(sp) <- name;
      r.s_cat.(sp) <- cat_idx cat;
      Float.Array.set r.s_t0 sp (Clock.now_ns ());
      r.sp <- sp + 1
    end
  end

let record r arg_name arg =
  r.sp <- r.sp - 1;
  let sp = r.sp in
  let i = r.widx mod r.cap in
  r.r_name.(i) <- r.s_name.(sp);
  r.r_cat.(i) <- r.s_cat.(sp);
  r.r_depth.(i) <- sp;
  Float.Array.set r.r_t0 i (Float.Array.get r.s_t0 sp);
  Float.Array.set r.r_t1 i (Clock.now_ns ());
  r.r_arg_name.(i) <- arg_name;
  Float.Array.set r.r_arg i arg;
  r.widx <- r.widx + 1

let end_span () =
  if Atomic.get on then begin
    let r = Domain.DLS.get ring_key in
    if r.sp = 0 then r.unbalanced <- r.unbalanced + 1 else record r "" 0.0
  end

let end_span_f ~arg_name ~arg =
  if Atomic.get on then begin
    let r = Domain.DLS.get ring_key in
    if r.sp = 0 then r.unbalanced <- r.unbalanced + 1 else record r arg_name arg
  end

let with_span cat name f =
  if not (Atomic.get on) then f ()
  else begin
    begin_span cat name;
    match f () with
    | v ->
        end_span ();
        v
    | exception e ->
        end_span ();
        raise e
  end

(* --- drain ---------------------------------------------------------- *)

let all_rings () =
  Mutex.lock rings_lock;
  let rs = !rings in
  Mutex.unlock rings_lock;
  rs

let dropped () =
  List.fold_left (fun acc r -> acc + Stdlib.max 0 (r.widx - r.cap)) 0 (all_rings ())

let unbalanced () = List.fold_left (fun acc r -> acc + r.unbalanced) 0 (all_rings ())

(* Like Sched.stats, drain between runs (while tracing domains are
   quiescent) for exact contents. *)
let drain () =
  let spans = ref [] in
  List.iter
    (fun r ->
      let total = r.widx in
      let kept = Stdlib.min total r.cap in
      for j = total - kept to total - 1 do
        let i = j mod r.cap in
        spans :=
          { name = r.r_name.(i); cat = cat_of_idx.(r.r_cat.(i)); tid = r.tid;
            depth = r.r_depth.(i); t0_ns = Float.Array.get r.r_t0 i;
            t1_ns = Float.Array.get r.r_t1 i; arg_name = r.r_arg_name.(i);
            arg = Float.Array.get r.r_arg i }
          :: !spans
      done;
      r.widx <- 0)
    (all_rings ());
  List.sort
    (fun a b ->
      let c = compare a.t0_ns b.t0_ns in
      if c <> 0 then c else compare a.depth b.depth)
    !spans

let clear () =
  List.iter
    (fun r ->
      r.widx <- 0;
      r.unbalanced <- 0)
    (all_rings ())
