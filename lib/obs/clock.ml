(* Monotonic time base for the observability layer.

   All span timestamps are nanoseconds since the process epoch (the
   moment this module was initialised), carried as floats: relative ns
   stay well below 2^53 for any realistic process lifetime (~104 days),
   so every tick is exactly representable, and floats let the trace
   rings keep timestamps in unboxed [floatarray]s. *)

let epoch = Monotonic_clock.now ()

let raw_ns () = Monotonic_clock.now ()

let now_ns () = Int64.to_float (Int64.sub (Monotonic_clock.now ()) epoch)

let ns_to_us ns = ns /. 1e3
