(* Minimal JSON reader/writer for the machine-readable artifacts
   (BENCH_*.json, CHECK_report.json, TRACE_*.json).  No dependencies;
   pretty-printed so the files diff cleanly across runs.

   Lived in lib/check until the observability layer needed JSON below
   lib/check in the dependency order (lib/runtime depends on lib/obs);
   Check.Json_out remains as an alias.

   Numbers are emitted with the shortest decimal representation that
   round-trips to the same double ([parse (to_string (Num f))] is
   bitwise [f] for any finite [f]).  The previous fixed "%.6g" format
   silently truncated anything needing more than 6 significant digits
   — fatal for nanosecond timestamps and flop totals, which is exactly
   what the trace files carry. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* --- emission ------------------------------------------------------- *)

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* JSON has no inf/nan literals: emit them as null.  Integral values
   below 2^53 print without an exponent (diff-friendly); everything
   else gets the shortest "%.*g" that parses back to the same bits. *)
let num f =
  if not (Float.is_finite f) then "null"
  else if Float.is_integer f && Float.abs f < 9007199254740992.0 then Printf.sprintf "%.0f" f
  else begin
    let rec shortest p =
      if p >= 17 then Printf.sprintf "%.17g" f
      else
        let s = Printf.sprintf "%.*g" p f in
        if float_of_string s = f then s else shortest (p + 1)
    in
    shortest 1
  end

let rec emit buf ~level v =
  let pad n = String.make (2 * n) ' ' in
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Num f -> Buffer.add_string buf (num f)
  | Str s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
  | List [] -> Buffer.add_string buf "[]"
  | List items ->
      Buffer.add_string buf "[\n";
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_string buf ",\n";
          Buffer.add_string buf (pad (level + 1));
          emit buf ~level:(level + 1) item)
        items;
      Buffer.add_char buf '\n';
      Buffer.add_string buf (pad level);
      Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
      Buffer.add_string buf "{\n";
      List.iteri
        (fun i (k, item) ->
          if i > 0 then Buffer.add_string buf ",\n";
          Buffer.add_string buf (pad (level + 1));
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape k);
          Buffer.add_string buf "\": ";
          emit buf ~level:(level + 1) item)
        fields;
      Buffer.add_char buf '\n';
      Buffer.add_string buf (pad level);
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 4096 in
  emit buf ~level:0 v;
  Buffer.add_char buf '\n';
  Buffer.contents buf

(* Single-line emission for wire protocols: same documents, none of
   the indentation bytes (a serve-protocol frame shrinks by ~40%).
   Strings skip the escape pass entirely when clean — on the serving
   hot path nearly every string is a hex float or a bare key. *)
let rec clean s i n =
  i >= n
  ||
  match String.unsafe_get s i with
  | '"' | '\\' -> false
  | c when Char.code c < 0x20 -> false
  | _ -> clean s (i + 1) n

let rec emit_compact buf v =
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Num f -> Buffer.add_string buf (num f)
  | Str s ->
      Buffer.add_char buf '"';
      if clean s 0 (String.length s) then Buffer.add_string buf s
      else Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          emit_compact buf item)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, item) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          if clean k 0 (String.length k) then Buffer.add_string buf k
          else Buffer.add_string buf (escape k);
          Buffer.add_string buf "\":";
          emit_compact buf item)
        fields;
      Buffer.add_char buf '}'

let to_string_compact v =
  let buf = Buffer.create 512 in
  emit_compact buf v;
  Buffer.contents buf

let write_file path v =
  let oc = open_out path in
  output_string oc (to_string v);
  close_out oc;
  Printf.printf "  [wrote %s]\n%!" path

(* --- parsing -------------------------------------------------------- *)

exception Parse_error of string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      incr pos
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then incr pos else fail (Printf.sprintf "expected '%c'" c)
  in
  let lit kw v =
    let l = String.length kw in
    if !pos + l <= n && String.sub s !pos l = kw then begin
      pos := !pos + l;
      v
    end
    else fail ("expected " ^ kw)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      let c = s.[!pos] in
      incr pos;
      if c = '"' then Buffer.contents buf
      else if c = '\\' then begin
        if !pos >= n then fail "unterminated escape";
        let e = s.[!pos] in
        incr pos;
        (match e with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'n' -> Buffer.add_char buf '\n'
        | 'r' -> Buffer.add_char buf '\r'
        | 't' -> Buffer.add_char buf '\t'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'u' ->
            if !pos + 4 > n then fail "truncated \\u escape";
            let hex = String.sub s !pos 4 in
            pos := !pos + 4;
            let cp =
              match int_of_string_opt ("0x" ^ hex) with
              | Some cp -> cp
              | None -> fail "bad \\u escape"
            in
            (* encode the code point as UTF-8 (surrogates untreated:
               the emitter only produces \u00XX control escapes) *)
            if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
            else if cp < 0x800 then begin
              Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
              Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
            end
            else begin
              Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
              Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
              Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
            end
        | _ -> fail "bad escape");
        go ()
      end
      else begin
        Buffer.add_char buf c;
        go ()
      end
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    if peek () = Some '-' then incr pos;
    while
      !pos < n && (match s.[!pos] with '0' .. '9' | '.' | 'e' | 'E' | '+' | '-' -> true | _ -> false)
    do
      incr pos
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some 't' -> lit "true" (Bool true)
    | Some 'f' -> lit "false" (Bool false)
    | Some 'n' -> lit "null" Null
    | Some '[' ->
        incr pos;
        skip_ws ();
        if peek () = Some ']' then begin
          incr pos;
          List []
        end
        else begin
          let items = ref [] in
          let rec go () =
            items := parse_value () :: !items;
            skip_ws ();
            match peek () with
            | Some ',' ->
                incr pos;
                go ()
            | Some ']' -> incr pos
            | _ -> fail "expected ',' or ']'"
          in
          go ();
          List (List.rev !items)
        end
    | Some '{' ->
        incr pos;
        skip_ws ();
        if peek () = Some '}' then begin
          incr pos;
          Obj []
        end
        else begin
          let fields = ref [] in
          (* RFC 8259 leaves duplicate keys undefined; every consumer
             here would silently last-write-win, and the serving layer
             parses untrusted frames — reject them outright.  Small
             objects (the common case on the request path) use a linear
             scan; past a handful of keys the seen set spills into a
             table so a many-key adversarial frame stays O(n) instead
             of the O(n^2) assoc-list scan it could otherwise exploit. *)
          let nfields = ref 0 in
          let seen = ref None in
          let dup k =
            match !seen with
            | Some h -> Hashtbl.mem h k
            | None ->
                if !nfields < 8 then List.mem_assoc k !fields
                else begin
                  let h = Hashtbl.create 32 in
                  List.iter (fun (k', _) -> Hashtbl.replace h k' ()) !fields;
                  seen := Some h;
                  Hashtbl.mem h k
                end
          in
          let rec go () =
            skip_ws ();
            let k = parse_string () in
            if dup k then fail (Printf.sprintf "duplicate key %S" k);
            (match !seen with Some h -> Hashtbl.add h k () | None -> incr nfields);
            skip_ws ();
            expect ':';
            let v = parse_value () in
            fields := (k, v) :: !fields;
            skip_ws ();
            match peek () with
            | Some ',' ->
                incr pos;
                go ()
            | Some '}' -> incr pos
            | _ -> fail "expected ',' or '}'"
          in
          go ();
          Obj (List.rev !fields)
        end
    | Some c ->
        if c = '-' || (c >= '0' && c <= '9') then Num (parse_number ())
        else fail "unexpected character"
  in
  try
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    Ok v
  with Parse_error m -> Error m

let parse_exn s = match parse s with Ok v -> v | Error m -> raise (Parse_error m)

let parse_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  parse s

(* --- accessors ------------------------------------------------------ *)

let member k = function Obj fields -> List.assoc_opt k fields | _ -> None

let to_list = function List l -> Some l | _ -> None

let to_num = function Num f -> Some f | _ -> None

let to_str = function Str s -> Some s | _ -> None
