(** Declared schemas for every machine-readable artifact the stack
    emits.  One place to update on intentional shape changes;
    test/test_json_schemas.ml validates the real artifacts. *)

val worker_row : Schema.t
(** Per-worker telemetry row ([Runtime.Sched.stats_json]). *)

val bench_fig : Schema.t
(** [BENCH_fig9.json], [BENCH_fig10.json], [BENCH_fig11.json]. *)

val bench_sched : Schema.t
(** [BENCH_sched.json], schema id [fpan-bench-sched/1]. *)

val check_report : Schema.t
(** [CHECK_report.json], schema id [fpan-check/1]. *)

val verify_certificate : Schema.t
(** [VERIFY_*.json], the exhaustive small-width verification
    certificate, schema id [fpan-verify/1]. *)

val serve_request : Schema.t
(** One request frame of the serving wire protocol, schema id
    [fpan-serve/1] (fixed tier) or [fpan-serve/2] (adaptive: [sla]
    exponent instead of a tier).  The server validates every inbound
    frame against this before decoding. *)

val serve_response : Schema.t
(** One response frame of the serving wire protocol. *)

val serve_stats : Schema.t
(** The server-introspection document returned by the [stats]
    operation. *)

val bench_serve : Schema.t
(** [BENCH_serve.json], the load-generator artifact (same
    [fpan-serve/1] family). *)

val bench_fuse : Schema.t
(** [BENCH_fuse.json], the cross-op fusion ablation, schema id
    [fpan-bench-fuse/1]. *)

val chaos_report : Schema.t
(** [CHAOS_report.json], the fault-injection campaign artifact, schema
    id [fpan-chaos/1].  Deterministic for a fixed
    (seed, shards, requests): every field is plan-derived or
    invariant-derived; timing-dependent counts are [null]. *)

val trace_summary : Schema.t
(** [TRACE_*.json], schema id [fpan-trace/1]. *)

val chrome_trace : Schema.t
(** The envelope and event fields of the exported Chrome trace. *)
