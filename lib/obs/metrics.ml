(* Global registry of counters, gauges, and log2 histograms.

   Counters and histograms are sharded per domain: each domain gets a
   private cell on first touch (via a per-metric [Domain.DLS] key), so
   the hot update path is a plain mutable store with no atomics and no
   lock.  [snapshot] merges the shards under the registry lock; the
   merge is pointwise commutative (counter sum, gauge max, bucketwise
   histogram sum), so the result does not depend on shard or argument
   order — the property test/test_obs.ml exercises.

   Histograms reuse the log2 bucketing shape of Check.Ulp_stats:
   bucket 0 collects everything below 2^lo_exp (including NaN), the
   last bucket everything at or above 2^hi_exp, and bucket i in
   between covers [2^(lo_exp+i-1), 2^(lo_exp+i)). *)

type histogram = {
  lo_exp : int;
  hi_exp : int;
  buckets : int array;
  count : int;
  sum : float;
  max_v : float;
}

type value = Counter of int | Gauge of float | Hist of histogram

type snapshot = (string * value) list

(* --- shards --------------------------------------------------------- *)

type cshard = { mutable cs_n : int }

type hshard = {
  hs_buckets : int array;
  mutable hs_count : int;
  mutable hs_sum : float;
  mutable hs_max : float;
}

type counter = { c_shards : cshard list ref; c_key : cshard Domain.DLS.key }

type gauge = { mutable g_v : float }

type hist = {
  h_lo : int;
  h_hi : int;
  h_shards : hshard list ref;
  h_key : hshard Domain.DLS.key;
}

type metric = M_counter of counter | M_gauge of gauge | M_hist of hist

let registry : (string, metric) Hashtbl.t = Hashtbl.create 97
let lock = Mutex.create ()

let locked f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

(* --- registration --------------------------------------------------- *)

let counter name =
  locked (fun () ->
      match Hashtbl.find_opt registry name with
      | Some (M_counter c) -> c
      | Some _ -> invalid_arg ("Obs.Metrics.counter: " ^ name ^ " has another kind")
      | None ->
          let shards = ref [] in
          let key =
            (* the DLS initialiser runs on a domain's first update, not
               under the registry lock held here *)
            Domain.DLS.new_key (fun () ->
                let s = { cs_n = 0 } in
                Mutex.lock lock;
                shards := s :: !shards;
                Mutex.unlock lock;
                s)
          in
          let c = { c_shards = shards; c_key = key } in
          Hashtbl.add registry name (M_counter c);
          c)

let gauge name =
  locked (fun () ->
      match Hashtbl.find_opt registry name with
      | Some (M_gauge g) -> g
      | Some _ -> invalid_arg ("Obs.Metrics.gauge: " ^ name ^ " has another kind")
      | None ->
          let g = { g_v = 0.0 } in
          Hashtbl.add registry name (M_gauge g);
          g)

let default_lo_exp = -12
let default_hi_exp = 40

let hist ?(lo_exp = default_lo_exp) ?(hi_exp = default_hi_exp) name =
  if hi_exp <= lo_exp then invalid_arg "Obs.Metrics.hist: hi_exp <= lo_exp";
  locked (fun () ->
      match Hashtbl.find_opt registry name with
      | Some (M_hist h) -> h
      | Some _ -> invalid_arg ("Obs.Metrics.hist: " ^ name ^ " has another kind")
      | None ->
          let nb = hi_exp - lo_exp + 2 in
          let shards = ref [] in
          let key =
            Domain.DLS.new_key (fun () ->
                let s = { hs_buckets = Array.make nb 0; hs_count = 0; hs_sum = 0.0; hs_max = 0.0 } in
                Mutex.lock lock;
                shards := s :: !shards;
                Mutex.unlock lock;
                s)
          in
          let h = { h_lo = lo_exp; h_hi = hi_exp; h_shards = shards; h_key = key } in
          Hashtbl.add registry name (M_hist h);
          h)

(* --- updates -------------------------------------------------------- *)

let add c k =
  let s = Domain.DLS.get c.c_key in
  s.cs_n <- s.cs_n + k

let incr c = add c 1

let set g v = g.g_v <- v

let bucket_of ~lo_exp ~hi_exp v =
  let nb = hi_exp - lo_exp + 2 in
  if not (v >= Float.ldexp 1.0 lo_exp) then 0 (* below range, and NaN *)
  else if not (v < Float.ldexp 1.0 hi_exp) then nb - 1
  else begin
    (* frexp gives floor(log2 v) = e - 1 exactly; Float.log2 would
       round values one ulp below a power of two up onto the boundary
       and misbucket them *)
    let b = 1 + (snd (Float.frexp v) - 1 - lo_exp) in
    Stdlib.min (nb - 2) (Stdlib.max 1 b)
  end

let observe h v =
  let s = Domain.DLS.get h.h_key in
  let b = bucket_of ~lo_exp:h.h_lo ~hi_exp:h.h_hi v in
  s.hs_buckets.(b) <- s.hs_buckets.(b) + 1;
  s.hs_count <- s.hs_count + 1;
  if Float.is_finite v then s.hs_sum <- s.hs_sum +. v;
  if v > s.hs_max then s.hs_max <- v

(* --- snapshot / merge ----------------------------------------------- *)

let snapshot () =
  locked (fun () ->
      let rows =
        Hashtbl.fold
          (fun name m acc ->
            let v =
              match m with
              | M_counter c -> Counter (List.fold_left (fun a s -> a + s.cs_n) 0 !(c.c_shards))
              | M_gauge g -> Gauge g.g_v
              | M_hist h ->
                  let nb = h.h_hi - h.h_lo + 2 in
                  let buckets = Array.make nb 0 in
                  let count = ref 0 and sum = ref 0.0 and max_v = ref 0.0 in
                  List.iter
                    (fun s ->
                      Array.iteri (fun i b -> buckets.(i) <- buckets.(i) + b) s.hs_buckets;
                      count := !count + s.hs_count;
                      sum := !sum +. s.hs_sum;
                      if s.hs_max > !max_v then max_v := s.hs_max)
                    !(h.h_shards);
                  Hist
                    { lo_exp = h.h_lo; hi_exp = h.h_hi; buckets; count = !count; sum = !sum;
                      max_v = !max_v }
            in
            (name, v) :: acc)
          registry []
      in
      List.sort (fun (a, _) (b, _) -> String.compare a b) rows)

let reset () =
  locked (fun () ->
      Hashtbl.iter
        (fun _ m ->
          match m with
          | M_counter c -> List.iter (fun s -> s.cs_n <- 0) !(c.c_shards)
          | M_gauge g -> g.g_v <- 0.0
          | M_hist h ->
              List.iter
                (fun s ->
                  Array.fill s.hs_buckets 0 (Array.length s.hs_buckets) 0;
                  s.hs_count <- 0;
                  s.hs_sum <- 0.0;
                  s.hs_max <- 0.0)
                !(h.h_shards))
        registry)

let merge_value a b =
  match (a, b) with
  | Counter x, Counter y -> Counter (x + y)
  | Gauge x, Gauge y -> Gauge (Float.max x y)
  | Hist x, Hist y when x.lo_exp = y.lo_exp && x.hi_exp = y.hi_exp ->
      Hist
        { lo_exp = x.lo_exp; hi_exp = x.hi_exp;
          buckets = Array.init (Array.length x.buckets) (fun i -> x.buckets.(i) + y.buckets.(i));
          count = x.count + y.count; sum = x.sum +. y.sum; max_v = Float.max x.max_v y.max_v }
  | _ -> invalid_arg "Obs.Metrics.merge: metric kind/shape mismatch"

let merge (a : snapshot) (b : snapshot) : snapshot =
  let tbl = Hashtbl.create 97 in
  let fold rows =
    List.iter
      (fun (name, v) ->
        match Hashtbl.find_opt tbl name with
        | None -> Hashtbl.add tbl name v
        | Some prev -> Hashtbl.replace tbl name (merge_value prev v))
      rows
  in
  fold a;
  fold b;
  Hashtbl.fold (fun name v acc -> (name, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* --- JSON ----------------------------------------------------------- *)

let to_json (s : snapshot) =
  Json_out.List
    (List.map
       (fun (name, v) ->
         match v with
         | Counter n ->
             Json_out.Obj
               [ ("name", Json_out.Str name); ("type", Json_out.Str "counter");
                 ("value", Json_out.Num (Float.of_int n)) ]
         | Gauge g ->
             Json_out.Obj
               [ ("name", Json_out.Str name); ("type", Json_out.Str "gauge");
                 ("value", Json_out.Num g) ]
         | Hist h ->
             Json_out.Obj
               [ ("name", Json_out.Str name); ("type", Json_out.Str "histogram");
                 ("lo_exp", Json_out.Num (Float.of_int h.lo_exp));
                 ("hi_exp", Json_out.Num (Float.of_int h.hi_exp));
                 ("count", Json_out.Num (Float.of_int h.count)); ("sum", Json_out.Num h.sum);
                 ("max", Json_out.Num h.max_v);
                 ( "buckets",
                   Json_out.List
                     (Array.to_list (Array.map (fun c -> Json_out.Num (Float.of_int c)) h.buckets))
                 ) ])
       s)
