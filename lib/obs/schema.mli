(** Structural JSON schema validation for the machine-readable
    artifacts.  Objects are closed: a key the schema does not declare
    is a violation, so additions to an emitter fail validation until
    the declared schema (and its version, if the shape changed
    incompatibly) is updated. *)

type t =
  | Any
  | Null
  | Bool
  | Num
  | Int  (** a number with an integral value *)
  | Str
  | Str_const of string
  | Str_enum of string list  (** one of a closed set of strings *)
  | List of t  (** homogeneous array *)
  | Obj of field list
  | One_of of t list

and field = Req of string * t | Opt of string * t

val nullable : t -> t
(** [One_of [t; Null]] — for numbers that may be emitted as [null]
    (inf/nan have no JSON literal). *)

val validate : t -> Json_out.t -> (unit, string list) result
(** All violations, each tagged with the path where it occurred. *)

val check : name:string -> t -> Json_out.t -> unit
(** [validate] raising [Failure] with every violation listed. *)
