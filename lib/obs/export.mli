(** Trace export: Chrome trace-event JSON and the compact
    [fpan-trace/1] aggregate summary. *)

val chrome_events : Trace.span list -> Json_out.t list
(** Balanced B/E event pairs (plus thread-name metadata events) in a
    valid Chrome trace interleaving, reconstructed per ring from the
    completed spans; recorded nesting depth breaks timestamp ties. *)

val chrome_trace : Trace.span list -> Json_out.t
(** The [{"traceEvents": [...]}] document [about:tracing] / Perfetto
    load directly. *)

val summary :
  workload:string ->
  ?sched:Json_out.t ->
  ?extra:(string * Json_out.t) list ->
  spans:Trace.span list ->
  metrics:Metrics.snapshot ->
  dropped:int ->
  unbalanced:int ->
  unit ->
  Json_out.t
(** The [fpan-trace/1] summary: per-(name, category) span aggregates
    (count, total/mean/max ns, argument sums), the merged metrics
    snapshot, and optionally the scheduler's per-worker telemetry
    ([Runtime.Sched.stats_json] — kept verbatim so its totals are
    bitwise those of [Sched.stats]). *)

val write_json : string -> Json_out.t -> unit
(** {!Json_out.write_file} wrapped in an [io] span when tracing. *)
