(** Low-overhead span tracing over per-domain ring buffers.

    Nestable spans with categories, recorded per domain into a
    fixed-capacity ring (most recent spans win; older ones are counted
    as dropped).  The span path touches no locks or atomics; the
    disabled mode is a single branch on a flag with no allocation —
    hot sites should guard float-argument ends themselves:

    {[
      let tr = Obs.Trace.enabled () in
      if tr then Obs.Trace.begin_span Obs.Trace.Kernel "gemm.tile";
      (* ... work ... *)
      if tr then Obs.Trace.end_span_f ~arg_name:"flops" ~arg:(float_of_int fl)
    ]} *)

type cat = Kernel | Sched | Eft | Fuzz | Io

val cat_name : cat -> string

type span = {
  name : string;
  cat : cat;
  tid : int;  (** ring id — one per domain that ever traced *)
  depth : int;  (** open spans below this one on the same domain *)
  t0_ns : float;  (** {!Clock.now_ns} at begin *)
  t1_ns : float;
  arg_name : string;  (** [""] when no argument was attached *)
  arg : float;
}

val enabled : unit -> bool
(** Initially set from the [FPAN_OBS] environment variable
    ([1]/[true]/[on]/[yes]). *)

val set_enabled : bool -> unit

val set_ring_capacity : int -> unit
(** Capacity (spans) of rings created after this call; default 32768.
    Existing rings keep their size. *)

val begin_span : cat -> string -> unit
(** Open a span on the calling domain.  No-op (one branch, no
    allocation) when disabled.  Deeper than 256 open spans counts as
    unbalanced and is dropped. *)

val end_span : unit -> unit
(** Close the innermost open span.  An end without a begin increments
    the {!unbalanced} count instead of recording. *)

val end_span_f : arg_name:string -> arg:float -> unit
(** [end_span] attaching a named float argument (flop count, residual
    norm, ...).  Guard the call site on {!enabled} — the float would
    be boxed even when tracing is off. *)

val with_span : cat -> string -> (unit -> 'a) -> 'a
(** Convenience wrapper (closes on exception too).  The closure makes
    this allocate at the call site even when disabled — use begin/end
    on hot paths. *)

val drain : unit -> span list
(** Collect and clear every domain's completed spans, sorted by start
    time (ties by depth, so parents sort before the children they
    started simultaneously with).  Open spans stay open.  Drain while
    tracing domains are quiescent for exact contents; read {!dropped}
    first (draining resets it). *)

val dropped : unit -> int
(** Completed spans overwritten before being drained. *)

val unbalanced : unit -> int
(** Ends without a begin, plus begins beyond the depth limit. *)

val clear : unit -> unit
(** Discard all completed spans and reset the unbalanced count. *)
