(** Minimal JSON reader/writer for the machine-readable artifacts
    ([BENCH_*.json], [CHECK_report.json], [TRACE_*.json]).  Emission is
    pretty-printed so the files diff cleanly across runs; numbers use
    the shortest decimal that round-trips to the same double, and
    non-finite numbers become [null] (JSON has no inf/nan literals) —
    exact float transport uses {!Str} with C99 hex notation instead.
    The parser accepts exactly what the emitter produces plus ordinary
    standard JSON (escapes, [\u] sequences, nested containers). *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string

val to_string_compact : t -> string
(** Single-line emission (no indentation or newlines) for wire
    protocols; parses back identically to {!to_string} output. *)

val write_file : string -> t -> unit

exception Parse_error of string

val parse : string -> (t, string) result
(** Strict parse of a complete JSON document.  [parse (to_string v)]
    is [Ok v] whenever [v] contains no non-finite numbers.  Trailing
    garbage and duplicate object keys are rejected (the serving layer
    feeds this parser untrusted frames, so last-write-wins key
    smuggling must not survive). *)

val parse_exn : string -> t
val parse_file : string -> (t, string) result

(** {1 Accessors} (for tests and schema validation) *)

val member : string -> t -> t option
val to_list : t -> t list option
val to_num : t -> float option
val to_str : t -> string option
