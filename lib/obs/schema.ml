(* Structural JSON schema validation for the machine-readable
   artifacts.  A schema is a small combinator tree; [validate] walks a
   Json_out value against it and collects every violation with a
   JSON-pointer-ish path, so a schema drift reports all its symptoms
   in one run instead of one per rerun. *)

type t =
  | Any
  | Null
  | Bool
  | Num  (* any JSON number *)
  | Int  (* a number with an integral value *)
  | Str
  | Str_const of string
  | Str_enum of string list  (* one of a closed set of strings *)
  | List of t  (* homogeneous array *)
  | Obj of field list
  | One_of of t list

and field = Req of string * t | Opt of string * t

let nullable t = One_of [ t; Null ]

let rec describe = function
  | Any -> "any"
  | Null -> "null"
  | Bool -> "bool"
  | Num -> "number"
  | Int -> "integer"
  | Str -> "string"
  | Str_const s -> Printf.sprintf "%S" s
  | Str_enum ss -> String.concat " | " (List.map (Printf.sprintf "%S") ss)
  | List _ -> "array"
  | Obj _ -> "object"
  | One_of ts -> String.concat " | " (List.map describe ts)

(* The path is carried as a reversed segment list and rendered only
   when a violation is reported: the serving layer validates every
   inbound frame, so the success path must not allocate path strings
   node by node. *)
type seg = Skey of string | Sidx of int

let render_path rev =
  match rev with
  | [] -> "$"
  | _ ->
      let b = Buffer.create 32 in
      List.iter
        (function
          | Skey k ->
              Buffer.add_char b '.';
              Buffer.add_string b k
          | Sidx i ->
              Buffer.add_char b '[';
              Buffer.add_string b (string_of_int i);
              Buffer.add_char b ']')
        (List.rev rev);
      Buffer.contents b

let validate spec json =
  let errs = ref [] in
  let err rev msg = errs := Printf.sprintf "%s: %s" (render_path rev) msg :: !errs in
  let rec go rev spec (json : Json_out.t) =
    match (spec, json) with
    | Any, _ -> ()
    | Null, Json_out.Null -> ()
    | Bool, Json_out.Bool _ -> ()
    | Num, Json_out.Num _ -> ()
    | Int, Json_out.Num f when Float.is_integer f -> ()
    | Str, Json_out.Str _ -> ()
    | Str_const want, Json_out.Str got ->
        if got <> want then err rev (Printf.sprintf "expected %S, got %S" want got)
    | Str_enum wants, Json_out.Str got ->
        if not (List.mem got wants) then
          err rev
            (Printf.sprintf "expected one of %s, got %S"
               (String.concat ", " (List.map (Printf.sprintf "%S") wants))
               got)
    | List elt, Json_out.List items ->
        List.iteri (fun i item -> go (Sidx i :: rev) elt item) items
    | Obj fields, Json_out.Obj kvs ->
        List.iter
          (fun field ->
            let key, spec, required =
              match field with Req (k, s) -> (k, s, true) | Opt (k, s) -> (k, s, false)
            in
            match List.assoc_opt key kvs with
            | Some v -> go (Skey key :: rev) spec v
            | None -> if required then err rev (Printf.sprintf "missing required key %S" key))
          fields;
        (* unknown keys are schema drift too: catch additions that the
           declared schema does not know about *)
        List.iter
          (fun (k, _) ->
            if
              not
                (List.exists
                   (function Req (k', _) | Opt (k', _) -> k' = k)
                   fields)
            then err rev (Printf.sprintf "unexpected key %S" k))
          kvs
    | One_of specs, v ->
        let ok =
          List.exists
            (fun s ->
              let saved = !errs in
              go rev s v;
              let passed = !errs == saved in
              errs := saved;
              passed)
            specs
        in
        if not ok then err rev (Printf.sprintf "matches none of: %s" (describe spec))
    | _, v ->
        let got =
          match v with
          | Json_out.Null -> "null"
          | Json_out.Bool _ -> "bool"
          | Json_out.Num _ -> "number"
          | Json_out.Str _ -> "string"
          | Json_out.List _ -> "array"
          | Json_out.Obj _ -> "object"
        in
        err rev (Printf.sprintf "expected %s, got %s" (describe spec) got)
  in
  go [] spec json;
  match List.rev !errs with [] -> Ok () | es -> Error es

let check ~name spec json =
  match validate spec json with
  | Ok () -> ()
  | Error es ->
      failwith (Printf.sprintf "%s: schema violation:\n  %s" name (String.concat "\n  " es))
