(** Cache-blocked dense kernels (DOT, SUMSQ, AXPY, GEMV, GEMM) over
    planar vectors, decomposed into stealable tasks on {!Sched}.

    The GEMM tiles C over i/j only (never over k); each tile runs the
    ikj rank-1 [madd] update restricted to its j-range, folding p in
    index order — the sequential batched kernel's exact accumulation
    order — so tiled results are bitwise identical to the sequential
    path at any tile size and worker count.  DOT/SUMSQ use the
    scheduler's fixed-shape reduction tree (deterministic, but grouped
    differently from a plain sequential fold). *)

module type ELT = sig
  type t

  val zero : t
  val add : t -> t -> t
end

(** The planar-vector subset the engine needs — a structural subset of
    both {!Blas.Numeric.VEC} and {!Multifloat.Batch.V}, so any batched
    arithmetic plugs in directly. *)
module type VEC = sig
  type elt
  type t

  val length : t -> int
  val create : int -> t
  val get : t -> int -> elt
  val set : t -> int -> elt -> unit
  val axpy : lo:int -> hi:int -> alpha:elt -> x:t -> y:t -> unit
  val madd : alpha:elt -> x:t -> xoff:int -> y:t -> yoff:int -> len:int -> unit
  val dot : init:elt -> x:t -> xoff:int -> y:t -> yoff:int -> len:int -> elt
  val dot_sub : b:elt -> x:t -> xoff:int -> y:t -> yoff:int -> len:int -> elt
  val axpy_dot : lo:int -> hi:int -> alpha:elt -> x:t -> y:t -> w:t -> init:elt -> elt
end

type cfg = {
  tile_m : int;  (** C tile height (rows of A per task) *)
  tile_n : int;  (** C tile width (packed B^T rows per task) *)
  grain : int;  (** multiply-accumulates per leaf for the 1-D kernels *)
}

val default_cfg : cfg
(** [{tile_m = 32; tile_n = 32; grain = 1024}] — tiles sized so the
    [k x tile_n] B panel plus the C tile of 2–4-term planar components
    stay cache-resident (see DESIGN.md §7 and the EXPERIMENTS.md tile
    sweep).  Changing the tile size or grain never changes GEMM/GEMV
    results (only the DOT/SUMSQ reduction-tree shape depends on
    [grain]). *)

module Make (E : ELT) (V : VEC with type elt = E.t) : sig
  val dot : Sched.t -> ?cfg:cfg -> V.t -> V.t -> E.t
  (** Tree-reduced dot product (deterministic for fixed length/grain). *)

  val sumsq : Sched.t -> ?cfg:cfg -> V.t -> E.t
  (** Tree-reduced [dot x x] — the NRM2 building block. *)

  val axpy : Sched.t -> ?cfg:cfg -> alpha:E.t -> x:V.t -> y:V.t -> unit -> unit
  (** [y <- alpha x + y], range-partitioned (elementwise, so bitwise
      equal to the sequential kernel). *)

  val axpy_dot :
    Sched.t -> ?cfg:cfg -> alpha:E.t -> x:V.t -> y:V.t -> w:V.t -> unit -> E.t
  (** Fused [y <- alpha x + y] and [dot y w] in one pass over the
      planes, using the same fixed-shape reduction tree as {!dot}:
      bitwise equal to [axpy] followed by [dot y w] at any worker
      count (the leaves update disjoint [y] ranges). *)

  val gemv : Sched.t -> ?cfg:cfg -> m:int -> n:int -> a:V.t -> x:V.t -> y:V.t -> unit -> unit
  (** [y <- A x], row-partitioned; each row is the sequential planar
      dot, so results are bitwise equal to the sequential kernel. *)

  val gemv_residual :
    Sched.t -> ?cfg:cfg -> m:int -> n:int -> a:V.t -> x:V.t -> b:V.t -> r:V.t -> unit -> unit
  (** [r <- b - A x], row-partitioned; each row is one fused
      {!VEC.dot_sub} pass, bitwise equal to {!gemv} followed by an
      elementwise subtract at any worker count. *)

  val gemm :
    Sched.t -> ?cfg:cfg -> m:int -> n:int -> k:int -> a:V.t -> b:V.t -> c:V.t -> unit -> unit
  (** [C <- C + A B] ([A] m×k, [B] k×n, [C] m×n row-major), tiled;
      bitwise equal to the sequential batched kernel. *)
end
