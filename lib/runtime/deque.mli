(** Chase-Lev-style work-stealing deque: single owner pushes/pops at
    the bottom (LIFO), any number of thieves steal at the top (FIFO)
    with a single CAS.  Every element is returned exactly once across
    [pop] and [steal].  Fixed capacity: a full deque rejects the push
    (the scheduler then runs the task inline). *)

type 'a t

val create : ?capacity:int -> unit -> 'a t
(** [capacity] (default 8192) is rounded up to a power of two. *)

val is_empty : 'a t -> bool
(** Racy snapshot; safe from any domain. *)

val push : 'a t -> 'a -> bool
(** Owner only.  [false] if the deque is full (element NOT enqueued). *)

val pop : 'a t -> 'a option
(** Owner only: newest element, competing with thieves for the last
    one. *)

val steal : 'a t -> 'a option
(** Any domain: oldest element, or [None] if empty / lost the race
    (callers retry or move to another victim). *)
