(** Work-stealing fork/join scheduler over OCaml 5 domains.

    Per-worker Chase-Lev deques ({!Deque}); recursive binary-split
    fork/join tasks; joining workers help (pop own deque / steal)
    instead of blocking.  The scheduler decides only {e where} tasks
    run: the task tree and every reduction's combine order are fixed
    by the input sizes and the grain, so results are bitwise identical
    for any worker count — the property {!Engine} and the rewired BLAS
    kernels rely on, and test/test_runtime.ml asserts. *)

type t
(** A scheduler: [w] workers, of which [w-1] are spawned domains and
    one slot is taken by the external caller for the duration of each
    {!run}. *)

val create : ?workers:int -> unit -> t
(** Spawn a scheduler with [workers] total workers (default
    [Domain.recommended_domain_count ()], min 1; [workers = 1] spawns
    no domains and runs everything inline on the caller). *)

val size : t -> int
(** Total worker count (including the caller slot). *)

val shutdown : t -> unit
(** Stop and join the worker domains.  Idempotent (and reentrant from a
    drain hook).  Registered {!on_shutdown} hooks run first, in LIFO
    order, while the scheduler still accepts runs — so subsystems built
    on the scheduler can flush their in-flight work through it.  [run]
    after shutdown raises [Invalid_argument]. *)

val on_shutdown : t -> (unit -> unit) -> unit
(** Register a drain hook: called exactly once at the start of
    {!shutdown}, before the workers are stopped.  Exceptions from hooks
    are swallowed (shutdown must complete). *)

val drain_all : unit -> unit
(** {!shutdown} every live scheduler in the process (running their
    drain hooks).  For SIGINT/SIGTERM handlers: quiesces all background
    work so artifacts being written by drain hooks are not truncated
    mid-write. *)

val with_sched : ?workers:int -> (t -> 'a) -> 'a
(** [create], apply, [shutdown] (also on exception). *)

(** {1 Fork/join} *)

type 'a promise
(** An unevaluated, running, or finished task result. *)

val run : t -> (unit -> 'a) -> 'a
(** Execute [f] with the calling domain participating as worker 0.
    External calls are serialized (one root run at a time); a call
    from inside a run of the same scheduler just runs [f] inline.
    Exceptions from [f] (or propagated from joined tasks) re-raise on
    the caller after the run quiesces. *)

val fork : t -> (unit -> 'a) -> 'a promise
(** Push a task onto the current worker's deque (inside {!run} only —
    [Invalid_argument] otherwise).  If the deque is full the task runs
    inline immediately; either way the promise is eventually
    fulfilled exactly once. *)

val join : t -> 'a promise -> 'a
(** Wait for a promise, executing other pending tasks while waiting.
    Re-raises the task's exception if it raised. *)

val both : t -> (unit -> 'a) -> (unit -> 'b) -> 'a * 'b
(** [both rt f g] forks [g], runs [f] inline, joins [g].  The join
    always happens — even when [f] raises — so no forked task outlives
    the enclosing {!run}; if either side raised, re-raises the [f]
    exception first. *)

(** {1 Deterministic parallel loops}

    Both loops split [lo, hi) by recursive halving ([mid = lo +
    (hi-lo)/2]) down to ranges of at most [grain] (default 1), so the
    task tree — and for [parallel_reduce] the combine tree — depends
    only on [lo], [hi], and [grain].  Never derive [grain] from the
    worker count: that would change the tree shape (and reduction
    results) across machines. *)

val parallel_for : t -> ?grain:int -> lo:int -> hi:int -> (int -> int -> unit) -> unit
(** [parallel_for rt ~grain ~lo ~hi body] calls [body l h] on disjoint
    leaf ranges covering [lo, hi). *)

val parallel_reduce :
  t -> ?grain:int -> lo:int -> hi:int -> leaf:(int -> int -> 'a) -> ('a -> 'a -> 'a) -> 'a
(** [parallel_reduce rt ~lo ~hi ~leaf combine]: fixed-shape tree
    reduction — [leaf l h] on each leaf range, [combine left right] at
    each internal node, in tree order.  ([combine] is positional so
    partial applications without [?grain] still erase the default.) *)

(** {1 Execution telemetry} *)

type worker_stats = {
  worker_id : int;
  tasks_executed : int;  (** tasks run on this worker (root runs count on worker 0) *)
  steals : int;  (** successful steals by this worker *)
  steal_attempts : int;  (** victim scans, successful or not *)
  join_helps : int;  (** tasks executed while waiting inside {!join} *)
  tile_flops : int;  (** extended-precision operations reported via {!add_flops} *)
  busy_seconds : float;  (** wall-clock executing top-level tasks *)
  idle_seconds : float;  (** wall-clock spinning while a run was in flight
                             (parked time between runs is not counted, so a
                             {!reset_stats} between runs is exact) *)
}

val add_flops : t -> int -> unit
(** Credit [n] extended-precision operations to the current worker
    (inside {!run} only). *)

val stats : t -> worker_stats array
(** Snapshot of all workers' counters since creation or the last
    {!reset_stats}.  Read between runs for exact values. *)

val reset_stats : t -> unit

val busy_fraction : worker_stats -> float
(** [busy / (busy + idle)], or [0.] when neither was recorded. *)

val stats_json : worker_stats array -> Obs.Json_out.t
(** The canonical JSON rendering of a {!stats} snapshot: a list of
    per-worker objects with keys [worker], [tasks], [steals],
    [steal_attempts], [join_helps], [tile_flops], [busy_seconds],
    [idle_seconds], [busy_fraction].  Every artifact that reports
    worker telemetry (BENCH_sched.json, the fig9 sched block, trace
    summaries) goes through this one function, so their rows agree
    bitwise. *)
