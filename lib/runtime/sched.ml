(* Work-stealing fork/join scheduler over OCaml 5 domains.

   One Chase-Lev deque per worker (slot 0 is the external caller, who
   participates for the duration of [run]; slots 1..w-1 are spawned
   domains).  [fork] pushes a task onto the forking worker's own deque;
   idle workers steal from random victims.  [join] helps: while the
   joined task is unfinished, the joining worker pops its own deque
   (stack order -- usually the task it just forked) or steals,
   executing whatever it finds, so the fork/join tree never blocks a
   domain.

   DETERMINISM.  The scheduler itself decides only WHERE tasks run,
   never what they compute: the task tree (split points, leaf ranges,
   reduction combine order) is fixed by the input sizes and the grain,
   independent of the worker count and of steal timing.  Reductions
   combine child results at their tree node (left then right), so a
   parallel reduction is a fixed expression tree and the result is
   bitwise identical for 1, 2, or any number of workers -- the
   extension of PR 1's scalar-vs-batch bitwise obligation to the
   parallel runtime (asserted by test/test_runtime.ml).

   EXCEPTIONS.  A task body that raises stores the exception in its
   promise; [join] re-raises it.  [both] (the primitive the parallel
   loops are built on) always joins the forked child -- even when the
   inline child raised -- so no task outlives [run], then re-raises
   the leftmost exception.

   TELEMETRY.  Each worker counts executed tasks, steal attempts and
   successes, tasks executed while helping a join, reported flops, and
   busy/idle wall-clock; [stats] snapshots the counters (read them
   between runs for exact values).  Idle time covers only spinning
   while a run was in flight — parked time between runs is not
   telemetry, and excluding it is what makes a [reset_stats] between
   runs exact (no wall-clock segment straddles the reset).  When
   Obs.Trace is enabled, top-level task execution and root runs are
   also recorded as [sched] spans, and [stats_json] renders the
   per-worker rows every JSON surface (BENCH_sched.json, the fig9
   sched block, TRACE summaries) shares. *)

type worker = {
  id : int;
  deque : (unit -> unit) Deque.t;
  victim_rng : Random.State.t;
  mutable depth : int;  (* task nesting, so busy time is not double-counted *)
  mutable tasks : int;
  mutable steals : int;
  mutable steal_attempts : int;
  mutable join_helps : int;
  mutable flops : int;
  mutable busy_s : float;
  mutable idle_s : float;
}

type t = {
  sid : int;  (* unique scheduler id, keying the per-domain slot registry *)
  workers : worker array;
  mutable domains : unit Domain.t array;
  active : int Atomic.t;  (* external runs in flight (0 or 1) *)
  closed : bool Atomic.t;
  shutting_down : bool Atomic.t;  (* set before drain hooks run; makes shutdown reentrant *)
  lock : Mutex.t;
  wake : Condition.t;  (* workers sleep here between runs *)
  root_lock : Mutex.t;  (* one external run at a time *)
  hooks_lock : Mutex.t;
  mutable hooks : (unit -> unit) list;  (* drain hooks, run LIFO before closing *)
}

type worker_stats = {
  worker_id : int;
  tasks_executed : int;
  steals : int;
  steal_attempts : int;
  join_helps : int;
  tile_flops : int;
  busy_seconds : float;
  idle_seconds : float;
}

let now () = Unix.gettimeofday ()

(* Which slot (if any) the current domain occupies in which scheduler:
   an assoc list keyed by scheduler id, since a caller domain may talk
   to several schedulers over its lifetime. *)
let slot_key : (int * int) list ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref [])

let next_sid = Atomic.make 0

(* Registry of schedulers that have been created and not yet shut down,
   so a signal handler can drain everything with one call. *)
let live : t list ref = ref []
let live_lock = Mutex.create ()

let slot_of rt = List.assoc_opt rt.sid !(Domain.DLS.get slot_key)

let self rt =
  match slot_of rt with
  | Some s -> rt.workers.(s)
  | None -> invalid_arg "Runtime.Sched: fork/join used outside run"

let mk_worker id =
  {
    id;
    deque = Deque.create ();
    victim_rng = Random.State.make [| 0x5eed; id |];
    depth = 0;
    tasks = 0;
    steals = 0;
    steal_attempts = 0;
    join_helps = 0;
    flops = 0;
    busy_s = 0.0;
    idle_s = 0.0;
  }

(* Tasks never raise: promise bodies catch into the promise state.
   Only depth-0 execution is timed and traced: nested tasks run inline
   inside an already-timed span, and a per-leaf span at fine grain
   would dominate the work it measures. *)
let exec_task w task =
  w.tasks <- w.tasks + 1;
  if w.depth = 0 then begin
    let tr = Obs.Trace.enabled () in
    if tr then Obs.Trace.begin_span Obs.Trace.Sched "sched.task";
    let t0 = now () in
    w.depth <- 1;
    task ();
    w.depth <- 0;
    w.busy_s <- w.busy_s +. (now () -. t0);
    if tr then Obs.Trace.end_span ()
  end
  else task ()

let try_steal rt (w : worker) =
  let n = Array.length rt.workers in
  if n = 1 then None
  else begin
    w.steal_attempts <- w.steal_attempts + 1;
    let start = Random.State.int w.victim_rng n in
    let rec go i =
      if i = n then None
      else
        let v = rt.workers.((start + i) mod n) in
        if v.id = w.id then go (i + 1)
        else
          match Deque.steal v.deque with
          | Some _ as r ->
              w.steals <- w.steals + 1;
              r
          | None -> go (i + 1)
    in
    go 0
  end

(* One scheduling step for [w]: run one available task, or return false. *)
let step rt w =
  match Deque.pop w.deque with
  | Some task ->
      exec_task w task;
      true
  | None -> (
      match try_steal rt w with
      | Some task ->
          exec_task w task;
          true
      | None -> false)

let worker_loop rt slot =
  let reg = Domain.DLS.get slot_key in
  reg := (rt.sid, slot) :: !reg;
  let w = rt.workers.(slot) in
  let misses = ref 0 in
  while not (Atomic.get rt.closed) do
    if step rt w then misses := 0
    else if Atomic.get rt.active > 0 then begin
      (* A run is in flight but nothing is stealable yet: spin
         briefly, then yield the core (essential when domains
         oversubscribe the machine -- a spinning thief would steal
         cycles from the worker actually holding the work).  Only
         this in-run spinning counts as idle time: parked time
         between runs is not telemetry, and timing it would leak a
         wall-clock segment across a [reset_stats] issued while the
         scheduler is quiescent. *)
      let t0 = now () in
      incr misses;
      if !misses < 100 then Domain.cpu_relax () else Unix.sleepf 0.0002;
      w.idle_s <- w.idle_s +. (now () -. t0)
    end
    else begin
      Mutex.lock rt.lock;
      while Atomic.get rt.active = 0 && not (Atomic.get rt.closed) do
        Condition.wait rt.wake rt.lock
      done;
      Mutex.unlock rt.lock;
      misses := 0
    end
  done

let create ?workers () =
  let n =
    match workers with
    | Some w -> max 1 w
    | None -> Domain.recommended_domain_count ()
  in
  let rt =
    {
      sid = Atomic.fetch_and_add next_sid 1;
      workers = Array.init n mk_worker;
      domains = [||];
      active = Atomic.make 0;
      closed = Atomic.make false;
      shutting_down = Atomic.make false;
      lock = Mutex.create ();
      wake = Condition.create ();
      root_lock = Mutex.create ();
      hooks_lock = Mutex.create ();
      hooks = [];
    }
  in
  rt.domains <- Array.init (n - 1) (fun i -> Domain.spawn (fun () -> worker_loop rt (i + 1)));
  Mutex.lock live_lock;
  live := rt :: !live;
  Mutex.unlock live_lock;
  rt

let size rt = Array.length rt.workers

(* ------------------------------------------------------------------ *)
(* Fork/join                                                           *)

type 'a state =
  | Todo of (unit -> 'a)
  | Done of 'a
  | Raised of exn

type 'a promise = 'a state Atomic.t

let exec_promise p () =
  match Atomic.get p with
  | Todo f ->
      let r = try Done (f ()) with e -> Raised e in
      Atomic.set p r
  | Done _ | Raised _ -> ()

let fork rt f =
  let w = self rt in
  let p = Atomic.make (Todo f) in
  if Deque.push w.deque (exec_promise p) then p
  else begin
    (* deque full: degrade to an inline call (same task tree, same
       result; only the potential parallelism is lost) *)
    exec_promise p ();
    p
  end

let join rt p =
  match Atomic.get p with
  | Done v -> v
  | Raised e -> raise e
  | Todo _ ->
      let w = self rt in
      let misses = ref 0 in
      let rec wait () =
        match Atomic.get p with
        | Done v -> v
        | Raised e -> raise e
        | Todo _ ->
            (* help: run other tasks while the stolen child finishes *)
            if step rt w then begin
              w.join_helps <- w.join_helps + 1;
              misses := 0
            end
            else begin
              incr misses;
              if !misses < 100 then Domain.cpu_relax () else Unix.sleepf 0.0002
            end;
            wait ()
      in
      wait ()

let run rt f =
  if Atomic.get rt.closed then invalid_arg "Runtime.Sched.run: scheduler is shut down";
  match slot_of rt with
  | Some _ -> f () (* nested: already executing inside this scheduler *)
  | None ->
      Mutex.lock rt.root_lock;
      let reg = Domain.DLS.get slot_key in
      reg := (rt.sid, 0) :: !reg;
      Atomic.incr rt.active;
      Mutex.lock rt.lock;
      Condition.broadcast rt.wake;
      Mutex.unlock rt.lock;
      let w = rt.workers.(0) in
      let finish result =
        (* nothing of this run may outlive it: [both] joins every fork,
           so at this point the deques are quiescent *)
        Atomic.decr rt.active;
        reg := List.filter (fun (s, _) -> s <> rt.sid) !reg;
        Mutex.unlock rt.root_lock;
        match result with Ok v -> v | Error e -> raise e
      in
      let tr = Obs.Trace.enabled () in
      if tr then Obs.Trace.begin_span Obs.Trace.Sched "sched.run";
      let t0 = now () in
      let result = try Ok (f ()) with e -> Error e in
      w.tasks <- w.tasks + 1;
      w.busy_s <- w.busy_s +. (now () -. t0);
      if tr then Obs.Trace.end_span ();
      finish result

let both rt f g =
  let pg = fork rt g in
  let rf = try Ok (f ()) with e -> Error e in
  (* always join -- even under an exception -- so no forked task can
     outlive the enclosing run *)
  let rg = try Ok (join rt pg) with e -> Error e in
  match (rf, rg) with
  | Ok a, Ok b -> (a, b)
  | Error e, _ -> raise e
  | Ok _, Error e -> raise e

(* ------------------------------------------------------------------ *)
(* Deterministic parallel loops                                        *)

let parallel_for rt ?(grain = 1) ~lo ~hi body =
  let grain = max 1 grain in
  let rec go lo hi =
    if hi - lo <= grain then (if hi > lo then body lo hi)
    else begin
      let mid = lo + ((hi - lo) / 2) in
      ignore (both rt (fun () -> go lo mid) (fun () -> go mid hi))
    end
  in
  run rt (fun () -> go lo hi)

let parallel_reduce rt ?(grain = 1) ~lo ~hi ~leaf combine =
  let grain = max 1 grain in
  let rec go lo hi =
    if hi - lo <= grain then leaf lo hi
    else begin
      let mid = lo + ((hi - lo) / 2) in
      let a, b = both rt (fun () -> go lo mid) (fun () -> go mid hi) in
      combine a b
    end
  in
  run rt (fun () -> go lo hi)

(* ------------------------------------------------------------------ *)
(* Telemetry                                                           *)

let add_flops rt n =
  let w = self rt in
  w.flops <- w.flops + n

let stats rt =
  Array.map
    (fun w ->
      {
        worker_id = w.id;
        tasks_executed = w.tasks;
        steals = w.steals;
        steal_attempts = w.steal_attempts;
        join_helps = w.join_helps;
        tile_flops = w.flops;
        busy_seconds = w.busy_s;
        idle_seconds = w.idle_s;
      })
    rt.workers

let reset_stats rt =
  Array.iter
    (fun w ->
      w.tasks <- 0;
      w.steals <- 0;
      w.steal_attempts <- 0;
      w.join_helps <- 0;
      w.flops <- 0;
      w.busy_s <- 0.0;
      w.idle_s <- 0.0)
    rt.workers

let busy_fraction (s : worker_stats) =
  let total = s.busy_seconds +. s.idle_seconds in
  if total <= 0.0 then 0.0 else s.busy_seconds /. total

(* The one JSON rendering of per-worker telemetry.  BENCH_sched.json,
   the fig9 sched block, and the trace summary all call this, so their
   rows are bitwise-identical by construction. *)
let stats_json (ws : worker_stats array) =
  let open Obs.Json_out in
  List
    (Array.to_list ws
    |> List.map (fun s ->
           Obj
             [
               ("worker", Num (float_of_int s.worker_id));
               ("tasks", Num (float_of_int s.tasks_executed));
               ("steals", Num (float_of_int s.steals));
               ("steal_attempts", Num (float_of_int s.steal_attempts));
               ("join_helps", Num (float_of_int s.join_helps));
               ("tile_flops", Num (float_of_int s.tile_flops));
               ("busy_seconds", Num s.busy_seconds);
               ("idle_seconds", Num s.idle_seconds);
               ("busy_fraction", Num (busy_fraction s));
             ]))

(* ------------------------------------------------------------------ *)

let on_shutdown rt f =
  Mutex.lock rt.hooks_lock;
  rt.hooks <- f :: rt.hooks;
  Mutex.unlock rt.hooks_lock

let shutdown rt =
  if not (Atomic.exchange rt.shutting_down true) then begin
    (* Drain hooks run first, while the scheduler still accepts runs, so
       a subsystem built on this scheduler (e.g. Serve.Server) can flush
       its in-flight work through it before the workers go away. *)
    Mutex.lock rt.hooks_lock;
    let hooks = rt.hooks in
    rt.hooks <- [];
    Mutex.unlock rt.hooks_lock;
    List.iter (fun h -> try h () with _ -> ()) hooks;
    Atomic.set rt.closed true;
    Mutex.lock rt.lock;
    Condition.broadcast rt.wake;
    Mutex.unlock rt.lock;
    Array.iter Domain.join rt.domains;
    rt.domains <- [||];
    Mutex.lock live_lock;
    live := List.filter (fun r -> r.sid <> rt.sid) !live;
    Mutex.unlock live_lock
  end

let drain_all () =
  let snapshot =
    Mutex.lock live_lock;
    let l = !live in
    Mutex.unlock live_lock;
    l
  in
  List.iter shutdown snapshot

let with_sched ?workers f =
  let rt = create ?workers () in
  Fun.protect ~finally:(fun () -> shutdown rt) (fun () -> f rt)
