(* Cache-blocked dense engine over planar vectors, scheduled on
   {!Sched}.

   GEMM decomposes C into [tile_m x tile_n] tiles over i/j ONLY --
   never over k -- and each tile task runs the ikj rank-1 update
   ([V.madd] of a B-row segment scaled by one A element) restricted to
   its j-range, folding p in index order.  That is exactly the
   accumulation order of the sequential ikj/madd kernel, so tiled
   results are bitwise identical to the sequential batched kernel at
   any tile size and any worker count.  (A dot-product micro-kernel
   over packed B^T panels was tried first: it loses ~40% to the madd
   form because the dot accumulator is a serial dependency chain,
   while madd's per-element updates are independent and pipeline.)
   The tile bounds the working set: a k x tile_n panel of B plus a
   tile_m x tile_n piece of C stay cache-resident while A streams.

   DOT and SUMSQ use the scheduler's fixed-shape reduction tree; their
   grouping differs from a plain sequential fold (floating-point
   addition is not associative) but depends only on the length and the
   grain, so it too is reproducible across worker counts.

   Per-tile extended-precision operation counts are credited to the
   executing worker via [Sched.add_flops] (one "flop" = one fused
   multiply-accumulate in the working precision). *)

module type ELT = sig
  type t

  val zero : t
  val add : t -> t -> t
end

module type VEC = sig
  type elt
  type t

  val length : t -> int
  val create : int -> t
  val get : t -> int -> elt
  val set : t -> int -> elt -> unit
  val axpy : lo:int -> hi:int -> alpha:elt -> x:t -> y:t -> unit
  val madd : alpha:elt -> x:t -> xoff:int -> y:t -> yoff:int -> len:int -> unit
  val dot : init:elt -> x:t -> xoff:int -> y:t -> yoff:int -> len:int -> elt
  val dot_sub : b:elt -> x:t -> xoff:int -> y:t -> yoff:int -> len:int -> elt
  val axpy_dot : lo:int -> hi:int -> alpha:elt -> x:t -> y:t -> w:t -> init:elt -> elt
end

type cfg = { tile_m : int; tile_n : int; grain : int }

let default_cfg = { tile_m = 32; tile_n = 32; grain = 1024 }

module Make (E : ELT) (V : VEC with type elt = E.t) = struct
  let check_len name v n = if V.length v <> n then invalid_arg name

  let dot rt ?(cfg = default_cfg) x y =
    let n = V.length x in
    check_len "Engine.dot" y n;
    Sched.parallel_reduce rt ~grain:(max 1 cfg.grain) ~lo:0 ~hi:n
      ~leaf:(fun lo hi ->
        Sched.add_flops rt (hi - lo);
        V.dot ~init:E.zero ~x ~xoff:lo ~y ~yoff:lo ~len:(hi - lo))
      E.add

  let sumsq rt ?(cfg = default_cfg) x =
    let n = V.length x in
    Sched.parallel_reduce rt ~grain:(max 1 cfg.grain) ~lo:0 ~hi:n
      ~leaf:(fun lo hi ->
        Sched.add_flops rt (hi - lo);
        V.dot ~init:E.zero ~x ~xoff:lo ~y:x ~yoff:lo ~len:(hi - lo))
      E.add

  let axpy rt ?(cfg = default_cfg) ~alpha ~x ~y () =
    let n = V.length x in
    check_len "Engine.axpy" y n;
    Sched.parallel_for rt ~grain:(max 1 cfg.grain) ~lo:0 ~hi:n (fun lo hi ->
        Sched.add_flops rt (hi - lo);
        V.axpy ~lo ~hi ~alpha ~x ~y)

  (* Fused axpy + dot: each leaf updates its disjoint y range in place
     and folds the freshly-updated y against w, so one pass over the
     planes replaces two.  The reduction tree is the same fixed shape
     as [dot]'s, hence bitwise equal to [axpy] followed by [dot y w] at
     any worker count. *)
  let axpy_dot rt ?(cfg = default_cfg) ~alpha ~x ~y ~w () =
    let n = V.length x in
    check_len "Engine.axpy_dot: y" y n;
    check_len "Engine.axpy_dot: w" w n;
    Sched.parallel_reduce rt ~grain:(max 1 cfg.grain) ~lo:0 ~hi:n
      ~leaf:(fun lo hi ->
        Sched.add_flops rt (2 * (hi - lo));
        V.axpy_dot ~lo ~hi ~alpha ~x ~y ~w ~init:E.zero)
      E.add

  (* r <- b - A x, row-partitioned like [gemv]; each row is one fused
     [dot_sub] pass, so results are bitwise equal to gemv-then-subtract
     at any worker count. *)
  let gemv_residual rt ?(cfg = default_cfg) ~m ~n ~a ~x ~b ~r () =
    check_len "Engine.gemv_residual: a" a (m * n);
    check_len "Engine.gemv_residual: x" x n;
    check_len "Engine.gemv_residual: b" b m;
    check_len "Engine.gemv_residual: r" r m;
    let grain = max 1 (cfg.grain / max 1 n) in
    Sched.parallel_for rt ~grain ~lo:0 ~hi:m (fun lo hi ->
        Sched.add_flops rt ((hi - lo) * (n + 1));
        for i = lo to hi - 1 do
          V.set r i (V.dot_sub ~b:(V.get b i) ~x:a ~xoff:(i * n) ~y:x ~yoff:0 ~len:n)
        done)

  let gemv rt ?(cfg = default_cfg) ~m ~n ~a ~x ~y () =
    check_len "Engine.gemv: a" a (m * n);
    check_len "Engine.gemv: x" x n;
    check_len "Engine.gemv: y" y m;
    (* rows per task so each leaf holds ~[grain] multiply-accumulates *)
    let grain = max 1 (cfg.grain / max 1 n) in
    Sched.parallel_for rt ~grain ~lo:0 ~hi:m (fun lo hi ->
        Sched.add_flops rt ((hi - lo) * n);
        for i = lo to hi - 1 do
          V.set y i (V.dot ~init:E.zero ~x:a ~xoff:(i * n) ~y:x ~yoff:0 ~len:n)
        done)

  (* C <- C + A B with A m*k, B k*n, C m*n (all row-major planar). *)
  let gemm rt ?(cfg = default_cfg) ~m ~n ~k ~a ~b ~c () =
    check_len "Engine.gemm: a" a (m * k);
    check_len "Engine.gemm: b" b (k * n);
    check_len "Engine.gemm: c" c (m * n);
    if m = 0 || n = 0 || k = 0 then ()
    else begin
      let tm = max 1 cfg.tile_m and tn = max 1 cfg.tile_n in
      let nti = (m + tm - 1) / tm and ntj = (n + tn - 1) / tn in
      (* the 2-D tile grid, flattened: each tile is one stealable task *)
      Sched.parallel_for rt ~grain:1 ~lo:0 ~hi:(nti * ntj) (fun lo hi ->
          for tile = lo to hi - 1 do
            let ti = tile / ntj and tj = tile mod ntj in
            let i0 = ti * tm and j0 = tj * tn in
            let i1 = min m (i0 + tm) and j1 = min n (j0 + tn) in
            let fl = (i1 - i0) * (j1 - j0) * k in
            let tr = Obs.Trace.enabled () in
            if tr then Obs.Trace.begin_span Obs.Trace.Kernel "gemm.tile";
            Sched.add_flops rt fl;
            let len = j1 - j0 in
            for i = i0 to i1 - 1 do
              let arow = i * k and crow = (i * n) + j0 in
              for p = 0 to k - 1 do
                V.madd ~alpha:(V.get a (arow + p)) ~x:b ~xoff:((p * n) + j0) ~y:c ~yoff:crow ~len
              done
            done;
            if tr then Obs.Trace.end_span_f ~arg_name:"flops" ~arg:(float_of_int fl)
          done)
    end
end
