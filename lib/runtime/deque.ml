(* A Chase-Lev-style work-stealing deque over OCaml 5 atomics.

   The owner pushes and pops at the bottom (LIFO, so the hot end stays
   cache-resident and fork/join unwinds in stack order); thieves CAS
   the top (FIFO, so they take the oldest -- and for divide-and-conquer
   task trees the largest -- pending task).

   Deviations from the textbook algorithm, both on the simple side:

   - The circular buffer has a fixed capacity instead of growing.  A
     full deque makes [push] return [false] and the scheduler runs the
     task inline -- for fork/join trees the pending-task count per
     worker is bounded by the tree depth, so the capacity is never the
     limit in practice, and the inline fallback keeps the semantics
     (execute exactly once) regardless.
   - [top] and [bottom] are both [Atomic.t].  OCaml's memory model
     gives atomic writes release semantics and atomic reads acquire
     semantics, so the buffer store in [push] (before the [bottom]
     store) is visible to a thief that reads the new [bottom] before
     loading the slot.  The capacity bound rules out ABA on slot
     reuse: a slot is only overwritten after [top] has advanced past
     it, which makes any thief still holding the old [top] fail its
     CAS. *)

type 'a t = {
  top : int Atomic.t;  (* next index to steal; only ever incremented *)
  bottom : int Atomic.t;  (* next index to push; owned by the worker *)
  buf : 'a option array;  (* circular, capacity a power of two *)
  mask : int;
}

let create ?(capacity = 8192) () =
  let cap =
    let c = ref 1 in
    while !c < capacity do
      c := !c * 2
    done;
    !c
  in
  { top = Atomic.make 0; bottom = Atomic.make 0; buf = Array.make cap None; mask = cap - 1 }

let is_empty d = Atomic.get d.top >= Atomic.get d.bottom

let push d x =
  let b = Atomic.get d.bottom in
  let t = Atomic.get d.top in
  if b - t > d.mask then false
  else begin
    d.buf.(b land d.mask) <- Some x;
    Atomic.set d.bottom (b + 1);
    true
  end

let pop d =
  let b = Atomic.get d.bottom - 1 in
  Atomic.set d.bottom b;
  let t = Atomic.get d.top in
  if b < t then begin
    (* empty; restore *)
    Atomic.set d.bottom t;
    None
  end
  else if b > t then begin
    let x = d.buf.(b land d.mask) in
    d.buf.(b land d.mask) <- None;
    x
  end
  else begin
    (* last element: compete with thieves for it via the top CAS *)
    let won = Atomic.compare_and_set d.top t (t + 1) in
    Atomic.set d.bottom (t + 1);
    if won then begin
      let x = d.buf.(b land d.mask) in
      d.buf.(b land d.mask) <- None;
      x
    end
    else None
  end

let steal d =
  let t = Atomic.get d.top in
  let b = Atomic.get d.bottom in
  if t >= b then None
  else
    match d.buf.(t land d.mask) with
    | None -> None (* the owner claimed it between our two loads *)
    | Some _ as x -> if Atomic.compare_and_set d.top t (t + 1) then x else None
