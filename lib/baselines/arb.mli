(** Ball (midpoint-radius interval) arithmetic over {!Bigfloat} — the
    architectural stand-in for FLINT/Arb, one of the libraries the
    paper benchmarks (its reference [27] is Arb's midpoint-radius
    interval arithmetic).

    A ball [m ± r] encloses every real it claims to represent: each
    operation computes the midpoint with round-to-nearest and pushes
    all rounding and propagation error into the radius using the
    directed-rounding modes, so enclosure is an invariant, not a
    heuristic.  The radius is tracked at low precision (30 bits),
    rounded upward. *)

type t = {
  mid : Bigfloat.t;
  rad : Bigfloat.t;  (** nonnegative; 30-bit, rounded upward *)
}

val of_float : prec:int -> float -> t
(** Exact ball (radius 0). *)

val of_string : prec:int -> string -> t
(** Ball enclosing the decimal (radius one ulp of the parse). *)

val of_expansion : prec:int -> float array -> t
(** Ball enclosing the exact sum of the expansion's components (the
    value an FPAN element denotes).  The radius is one ulp of the
    midpoint — an enclosure whether or not [prec] sufficed for the
    conversion to be exact — and collapses to 0 for the all-zero
    expansion. *)

val make : mid:Bigfloat.t -> rad:Bigfloat.t -> t
val mid : t -> Bigfloat.t
val rad : t -> Bigfloat.t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
(** Diverges to an infinite radius if the divisor ball contains 0. *)

val sqrt : t -> t
val neg : t -> t

(** Vectorized ball evaluation — the enclosure twins of the planar
    wire-program chains the serve layer batches ([sum], [mul;sum] =
    dot, [axpy;dot]).  Fold order does not matter for enclosure, so
    these certify the planar kernels' results regardless of how the
    FPAN staged the gates. *)
module Vec : sig
  val sum : prec:int -> t array -> t
  val dot : prec:int -> t array -> t array -> t
  val axpy : alpha:t -> x:t array -> y:t array -> t array
  val axpy_dot :
    prec:int -> alpha:t -> x:t array -> y:t array -> z:t array -> t * t array
  (** Returns [(dot (alpha*x + y) z, alpha*x + y)]. *)
end

val contains_float : t -> float -> bool
val contains : t -> Bigfloat.t -> bool
val radius_le : t -> float -> bool

val to_string : ?digits:int -> t -> string
(** Rendered as [mid +/- rad]. *)
