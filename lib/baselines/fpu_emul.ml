module type S = sig
  type t

  val prec : int
  val zero : t
  val one : t
  val of_float : float -> t
  val to_float : t -> float
  val of_expansion : float array -> t
  val to_expansion : n:int -> t -> float array
  val add : t -> t -> t
  val sub : t -> t -> t
  val mul : t -> t -> t
  val div : t -> t -> t
  val sqrt : t -> t
  val neg : t -> t
  val compare : t -> t -> int
end

module Make (P : sig
  val prec : int
end) : S = struct
  type t = Bigfloat.t

  let prec = P.prec
  let zero = Bigfloat.make_zero ~prec
  let one = Bigfloat.of_int ~prec 1
  let of_float = Bigfloat.of_float ~prec
  let to_float = Bigfloat.to_float
  let of_expansion = Bigfloat.of_expansion ~prec
  let to_expansion = Bigfloat.to_expansion
  let add = Bigfloat.add
  let sub = Bigfloat.sub
  let mul = Bigfloat.mul
  let div = Bigfloat.div
  let sqrt = Bigfloat.sqrt
  let neg = Bigfloat.neg
  let compare = Bigfloat.compare
end

module P53 = Make (struct
  let prec = 53
end)

module P103 = Make (struct
  let prec = 103
end)

module P156 = Make (struct
  let prec = 156
end)

module P208 = Make (struct
  let prec = 208
end)
