(** Fixed-precision wrappers over {!Bigfloat}, standing in for the
    MPFR / GMP / FLINT / Boost.Multiprecision usage in the paper's
    benchmarks: each of those libraries is driven at a statically
    chosen precision (53, 103, 156, or 208 bits) matching the FPAN
    error bounds, exactly as Section 5 describes. *)

module type S = sig
  type t

  val prec : int
  val zero : t
  val one : t
  val of_float : float -> t
  val to_float : t -> float

  val of_expansion : float array -> t
  (** Round the exact sum of the components to [prec] bits — what an
      MPFR-class library holds after ingesting a MultiFloat value. *)

  val to_expansion : n:int -> t -> float array
  (** First [n] terms of the nonoverlapping expansion of the value, for
      full-precision accuracy audits (leading term first). *)

  val add : t -> t -> t
  val sub : t -> t -> t
  val mul : t -> t -> t
  val div : t -> t -> t
  val sqrt : t -> t
  val neg : t -> t
  val compare : t -> t -> int
end

module Make (_ : sig
  val prec : int
end) : S

module P53 : S
module P103 : S
module P156 : S
module P208 : S
