(* Midpoint-radius ball arithmetic after Arb.  Radius operations round
   upward at 30 bits so the enclosure invariant survives every step. *)

type t = {
  mid : Bigfloat.t;
  rad : Bigfloat.t;
}

let rad_prec = 30

let up = Bigfloat.Upward

let r_add a b = Bigfloat.add_mode up (Bigfloat.round_to ~prec:rad_prec a) b
let r_mul a b = Bigfloat.mul_mode up (Bigfloat.round_to ~prec:rad_prec a) b

let zero_rad ~prec = Bigfloat.make_zero ~prec |> Bigfloat.round_to ~prec:rad_prec

let make ~mid ~rad = { mid; rad }
let mid b = b.mid
let rad b = b.rad

let of_float ~prec f = { mid = Bigfloat.of_float ~prec f; rad = zero_rad ~prec }

let of_string ~prec s =
  let m = Bigfloat.of_string ~prec s in
  { mid = m; rad = Bigfloat.round_to ~prec:rad_prec (Bigfloat.ulp_bound m) }

(* One ulp of the freshly rounded midpoint, as an upward 30-bit value. *)
let mid_err m = Bigfloat.round_to ~prec:rad_prec (Bigfloat.ulp_bound m)

let add a b =
  let m = Bigfloat.add a.mid b.mid in
  { mid = m; rad = r_add (r_add a.rad b.rad) (mid_err m) }

let neg a = { a with mid = Bigfloat.neg a.mid }
let sub a b = add a (neg b)

let abs_mid a = Bigfloat.abs a.mid

let mul a b =
  let m = Bigfloat.mul a.mid b.mid in
  (* |a||rb| + |b||ra| + ra rb + ulp(m) *)
  let t1 = r_mul (abs_mid a) b.rad in
  let t2 = r_mul (abs_mid b) a.rad in
  let t3 = r_mul a.rad b.rad in
  { mid = m; rad = r_add (r_add (r_add t1 t2) t3) (mid_err m) }

let contains_zero b = Bigfloat.compare (abs_mid b) (Bigfloat.round_to ~prec:(Bigfloat.prec b.mid) b.rad) <= 0

let div a b =
  if contains_zero b then
    { mid = Bigfloat.of_float ~prec:(Bigfloat.prec a.mid) Float.nan;
      rad = Bigfloat.of_float ~prec:rad_prec Float.infinity }
  else begin
    let m = Bigfloat.div a.mid b.mid in
    (* |a/b - m'| <= (|a| rb + |b| ra) / (|b| (|b| - rb)) + ulp(m) *)
    let num = r_add (r_mul (abs_mid a) b.rad) (r_mul (abs_mid b) a.rad) in
    let denom =
      Bigfloat.mul_mode Bigfloat.Downward (abs_mid b)
        (Bigfloat.sub_mode Bigfloat.Downward (abs_mid b) (Bigfloat.round_to ~prec:(Bigfloat.prec b.mid) b.rad))
    in
    let prop = Bigfloat.div_mode up (Bigfloat.round_to ~prec:rad_prec num) denom in
    { mid = m; rad = r_add (Bigfloat.round_to ~prec:rad_prec prop) (mid_err m) }
  end

let sqrt a =
  let m = Bigfloat.sqrt a.mid in
  if Bigfloat.is_nan m then { mid = m; rad = Bigfloat.of_float ~prec:rad_prec Float.infinity }
  else if Bigfloat.is_zero m then
    (* sqrt near zero: enclose by sqrt of the radius *)
    { mid = m; rad = Bigfloat.round_to ~prec:rad_prec (Bigfloat.sqrt (Bigfloat.round_to ~prec:rad_prec a.rad)) }
  else begin
    (* |sqrt x - sqrt m| <= r / (2 sqrt(m) - ...) ~ r / sqrt m, rounded up *)
    let prop = Bigfloat.div_mode up (Bigfloat.round_to ~prec:rad_prec a.rad) m in
    { mid = m; rad = r_add (Bigfloat.round_to ~prec:rad_prec prop) (mid_err m) }
  end

let of_expansion ~prec comps =
  let m = Bigfloat.of_expansion ~prec comps in
  if Bigfloat.is_zero m && Array.for_all (fun c -> c = 0.0) comps then
    { mid = m; rad = zero_rad ~prec }
  else { mid = m; rad = mid_err m }

(* Vectorized ball evaluation: the enclosure twins of the fused planar
   wire-program chains the serve layer runs (sum, mul;sum = dot,
   axpy;dot).  Each is a plain fold over ball ops — the fold order is
   irrelevant to the enclosure invariant, so these certify the planar
   kernels' results no matter how the FPAN staged the gates. *)
module Vec = struct
  let ball_zero ~prec = { mid = Bigfloat.make_zero ~prec; rad = zero_rad ~prec }

  let sum ~prec (x : t array) =
    Array.fold_left add (ball_zero ~prec) x

  let dot ~prec (x : t array) (y : t array) =
    let acc = ref (ball_zero ~prec) in
    for i = 0 to Array.length x - 1 do
      acc := add !acc (mul x.(i) y.(i))
    done;
    !acc

  let axpy ~alpha ~(x : t array) ~(y : t array) =
    Array.init (Array.length x) (fun i -> add (mul alpha x.(i)) y.(i))

  let axpy_dot ~prec ~alpha ~(x : t array) ~(y : t array) ~(z : t array) =
    let ynew = axpy ~alpha ~x ~y in
    (dot ~prec ynew z, ynew)
end

let contains b x =
  let d = Bigfloat.abs (Bigfloat.sub (Bigfloat.round_to ~prec:(Bigfloat.prec b.mid + 30) b.mid) x) in
  Bigfloat.compare d (Bigfloat.round_to ~prec:(Bigfloat.prec b.mid + 30) b.rad) <= 0

let contains_float b x = contains b (Bigfloat.of_float ~prec:(Bigfloat.prec b.mid) x)

let radius_le b x = Bigfloat.to_float b.rad <= x

let to_string ?digits b =
  Printf.sprintf "%s +/- %s" (Bigfloat.to_string ?digits b.mid) (Bigfloat.to_string ~digits:3 b.rad)
