(* Reduced-width binary floating-point formats, emulated on doubles by
   rounding through the grid — the generalization of the f16/f32
   round-through trick to arbitrary mantissa widths.  The exhaustive
   verification backend (lib/verify) bit-blasts FPANs over these
   formats: a format small enough that its entire finite value set (or
   the operand space of a whole network) can be enumerated.

   Soundness of the emulation rests on two facts, both used by the
   verifier and both assumed throughout:

   - division/multiplication by a power of two is exact in binary64, so
     [mag /. grid] loses nothing, and

   - adding [0x1p52] to a nonnegative double below [2^52] rounds it to
     the nearest integer under round-to-nearest-even (the default
     mode), so one double operation implements the format's RNE.

   Both require [p <= 26] (so the scaled mantissa and the doubled
   footprint of products stay far below 2^52); [fmt] enforces it. *)

type fmt = { p : int; emin : int; emax : int }

let fmt ~p ~emin ~emax =
  if p < 2 || p > 26 then invalid_arg (Printf.sprintf "Minifloat.fmt: p = %d out of [2, 26]" p);
  if emin > emax then invalid_arg "Minifloat.fmt: emin > emax";
  { p; emin; emax }

(* Largest finite value: (2 - 2^(1-p)) * 2^emax. *)
let max_value f = Float.ldexp (2.0 -. Float.ldexp 1.0 (1 - f.p)) f.emax

(* Smallest positive subnormal: one step of the subnormal grid. *)
let min_subnormal f = Float.ldexp 1.0 (f.emin - f.p + 1)

(* Halfway between max_value and the first non-representable step
   2^(emax+1): magnitudes at or above it round to infinity. *)
let overflow_threshold f = Float.ldexp (2.0 -. Float.ldexp 1.0 (-f.p)) f.emax

(* Round-to-nearest-even of a nonnegative double below 2^52. *)
let rne_int q = q +. 0x1p52 -. 0x1p52

let round f x =
  if Float.is_nan x then Float.nan
  else if x = 0.0 then x (* preserve the sign of zero *)
  else begin
    let mag = Float.abs x in
    let s = if x < 0.0 then -1.0 else 1.0 in
    if mag >= overflow_threshold f then s *. Float.infinity
    else begin
      let e = Eft.exponent mag in
      let grid_exp = if e < f.emin then f.emin - f.p + 1 else e - f.p + 1 in
      let grid = Float.ldexp 1.0 grid_exp in
      let v = s *. (rne_int (mag /. grid) *. grid) in
      if Float.abs v > max_value f then s *. Float.infinity else v
    end
  end

(* Precision-only rounding: p significant bits, unbounded exponent
   range.  This is the rounding the per-network sweeps use — it makes
   the format scale-equivariant (rnd_p (2^k * x) = 2^k * rnd_p x), which
   is what justifies anchoring one operand's leading exponent at 0. *)
let round_p p x =
  if x = 0.0 || not (Float.is_finite x) then x
  else begin
    let m, e = Float.frexp x in
    (* |m| in [0.5, 1), so |q| in [2^(p-1), 2^p) *)
    let q = Float.ldexp m p in
    let r = if q >= 0.0 then rne_int q else -.rne_int (-.q) in
    Float.ldexp r (e - p)
  end

let is_representable f x = Float.is_finite x && Int64.bits_of_float (round f x) = Int64.bits_of_float x

let is_representable_p p x =
  Float.is_finite x && Int64.bits_of_float (round_p p x) = Int64.bits_of_float x

(* Every finite value of the format, deterministically ordered: the two
   zeros, then for each sign the subnormals (ascending mantissa) and the
   normals (ascending exponent, ascending mantissa).
     count = 2 * (1 + (2^(p-1) - 1) + (emax - emin + 1) * 2^(p-1))  *)
let all_finite f =
  let half = 1 lsl (f.p - 1) in
  let out = ref [] in
  let push v = out := v :: !out in
  push 0.0;
  push (-0.0);
  List.iter
    (fun s ->
      (* subnormals: m * 2^(emin - p + 1), 1 <= m < 2^(p-1) *)
      for m = 1 to half - 1 do
        push (s *. Float.ldexp (Float.of_int m) (f.emin - f.p + 1))
      done;
      (* normals: m * 2^(e - p + 1), 2^(p-1) <= m < 2^p *)
      for e = f.emin to f.emax do
        for m = half to (2 * half) - 1 do
          push (s *. Float.ldexp (Float.of_int m) (e - f.p + 1))
        done
      done)
    [ 1.0; -1.0 ];
  Array.of_list (List.rev !out)

(* Width-p ulp and the nonoverlap predicate at precision p — the same
   definitions as Eft.ulp / Eft.is_nonoverlapping specialized from
   p = 53 to the reduced width.  Nonoverlap at width p: |b| <= half an
   ulp_p of a, i.e. |b| <= 2^(exponent a - p). *)
let ulp_p p x = if x = 0.0 then 0.0 else Float.ldexp 1.0 (Eft.exponent x - p + 1)

let is_nonoverlapping_p p a b =
  if b = 0.0 then true
  else if a = 0.0 then false
  else Float.abs b <= Float.ldexp 1.0 (Eft.exponent a - p)

let is_nonoverlapping_seq_p p xs =
  let n = Array.length xs in
  let rec check i = i >= n - 1 || (is_nonoverlapping_p p xs.(i) xs.(i + 1) && check (i + 1)) in
  check 0
