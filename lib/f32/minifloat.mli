(** Reduced-width binary floating-point formats emulated on doubles —
    the generalization of the f16/f32 round-through trick to arbitrary
    mantissa widths [2 <= p <= 26].

    The exhaustive verification backend ({!module:Verify} in
    [lib/verify]) uses these formats to bit-blast FPANs: at width 8 the
    whole finite value set is a few thousand values, so per-gate
    obligations can be checked over every operand pair, and whole
    networks over every valid small-width expansion tuple.

    Soundness caveat (documented in DESIGN.md s12): a double
    computation followed by [round] equals the format's own rounding
    only when the double step was {e exact} — which the verifier
    guarantees by bounding every sweep's bit footprint below 53. *)

type fmt = { p : int; emin : int; emax : int }
(** A format: [p] mantissa bits (including the implicit bit), normal
    exponent range [emin <= exponent <= emax] in the {!Eft.exponent}
    convention (a normal value lies in [2^e, 2^(e+1))).  Subnormals
    live on the fixed grid [2^(emin - p + 1)]. *)

val fmt : p:int -> emin:int -> emax:int -> fmt
(** Validated constructor: [2 <= p <= 26], [emin <= emax]. *)

val max_value : fmt -> float
(** Largest finite value, [(2 - 2^(1-p)) * 2^emax]. *)

val min_subnormal : fmt -> float
(** Smallest positive value, [2^(emin - p + 1)]. *)

val overflow_threshold : fmt -> float
(** Magnitudes at or above this round to infinity (halfway between
    {!max_value} and the first non-representable binade step). *)

val round : fmt -> float -> float
(** Round a double to the format: round-to-nearest-even at the normal
    or subnormal grid, overflow to signed infinity, NaN and signed
    zeros passed through.  Idempotent. *)

val round_p : int -> float -> float
(** Precision-only rounding: [p] significant bits, unbounded exponent.
    Scale-equivariant ([round_p p (2^k * x) = 2^k * round_p p x]) and
    odd ([round_p p (-x) = -(round_p p x)]) — the symmetries the
    network sweeps quotient by.  Non-finite inputs pass through. *)

val is_representable : fmt -> float -> bool
(** Finite and a fixed point of [round fmt] (bitwise). *)

val is_representable_p : int -> float -> bool
(** Finite and a fixed point of [round_p p] (bitwise). *)

val all_finite : fmt -> float array
(** Every finite value of the format exactly once, in a deterministic
    order (both zeros, then per sign: subnormals, then normals).
    Length [2 * (2^(p-1) + (emax - emin + 1) * 2^(p-1))]. *)

val ulp_p : int -> float -> float
(** Unit in the last place at precision [p]: [2^(exponent x - p + 1)]
    ([0] at [0]). *)

val is_nonoverlapping_p : int -> float -> float -> bool
(** The width-[p] nonoverlap ordering: [|b| <= 2^(exponent a - p)]
    (half a width-[p] ulp of [a]); [b = 0] always passes, [a = 0] only
    with [b = 0].  Coincides with {!Eft.is_nonoverlapping} at p = 53. *)

val is_nonoverlapping_seq_p : int -> float array -> bool
(** Adjacent-pair nonoverlap of a whole expansion at width [p]. *)
