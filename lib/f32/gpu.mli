(** [MultiFloat<float, N>] over the emulated binary32 base — the
    datatypes of the paper's GPU experiment (Figure 11): extended
    precision built on single-precision hardware. *)

(** The surface of one emulated-binary32 MultiFloat size (the result
    signature of {!Multifloat.Generic.Make}, pinned here so the GPU
    instances stop leaking their construction). *)
module type GPU_MF = sig
  type t

  val terms : int
  val precision_bits : int
  val zero : t
  val one : t
  val of_float : float -> t
  val to_float : t -> float
  val components : t -> float array
  val of_components : float array -> t
  val add : t -> t -> t
  val sub : t -> t -> t
  val mul : t -> t -> t
  val div : t -> t -> t
  val sqrt : t -> t
  val neg : t -> t
  val abs : t -> t
  val compare : t -> t -> int
  val equal : t -> t -> bool
end

module Mf1 : GPU_MF
module Mf2 : GPU_MF
module Mf3 : GPU_MF
module Mf4 : GPU_MF
