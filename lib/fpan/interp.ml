type audit = {
  outputs : float array;
  discarded : float list;
  precondition_violations : int;
}

let bind net inputs =
  let open Network in
  assert (Array.length inputs = Array.length net.inputs);
  let v = Array.make net.num_wires 0.0 in
  Array.iteri (fun i w -> v.(w) <- inputs.(i)) net.inputs;
  v

let run net inputs =
  let open Network in
  let v = bind net inputs in
  Array.iter
    (fun g ->
      let x = v.(g.top) and y = v.(g.bot) in
      match g.kind with
      | Add ->
          v.(g.top) <- x +. y;
          v.(g.bot) <- 0.0
      | Two_sum ->
          let s, e = Eft.two_sum x y in
          v.(g.top) <- s;
          v.(g.bot) <- e
      | Fast_two_sum ->
          let s, e = Eft.fast_two_sum x y in
          v.(g.top) <- s;
          v.(g.bot) <- e)
    net.gates;
  Array.map (fun w -> v.(w)) net.outputs

let fast_precondition_holds x y = x = 0.0 || y = 0.0 || Eft.exponent x >= Eft.exponent y

let run_audited net inputs =
  let open Network in
  let v = bind net inputs in
  let discarded = ref [] in
  let violations = ref 0 in
  Array.iter
    (fun g ->
      let x = v.(g.top) and y = v.(g.bot) in
      match g.kind with
      | Add ->
          let s, e = Eft.two_sum x y in
          if e <> 0.0 then discarded := e :: !discarded;
          v.(g.top) <- s;
          v.(g.bot) <- 0.0
      | Two_sum ->
          let s, e = Eft.two_sum x y in
          v.(g.top) <- s;
          v.(g.bot) <- e
      | Fast_two_sum ->
          let s, e = Eft.fast_two_sum x y in
          (* A FastTwoSum whose precondition fails is only a bug when it
             actually loses information: flag it when the computed error
             term differs from the true rounding error. *)
          if not (fast_precondition_holds x y) then begin
            let s', e' = Eft.two_sum x y in
            if s <> s' || e <> e' then incr violations
          end;
          v.(g.top) <- s;
          v.(g.bot) <- e)
    net.gates;
  {
    outputs = Array.map (fun w -> v.(w)) net.outputs;
    discarded = List.rev !discarded;
    precondition_violations = !violations;
  }

(* Reduced-precision gate semantics: the same wire discipline as [run],
   but every primitive floating-point operation — including each of the
   six ops inside TwoSum and the three inside FastTwoSum — is rounded
   through [round].  With [round] a reduced-width rounding
   (Gpu32.Minifloat), this is the network as a width-w machine would
   execute it; the verification backend checks its circuit lowering
   against this interpreter bitwise.

   Soundness caveat: [round (x +. y)] equals the width-w rounded sum
   only when [x +. y] is exact in double — true whenever the sweep's
   bit footprint stays below 53 bits, which lib/verify enforces. *)
let run_rounded ~round net inputs =
  let open Network in
  let v = bind net inputs in
  Array.iter
    (fun g ->
      let x = v.(g.top) and y = v.(g.bot) in
      match g.kind with
      | Add ->
          v.(g.top) <- round (x +. y);
          v.(g.bot) <- 0.0
      | Two_sum ->
          let s = round (x +. y) in
          let x_eff = round (s -. y) in
          let y_eff = round (s -. x_eff) in
          let dx = round (x -. x_eff) in
          let dy = round (y -. y_eff) in
          v.(g.top) <- s;
          v.(g.bot) <- round (dx +. dy)
      | Fast_two_sum ->
          let s = round (x +. y) in
          let y_eff = round (s -. x) in
          v.(g.top) <- s;
          v.(g.bot) <- round (y -. y_eff))
    net.gates;
  Array.map (fun w -> v.(w)) net.outputs

let machine_flops net ~inputs =
  ignore inputs;
  Network.flops net
