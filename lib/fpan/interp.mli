(** Executing FPANs on concrete floating-point inputs. *)

type audit = {
  outputs : float array;  (** values on the output wires, z0 first *)
  discarded : float list;
      (** exact rounding errors thrown away by [Add] gates *)
  precondition_violations : int;
      (** number of [Fast_two_sum] gates that were actually inexact on
          this input, i.e. whose exponent precondition failed {e and}
          whose result differs from {!Eft.two_sum} *)
}

val run : Network.t -> float array -> float array
(** [run net inputs] evaluates the network exactly as hardware would:
    no bookkeeping, straight-line floating-point code.  [inputs] are
    bound to [net.inputs] in order; the result reads [net.outputs]. *)

val run_audited : Network.t -> float array -> audit
(** Like {!run} but also records every discarded error term exactly and
    checks each FastTwoSum precondition.  Used by the checker; the
    outputs are bit-identical to {!run}. *)

val run_rounded : round:(float -> float) -> Network.t -> float array -> float array
(** Like {!run}, but every primitive floating-point operation — each of
    the six ops inside a TwoSum gate, the three inside a FastTwoSum,
    the one of an Add — is rounded through [round].  With a
    reduced-width rounding this executes the network as a width-w
    machine would; [run_rounded ~round:Fun.id] is bitwise {!run}.
    Sound as a width-w reference only while each double step is exact
    (the verification sweeps bound their bit footprint below 53). *)

val machine_flops : Network.t -> inputs:float array -> int
(** Flops actually executed (same as [Network.flops]; provided for
    instrumentation symmetry). *)
