(** Named chaos scenarios: seeded, deterministic fault campaigns.

    A scenario injects through two channels.  {e Seam rules} are
    {!Injector} plans armed inside serve processes (shard children
    inherit them through fork; parent rules arm the distributor after
    forking) — their firing counts depend on how often the seams run,
    so they are configuration, not reported counts.  {e Wire actions}
    are client-driven and scheduled per request index by
    [(k + phase) mod period = 0] with a seed-derived phase, so the
    injection count for a given [(seed, n)] is a pure function of the
    plan — the property that makes [CHAOS_report.json]
    byte-reproducible under a fixed seed. *)

type action =
  | Clean
  | Corrupt_header
  | Truncate_close
  | Abort_close
  | Stall_mid_us of int
  | Kill_shard

val action_name : action -> string

type kind =
  | Fleet  (** runs against a real forked shard fleet *)
  | Admission  (** in-process deterministic admission-overload scenario *)

type scenario = {
  name : string;
  summary : string;
  kind : kind;
  classes : string list;
  seam_rules : (Fault.site * (Fault.t * int) list) list;
  parent_rules : (Fault.site * (Fault.t * int) list) list;
  wire : (action * int) list;
}

val matrix : scenario list
(** The full named scenario matrix, in campaign order. *)

val find : string -> scenario option

val actions : seed:int -> scenario -> n:int -> action array
(** The wire action for each of [n] request indices.  Deterministic in
    [(seed, scenario, n)]. *)

val injected_count : seed:int -> scenario -> n:int -> int option
(** Number of non-[Clean] wire actions ([None] for scenarios that
    inject only through seam rules, whose firing counts are
    timing-dependent). *)
