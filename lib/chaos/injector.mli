(** Process-global fault-injection hook for the serve stack's syscall
    seams.

    Disarmed (the default), every [*_fault] entry point is a single
    atomic-flag branch returning the constant {!Fault.Pass} — zero
    allocation on the hot path, mirroring [Obs.Trace]'s disabled mode;
    test_chaos asserts the exact zero minor-allocation delta.

    Armed via {!arm}, the n-th call at a site fires rule [r] iff
    [(n + r.phase) mod r.period = 0], with phases derived from the
    seed — a deterministic, count-based schedule independent of the
    clock.  Fault values inside rules are preallocated, so the armed
    fast path allocates nothing either.

    The armed state is plain process memory: forking a shard fleet
    after [arm] hands each child the armed plan, after which the
    parent can {!disarm} its own copy.  [arm] resets all site
    counters. *)

type rule = { fault : Fault.t; period : int; phase : int }

val enabled : unit -> bool
val arm : seed:int -> (Fault.site * (Fault.t * int) list) list -> unit
(** [(site, [(fault, period); ...])]: fire [fault] once per [period]
    calls at [site], at a seed-derived phase.  Earlier rules win when
    several match the same call.  Raises [Invalid_argument] on a
    period < 1. *)

val disarm : unit -> unit

val read_fault : unit -> Fault.t
val write_fault : unit -> Fault.t
val accept_fault : unit -> Fault.t
val wait_fault : unit -> Fault.t
val dispatch_fault : unit -> Fault.t
val fork_fault : unit -> Fault.t

val fired_counts : unit -> (string * int) list
(** Faults actually fired per site since the last {!arm}, for
    diagnostics (timing-dependent — never put these in a reproducible
    report). *)
