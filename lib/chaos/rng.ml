(* Deterministic hashing for every chaos decision.  Nothing in this
   subsystem may consult a stateful PRNG or the clock: a decision is a
   pure function of (seed, stream, index), so two runs with the same
   seed fire the same faults at the same points no matter how the
   surrounding processes interleave, and a re-run reproduces the
   campaign report byte for byte. *)

(* splitmix64 finalizer: the full avalanche of the output stage, used
   as a keyed bit mixer. *)
let mix (z : int64) : int64 =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94d049bb133111ebL in
  logxor z (shift_right_logical z 31)

let golden = 0x9e3779b97f4a7c15L

let hash ~seed ~salt ~n =
  let open Int64 in
  mix
    (add
       (mul (of_int seed) golden)
       (add (mul (of_int salt) 0xc2b2ae3d27d4eb4fL) (of_int n)))

(* Uniform in [0,1): top 53 bits of the hash as a mantissa. *)
let uniform ~seed ~salt ~n =
  let h = hash ~seed ~salt ~n in
  let bits = Int64.shift_right_logical h 11 in
  Int64.to_float bits *. 0x1p-53

(* Exponential backoff with deterministic jitter, keyed on the retry
   stream (e.g. a request id) so concurrent clients do not thunder in
   lockstep yet a re-run sleeps exactly the same schedule.  The jitter
   factor is in [0.5, 1.5); the doubling is capped so a long retry
   fight stays bounded. *)
let backoff_ms ~seed ~stream ~attempt ~base_ms =
  let exp = if attempt < 8 then attempt else 8 in
  let raw = base_ms *. float_of_int (1 lsl exp) in
  let j = uniform ~seed ~salt:(0x6a1 + stream) ~n:attempt in
  Float.min 500.0 (raw *. (0.5 +. j))
