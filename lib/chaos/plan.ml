(* The scenario layer: a named matrix of fault campaigns, each a
   seeded, deterministic schedule over two channels.

   Seam rules are Injector plans armed inside the serve processes (the
   fleet children inherit them through fork; parent rules arm the
   distributor process after forking).  Their firing counts depend on
   how often the seams run, so they are reported as configuration, not
   counts.

   Wire actions are client-driven: the campaign runner decides, per
   request index, whether to corrupt a frame header, truncate a frame,
   abort-close a connection, stall mid-frame, or SIGKILL a shard.
   Like seam rules, the k-th request fires an action iff
   (k + phase) mod period = 0 with a seed-derived phase — so the
   injection count for a given (seed, n) is a pure function of the
   plan, which is what lets CHAOS_report.json be byte-reproducible. *)

type action =
  | Clean
  | Corrupt_header  (* frame length field trashed; server must drop the conn *)
  | Truncate_close  (* half a frame, then close *)
  | Abort_close  (* full frame, then RST before reading the reply *)
  | Stall_mid_us of int  (* frame written in two halves with a stall between *)
  | Kill_shard  (* SIGKILL one fleet process *)

let action_name = function
  | Clean -> "clean"
  | Corrupt_header -> "frame_corrupt"
  | Truncate_close -> "frame_truncate"
  | Abort_close -> "conn_reset"
  | Stall_mid_us _ -> "stall"
  | Kill_shard -> "shard_kill"

type kind = Fleet | Admission

type scenario = {
  name : string;
  summary : string;
  kind : kind;
  classes : string list;  (* fault-class names, for the report *)
  seam_rules : (Fault.site * (Fault.t * int) list) list;  (* armed pre-fork, inherited by shards *)
  parent_rules : (Fault.site * (Fault.t * int) list) list;  (* armed in the distributor post-fork *)
  wire : (action * int) list;  (* client-driven (action, period) *)
}

let matrix =
  [ { name = "syscall-noise";
      summary = "EINTR/EAGAIN/ECONNRESET, short reads and writes, and \
                 spurious wakeups inside every shard's io loop";
      kind = Fleet;
      classes =
        [ "eintr"; "eagain"; "econnreset"; "short_read"; "short_write";
          "spurious_wake"; "stall" ];
      seam_rules =
        [ (Fault.Read,
           [ (Fault.Short_read 3, 5); (Fault.Eintr, 7); (Fault.Eagain, 11);
             (Fault.Stall_us 300, 13); (Fault.Econnreset, 41) ]);
          (Fault.Write,
           [ (Fault.Short_write 5, 5); (Fault.Eintr, 11);
             (Fault.Stall_us 200, 17) ]);
          (Fault.Wait, [ (Fault.Spurious_wake, 9) ]) ];
      parent_rules = [];
      wire = [] };
    { name = "accept-emfile";
      summary = "descriptor exhaustion at the distributor's accept loop";
      kind = Fleet;
      classes = [ "emfile" ];
      seam_rules = [];
      parent_rules = [ (Fault.Accept, [ (Fault.Emfile, 4) ]) ];
      wire = [] };
    { name = "dispatch-drop";
      summary = "shard hand-off failures at the distributor";
      kind = Fleet;
      classes = [ "drop_dispatch" ];
      seam_rules = [];
      parent_rules = [ (Fault.Dispatch, [ (Fault.Drop_dispatch, 4) ]) ];
      wire = [] };
    { name = "wire-corrupt";
      summary = "frames with trashed length headers";
      kind = Fleet;
      classes = [ "frame_corrupt" ];
      seam_rules = [];
      parent_rules = [];
      wire = [ (Corrupt_header, 6) ] };
    { name = "wire-truncate";
      summary = "half-written frames followed by close";
      kind = Fleet;
      classes = [ "frame_truncate" ];
      seam_rules = [];
      parent_rules = [];
      wire = [ (Truncate_close, 6) ] };
    { name = "conn-reset";
      summary = "connections abort-closed after sending a request, \
                 before reading the reply";
      kind = Fleet;
      classes = [ "conn_reset" ];
      seam_rules = [];
      parent_rules = [];
      wire = [ (Abort_close, 5) ] };
    { name = "latency-stall";
      summary = "slowloris: frames written in two halves with a stall \
                 between them";
      kind = Fleet;
      classes = [ "stall" ];
      seam_rules = [];
      parent_rules = [];
      wire = [ (Stall_mid_us 20000, 7) ] };
    { name = "shard-storm";
      summary = "periodic SIGKILL of live shard processes mid-traffic";
      kind = Fleet;
      classes = [ "shard_kill" ];
      seam_rules = [];
      parent_rules = [];
      wire = [ (Kill_shard, 16) ] };
    { name = "overload-shed";
      summary = "admission overload: low-q work displaced before \
                 high-q work, deterministically";
      kind = Admission;
      classes = [ "overload" ];
      seam_rules = [];
      parent_rules = [];
      wire = [] } ]

let find name = List.find_opt (fun s -> s.name = name) matrix

let scenario_salt s =
  (* stable small salt per scenario: its index in the matrix *)
  let rec go i = function
    | [] -> 0
    | x :: tl -> if x.name = s.name then i else go (i + 1) tl
  in
  go 0 matrix

(* Per-request wire actions.  The k-th request fires rule (a, period)
   iff (k + phase) mod period = 0, phase seeded per (scenario, rule):
   counts depend only on (seed, scenario, n) — never on timing. *)
let actions ~seed s ~n =
  let salt = scenario_salt s in
  let rules =
    List.mapi
      (fun i (a, period) ->
        let phase =
          Int64.to_int
            (Int64.rem
               (Int64.logand (Rng.hash ~seed ~salt:((salt * 131) + i) ~n:0)
                  Int64.max_int)
               (Int64.of_int period))
        in
        (a, period, phase))
      s.wire
  in
  Array.init n (fun k ->
      let rec scan = function
        | [] -> Clean
        | (a, period, phase) :: tl ->
            if (k + phase) mod period = 0 then a else scan tl
      in
      scan rules)

let injected_count ~seed s ~n =
  if s.wire = [] then None
  else
    Some
      (Array.fold_left
         (fun acc a -> if a = Clean then acc else acc + 1)
         0 (actions ~seed s ~n))
