(** The closed fault vocabulary and the injection seams.

    Every injectable failure is a named constructor here; every place
    the serve stack consults the injector is a named {!site}.  The
    payloads of [Short_read]/[Short_write] are byte caps; [Stall_us]
    is a bounded latency in microseconds. *)

type t =
  | Pass  (** no fault; the only value a disarmed hook ever returns *)
  | Eintr
  | Eagain
  | Econnreset
  | Emfile
  | Short_read of int
  | Short_write of int
  | Spurious_wake
  | Stall_us of int
  | Drop_dispatch
  | Abort_child

type site = Read | Write | Accept | Wait | Dispatch | Fork

val site_count : int
val site_index : site -> int
val site_name : site -> string
val name : t -> string
