(* The process-global injection hook the serve stack consults at its
   syscall seams.  Mirrors Obs.Trace's disabled-mode discipline: every
   entry point first reads one atomic flag, and the disarmed path is
   that single branch returning the constant [Fault.Pass] — no
   allocation, no table lookup (test/test_chaos.ml asserts an exact
   zero minor-allocation delta over the disarmed hooks).

   Armed, a site decision is count-based and deterministic: the n-th
   call at a site fires rule r iff (n + r.phase) mod r.period = 0,
   with the phase derived from the campaign seed at arm time.  The
   rules carry preallocated fault values, so even the armed fast path
   allocates nothing.

   The state is plain process memory on purpose: a shard fleet forked
   *after* [arm] inherits the armed plan (fork copies the whole
   image), which is how a campaign injects faults inside shard
   children while the parent immediately disarms its own copy. *)

type rule = { fault : Fault.t; period : int; phase : int }

let on = Atomic.make false
let site_rules : rule array array = Array.make Fault.site_count [||]
let counters : int Atomic.t array =
  Array.init Fault.site_count (fun _ -> Atomic.make 0)
let fired : int Atomic.t array =
  Array.init Fault.site_count (fun _ -> Atomic.make 0)

let enabled () = Atomic.get on

let arm ~seed plan =
  Array.fill site_rules 0 Fault.site_count [||];
  List.iter
    (fun (site, specs) ->
      let si = Fault.site_index site in
      site_rules.(si) <-
        Array.of_list
          (List.mapi
             (fun i (fault, period) ->
               if period < 1 then invalid_arg "Chaos.Injector.arm: period < 1";
               let phase =
                 Int64.to_int
                   (Int64.rem
                      (Int64.logand (Rng.hash ~seed ~salt:((si * 97) + i) ~n:0)
                         Int64.max_int)
                      (Int64.of_int period))
               in
               { fault; period; phase })
             specs))
    plan;
  Array.iter (fun c -> Atomic.set c 0) counters;
  Array.iter (fun c -> Atomic.set c 0) fired;
  Atomic.set on true

let disarm () = Atomic.set on false

let fire si =
  let n = Atomic.fetch_and_add counters.(si) 1 in
  let rules = site_rules.(si) in
  let k = Array.length rules in
  let rec scan i =
    if i >= k then Fault.Pass
    else
      let r = rules.(i) in
      if (n + r.phase) mod r.period = 0 then begin
        Atomic.incr fired.(si);
        r.fault
      end
      else scan (i + 1)
  in
  scan 0

let read_fault () = if not (Atomic.get on) then Fault.Pass else fire 0
let write_fault () = if not (Atomic.get on) then Fault.Pass else fire 1
let accept_fault () = if not (Atomic.get on) then Fault.Pass else fire 2
let wait_fault () = if not (Atomic.get on) then Fault.Pass else fire 3
let dispatch_fault () = if not (Atomic.get on) then Fault.Pass else fire 4
let fork_fault () = if not (Atomic.get on) then Fault.Pass else fire 5

let fired_counts () =
  List.init Fault.site_count (fun si ->
      ( Fault.site_name
          (match si with
          | 0 -> Fault.Read
          | 1 -> Fault.Write
          | 2 -> Fault.Accept
          | 3 -> Fault.Wait
          | 4 -> Fault.Dispatch
          | _ -> Fault.Fork),
        Atomic.get fired.(si) ))
