(** Pure deterministic hashing behind every chaos decision.

    No state, no clock: a decision is a function of
    [(seed, stream, index)], which is what makes fault schedules — and
    the campaign report built from them — reproducible byte for byte
    under a fixed seed. *)

val mix : int64 -> int64
(** splitmix64 finalizer (keyed bit mixer, full avalanche). *)

val hash : seed:int -> salt:int -> n:int -> int64
(** Deterministic 64-bit hash of one decision point: [salt] names the
    stream (a site, a scenario, a request class), [n] indexes within
    it. *)

val uniform : seed:int -> salt:int -> n:int -> float
(** [hash] folded to a float in [\[0, 1)]. *)

val backoff_ms : seed:int -> stream:int -> attempt:int -> base_ms:float -> float
(** Exponential backoff with deterministic jitter: doubling capped at
    [2^8 * base_ms], jitter factor in [\[0.5, 1.5)], result capped at
    500 ms.  Keyed on [stream] (typically the request id) so two
    clients retrying the same instant diverge, while a re-run sleeps
    the identical schedule. *)
