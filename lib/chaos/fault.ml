(* The fault vocabulary and the seams it can fire at.  One closed
   enumeration for both — like the obligation lists in lib/verify, the
   point is that the set of injectable failures is written down, named,
   and replayed, not discovered ad hoc. *)

type t =
  | Pass  (* no fault at this call; the only value the disarmed hook returns *)
  | Eintr  (* syscall interrupted *)
  | Eagain  (* spurious would-block *)
  | Econnreset  (* peer reset mid-read *)
  | Emfile  (* descriptor exhaustion at accept *)
  | Short_read of int  (* read at most this many bytes *)
  | Short_write of int  (* write at most this many bytes *)
  | Spurious_wake  (* readiness wait returns empty early *)
  | Stall_us of int  (* bounded latency stall before the syscall *)
  | Drop_dispatch  (* distributor hand-off to a shard "fails" *)
  | Abort_child  (* forked shard exits before serving anything *)

type site = Read | Write | Accept | Wait | Dispatch | Fork

let site_count = 6

let site_index = function
  | Read -> 0
  | Write -> 1
  | Accept -> 2
  | Wait -> 3
  | Dispatch -> 4
  | Fork -> 5

let site_name = function
  | Read -> "read"
  | Write -> "write"
  | Accept -> "accept"
  | Wait -> "wait"
  | Dispatch -> "dispatch"
  | Fork -> "fork"

let name = function
  | Pass -> "pass"
  | Eintr -> "eintr"
  | Eagain -> "eagain"
  | Econnreset -> "econnreset"
  | Emfile -> "emfile"
  | Short_read _ -> "short_read"
  | Short_write _ -> "short_write"
  | Spurious_wake -> "spurious_wake"
  | Stall_us _ -> "stall"
  | Drop_dispatch -> "drop_dispatch"
  | Abort_child -> "abort_child"
