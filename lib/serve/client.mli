(** Blocking client for the evaluation service.

    One socket, one outstanding conversation per client value; not
    thread-safe (the load generator gives each worker its own
    client).  Responses are matched by correlation id — the server
    replies in micro-batch completion order, not submission order.

    [?deadline_ms] (default off, preserving the historical fully
    blocking behavior) bounds the connect and every socket read:
    connect goes non-blocking and waits for writability, and {!recv}
    waits for readability before each read.  Exceeding either raises
    [Failure], which {!call_retry} turns into a reconnect-and-retry. *)

type t

val connect : ?deadline_ms:int -> Server.addr -> t
val connect_sockaddr : ?deadline_ms:int -> Unix.sockaddr -> t
val close : t -> unit

val reconnect : t -> unit
(** Drop the socket and any half-read framing state, and dial the
    original address again (same deadline).  Correlation ids keep
    counting from where they were, so an in-flight request can be
    re-sent with its original id. *)

val fresh_id : t -> int
(** Next unused correlation id (monotonic per client). *)

val send : t -> Protocol.request -> unit
(** Fire one request frame without waiting (for pipelining). *)

val recv : t -> Protocol.response
(** Block for the next response frame.  Raises [Failure] on EOF, a
    malformed frame, or a lapsed read deadline. *)

val call : t -> Protocol.request -> Protocol.response
(** {!send} then block until the response with the request's id. *)

val call_retry :
  ?max_attempts:int ->
  ?base_backoff_ms:float ->
  ?seed:int ->
  t ->
  Protocol.request ->
  Protocol.response
(** {!call} hardened for a flaky fleet: any raised failure (EOF,
    deadline, reset, bad frame) sleeps a deterministic
    exponential-backoff-with-jitter delay ({!Chaos.Rng.backoff_ms},
    keyed on [seed] and the request id), reconnects, and re-sends the
    {e same} request — same correlation id, so the exchange is
    idempotent from the server's point of view.  Defaults:
    [max_attempts = 8], [base_backoff_ms = 10.], [seed = 0].
    Re-raises the last failure once attempts are exhausted.  Shed
    responses are returned, not retried: shedding is an answer. *)

val call_many : t -> Protocol.request list -> Protocol.response list
(** Pipeline all requests, then collect responses; returned in the
    order of the request list (matched by id, which must be unique
    within the call). *)

val stats : t -> Obs.Json_out.t
(** The server's {!Server.stats_doc} via the wire [stats] op. *)
