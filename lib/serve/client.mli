(** Blocking client for the evaluation service.

    One socket, one outstanding conversation per client value; not
    thread-safe (the load generator gives each worker its own
    client).  Responses are matched by correlation id — the server
    replies in micro-batch completion order, not submission order. *)

type t

val connect : Server.addr -> t
val connect_sockaddr : Unix.sockaddr -> t
val close : t -> unit

val fresh_id : t -> int
(** Next unused correlation id (monotonic per client). *)

val send : t -> Protocol.request -> unit
(** Fire one request frame without waiting (for pipelining). *)

val recv : t -> Protocol.response
(** Block for the next response frame.  Raises [Failure] on EOF or a
    malformed frame. *)

val call : t -> Protocol.request -> Protocol.response
(** {!send} then block until the response with the request's id. *)

val call_many : t -> Protocol.request list -> Protocol.response list
(** Pipeline all requests, then collect responses; returned in the
    order of the request list (matched by id, which must be unique
    within the call). *)

val stats : t -> Obs.Json_out.t
(** The server's {!Server.stats_doc} via the wire [stats] op. *)
