(* Accept loop + admission + drain orchestration.  The io domain owns
   the listener, the connection list, and all reads; replies are
   written from both the io domain (sheds, errors, stats) and the
   batcher domain (results), serialized per connection by a write
   mutex.  Stop order is what makes the drain lossless: close the
   admission queue first (late frames get explicit "closed" sheds
   while the io loop keeps serving), join the batcher (every accepted
   request answered), and only then tear down the sockets. *)

module P = Protocol
module J = Obs.Json_out

type addr = Unix_path of string | Tcp of { host : string; port : int }

type conn = {
  fd : Unix.file_descr;
  defr : P.deframer;
  wlock : Mutex.t;
  out : Buffer.t;  (* pending reply bytes; guarded by wlock *)
  mutable dirty : bool;  (* on the server's pending list; guarded by pending_lock *)
  mutable alive : bool;  (* writers may still buffer/flush; guarded by wlock *)
  mutable closed : bool;  (* fd released, exactly once; guarded by wlock *)
}

type t = {
  sched : Runtime.Sched.t;
  queue : Batcher.entry Admission.t;
  batcher : Batcher.t;
  listen_fd : Unix.file_descr;
  bound : Unix.sockaddr;
  unlink_on_close : string option;
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
  lock : Mutex.t;
  pending_lock : Mutex.t;
  mutable pending : conn list;  (* conns with buffered batch replies *)
  mutable conns : conn list;  (* io domain only *)
  mutable accepted : int;
  mutable shed_full : int;
  mutable shed_closed : int;
  mutable decode_errors : int;
  stopping : bool Atomic.t;
  io_exit : bool Atomic.t;
  mutable io_domain : unit Domain.t option;
}

let accepted_ctr = Obs.Metrics.counter "serve.accepted"
let shed_full_ctr = Obs.Metrics.counter "serve.shed_full"
let shed_closed_ctr = Obs.Metrics.counter "serve.shed_closed"

let ring t =
  try ignore (Unix.write t.wake_w (Bytes.make 1 '!') 0 1)
  with Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EBADF), _, _) -> ()

(* Conn fds are non-blocking (they are select'ed for reads), so a
   write into a full socket buffer raises EAGAIN; wait for writability
   rather than killing the connection, and give up only on a client
   that stays wedged for seconds. *)
let write_all fd s =
  let n = String.length s in
  let k = ref 0 in
  while !k < n do
    match Unix.write_substring fd s !k (n - !k) with
    | w -> k := !k + w
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) -> (
        match Unix.select [] [ fd ] [] 5.0 with
        | [], [], [] -> failwith "write stalled"
        | _ -> ()
        | exception Unix.Unix_error (EINTR, _, _) -> ())
    | exception Unix.Unix_error (EINTR, _, _) -> ()
  done

(* wlock held.  On failure only mark the conn dead (and drop its
   buffered output); the fd itself is closed by the io domain when it
   sweeps dead conns, so closes happen on one domain and never race a
   concurrent select/read on the same descriptor. *)
let flush_locked conn =
  if conn.alive && Buffer.length conn.out > 0 then begin
    let s = Buffer.contents conn.out in
    Buffer.clear conn.out;
    try write_all conn.fd s with _ -> conn.alive <- false
  end

(* Write-through: io-domain replies (sheds, errors, stats) go out
   immediately, plus whatever batch output was still buffered. *)
let send conn resp =
  Mutex.lock conn.wlock;
  if conn.alive then begin
    Buffer.add_string conn.out (P.frame_of_string (J.to_string_compact (P.response_to_json resp)));
    flush_locked conn
  end;
  Mutex.unlock conn.wlock

(* Batch replies buffer up per connection and flush once per batcher
   cycle — one write syscall (and one reader wake-up) per connection
   per micro-batch instead of per response. *)
let enqueue t conn resp =
  Mutex.lock conn.wlock;
  if conn.alive then
    Buffer.add_string conn.out (P.frame_of_string (J.to_string_compact (P.response_to_json resp)));
  Mutex.unlock conn.wlock;
  Mutex.lock t.pending_lock;
  if not conn.dirty then begin
    conn.dirty <- true;
    t.pending <- conn :: t.pending
  end;
  Mutex.unlock t.pending_lock

let flush_pending t =
  Mutex.lock t.pending_lock;
  let cs = t.pending in
  t.pending <- [];
  List.iter (fun c -> c.dirty <- false) cs;
  Mutex.unlock t.pending_lock;
  List.iter
    (fun c ->
      Mutex.lock c.wlock;
      flush_locked c;
      Mutex.unlock c.wlock)
    cs

(* io domain only (read path, dead-conn sweep, loop teardown), so a
   conn's fd is released exactly once and never while another domain
   could still be select'ing or reading it. *)
let close_conn conn =
  Mutex.lock conn.wlock;
  conn.alive <- false;
  Buffer.clear conn.out;
  if not conn.closed then begin
    conn.closed <- true;
    try Unix.close conn.fd with _ -> ()
  end;
  Mutex.unlock conn.wlock

(* --- introspection -------------------------------------------------- *)

let stats_doc t =
  let b = Batcher.stats t.batcher in
  Mutex.lock t.lock;
  let accepted = t.accepted in
  let shed_full = t.shed_full in
  let shed_closed = t.shed_closed in
  let decode_errors = t.decode_errors in
  Mutex.unlock t.lock;
  let num n = J.Num (float_of_int n) in
  J.Obj
    [ ("schema", J.Str "fpan-serve/1");
      ("accepted", num accepted);
      ("completed", num b.Batcher.completed);
      ("shed_full", num shed_full);
      ("shed_deadline", num b.Batcher.shed_deadline);
      ("shed_closed", num shed_closed);
      ("errors", num (decode_errors + b.Batcher.errors));
      ("batches", num b.Batcher.batches);
      ("queue_capacity", num (Admission.capacity t.queue));
      ("queue_depth", num (Admission.depth t.queue));
      ("queue_max_depth", num (Admission.max_depth t.queue));
      ( "batch_histogram",
        J.List
          (List.map
             (fun (size, count) -> J.Obj [ ("size", num size); ("count", num count) ])
             b.Batcher.histogram) );
      ("sched", Runtime.Sched.stats_json (Runtime.Sched.stats t.sched)) ]

(* --- request path (io domain) --------------------------------------- *)

let best_effort_id doc =
  match Option.bind (J.member "id" doc) J.to_num with
  | Some f when Float.is_integer f -> int_of_float f
  | _ -> 0

let bump t f =
  Mutex.lock t.lock;
  f t;
  Mutex.unlock t.lock

let handle_frame t conn payload =
  let tr = Obs.Trace.enabled () in
  if tr then Obs.Trace.begin_span Obs.Trace.Io "serve.request";
  (match J.parse payload with
  | Error e ->
      bump t (fun t -> t.decode_errors <- t.decode_errors + 1);
      send conn (P.Failed { id = 0; error = "bad json: " ^ e })
  | Ok doc -> (
      match P.request_of_json doc with
      | Error e ->
          bump t (fun t -> t.decode_errors <- t.decode_errors + 1);
          send conn (P.Failed { id = best_effort_id doc; error = e })
      | Ok req when req.P.op = P.Stats ->
          send conn (P.Stats_reply { id = req.P.id; stats = stats_doc t })
      | Ok req -> (
          let entry =
            {
              Batcher.req;
              arrival_ns = Obs.Clock.now_ns ();
              reply = (fun resp -> enqueue t conn resp);
            }
          in
          match Admission.push t.queue entry with
          | `Ok ->
              bump t (fun t -> t.accepted <- t.accepted + 1);
              Obs.Metrics.incr accepted_ctr
          | `Full ->
              bump t (fun t -> t.shed_full <- t.shed_full + 1);
              Obs.Metrics.incr shed_full_ctr;
              send conn (P.Shed { id = req.P.id; reason = "queue_full" })
          | `Closed ->
              bump t (fun t -> t.shed_closed <- t.shed_closed + 1);
              Obs.Metrics.incr shed_closed_ctr;
              send conn (P.Shed { id = req.P.id; reason = "closed" }))));
  if tr then Obs.Trace.end_span ()

let read_conn t conn buf =
  match Unix.read conn.fd buf 0 (Bytes.length buf) with
  | 0 -> close_conn conn
  | n -> (
      match P.feed conn.defr buf n with
      | Ok frames -> List.iter (handle_frame t conn) frames
      | Error _ -> close_conn conn)
  | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
  | exception Unix.Unix_error _ -> close_conn conn

(* Stay comfortably under FD_SETSIZE (1024): past the cap, select
   would start failing with EINVAL for every caller, so refusing the
   excess connection immediately is the service-preserving choice. *)
let max_conns = 960

let accept_all t =
  let rec go () =
    match Unix.accept ~cloexec:true t.listen_fd with
    | fd, _ ->
        if List.length t.conns >= max_conns then (try Unix.close fd with _ -> ())
        else begin
          Unix.set_nonblock fd;
          t.conns <-
            { fd; defr = P.deframer (); wlock = Mutex.create ();
              out = Buffer.create 4096; dirty = false; alive = true; closed = false }
            :: t.conns
        end;
        go ()
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
    | exception Unix.Unix_error _ -> ()
  in
  go ()

let drain_wake t =
  let b = Bytes.create 64 in
  let rec go () =
    match Unix.read t.wake_r b 0 64 with
    | 64 -> go ()
    | _ -> ()
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) -> ()
  in
  go ()

let io_loop t =
  let buf = Bytes.create 65536 in
  while not (Atomic.get t.io_exit) do
    (* sweep conns whose flush failed on the batcher domain: their fds
       were left open so the close (here) can't race a select on them *)
    let dead, live = List.partition (fun c -> not c.alive) t.conns in
    List.iter close_conn dead;
    t.conns <- live;
    let rds =
      t.wake_r
      :: (if Atomic.get t.stopping then [] else [ t.listen_fd ])
      @ List.map (fun c -> c.fd) t.conns
    in
    match Unix.select rds [] [] 1.0 with
    | exception Unix.Unix_error (EINTR, _, _) -> ()
    | exception Unix.Unix_error _ ->
        (* EBADF/EINVAL etc. poison every subsequent select; shedding
           one connection beats an unresponsive-forever io domain.
           Drop any conn whose fd fails fstat, and if none does, the
           newest conn, so the loop always makes progress. *)
        let bad, ok =
          List.partition
            (fun c -> match Unix.fstat c.fd with _ -> false | exception _ -> true)
            t.conns
        in
        (match (bad, ok) with
        | [], newest :: rest ->
            close_conn newest;
            t.conns <- rest
        | [], [] -> Unix.sleepf 0.05  (* listener/wake fd at fault; don't spin *)
        | _ ->
            List.iter close_conn bad;
            t.conns <- ok)
    | rd, _, _ ->
        List.iter
          (fun fd ->
            if fd = t.wake_r then drain_wake t
            else if fd = t.listen_fd then accept_all t
            else
              match List.find_opt (fun c -> c.fd = fd) t.conns with
              | Some conn when conn.alive -> read_conn t conn buf
              | _ -> ())
          rd
  done;
  List.iter close_conn t.conns;
  t.conns <- [];
  (try Unix.close t.listen_fd with _ -> ());
  match t.unlink_on_close with
  | Some path -> ( try Unix.unlink path with _ -> ())
  | None -> ()

(* --- lifecycle ------------------------------------------------------ *)

let bind_listen addr =
  match addr with
  | Unix_path path ->
      (try Unix.unlink path with _ -> ());
      let fd = Unix.socket ~cloexec:true PF_UNIX SOCK_STREAM 0 in
      Unix.bind fd (ADDR_UNIX path);
      Unix.listen fd 64;
      (fd, Unix.getsockname fd, Some path)
  | Tcp { host; port } ->
      let ip =
        try Unix.inet_addr_of_string host
        with _ -> (Unix.gethostbyname host).h_addr_list.(0)
      in
      let fd = Unix.socket ~cloexec:true PF_INET SOCK_STREAM 0 in
      Unix.setsockopt fd SO_REUSEADDR true;
      Unix.bind fd (ADDR_INET (ip, port));
      Unix.listen fd 64;
      (fd, Unix.getsockname fd, None)

let stop t =
  if not (Atomic.exchange t.stopping true) then begin
    (* 1. refuse new admissions: late frames get explicit "closed"
          sheds while the io loop keeps reading and replying *)
    Admission.close t.queue;
    ring t;
    (* 2. every accepted request is answered before the batcher exits *)
    Batcher.join t.batcher;
    (* 3. tear the sockets down *)
    Atomic.set t.io_exit true;
    ring t;
    (match t.io_domain with
    | Some d ->
        Domain.join d;
        t.io_domain <- None
    | None -> ());
    (try Unix.close t.wake_r with _ -> ());
    try Unix.close t.wake_w with _ -> ()
  end

let start ~sched ~addr ?(queue_capacity = 64) ?(max_batch = 32) ?(window_us = 200.)
    () =
  (* one abruptly-closed client must not SIGPIPE-kill the service *)
  P.ignore_sigpipe ();
  let listen_fd, bound, unlink_on_close = bind_listen addr in
  Unix.set_nonblock listen_fd;
  let wake_r, wake_w = Unix.pipe ~cloexec:true () in
  Unix.set_nonblock wake_r;
  Unix.set_nonblock wake_w;
  let queue = Admission.create ~capacity:queue_capacity in
  let window_ns = Int64.of_float (window_us *. 1e3) in
  let t_ref = ref None in
  let flush () = match !t_ref with Some t -> flush_pending t | None -> () in
  let batcher = Batcher.create ~sched ~queue ~max_batch ~window_ns ~flush () in
  let t =
    {
      sched;
      queue;
      batcher;
      listen_fd;
      bound;
      unlink_on_close;
      wake_r;
      wake_w;
      lock = Mutex.create ();
      pending_lock = Mutex.create ();
      pending = [];
      conns = [];
      accepted = 0;
      shed_full = 0;
      shed_closed = 0;
      decode_errors = 0;
      stopping = Atomic.make false;
      io_exit = Atomic.make false;
      io_domain = None;
    }
  in
  (* the batcher can only have replies to flush once the io domain
     (spawned below) admits requests, so the knot ties safely here *)
  t_ref := Some t;
  t.io_domain <- Some (Domain.spawn (fun () -> io_loop t));
  (* a scheduler drain (Sched.shutdown / drain_all, e.g. from a signal
     handler) stops the server first, while runs are still accepted *)
  Runtime.Sched.on_shutdown sched (fun () -> stop t);
  t

let bound_addr t = t.bound
