(* Accept loop + admission + drain orchestration.  The io domain owns
   the readiness set, the connection table, and all reads; replies are
   written from both the io domain (sheds, errors, stats, cache hits)
   and the batcher domain (results), serialized per connection by a
   write mutex.  Stop order is what makes the drain lossless: close
   the admission queue first (late frames get explicit "closed" sheds
   while the io loop keeps serving), join the batcher (every accepted
   request answered), and only then tear down the sockets.

   The event loop runs on {!Readiness} (poll(2) by default): no
   FD_SETSIZE ceiling, O(1) per-event connection lookup through a
   table keyed by descriptor, and O(deaths) — not O(conns) — sweeping
   of connections whose reply write failed on the batcher domain.

   A server is fed from one of two sources: a listening socket it
   owns, or an adoption channel — a unix-domain socket over which a
   parent distributor passes already-accepted connection fds
   (SCM_RIGHTS; see {!Shard}).  Channel EOF is the drain signal. *)

module P = Protocol
module J = Obs.Json_out

type addr = Unix_path of string | Tcp of { host : string; port : int }

type source =
  | Listener of { fd : Unix.file_descr; bound : Unix.sockaddr; unlink : string option }
  | Adopt of { chan : Unix.file_descr; on_drain : unit -> unit }

type conn = {
  fd : Unix.file_descr;
  defr : P.deframer;
  wlock : Mutex.t;
  out : Buffer.t;  (* pending reply bytes; guarded by wlock *)
  mutable dirty : bool;  (* on the server's pending list; guarded by pending_lock *)
  mutable alive : bool;  (* writers may still buffer/flush; guarded by wlock *)
  mutable closed : bool;  (* fd released, exactly once; guarded by wlock *)
}

type t = {
  sched : Runtime.Sched.t;
  queue : Batcher.entry Admission.t;
  batcher : Batcher.t;
  cache : Cache.t;
  source : source;
  max_conns : int;
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
  lock : Mutex.t;
  pending_lock : Mutex.t;
  mutable pending : conn list;  (* conns with buffered batch replies *)
  mutable dying : conn list;  (* flush failed off-io-domain; io closes them *)
  conns : (int, conn) Hashtbl.t;  (* io domain only *)
  conn_count : int Atomic.t;
  mutable accepted : int;
  mutable adopted : int;
  mutable refused_conns : int;
  mutable shed_full : int;
  mutable shed_closed : int;
  mutable shed_displaced : int;
  shed_buckets : int array;  (* sheds per SLA bucket; guarded by lock *)
  mutable decode_errors : int;
  mutable draining : bool;  (* io domain: adoption channel hit EOF *)
  stopping : bool Atomic.t;
  io_exit : bool Atomic.t;
  mutable io_domain : unit Domain.t option;
  mutable backend_name : string;  (* io domain writes once at startup *)
}

let accepted_ctr = Obs.Metrics.counter "serve.accepted"
let shed_full_ctr = Obs.Metrics.counter "serve.shed_full"
let shed_closed_ctr = Obs.Metrics.counter "serve.shed_closed"
let shed_displaced_ctr = Obs.Metrics.counter "serve.shed_displaced"

(* --- degradation policy ---------------------------------------------- *)

(* Admission priority: an SLA request's q exponent (tighter budget =
   more bits asked for = more valuable under overload), and for
   fixed-tier requests the q-equivalent of the tier's full width
   (53 bits per term), so explicit-tier work ranks with the SLA work
   asking for comparable accuracy. *)
let priority_of_request (req : P.request) =
  match req.P.sla with
  | Some q -> q
  | None -> 53 * P.tier_terms req.P.tier

(* Shed accounting buckets: one for fixed-tier work, four q ranges for
   SLA work.  Fixed shape, fixed order — the stats document must be
   deterministic. *)
let shed_bucket_names = [| "fixed"; "q1-50"; "q51-100"; "q101-150"; "q151-200" |]

let shed_bucket_index (req : P.request) =
  match req.P.sla with
  | None -> 0
  | Some q -> if q <= 50 then 1 else if q <= 100 then 2 else if q <= 150 then 3 else 4

let fd_key : Unix.file_descr -> int = Obj.magic

let ring t =
  try ignore (Unix.write t.wake_w (Bytes.make 1 '!') 0 1)
  with Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EBADF), _, _) -> ()

(* Conn fds are non-blocking, so a write into a full socket buffer
   raises EAGAIN; wait for writability (poll — the descriptor value
   may be far beyond select's ceiling) rather than killing the
   connection, and give up only on a client that stays wedged for
   seconds. *)
(* Chaos seam around one write syscall: short writes just cap the
   length (the loop below already handles partial progress), EINTR /
   EAGAIN take the same recovery paths a real kernel would force, and
   a stall is a bounded sleep before the write.  Disarmed, this is a
   single atomic branch. *)
let chaos_write fd s k n =
  match Chaos.Injector.write_fault () with
  | Chaos.Fault.Pass -> Unix.write_substring fd s k n
  | Chaos.Fault.Short_write cap -> Unix.write_substring fd s k (min n (max 1 cap))
  | Chaos.Fault.Eintr -> raise (Unix.Unix_error (Unix.EINTR, "chaos-write", ""))
  | Chaos.Fault.Eagain -> raise (Unix.Unix_error (Unix.EAGAIN, "chaos-write", ""))
  | Chaos.Fault.Stall_us us ->
      Unix.sleepf (float_of_int us *. 1e-6);
      Unix.write_substring fd s k n
  | _ -> Unix.write_substring fd s k n

let write_all fd s =
  let n = String.length s in
  let k = ref 0 in
  while !k < n do
    match chaos_write fd s !k (n - !k) with
    | w -> k := !k + w
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) ->
        if not (Readiness.wait_writable fd ~timeout_ms:5000) then
          failwith "write stalled"
    | exception Unix.Unix_error (EINTR, _, _) -> ()
  done

(* wlock held.  On failure only mark the conn dead (and drop its
   buffered output); the fd itself is closed by the io domain, so
   closes happen on one domain and never race the readiness set. *)
let flush_locked conn =
  if conn.alive && Buffer.length conn.out > 0 then begin
    let s = Buffer.contents conn.out in
    Buffer.clear conn.out;
    try write_all conn.fd s with _ -> conn.alive <- false
  end

(* A writer off the io domain noticed the conn died: queue it for the
   io domain to close (O(deaths), not a full-table sweep) and ring. *)
let report_dead t conn =
  Mutex.lock t.pending_lock;
  t.dying <- conn :: t.dying;
  Mutex.unlock t.pending_lock;
  ring t

(* Write-through: io-domain replies (sheds, errors, stats, cache hits)
   go out immediately, plus whatever batch output was still buffered. *)
let send t conn resp =
  Mutex.lock conn.wlock;
  let died =
    if conn.alive then begin
      Buffer.add_string conn.out (P.frame_of_string (J.to_string_compact (P.response_to_json resp)));
      flush_locked conn;
      not conn.alive
    end
    else false
  in
  Mutex.unlock conn.wlock;
  if died then report_dead t conn

(* Batch replies buffer up per connection and flush once per batcher
   cycle — one write syscall (and one reader wake-up) per connection
   per micro-batch instead of per response. *)
let enqueue t conn resp =
  Mutex.lock conn.wlock;
  let alive = conn.alive in
  if alive then
    Buffer.add_string conn.out (P.frame_of_string (J.to_string_compact (P.response_to_json resp)));
  Mutex.unlock conn.wlock;
  if alive then begin
    Mutex.lock t.pending_lock;
    if not conn.dirty then begin
      conn.dirty <- true;
      t.pending <- conn :: t.pending
    end;
    Mutex.unlock t.pending_lock
  end

let flush_pending t =
  Mutex.lock t.pending_lock;
  let cs = t.pending in
  t.pending <- [];
  List.iter (fun c -> c.dirty <- false) cs;
  Mutex.unlock t.pending_lock;
  List.iter
    (fun c ->
      Mutex.lock c.wlock;
      let was_alive = c.alive in
      flush_locked c;
      (* only a death *during this flush* goes on the dying list: a
         conn the io domain already closed must not be re-reported —
         by then its fd number may belong to a new connection *)
      let died = was_alive && not c.alive in
      Mutex.unlock c.wlock;
      if died then report_dead t c)
    cs

(* io domain only (read path, dying-conn sweep, loop teardown), so a
   conn's fd is released exactly once and never while another domain
   could still be polling or reading it. *)
let close_conn conn =
  Mutex.lock conn.wlock;
  conn.alive <- false;
  Buffer.clear conn.out;
  if not conn.closed then begin
    conn.closed <- true;
    try Unix.close conn.fd with _ -> ()
  end;
  Mutex.unlock conn.wlock

(* --- introspection -------------------------------------------------- *)

let stats_doc t =
  let b = Batcher.stats t.batcher in
  let c = Cache.stats t.cache in
  Mutex.lock t.lock;
  let accepted = t.accepted in
  let adopted = t.adopted in
  let refused_conns = t.refused_conns in
  let shed_full = t.shed_full in
  let shed_closed = t.shed_closed in
  let shed_displaced = t.shed_displaced in
  let shed_buckets = Array.copy t.shed_buckets in
  let decode_errors = t.decode_errors in
  Mutex.unlock t.lock;
  let num n = J.Num (float_of_int n) in
  J.Obj
    [ ("schema", J.Str "fpan-serve/4");
      ("backend", J.Str t.backend_name);
      ("accepted", num accepted);
      ("adopted_conns", num adopted);
      ("open_conns", num (Atomic.get t.conn_count));
      ("refused_conns", num refused_conns);
      ("completed", num b.Batcher.completed);
      ("shed_full", num shed_full);
      ("shed_deadline", num b.Batcher.shed_deadline);
      ("shed_closed", num shed_closed);
      ("shed_displaced", num shed_displaced);
      ( "shed_by_bucket",
        J.List
          (List.init (Array.length shed_bucket_names) (fun i ->
               J.Obj
                 [ ("bucket", J.Str shed_bucket_names.(i));
                   ("count", num shed_buckets.(i)) ])) );
      ("errors", num (decode_errors + b.Batcher.errors));
      ("batches", num b.Batcher.batches);
      ("queue_capacity", num (Admission.capacity t.queue));
      ("queue_depth", num (Admission.depth t.queue));
      ("queue_max_depth", num (Admission.max_depth t.queue));
      ( "cache",
        J.Obj
          [ ("capacity", num (Cache.capacity t.cache));
            ("hits", num c.Cache.hits);
            ("misses", num c.Cache.misses);
            ("size", num c.Cache.size);
            ("evictions", num c.Cache.evictions);
            ( "by_kind",
              J.List
                (List.map
                   (fun (k : Cache.kind_stats) ->
                     J.Obj
                       [ ("kind", J.Str k.Cache.kind);
                         ("hits", num k.Cache.k_hits);
                         ("misses", num k.Cache.k_misses) ])
                   c.Cache.by_kind) ) ] );
      ( "sla",
        J.Obj
          [ ("requests", num b.Batcher.sla_requests);
            ("escalations", num b.Batcher.sla_escalations);
            ( "chosen",
              J.List
                (List.map
                   (fun (tier, count) ->
                     J.Obj [ ("chosen", J.Str tier); ("count", num count) ])
                   b.Batcher.sla_chosen) ) ] );
      ( "batch_histogram",
        J.List
          (List.map
             (fun (size, count) -> J.Obj [ ("size", num size); ("count", num count) ])
             b.Batcher.histogram) );
      ("sched", Runtime.Sched.stats_json (Runtime.Sched.stats t.sched)) ]

(* --- request path (io domain) --------------------------------------- *)

let best_effort_id doc =
  match Option.bind (J.member "id" doc) J.to_num with
  | Some f when Float.is_integer f -> int_of_float f
  | _ -> 0

let bump t f =
  Mutex.lock t.lock;
  f t;
  Mutex.unlock t.lock

let admit t conn (req : P.request) cache_key =
  let reply =
    match cache_key with
    | None -> fun resp -> enqueue t conn resp
    | Some key ->
        (* populate on the way out; the stored components re-encode
           through the same emitter, so a later hit is bitwise this
           response *)
        fun resp ->
          (match resp with
          | P.Result { result; chosen; bound; _ } ->
              Cache.add t.cache key { Cache.result; chosen; bound }
          | _ -> ());
          enqueue t conn resp
  in
  let entry = { Batcher.req; arrival_ns = Obs.Clock.now_ns (); reply } in
  match Admission.push ~priority:(priority_of_request req) t.queue entry with
  | `Ok ->
      bump t (fun t -> t.accepted <- t.accepted + 1);
      Obs.Metrics.incr accepted_ctr
  | `Full ->
      bump t (fun t ->
          t.shed_full <- t.shed_full + 1;
          let b = shed_bucket_index req in
          t.shed_buckets.(b) <- t.shed_buckets.(b) + 1);
      Obs.Metrics.incr shed_full_ctr;
      send t conn (P.Shed { id = req.P.id; reason = "queue_full" })
  | `Displaced victim ->
      (* overload degradation: this request was admitted by evicting
         the oldest strictly-lower-priority entry, which we now shed
         explicitly on its own connection *)
      bump t (fun t ->
          t.accepted <- t.accepted + 1;
          t.shed_displaced <- t.shed_displaced + 1;
          let b = shed_bucket_index victim.Batcher.req in
          t.shed_buckets.(b) <- t.shed_buckets.(b) + 1);
      Obs.Metrics.incr accepted_ctr;
      Obs.Metrics.incr shed_displaced_ctr;
      victim.Batcher.reply
        (P.Shed { id = victim.Batcher.req.P.id; reason = "displaced" })
  | `Closed ->
      bump t (fun t ->
          t.shed_closed <- t.shed_closed + 1;
          let b = shed_bucket_index req in
          t.shed_buckets.(b) <- t.shed_buckets.(b) + 1);
      Obs.Metrics.incr shed_closed_ctr;
      send t conn (P.Shed { id = req.P.id; reason = "closed" })

let handle_frame t conn payload =
  let tr = Obs.Trace.enabled () in
  if tr then Obs.Trace.begin_span Obs.Trace.Io "serve.request";
  (match J.parse payload with
  | Error e ->
      bump t (fun t -> t.decode_errors <- t.decode_errors + 1);
      send t conn (P.Failed { id = 0; error = "bad json: " ^ e })
  | Ok doc -> (
      match P.request_of_json doc with
      | Error e ->
          bump t (fun t -> t.decode_errors <- t.decode_errors + 1);
          send t conn (P.Failed { id = best_effort_id doc; error = e })
      | Ok req when req.P.op = P.Stats ->
          send t conn (P.Stats_reply { id = req.P.id; stats = stats_doc t })
      | Ok req -> (
          (* hot path: repeated scalar operands answer straight from
             the LRU on the io domain, skipping queue and batcher *)
          match
            if Cache.capacity t.cache >= 1 then Cache.key_of_request req else None
          with
          | Some key as cache_key -> (
              match Cache.find ~kind:(Cache.kind_of_request req) t.cache key with
              | Some { Cache.result; chosen; bound } ->
                  send t conn
                    (P.Result { id = req.P.id; result; batch = 1; chosen; bound })
              | None -> admit t conn req cache_key)
          | None -> admit t conn req None)));
  if tr then Obs.Trace.end_span ()

(* --- connection lifecycle (io domain) -------------------------------- *)

let install_conn t rd fd =
  Unix.set_nonblock fd;
  let conn =
    { fd; defr = P.deframer (); wlock = Mutex.create ();
      out = Buffer.create 4096; dirty = false; alive = true; closed = false }
  in
  Hashtbl.replace t.conns (fd_key fd) conn;
  Atomic.incr t.conn_count;
  Readiness.add rd fd ~read:true ~write:false

let drop_conn t rd conn =
  (* identity check, not just key equality: once this conn's fd is
     closed the kernel reuses the number for the next accept, so a
     stale drop (e.g. a dying-list entry for a conn the read path
     already closed) must not evict the NEW connection living under
     the same key *)
  (match Hashtbl.find_opt t.conns (fd_key conn.fd) with
  | Some c when c == conn ->
      Hashtbl.remove t.conns (fd_key conn.fd);
      Atomic.decr t.conn_count;
      Readiness.remove rd conn.fd
  | _ -> ());
  close_conn conn

(* Chaos seam around one read syscall: a short read caps the length
   (the deframer is built for partial frames), EINTR / EAGAIN /
   ECONNRESET surface as the real errno the handlers below already
   classify, and a stall is a bounded sleep before the read. *)
let chaos_read fd buf len =
  match Chaos.Injector.read_fault () with
  | Chaos.Fault.Pass -> Unix.read fd buf 0 len
  | Chaos.Fault.Short_read cap -> Unix.read fd buf 0 (min len (max 1 cap))
  | Chaos.Fault.Eintr -> raise (Unix.Unix_error (Unix.EINTR, "chaos-read", ""))
  | Chaos.Fault.Eagain -> raise (Unix.Unix_error (Unix.EAGAIN, "chaos-read", ""))
  | Chaos.Fault.Econnreset ->
      raise (Unix.Unix_error (Unix.ECONNRESET, "chaos-read", ""))
  | Chaos.Fault.Stall_us us ->
      Unix.sleepf (float_of_int us *. 1e-6);
      Unix.read fd buf 0 len
  | _ -> Unix.read fd buf 0 len

let read_conn t rd conn buf =
  match chaos_read conn.fd buf (Bytes.length buf) with
  | 0 -> drop_conn t rd conn
  | n -> (
      match P.feed conn.defr buf n with
      | Ok frames -> List.iter (handle_frame t conn) frames
      | Error _ -> drop_conn t rd conn)
  | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
  | exception Unix.Unix_error _ -> drop_conn t rd conn

let accept_all t rd listen_fd =
  let rec go () =
    match
      (match Chaos.Injector.accept_fault () with
      | Chaos.Fault.Emfile ->
          raise (Unix.Unix_error (Unix.EMFILE, "chaos-accept", ""))
      | _ -> ());
      Unix.accept ~cloexec:true listen_fd
    with
    | fd, _ ->
        if Atomic.get t.conn_count >= t.max_conns then begin
          bump t (fun t -> t.refused_conns <- t.refused_conns + 1);
          (try Unix.close fd with _ -> ())
        end
        else install_conn t rd fd;
        go ()
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
    | exception Unix.Unix_error ((EMFILE | ENFILE), _, _) ->
        (* out of descriptors: the pending connection stays in the
           backlog; don't spin on a permanently-ready listener *)
        bump t (fun t -> t.refused_conns <- t.refused_conns + 1);
        Unix.sleepf 0.05
    | exception Unix.Unix_error _ -> ()
  in
  go ()

external recv_fd_stub : Unix.file_descr -> int * int = "caml_fpan_recv_fd"

let adopt_all t rd chan on_drain =
  let rec go () =
    match recv_fd_stub chan with
    | -1, _ ->
        (* distributor closed the channel: drain *)
        if not t.draining then begin
          t.draining <- true;
          Readiness.remove rd chan;
          on_drain ()
        end
    | byte, fd when byte = Char.code 'c' && fd >= 0 ->
        let fd : Unix.file_descr = Obj.magic fd in
        if Atomic.get t.conn_count >= t.max_conns then begin
          bump t (fun t -> t.refused_conns <- t.refused_conns + 1);
          try Unix.close fd with _ -> ()
        end
        else begin
          install_conn t rd fd;
          bump t (fun t -> t.adopted <- t.adopted + 1)
        end;
        go ()
    | byte, fd when byte = Char.code 'q' ->
        if fd >= 0 then (try Unix.close (Obj.magic fd : Unix.file_descr) with _ -> ());
        if not t.draining then begin
          t.draining <- true;
          Readiness.remove rd chan;
          on_drain ()
        end
    | _, fd ->
        (* unknown control byte: drop any attached fd, keep going *)
        if fd >= 0 then (try Unix.close (Obj.magic fd : Unix.file_descr) with _ -> ());
        go ()
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
    | exception Unix.Unix_error _ ->
        if not t.draining then begin
          t.draining <- true;
          Readiness.remove rd chan;
          on_drain ()
        end
  in
  go ()

let drain_wake t =
  let b = Bytes.create 64 in
  let rec go () =
    match Unix.read t.wake_r b 0 64 with
    | 64 -> go ()
    | _ -> ()
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) -> ()
  in
  go ()

let sweep_dying t rd =
  Mutex.lock t.pending_lock;
  let dead = t.dying in
  t.dying <- [];
  Mutex.unlock t.pending_lock;
  List.iter (fun c -> drop_conn t rd c) dead

let io_loop t =
  let rd = Readiness.create () in
  t.backend_name <- Readiness.backend_name rd;
  let buf = Bytes.create 65536 in
  Readiness.add rd t.wake_r ~read:true ~write:false;
  (match t.source with
  | Listener { fd; _ } -> Readiness.add rd fd ~read:true ~write:false
  | Adopt { chan; _ } -> Readiness.add rd chan ~read:true ~write:false);
  let source_fd =
    match t.source with Listener { fd; _ } -> fd | Adopt { chan; _ } -> chan
  in
  while not (Atomic.get t.io_exit) do
    (* close conns whose flush failed on the batcher domain: their fds
       were left open so the close (here) can't race the poll set *)
    sweep_dying t rd;
    (* once stopping, new work is refused at admission ("closed"
       sheds), but the listener stays registered so late frames still
       get explicit answers; a 1 s cap bounds the shutdown latency *)
    (match Readiness.wait rd ~timeout_ms:1000 with
    | [] -> ()
    | evs ->
        List.iter
          (fun (e : Readiness.event) ->
            if e.Readiness.fd = t.wake_r then drain_wake t
            else if e.Readiness.fd = source_fd then (
              match t.source with
              | Listener { fd; _ } ->
                  if not (Atomic.get t.stopping) then accept_all t rd fd
              | Adopt { chan; on_drain } -> adopt_all t rd chan on_drain)
            else
              match Hashtbl.find_opt t.conns (fd_key e.Readiness.fd) with
              | Some conn when conn.alive ->
                  if e.Readiness.error then drop_conn t rd conn
                  else if e.Readiness.readable || e.Readiness.hangup then
                    read_conn t rd conn buf
              | Some conn -> drop_conn t rd conn
              | None -> ())
          evs)
  done;
  Hashtbl.iter (fun _ conn -> close_conn conn) t.conns;
  Hashtbl.reset t.conns;
  Atomic.set t.conn_count 0;
  (match t.source with
  | Listener { fd; unlink; _ } -> (
      (try Unix.close fd with _ -> ());
      match unlink with
      | Some path -> ( try Unix.unlink path with _ -> ())
      | None -> ())
  | Adopt { chan; _ } -> ( try Unix.close chan with _ -> ()))

(* --- lifecycle ------------------------------------------------------ *)

let bind_listen addr =
  match addr with
  | Unix_path path ->
      (try Unix.unlink path with _ -> ());
      let fd = Unix.socket ~cloexec:true PF_UNIX SOCK_STREAM 0 in
      Unix.bind fd (ADDR_UNIX path);
      Unix.listen fd 1024;
      (fd, Unix.getsockname fd, Some path)
  | Tcp { host; port } ->
      let ip =
        try Unix.inet_addr_of_string host
        with _ -> (Unix.gethostbyname host).h_addr_list.(0)
      in
      let fd = Unix.socket ~cloexec:true PF_INET SOCK_STREAM 0 in
      Unix.setsockopt fd SO_REUSEADDR true;
      Unix.bind fd (ADDR_INET (ip, port));
      Unix.listen fd 1024;
      (fd, Unix.getsockname fd, None)

let stop t =
  if not (Atomic.exchange t.stopping true) then begin
    (* 1. refuse new admissions: late frames get explicit "closed"
          sheds while the io loop keeps reading and replying *)
    Admission.close t.queue;
    ring t;
    (* 2. every accepted request is answered before the batcher exits *)
    Batcher.join t.batcher;
    (* 3. tear the sockets down *)
    Atomic.set t.io_exit true;
    ring t;
    (match t.io_domain with
    | Some d ->
        Domain.join d;
        t.io_domain <- None
    | None -> ());
    (try Unix.close t.wake_r with _ -> ());
    (try Unix.close t.wake_w with _ -> ());
    (* both domains are joined: nobody can ring the doorbell again *)
    Admission.destroy t.queue
  end

let make ~sched ~source ?(queue_capacity = 64) ?(max_batch = 32) ?(window_us = 200.)
    ?(cache_capacity = 0) ?(max_conns = 16384) () =
  (* one abruptly-closed client must not SIGPIPE-kill the service *)
  P.ignore_sigpipe ();
  let wake_r, wake_w = Unix.pipe ~cloexec:true () in
  Unix.set_nonblock wake_r;
  Unix.set_nonblock wake_w;
  let queue = Admission.create ~capacity:queue_capacity in
  let window_ns = Int64.of_float (window_us *. 1e3) in
  let t_ref = ref None in
  let flush () = match !t_ref with Some t -> flush_pending t | None -> () in
  let batcher = Batcher.create ~sched ~queue ~max_batch ~window_ns ~flush () in
  let t =
    {
      sched;
      queue;
      batcher;
      cache = (if cache_capacity >= 1 then Cache.create ~capacity:cache_capacity
               else Cache.disabled);
      source;
      max_conns;
      wake_r;
      wake_w;
      lock = Mutex.create ();
      pending_lock = Mutex.create ();
      pending = [];
      dying = [];
      conns = Hashtbl.create 256;
      conn_count = Atomic.make 0;
      accepted = 0;
      adopted = 0;
      refused_conns = 0;
      shed_full = 0;
      shed_closed = 0;
      shed_displaced = 0;
      shed_buckets = Array.make (Array.length shed_bucket_names) 0;
      decode_errors = 0;
      draining = false;
      stopping = Atomic.make false;
      io_exit = Atomic.make false;
      io_domain = None;
      backend_name = "poll";
    }
  in
  (* the batcher can only have replies to flush once the io domain
     (spawned below) admits requests, so the knot ties safely here *)
  t_ref := Some t;
  t.io_domain <- Some (Domain.spawn (fun () -> io_loop t));
  (* a scheduler drain (Sched.shutdown / drain_all, e.g. from a signal
     handler) stops the server first, while runs are still accepted *)
  Runtime.Sched.on_shutdown sched (fun () -> stop t);
  t

let start ~sched ~addr ?queue_capacity ?max_batch ?window_us ?cache_capacity
    ?max_conns () =
  let fd, bound, unlink = bind_listen addr in
  Unix.set_nonblock fd;
  make ~sched ~source:(Listener { fd; bound; unlink }) ?queue_capacity ?max_batch
    ?window_us ?cache_capacity ?max_conns ()

let start_adopted ~sched ~chan ?(on_drain = fun () -> ()) ?queue_capacity ?max_batch
    ?window_us ?cache_capacity ?max_conns () =
  Unix.set_nonblock chan;
  make ~sched ~source:(Adopt { chan; on_drain }) ?queue_capacity ?max_batch ?window_us
    ?cache_capacity ?max_conns ()

let bound_addr t =
  match t.source with
  | Listener { bound; _ } -> bound
  | Adopt _ -> invalid_arg "Serve.Server.bound_addr: adopted server has no listener"

let cache_stats t = Cache.stats t.cache
let open_conns t = Atomic.get t.conn_count
