(* Bounded LRU: Hashtbl + intrusive doubly-linked list, O(1) find /
   add / evict, one mutex (contention is two tiny critical sections
   per request; the io domain and the batcher's reply path are the
   only writers). *)

module P = Protocol

(* The cached value carries everything the reply needs: for SLA
   requests the chosen tier and certified bound replay along with the
   result, so a hit is byte-identical to the miss that populated it. *)
type value = {
  result : float array array;
  chosen : string option;
  bound : float option;
}

type node = {
  key : string;
  mutable value : value;
  mutable prev : node option;  (* toward MRU *)
  mutable next : node option;  (* toward LRU *)
}

type t = {
  cap : int;
  lock : Mutex.t;
  tbl : (string, node) Hashtbl.t;
  mutable mru : node option;
  mutable lru : node option;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  by_kind : (string, int ref * int ref) Hashtbl.t;  (* kind -> (hits, misses) *)
}

type kind_stats = { kind : string; k_hits : int; k_misses : int }

type stats = {
  hits : int;
  misses : int;
  size : int;
  evictions : int;
  by_kind : kind_stats list;
}

let hit_ctr = Obs.Metrics.counter "serve.cache_hit"
let miss_ctr = Obs.Metrics.counter "serve.cache_miss"

let create ~capacity =
  {
    cap = capacity;
    lock = Mutex.create ();
    tbl = Hashtbl.create (max 16 capacity);
    mru = None;
    lru = None;
    hits = 0;
    misses = 0;
    evictions = 0;
    by_kind = Hashtbl.create 16;
  }

let disabled = create ~capacity:0

let capacity t = t.cap

(* --- list surgery (lock held) --------------------------------------- *)

let unlink t n =
  (match n.prev with Some p -> p.next <- n.next | None -> t.mru <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> t.lru <- n.prev);
  n.prev <- None;
  n.next <- None

let push_mru t n =
  n.next <- t.mru;
  n.prev <- None;
  (match t.mru with Some m -> m.prev <- Some n | None -> t.lru <- Some n);
  t.mru <- Some n

(* --- keying --------------------------------------------------------- *)

(* Total operand elements worth hashing: the scalar ops have 1-2, and
   a short Sum/Dot still beats re-running an mf4 kernel.  Past this,
   key construction itself starts costing like the arithmetic. *)
let max_key_elements = 8

let cacheable_op = function
  | P.Add | P.Mul | P.Div | P.Sqrt | P.Exp | P.Log | P.Sin -> true
  | P.Dot | P.Axpy | P.Sum | P.Poly_eval | P.Program -> true
  | P.Stats -> false

(* The stats kind a request's traffic is attributed to; SLA-keyed
   entries are distinguishable from fixed-tier ones per op. *)
let kind_of_request (r : P.request) =
  match r.P.sla with
  | None -> P.op_name r.P.op
  | Some _ -> "sla:" ^ P.op_name r.P.op

let key_of_request (r : P.request) =
  if
    (not (cacheable_op r.P.op))
    || r.P.deadline_ms <> None
    || Array.length r.P.x + Array.length r.P.y + Array.length r.P.z
       > max_key_elements
  then None
  else begin
    let b = Buffer.create 96 in
    Buffer.add_string b (P.op_name r.P.op);
    Buffer.add_char b '/';
    Buffer.add_string b (P.tier_name r.P.tier);
    (* the SLA class is part of the identity: a loose-bound entry must
       never answer a tighter-bound request (and the operands below are
       the unpadded wire operands, so tier alone cannot disambiguate) *)
    (match r.P.sla with
    | None -> ()
    | Some q ->
        Buffer.add_string b "/sla";
        Buffer.add_string b (string_of_int q));
    List.iter
      (fun step ->
        Buffer.add_char b ';';
        Buffer.add_string b step)
      r.P.prog;
    let operand tag els =
      Buffer.add_char b tag;
      Array.iter
        (fun comps ->
          Buffer.add_char b '[';
          Array.iter
            (fun c ->
              Buffer.add_string b (P.float_to_wire c);
              Buffer.add_char b ',')
            comps)
        els
    in
    operand '|' r.P.x;
    operand '|' r.P.y;
    operand '|' r.P.z;
    Some (Buffer.contents b)
  end

(* --- operations ------------------------------------------------------ *)

let kind_cell (t : t) kind =
  match Hashtbl.find_opt t.by_kind kind with
  | Some cell -> cell
  | None ->
      let cell = (ref 0, ref 0) in
      Hashtbl.add t.by_kind kind cell;
      cell

let find ?(kind = "other") t key =
  if t.cap < 1 then None
  else begin
    Mutex.lock t.lock;
    let kh, km = kind_cell t kind in
    let r =
      match Hashtbl.find_opt t.tbl key with
      | Some n ->
          unlink t n;
          push_mru t n;
          t.hits <- t.hits + 1;
          incr kh;
          Some n.value
      | None ->
          t.misses <- t.misses + 1;
          incr km;
          None
    in
    Mutex.unlock t.lock;
    (match r with
    | Some _ -> Obs.Metrics.incr hit_ctr
    | None -> Obs.Metrics.incr miss_ctr);
    r
  end

let add t key value =
  if t.cap >= 1 then begin
    Mutex.lock t.lock;
    (match Hashtbl.find_opt t.tbl key with
    | Some n ->
        (* racing misses on the same key both insert; keep one node *)
        n.value <- value;
        unlink t n;
        push_mru t n
    | None ->
        if Hashtbl.length t.tbl >= t.cap then (
          match t.lru with
          | Some victim ->
              unlink t victim;
              Hashtbl.remove t.tbl victim.key;
              t.evictions <- t.evictions + 1
          | None -> ());
        let n = { key; value; prev = None; next = None } in
        Hashtbl.replace t.tbl key n;
        push_mru t n);
    Mutex.unlock t.lock
  end

let stats t =
  Mutex.lock t.lock;
  let by_kind =
    Hashtbl.fold
      (fun kind (kh, km) acc -> { kind; k_hits = !kh; k_misses = !km } :: acc)
      t.by_kind []
    |> List.sort (fun a b -> compare a.kind b.kind)
  in
  let s =
    { hits = t.hits; misses = t.misses; size = Hashtbl.length t.tbl;
      evictions = t.evictions; by_kind }
  in
  Mutex.unlock t.lock;
  s

let fold_lru f t init =
  Mutex.lock t.lock;
  let rec go acc = function
    | None -> acc
    | Some n -> go (f n.key acc) n.prev
  in
  let r = go init t.lru in
  Mutex.unlock t.lock;
  r
