(** Sharded multi-process serving: N forked server processes, one
    runtime each, behind a parent distributor.

    The parent owns the listening socket and runs a plain accept loop
    on a thread; every accepted connection is handed — descriptor and
    all — to one of the shard processes over a unix-domain socketpair
    using SCM_RIGHTS fd passing, then closed locally.  Each shard is a
    full {!Server} (its own {!Runtime.Sched}, io domain, batcher,
    cache) running {!Server.start_adopted} over its end of the pair.
    The protocol, batching, and arithmetic are untouched: a response
    from any shard is bitwise what the single-process server returns.

    {b Fork discipline.}  OCaml 5 forbids [Unix.fork] in any process
    that has ever spawned a domain.  The parent therefore never
    creates domains — its distributor is a systhread — and every shard
    is forked {e before} the child spawns its scheduler.  This also
    keeps restart legal: when a shard dies (crash, kill), the parent
    detects it via [waitpid WNOHANG], forks a replacement, and
    re-routes; connections that lived on the dead shard are lost (the
    client sees EOF and reconnects), connections on other shards are
    undisturbed.  A shard that dies within a second of its fork is
    treated as crash-looping: its re-fork is delayed by an exponential
    per-slot backoff (50ms doubling to a 5s cap, reset by any
    incarnation that survives its first second), so a poisoned shard
    cannot pin the distributor in a fork storm.

    Balancing is round-robin by default; [`Hash] instead buckets by
    the client's peer address so a reconnecting client tends to land
    on the same shard (and its warm cache).  Unix-domain clients
    usually have anonymous peer addresses, which hash to one bucket —
    use [`Hash] only for TCP.

    {!stop} drains gracefully: the listener closes (no new
    connections), then each shard's channel closes — the shard's drain
    signal — and each child finishes every accepted request, answers
    stragglers [Shed "closed"], and exits; the parent reaps them all. *)

type balance = [ `Round_robin | `Hash ]

type t

val start :
  addr:Server.addr ->
  shards:int ->
  ?balance:balance ->
  ?restart:bool ->
  ?sched_workers:int ->
  ?queue_capacity:int ->
  ?max_batch:int ->
  ?window_us:float ->
  ?cache_capacity:int ->
  ?max_conns:int ->
  unit ->
  t
(** Bind [addr], fork [shards] server processes, and start the
    distributor thread.  Must be called from a process that has never
    spawned a domain ([Unix.fork] would refuse otherwise).  [restart]
    (default [true]) re-forks shards that die; [sched_workers] is each
    shard's scheduler size (default 1); the remaining options are
    passed through to each shard's {!Server.start_adopted}.

    Raises [Invalid_argument] if [shards < 1]. *)

val bound_addr : t -> Unix.sockaddr

val shards : t -> int

val pids : t -> int list
(** Live shard process ids, in shard order. *)

type stats = {
  dispatched : int array;  (** connections handed to each shard slot *)
  restarts : int;  (** shard deaths detected and re-forked *)
  refused : int;  (** accepted then closed: no live shard to take it *)
  backoff_delays : int;
      (** re-forks deferred because the previous incarnation died
          within a second of its fork (crash-loop storm cap) *)
}

val stats : t -> stats

val stop : t -> unit
(** Graceful drain of the whole fleet (see above).  Idempotent. *)
