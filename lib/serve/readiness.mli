(** Readiness abstraction for the serving layer's event loops.

    A small capability interface over the platform's readiness
    primitive.  The default backend is [poll(2)] (via a C stub that
    releases the runtime lock while sleeping), which has no
    [FD_SETSIZE] ceiling: descriptors with values far above 1024
    register and wait like any other, so one server process can hold
    thousands of connections.  A [Unix.select] backend is kept for
    comparison and as the portability fallback — it inherits select's
    hard cap and {!add} raises [Invalid_argument] past it, which is
    exactly the bug class the poll backend exists to remove.

    The registration set is edge-agnostic level-triggered dispatch:
    {!wait} reports every registered descriptor currently ready, and
    the caller is expected to read/write until [EAGAIN] (the server's
    loops do), so a spurious or coalesced wakeup is always harmless. *)

type t

type backend = Poll | Select

val create : ?backend:backend -> unit -> t
(** Default backend: [Poll], unless [FPAN_READINESS=select] is set in
    the environment (observability escape hatch, used by tests to pin
    a backend). *)

val backend : t -> backend
val backend_name : t -> string

type event = {
  fd : Unix.file_descr;
  readable : bool;
  writable : bool;
  hangup : bool;  (** peer hung up ([POLLHUP]); treat as readable EOF *)
  error : bool;  (** [POLLERR]/[POLLNVAL]; drop the descriptor *)
}

val add : t -> Unix.file_descr -> read:bool -> write:bool -> unit
(** Register a descriptor.  [Invalid_argument] if already registered,
    or (select backend only) if the descriptor value is at or above
    the select ceiling. *)

val modify : t -> Unix.file_descr -> read:bool -> write:bool -> unit
(** Change the interest set of a registered descriptor.
    [Invalid_argument] if not registered. *)

val remove : t -> Unix.file_descr -> unit
(** Deregister.  Unknown descriptors are ignored (removing a conn that
    was already swept must be idempotent). *)

val mem : t -> Unix.file_descr -> bool
val registered : t -> int

val wait : t -> timeout_ms:int -> event list
(** Block until at least one registered descriptor is ready, the
    timeout lapses ([[]]), or a signal arrives ([[]] on [EINTR] —
    callers loop).  [timeout_ms < 0] waits forever.  Events for
    descriptors removed since the last wait are never reported. *)

(** {1 Single-descriptor helpers} (no registration set) *)

val poll1 : Unix.file_descr -> read:bool -> write:bool -> timeout_ms:int -> event option
(** One-shot readiness wait on one descriptor; [None] on timeout or
    [EINTR].  Works on descriptors above the select ceiling — the
    serving layer uses it everywhere it previously leaned on
    single-descriptor [Unix.select] (write-stall waits, doorbells). *)

val wait_readable : Unix.file_descr -> timeout_ms:int -> bool
val wait_writable : Unix.file_descr -> timeout_ms:int -> bool
