(* Bounded MPSC queue with a self-pipe doorbell.  Producers ring the
   pipe when a push makes the queue non-empty; the consumer polls it,
   which is the only way to get a timed wait (Condition has no
   timed variant).  The pipe is a doorbell, not a counter: both ends
   are non-blocking, a full pipe on the producer side is fine (the
   bell is already ringing), and the consumer drains whatever bytes
   are there before re-checking.

   Ringing only on the empty->nonempty transition keeps the bell
   syscall off the steady-state push path: the consumer only ever
   blocks after draining the queue to empty (take_now stops early only
   when the queue is empty), so a push onto a non-empty queue can
   never be the wake-up a sleeping consumer is waiting for.  A stale
   byte from a push the consumer raced past just causes one spurious
   wake. *)

let depth_gauge = Obs.Metrics.gauge "serve.queue_depth"

type 'a t = {
  capacity : int;
  lock : Mutex.t;
  items : 'a Queue.t;
  mutable closed : bool;
  mutable max_depth : int;
  bell_r : Unix.file_descr;
  bell_w : Unix.file_descr;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Serve.Admission.create: capacity < 1";
  let bell_r, bell_w = Unix.pipe ~cloexec:true () in
  Unix.set_nonblock bell_r;
  Unix.set_nonblock bell_w;
  {
    capacity;
    lock = Mutex.create ();
    items = Queue.create ();
    closed = false;
    max_depth = 0;
    bell_r;
    bell_w;
  }

let capacity t = t.capacity

let ring t =
  try ignore (Unix.write t.bell_w (Bytes.make 1 '!') 0 1)
  with Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) -> ()

let drain_bell t =
  let buf = Bytes.create 256 in
  let rec go () =
    match Unix.read t.bell_r buf 0 256 with
    | 256 -> go ()
    | _ -> ()
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) -> ()
  in
  go ()

let push t v =
  Mutex.lock t.lock;
  let r =
    if t.closed then `Closed
    else if Queue.length t.items >= t.capacity then `Full
    else begin
      Queue.add v t.items;
      let d = Queue.length t.items in
      if d > t.max_depth then t.max_depth <- d;
      Obs.Metrics.set depth_gauge (float_of_int d);
      if d = 1 then `Ok_ring else `Ok
    end
  in
  Mutex.unlock t.lock;
  match r with
  | `Ok_ring ->
      ring t;
      `Ok
  | (`Ok | `Full | `Closed) as r -> r

let close t =
  Mutex.lock t.lock;
  t.closed <- true;
  Mutex.unlock t.lock;
  ring t

let is_closed t =
  Mutex.lock t.lock;
  let c = t.closed in
  Mutex.unlock t.lock;
  c

let depth t =
  Mutex.lock t.lock;
  let d = Queue.length t.items in
  Mutex.unlock t.lock;
  d

let max_depth t =
  Mutex.lock t.lock;
  let d = t.max_depth in
  Mutex.unlock t.lock;
  d

(* Pop up to [room] items right now.  Returns them newest-last. *)
let take_now t room =
  Mutex.lock t.lock;
  let out = ref [] in
  let k = ref 0 in
  while !k < room && not (Queue.is_empty t.items) do
    out := Queue.pop t.items :: !out;
    incr k
  done;
  if !k > 0 then Obs.Metrics.set depth_gauge (float_of_int (Queue.length t.items));
  let closed = t.closed in
  Mutex.unlock t.lock;
  (List.rev !out, closed)

let wait_readable t timeout_s =
  let timeout_ms =
    if timeout_s < 0.0 then -1 else int_of_float (Float.ceil (timeout_s *. 1e3))
  in
  if Readiness.wait_readable t.bell_r ~timeout_ms then drain_bell t

let pop_batch t ~max ~window_ns =
  let max = if max < 1 then 1 else max in
  let window_ns = Int64.to_float window_ns in
  let rec fill acc got deadline_ns =
    if got >= max then List.concat (List.rev acc)
    else begin
      let rem_ns = deadline_ns -. Obs.Clock.now_ns () in
      if rem_ns <= 0.0 then List.concat (List.rev acc)
      else begin
        wait_readable t (rem_ns *. 1e-9);
        let items, closed = take_now t (max - got) in
        let got = got + List.length items in
        let acc = if items = [] then acc else items :: acc in
        if closed && items = [] then List.concat (List.rev acc)
        else fill acc got deadline_ns
      end
    end
  in
  let rec first () =
    let items, closed = take_now t max in
    match items with
    | [] ->
        if closed then []
        else begin
          wait_readable t (-1.0);
          first ()
        end
    | _ ->
        let got = List.length items in
        if got >= max || window_ns <= 0.0 then items
        else fill [ items ] got (Obs.Clock.now_ns () +. window_ns)
  in
  first ()
