(* Bounded MPSC queue with a self-pipe doorbell and priority
   displacement.  Producers ring the pipe when a push makes the queue
   non-empty; the consumer polls it, which is the only way to get a
   timed wait (Condition has no timed variant).  The pipe is a
   doorbell, not a counter: both ends are non-blocking, a full pipe on
   the producer side is fine (the bell is already ringing), and the
   consumer drains whatever bytes are there before re-checking.

   Ringing only on the empty->nonempty transition keeps the bell
   syscall off the steady-state push path: the consumer only ever
   blocks after draining the queue to empty (take_now stops early only
   when the queue is empty), so a push onto a non-empty queue can
   never be the wake-up a sleeping consumer is waiting for.  A stale
   byte from a push the consumer raced past just causes one spurious
   wake.

   Priority displacement is the overload-degradation policy: a push
   into a full queue may evict the oldest strictly-lower-priority
   entry instead of refusing (`Displaced), so cheap-SLA (low-q) work
   is shed before high-q work.  Entries live in an intrusive doubly
   linked list — FIFO push/pop as before, plus O(capacity) victim
   scan, which only runs on the overload path where a shed syscall
   round-trip dwarfs it.  Pushes without a priority all tie at 0 and
   can never displace each other, so existing callers keep the plain
   full-means-`Full behavior. *)

let depth_gauge = Obs.Metrics.gauge "serve.queue_depth"

type 'a node = {
  v : 'a;
  prio : int;
  mutable prev : 'a node option;
  mutable next : 'a node option;
}

type 'a t = {
  capacity : int;
  lock : Mutex.t;
  mutable head : 'a node option;  (* oldest *)
  mutable tail : 'a node option;  (* newest *)
  mutable len : int;
  mutable closed : bool;
  mutable max_depth : int;
  mutable displaced : int;
  bell_r : Unix.file_descr;
  bell_w : Unix.file_descr;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Serve.Admission.create: capacity < 1";
  let bell_r, bell_w = Unix.pipe ~cloexec:true () in
  Unix.set_nonblock bell_r;
  Unix.set_nonblock bell_w;
  {
    capacity;
    lock = Mutex.create ();
    head = None;
    tail = None;
    len = 0;
    closed = false;
    max_depth = 0;
    displaced = 0;
    bell_r;
    bell_w;
  }

let capacity t = t.capacity

(* lock held *)
let append t v prio =
  let n = { v; prio; prev = t.tail; next = None } in
  (match t.tail with
  | Some tl -> tl.next <- Some n
  | None -> t.head <- Some n);
  t.tail <- Some n;
  t.len <- t.len + 1

(* lock held *)
let unlink t n =
  (match n.prev with Some p -> p.next <- n.next | None -> t.head <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> t.tail <- n.prev);
  n.prev <- None;
  n.next <- None;
  t.len <- t.len - 1

(* lock held; oldest node with the minimal priority, so ties shed in
   arrival order *)
let min_prio_node t =
  let rec go best = function
    | None -> best
    | Some n ->
        let best =
          match best with
          | Some b when b.prio <= n.prio -> best
          | _ -> Some n
        in
        go best n.next
  in
  go None t.head

let ring t =
  try ignore (Unix.write t.bell_w (Bytes.make 1 '!') 0 1)
  with Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) -> ()

let drain_bell t =
  let buf = Bytes.create 256 in
  let rec go () =
    match Unix.read t.bell_r buf 0 256 with
    | 256 -> go ()
    | _ -> ()
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) -> ()
  in
  go ()

let push ?(priority = 0) t v =
  Mutex.lock t.lock;
  let r =
    if t.closed then `Closed
    else if t.len >= t.capacity then begin
      match min_prio_node t with
      | Some victim when victim.prio < priority ->
          unlink t victim;
          append t v priority;
          t.displaced <- t.displaced + 1;
          `Displaced victim.v
      | _ -> `Full
    end
    else begin
      append t v priority;
      if t.len > t.max_depth then t.max_depth <- t.len;
      Obs.Metrics.set depth_gauge (float_of_int t.len);
      if t.len = 1 then `Ok_ring else `Ok
    end
  in
  Mutex.unlock t.lock;
  match r with
  | `Ok_ring ->
      ring t;
      `Ok
  | (`Ok | `Full | `Closed | `Displaced _) as r -> r

let close t =
  Mutex.lock t.lock;
  t.closed <- true;
  Mutex.unlock t.lock;
  ring t

(* Only once producers and the consumer are both done with the queue:
   a pusher racing destroy would ring a dead (or worse, reused)
   descriptor. *)
let destroy t =
  close t;
  (try Unix.close t.bell_r with _ -> ());
  try Unix.close t.bell_w with _ -> ()

let is_closed t =
  Mutex.lock t.lock;
  let c = t.closed in
  Mutex.unlock t.lock;
  c

let depth t =
  Mutex.lock t.lock;
  let d = t.len in
  Mutex.unlock t.lock;
  d

let max_depth t =
  Mutex.lock t.lock;
  let d = t.max_depth in
  Mutex.unlock t.lock;
  d

let displaced t =
  Mutex.lock t.lock;
  let d = t.displaced in
  Mutex.unlock t.lock;
  d

(* Pop up to [room] items right now.  Returns them newest-last. *)
let take_now t room =
  Mutex.lock t.lock;
  let out = ref [] in
  let k = ref 0 in
  while
    !k < room
    &&
    match t.head with
    | None -> false
    | Some n ->
        unlink t n;
        out := n.v :: !out;
        incr k;
        true
  do
    ()
  done;
  if !k > 0 then Obs.Metrics.set depth_gauge (float_of_int t.len);
  let closed = t.closed in
  Mutex.unlock t.lock;
  (List.rev !out, closed)

let wait_readable t timeout_s =
  let timeout_ms =
    if timeout_s < 0.0 then -1 else int_of_float (Float.ceil (timeout_s *. 1e3))
  in
  if Readiness.wait_readable t.bell_r ~timeout_ms then drain_bell t

let pop_batch t ~max ~window_ns =
  let max = if max < 1 then 1 else max in
  let window_ns = Int64.to_float window_ns in
  let rec fill acc got deadline_ns =
    if got >= max then List.concat (List.rev acc)
    else begin
      let rem_ns = deadline_ns -. Obs.Clock.now_ns () in
      if rem_ns <= 0.0 then List.concat (List.rev acc)
      else begin
        wait_readable t (rem_ns *. 1e-9);
        let items, closed = take_now t (max - got) in
        let got = got + List.length items in
        let acc = if items = [] then acc else items :: acc in
        if closed && items = [] then List.concat (List.rev acc)
        else fill acc got deadline_ns
      end
    end
  in
  let rec first () =
    let items, closed = take_now t max in
    match items with
    | [] ->
        if closed then []
        else begin
          wait_readable t (-1.0);
          first ()
        end
    | _ ->
        let got = List.length items in
        if got >= max || window_ns <= 0.0 then items
        else fill [ items ] got (Obs.Clock.now_ns () +. window_ns)
  in
  first ()
