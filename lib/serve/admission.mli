(** Bounded admission queue between the server's io loop and the
    micro-batcher.

    Multi-producer (any io/accept context may push), single-consumer
    (the batcher domain).  The queue never exceeds its capacity:
    {!push} refuses with [`Full] instead of blocking or silently
    dropping, so overload always turns into an explicit shed response.

    The consumer side supports a timed window wait — OCaml's
    [Condition] has no timed variant, so the queue carries a self-pipe
    doorbell: producers ring it after every push and [pop_batch] waits
    on it with [Unix.select], which gives both the blocking
    wait-for-first-item and the bounded wait-to-fill-the-batch. *)

type 'a t

val create : capacity:int -> 'a t
(** [Invalid_argument] unless [capacity >= 1]. *)

val capacity : 'a t -> int

val push : ?priority:int -> 'a t -> 'a -> [ `Ok | `Full | `Closed | `Displaced of 'a ]
(** Push with an optional priority (default 0; higher keeps longer).
    Into a full queue, a push displaces the {e oldest
    strictly-lower-priority} entry if one exists — the evicted value
    comes back as [`Displaced v] and the caller must shed it
    explicitly — and refuses with [`Full] otherwise.  Pushes that
    never pass [?priority] all tie at 0, so they can never displace
    each other and keep the historical full-means-[`Full] behavior. *)

val pop_batch : 'a t -> max:int -> window_ns:int64 -> 'a list
(** Block until at least one item is available (or the queue is closed
    and drained — then [[]]).  After the first item, keep popping up to
    [max] items, waiting at most [window_ns] measured from the first
    pop for stragglers.  [window_ns = 0L] or [max = 1] degenerates to
    batch-size-1 serving. *)

val close : 'a t -> unit
(** Producers get [`Closed] from now on; the consumer drains what was
    already admitted, then [pop_batch] returns [[]].  Idempotent. *)

val destroy : 'a t -> unit
(** {!close}, then release the doorbell descriptors.  Only legal once
    no producer or consumer can touch the queue again (the server
    calls it after joining the batcher and io domains); the chaos
    campaign's fd-leak invariant is what keeps everyone honest. *)

val is_closed : 'a t -> bool

val depth : 'a t -> int
(** Current occupancy; also mirrored to the [serve.queue_depth]
    gauge. *)

val max_depth : 'a t -> int
(** High-water mark of {!depth} since {!create}. *)

val displaced : 'a t -> int
(** Entries evicted by higher-priority pushes since {!create}. *)
