(** Bounded admission queue between the server's io loop and the
    micro-batcher.

    Multi-producer (any io/accept context may push), single-consumer
    (the batcher domain).  The queue never exceeds its capacity:
    {!push} refuses with [`Full] instead of blocking or silently
    dropping, so overload always turns into an explicit shed response.

    The consumer side supports a timed window wait — OCaml's
    [Condition] has no timed variant, so the queue carries a self-pipe
    doorbell: producers ring it after every push and [pop_batch] waits
    on it with [Unix.select], which gives both the blocking
    wait-for-first-item and the bounded wait-to-fill-the-batch. *)

type 'a t

val create : capacity:int -> 'a t
(** [Invalid_argument] unless [capacity >= 1]. *)

val capacity : 'a t -> int

val push : 'a t -> 'a -> [ `Ok | `Full | `Closed ]

val pop_batch : 'a t -> max:int -> window_ns:int64 -> 'a list
(** Block until at least one item is available (or the queue is closed
    and drained — then [[]]).  After the first item, keep popping up to
    [max] items, waiting at most [window_ns] measured from the first
    pop for stragglers.  [window_ns = 0L] or [max = 1] degenerates to
    batch-size-1 serving. *)

val close : 'a t -> unit
(** Producers get [`Closed] from now on; the consumer drains what was
    already admitted, then [pop_batch] returns [[]].  Idempotent. *)

val is_closed : 'a t -> bool

val depth : 'a t -> int
(** Current occupancy; also mirrored to the [serve.queue_depth]
    gauge. *)

val max_depth : 'a t -> int
(** High-water mark of {!depth} since {!create}. *)
