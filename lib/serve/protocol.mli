(** Wire protocol of the batched evaluation service: length-prefixed
    JSON frames, schema [fpan-serve/1] — or [fpan-serve/2] for frames
    carrying the adaptive-precision fields ([sla] on requests,
    [chosen] / [bound] on results).

    A frame is a 4-byte big-endian payload length followed by one JSON
    document.  Requests name an operation, a precision tier, and
    operands; operands and results travel as C99 hexadecimal float
    component strings (["0x1.8p+1"]) — the only JSON transport that is
    exact for every double including the infinities, signed zero, and
    subnormals ({!Obs.Json_out} numbers turn non-finite values into
    [null]).  NaNs carry their exact bit pattern (["nan:7ff8..."]),
    since ["%h"] collapses every payload to ["nan"].

    The frame shapes are declared in {!Obs.Schemas.serve_request} /
    {!Obs.Schemas.serve_response}; [request_of_json] validates inbound
    documents against the declared schema before decoding, so a frame
    with unknown keys, wrong types, or duplicate keys (rejected by the
    parser itself) never reaches the execution path. *)

type tier = Mf2 | Mf3 | Mf4

val tier_terms : tier -> int
val tier_name : tier -> string
val tier_of_name : string -> tier option

type op =
  | Add | Mul | Div | Sqrt  (** binary/unary scalar arithmetic *)
  | Exp | Log | Sin  (** unary elementary functions *)
  | Dot  (** x · y over element vectors *)
  | Axpy
      (** [y.(i) <- alpha * x.(i) + y.(i)]; operand [y] carries [alpha]
          as its first element followed by the vector, so it is one
          element longer than [x]. *)
  | Sum  (** index-order fold of x *)
  | Poly_eval  (** Horner: coefficients x (low degree first) at point y *)
  | Program
      (** A fused multi-op chain named by [prog] (one of {!programs}),
          executed as a single-pass wire program — bitwise the op-by-op
          composition.  [["mul"; "sum"]] takes x and y (same length)
          and returns the scalar sum of the products; [["axpy"; "dot"]]
          takes x, y = alpha followed by a vector of x's length, and z
          of x's length, returning the dot of the updated y against z
          followed by the updated y itself; [["sum"]] is the plain
          fold of x. *)
  | Stats  (** server introspection; no operands *)

val op_name : op -> string
val op_of_name : string -> op option
val compute_ops : op list
(** Every operation except [Stats]. *)

val arity : op -> int
(** Operand vectors consumed: 0 ([Stats]), 1 ([Sqrt], [Exp], ...), 2. *)

val programs : string list list
(** The fused chains a [Program] request may name. *)

val program_name : string list -> string
(** Display name of a chain: steps joined with [";"]. *)

type request = {
  id : int;  (** client-chosen correlation id, echoed in the response *)
  op : op;
  tier : tier;
      (** For SLA requests (decoded from an [fpan-serve/2] frame that
          carries [sla] instead of [tier]): the derived starting tier
          of the escalation ladder — the cheapest tier holding the
          operands without truncation. *)
  sla : int option;
      (** Accuracy SLA exponent [q]: the certified absolute error of
          the response must be at most [Certify.scale * 2^-q].  Only
          the certifiable ops qualify ({!Adaptive.Sla.of_wire});
          mutually exclusive with an explicit wire [tier]. *)
  deadline_ms : float option;  (** serving budget from arrival; shed after *)
  prog : string list;  (** fused chain for [Program]; empty otherwise *)
  x : float array array;  (** elements x components *)
  y : float array array;
  z : float array array;  (** third operand of [["axpy"; "dot"]]; empty otherwise *)
}

type response =
  | Result of {
      id : int;
      result : float array array;
      batch : int;
      chosen : string option;
          (** SLA requests: the rung that met the budget — ["mf2"],
              ["mf3"], ["mf4"], or ["bigfloat"]. *)
      bound : float option;
          (** SLA requests: the certified absolute error bound. *)
    }
      (** [batch] is the size of the micro-batch the request executed in. *)
  | Shed of { id : int; reason : string }
      (** Explicit refusal: ["queue_full"], ["deadline"], or ["closed"]. *)
  | Failed of { id : int; error : string }
  | Stats_reply of { id : int; stats : Obs.Json_out.t }

val response_id : response -> int

val float_to_wire : float -> string
(** The exact hex-float transport encoding of one component
    (["0x1.8p+1"], ["nan:7ff8000000000001"], ["-0x0p+0"], ...).  One
    string per double bit pattern — also what the response cache keys
    operands on, so distinct NaN payloads and [0.0] vs [-0.0] never
    collapse. *)

val float_of_wire : string -> float option

(** {1 JSON encoding} *)

val request_to_json : request -> Obs.Json_out.t
val request_of_json : Obs.Json_out.t -> (request, string) result
val response_to_json : response -> Obs.Json_out.t
val response_of_json : Obs.Json_out.t -> (response, string) result

(** {1 Framing} *)

val ignore_sigpipe : unit -> unit
(** Set SIGPIPE to be ignored process-wide so a write into a socket the
    peer abruptly closed raises [Unix_error (EPIPE, ...)] — handled by
    dropping the connection — instead of killing the whole process.
    Called by {!Server.start} and {!Client.connect}; a no-op on
    platforms without the signal. *)

val max_frame : int
(** Refuse frames above this payload size (16 MiB). *)

val frame_of_string : string -> string
(** Prefix with the 4-byte big-endian length. *)

val write_frame : Unix.file_descr -> string -> unit
(** Write one complete frame (retrying partial writes). *)

val read_frame : Unix.file_descr -> string option
(** Blocking read of one complete frame; [None] on orderly EOF at a
    frame boundary.  Raises [Failure] on truncation or an oversized
    length prefix. *)

(** {1 Incremental deframing} (for the server's event loop) *)

type deframer

val deframer : unit -> deframer

val feed : deframer -> bytes -> int -> (string list, string) result
(** Append [len] bytes just read into the deframer's buffer and return
    the complete frames now available, in arrival order.  [Error] on a
    malformed length prefix (connection should be dropped). *)
