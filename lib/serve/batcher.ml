(* Micro-batcher domain: pop — shed expired — group by (op, tier,
   sla?) — execute each group as one batched kernel call — scatter
   replies.

   Bitwise discipline: every op either runs through the planar Batch
   kernels (whose results are bitwise the scalar loop — the PR-1
   obligation) or runs the same accumulation order as eval_one, so a
   served response never differs from the scalar path by a single
   bit, batched or not.

   SLA cohorts: requests carrying an accuracy SLA group by (op,
   starting tier) and climb the escalation ladder together — the whole
   pending subset is evaluated per tier through the same batched
   kernels, each element is certified individually, and only the
   failing subset (a per-element escalation mask, kept as an index
   list) moves to the next tier.  Results at an element's finally-
   chosen tier are therefore bitwise what a fixed-tier request with
   the zero-padded operands would have returned. *)

module P = Protocol
module A = Adaptive

type entry = {
  req : P.request;
  arrival_ns : float;
  reply : P.response -> unit;
}

type stats = {
  batches : int;
  completed : int;
  shed_deadline : int;
  errors : int;
  histogram : (int * int) list;
  sla_requests : int;
  sla_escalations : int;  (* total rungs climbed past starting tiers *)
  sla_chosen : (string * int) list;  (* escalation histogram: tier -> count *)
}

(* --- per-tier execution --------------------------------------------- *)

module Exec (M : Multifloat.Ops.S) (V : Multifloat.Batch.V with type elt = M.t) =
struct
  module E = Multifloat.Elementary.Make (M)
  module Poly = Multifloat.Poly.Make (M)

  let elt c = M.of_components c
  let comps e = M.components e

  (* Scalar reference path: plain scalar kernels, index order. *)
  let eval_one (r : P.request) : float array array =
    let x i = elt r.x.(i) in
    let y i = elt r.y.(i) in
    let one v = [| comps v |] in
    match r.op with
    | P.Add -> one (M.add (x 0) (y 0))
    | P.Mul -> one (M.mul (x 0) (y 0))
    | P.Div -> one (M.div (x 0) (y 0))
    | P.Sqrt -> one (M.sqrt (x 0))
    | P.Exp -> one (E.exp (x 0))
    | P.Log -> one (E.log (x 0))
    | P.Sin -> one (E.sin (x 0))
    | P.Dot ->
        let acc = ref M.zero in
        for i = 0 to Array.length r.x - 1 do
          acc := M.add !acc (M.mul (x i) (y i))
        done;
        one !acc
    | P.Axpy ->
        let alpha = y 0 in
        Array.init (Array.length r.x) (fun i ->
            comps (M.add (M.mul alpha (x i)) (y (i + 1))))
    | P.Sum ->
        let acc = ref M.zero in
        for i = 0 to Array.length r.x - 1 do
          acc := M.add !acc (x i)
        done;
        one !acc
    | P.Poly_eval -> one (Poly.eval (Array.map elt r.x) (y 0))
    | P.Program -> (
        (* op-by-op scalar composition: the unfused reference the fused
           planar chains below are pinned against *)
        match r.prog with
        | [ "sum" ] ->
            let acc = ref M.zero in
            for i = 0 to Array.length r.x - 1 do
              acc := M.add !acc (x i)
            done;
            one !acc
        | [ "mul"; "sum" ] ->
            let n = Array.length r.x in
            let t = Array.init n (fun i -> M.mul (x i) (y i)) in
            let acc = ref M.zero in
            for i = 0 to n - 1 do
              acc := M.add !acc t.(i)
            done;
            one !acc
        | [ "axpy"; "dot" ] ->
            let n = Array.length r.x in
            let alpha = y 0 in
            let z i = elt r.z.(i) in
            let ynew = Array.init n (fun i -> M.add (M.mul alpha (x i)) (y (i + 1))) in
            let acc = ref M.zero in
            for i = 0 to n - 1 do
              acc := M.add !acc (M.mul ynew.(i) (z i))
            done;
            Array.append [| comps !acc |] (Array.map comps ynew)
        | chain ->
            invalid_arg
              (Printf.sprintf "Serve.Batcher: unsupported program %S" (P.program_name chain)))
    | P.Stats -> invalid_arg "Serve.Batcher: stats is not a compute op"

    (* Per-request evaluation on the batched path.  Vector ops go
       through the planar kernels; their accumulation orders match the
       scalar folds above by the Batch contract. *)
  let eval_vec (r : P.request) : float array array =
    match r.op with
    | P.Dot ->
        let n = Array.length r.x in
        let vx = V.create n and vy = V.create n in
        for i = 0 to n - 1 do
          V.set vx i (elt r.x.(i));
          V.set vy i (elt r.y.(i))
        done;
        [| comps (V.dot ~init:M.zero ~x:vx ~xoff:0 ~y:vy ~yoff:0 ~len:n) |]
    | P.Axpy ->
        let n = Array.length r.x in
        let vx = V.create n and vy = V.create n in
        for i = 0 to n - 1 do
          V.set vx i (elt r.x.(i));
          V.set vy i (elt r.y.(i + 1))
        done;
        V.axpy ~lo:0 ~hi:n ~alpha:(elt r.y.(0)) ~x:vx ~y:vy;
        Array.init n (fun i -> comps (V.get vy i))
    | P.Program -> (
        (* each chain runs as ONE fused wire-program kernel; the fused
           gate sequence is the op-by-op composition's by construction,
           so results match eval_one bitwise *)
        match r.prog with
        | [ "sum" ] ->
            let n = Array.length r.x in
            let vx = V.create n in
            for i = 0 to n - 1 do
              V.set vx i (elt r.x.(i))
            done;
            [| comps (V.sum ~init:M.zero ~x:vx ~xoff:0 ~len:n) |]
        | [ "mul"; "sum" ] ->
            let n = Array.length r.x in
            let vx = V.create n and vy = V.create n in
            for i = 0 to n - 1 do
              V.set vx i (elt r.x.(i));
              V.set vy i (elt r.y.(i))
            done;
            [| comps (V.dot ~init:M.zero ~x:vx ~xoff:0 ~y:vy ~yoff:0 ~len:n) |]
        | [ "axpy"; "dot" ] ->
            let n = Array.length r.x in
            let vx = V.create n and vy = V.create n and vz = V.create n in
            for i = 0 to n - 1 do
              V.set vx i (elt r.x.(i));
              V.set vy i (elt r.y.(i + 1));
              V.set vz i (elt r.z.(i))
            done;
            let acc = V.axpy_dot ~lo:0 ~hi:n ~alpha:(elt r.y.(0)) ~x:vx ~y:vy ~w:vz ~init:M.zero in
            Array.append [| comps acc |] (Array.init n (fun i -> comps (V.get vy i)))
        | _ -> eval_one r)
    | _ -> eval_one r

  (* One micro-batch of same-op same-tier requests -> one result per
     request.  Elementwise ops make a single batched kernel call over
     packed planes; the rest fan out per request. *)
  let eval_batch sched (reqs : P.request array) : float array array array =
    let n = Array.length reqs in
    let pack proj =
      let v = V.create n in
      for i = 0 to n - 1 do
        V.set v i (elt (proj reqs.(i)))
      done;
      v
    in
    let scatter dst = Array.init n (fun i -> [| comps (V.get dst i) |]) in
    match reqs.(0).P.op with
    | P.Add | P.Mul | P.Div ->
        let vx = pack (fun r -> r.P.x.(0)) in
        let vy = pack (fun r -> r.P.y.(0)) in
        let dst = V.create n in
        (match reqs.(0).P.op with
        | P.Add -> V.add ~dst vx vy
        | P.Mul -> V.mul ~dst vx vy
        | _ -> V.map2 ~dst M.div vx vy);
        scatter dst
    | P.Sqrt | P.Exp | P.Log | P.Sin ->
        let vx = pack (fun r -> r.P.x.(0)) in
        let dst = V.create n in
        let f =
          match reqs.(0).P.op with
          | P.Sqrt -> M.sqrt
          | P.Exp -> E.exp
          | P.Log -> E.log
          | _ -> E.sin
        in
        V.map ~dst f vx;
        scatter dst
    | _ ->
        let out = Array.make n [||] in
        Runtime.Sched.parallel_for sched ~lo:0 ~hi:n (fun lo hi ->
            for i = lo to hi - 1 do
              out.(i) <- eval_vec reqs.(i)
            done);
        out
end

module X2 = Exec (Multifloat.Mf2) (Multifloat.Batch.Mf2v)
module X3 = Exec (Multifloat.Mf3) (Multifloat.Batch.Mf3v)
module X4 = Exec (Multifloat.Mf4) (Multifloat.Batch.Mf4v)

let tier_of_terms = function
  | 2 -> P.Mf2
  | 3 -> P.Mf3
  | 4 -> P.Mf4
  | n -> invalid_arg (Printf.sprintf "Serve.Batcher.tier_of_terms: %d" n)

(* The fixed-tier twin of an SLA request at one ladder rung: operands
   zero-padded (exact) to the rung's width, the sla dropped.  This is
   the request whose direct evaluation the SLA path must match
   bitwise. *)
let pad_request ~terms (r : P.request) =
  let pad rows = Array.map (A.Sla.pad_element ~terms) rows in
  {
    r with
    P.tier = tier_of_terms terms;
    sla = None;
    x = pad r.P.x;
    y = pad r.P.y;
    z = pad r.P.z;
  }

let eval_fixed (r : P.request) =
  match r.P.tier with
  | P.Mf2 -> X2.eval_one r
  | P.Mf3 -> X3.eval_one r
  | P.Mf4 -> X4.eval_one r

let sla_inputs (r : P.request) = { A.Sla.x = r.P.x; y = r.P.y; z = r.P.z }

(* Scalar reference path for SLA requests: the full escalation ladder,
   each rung evaluated by this tier's own scalar kernels. *)
let eval_adaptive (r : P.request) : (A.Escalate.outcome, string) result =
  match r.P.sla with
  | None -> Error "request carries no sla"
  | Some q -> (
      match A.Sla.of_wire ~op:(P.op_name r.P.op) ~prog:r.P.prog with
      | None -> Error (Printf.sprintf "op %s cannot carry an sla" (P.op_name r.P.op))
      | Some op ->
          let eval ~terms (inp : A.Sla.inputs) =
            eval_fixed
              { r with P.tier = tier_of_terms terms; sla = None;
                x = inp.A.Sla.x; y = inp.A.Sla.y; z = inp.A.Sla.z }
          in
          try A.Escalate.run ~eval ~q ~op (sla_inputs r)
          with e -> Error (Printexc.to_string e))

let eval_one (r : P.request) =
  match (r.P.op, r.P.sla) with
  | P.Stats, _ -> Error "stats is not a compute op"
  | _, Some _ -> Result.map (fun (o : A.Escalate.outcome) -> o.result) (eval_adaptive r)
  | _, None -> (
      try Ok (eval_fixed r) with e -> Error (Printexc.to_string e))

let eval_batch sched tier (reqs : P.request array) =
  match tier with
  | P.Mf2 -> X2.eval_batch sched reqs
  | P.Mf3 -> X3.eval_batch sched reqs
  | P.Mf4 -> X4.eval_batch sched reqs

(* --- the batcher domain --------------------------------------------- *)

type t = {
  sched : Runtime.Sched.t;
  queue : entry Admission.t;
  max_batch : int;
  window_ns : int64;
  flush : unit -> unit;
  lock : Mutex.t;
  mutable batches : int;
  mutable completed : int;
  mutable shed_deadline : int;
  mutable errors : int;
  hist : (int, int ref) Hashtbl.t;
  mutable sla_requests : int;
  mutable sla_escalations : int;
  sla_chosen : (string, int ref) Hashtbl.t;
  mutable domain : unit Domain.t option;
}

let batch_hist = Obs.Metrics.hist ~lo_exp:0 ~hi_exp:12 "serve.batch_size"
let latency_hist = Obs.Metrics.hist "serve.latency_ns"
let completed_ctr = Obs.Metrics.counter "serve.completed"
let shed_deadline_ctr = Obs.Metrics.counter "serve.shed_deadline"
let sla_requests_ctr = Obs.Metrics.counter "serve.sla_requests"
let sla_escalations_ctr = Obs.Metrics.counter "serve.sla_escalations"

(* Per-rung serving latency: how much an SLA request pays for ending up
   at each tier (escalated elements accumulate every rung they visited). *)
let sla_latency_hists =
  List.map
    (fun name -> (name, Obs.Metrics.hist ("serve.sla.latency_ns." ^ name)))
    [ "mf2"; "mf3"; "mf4"; "bigfloat" ]

let expired now (e : entry) =
  match e.req.P.deadline_ms with
  | None -> false
  | Some d -> (now -. e.arrival_ns) *. 1e-6 > d

(* Group by (op, tier, sla?), preserving arrival order inside each
   group and first-appearance order across groups.  SLA requests form
   their own escalation cohorts per (op, starting tier); the concrete
   q may differ inside a cohort — certification is per element. *)
let group_entries entries =
  let tbl = Hashtbl.create 8 in
  let order = ref [] in
  List.iter
    (fun e ->
      let key = (e.req.P.op, e.req.P.tier, e.req.P.sla <> None) in
      match Hashtbl.find_opt tbl key with
      | Some acc -> acc := e :: !acc
      | None ->
          Hashtbl.add tbl key (ref [ e ]);
          order := key :: !order)
    entries;
  List.rev_map (fun key -> List.rev !(Hashtbl.find tbl key)) !order
  |> List.rev

let bump_batch t n =
  Mutex.lock t.lock;
  t.batches <- t.batches + 1;
  (match Hashtbl.find_opt t.hist n with
  | Some r -> incr r
  | None -> Hashtbl.add t.hist n (ref 1));
  Mutex.unlock t.lock;
  Obs.Metrics.observe batch_hist (float_of_int n)

(* counters move before the replies go out, so a client that reacts
   to its response instantly still sees itself in the stats *)
let run_fixed_group t (arr : entry array) =
  let n = Array.length arr in
  let tier = arr.(0).req.P.tier in
  match
    Runtime.Sched.run t.sched (fun () ->
        eval_batch t.sched tier (Array.map (fun e -> e.req) arr))
  with
  | results ->
      Mutex.lock t.lock;
      t.completed <- t.completed + n;
      Mutex.unlock t.lock;
      Obs.Metrics.add completed_ctr n;
      bump_batch t n;
      let now = Obs.Clock.now_ns () in
      Array.iteri
        (fun i e ->
          Obs.Metrics.observe latency_hist (now -. e.arrival_ns);
          e.reply
            (P.Result
               { id = e.req.P.id; result = results.(i); batch = n;
                 chosen = None; bound = None }))
        arr
  | exception e ->
      let msg = Printexc.to_string e in
      Mutex.lock t.lock;
      t.errors <- t.errors + n;
      Mutex.unlock t.lock;
      bump_batch t n;
      Array.iter (fun en -> en.reply (P.Failed { id = en.req.P.id; error = msg })) arr

(* One escalation cohort: evaluate the whole pending subset per tier
   through the same batched kernels a fixed-tier group uses, certify
   each element against its own q, carry only the failing indices to
   the next rung, finish stragglers in the bigfloat fallback. *)
let run_sla_group t (arr : entry array) =
  let n = Array.length arr in
  let start_terms = P.tier_terms arr.(0).req.P.tier in
  let results = Array.make n [||] in
  let bounds = Array.make n Float.infinity in
  let chosen = Array.make n "" in
  let failed = Array.make n None in
  let hops = Array.make n 0 in
  let meta =
    Array.map
      (fun e ->
        match (A.Sla.of_wire ~op:(P.op_name e.req.P.op) ~prog:e.req.P.prog, e.req.P.sla) with
        | Some op, Some q -> Some (op, q)
        | _ -> None)
      arr
  in
  let pending = ref [] in
  for i = n - 1 downto 0 do
    match meta.(i) with
    | Some _ -> pending := i :: !pending
    | None -> failed.(i) <- Some "not an sla-certifiable request"
  done;
  (try
     let terms = ref start_terms in
     while !pending <> [] && !terms <= A.Sla.max_terms do
       let last = !terms = A.Sla.max_terms in
       (* a rung only evaluates the requests it will certify: the
          static certificate needs no result, so a request whose
          static bound misses here hops to the next rung un-evaluated.
          The last rung evaluates everyone left — its ball certificate
          does need the result. *)
       let evals, skips =
         List.partition
           (fun i ->
             last
             ||
             let op, q = Option.get meta.(i) in
             let inp = sla_inputs arr.(i).req in
             A.Certify.static_bound op ~terms:!terms inp
             <= A.Certify.threshold ~q ~scale:(A.Certify.scale op inp))
           !pending
       in
       let idxs = Array.of_list evals in
       let still = ref [] in
       if Array.length idxs > 0 then begin
         let padded = Array.map (fun i -> pad_request ~terms:!terms arr.(i).req) idxs in
         let res =
           Runtime.Sched.run t.sched (fun () ->
               eval_batch t.sched (tier_of_terms !terms) padded)
         in
         Array.iteri
           (fun k i ->
             let op, q = Option.get meta.(i) in
             let bound, met =
               A.Certify.certify op ~terms:!terms ~q (sla_inputs arr.(i).req) res.(k)
             in
             if met then begin
               results.(i) <- res.(k);
               bounds.(i) <- bound;
               chosen.(i) <- A.Sla.tier_name_of_terms !terms
             end
             else begin
               hops.(i) <- hops.(i) + 1;
               still := i :: !still
             end)
           idxs
       end;
       List.iter (fun i -> hops.(i) <- hops.(i) + 1) skips;
       pending := List.merge compare (List.rev !still) skips;
       incr terms
     done;
     List.iter
       (fun i ->
         let op, _ = Option.get meta.(i) in
         let o =
           A.Escalate.bigfloat_outcome op (sla_inputs arr.(i).req)
             ~escalations:hops.(i)
         in
         results.(i) <- o.A.Escalate.result;
         bounds.(i) <- o.A.Escalate.bound;
         chosen.(i) <- o.A.Escalate.chosen)
       !pending;
     pending := []
   with e ->
     let msg = Printexc.to_string e in
     List.iter (fun i -> failed.(i) <- Some msg) !pending;
     pending := []);
  let n_fail = Array.fold_left (fun a f -> if f = None then a else a + 1) 0 failed in
  let n_ok = n - n_fail in
  let total_escal = Array.fold_left ( + ) 0 hops in
  Mutex.lock t.lock;
  t.completed <- t.completed + n_ok;
  t.errors <- t.errors + n_fail;
  t.sla_requests <- t.sla_requests + n;
  t.sla_escalations <- t.sla_escalations + total_escal;
  Array.iteri
    (fun i f ->
      if f = None then
        match Hashtbl.find_opt t.sla_chosen chosen.(i) with
        | Some r -> incr r
        | None -> Hashtbl.add t.sla_chosen chosen.(i) (ref 1))
    failed;
  Mutex.unlock t.lock;
  Obs.Metrics.add completed_ctr n_ok;
  Obs.Metrics.add sla_requests_ctr n;
  Obs.Metrics.add sla_escalations_ctr total_escal;
  bump_batch t n;
  let now = Obs.Clock.now_ns () in
  Array.iteri
    (fun i e ->
      match failed.(i) with
      | Some error -> e.reply (P.Failed { id = e.req.P.id; error })
      | None ->
          Obs.Metrics.observe latency_hist (now -. e.arrival_ns);
          (match List.assoc_opt chosen.(i) sla_latency_hists with
          | Some h -> Obs.Metrics.observe h (now -. e.arrival_ns)
          | None -> ());
          e.reply
            (P.Result
               { id = e.req.P.id; result = results.(i); batch = n;
                 chosen = Some chosen.(i); bound = Some bounds.(i) }))
    arr

let run_group t (group : entry list) =
  let arr = Array.of_list group in
  let tr = Obs.Trace.enabled () in
  if tr then Obs.Trace.begin_span Obs.Trace.Io "serve.batch";
  if arr.(0).req.P.sla <> None then run_sla_group t arr else run_fixed_group t arr;
  if tr then
    Obs.Trace.end_span_f ~arg_name:"batch" ~arg:(float_of_int (Array.length arr))

let cycle t entries =
  let now = Obs.Clock.now_ns () in
  let live, late = List.partition (fun e -> not (expired now e)) entries in
  List.iter
    (fun e ->
      e.reply (P.Shed { id = e.req.P.id; reason = "deadline" });
      Obs.Metrics.incr shed_deadline_ctr)
    late;
  let n_late = List.length late in
  if n_late > 0 then begin
    Mutex.lock t.lock;
    t.shed_deadline <- t.shed_deadline + n_late;
    Mutex.unlock t.lock
  end;
  List.iter (run_group t) (group_entries live);
  (* one flush per cycle: replies buffered per connection by the
     server go out in a single write each *)
  t.flush ()

let rec loop t =
  match Admission.pop_batch t.queue ~max:t.max_batch ~window_ns:t.window_ns with
  | [] -> ()
  | entries ->
      cycle t entries;
      loop t

let create ~sched ~queue ~max_batch ~window_ns ?(flush = fun () -> ()) () =
  if max_batch < 1 then invalid_arg "Serve.Batcher.create: max_batch < 1";
  let t =
    {
      sched;
      queue;
      max_batch;
      window_ns;
      flush;
      lock = Mutex.create ();
      batches = 0;
      completed = 0;
      shed_deadline = 0;
      errors = 0;
      hist = Hashtbl.create 16;
      sla_requests = 0;
      sla_escalations = 0;
      sla_chosen = Hashtbl.create 4;
      domain = None;
    }
  in
  t.domain <- Some (Domain.spawn (fun () -> loop t));
  t

let join t =
  match t.domain with
  | None -> ()
  | Some d ->
      Domain.join d;
      t.domain <- None

(* The escalation ladder's display order; unknown labels (never
   produced today) would sort last. *)
let tier_order = [ "mf2"; "mf3"; "mf4"; "bigfloat" ]

let tier_rank name =
  let rec go i = function
    | [] -> List.length tier_order
    | t :: rest -> if t = name then i else go (i + 1) rest
  in
  go 0 tier_order

let stats t =
  Mutex.lock t.lock;
  let histogram =
    Hashtbl.fold (fun size r acc -> (size, !r) :: acc) t.hist []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  let sla_chosen =
    Hashtbl.fold (fun name r acc -> (name, !r) :: acc) t.sla_chosen []
    |> List.sort (fun (a, _) (b, _) -> compare (tier_rank a, a) (tier_rank b, b))
  in
  let s =
    {
      batches = t.batches;
      completed = t.completed;
      shed_deadline = t.shed_deadline;
      errors = t.errors;
      histogram;
      sla_requests = t.sla_requests;
      sla_escalations = t.sla_escalations;
      sla_chosen;
    }
  in
  Mutex.unlock t.lock;
  s
