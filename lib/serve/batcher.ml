(* Micro-batcher domain: pop — shed expired — group by (op, tier) —
   execute each group as one batched kernel call — scatter replies.

   Bitwise discipline: every op either runs through the planar Batch
   kernels (whose results are bitwise the scalar loop — the PR-1
   obligation) or runs the same accumulation order as eval_one, so a
   served response never differs from the scalar path by a single
   bit, batched or not. *)

module P = Protocol

type entry = {
  req : P.request;
  arrival_ns : float;
  reply : P.response -> unit;
}

type stats = {
  batches : int;
  completed : int;
  shed_deadline : int;
  errors : int;
  histogram : (int * int) list;
}

(* --- per-tier execution --------------------------------------------- *)

module Exec (M : Multifloat.Ops.S) (V : Multifloat.Batch.V with type elt = M.t) =
struct
  module E = Multifloat.Elementary.Make (M)
  module Poly = Multifloat.Poly.Make (M)

  let elt c = M.of_components c
  let comps e = M.components e

  (* Scalar reference path: plain scalar kernels, index order. *)
  let eval_one (r : P.request) : float array array =
    let x i = elt r.x.(i) in
    let y i = elt r.y.(i) in
    let one v = [| comps v |] in
    match r.op with
    | P.Add -> one (M.add (x 0) (y 0))
    | P.Mul -> one (M.mul (x 0) (y 0))
    | P.Div -> one (M.div (x 0) (y 0))
    | P.Sqrt -> one (M.sqrt (x 0))
    | P.Exp -> one (E.exp (x 0))
    | P.Log -> one (E.log (x 0))
    | P.Sin -> one (E.sin (x 0))
    | P.Dot ->
        let acc = ref M.zero in
        for i = 0 to Array.length r.x - 1 do
          acc := M.add !acc (M.mul (x i) (y i))
        done;
        one !acc
    | P.Axpy ->
        let alpha = y 0 in
        Array.init (Array.length r.x) (fun i ->
            comps (M.add (M.mul alpha (x i)) (y (i + 1))))
    | P.Sum ->
        let acc = ref M.zero in
        for i = 0 to Array.length r.x - 1 do
          acc := M.add !acc (x i)
        done;
        one !acc
    | P.Poly_eval -> one (Poly.eval (Array.map elt r.x) (y 0))
    | P.Program -> (
        (* op-by-op scalar composition: the unfused reference the fused
           planar chains below are pinned against *)
        match r.prog with
        | [ "sum" ] ->
            let acc = ref M.zero in
            for i = 0 to Array.length r.x - 1 do
              acc := M.add !acc (x i)
            done;
            one !acc
        | [ "mul"; "sum" ] ->
            let n = Array.length r.x in
            let t = Array.init n (fun i -> M.mul (x i) (y i)) in
            let acc = ref M.zero in
            for i = 0 to n - 1 do
              acc := M.add !acc t.(i)
            done;
            one !acc
        | [ "axpy"; "dot" ] ->
            let n = Array.length r.x in
            let alpha = y 0 in
            let z i = elt r.z.(i) in
            let ynew = Array.init n (fun i -> M.add (M.mul alpha (x i)) (y (i + 1))) in
            let acc = ref M.zero in
            for i = 0 to n - 1 do
              acc := M.add !acc (M.mul ynew.(i) (z i))
            done;
            Array.append [| comps !acc |] (Array.map comps ynew)
        | chain ->
            invalid_arg
              (Printf.sprintf "Serve.Batcher: unsupported program %S" (P.program_name chain)))
    | P.Stats -> invalid_arg "Serve.Batcher: stats is not a compute op"

    (* Per-request evaluation on the batched path.  Vector ops go
       through the planar kernels; their accumulation orders match the
       scalar folds above by the Batch contract. *)
  let eval_vec (r : P.request) : float array array =
    match r.op with
    | P.Dot ->
        let n = Array.length r.x in
        let vx = V.create n and vy = V.create n in
        for i = 0 to n - 1 do
          V.set vx i (elt r.x.(i));
          V.set vy i (elt r.y.(i))
        done;
        [| comps (V.dot ~init:M.zero ~x:vx ~xoff:0 ~y:vy ~yoff:0 ~len:n) |]
    | P.Axpy ->
        let n = Array.length r.x in
        let vx = V.create n and vy = V.create n in
        for i = 0 to n - 1 do
          V.set vx i (elt r.x.(i));
          V.set vy i (elt r.y.(i + 1))
        done;
        V.axpy ~lo:0 ~hi:n ~alpha:(elt r.y.(0)) ~x:vx ~y:vy;
        Array.init n (fun i -> comps (V.get vy i))
    | P.Program -> (
        (* each chain runs as ONE fused wire-program kernel; the fused
           gate sequence is the op-by-op composition's by construction,
           so results match eval_one bitwise *)
        match r.prog with
        | [ "sum" ] ->
            let n = Array.length r.x in
            let vx = V.create n in
            for i = 0 to n - 1 do
              V.set vx i (elt r.x.(i))
            done;
            [| comps (V.sum ~init:M.zero ~x:vx ~xoff:0 ~len:n) |]
        | [ "mul"; "sum" ] ->
            let n = Array.length r.x in
            let vx = V.create n and vy = V.create n in
            for i = 0 to n - 1 do
              V.set vx i (elt r.x.(i));
              V.set vy i (elt r.y.(i))
            done;
            [| comps (V.dot ~init:M.zero ~x:vx ~xoff:0 ~y:vy ~yoff:0 ~len:n) |]
        | [ "axpy"; "dot" ] ->
            let n = Array.length r.x in
            let vx = V.create n and vy = V.create n and vz = V.create n in
            for i = 0 to n - 1 do
              V.set vx i (elt r.x.(i));
              V.set vy i (elt r.y.(i + 1));
              V.set vz i (elt r.z.(i))
            done;
            let acc = V.axpy_dot ~lo:0 ~hi:n ~alpha:(elt r.y.(0)) ~x:vx ~y:vy ~w:vz ~init:M.zero in
            Array.append [| comps acc |] (Array.init n (fun i -> comps (V.get vy i)))
        | _ -> eval_one r)
    | _ -> eval_one r

  (* One micro-batch of same-op same-tier requests -> one result per
     request.  Elementwise ops make a single batched kernel call over
     packed planes; the rest fan out per request. *)
  let eval_batch sched (reqs : P.request array) : float array array array =
    let n = Array.length reqs in
    let pack proj =
      let v = V.create n in
      for i = 0 to n - 1 do
        V.set v i (elt (proj reqs.(i)))
      done;
      v
    in
    let scatter dst = Array.init n (fun i -> [| comps (V.get dst i) |]) in
    match reqs.(0).P.op with
    | P.Add | P.Mul | P.Div ->
        let vx = pack (fun r -> r.P.x.(0)) in
        let vy = pack (fun r -> r.P.y.(0)) in
        let dst = V.create n in
        (match reqs.(0).P.op with
        | P.Add -> V.add ~dst vx vy
        | P.Mul -> V.mul ~dst vx vy
        | _ -> V.map2 ~dst M.div vx vy);
        scatter dst
    | P.Sqrt | P.Exp | P.Log | P.Sin ->
        let vx = pack (fun r -> r.P.x.(0)) in
        let dst = V.create n in
        let f =
          match reqs.(0).P.op with
          | P.Sqrt -> M.sqrt
          | P.Exp -> E.exp
          | P.Log -> E.log
          | _ -> E.sin
        in
        V.map ~dst f vx;
        scatter dst
    | _ ->
        let out = Array.make n [||] in
        Runtime.Sched.parallel_for sched ~lo:0 ~hi:n (fun lo hi ->
            for i = lo to hi - 1 do
              out.(i) <- eval_vec reqs.(i)
            done);
        out
end

module X2 = Exec (Multifloat.Mf2) (Multifloat.Batch.Mf2v)
module X3 = Exec (Multifloat.Mf3) (Multifloat.Batch.Mf3v)
module X4 = Exec (Multifloat.Mf4) (Multifloat.Batch.Mf4v)

let eval_one (r : P.request) =
  match r.P.op with
  | P.Stats -> Error "stats is not a compute op"
  | _ -> (
      try
        Ok
          (match r.P.tier with
          | P.Mf2 -> X2.eval_one r
          | P.Mf3 -> X3.eval_one r
          | P.Mf4 -> X4.eval_one r)
      with e -> Error (Printexc.to_string e))

let eval_batch sched tier (reqs : P.request array) =
  match tier with
  | P.Mf2 -> X2.eval_batch sched reqs
  | P.Mf3 -> X3.eval_batch sched reqs
  | P.Mf4 -> X4.eval_batch sched reqs

(* --- the batcher domain --------------------------------------------- *)

type t = {
  sched : Runtime.Sched.t;
  queue : entry Admission.t;
  max_batch : int;
  window_ns : int64;
  flush : unit -> unit;
  lock : Mutex.t;
  mutable batches : int;
  mutable completed : int;
  mutable shed_deadline : int;
  mutable errors : int;
  hist : (int, int ref) Hashtbl.t;
  mutable domain : unit Domain.t option;
}

let batch_hist = Obs.Metrics.hist ~lo_exp:0 ~hi_exp:12 "serve.batch_size"
let latency_hist = Obs.Metrics.hist "serve.latency_ns"
let completed_ctr = Obs.Metrics.counter "serve.completed"
let shed_deadline_ctr = Obs.Metrics.counter "serve.shed_deadline"

let expired now (e : entry) =
  match e.req.P.deadline_ms with
  | None -> false
  | Some d -> (now -. e.arrival_ns) *. 1e-6 > d

(* Group by (op, tier), preserving arrival order inside each group and
   first-appearance order across groups. *)
let group_entries entries =
  let tbl = Hashtbl.create 8 in
  let order = ref [] in
  List.iter
    (fun e ->
      let key = (e.req.P.op, e.req.P.tier) in
      match Hashtbl.find_opt tbl key with
      | Some acc -> acc := e :: !acc
      | None ->
          Hashtbl.add tbl key (ref [ e ]);
          order := key :: !order)
    entries;
  List.rev_map (fun key -> List.rev !(Hashtbl.find tbl key)) !order
  |> List.rev

let run_group t (group : entry list) =
  let arr = Array.of_list group in
  let n = Array.length arr in
  let tier = arr.(0).req.P.tier in
  let tr = Obs.Trace.enabled () in
  if tr then Obs.Trace.begin_span Obs.Trace.Io "serve.batch";
  let bump_batch () =
    Mutex.lock t.lock;
    t.batches <- t.batches + 1;
    (match Hashtbl.find_opt t.hist n with
    | Some r -> incr r
    | None -> Hashtbl.add t.hist n (ref 1));
    Mutex.unlock t.lock;
    Obs.Metrics.observe batch_hist (float_of_int n)
  in
  (* counters move before the replies go out, so a client that reacts
     to its response instantly still sees itself in the stats *)
  (match
     Runtime.Sched.run t.sched (fun () ->
         eval_batch t.sched tier (Array.map (fun e -> e.req) arr))
   with
  | results ->
      Mutex.lock t.lock;
      t.completed <- t.completed + n;
      Mutex.unlock t.lock;
      Obs.Metrics.add completed_ctr n;
      bump_batch ();
      let now = Obs.Clock.now_ns () in
      Array.iteri
        (fun i e ->
          Obs.Metrics.observe latency_hist (now -. e.arrival_ns);
          e.reply (P.Result { id = e.req.P.id; result = results.(i); batch = n }))
        arr
  | exception e ->
      let msg = Printexc.to_string e in
      Mutex.lock t.lock;
      t.errors <- t.errors + n;
      Mutex.unlock t.lock;
      bump_batch ();
      Array.iter (fun en -> en.reply (P.Failed { id = en.req.P.id; error = msg })) arr);
  if tr then Obs.Trace.end_span_f ~arg_name:"batch" ~arg:(float_of_int n)

let cycle t entries =
  let now = Obs.Clock.now_ns () in
  let live, late = List.partition (fun e -> not (expired now e)) entries in
  List.iter
    (fun e ->
      e.reply (P.Shed { id = e.req.P.id; reason = "deadline" });
      Obs.Metrics.incr shed_deadline_ctr)
    late;
  let n_late = List.length late in
  if n_late > 0 then begin
    Mutex.lock t.lock;
    t.shed_deadline <- t.shed_deadline + n_late;
    Mutex.unlock t.lock
  end;
  List.iter (run_group t) (group_entries live);
  (* one flush per cycle: replies buffered per connection by the
     server go out in a single write each *)
  t.flush ()

let rec loop t =
  match Admission.pop_batch t.queue ~max:t.max_batch ~window_ns:t.window_ns with
  | [] -> ()
  | entries ->
      cycle t entries;
      loop t

let create ~sched ~queue ~max_batch ~window_ns ?(flush = fun () -> ()) () =
  if max_batch < 1 then invalid_arg "Serve.Batcher.create: max_batch < 1";
  let t =
    {
      sched;
      queue;
      max_batch;
      window_ns;
      flush;
      lock = Mutex.create ();
      batches = 0;
      completed = 0;
      shed_deadline = 0;
      errors = 0;
      hist = Hashtbl.create 16;
      domain = None;
    }
  in
  t.domain <- Some (Domain.spawn (fun () -> loop t));
  t

let join t =
  match t.domain with
  | None -> ()
  | Some d ->
      Domain.join d;
      t.domain <- None

let stats t =
  Mutex.lock t.lock;
  let histogram =
    Hashtbl.fold (fun size r acc -> (size, !r) :: acc) t.hist []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  let s =
    {
      batches = t.batches;
      completed = t.completed;
      shed_deadline = t.shed_deadline;
      errors = t.errors;
      histogram;
    }
  in
  Mutex.unlock t.lock;
  s
