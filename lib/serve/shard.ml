(* Parent distributor + forked shard children.

   Fork discipline (OCaml 5): Unix.fork refuses in any process that
   has ever spawned a domain, so the parent side of this module is
   strictly domain-free — the distributor is a systhread — and a child
   only builds its scheduler/server (which do spawn domains) after the
   fork.  Restart forks also happen in the parent, which stays clean
   because reaping and re-forking live on the distributor thread. *)

module P = Protocol

external send_fd_stub : Unix.file_descr -> int -> int -> unit = "caml_fpan_send_fd"

let int_of_fd : Unix.file_descr -> int = Obj.magic

type balance = [ `Round_robin | `Hash ]

type opts = {
  sched_workers : int;
  queue_capacity : int option;
  max_batch : int option;
  window_us : float option;
  cache_capacity : int option;
  max_conns : int option;
}

type slot = {
  mutable pid : int;
  mutable chan : Unix.file_descr;  (* parent end of the fd-passing pair *)
  mutable live : bool;
  mutable forked_at : float;  (* when this incarnation was forked *)
  mutable backoff : float;  (* current re-fork delay; 0 = healthy *)
  mutable next_fork : float;  (* when a pending re-fork may run *)
  mutable pending : bool;  (* dead, restart scheduled after backoff *)
}

type t = {
  listen_fd : Unix.file_descr;
  bound : Unix.sockaddr;
  unlink : string option;
  slots : slot array;
  balance : balance;
  restart : bool;
  opts : opts;
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
  lock : Mutex.t;
  dispatched : int array;
  mutable restarts : int;
  mutable refused : int;
  mutable backoff_delays : int;
  mutable rr : int;
  stopping : bool Atomic.t;
  mutable thread : Thread.t option;
}

type stats = {
  dispatched : int array;
  restarts : int;
  refused : int;
  backoff_delays : int;
}

(* --- child ----------------------------------------------------------- *)

(* Runs in the freshly forked process; never returns.  The scheduler
   and server domains are created only now, post-fork.  Exit via
   Unix._exit so the parent's at_exit handlers (test harness cleanup,
   artifact writers) do not run a second time in each child. *)
let child_main chan (o : opts) =
  let sched = Runtime.Sched.create ~workers:o.sched_workers () in
  let lock = Mutex.create () in
  let cond = Condition.create () in
  let drained = ref false in
  (* called from the server's io domain on channel EOF; the actual
     stop must happen here on the main thread (stop joins the io
     domain, so calling it from on_drain would self-deadlock) *)
  let on_drain () =
    Mutex.lock lock;
    drained := true;
    Condition.signal cond;
    Mutex.unlock lock
  in
  let server =
    Server.start_adopted ~sched ~chan ~on_drain ?queue_capacity:o.queue_capacity
      ?max_batch:o.max_batch ?window_us:o.window_us
      ?cache_capacity:o.cache_capacity ?max_conns:o.max_conns ()
  in
  Mutex.lock lock;
  while not !drained do
    Condition.wait cond lock
  done;
  Mutex.unlock lock;
  Server.stop server;
  Runtime.Sched.shutdown sched;
  Unix._exit 0

(* --- forking --------------------------------------------------------- *)

let fork_shard t i =
  (* chaos seam, decided in the parent so the abort schedule is one
     deterministic counter stream regardless of child timing: the
     doomed child exits before building anything, which is exactly the
     crash-loop shape the re-fork backoff exists for *)
  let abort_child =
    match Chaos.Injector.fork_fault () with
    | Chaos.Fault.Abort_child -> true
    | _ -> false
  in
  let parent_end, child_end =
    Unix.socketpair ~cloexec:true PF_UNIX SOCK_STREAM 0
  in
  match Unix.fork () with
  | 0 ->
      (* drop every parent-side resource the child inherited: the
         listener, the wake pipe, the other shards' channels, and our
         own parent end — the child must see channel EOF the moment
         the parent (alone) closes it *)
      (try Unix.close parent_end with _ -> ());
      (try Unix.close t.listen_fd with _ -> ());
      (try Unix.close t.wake_r with _ -> ());
      (try Unix.close t.wake_w with _ -> ());
      Array.iter
        (fun s -> if s.live then try Unix.close s.chan with _ -> ())
        t.slots;
      if abort_child then Unix._exit 41;
      child_main child_end t.opts
  | pid ->
      (try Unix.close child_end with _ -> ());
      let s = t.slots.(i) in
      s.pid <- pid;
      s.chan <- parent_end;
      s.live <- true;
      s.forked_at <- Unix.gettimeofday ();
      s.pending <- false

(* --- distributor (parent thread) -------------------------------------- *)

(* Re-fork storm cap: a shard that dies within [quick_death_s] of its
   fork is crash-looping, and re-forking it at reaper speed just burns
   pids and log lines.  Each consecutive quick death doubles a
   per-slot delay (capped); a shard that survived its first second
   resets it.  Delayed restarts run from the same reaper pass once
   their deadline arrives, so the distributor thread never sleeps. *)
let refork_backoff_base = 0.05
let refork_backoff_cap = 5.0
let quick_death_s = 1.0

let reap t =
  let now = Unix.gettimeofday () in
  Array.iteri
    (fun i s ->
      if s.live then (
        match Unix.waitpid [ WNOHANG ] s.pid with
        | 0, _ -> ()
        | _ ->
            s.live <- false;
            (try Unix.close s.chan with _ -> ());
            if t.restart && not (Atomic.get t.stopping) then begin
              Mutex.lock t.lock;
              t.restarts <- t.restarts + 1;
              Mutex.unlock t.lock;
              if now -. s.forked_at < quick_death_s then begin
                s.backoff <-
                  (if s.backoff <= 0.0 then refork_backoff_base
                   else Float.min refork_backoff_cap (2.0 *. s.backoff));
                s.next_fork <- now +. s.backoff;
                s.pending <- true;
                Mutex.lock t.lock;
                t.backoff_delays <- t.backoff_delays + 1;
                Mutex.unlock t.lock
              end
              else begin
                s.backoff <- 0.0;
                fork_shard t i
              end
            end
        | exception Unix.Unix_error (ECHILD, _, _) ->
            s.live <- false;
            (try Unix.close s.chan with _ -> ())
        | exception Unix.Unix_error (EINTR, _, _) -> ())
      else if
        s.pending && t.restart
        && (not (Atomic.get t.stopping))
        && now >= s.next_fork
      then begin
        s.pending <- false;
        fork_shard t i
      end)
    t.slots

let hash_peer fd nslots =
  let key =
    match Unix.getpeername fd with
    | Unix.ADDR_INET (a, _) ->
        (* host only: a reconnecting client (new ephemeral port) must
           land on the same shard for cache affinity to mean anything *)
        Unix.string_of_inet_addr a
    | Unix.ADDR_UNIX path -> path
    | exception _ -> ""
  in
  Hashtbl.hash key mod nslots

let dispatch t fd =
  let nslots = Array.length t.slots in
  let idx =
    match t.balance with
    | `Round_robin ->
        let i = t.rr in
        t.rr <- (t.rr + 1) mod nslots;
        i
    | `Hash -> hash_peer fd nslots
  in
  let rec try_send tries =
    if tries >= nslots then begin
      (* no live shard could take it; an explicit close beats a
         connection that hangs forever *)
      Mutex.lock t.lock;
      t.refused <- t.refused + 1;
      Mutex.unlock t.lock
    end
    else begin
      let i = (idx + tries) mod nslots in
      let s = t.slots.(i) in
      if not s.live then try_send (tries + 1)
      else if Chaos.Injector.dispatch_fault () = Chaos.Fault.Drop_dispatch
      then
        (* chaos seam: pretend this shard refused the handoff, forcing
           the failover scan onto the next live slot *)
        try_send (tries + 1)
      else
        match send_fd_stub s.chan (Char.code 'c') (int_of_fd fd) with
        | () ->
            Mutex.lock t.lock;
            t.dispatched.(i) <- t.dispatched.(i) + 1;
            Mutex.unlock t.lock
        | exception _ ->
            (* shard mid-death; the reaper will notice and restart *)
            try_send (tries + 1)
    end
  in
  try_send 0;
  (* the kernel duplicated the descriptor into the shard (or nobody
     took it); the parent's copy is done either way *)
  try Unix.close fd with _ -> ()

let accept_all t =
  let rec go () =
    match Unix.accept ~cloexec:true t.listen_fd with
    | fd, _ ->
        dispatch t fd;
        go ()
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
    | exception Unix.Unix_error ((EMFILE | ENFILE), _, _) -> Unix.sleepf 0.05
    | exception Unix.Unix_error _ -> ()
  in
  go ()

let drain_wake t =
  let b = Bytes.create 64 in
  let rec go () =
    match Unix.read t.wake_r b 0 64 with
    | 64 -> go ()
    | _ -> ()
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) -> ()
  in
  go ()

let distributor t =
  let rd = Readiness.create () in
  Readiness.add rd t.wake_r ~read:true ~write:false;
  Readiness.add rd t.listen_fd ~read:true ~write:false;
  while not (Atomic.get t.stopping) do
    reap t;
    match Readiness.wait rd ~timeout_ms:200 with
    | [] -> ()
    | evs ->
        List.iter
          (fun (e : Readiness.event) ->
            if e.Readiness.fd = t.wake_r then drain_wake t
            else if not (Atomic.get t.stopping) then accept_all t)
          evs
  done

(* --- lifecycle -------------------------------------------------------- *)

let start ~addr ~shards ?(balance = `Round_robin) ?(restart = true)
    ?(sched_workers = 1) ?queue_capacity ?max_batch ?window_us ?cache_capacity
    ?max_conns () =
  if shards < 1 then invalid_arg "Serve.Shard.start: shards < 1";
  (* a send into a shard that died mid-handoff must surface as EPIPE,
     not kill the distributor *)
  P.ignore_sigpipe ();
  let listen_fd, bound, unlink = Server.bind_listen addr in
  Unix.set_nonblock listen_fd;
  let wake_r, wake_w = Unix.pipe ~cloexec:true () in
  Unix.set_nonblock wake_r;
  Unix.set_nonblock wake_w;
  let opts =
    { sched_workers; queue_capacity; max_batch; window_us; cache_capacity;
      max_conns }
  in
  let t =
    {
      listen_fd;
      bound;
      unlink;
      slots =
        Array.init shards (fun _ ->
            {
              pid = -1;
              chan = Unix.stdin;
              live = false;
              forked_at = 0.0;
              backoff = 0.0;
              next_fork = 0.0;
              pending = false;
            });
      balance;
      restart;
      opts;
      wake_r;
      wake_w;
      lock = Mutex.create ();
      dispatched = Array.make shards 0;
      restarts = 0;
      refused = 0;
      backoff_delays = 0;
      rr = 0;
      stopping = Atomic.make false;
      thread = None;
    }
  in
  for i = 0 to shards - 1 do
    fork_shard t i
  done;
  t.thread <- Some (Thread.create distributor t);
  t

let bound_addr t = t.bound
let shards t = Array.length t.slots

let pids t =
  Array.to_list t.slots |> List.filter_map (fun s -> if s.live then Some s.pid else None)

let stats t =
  Mutex.lock t.lock;
  let s =
    { dispatched = Array.copy t.dispatched; restarts = t.restarts;
      refused = t.refused; backoff_delays = t.backoff_delays }
  in
  Mutex.unlock t.lock;
  s

let ring t =
  try ignore (Unix.write t.wake_w (Bytes.make 1 '!') 0 1)
  with Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EBADF), _, _) -> ()

(* Wait for a child with a deadline; escalate to SIGKILL rather than
   hang the caller on a wedged shard. *)
let reap_one pid =
  let deadline = Unix.gettimeofday () +. 10.0 in
  let rec go () =
    match Unix.waitpid [ WNOHANG ] pid with
    | 0, _ ->
        if Unix.gettimeofday () > deadline then begin
          (try Unix.kill pid Sys.sigkill with _ -> ());
          try ignore (Unix.waitpid [] pid) with _ -> ()
        end
        else begin
          Unix.sleepf 0.02;
          go ()
        end
    | _ -> ()
    | exception Unix.Unix_error (ECHILD, _, _) -> ()
    | exception Unix.Unix_error (EINTR, _, _) -> go ()
  in
  go ()

let stop t =
  if not (Atomic.exchange t.stopping true) then begin
    ring t;
    (match t.thread with
    | Some th ->
        Thread.join th;
        t.thread <- None
    | None -> ());
    (* no new connections... *)
    (try Unix.close t.listen_fd with _ -> ());
    (try Unix.close t.wake_r with _ -> ());
    (try Unix.close t.wake_w with _ -> ());
    (match t.unlink with
    | Some path -> ( try Unix.unlink path with _ -> ())
    | None -> ());
    (* ...then channel EOF tells each shard to drain: finish every
       accepted request, shed stragglers "closed", exit *)
    Array.iter
      (fun s ->
        if s.live then begin
          (try Unix.close s.chan with _ -> ());
          reap_one s.pid;
          s.live <- false
        end)
      t.slots
  end
