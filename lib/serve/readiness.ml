(* Readiness: poll(2) behind a small capability interface, with a
   select fallback.  The poll backend keeps the registration set in
   three parallel int arrays (fds, interest masks, revents out) that
   are handed to the C stub as-is, so a wait is one stub call and no
   per-call allocation beyond the event list it returns.  Slots are
   kept dense by swap-removal; a Hashtbl maps fd -> slot. *)

external poll_stub :
  int array -> int array -> int array -> int -> int -> int = "caml_fpan_poll"

external poll_bits : unit -> int * int * int * int * int * int = "caml_fpan_poll_bits"

let bit_in, bit_out, bit_err, bit_hup, bit_nval, _bit_pri = poll_bits ()

(* Unix.file_descr is an immediate int on every Unix port (the C stub
   relies on the same fact); this cast is what unixsupport.h's
   Int_val does on the other side of the boundary. *)
let int_of_fd : Unix.file_descr -> int = Obj.magic
let fd_of_int : int -> Unix.file_descr = Obj.magic

type backend = Poll | Select

type event = {
  fd : Unix.file_descr;
  readable : bool;
  writable : bool;
  hangup : bool;
  error : bool;
}

type poll_state = {
  mutable fds : int array;
  mutable events : int array;
  mutable revents : int array;
  mutable n : int;
  slots : (int, int) Hashtbl.t;  (* fd -> index below n *)
}

type select_state = {
  mutable reads : Unix.file_descr list;
  mutable writes : Unix.file_descr list;
  members : (int, bool * bool) Hashtbl.t;  (* fd -> (read, write) *)
}

type t = P of poll_state | S of select_state

(* select fails with EINVAL (poisoning the whole loop) for any fd
   value at or above FD_SETSIZE; refuse at registration instead. *)
let select_ceiling = 1024

let create ?backend () =
  let backend =
    match backend with
    | Some b -> b
    | None -> (
        match Sys.getenv_opt "FPAN_READINESS" with
        | Some "select" -> Select
        | _ -> Poll)
  in
  match backend with
  | Poll ->
      P
        {
          fds = Array.make 64 (-1);
          events = Array.make 64 0;
          revents = Array.make 64 0;
          n = 0;
          slots = Hashtbl.create 64;
        }
  | Select -> S { reads = []; writes = []; members = Hashtbl.create 64 }

let backend = function P _ -> Poll | S _ -> Select
let backend_name t = match t with P _ -> "poll" | S _ -> "select"

let interest ~read ~write =
  (if read then bit_in else 0) lor if write then bit_out else 0

let grow p =
  let cap = Array.length p.fds in
  if p.n >= cap then begin
    let cap' = 2 * cap in
    let copy src mk = Array.init cap' (fun i -> if i < cap then src.(i) else mk) in
    p.fds <- copy p.fds (-1);
    p.events <- copy p.events 0;
    p.revents <- copy p.revents 0
  end

let add t fd ~read ~write =
  match t with
  | P p ->
      let k = int_of_fd fd in
      if Hashtbl.mem p.slots k then
        invalid_arg "Serve.Readiness.add: descriptor already registered";
      grow p;
      p.fds.(p.n) <- k;
      p.events.(p.n) <- interest ~read ~write;
      Hashtbl.replace p.slots k p.n;
      p.n <- p.n + 1
  | S s ->
      let k = int_of_fd fd in
      if Hashtbl.mem s.members k then
        invalid_arg "Serve.Readiness.add: descriptor already registered";
      if k >= select_ceiling then
        invalid_arg
          (Printf.sprintf
             "Serve.Readiness.add: fd %d is beyond the select backend's FD_SETSIZE \
              ceiling (%d); use the poll backend"
             k select_ceiling);
      Hashtbl.replace s.members k (read, write);
      if read then s.reads <- fd :: s.reads;
      if write then s.writes <- fd :: s.writes

let modify t fd ~read ~write =
  match t with
  | P p -> (
      let k = int_of_fd fd in
      match Hashtbl.find_opt p.slots k with
      | None -> invalid_arg "Serve.Readiness.modify: descriptor not registered"
      | Some i -> p.events.(i) <- interest ~read ~write)
  | S s ->
      let k = int_of_fd fd in
      if not (Hashtbl.mem s.members k) then
        invalid_arg "Serve.Readiness.modify: descriptor not registered";
      Hashtbl.replace s.members k (read, write);
      s.reads <- List.filter (fun f -> f <> fd) s.reads;
      s.writes <- List.filter (fun f -> f <> fd) s.writes;
      if read then s.reads <- fd :: s.reads;
      if write then s.writes <- fd :: s.writes

let remove t fd =
  match t with
  | P p -> (
      let k = int_of_fd fd in
      match Hashtbl.find_opt p.slots k with
      | None -> ()
      | Some i ->
          let last = p.n - 1 in
          Hashtbl.remove p.slots k;
          if i < last then begin
            p.fds.(i) <- p.fds.(last);
            p.events.(i) <- p.events.(last);
            Hashtbl.replace p.slots p.fds.(i) i
          end;
          p.fds.(last) <- -1;
          p.events.(last) <- 0;
          p.n <- last)
  | S s ->
      let k = int_of_fd fd in
      if Hashtbl.mem s.members k then begin
        Hashtbl.remove s.members k;
        s.reads <- List.filter (fun f -> f <> fd) s.reads;
        s.writes <- List.filter (fun f -> f <> fd) s.writes
      end

let mem t fd =
  match t with
  | P p -> Hashtbl.mem p.slots (int_of_fd fd)
  | S s -> Hashtbl.mem s.members (int_of_fd fd)

let registered t = match t with P p -> p.n | S s -> Hashtbl.length s.members

let event_of_mask fd mask =
  {
    fd;
    readable = mask land bit_in <> 0;
    writable = mask land bit_out <> 0;
    hangup = mask land bit_hup <> 0;
    error = mask land (bit_err lor bit_nval) <> 0;
  }

let wait t ~timeout_ms =
  (* chaos seam: a spurious wakeup (or injected EINTR) surfaces as an
     empty event list, exactly what a real EINTR produces below.  The
     disarmed hook is a single atomic branch returning Pass. *)
  match Chaos.Injector.wait_fault () with
  | Chaos.Fault.Spurious_wake | Chaos.Fault.Eintr -> []
  | _ -> (
  match t with
  | P p -> (
      match poll_stub p.fds p.events p.revents p.n timeout_ms with
      | 0 -> []
      | _ ->
          let out = ref [] in
          for i = p.n - 1 downto 0 do
            let mask = p.revents.(i) in
            if mask <> 0 then out := event_of_mask (fd_of_int p.fds.(i)) mask :: !out
          done;
          !out
      | exception Unix.Unix_error (EINTR, _, _) -> [])
  | S s -> (
      let timeout = if timeout_ms < 0 then -1.0 else float_of_int timeout_ms *. 1e-3 in
      match Unix.select s.reads s.writes [] timeout with
      | rd, wr, _ ->
          let tbl = Hashtbl.create 16 in
          List.iter (fun fd -> Hashtbl.replace tbl (int_of_fd fd) (true, false)) rd;
          List.iter
            (fun fd ->
              let k = int_of_fd fd in
              let r, _ = try Hashtbl.find tbl k with Not_found -> (false, false) in
              Hashtbl.replace tbl k (r, true))
            wr;
          Hashtbl.fold
            (fun k (readable, writable) acc ->
              { fd = fd_of_int k; readable; writable; hangup = false; error = false }
              :: acc)
            tbl []
      | exception Unix.Unix_error (EINTR, _, _) -> []))

(* --- single-descriptor helpers -------------------------------------- *)

let one_fds = [| -1 |]

let poll1 fd ~read ~write ~timeout_ms =
  (* tiny fresh arrays per call: poll1 sits on slow paths (write
     stalls, doorbell waits), never in the per-event hot loop *)
  let fds = Array.copy one_fds in
  fds.(0) <- int_of_fd fd;
  let events = [| interest ~read ~write |] in
  let revents = [| 0 |] in
  match poll_stub fds events revents 1 timeout_ms with
  | 0 -> None
  | _ -> Some (event_of_mask fd revents.(0))
  | exception Unix.Unix_error (EINTR, _, _) -> None

let wait_readable fd ~timeout_ms =
  match poll1 fd ~read:true ~write:false ~timeout_ms with
  | Some e -> e.readable || e.hangup || e.error
  | None -> false

let wait_writable fd ~timeout_ms =
  match poll1 fd ~read:false ~write:true ~timeout_ms with
  | Some e -> e.writable || e.hangup || e.error
  | None -> false
