/* poll(2) and SCM_RIGHTS fd-passing for the serving layer.
 *
 * OCaml's Unix library exposes neither: select is hard-capped at
 * FD_SETSIZE (~1024) by fd *value*, not count, and sendmsg/recvmsg
 * with ancillary data have no binding at all.  Both are needed for
 * internet-scale serving: poll for the readiness loop, fd-passing for
 * handing accepted connections to shard processes.
 *
 * File descriptors are immediate ints on every Unix OCaml port, so
 * Unix.file_descr values cross the boundary as Int_val/Val_int.
 */

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <caml/memory.h>
#include <caml/fail.h>
#include <caml/threads.h>
#include <caml/unixsupport.h>

#include <errno.h>
#include <fcntl.h>
#include <poll.h>
#include <stdlib.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

/* caml_fpan_poll fds events revents nfds timeout_ms
 *
 * fds.(i) / events.(i) describe slot i (events is the POLLIN/POLLOUT
 * bit mask); on return revents.(i) holds the kernel's revents mask.
 * Returns the number of ready slots.  The runtime lock is released
 * around the poll so the batcher and scheduler domains keep running
 * while the io domain sleeps.
 */
CAMLprim value caml_fpan_poll(value v_fds, value v_events, value v_revents,
                              value v_nfds, value v_timeout_ms)
{
  CAMLparam5(v_fds, v_events, v_revents, v_nfds, v_timeout_ms);
  int nfds = Int_val(v_nfds);
  int timeout = Int_val(v_timeout_ms);
  struct pollfd stack_pfds[128];
  struct pollfd *pfds = stack_pfds;
  int i, ret;

  if (nfds < 0 || nfds > Wosize_val(v_fds) || nfds > Wosize_val(v_events) ||
      nfds > Wosize_val(v_revents))
    caml_invalid_argument("Serve.Readiness.poll: bad nfds");

  if (nfds > 128) {
    pfds = malloc((size_t)nfds * sizeof(struct pollfd));
    if (pfds == NULL) caml_raise_out_of_memory();
  }
  for (i = 0; i < nfds; i++) {
    pfds[i].fd = Int_val(Field(v_fds, i));
    pfds[i].events = (short)Int_val(Field(v_events, i));
    pfds[i].revents = 0;
  }

  caml_release_runtime_system();
  ret = poll(pfds, (nfds_t)nfds, timeout);
  caml_acquire_runtime_system();

  if (ret < 0) {
    int err = errno;
    if (pfds != stack_pfds) free(pfds);
    uerror("poll", Nothing); (void)err;
  }
  for (i = 0; i < nfds; i++)
    Field(v_revents, i) = Val_int(pfds[i].revents);
  if (pfds != stack_pfds) free(pfds);
  CAMLreturn(Val_int(ret));
}

/* The event bits, resolved at C-compile time so the OCaml side never
 * hardcodes platform-specific constants. */
CAMLprim value caml_fpan_poll_bits(value unit)
{
  CAMLparam1(unit);
  CAMLlocal1(t);
  t = caml_alloc_tuple(6);
  Store_field(t, 0, Val_int(POLLIN));
  Store_field(t, 1, Val_int(POLLOUT));
  Store_field(t, 2, Val_int(POLLERR));
  Store_field(t, 3, Val_int(POLLHUP));
  Store_field(t, 4, Val_int(POLLNVAL));
  Store_field(t, 5, Val_int(POLLPRI));
  CAMLreturn(t);
}

/* caml_fpan_send_fd chan byte fd
 *
 * Send one control byte over the unix-domain socket [chan], with [fd]
 * attached as SCM_RIGHTS ancillary data when fd >= 0.  Used by the
 * shard distributor to hand an accepted connection to a shard.
 */
CAMLprim value caml_fpan_send_fd(value v_chan, value v_byte, value v_fd)
{
  CAMLparam3(v_chan, v_byte, v_fd);
  int chan = Int_val(v_chan);
  int fd = Int_val(v_fd);
  char byte = (char)Int_val(v_byte);
  struct msghdr msg;
  struct iovec iov;
  char cbuf[CMSG_SPACE(sizeof(int))];
  ssize_t n;

  memset(&msg, 0, sizeof(msg));
  iov.iov_base = &byte;
  iov.iov_len = 1;
  msg.msg_iov = &iov;
  msg.msg_iovlen = 1;
  if (fd >= 0) {
    struct cmsghdr *cmsg;
    memset(cbuf, 0, sizeof(cbuf));
    msg.msg_control = cbuf;
    msg.msg_controllen = CMSG_SPACE(sizeof(int));
    cmsg = CMSG_FIRSTHDR(&msg);
    cmsg->cmsg_level = SOL_SOCKET;
    cmsg->cmsg_type = SCM_RIGHTS;
    cmsg->cmsg_len = CMSG_LEN(sizeof(int));
    memcpy(CMSG_DATA(cmsg), &fd, sizeof(int));
  }

  caml_release_runtime_system();
  do { n = sendmsg(chan, &msg, 0); } while (n < 0 && errno == EINTR);
  caml_acquire_runtime_system();

  if (n < 0) uerror("sendmsg", Nothing);
  CAMLreturn(Val_unit);
}

/* caml_fpan_recv_fd chan -> (control_byte, fd)
 *
 * Receive one control byte and at most one SCM_RIGHTS descriptor.
 * control_byte is -1 on orderly EOF (the distributor closed the
 * channel: drain); fd is -1 when no descriptor was attached.  The
 * received descriptor gets CLOEXEC set.
 */
CAMLprim value caml_fpan_recv_fd(value v_chan)
{
  CAMLparam1(v_chan);
  CAMLlocal1(t);
  int chan = Int_val(v_chan);
  char byte = 0;
  struct msghdr msg;
  struct iovec iov;
  char cbuf[CMSG_SPACE(sizeof(int))];
  struct cmsghdr *cmsg;
  ssize_t n;
  int fd = -1;

  memset(&msg, 0, sizeof(msg));
  iov.iov_base = &byte;
  iov.iov_len = 1;
  msg.msg_iov = &iov;
  msg.msg_iovlen = 1;
  msg.msg_control = cbuf;
  msg.msg_controllen = sizeof(cbuf);

  caml_release_runtime_system();
  do { n = recvmsg(chan, &msg, 0); } while (n < 0 && errno == EINTR);
  caml_acquire_runtime_system();

  if (n < 0) uerror("recvmsg", Nothing);
  if (n > 0) {
    for (cmsg = CMSG_FIRSTHDR(&msg); cmsg != NULL; cmsg = CMSG_NXTHDR(&msg, cmsg)) {
      if (cmsg->cmsg_level == SOL_SOCKET && cmsg->cmsg_type == SCM_RIGHTS &&
          cmsg->cmsg_len >= CMSG_LEN(sizeof(int))) {
        memcpy(&fd, CMSG_DATA(cmsg), sizeof(int));
#ifdef FD_CLOEXEC
        if (fd >= 0) fcntl(fd, F_SETFD, FD_CLOEXEC);
#endif
      }
    }
  }

  t = caml_alloc_tuple(2);
  Store_field(t, 0, Val_int(n == 0 ? -1 : (int)byte));
  Store_field(t, 1, Val_int(fd));
  CAMLreturn(t);
}
