module P = Protocol
module J = Obs.Json_out

type t = {
  mutable fd : Unix.file_descr;
  mutable defr : P.deframer;
  rbuf : Bytes.t;
  mutable pending : string Queue.t;  (* frames already read but not returned *)
  mutable next_id : int;
  sa : Unix.sockaddr;
  deadline_ms : int option;
}

(* Connect one socket to [sa].  With a deadline the connect goes
   non-blocking — EINPROGRESS, wait for writability, then read the
   socket error back out of SO_ERROR (the only place an async connect
   reports failure) — and the socket returns to blocking mode, with
   the deadline re-applied per read by [next_frame]. *)
let connect_fd ?deadline_ms sa =
  let domain = Unix.domain_of_sockaddr sa in
  let fd = Unix.socket ~cloexec:true domain SOCK_STREAM 0 in
  (try
     match deadline_ms with
     | None -> Unix.connect fd sa
     | Some ms -> (
         Unix.set_nonblock fd;
         (match Unix.connect fd sa with
         | () -> ()
         | exception Unix.Unix_error ((EINPROGRESS | EWOULDBLOCK | EAGAIN), _, _)
           ->
             if not (Readiness.wait_writable fd ~timeout_ms:ms) then
               failwith "Serve.Client: connect deadline exceeded";
             (match Unix.getsockopt_error fd with
             | None -> ()
             | Some err -> raise (Unix.Unix_error (err, "connect", ""))));
         Unix.clear_nonblock fd)
   with e ->
     (try Unix.close fd with _ -> ());
     raise e);
  fd

let connect_sockaddr ?deadline_ms sa =
  P.ignore_sigpipe ();
  let fd = connect_fd ?deadline_ms sa in
  {
    fd;
    defr = P.deframer ();
    rbuf = Bytes.create 65536;
    pending = Queue.create ();
    next_id = 1;
    sa;
    deadline_ms;
  }

let connect ?deadline_ms (addr : Server.addr) =
  match addr with
  | Server.Unix_path path -> connect_sockaddr ?deadline_ms (Unix.ADDR_UNIX path)
  | Server.Tcp { host; port } ->
      let ip =
        try Unix.inet_addr_of_string host
        with _ -> (Unix.gethostbyname host).h_addr_list.(0)
      in
      connect_sockaddr ?deadline_ms (Unix.ADDR_INET (ip, port))

let close t = try Unix.close t.fd with _ -> ()

(* Fresh socket, fresh framing state.  Correlation ids keep counting
   up — a retried request re-sends its original id, and any half-read
   frame from the dead connection died with the old deframer. *)
let reconnect t =
  close t;
  t.fd <- connect_fd ?deadline_ms:t.deadline_ms t.sa;
  t.defr <- P.deframer ();
  t.pending <- Queue.create ()

let fresh_id t =
  let id = t.next_id in
  t.next_id <- id + 1;
  id

let send t req = P.write_frame t.fd (J.to_string_compact (P.request_to_json req))

(* Buffered: one read can surface a whole coalesced batch of reply
   frames, which later recv calls pop without touching the socket. *)
let rec next_frame t =
  match Queue.take_opt t.pending with
  | Some payload -> payload
  | None -> (
      (match t.deadline_ms with
      | Some ms when not (Readiness.wait_readable t.fd ~timeout_ms:ms) ->
          failwith "Serve.Client: read deadline exceeded"
      | _ -> ());
      match Unix.read t.fd t.rbuf 0 (Bytes.length t.rbuf) with
      | 0 -> failwith "Serve.Client: connection closed"
      | n -> (
          match P.feed t.defr t.rbuf n with
          | Ok frames ->
              List.iter (fun f -> Queue.add f t.pending) frames;
              next_frame t
          | Error e -> failwith ("Serve.Client: bad frame: " ^ e))
      | exception Unix.Unix_error (EINTR, _, _) -> next_frame t)

let recv t =
  let payload = next_frame t in
  match J.parse payload with
  | Error e -> failwith ("Serve.Client: bad response json: " ^ e)
  | Ok doc -> (
      match P.response_of_json doc with
      | Error e -> failwith ("Serve.Client: bad response: " ^ e)
      | Ok resp -> resp)

let call t req =
  send t req;
  let rec wait () =
    let resp = recv t in
    if P.response_id resp = req.P.id then resp else wait ()
  in
  wait ()

let call_retry ?(max_attempts = 8) ?(base_backoff_ms = 10.0) ?(seed = 0) t req
    =
  let rec attempt n =
    match call t req with
    | resp -> resp
    | exception e ->
        if n + 1 >= max_attempts then raise e;
        let ms =
          Chaos.Rng.backoff_ms ~seed ~stream:req.P.id ~attempt:n
            ~base_ms:base_backoff_ms
        in
        Unix.sleepf (ms *. 1e-3);
        (* a failed reconnect (shard still restarting) just burns this
           attempt: the dead descriptor makes the next call fail fast
           and the loop backs off again *)
        (try reconnect t with _ -> ());
        attempt (n + 1)
  in
  attempt 0

let call_many t reqs =
  List.iter (send t) reqs;
  let wanted = List.length reqs in
  let tbl = Hashtbl.create (2 * wanted) in
  let got = ref 0 in
  while !got < wanted do
    let resp = recv t in
    Hashtbl.replace tbl (P.response_id resp) resp;
    incr got
  done;
  List.map
    (fun (r : P.request) ->
      match Hashtbl.find_opt tbl r.P.id with
      | Some resp -> resp
      | None -> failwith "Serve.Client: response id never arrived")
    reqs

let stats t =
  let req =
    {
      P.id = fresh_id t;
      op = P.Stats;
      tier = P.Mf2;
      sla = None;
      deadline_ms = None;
      prog = [];
      x = [||];
      y = [||];
      z = [||];
    }
  in
  match call t req with
  | P.Stats_reply { stats; _ } -> stats
  | _ -> failwith "Serve.Client: stats got a non-stats reply"
