module P = Protocol
module J = Obs.Json_out

type t = {
  fd : Unix.file_descr;
  defr : P.deframer;
  rbuf : Bytes.t;
  pending : string Queue.t;  (* frames already read but not returned *)
  mutable next_id : int;
}

let connect_sockaddr sa =
  P.ignore_sigpipe ();
  let domain = Unix.domain_of_sockaddr sa in
  let fd = Unix.socket ~cloexec:true domain SOCK_STREAM 0 in
  (try Unix.connect fd sa
   with e ->
     (try Unix.close fd with _ -> ());
     raise e);
  {
    fd;
    defr = P.deframer ();
    rbuf = Bytes.create 65536;
    pending = Queue.create ();
    next_id = 1;
  }

let connect (addr : Server.addr) =
  match addr with
  | Server.Unix_path path -> connect_sockaddr (Unix.ADDR_UNIX path)
  | Server.Tcp { host; port } ->
      let ip =
        try Unix.inet_addr_of_string host
        with _ -> (Unix.gethostbyname host).h_addr_list.(0)
      in
      connect_sockaddr (Unix.ADDR_INET (ip, port))

let close t = try Unix.close t.fd with _ -> ()

let fresh_id t =
  let id = t.next_id in
  t.next_id <- id + 1;
  id

let send t req = P.write_frame t.fd (J.to_string_compact (P.request_to_json req))

(* Buffered: one read can surface a whole coalesced batch of reply
   frames, which later recv calls pop without touching the socket. *)
let rec next_frame t =
  match Queue.take_opt t.pending with
  | Some payload -> payload
  | None -> (
      match Unix.read t.fd t.rbuf 0 (Bytes.length t.rbuf) with
      | 0 -> failwith "Serve.Client: connection closed"
      | n -> (
          match P.feed t.defr t.rbuf n with
          | Ok frames ->
              List.iter (fun f -> Queue.add f t.pending) frames;
              next_frame t
          | Error e -> failwith ("Serve.Client: bad frame: " ^ e))
      | exception Unix.Unix_error (EINTR, _, _) -> next_frame t)

let recv t =
  let payload = next_frame t in
  match J.parse payload with
  | Error e -> failwith ("Serve.Client: bad response json: " ^ e)
  | Ok doc -> (
      match P.response_of_json doc with
      | Error e -> failwith ("Serve.Client: bad response: " ^ e)
      | Ok resp -> resp)

let call t req =
  send t req;
  let rec wait () =
    let resp = recv t in
    if P.response_id resp = req.P.id then resp else wait ()
  in
  wait ()

let call_many t reqs =
  List.iter (send t) reqs;
  let wanted = List.length reqs in
  let tbl = Hashtbl.create (2 * wanted) in
  let got = ref 0 in
  while !got < wanted do
    let resp = recv t in
    Hashtbl.replace tbl (P.response_id resp) resp;
    incr got
  done;
  List.map
    (fun (r : P.request) ->
      match Hashtbl.find_opt tbl r.P.id with
      | Some resp -> resp
      | None -> failwith "Serve.Client: response id never arrived")
    reqs

let stats t =
  let req =
    {
      P.id = fresh_id t;
      op = P.Stats;
      tier = P.Mf2;
      sla = None;
      deadline_ms = None;
      prog = [];
      x = [||];
      y = [||];
      z = [||];
    }
  in
  match call t req with
  | P.Stats_reply { stats; _ } -> stats
  | _ -> failwith "Serve.Client: stats got a non-stats reply"
