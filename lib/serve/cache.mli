(** Memoizing hot-path cache for repeated scalar requests.

    A bounded LRU keyed on the request's exact identity: operation,
    tier, program chain, and every operand component rendered through
    {!Protocol.float_to_wire} — one key string per distinct bit
    pattern, so [0.0] vs [-0.0], subnormals, and NaN payloads never
    collapse onto each other.  The cached value is the full result
    component array; replaying it re-encodes through the same
    deterministic emitter, so a hit is bitwise-identical to the miss
    that populated it {e by construction}.

    Only cheap-to-key requests are memoized: the scalar arithmetic and
    elementary ops ([add mul div sqrt exp log sin]) — transcendentals
    are exactly where repeated-operand traffic pays — plus any other
    request whose total operand element count stays under a small
    bound.  Vector requests with large operands are not worth hashing.

    Thread-safe (one mutex; all operations are O(1)).  Hits and misses
    are exported as [serve.cache_hit] / [serve.cache_miss] metrics and
    through {!stats}. *)

type t

val create : capacity:int -> t
(** [capacity < 1] is {!disabled} (every lookup misses, nothing is
    stored). *)

val disabled : t

val capacity : t -> int

type value = {
  result : float array array;
  chosen : string option;
      (** SLA entries: the tier that met the budget, replayed on hits. *)
  bound : float option;  (** SLA entries: the certified error bound. *)
}

type kind_stats = { kind : string; k_hits : int; k_misses : int }

type stats = {
  hits : int;
  misses : int;
  size : int;
  evictions : int;
  by_kind : kind_stats list;  (** per-request-kind counters, sorted by kind *)
}

val stats : t -> stats

val kind_of_request : Protocol.request -> string
(** The stats kind a request's lookups are attributed to: the op name,
    prefixed with ["sla:"] for SLA requests. *)

val key_of_request : Protocol.request -> string option
(** [None] when the request is not cacheable (stats, vector ops with
    large operands, or any request carrying a deadline — a deadline
    makes the reply timing-dependent, so it must travel the queue).
    For SLA requests the key includes the SLA exponent, so a
    loose-bound entry never answers a tighter-bound request. *)

val find : ?kind:string -> t -> string -> value option
(** LRU touch on hit.  Counts a hit or a miss, both globally and under
    [kind] (default ["other"]). *)

val add : t -> string -> value -> unit
(** Insert (or refresh) a binding, evicting the least-recently-used
    entry when at capacity. *)

val fold_lru : (string -> 'a -> 'a) -> t -> 'a -> 'a
(** Fold over the keys, least-recently-used first (tests pin the
    eviction order through this). *)
