(* Wire protocol: length-prefixed JSON frames, schema fpan-serve/1.
   Operands travel as C99 hex-float strings because they are the only
   JSON transport exact for every double (Json_out numbers render
   inf/nan as null).  Inbound documents are schema-validated before
   decoding; the Json_out parser itself rejects duplicate keys and
   trailing garbage, so nothing ambiguous reaches execution. *)

module J = Obs.Json_out

type tier = Mf2 | Mf3 | Mf4

let tier_terms = function Mf2 -> 2 | Mf3 -> 3 | Mf4 -> 4
let tier_name = function Mf2 -> "mf2" | Mf3 -> "mf3" | Mf4 -> "mf4"

let tier_of_name = function
  | "mf2" -> Some Mf2
  | "mf3" -> Some Mf3
  | "mf4" -> Some Mf4
  | _ -> None

type op = Add | Mul | Div | Sqrt | Exp | Log | Sin | Dot | Axpy | Sum | Poly_eval | Program | Stats

let op_name = function
  | Add -> "add"
  | Mul -> "mul"
  | Div -> "div"
  | Sqrt -> "sqrt"
  | Exp -> "exp"
  | Log -> "log"
  | Sin -> "sin"
  | Dot -> "dot"
  | Axpy -> "axpy"
  | Sum -> "sum"
  | Poly_eval -> "poly-eval"
  | Program -> "program"
  | Stats -> "stats"

let compute_ops = [ Add; Mul; Div; Sqrt; Exp; Log; Sin; Dot; Axpy; Sum; Poly_eval; Program ]

let op_of_name name =
  List.find_opt (fun o -> op_name o = name) (Stats :: compute_ops)

let arity = function
  | Stats -> 0
  | Sqrt | Exp | Log | Sin | Sum -> 1
  | Add | Mul | Div | Dot | Axpy | Poly_eval | Program -> 2

(* The fused multi-op chains a [Program] request may name: each is a
   Fuse.chain whose single-pass kernel is bitwise the op-by-op
   composition.  ["mul"; "sum"] is elementwise mul then sum (the
   unfused spelling of DOT); ["axpy"; "dot"] updates y in place and
   dots it against z; ["sum"] is the plain fold (a 1-gate program). *)
let programs = [ [ "sum" ]; [ "mul"; "sum" ]; [ "axpy"; "dot" ] ]

let program_name chain = String.concat ";" chain

type request = {
  id : int;
  op : op;
  tier : tier;
      (* for SLA requests: the derived starting tier of the escalation
         ladder (the cheapest tier holding the operands untruncated) *)
  sla : int option;  (* accuracy SLA exponent q: absolute error <= scale * 2^-q *)
  deadline_ms : float option;
  prog : string list;
  x : float array array;
  y : float array array;
  z : float array array;
}

type response =
  | Result of {
      id : int;
      result : float array array;
      batch : int;
      chosen : string option;  (* SLA requests: the tier that met the budget *)
      bound : float option;  (* SLA requests: certified absolute error bound *)
    }
  | Shed of { id : int; reason : string }
  | Failed of { id : int; error : string }
  | Stats_reply of { id : int; stats : J.t }

let response_id = function
  | Result { id; _ } | Shed { id; _ } | Failed { id; _ } | Stats_reply { id; _ } -> id

(* --- hex-float element transport ------------------------------------ *)

(* %h prints every NaN as "nan", losing the payload (OCaml's own
   Float.nan is 0x7ff8000000000001, while float_of_string "nan" gives
   0x7ff8000000000000) — so NaNs carry their exact bit pattern. *)
let float_to_wire c =
  if Float.is_nan c then Printf.sprintf "nan:%Lx" (Int64.bits_of_float c)
  else Printf.sprintf "%h" c

let float_of_wire s =
  if String.length s > 4 && String.sub s 0 4 = "nan:" then
    match Int64.of_string_opt ("0x" ^ String.sub s 4 (String.length s - 4)) with
    | Some b when Float.is_nan (Int64.float_of_bits b) -> Some (Int64.float_of_bits b)
    | _ -> None
  else float_of_string_opt s

let element_to_json comps =
  J.List (Array.to_list (Array.map (fun c -> J.Str (float_to_wire c)) comps))

let elements_to_json els = J.List (Array.to_list (Array.map element_to_json els))

let element_of_json ~terms v =
  match J.to_list v with
  | None -> Error "operand element is not an array"
  | Some comps ->
      if List.length comps <> terms then
        Error (Printf.sprintf "operand element has %d components, tier wants %d"
                 (List.length comps) terms)
      else begin
        let out = Array.make terms 0.0 in
        let rec go i = function
          | [] -> Ok out
          | J.Str s :: rest -> (
              match float_of_wire s with
              | Some f ->
                  out.(i) <- f;
                  go (i + 1) rest
              | None -> Error (Printf.sprintf "bad float component %S" s))
          | _ -> Error "operand component is not a string"
        in
        go 0 comps
      end

let elements_of_json ~terms v =
  match J.to_list v with
  | None -> Error "operand is not an array"
  | Some els ->
      let n = List.length els in
      let out = Array.make n [||] in
      let rec go i = function
        | [] -> Ok out
        | e :: rest -> (
            match element_of_json ~terms e with
            | Ok c ->
                out.(i) <- c;
                go (i + 1) rest
            | Error _ as err -> err)
      in
      go 0 els

(* flexible-width decode for SLA operands: each element at its own
   observed width; uniformity and the 1..4 range are checked by the
   request validator *)
let elements_of_json_flex v =
  match J.to_list v with
  | None -> Error "operand is not an array"
  | Some els ->
      let out = Array.make (List.length els) [||] in
      let rec go i = function
        | [] -> Ok out
        | e :: rest -> (
            match J.to_list e with
            | None -> Error "operand element is not an array"
            | Some comps -> (
                match element_of_json ~terms:(List.length comps) e with
                | Ok c ->
                    out.(i) <- c;
                    go (i + 1) rest
                | Error _ as err -> err))
      in
      go 0 els

(* --- request -------------------------------------------------------- *)

(* fpan-serve/1 is the fixed-tier protocol; frames carrying the
   adaptive-precision fields (sla / chosen / bound) are fpan-serve/2 *)
let schema_field = ("schema", J.Str "fpan-serve/1")
let schema_field_v2 = ("schema", J.Str "fpan-serve/2")

let request_to_json r =
  J.Obj
    ([ (if r.sla = None then schema_field else schema_field_v2);
       ("id", J.Num (float_of_int r.id));
       ("op", J.Str (op_name r.op)) ]
    @ (match r.sla with
      | None -> [ ("tier", J.Str (tier_name r.tier)) ]
      | Some q -> [ ("sla", J.Num (float_of_int q)) ])
    @ (match r.deadline_ms with None -> [] | Some d -> [ ("deadline_ms", J.Num d) ])
    @ (if r.prog = [] then []
       else [ ("prog", J.List (List.map (fun s -> J.Str s) r.prog)) ])
    @ (if Array.length r.x = 0 then [] else [ ("x", elements_to_json r.x) ])
    @ (if Array.length r.y = 0 then [] else [ ("y", elements_to_json r.y) ])
    @ if Array.length r.z = 0 then [] else [ ("z", elements_to_json r.z) ])

let int_member key doc =
  match J.member key doc with
  | Some (J.Num f) when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let ( let* ) = Result.bind

let request_of_json doc =
  match Obs.Schema.validate Obs.Schemas.serve_request doc with
  | Error violations -> Error (String.concat "; " violations)
  | Ok () ->
      let id = Option.value ~default:0 (int_member "id" doc) in
      let* op =
        match J.member "op" doc with
        | Some (J.Str name) -> (
            match op_of_name name with
            | Some op -> Ok op
            | None -> Error (Printf.sprintf "unknown op %S" name))
        | _ -> Error "missing op"
      in
      let sla = int_member "sla" doc in
      let* tier_opt =
        match (J.member "tier" doc, sla) with
        | Some _, Some _ -> Error "sla and tier are mutually exclusive"
        | Some (J.Str name), None -> (
            match tier_of_name name with
            | Some t -> Ok (Some t)
            | None -> Error (Printf.sprintf "unknown tier %S" name))
        | Some _, None -> Error "tier is not a string"
        | None, Some _ -> Ok None
        | None, None -> if op = Stats then Ok (Some Mf2) else Error "missing tier"
      in
      let operand decode key =
        match J.member key doc with
        | None -> Ok [||]
        | Some v -> decode v
      in
      let decode =
        match tier_opt with
        | Some tier -> elements_of_json ~terms:(tier_terms tier)
        | None -> elements_of_json_flex
      in
      let* x = operand decode "x" in
      let* y = operand decode "y" in
      let* z = operand decode "z" in
      let* prog =
        match J.member "prog" doc with
        | None -> Ok []
        | Some v -> (
            match J.to_list v with
            | None -> Error "prog is not an array"
            | Some steps ->
                let rec go acc = function
                  | [] -> Ok (List.rev acc)
                  | J.Str s :: rest -> go (s :: acc) rest
                  | _ -> Error "prog step is not a string"
                in
                go [] steps)
      in
      let deadline_ms = Option.bind (J.member "deadline_ms" doc) J.to_num in
      let* () =
        if op <> Program && prog <> [] then
          Error (Printf.sprintf "op %s takes no prog" (op_name op))
        else if op <> Program && Array.length z > 0 then
          Error (Printf.sprintf "op %s takes no operand z" (op_name op))
        else Ok ()
      in
      let* () =
        match op with
        | Stats -> Ok ()
        | Program -> (
            let nx = Array.length x and ny = Array.length y and nz = Array.length z in
            match prog with
            | [] -> Error "op program needs prog"
            | [ "sum" ] ->
                if nx = 0 then Error "op program needs operand x"
                else if ny > 0 || nz > 0 then Error "program sum takes only operand x"
                else Ok ()
            | [ "mul"; "sum" ] ->
                if nx = 0 then Error "op program needs operand x"
                else if nx <> ny then Error "vector operands differ in length"
                else if nz > 0 then Error "program mul;sum takes no operand z"
                else Ok ()
            | [ "axpy"; "dot" ] ->
                if nx = 0 then Error "op program needs operand x"
                else if ny <> nx + 1 then
                  Error "program axpy;dot wants y = alpha followed by a vector of x's length"
                else if nz <> nx then
                  Error "program axpy;dot wants z of x's length"
                else Ok ()
            | chain ->
                Error
                  (Printf.sprintf "unsupported program %S (supported: %s)" (program_name chain)
                     (String.concat ", " (List.map program_name programs))))
        | _ -> (
            let need_y = arity op = 2 in
            match (Array.length x, Array.length y) with
            | 0, _ -> Error (Printf.sprintf "op %s needs operand x" (op_name op))
            | _, 0 when need_y -> Error (Printf.sprintf "op %s needs operand y" (op_name op))
            | _, ny when (not need_y) && ny > 0 ->
                Error (Printf.sprintf "op %s takes no operand y" (op_name op))
            | nx, ny -> (
                match op with
                | Add | Mul | Div -> if nx = 1 && ny = 1 then Ok () else Error "scalar op wants 1-element operands"
                | Sqrt | Exp | Log | Sin -> if nx = 1 then Ok () else Error "unary op wants a 1-element operand"
                | Dot -> if nx = ny then Ok () else Error "vector operands differ in length"
                | Axpy ->
                    if ny = nx + 1 then Ok ()
                    else Error "axpy wants y = alpha followed by a vector of x's length"
                | Sum -> Ok ()
                | Poly_eval -> if ny = 1 then Ok () else Error "poly-eval wants a 1-element point y"
                | Program | Stats -> Ok ()))
      in
      let* tier =
        match (tier_opt, sla) with
        | Some t, _ -> Ok t
        | None, None -> assert false
        | None, Some q ->
            (* an SLA stands in for the tier: validate the budget, the
               op's certifiability, and the operand shape, then start
               the ladder at the cheapest tier holding the operands *)
            if q < Adaptive.Sla.q_min || q > Adaptive.Sla.q_max then
              Error
                (Printf.sprintf "sla %d out of range [%d, %d]" q Adaptive.Sla.q_min
                   Adaptive.Sla.q_max)
            else if Adaptive.Sla.of_wire ~op:(op_name op) ~prog = None then
              Error
                (Printf.sprintf "op %s cannot carry an sla (certifiable ops: %s)"
                   (op_name op)
                   (String.concat ", " Adaptive.Sla.supported_wire_ops))
            else if not (Adaptive.Sla.finite { Adaptive.Sla.x; y; z }) then
              Error "sla requires finite operand components"
            else (
              match Adaptive.Sla.width { Adaptive.Sla.x; y; z } with
              | Some w when w <= Adaptive.Sla.max_terms -> (
                  match Adaptive.Sla.start_terms ~width:w with
                  | 2 -> Ok Mf2
                  | 3 -> Ok Mf3
                  | _ -> Ok Mf4)
              | _ -> Error "sla operands must have a uniform element width of 1..4 components")
      in
      Ok { id; op; tier; sla; deadline_ms; prog; x; y; z }

(* --- response ------------------------------------------------------- *)

let response_to_json = function
  | Result { id; result; batch; chosen; bound } ->
      J.Obj
        ([ (if chosen = None && bound = None then schema_field else schema_field_v2);
           ("id", J.Num (float_of_int id));
           ("status", J.Str "ok");
           ("result", elements_to_json result);
           ("batch", J.Num (float_of_int batch)) ]
        @ (match chosen with None -> [] | Some c -> [ ("chosen", J.Str c) ])
        @ match bound with None -> [] | Some b -> [ ("bound", J.Str (float_to_wire b)) ])
  | Shed { id; reason } ->
      J.Obj
        [ schema_field;
          ("id", J.Num (float_of_int id));
          ("status", J.Str "shed");
          ("reason", J.Str reason) ]
  | Failed { id; error } ->
      J.Obj
        [ schema_field;
          ("id", J.Num (float_of_int id));
          ("status", J.Str "error");
          ("error", J.Str error) ]
  | Stats_reply { id; stats } ->
      J.Obj
        [ schema_field;
          ("id", J.Num (float_of_int id));
          ("status", J.Str "ok");
          ("stats", stats) ]

let response_of_json doc =
  match Obs.Schema.validate Obs.Schemas.serve_response doc with
  | Error violations -> Error (String.concat "; " violations)
  | Ok () -> (
      let id = Option.value ~default:0 (int_member "id" doc) in
      match Option.bind (J.member "status" doc) J.to_str with
      | Some "ok" -> (
          match J.member "stats" doc with
          | Some stats -> Ok (Stats_reply { id; stats })
          | None -> (
              match J.member "result" doc with
              | Some v -> (
                  (* components already validated as strings; any tier's
                     element width is accepted on the way back *)
                  match J.to_list v with
                  | None -> Error "result is not an array"
                  | Some els ->
                      let decode el =
                        match J.to_list el with
                        | None -> Error "result element is not an array"
                        | Some comps ->
                            element_of_json ~terms:(List.length comps) el
                      in
                      let rec go acc = function
                        | [] -> Ok (Array.of_list (List.rev acc))
                        | el :: rest -> (
                            match decode el with
                            | Ok c -> go (c :: acc) rest
                            | Error _ as e -> e)
                      in
                      let* result = go [] els in
                      let batch = Option.value ~default:1 (int_member "batch" doc) in
                      let chosen = Option.bind (J.member "chosen" doc) J.to_str in
                      let* bound =
                        match Option.bind (J.member "bound" doc) J.to_str with
                        | None -> Ok None
                        | Some s -> (
                            match float_of_wire s with
                            | Some b -> Ok (Some b)
                            | None -> Error (Printf.sprintf "bad bound %S" s))
                      in
                      Ok (Result { id; result; batch; chosen; bound }))
              | None -> Error "ok response carries neither result nor stats"))
      | Some "shed" ->
          let reason =
            Option.value ~default:"unspecified" (Option.bind (J.member "reason" doc) J.to_str)
          in
          Ok (Shed { id; reason })
      | Some "error" ->
          let error =
            Option.value ~default:"unspecified" (Option.bind (J.member "error" doc) J.to_str)
          in
          Ok (Failed { id; error })
      | _ -> Error "missing status")

(* --- framing -------------------------------------------------------- *)

(* Both ends write into sockets the peer may have abruptly closed; the
   default SIGPIPE disposition would kill the whole process instead of
   letting the write raise Unix_error(EPIPE,...), which the callers
   handle by dropping the connection. *)
let ignore_sigpipe () =
  try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
  with Invalid_argument _ | Sys_error _ -> ()

let max_frame = 16 * 1024 * 1024

let frame_of_string payload =
  let n = String.length payload in
  let b = Bytes.create (4 + n) in
  Bytes.set_int32_be b 0 (Int32.of_int n);
  Bytes.blit_string payload 0 b 4 n;
  Bytes.unsafe_to_string b

let write_frame fd payload =
  let data = frame_of_string payload in
  let n = String.length data in
  let pos = ref 0 in
  while !pos < n do
    pos := !pos + Unix.write_substring fd data !pos (n - !pos)
  done

let really_read fd buf off len =
  let pos = ref 0 in
  let eof = ref false in
  while (not !eof) && !pos < len do
    let k = Unix.read fd buf (off + !pos) (len - !pos) in
    if k = 0 then eof := true else pos := !pos + k
  done;
  !pos

let read_frame fd =
  let hdr = Bytes.create 4 in
  match really_read fd hdr 0 4 with
  | 0 -> None
  | k when k < 4 -> failwith "Serve.Protocol: truncated frame header"
  | _ ->
      let len = Int32.to_int (Bytes.get_int32_be hdr 0) in
      if len < 0 || len > max_frame then
        failwith (Printf.sprintf "Serve.Protocol: bad frame length %d" len);
      let body = Bytes.create len in
      if really_read fd body 0 len < len then failwith "Serve.Protocol: truncated frame body";
      Some (Bytes.unsafe_to_string body)

(* --- incremental deframing ------------------------------------------ *)

(* A flat byte region with a read cursor: each feed blits only the new
   chunk and extracts frames in place, so receiving a near-max frame in
   small reads costs O(frame), not O(frame^2) as re-buffering the whole
   backlog on every call would.  The region is compacted (remainder
   shifted to offset 0) only right before it must grow, which keeps the
   shift amortized O(1) per byte. *)
type deframer = {
  mutable data : Bytes.t;
  mutable start : int;  (* offset of the first unconsumed byte *)
  mutable len : int;  (* unconsumed bytes from [start] *)
}

let deframer () = { data = Bytes.create 4096; start = 0; len = 0 }

let feed d bytes len =
  if d.start + d.len + len > Bytes.length d.data then begin
    if d.start > 0 then begin
      Bytes.blit d.data d.start d.data 0 d.len;
      d.start <- 0
    end;
    if d.len + len > Bytes.length d.data then begin
      let cap = ref (Bytes.length d.data) in
      while !cap < d.len + len do
        cap := !cap * 2
      done;
      let grown = Bytes.create !cap in
      Bytes.blit d.data 0 grown 0 d.len;
      d.data <- grown
    end
  end;
  Bytes.blit bytes 0 d.data (d.start + d.len) len;
  d.len <- d.len + len;
  let frames = ref [] in
  let err = ref None in
  let continue = ref true in
  while !continue && !err = None && d.len >= 4 do
    let flen = Int32.to_int (Bytes.get_int32_be d.data d.start) in
    if flen < 0 || flen > max_frame then
      err := Some (Printf.sprintf "bad frame length %d" flen)
    else if d.len - 4 >= flen then begin
      frames := Bytes.sub_string d.data (d.start + 4) flen :: !frames;
      d.start <- d.start + 4 + flen;
      d.len <- d.len - 4 - flen
    end
    else continue := false
  done;
  if d.len = 0 then d.start <- 0;
  match !err with Some e -> Error e | None -> Ok (List.rev !frames)
