(** The batched evaluation server: accept loop, admission control,
    micro-batched execution, graceful drain.

    Two domains per server: an io domain running a {!Readiness} event
    loop (poll(2) by default — no FD_SETSIZE ceiling; accept,
    incremental deframing, decode, cache lookup, admission, immediate
    replies for sheds / errors / cache hits / [stats]), and a
    {!Batcher} domain executing admitted requests on the caller's
    {!Runtime.Sched}.  Connections are dispatched O(1) through a table
    keyed by descriptor, so thousands of concurrent connections cost
    only their live events.

    Overload is always explicit: a connection beyond [max_conns] is
    refused at accept; a request that does not fit the bounded
    admission queue is answered [Shed "queue_full"]; one arriving
    after {!stop} began is answered [Shed "closed"]; one whose
    deadline lapsed in the queue is answered [Shed "deadline"].
    Nothing is silently dropped.

    With [cache_capacity > 0], repeated scalar requests are memoized
    in a bounded LRU ({!Cache}) keyed on the exact operand bit
    patterns; a hit is answered directly from the io domain —
    bitwise-identical to the miss that populated it, since the cached
    component array re-encodes through the same deterministic
    emitter.  Requests carrying deadlines always travel the queue.

    A server is fed from one of two sources: {!start} binds and owns a
    listening socket; {!start_adopted} instead ingests
    already-accepted connections passed over a unix-domain channel by
    a parent distributor (SCM_RIGHTS fd passing; see {!Shard}).
    Closing the channel is the drain signal: the server invokes
    [on_drain] and keeps serving its adopted connections until
    {!stop}.

    {!start} registers a {!Runtime.Sched.on_shutdown} drain hook, so
    [Sched.shutdown] / [Sched.drain_all] (e.g. from a signal handler)
    gracefully stops the server first: the admission queue closes, the
    batcher finishes every already-accepted request — zero accepted
    requests are lost — and only then do the worker domains stop. *)

type addr =
  | Unix_path of string  (** unix-domain stream socket; file is unlinked first *)
  | Tcp of { host : string; port : int }  (** [port = 0] picks a free port *)

type t

val start :
  sched:Runtime.Sched.t ->
  addr:addr ->
  ?queue_capacity:int ->
  ?max_batch:int ->
  ?window_us:float ->
  ?cache_capacity:int ->
  ?max_conns:int ->
  unit ->
  t
(** Bind, listen, and spawn the io and batcher domains.  Defaults:
    [queue_capacity = 64], [max_batch = 32], [window_us = 200.],
    [cache_capacity = 0] (memoization off), [max_conns = 16384].
    [max_batch = 1] or [window_us = 0.] serves batch-size-1. *)

val start_adopted :
  sched:Runtime.Sched.t ->
  chan:Unix.file_descr ->
  ?on_drain:(unit -> unit) ->
  ?queue_capacity:int ->
  ?max_batch:int ->
  ?window_us:float ->
  ?cache_capacity:int ->
  ?max_conns:int ->
  unit ->
  t
(** Serve connections received over [chan] (a unix-domain stream
    socket) instead of a listener: each ['c']-tagged SCM_RIGHTS
    message carries one accepted connection fd.  A ['q'] control byte
    or channel EOF triggers [on_drain] (called once, from the io
    domain) — the parent's way of requesting a graceful drain; the
    callback should arrange for {!stop} from another thread.  The
    server takes ownership of [chan]. *)

val bound_addr : t -> Unix.sockaddr
(** The actual bound address (resolves [Tcp { port = 0; _ }]).  Raises
    [Invalid_argument] for an adopted server. *)

val bind_listen : addr -> Unix.file_descr * Unix.sockaddr * string option
(** Bind and listen on [addr]; returns the socket, its resolved
    address, and the unix-socket path to unlink on teardown.  Used by
    {!Shard} to own the listener in the parent distributor. *)

val stop : t -> unit
(** Graceful drain: close admission, finish every accepted request,
    answer late arrivals [Shed "closed"], then close the listener (or
    adoption channel) and all connections.  Idempotent; also runs via
    the scheduler's shutdown hook. *)

val stats_doc : t -> Obs.Json_out.t
(** Server introspection per {!Obs.Schemas.serve_stats} (schema
    [fpan-serve/4]): readiness backend, connection and admission
    counters, shed counters (including priority displacements and the
    per-SLA-bucket shed split), queue depth / high-water mark, cache
    hit/miss/size/evictions, batch-size histogram, and the scheduler's
    worker telemetry.  Also what the wire [stats] operation returns. *)

val cache_stats : t -> Cache.stats

val open_conns : t -> int
(** Currently-open connections (listener-accepted plus adopted). *)
