(** The batched evaluation server: accept loop, admission control,
    micro-batched execution, graceful drain.

    Two domains per server: an io domain running a [select]-based
    event loop (accept, incremental deframing, decode, admission,
    immediate replies for sheds / errors / [stats]), and a
    {!Batcher} domain executing admitted requests on the caller's
    {!Runtime.Sched}.

    Overload is always explicit: a request that does not fit the
    bounded admission queue is answered [Shed "queue_full"]; one
    arriving after {!stop} began is answered [Shed "closed"]; one
    whose deadline lapsed in the queue is answered [Shed "deadline"].
    Nothing is silently dropped.

    {!start} registers a {!Runtime.Sched.on_shutdown} drain hook, so
    [Sched.shutdown] / [Sched.drain_all] (e.g. from a signal handler)
    gracefully stops the server first: the admission queue closes, the
    batcher finishes every already-accepted request — zero accepted
    requests are lost — and only then do the worker domains stop. *)

type addr =
  | Unix_path of string  (** unix-domain stream socket; file is unlinked first *)
  | Tcp of { host : string; port : int }  (** [port = 0] picks a free port *)

type t

val start :
  sched:Runtime.Sched.t ->
  addr:addr ->
  ?queue_capacity:int ->
  ?max_batch:int ->
  ?window_us:float ->
  unit ->
  t
(** Bind, listen, and spawn the io and batcher domains.  Defaults:
    [queue_capacity = 64], [max_batch = 32], [window_us = 200.].
    [max_batch = 1] or [window_us = 0.] serves batch-size-1. *)

val bound_addr : t -> Unix.sockaddr
(** The actual bound address (resolves [Tcp { port = 0; _ }]). *)

val stop : t -> unit
(** Graceful drain: close admission, finish every accepted request,
    answer late arrivals [Shed "closed"], then close the listener and
    all connections.  Idempotent; also runs via the scheduler's
    shutdown hook. *)

val stats_doc : t -> Obs.Json_out.t
(** Server introspection per {!Obs.Schemas.serve_stats}: admission and
    shed counters, queue depth / high-water mark, batch-size
    histogram, and the scheduler's worker telemetry.  Also what the
    wire [stats] operation returns. *)
