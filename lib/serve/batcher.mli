(** Deadline-aware micro-batcher: the consumer side of the admission
    queue.

    A dedicated domain pops up to [max_batch] requests per cycle
    (waiting at most [window_ns] after the first to let the batch
    fill), sheds the ones whose deadline already passed, groups the
    rest by (op, tier, sla?), and executes each group as {e one}
    batched planar kernel call on the shared {!Runtime.Sched} —
    elementwise ops pack operands into {!Multifloat.Batch} planes,
    per-request ops (dot, axpy, sum, poly-eval, program) fan out over
    the group with [parallel_for]; a [program] request's fused chain
    runs as one single-pass wire-program kernel.  Results scatter back
    through each request's reply callback.

    SLA requests form escalation cohorts per (op, starting tier): the
    whole pending subset is batch-evaluated per tier, each element
    certified against its own budget ({!Adaptive.Certify.certify}),
    and only the failing subset — a per-element escalation mask —
    climbs to the next rung (bigfloat fallback last).

    Responses are bitwise identical to the scalar path ({!eval_one})
    for every op and tier: the packed ops ride the planar kernels'
    bitwise-equals-scalar guarantee, and the per-request ops run the
    same accumulation orders in both paths.

    [max_batch = 1] or [window_ns = 0L] degenerates to batch-size-1
    serving — the baseline the load generator compares against. *)

type entry = {
  req : Protocol.request;
  arrival_ns : float;  (** {!Obs.Clock.now_ns} at admission *)
  reply : Protocol.response -> unit;
      (** Called exactly once, from the batcher domain. *)
}

type stats = {
  batches : int;  (** executed micro-batches (groups) *)
  completed : int;  (** requests answered with [Result] *)
  shed_deadline : int;
  errors : int;
  histogram : (int * int) list;  (** batch size -> count, ascending *)
  sla_requests : int;  (** requests that carried an accuracy SLA *)
  sla_escalations : int;  (** total ladder rungs climbed past starting tiers *)
  sla_chosen : (string * int) list;
      (** escalation histogram: finally-chosen tier -> count, in ladder
          order mf2, mf3, mf4, bigfloat *)
}

type t

val create :
  sched:Runtime.Sched.t ->
  queue:entry Admission.t ->
  max_batch:int ->
  window_ns:int64 ->
  ?flush:(unit -> unit) ->
  unit ->
  t
(** Spawn the batcher domain.  It exits once [queue] is closed and
    fully drained — every already-admitted entry gets a reply.
    [flush] (default a no-op) runs at the end of every cycle, after
    the cycle's replies; the server uses it to coalesce buffered
    per-connection reply bytes into one write each. *)

val join : t -> unit
(** Wait for the batcher domain to exit (close the queue first). *)

val stats : t -> stats
(** Exact after {!join}; a racy-but-consistent snapshot before. *)

(** {1 Reference execution} *)

val eval_one : Protocol.request -> (float array array, string) result
(** The scalar path: evaluate one request with the scalar MultiFloat
    kernels, no batching, no scheduler.  Tests pin the served batched
    responses bitwise against this.  For SLA requests this runs the
    full escalation ladder ({!eval_adaptive}) and returns its result. *)

val eval_adaptive : Protocol.request -> (Adaptive.Escalate.outcome, string) result
(** Scalar escalation reference for an SLA request: each ladder rung
    evaluated by that tier's own scalar kernels.  The served cohort
    path makes the same certification decisions over the same
    (bitwise-identical) batched results, so its responses match this
    outcome exactly. *)

val pad_request : terms:int -> Protocol.request -> Protocol.request
(** The fixed-tier twin of an SLA request at one ladder rung: operands
    zero-padded (exact) to the rung's width, the sla dropped — the
    request whose direct evaluation the SLA path matches bitwise. *)
