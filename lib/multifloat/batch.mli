(** Planar (structure-of-arrays) MultiFloat vectors.

    An n-element 2/3/4-term vector is [terms] parallel unboxed
    [floatarray]s, one per expansion component, instead of an array of
    boxed component records.  The batched operations run the
    branch-free FPAN wire sequences of {!Mf2}/{!Mf3}/{!Mf4}
    element-wise over the planes with no per-element heap allocation;
    gate and operand order match the scalar kernels exactly, so batched
    results are {e bitwise equal} to scalar loops over element arrays.

    The implementation (batch.ml) is GENERATED from the FPAN wire
    programs by [lib/fpan_ir] ([gen/gen_batch.ml]); a drift rule in
    this directory's dune file diffs the committed file against a
    fresh regeneration on every [dune runtest].

    This is the OCaml stand-in for the paper's cross-element
    autovectorization (Section 5): branch-freedom makes the element
    loop a fixed dataflow, and the planar layout is what lets that
    dataflow stream through the FPU without pointer chasing — the same
    reason the paper's AVX-512/NEON lanes want their operands planar. *)

(** Planar vector operations over one MultiFloat size.  The fold and
    update operations fix the accumulation order of the scalar BLAS
    kernels (see the individual operations). *)
module type V = sig
  type elt
  (** The scalar MultiFloat element type. *)

  type t
  (** A planar vector of [elt]s. *)

  val terms : int
  val length : t -> int

  val create : int -> t
  (** Zero-filled planar vector. *)

  val copy : t -> t
  val get : t -> int -> elt
  val set : t -> int -> elt -> unit
  val of_array : elt array -> t
  val to_array : t -> elt array

  val of_floats : float array -> t
  (** Lift doubles: component 0 takes the value, the rest are zero. *)

  val to_floats : t -> float array
  (** Leading components. *)

  val add : dst:t -> t -> t -> unit
  (** Elementwise; [dst] may alias either operand.  All three vectors
      must have the same length ([Invalid_argument] otherwise, as for
      every operation below). *)

  val sub : dst:t -> t -> t -> unit
  val mul : dst:t -> t -> t -> unit

  val map : dst:t -> (elt -> elt) -> t -> unit
  (** [dst.(i) <- f src.(i)] in index order; [dst] may alias the
      source.  Because the elements are independent, the result is
      bitwise the scalar loop for any [f] — this is how scalar-only
      operations (division, square root, the elementary functions) run
      over planar batches. *)

  val map2 : dst:t -> (elt -> elt -> elt) -> t -> t -> unit
  (** Binary {!map}: [dst.(i) <- f a.(i) b.(i)]. *)

  val axpy : lo:int -> hi:int -> alpha:elt -> x:t -> y:t -> unit
  (** [y.(i) <- add (mul alpha x.(i)) y.(i)] for [lo <= i < hi]: the
      scalar AXPY update order. *)

  val madd : alpha:elt -> x:t -> xoff:int -> y:t -> yoff:int -> len:int -> unit
  (** [y.(yoff+i) <- add y.(yoff+i) (mul alpha x.(xoff+i))]: the GEMM
      rank-1 row update, accumulator-first operand order. *)

  val dot : init:elt -> x:t -> xoff:int -> y:t -> yoff:int -> len:int -> elt
  (** Index-order fold [acc <- add acc (mul x.(xoff+i) y.(yoff+i))]
      starting from [init]: the scalar DOT/GEMV accumulation order. *)

  val sum : init:elt -> x:t -> xoff:int -> len:int -> elt
  (** Index-order fold [acc <- add acc x.(xoff+i)] starting from
      [init]: the scalar SUM accumulation order. *)

  val dot_sub : b:elt -> x:t -> xoff:int -> y:t -> yoff:int -> len:int -> elt
  (** [sub b (dot ~init:zero ~x ~xoff ~y ~yoff ~len)] with the final
      subtraction staged behind the dot accumulator: one fused pass
      over the planes computing a GEMV-residual row with no boxed
      intermediate.  Bitwise equal to the unfused composition (the
      scalar [sub] is the add network on negated components, which is
      exactly the staged tail). *)

  val axpy_dot : lo:int -> hi:int -> alpha:elt -> x:t -> y:t -> w:t -> init:elt -> elt
  (** Fused [axpy] + [dot]: stores [y.(i) <- add (mul alpha x.(i))
      y.(i)] and folds [acc <- add acc (mul y.(i) w.(i))] in the same
      pass over the planes, for [lo <= i < hi]; returns the fold
      started from [init].  Bitwise equal to [axpy] followed by
      [dot ~x:y ~y:w] over the same range. *)

  val transpose : m:int -> n:int -> src:t -> dst:t -> unit
  (** [dst.(j*m+i) <- src.(i*n+j)] viewing [src] as an [m*n] row-major
      matrix: the plane-wise matrix transpose, blocked for cache (the
      panel-packing primitive that turns matrix columns into contiguous
      planar rows, e.g. for [B^T]-packed dot micro-kernels).  [dst]
      must be a distinct vector; both lengths must be [m*n]
      ([Invalid_argument] otherwise). *)
end

module Mf1v : V with type elt = float
(** Native doubles in a single plane, so 53-bit rows run through the
    same batched kernels. *)

module Mf2v : V with type elt = Mf2.t
module Mf3v : V with type elt = Mf3.t
module Mf4v : V with type elt = Mf4.t

(** What {!Of_scalar} needs from a scalar arithmetic: the
    component-array view plus the ring operations. *)
module type SCALAR = sig
  type t

  val terms : int
  val zero : t
  val of_float : float -> t
  val to_float : t -> float
  val components : t -> float array
  val of_components : float array -> t
  val add : t -> t -> t
  val sub : t -> t -> t
  val mul : t -> t -> t
end

module Of_scalar (K : SCALAR) : V with type elt = K.t
(** Planar storage with element-at-a-time scalar arithmetic: same
    layout and accumulation orders as the generated vectors, for
    types without a specialized batch kernel (e.g. the emulated-float32
    GPU types). *)
