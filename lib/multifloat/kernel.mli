(** The minimal operations a MultiFloat size provides by hand-inlined
    branch-free code; {!Ops.Make} derives the rest of the public API
    (division, square root, comparisons, decimal I/O) from these. *)

module type KERNEL = sig
  type t
  (** A nonoverlapping floating-point expansion with [terms] components,
      leading (largest-magnitude) component first. *)

  val terms : int
  (** Number of expansion components (2, 3, or 4). *)

  val precision_bits : int
  (** Effective precision in bits: [terms * p + terms - 1] with p = 53,
      per Eq. 7 of the paper. *)

  val error_exp : int
  (** Verified accuracy exponent [q] of {!add} and {!mul}: the result is
      within [2^-q] relative error of the exact sum/product. *)

  val zero : t
  val of_float : float -> t

  val to_float : t -> float
  (** Leading component: the correctly-rounded double approximation for
      any normalized (nonoverlapping) value. *)

  val components : t -> float array
  (** All components, leading first. *)

  val of_components : float array -> t
  (** Inverse of {!components}; the array must be a nonoverlapping
      expansion of exactly [terms] components (checked by assertion). *)

  val add : t -> t -> t
  val sub : t -> t -> t
  val mul : t -> t -> t
  val neg : t -> t
  val add_float : t -> float -> t
  val sub_float : t -> float -> t
  val mul_float : t -> float -> t

  val scale_pow2 : t -> int -> t
  (** Exact multiplication by [2^k] (termwise [ldexp]; exact as long as
      no component over- or underflows). *)
end
