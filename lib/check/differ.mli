(** The differential driver: runs one corpus case through every
    implementation of a tier, scores each against the exact oracle, and
    settles the bitwise scalar-vs-batch obligations.

    Failures are reported through the sink together with a [keep]
    predicate that re-runs the whole check on mutated inputs, so callers
    can hand it straight to {!Shrink.shrink}. *)

type kind =
  | Bound_exceeded      (** gated error above the per-op bound *)
  | Nonfinite_result    (** NaN/Inf (or an exception) on finite gated inputs *)
  | Overlapping_output  (** result expansion violates nonoverlap *)
  | Batch_mismatch      (** planar path differs bitwise from its scalar twin *)
  | Containment_violated
      (** a ball-arithmetic row's certified radius fails to enclose the
          exact result *)

val kind_name : kind -> string

type finding = {
  impl : string;
  op : Corpus.op;
  cls : Corpus.cls;
  kind : kind;
  inputs : float array array;  (** flat operand list, shape implied by [op] *)
  got : float array;           (** offending result components, concatenated *)
  ulps : float;                (** observed error in tier-bound units; NaN if n/a *)
}

type sink = {
  on_ulps : Impls.t -> Corpus.op -> float -> unit;
  on_skip : Impls.t -> Corpus.op -> unit;
  on_fail : finding -> keep:(float array array -> bool) -> unit;
}

val gate_bound : Corpus.op -> len:int -> float
(** Hard bound, in units of [2^-q * |reference|], applied to gated
    implementations on gated corpus classes. *)

val run_scalar_case :
  sink -> impls:Impls.t list -> q:int -> ops:Corpus.op list -> case:Corpus.case -> unit

val run_vector_case :
  sink ->
  impls:Impls.t list ->
  q:int ->
  ops:Corpus.op list ->
  cls:Corpus.cls ->
  alpha:float array ->
  x:float array array ->
  y:float array array ->
  a:float array array ->
  m:int ->
  unit
(** [a] is a row-major [m * length x] element array for GEMV. *)
