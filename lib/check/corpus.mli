(** Structured adversarial input corpus for the differential audit.

    Operands are raw component arrays ([terms]-term expansions, leading
    term first): the one representation every implementation of a tier
    can ingest — MultiFloat via [of_components], QD/CAMPARY structurally,
    the software FPU by rounding the exact sum to its precision.

    Each class targets a specific failure mode (massive cancellation,
    ulp-adjacent ties, subnormal and near-overflow scales, interleaved
    zeros, full-mantissa randoms, IEEE specials) and declares per
    operation whether the oracle error bound is a hard {!gated} check
    there; outside the gated envelope the audit records errors without
    failing (Section 4.4 of the paper documents those deviations). *)

type op = Add | Sub | Mul | Div | Sqrt | Dot | Axpy | Gemv

val op_name : op -> string
val op_of_name : string -> op
(** Raises [Invalid_argument] on an unknown name. *)

val scalar_ops : op list
val vector_ops : op list
val all_ops : op list

type cls =
  | Uniform
  | Full_mantissa
  | Cancellation
  | Ulp_adjacent
  | Wide_exponent
  | Subnormal
  | Near_overflow
  | Zero_structure
  | Special

val cls_name : cls -> string

val gated : cls -> op -> bool
(** Is the oracle bound a hard pass/fail gate for this class and
    operation? *)

type case = {
  cls : cls;
  x : float array;
  y : float array;
}

val has_special : float array -> bool
(** Any non-finite component. *)

val scalar_case : Random.State.t -> terms:int -> int -> case
(** [scalar_case rng ~terms i]: the [i]-th scalar case (classes cycle
    deterministically; the heavyweight classes appear twice per
    cycle). *)

val vector_case :
  Random.State.t -> terms:int -> len:int -> int -> cls * float array array * float array array
(** Element vectors for DOT/AXPY/GEMV, including exact-cancellation and
    special-element structures. *)
