(* The JSON reader/writer moved to lib/obs (Obs.Json_out): the
   observability layer sits below lib/check in the dependency order
   (lib/runtime depends on it), and both need JSON emission.  This
   alias keeps every existing Check.Json_out user working. *)

include Obs.Json_out
