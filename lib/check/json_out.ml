(* Minimal JSON writer for the machine-readable benchmark outputs
   (BENCH_fig9.json and friends).  Emission only, no parsing, no
   dependencies; pretty-printed so the files diff cleanly across
   runs. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* JSON has no inf/nan literals: emit them as null. *)
let num f =
  if not (Float.is_finite f) then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.6g" f

let rec emit buf ~level v =
  let pad n = String.make (2 * n) ' ' in
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Num f -> Buffer.add_string buf (num f)
  | Str s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
  | List [] -> Buffer.add_string buf "[]"
  | List items ->
      Buffer.add_string buf "[\n";
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_string buf ",\n";
          Buffer.add_string buf (pad (level + 1));
          emit buf ~level:(level + 1) item)
        items;
      Buffer.add_char buf '\n';
      Buffer.add_string buf (pad level);
      Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
      Buffer.add_string buf "{\n";
      List.iteri
        (fun i (k, item) ->
          if i > 0 then Buffer.add_string buf ",\n";
          Buffer.add_string buf (pad (level + 1));
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape k);
          Buffer.add_string buf "\": ";
          emit buf ~level:(level + 1) item)
        fields;
      Buffer.add_char buf '\n';
      Buffer.add_string buf (pad level);
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 4096 in
  emit buf ~level:0 v;
  Buffer.add_char buf '\n';
  Buffer.contents buf

let write_file path v =
  let oc = open_out path in
  output_string oc (to_string v);
  close_out oc;
  Printf.printf "  [wrote %s]\n%!" path
