(** Minimal JSON writer for the machine-readable outputs
    ([BENCH_*.json], [CHECK_report.json]).  Emission only, no parsing,
    no dependencies; pretty-printed so the files diff cleanly across
    runs.  Non-finite numbers are emitted as [null] (JSON has no
    inf/nan literals); exact float transport uses {!Str} with C99 hex
    notation instead. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
val write_file : string -> t -> unit
