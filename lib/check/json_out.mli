(** Alias of {!Obs.Json_out} (the writer moved into the observability
    layer, which sits below lib/check in the dependency order).  See
    that module for documentation. *)

type t = Obs.Json_out.t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
val write_file : string -> t -> unit

exception Parse_error of string

val parse : string -> (t, string) result
val parse_exn : string -> t
val parse_file : string -> (t, string) result
val member : string -> t -> t option
val to_list : t -> t list option
val to_num : t -> float option
val to_str : t -> string option
