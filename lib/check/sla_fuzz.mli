(** Fuzz gate for the adaptive-precision escalation engine
    ({!Adaptive.Escalate}): random certifiable ops, operand widths and
    SLA exponents; per case the certified bound must contain the true
    error (high-precision ball oracle), escalation must be monotone in
    [q], and MultiFloat-rung outcomes must be bitwise identical to the
    direct fixed-tier evaluation of the padded operands.

    Deterministic in [(seed, cases)]. *)

type report = {
  cases : int;
  containment_violations : int;
      (** certified bound failed to contain the true error *)
  monotonicity_violations : int;
      (** a larger q chose a cheaper tier than a smaller q *)
  bitwise_mismatches : int;
      (** outcome differed from the fixed-tier twin evaluation *)
  errors : int;  (** {!Adaptive.Escalate.run} rejected a generated case *)
}

val passed : report -> bool

val run : ?cases:int -> ?seed:int -> unit -> report
