(** The implementation registry of the differential audit: every
    arithmetic under comparison behind one uniform surface, operands and
    results transported as raw component arrays.

    Gated implementations (the MultiFloat scalar and planar Batch paths)
    must stay within the per-format error bound on the gated corpus and,
    for Batch, match their scalar twin {e bitwise} ([bitref]).  The
    branching baselines — QD, CAMPARY, the software FPU — are audited
    for their ulp histograms but never gated: their divergence under
    cancellation is the paper's claim, not a defect here.  Vector
    operations run through the production {!Blas.Kernels} code. *)

type vec = float array array

(** A ball-arithmetic enclosure: midpoint expansion plus a certified
    absolute radius.  Rows exporting a [ball] surface (the Arb twins
    arb106/arb159/arb212) carry a {e containment} obligation — the
    exact result must lie within [b_rad] of [b_mid] — checked by the
    differ against the exact oracle. *)
type ball = { b_mid : float array; b_rad : float }

type t = {
  name : string;
  terms : int;
  gated : bool;
  bitref : string option;
  add : (float array -> float array -> float array) option;
  sub : (float array -> float array -> float array) option;
  mul : (float array -> float array -> float array) option;
  div : (float array -> float array -> float array) option;
  sqrt_ : (float array -> float array) option;
  dot : (vec -> vec -> float array) option;
  axpy : (alpha:float array -> x:vec -> y:vec -> vec) option;
  gemv : (m:int -> n:int -> a:vec -> x:vec -> vec) option;
  ball : (Corpus.op -> vec -> ball option) option;
}

val q_of_terms : int -> int
(** The verified accuracy exponent of the tier's MultiFloat format
    (103/156/208): the unit in which every implementation's error is
    reported, so histograms are comparable within a tier. *)

val all : t list
val tier : int -> t list
val find : string -> t option
