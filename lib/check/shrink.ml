(* Greedy counterexample shrinking.

   A failing case is a list of operands (component arrays); [keep]
   re-runs the failing check on a candidate.  Components are simplified
   one at a time — first to zero, then to a bare power of two in the
   same binade, then to 4- and 12-bit mantissas — and a change is kept
   only while the case still fails.  The loop runs to a fixpoint, so
   the result is locally minimal: no single remaining component can be
   zeroed or simplified further.  Counterexamples that started as
   multi-term adversarial structures routinely collapse to two to four
   surviving terms, which is what makes them debuggable. *)

let nonzero_terms inputs =
  Array.fold_left
    (fun acc o -> acc + Array.fold_left (fun a v -> if v = 0.0 then a else a + 1) 0 o)
    0 inputs

let bits_eq a b = Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)

(* Simplification candidates, most aggressive first. *)
let candidates v =
  if not (Float.is_finite v) then [ 0.0; 1.0 ]
  else if v = 0.0 then []
  else begin
    let keep_bits k =
      let m, e = Float.frexp v in
      Float.ldexp (Float.of_int (int_of_float (Float.ldexp m k))) (e - k)
    in
    let pow2 = Float.ldexp (if v < 0.0 then -1.0 else 1.0) (Eft.exponent v) in
    [ 0.0; pow2; keep_bits 4; keep_bits 12 ]
  end

let shrink ?(canon = fun v -> v) ~keep inputs =
  let cur = Array.map Array.copy inputs in
  let safe_keep c = try keep c with _ -> false in
  let changed = ref true in
  let rounds = ref 0 in
  while !changed && !rounds < 8 do
    changed := false;
    incr rounds;
    Array.iter
      (fun operand ->
        Array.iteri
          (fun ci v ->
            let rec try_cands = function
              | [] -> ()
              | c :: rest ->
                  let c = canon c in
                  if bits_eq c v then try_cands rest
                  else begin
                    operand.(ci) <- c;
                    if safe_keep cur then changed := true
                    else begin
                      operand.(ci) <- v;
                      try_cands rest
                    end
                  end
            in
            try_cands (candidates v))
          operand)
      cur
  done;
  cur
