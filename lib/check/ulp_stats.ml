(* Per-(implementation, operation) error statistics in units of the
   tier bound 2^-q * |reference| ("ulps" below).  The histogram is
   log2-bucketed: bucket 0 collects everything below 2^lo_exp
   (including exact results), the last bucket everything at or above
   2^hi_exp, and bucket i in between covers [2^(lo_exp+i-1),
   2^(lo_exp+i)).  A verified FPAN implementation should concentrate
   in the buckets at or below 1 ulp; the branching baselines spread
   right of it — the per-format shape Figure 1 of the paper argues
   about, now machine-readable. *)

let lo_exp = -12
let hi_exp = 12
let nbuckets = hi_exp - lo_exp + 2

type t = {
  mutable count : int;
  mutable skipped : int;
  mutable nonfinite : int;
  mutable exceed : int;
  mutable max_ulps : float;
  mutable sum_ulps : float;
  buckets : int array;
}

let create () =
  { count = 0; skipped = 0; nonfinite = 0; exceed = 0; max_ulps = 0.0; sum_ulps = 0.0;
    buckets = Array.make nbuckets 0 }

let bucket_of ulps =
  if ulps < Float.ldexp 1.0 lo_exp then 0
  else if not (ulps < Float.ldexp 1.0 hi_exp) then nbuckets - 1
  else begin
    (* frexp gives floor(log2 ulps) = e - 1 exactly; Float.log2 would
       round values one ulp below a power of two up onto the boundary
       and misbucket them *)
    let b = 1 + (snd (Float.frexp ulps) - 1 - lo_exp) in
    Stdlib.min (nbuckets - 2) (Stdlib.max 1 b)
  end

let record t ulps =
  t.count <- t.count + 1;
  if Float.is_nan ulps then t.nonfinite <- t.nonfinite + 1
  else begin
    if ulps > t.max_ulps then t.max_ulps <- ulps;
    if Float.is_finite ulps then t.sum_ulps <- t.sum_ulps +. ulps;
    t.buckets.(bucket_of ulps) <- t.buckets.(bucket_of ulps) + 1
  end

let skip t = t.skipped <- t.skipped + 1
let fail t = t.exceed <- t.exceed + 1

(* Pointwise combination of two accumulators, as if every case of [a]
   and [b] had been recorded into one: counts and buckets add, max is
   max.  Commutative and associative (addition and max both are), so
   sharded campaigns can merge in any order. *)
let merge a b =
  {
    count = a.count + b.count;
    skipped = a.skipped + b.skipped;
    nonfinite = a.nonfinite + b.nonfinite;
    exceed = a.exceed + b.exceed;
    max_ulps = Float.max a.max_ulps b.max_ulps;
    sum_ulps = a.sum_ulps +. b.sum_ulps;
    buckets = Array.init nbuckets (fun i -> a.buckets.(i) + b.buckets.(i));
  }

let bucket t i = t.buckets.(i)

let mean t = if t.count = 0 then 0.0 else t.sum_ulps /. Float.of_int t.count
let count t = t.count
let skipped t = t.skipped
let max_ulps t = t.max_ulps
let exceed t = t.exceed

let to_json ~impl ~op ~q ~gated t =
  Json_out.Obj
    [ ("impl", Json_out.Str impl);
      ("op", Json_out.Str op);
      ("q", Json_out.Num (Float.of_int q));
      ("gated", Json_out.Bool gated);
      ("count", Json_out.Num (Float.of_int t.count));
      ("skipped", Json_out.Num (Float.of_int t.skipped));
      ("nonfinite", Json_out.Num (Float.of_int t.nonfinite));
      ("exceed", Json_out.Num (Float.of_int t.exceed));
      ("max_ulps", Json_out.Num t.max_ulps);
      ("mean_ulps", Json_out.Num (mean t));
      ( "histogram",
        Json_out.Obj
          [ ("lo_exp", Json_out.Num (Float.of_int lo_exp));
            ("hi_exp", Json_out.Num (Float.of_int hi_exp));
            ("buckets", Json_out.List (Array.to_list (Array.map (fun c -> Json_out.Num (Float.of_int c)) t.buckets)))
          ] )
    ]
