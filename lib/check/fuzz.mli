(** The fuzzing campaign: deterministic corpus generation over the
    implementation registry, with shrinking and a machine-readable
    report (schema ["fpan-check/1"], written next to the BENCH_*.json
    files by [fpan_tool fuzz]). *)

type config = {
  cases : int;          (** scalar cases per tier; vector cases are [cases/64] *)
  seed : int;
  tiers : int list;     (** subset of [2; 3; 4] *)
  ops : Corpus.op list;
  vec_len : int;
  max_findings : int;   (** findings shrunk and carried in the report *)
}

val default : config

type shrunk_finding = {
  finding : Differ.finding;
  shrunk : float array array;
  shrunk_terms : int;
}

type stat_row = {
  impl : string;
  op : string;
  q : int;
  gated : bool;
  stats : Ulp_stats.t;
}

type report = {
  config : config;
  scalar_cases : int;
  vector_cases : int;
  failure_count : int;
  failures : shrunk_finding list;
  rows : stat_row list;
}

val passed : report -> bool
val run : config -> report

val self_test : unit -> (Differ.finding * float array array * int, string) result
(** Mutation sanity check: enrolls QD's [sloppy_add] (broken
    renormalization under cancellation) as a gated implementation; it
    must be caught and its counterexample shrunk to at most four
    nonzero terms.  Returns the finding, the shrunk inputs, and the
    term count — or a diagnostic if the harness failed to catch it. *)

val to_json : report -> Json_out.t
val write_report : string -> report -> unit
