(** Accumulated error statistics for one (implementation, operation)
    pair, in units of the tier bound [2^-q * |reference|], with a
    log2-bucketed histogram for the JSON audit report. *)

type t

val lo_exp : int
val hi_exp : int
val nbuckets : int

val create : unit -> t

val record : t -> float -> unit
(** Record one observed error in ulp units (non-finite values are
    counted separately; +inf lands in the overflow bucket). *)

val skip : t -> unit
(** Count a case where the oracle did not apply (special inputs, or an
    ungated implementation producing a non-finite result). *)

val fail : t -> unit
(** Count a gated bound violation. *)

val mean : t -> float
val count : t -> int
val skipped : t -> int
val max_ulps : t -> float
val exceed : t -> int

val bucket_of : float -> int
(** The histogram bucket a given ulp value lands in (exposed for the
    boundary tests: bucket edges sit at exact powers of two). *)

val bucket : t -> int -> int
(** Occupancy of one histogram bucket. *)

val merge : t -> t -> t
(** Pointwise combination (counts and buckets add, max of maxima);
    commutative and associative, so shards merge in any order. *)

val to_json : impl:string -> op:string -> q:int -> gated:bool -> t -> Json_out.t
