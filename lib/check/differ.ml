(* The differential driver: one corpus case, every implementation of a
   tier, one oracle verdict each — plus the bitwise scalar-vs-batch
   obligation for the planar path.

   Verdict policy:
   - gated implementations (MultiFloat scalar/batch) on a gated
     class must (1) return finite components on finite inputs,
     (2) return a nonoverlapping expansion (Eq. 8 of the paper), and
     (3) sit within the per-operation error bound; any miss is a
     failure handed to the sink together with a [keep] predicate that
     re-runs the check, so the caller can shrink it;
   - ungated implementations (and ungated classes) only feed the ulp
     statistics;
   - a batch implementation must additionally match its [bitref]
     scalar twin bit-for-bit on every component — including NaN
     payloads on the special corpus, where the oracle abstains. *)

type kind =
  | Bound_exceeded
  | Nonfinite_result
  | Overlapping_output
  | Batch_mismatch
  | Containment_violated

let kind_name = function
  | Bound_exceeded -> "bound-exceeded"
  | Nonfinite_result -> "nonfinite-result"
  | Overlapping_output -> "overlapping-output"
  | Batch_mismatch -> "batch-mismatch"
  | Containment_violated -> "containment-violated"

type finding = {
  impl : string;
  op : Corpus.op;
  cls : Corpus.cls;
  kind : kind;
  inputs : float array array;
  got : float array;
  ulps : float;
}

type sink = {
  on_ulps : Impls.t -> Corpus.op -> float -> unit;
  on_skip : Impls.t -> Corpus.op -> unit;
  on_fail : finding -> keep:(float array array -> bool) -> unit;
}

(* Per-operation gate bounds in units of 2^-q * |reference| (or the
   magnitude sum for reductions).  add/sub/mul carry the verified
   network bound itself (the 1e-6 covers the ~2^-50 noise of the float
   ratio); Newton division and square root get a small constant factor;
   length-n reductions the standard linear growth. *)
let gate_bound op ~len =
  match op with
  | Corpus.Add | Corpus.Sub | Corpus.Mul -> 1.0 +. 1e-6
  | Corpus.Div | Corpus.Sqrt -> 8.0
  | Corpus.Axpy -> 4.0
  | Corpus.Dot | Corpus.Gemv -> 4.0 *. Float.of_int (Stdlib.max 1 len)

type result =
  | Unsupported
  | Raised
  | Got of float array array  (* result elements, each a component array *)

let finite_elts elts = Array.for_all (fun e -> Array.for_all Float.is_finite e) elts

let bits_eq a b = Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)

let bitwise_eq_elts a b =
  Array.length a = Array.length b
  && Array.for_all2
       (fun ea eb -> Array.length ea = Array.length eb && Array.for_all2 bits_eq ea eb)
       a b

(* The shapes a flat operand list decodes to (shrinking mutates the
   flat list; re-checking needs the structure back). *)
type shape =
  | Sc1                (* [|x|] *)
  | Sc2                (* [|x; y|] *)
  | Vdot               (* x elements then y elements, half and half *)
  | Vaxpy              (* alpha, then x elements, then y elements *)
  | Vgemv of int       (* m; a rows (m*n elements) then x (n elements) *)

let run impl op ~shape (inputs : float array array) : result =
  let app f = try Got (f ()) with _ -> Raised in
  let opt o k = match o with None -> Unsupported | Some f -> k f in
  match (op, shape) with
  | Corpus.Add, Sc2 -> opt impl.Impls.add (fun f -> app (fun () -> [| f inputs.(0) inputs.(1) |]))
  | Corpus.Sub, Sc2 -> opt impl.Impls.sub (fun f -> app (fun () -> [| f inputs.(0) inputs.(1) |]))
  | Corpus.Mul, Sc2 -> opt impl.Impls.mul (fun f -> app (fun () -> [| f inputs.(0) inputs.(1) |]))
  | Corpus.Div, Sc2 -> opt impl.Impls.div (fun f -> app (fun () -> [| f inputs.(0) inputs.(1) |]))
  | Corpus.Sqrt, Sc1 -> opt impl.Impls.sqrt_ (fun f -> app (fun () -> [| f inputs.(0) |]))
  | Corpus.Dot, Vdot ->
      let n = Array.length inputs / 2 in
      let x = Array.sub inputs 0 n and y = Array.sub inputs n n in
      opt impl.Impls.dot (fun f -> app (fun () -> [| f x y |]))
  | Corpus.Axpy, Vaxpy ->
      let n = (Array.length inputs - 1) / 2 in
      let alpha = inputs.(0) in
      let x = Array.sub inputs 1 n and y = Array.sub inputs (1 + n) n in
      opt impl.Impls.axpy (fun f -> app (fun () -> f ~alpha ~x ~y))
  | Corpus.Gemv, Vgemv m ->
      let n = Array.length inputs / (m + 1) in
      let a = Array.sub inputs 0 (m * n) and x = Array.sub inputs (m * n) n in
      opt impl.Impls.gemv (fun f -> app (fun () -> f ~m ~n ~a ~x))
  | _ -> Unsupported

let oracle_err op ~shape (inputs : float array array) (got : float array array) =
  match (op, shape) with
  | Corpus.Add, Sc2 -> Oracle.add_err ~x:inputs.(0) ~y:inputs.(1) ~got:got.(0)
  | Corpus.Sub, Sc2 -> Oracle.sub_err ~x:inputs.(0) ~y:inputs.(1) ~got:got.(0)
  | Corpus.Mul, Sc2 -> Oracle.mul_err ~x:inputs.(0) ~y:inputs.(1) ~got:got.(0)
  | Corpus.Div, Sc2 -> Oracle.div_err ~x:inputs.(0) ~y:inputs.(1) ~got:got.(0)
  | Corpus.Sqrt, Sc1 -> Oracle.sqrt_err ~x:inputs.(0) ~got:got.(0)
  | Corpus.Dot, Vdot ->
      let n = Array.length inputs / 2 in
      Oracle.dot_err ~x:(Array.sub inputs 0 n) ~y:(Array.sub inputs n n) ~got:got.(0)
  | Corpus.Axpy, Vaxpy ->
      let n = (Array.length inputs - 1) / 2 in
      Oracle.axpy_err ~alpha:inputs.(0) ~x:(Array.sub inputs 1 n)
        ~y:(Array.sub inputs (1 + n) n) ~got
  | Corpus.Gemv, Vgemv m ->
      let n = Array.length inputs / (m + 1) in
      Oracle.gemv_err ~m ~n ~a:(Array.sub inputs 0 (m * n)) ~x:(Array.sub inputs (m * n) n) ~got
  | _ -> assert false

(* A shrunk candidate must remain a well-formed gated case: finite
   operands whose leading component is live (a zero leader over a live
   tail breaks the magnitude-ordering precondition), plus the
   per-operation guards. *)
let valid_operand o =
  Array.for_all Float.is_finite o && (o.(0) <> 0.0 || Array.for_all (fun v -> v = 0.0) o)

let valid_gated_inputs op ~shape inputs =
  Array.for_all valid_operand inputs
  &&
  match (op, shape) with
  | Corpus.Div, Sc2 -> inputs.(1).(0) <> 0.0
  | Corpus.Sqrt, Sc1 -> inputs.(0).(0) > 0.0 || Array.for_all (fun v -> v = 0.0) inputs.(0)
  | _ -> true

let gated_failure impl op ~shape ~q ~len inputs =
  match run impl op ~shape inputs with
  | Unsupported -> None
  | Raised -> Some (Nonfinite_result, [||], Float.infinity)
  | Got got ->
      if not (finite_elts got) then
        Some (Nonfinite_result, Array.concat (Array.to_list got), Float.infinity)
      else if not (Array.for_all Eft.is_nonoverlapping_seq got) then
        Some (Overlapping_output, Array.concat (Array.to_list got), Float.nan)
      else begin
        let ulps = Float.ldexp (oracle_err op ~shape inputs got) q in
        if ulps > gate_bound op ~len then
          Some (Bound_exceeded, Array.concat (Array.to_list got), ulps)
        else None
      end

(* The containment obligation of a ball-arithmetic row: the exact
   result must lie inside the returned ball.  The oracle distance is a
   float ratio accurate to ~2^-50 relative, so the radius gets a hair
   of multiplicative slack to keep the check sound. *)
let ball_abs_distance op ~shape inputs (mid : float array) =
  match (op, shape) with
  | Corpus.Add, Sc2 -> Some (Oracle.add_abs ~x:inputs.(0) ~y:inputs.(1) ~got:mid)
  | Corpus.Sub, Sc2 -> Some (Oracle.sub_abs ~x:inputs.(0) ~y:inputs.(1) ~got:mid)
  | Corpus.Mul, Sc2 -> Some (Oracle.mul_abs ~x:inputs.(0) ~y:inputs.(1) ~got:mid)
  | Corpus.Dot, Vdot ->
      let n = Array.length inputs / 2 in
      Some (Oracle.dot_abs ~x:(Array.sub inputs 0 n) ~y:(Array.sub inputs n n) ~got:mid)
  | _ -> None

let containment_failure impl op ~shape inputs =
  match impl.Impls.ball with
  | None -> None
  | Some surface -> (
      match (try surface op inputs with _ -> None) with
      | None -> None
      | Some b -> (
          if not (Array.for_all Float.is_finite b.Impls.b_mid) then
            if b.Impls.b_rad = Float.infinity then None
            else Some (Containment_violated, b.Impls.b_mid, Float.infinity)
          else
            match ball_abs_distance op ~shape inputs b.Impls.b_mid with
            | None -> None
            | Some dist ->
                if dist <= b.Impls.b_rad *. (1. +. 1e-9) +. Float.ldexp 1.0 (-1070)
                then None
                else
                  Some
                    ( Containment_violated,
                      b.Impls.b_mid,
                      (if b.Impls.b_rad > 0.0 then dist /. b.Impls.b_rad
                       else Float.infinity) )))

let batch_mismatch impl ref_impl op ~shape inputs =
  let ra = run impl op ~shape inputs and rb = run ref_impl op ~shape inputs in
  match (ra, rb) with
  | Got a, Got b -> if bitwise_eq_elts a b then None else Some (Array.concat (Array.to_list a))
  | Raised, Raised -> None
  | Unsupported, _ | _, Unsupported -> None
  | Raised, Got b -> Some (Array.concat (Array.to_list b))
  | Got a, Raised -> Some (Array.concat (Array.to_list a))

(* The shrinking predicate: does this (possibly mutated) input still
   exhibit *some* gated failure for this implementation?  Shrinking is
   allowed to morph one failure kind into another — any surviving
   failure is a valid counterexample. *)
let still_fails impl ~ref_impl op ~shape ~q ~len inputs =
  (match ref_impl with
  | Some r -> batch_mismatch impl r op ~shape inputs <> None
  | None -> false)
  || (valid_gated_inputs op ~shape inputs
      && (gated_failure impl op ~shape ~q ~len inputs <> None
          || containment_failure impl op ~shape inputs <> None))

let emit sink impl op ~cls ~shape ~q ~len ~ref_impl (kind, got, ulps) inputs =
  let finding = { impl = impl.Impls.name; op; cls; kind; inputs; got; ulps } in
  sink.on_fail finding ~keep:(fun candidate -> still_fails impl ~ref_impl op ~shape ~q ~len candidate)

(* Drive one op over one case for every implementation, then settle the
   bitwise obligations among them. *)
let drive sink ~impls ~q ~op ~cls ~shape ~len (inputs : float array array) =
  let special = Array.exists Corpus.has_special inputs in
  let oracle_on = Corpus.gated cls op && not special && valid_gated_inputs op ~shape inputs in
  let results =
    List.map
      (fun impl ->
        (* Baselines are not defined on IEEE specials (the Bigfloat FPU
           asserts finiteness); only the branch-free paths, whose
           Section 4.4 semantics the bitwise comparison pins, run there. *)
        if special && not impl.Impls.gated then (impl, Unsupported)
        else (impl, run impl op ~shape inputs))
      impls
  in
  List.iter
    (fun (impl, res) ->
      match res with
      | Unsupported -> ()
      | Raised ->
          if oracle_on && impl.Impls.gated then
            emit sink impl op ~cls ~shape ~q ~len ~ref_impl:None
              (Nonfinite_result, [||], Float.infinity)
              inputs
          else sink.on_skip impl op
      | Got got ->
          if not oracle_on then sink.on_skip impl op
          else if not (finite_elts got) then begin
            if impl.Impls.gated then
              emit sink impl op ~cls ~shape ~q ~len ~ref_impl:None
                (Nonfinite_result, Array.concat (Array.to_list got), Float.infinity)
                inputs
            else sink.on_skip impl op
          end
          else begin
            let ulps = Float.ldexp (oracle_err op ~shape inputs got) q in
            sink.on_ulps impl op ulps;
            if impl.Impls.gated then begin
              if not (Array.for_all Eft.is_nonoverlapping_seq got) then
                emit sink impl op ~cls ~shape ~q ~len ~ref_impl:None
                  (Overlapping_output, Array.concat (Array.to_list got), ulps)
                  inputs
              else if ulps > gate_bound op ~len then
                emit sink impl op ~cls ~shape ~q ~len ~ref_impl:None
                  (Bound_exceeded, Array.concat (Array.to_list got), ulps)
                  inputs
            end
          end)
    results;
  (* Containment obligations: ball-arithmetic rows must enclose the
     exact result (specials abstain along with the oracle). *)
  if oracle_on then
    List.iter
      (fun impl ->
        match containment_failure impl op ~shape inputs with
        | None -> ()
        | Some failure -> emit sink impl op ~cls ~shape ~q ~len ~ref_impl:None failure inputs)
      impls;
  (* Bitwise obligations: each batch implementation against its twin. *)
  List.iter
    (fun (impl, res) ->
      match impl.Impls.bitref with
      | None -> ()
      | Some ref_name -> (
          match List.find_opt (fun (i, _) -> i.Impls.name = ref_name) results with
          | None -> ()
          | Some (ref_impl, ref_res) -> (
              match (res, ref_res) with
              | Got a, Got b when not (bitwise_eq_elts a b) ->
                  emit sink impl op ~cls ~shape ~q ~len ~ref_impl:(Some ref_impl)
                    (Batch_mismatch, Array.concat (Array.to_list a), Float.nan)
                    inputs
              | (Raised, Got _ | Got _, Raised) ->
                  emit sink impl op ~cls ~shape ~q ~len ~ref_impl:(Some ref_impl)
                    (Batch_mismatch, [||], Float.nan)
                    inputs
              | _ -> ())))
    results

let scalar_shape op = match op with Corpus.Sqrt -> Sc1 | _ -> Sc2

let run_scalar_case sink ~impls ~q ~ops ~(case : Corpus.case) =
  List.iter
    (fun op ->
      if List.mem op Corpus.scalar_ops then begin
        let shape = scalar_shape op in
        let x =
          (* Square root reads the magnitude: a negative operand would
             only exercise the documented NaN path. *)
          if op = Corpus.Sqrt && case.Corpus.x.(0) < 0.0 then Array.map Float.neg case.Corpus.x
          else case.Corpus.x
        in
        let inputs = match shape with Sc1 -> [| x |] | _ -> [| x; case.Corpus.y |] in
        drive sink ~impls ~q ~op ~cls:case.Corpus.cls ~shape ~len:1 inputs
      end)
    ops

let run_vector_case sink ~impls ~q ~ops ~cls ~alpha ~x ~y ~a ~m =
  let len = Array.length x in
  List.iter
    (fun op ->
      match op with
      | Corpus.Dot -> drive sink ~impls ~q ~op ~cls ~shape:Vdot ~len (Array.append x y)
      | Corpus.Axpy ->
          drive sink ~impls ~q ~op ~cls ~shape:Vaxpy ~len
            (Array.concat [ [| alpha |]; x; y ])
      | Corpus.Gemv ->
          drive sink ~impls ~q ~op ~cls ~shape:(Vgemv m) ~len (Array.append a x)
      | _ -> ())
    ops
