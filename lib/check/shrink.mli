(** Greedy counterexample shrinking to locally minimal failing inputs.

    [shrink ~keep inputs] repeatedly simplifies individual components
    (to zero, to a power of two in the same binade, to short mantissas)
    while [keep] — which re-runs the failing check — stays true, until
    no single component can be simplified further.  [keep] is called on
    the mutated array in place; exceptions inside it count as "no
    longer failing".

    [canon] projects every simplification candidate onto the value
    domain of the failing check before it is tried (default: identity).
    The exhaustive verifier passes a reduced-width rounding so shrunk
    counterexamples stay exactly representable at the sweep's width —
    a candidate [canon] maps back onto the current value is skipped. *)

val shrink :
  ?canon:(float -> float) ->
  keep:(float array array -> bool) ->
  float array array ->
  float array array

val nonzero_terms : float array array -> int
(** Nonzero components across all operands — the "≤ n-term
    counterexample" size measure. *)
