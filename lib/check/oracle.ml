(* Exact-arithmetic error oracle for the differential audit.

   Every reference value is computed without rounding in the {!Exact}
   expansion arithmetic (the same oracle the FPAN checker uses), so the
   measured error is the implementation's alone:

   - add/sub/mul/dot: the exact result is directly representable as an
     expansion, and the error is the exact difference;
   - div: a computed quotient q satisfies
       |q - x/y| / |x/y| = |q*y - x| / |x|,
     and the right-hand side needs only exact products and sums;
   - sqrt: for s near sqrt(x),
       |s - sqrt x| / sqrt x = |s^2 - x| / (2x) + O(eps^2),
     and the second-order term is ~2^-200 of the first at our scales.

   The final magnitude ratio is taken through float approximations of
   the compressed exact differences: the ratio itself is then accurate
   to ~2^-50 relative, which is ample for locating an error against a
   2^-q bound provided the gates keep a little slack (they do).

   The Bigfloat correctly-rounded software FPU is the *second* oracle
   tier: it does not appear here (everything scalar is exact), but it
   independently cross-checks the elementary functions in the golden
   test suite, and the audited FPU baseline is itself Bigfloat-backed,
   so a bug in either oracle would show up as a systematic divergence
   between the two. *)

let approx_abs e = Float.abs (Exact.approx (Exact.compress e))

let value comps = Exact.sum_floats comps

(* |ref - got| / denom as a float ratio; 0/0 is 0 (an exact result),
   nonzero/0 is +inf (an impossible demand: any error at all when the
   budget is zero). *)
let ratio ~num ~den = if num = 0.0 then 0.0 else if den = 0.0 then Float.infinity else num /. den

let err_vs ~reference ~got =
  let diff = Exact.sum reference (Exact.neg (value got)) in
  ratio ~num:(approx_abs diff) ~den:(approx_abs reference)

let add_err ~x ~y ~got = err_vs ~reference:(Exact.sum (value x) (value y)) ~got
let sub_err ~x ~y ~got = err_vs ~reference:(Exact.sum (value x) (Exact.neg (value y))) ~got
let mul_err ~x ~y ~got = err_vs ~reference:(Exact.mul (value x) (value y)) ~got

(* Absolute distances |reference - got| (same ~2^-50-relative float
   approximation as the ratios): the yardstick for the ball-arithmetic
   containment obligation, whose certified radius is absolute. *)

let abs_vs ~reference ~got = approx_abs (Exact.sum reference (Exact.neg (value got)))

let add_abs ~x ~y ~got = abs_vs ~reference:(Exact.sum (value x) (value y)) ~got
let sub_abs ~x ~y ~got = abs_vs ~reference:(Exact.sum (value x) (Exact.neg (value y))) ~got
let mul_abs ~x ~y ~got = abs_vs ~reference:(Exact.mul (value x) (value y)) ~got

let div_err ~x ~y ~got =
  let residual = Exact.sum (Exact.mul (value got) (value y)) (Exact.neg (value x)) in
  ratio ~num:(approx_abs residual) ~den:(approx_abs (value x))

let sqrt_err ~x ~got =
  let g = value got in
  let residual = Exact.sum (Exact.mul g g) (Exact.neg (value x)) in
  ratio ~num:(approx_abs residual) ~den:(2.0 *. approx_abs (value x))

(* Vector reductions: the error budget scales with the magnitude sum
   (sum of |x_i * y_i|), not the possibly-cancelled result — the
   standard forward bound for a length-n recursive summation, and the
   only meaningful yardstick on the ill-conditioned corpus. *)

let abs_exact e = if Exact.sign e < 0 then Exact.neg e else e

let dot_refs ~x ~y =
  let n = Array.length x in
  let acc = ref Exact.zero and mag = ref Exact.zero in
  for i = 0 to n - 1 do
    let p = Exact.mul (value x.(i)) (value y.(i)) in
    acc := Exact.sum !acc p;
    mag := Exact.sum !mag (abs_exact p)
  done;
  (!acc, !mag)

let dot_err ~x ~y ~got =
  let reference, mag = dot_refs ~x ~y in
  let diff = Exact.sum reference (Exact.neg (value got)) in
  ratio ~num:(approx_abs diff) ~den:(approx_abs mag)

let dot_abs ~x ~y ~got =
  let reference, _ = dot_refs ~x ~y in
  abs_vs ~reference ~got

let axpy_elt_refs ~alpha ~x ~y =
  let p = Exact.mul (value alpha) (value x) in
  let reference = Exact.sum p (value y) in
  let mag = Exact.sum (abs_exact p) (abs_exact (value y)) in
  (reference, mag)

(* Max elementwise error of an AXPY result, each element against its
   own magnitude budget. *)
let axpy_err ~alpha ~x ~y ~got =
  let worst = ref 0.0 in
  Array.iteri
    (fun i gi ->
      let reference, mag = axpy_elt_refs ~alpha ~x:x.(i) ~y:y.(i) in
      let diff = Exact.sum reference (Exact.neg (value gi)) in
      let r = ratio ~num:(approx_abs diff) ~den:(approx_abs mag) in
      if r > !worst then worst := r)
    got;
  !worst

(* Max rowwise error of a GEMV result: row i of A dotted with x,
   against that row's magnitude budget. *)
let gemv_err ~m ~n ~a ~x ~got =
  let worst = ref 0.0 in
  for i = 0 to m - 1 do
    let row = Array.sub a (i * n) n in
    let reference, mag = dot_refs ~x:row ~y:x in
    let diff = Exact.sum reference (Exact.neg (value got.(i))) in
    let r = ratio ~num:(approx_abs diff) ~den:(approx_abs mag) in
    if r > !worst then worst := r
  done;
  !worst
