(* Fuzz campaign for the adaptive-precision escalation engine
   (lib/adaptive): random certifiable ops, operand widths, and SLA
   exponents, three obligations per case —

   - containment: a high-precision ball enclosure of the true absolute
     error must sit within the certified bound the engine returned
     (the oracle precision leaves ~2^-1150 of slack against bounds
     that are never tighter than ~2^-460, so a flagged case is a real
     certification bug, not oracle noise);
   - monotonicity: raising q (shrinking the budget) must never choose
     a *cheaper* tier — both certificates are q-independent, so the
     chosen rung is non-decreasing in q by construction, and this
     pins it;
   - bitwise identity: an outcome settled at a MultiFloat rung must
     equal the direct fixed-tier evaluation of the zero-padded
     operands bit for bit.

   Deterministic in (seed, cases): CI failures replay locally. *)

module Sla = Adaptive.Sla

type report = {
  cases : int;
  containment_violations : int;
  monotonicity_violations : int;
  bitwise_mismatches : int;
  errors : int;
}

let passed r =
  r.containment_violations = 0 && r.monotonicity_violations = 0
  && r.bitwise_mismatches = 0 && r.errors = 0

(* Far above the bigfloat fallback's certification precision (460
   bits), so the oracle's own enclosure error is negligible against
   every bound the engine can return. *)
let oracle_prec = 1200

let tier_rank = function "mf2" -> 0 | "mf3" -> 1 | "mf4" -> 2 | _ -> 3

let terms_of_tier = function "mf2" -> Some 2 | "mf3" -> Some 3 | "mf4" -> Some 4 | _ -> None

let bits_eq_rows a b =
  Array.length a = Array.length b
  && Array.for_all2
       (fun ea eb ->
         Array.length ea = Array.length eb
         && Array.for_all2
              (fun u v -> Int64.equal (Int64.bits_of_float u) (Int64.bits_of_float v))
              ea eb)
       a b

let all_ops =
  [ Sla.Add; Sla.Mul; Sla.Div; Sla.Sqrt; Sla.Sum; Sla.Dot; Sla.Axpy;
    Sla.Chain [ "sum" ]; Sla.Chain [ "mul"; "sum" ]; Sla.Chain [ "axpy"; "dot" ] ]

let gen_case rng ~width i =
  let op = List.nth all_ops (i mod List.length all_ops) in
  let element ?(pos = false) () =
    let v = Fpan.Gen.expansion rng ~n:width ~e0_min:(-20) ~e0_max:20 () in
    if pos && v.(0) < 0.0 then Array.map Float.neg v else v
  in
  let vec n = Array.init n (fun _ -> element ()) in
  let n = 2 + Random.State.int rng 5 in
  let x, y, z =
    match op with
    | Sla.Add | Sla.Mul | Sla.Div -> ([| element () |], [| element () |], [||])
    | Sla.Sqrt -> ([| element ~pos:true () |], [||], [||])
    | Sla.Sum | Sla.Chain [ "sum" ] -> (vec n, [||], [||])
    | Sla.Dot | Sla.Chain [ "mul"; "sum" ] -> (vec n, vec n, [||])
    | Sla.Axpy -> (vec n, vec (n + 1), [||])  (* y.(0) is alpha *)
    | Sla.Chain _ -> (vec n, vec (n + 1), vec n)
  in
  (op, { Sla.x; y; z })

let run ?(cases = 2000) ?(seed = 42) () =
  let rng = Random.State.make [| 0x51a; seed |] in
  let cont = ref 0 and mono = ref 0 and bits = ref 0 and errs = ref 0 in
  for i = 0 to cases - 1 do
    let width = 1 + Random.State.int rng Sla.max_terms in
    let op, inp = gen_case rng ~width i in
    let q1 = Sla.q_min + Random.State.int rng (Sla.q_max - Sla.q_min + 1) in
    let q2 = Stdlib.min Sla.q_max (q1 + 1 + Random.State.int rng 60) in
    match Adaptive.Escalate.run ~q:q1 ~op inp with
    | Error _ -> incr errs
    | Ok o1 -> (
        let true_err_up =
          Adaptive.Certify.ball_bound op ~prec:oracle_prec inp
            o1.Adaptive.Escalate.result
        in
        if not (true_err_up <= o1.Adaptive.Escalate.bound) then incr cont;
        (match terms_of_tier o1.Adaptive.Escalate.chosen with
        | Some terms ->
            let direct = Adaptive.Eval.eval ~terms op (Sla.pad ~terms inp) in
            if not (bits_eq_rows direct o1.Adaptive.Escalate.result) then incr bits
        | None -> ());
        match Adaptive.Escalate.run ~q:q2 ~op inp with
        | Error _ -> incr errs
        | Ok o2 ->
            if
              tier_rank o2.Adaptive.Escalate.chosen
              < tier_rank o1.Adaptive.Escalate.chosen
            then incr mono)
  done;
  { cases; containment_violations = !cont; monotonicity_violations = !mono;
    bitwise_mismatches = !bits; errors = !errs }
