(* Structured input corpus for the differential audit.

   Every generator produces operands as raw component arrays (n-term
   expansions, leading term first) so the same bits can be fed to every
   implementation of a tier: the MultiFloat kernels ingest them with
   [of_components], QD/CAMPARY take them structurally, and the software
   FPU rounds their exact sum to its working precision — exactly the
   value a user migrating data between libraries would hand each one.

   Classes map one-to-one to the failure modes the paper discusses:
   massive cancellation (Section 1), ulp-adjacent ties, subnormal and
   near-overflow scales (Section 4.4), interleaved zeros and power-of-two
   structure, full-mantissa random values, and IEEE specials.  Each
   class declares, per operation, whether the oracle error bound is a
   hard gate there: outside the gated envelope (specials, overflow
   probes, subnormal products) the audit still runs every implementation
   and the scalar-vs-batch bitwise comparison, but only records the
   observed error instead of failing on it — Section 4.4 documents the
   deviations in that regime. *)

type op = Add | Sub | Mul | Div | Sqrt | Dot | Axpy | Gemv

let op_name = function
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | Div -> "div"
  | Sqrt -> "sqrt"
  | Dot -> "dot"
  | Axpy -> "axpy"
  | Gemv -> "gemv"

let op_of_name = function
  | "add" -> Add
  | "sub" -> Sub
  | "mul" -> Mul
  | "div" -> Div
  | "sqrt" -> Sqrt
  | "dot" -> Dot
  | "axpy" -> Axpy
  | "gemv" -> Gemv
  | s -> invalid_arg (Printf.sprintf "Corpus.op_of_name: %S" s)

let scalar_ops = [ Add; Sub; Mul; Div; Sqrt ]
let vector_ops = [ Dot; Axpy; Gemv ]
let all_ops = scalar_ops @ vector_ops

type cls =
  | Uniform
  | Full_mantissa
  | Cancellation
  | Ulp_adjacent
  | Wide_exponent
  | Subnormal
  | Near_overflow
  | Zero_structure
  | Special

let cls_name = function
  | Uniform -> "uniform"
  | Full_mantissa -> "full-mantissa"
  | Cancellation -> "cancellation"
  | Ulp_adjacent -> "ulp-adjacent"
  | Wide_exponent -> "wide-exponent"
  | Subnormal -> "subnormal"
  | Near_overflow -> "near-overflow"
  | Zero_structure -> "zero-structure"
  | Special -> "special"

(* Scalar round-robin: weight the workhorse classes double. *)
let scalar_classes =
  [| Uniform; Full_mantissa; Cancellation; Ulp_adjacent; Uniform; Wide_exponent;
     Subnormal; Cancellation; Near_overflow; Zero_structure; Full_mantissa; Special |]

let vector_classes = [| Uniform; Full_mantissa; Cancellation; Wide_exponent; Zero_structure; Special |]

let gated cls op =
  match (cls, op) with
  | Special, _ -> false
  (* Subnormal scale: TwoSum stays exact under gradual underflow, so the
     addition bound survives; TwoProd error terms underflow, so products
     (and everything built on them) are audit-only. *)
  | Subnormal, (Add | Sub) -> true
  | Subnormal, _ -> false
  (* Near overflow: sums stay in range, but division and square root
     route through reciprocal intermediates (1/y ~ 2^-1000, r^2) whose
     expansion tails land in the subnormal range and are truncated —
     the audit measures the resulting ~2^-150 error floor instead of
     gating on it (Section 4.4: exponent range is not extended). *)
  | Near_overflow, (Add | Sub) -> true
  | Near_overflow, _ -> false
  | _, _ -> true

type case = {
  cls : cls;
  x : float array;
  y : float array;
}

let has_special comps = not (Array.for_all Float.is_finite comps)

(* Full-mantissa uniforms: every expansion term random, via the
   MultiFloat samplers (drawing a double and widening would leave the
   low 54/108/162 bits zero). *)
module R2 = Multifloat.Rand.Make (Multifloat.Mf2)
module R3 = Multifloat.Rand.Make (Multifloat.Mf3)
module R4 = Multifloat.Rand.Make (Multifloat.Mf4)

let full_mantissa rng ~terms =
  let scale = Random.State.int rng 121 - 60 in
  match terms with
  | 2 -> Multifloat.Mf2.(components (scale_pow2 (R2.uniform rng) scale))
  | 3 -> Multifloat.Mf3.(components (scale_pow2 (R3.uniform rng) scale))
  | 4 -> Multifloat.Mf4.(components (scale_pow2 (R4.uniform rng) scale))
  | n -> invalid_arg (Printf.sprintf "Corpus.full_mantissa: %d terms" n)

let expansion rng ~terms ~e0_min ~e0_max =
  Fpan.Gen.expansion rng ~n:terms ~e0_min ~e0_max ()

let nudge_last rng comps =
  let c = Array.copy comps in
  (* Nudge the last nonzero component by one ulp (the leading one if all
     tails are zero): the two operands then differ in exactly the last
     place that survives renormalization. *)
  let i = ref (Array.length c - 1) in
  while !i > 0 && c.(!i) = 0.0 do decr i done;
  c.(!i) <- (if Random.State.bool rng then Float.succ c.(!i) else Float.pred c.(!i));
  c

let specials = [| Float.nan; Float.infinity; Float.neg_infinity; 0.0; -0.0; Float.max_float;
                  0x1p-1074; -0x1p-1074 |]

let special_operand rng ~terms =
  let c = Array.make terms 0.0 in
  c.(0) <- specials.(Random.State.int rng (Array.length specials));
  (* Occasionally give a special a live tail so propagation through the
     low wires is exercised too. *)
  if terms > 1 && Random.State.bool rng then
    c.(1) <- Float.ldexp (Random.State.float rng 1.0) (-60);
  c

(* Renormalize through the exact oracle: generation at subnormal scales
   can round components against each other, and the networks'
   precondition is a clean nonoverlapping input.  Truncation to [terms]
   components just picks a nearby valid value. *)
let renorm ~terms comps =
  let c = Exact.components (Exact.compress (Exact.sum_floats comps)) in
  let n = Array.length c in
  let out = Array.make terms 0.0 in
  for i = 0 to Stdlib.min terms n - 1 do
    out.(i) <- c.(n - 1 - i)
  done;
  out

let pair_of_cls rng ~terms cls =
  match cls with
  | Uniform ->
      let x, y = Fpan.Gen.pair rng ~n:terms ~e0_min:(-60) ~e0_max:60 () in
      (x, y)
  | Full_mantissa -> (full_mantissa rng ~terms, full_mantissa rng ~terms)
  | Cancellation ->
      if Random.State.int rng 4 = 0 then begin
        (* Exact total cancellation: y = -x, the result must be 0. *)
        let x = expansion rng ~terms ~e0_min:(-60) ~e0_max:60 in
        (x, Array.map Float.neg x)
      end
      else
        (* Gen.pair mixes independent, cancel-to-depth, and
           shared-exponent structures. *)
        Fpan.Gen.pair rng ~n:terms ~e0_min:(-40) ~e0_max:40 ()
  | Ulp_adjacent ->
      let x = expansion rng ~terms ~e0_min:(-30) ~e0_max:30 in
      (x, nudge_last rng (Array.map Float.neg x))
  | Wide_exponent ->
      let x = expansion rng ~terms ~e0_min:(-350) ~e0_max:350 in
      let y = expansion rng ~terms ~e0_min:(-350) ~e0_max:350 in
      (x, y)
  | Subnormal ->
      let lo = -1050 and hi = -990 in
      ( renorm ~terms (expansion rng ~terms ~e0_min:lo ~e0_max:hi),
        renorm ~terms (expansion rng ~terms ~e0_min:lo ~e0_max:hi) )
  | Near_overflow ->
      (expansion rng ~terms ~e0_min:960 ~e0_max:1000, expansion rng ~terms ~e0_min:960 ~e0_max:1000)
  | Zero_structure ->
      let zeroed c =
        let c = Array.copy c in
        for i = 0 to Array.length c - 1 do
          (* Never zero the leading component: a zero leader over a live
             tail breaks the magnitude ordering the networks assume. *)
          if i > 0 && Random.State.int rng 3 = 0 then c.(i) <- 0.0
          else if c.(i) <> 0.0 && Random.State.int rng 3 = 0 then
            c.(i) <- Float.ldexp (if c.(i) < 0.0 then -1.0 else 1.0) (Eft.exponent c.(i))
        done;
        c
      in
      let x, y = Fpan.Gen.pair rng ~n:terms ~e0_min:(-50) ~e0_max:50 () in
      (zeroed x, zeroed y)
  | Special ->
      let x = special_operand rng ~terms in
      let y =
        if Random.State.bool rng then special_operand rng ~terms
        else expansion rng ~terms ~e0_min:(-40) ~e0_max:40
      in
      (x, y)

let scalar_case rng ~terms i =
  let cls = scalar_classes.(i mod Array.length scalar_classes) in
  let x, y = pair_of_cls rng ~terms cls in
  { cls; x; y }

let vector_case rng ~terms ~len i =
  let cls = vector_classes.(i mod Array.length vector_classes) in
  let elt () =
    match cls with
    | Full_mantissa -> full_mantissa rng ~terms
    | Wide_exponent -> expansion rng ~terms ~e0_min:(-300) ~e0_max:300
    | Zero_structure ->
        let c = expansion rng ~terms ~e0_min:(-50) ~e0_max:50 in
        Array.mapi (fun i v -> if i > 0 && Random.State.int rng 3 = 0 then 0.0 else v) c
    | Special ->
        if Random.State.int rng (2 * len) = 0 then special_operand rng ~terms
        else expansion rng ~terms ~e0_min:(-40) ~e0_max:40
    | _ -> expansion rng ~terms ~e0_min:(-60) ~e0_max:60
  in
  let x = Array.init len (fun _ -> elt ()) in
  let y = Array.init len (fun _ -> elt ()) in
  (match cls with
  | Special ->
      (* Guarantee at least one special element per special vector. *)
      x.(Random.State.int rng len) <- special_operand rng ~terms
  | Cancellation ->
      (* Second half cancels the first exactly: the dot product
         collapses to ~0 while the magnitude sum stays large. *)
      for k = 0 to (len / 2) - 1 do
        x.(len - 1 - k) <- Array.copy x.(k);
        y.(len - 1 - k) <- Array.map Float.neg y.(k)
      done
  | _ -> ());
  (cls, x, y)
