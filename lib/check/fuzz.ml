(* The fuzzing campaign: corpus generation, the differential driver,
   counterexample shrinking, and the machine-readable report.

   A run is deterministic in (seed, config): each tier draws from
   [Random.State.make [| seed; terms |]], so a failure reported by CI
   replays locally from the seed alone.  Every run starts with a
   mutation self-test — QD's [sloppy_add] (a genuinely broken
   renormalization under cancellation) is temporarily enrolled as a
   gated implementation and must be caught and shrunk — so a fuzz run
   that finds nothing is evidence about the kernels, not about a dead
   harness. *)

type config = {
  cases : int;
  seed : int;
  tiers : int list;
  ops : Corpus.op list;
  vec_len : int;
  max_findings : int;  (* findings shrunk and carried in the report *)
}

let default =
  { cases = 2000; seed = 42; tiers = [ 2; 3; 4 ]; ops = Corpus.all_ops; vec_len = 12;
    max_findings = 16 }

type shrunk_finding = {
  finding : Differ.finding;
  shrunk : float array array;
  shrunk_terms : int;
}

type stat_row = {
  impl : string;
  op : string;
  q : int;
  gated : bool;
  stats : Ulp_stats.t;
}

type report = {
  config : config;
  scalar_cases : int;
  vector_cases : int;
  failure_count : int;  (* all failures, including beyond max_findings *)
  failures : shrunk_finding list;
  rows : stat_row list;
}

let passed r = r.failure_count = 0

(* --- campaign ------------------------------------------------------- *)

let gemv_rows = 3

let run cfg =
  let table : (string * string, stat_row) Hashtbl.t = Hashtbl.create 97 in
  let order = ref [] in
  let failures = ref [] in
  let failure_count = ref 0 in
  let scalar_cases = ref 0 and vector_cases = ref 0 in
  let scalar_ops = List.filter (fun o -> List.mem o Corpus.scalar_ops) cfg.ops in
  let vector_ops = List.filter (fun o -> List.mem o Corpus.vector_ops) cfg.ops in
  let n_vec = if vector_ops = [] then 0 else Stdlib.max 1 (cfg.cases / 64) in
  List.iter
    (fun terms ->
      let impls = Impls.tier terms in
      let q = Impls.q_of_terms terms in
      let stat_of impl_name op =
        let key = (impl_name, Corpus.op_name op) in
        match Hashtbl.find_opt table key with
        | Some row -> row.stats
        | None ->
            let gated =
              match Impls.find impl_name with Some i -> i.Impls.gated | None -> true
            in
            let row =
              { impl = impl_name; op = Corpus.op_name op; q; gated; stats = Ulp_stats.create () }
            in
            Hashtbl.add table key row;
            order := key :: !order;
            row.stats
      in
      let sink =
        { Differ.on_ulps = (fun impl op ulps -> Ulp_stats.record (stat_of impl.Impls.name op) ulps);
          on_skip = (fun impl op -> Ulp_stats.skip (stat_of impl.Impls.name op));
          on_fail =
            (fun finding ~keep ->
              incr failure_count;
              Ulp_stats.fail (stat_of finding.Differ.impl finding.Differ.op);
              if List.length !failures < cfg.max_findings then begin
                let shrunk = Shrink.shrink ~keep finding.Differ.inputs in
                failures :=
                  { finding; shrunk; shrunk_terms = Shrink.nonzero_terms shrunk } :: !failures
              end)
        }
      in
      (* One span per tier with its case count as the argument, and a
         per-operand-class throughput counter (fuzz.cases.<class>) in
         the metrics registry. *)
      let tr = Obs.Trace.enabled () in
      let tier_cases = ref 0 in
      let count_cls cls =
        incr tier_cases;
        Obs.Metrics.incr (Obs.Metrics.counter ("fuzz.cases." ^ Corpus.cls_name cls))
      in
      if tr then Obs.Trace.begin_span Obs.Trace.Fuzz (Printf.sprintf "fuzz.tier%d" terms);
      if scalar_ops <> [] then begin
        let rng = Random.State.make [| cfg.seed; terms |] in
        for i = 0 to cfg.cases - 1 do
          incr scalar_cases;
          let case = Corpus.scalar_case rng ~terms i in
          count_cls case.Corpus.cls;
          Differ.run_scalar_case sink ~impls ~q ~ops:scalar_ops ~case
        done
      end;
      if n_vec > 0 then begin
        let rng = Random.State.make [| cfg.seed; terms; 1 |] in
        for i = 0 to n_vec - 1 do
          incr vector_cases;
          let cls, x, y = Corpus.vector_case rng ~terms ~len:cfg.vec_len i in
          count_cls cls;
          let alpha = Fpan.Gen.expansion rng ~n:terms ~e0_min:(-20) ~e0_max:20 () in
          let a =
            Array.init (gemv_rows * cfg.vec_len) (fun _ ->
                Fpan.Gen.expansion rng ~n:terms ~e0_min:(-30) ~e0_max:30 ())
          in
          Differ.run_vector_case sink ~impls ~q ~ops:vector_ops ~cls ~alpha ~x ~y ~a ~m:gemv_rows
        done
      end;
      if tr then
        Obs.Trace.end_span_f ~arg_name:"cases" ~arg:(float_of_int !tier_cases))
    cfg.tiers;
  let rows = List.rev_map (fun key -> Hashtbl.find table key) !order in
  { config = cfg; scalar_cases = !scalar_cases; vector_cases = !vector_cases;
    failure_count = !failure_count; failures = List.rev !failures; rows }

(* --- mutation self-test --------------------------------------------- *)

(* QD's sloppy double-double addition drops the low-order correction:
   a real renormalization bug of exactly the class the audit exists to
   catch.  Enroll it as a gated tier-2 implementation and demand that
   the harness (a) flags it and (b) shrinks the counterexample to at
   most four nonzero terms. *)
let sloppy_mutant =
  let wrap c = { Baselines.Qd_dd.hi = c.(0); lo = c.(1) } in
  { Impls.name = "mutant-sloppy-dd"; terms = 2; gated = true; bitref = None;
    add = Some (fun x y -> Baselines.Qd_dd.components (Baselines.Qd_dd.sloppy_add (wrap x) (wrap y)));
    sub = None; mul = None; div = None; sqrt_ = None; dot = None; axpy = None; gemv = None;
    ball = None }

let self_test () =
  let q = Impls.q_of_terms 2 in
  let caught = ref None in
  let failure_count = ref 0 in
  let sink =
    { Differ.on_ulps = (fun _ _ _ -> ());
      on_skip = (fun _ _ -> ());
      on_fail =
        (fun finding ~keep ->
          incr failure_count;
          if !caught = None then begin
            let shrunk = Shrink.shrink ~keep finding.Differ.inputs in
            caught := Some (finding, shrunk, Shrink.nonzero_terms shrunk)
          end)
    }
  in
  let rng = Random.State.make [| 7; 2 |] in
  let i = ref 0 in
  while !caught = None && !i < 4000 do
    let case = Corpus.scalar_case rng ~terms:2 !i in
    Differ.run_scalar_case sink ~impls:[ sloppy_mutant ] ~q ~ops:[ Corpus.Add ] ~case;
    incr i
  done;
  match !caught with
  | None ->
      Error
        "mutation self-test: sloppy_add survived 4000 adversarial cases — the audit harness is \
         not detecting broken renormalization"
  | Some (_, _, terms) when terms > 4 ->
      Error
        (Printf.sprintf
           "mutation self-test: counterexample only shrank to %d nonzero terms (want <= 4)" terms)
  | Some (finding, shrunk, terms) -> Ok (finding, shrunk, terms)

(* --- report --------------------------------------------------------- *)

let hex v = Printf.sprintf "%h" v

let json_operands inputs =
  Json_out.List
    (Array.to_list
       (Array.map
          (fun o -> Json_out.List (Array.to_list (Array.map (fun v -> Json_out.Str (hex v)) o)))
          inputs))

let json_of_failure f =
  Json_out.Obj
    [ ("impl", Json_out.Str f.finding.Differ.impl);
      ("op", Json_out.Str (Corpus.op_name f.finding.Differ.op));
      ("class", Json_out.Str (Corpus.cls_name f.finding.Differ.cls));
      ("kind", Json_out.Str (Differ.kind_name f.finding.Differ.kind));
      ("ulps", Json_out.Num f.finding.Differ.ulps);
      ("inputs", json_operands f.finding.Differ.inputs);
      ("got", Json_out.List (Array.to_list (Array.map (fun v -> Json_out.Str (hex v)) f.finding.Differ.got)));
      ("shrunk", json_operands f.shrunk);
      ("shrunk_terms", Json_out.Num (Float.of_int f.shrunk_terms))
    ]

let to_json r =
  Json_out.Obj
    [ ("schema", Json_out.Str "fpan-check/1");
      ("seed", Json_out.Num (Float.of_int r.config.seed));
      ("cases", Json_out.Num (Float.of_int r.config.cases));
      ("scalar_cases", Json_out.Num (Float.of_int r.scalar_cases));
      ("vector_cases", Json_out.Num (Float.of_int r.vector_cases));
      ("vec_len", Json_out.Num (Float.of_int r.config.vec_len));
      ("tiers", Json_out.List (List.map (fun t -> Json_out.Num (Float.of_int t)) r.config.tiers));
      ("ops", Json_out.List (List.map (fun o -> Json_out.Str (Corpus.op_name o)) r.config.ops));
      ("passed", Json_out.Bool (passed r));
      ("failure_count", Json_out.Num (Float.of_int r.failure_count));
      ("failures", Json_out.List (List.map json_of_failure r.failures));
      ( "results",
        Json_out.List
          (List.map
             (fun row ->
               Ulp_stats.to_json ~impl:row.impl ~op:row.op ~q:row.q ~gated:row.gated row.stats)
             r.rows) )
    ]

let write_report path r = Json_out.write_file path (to_json r)
