(** Exact-arithmetic error oracle.

    References are computed without rounding in {!Exact} (add/sub/mul
    and the vector reductions directly; division and square root via
    exact residual identities), so measured errors belong to the
    implementation alone.  All results are {e relative} errors as float
    ratios, accurate to ~2^-50 — convert to units of the tier bound with
    [Float.ldexp err q].

    Scalar errors are relative to the exact result (the paper's strong
    bound); vector errors are relative to the exact magnitude sum
    (sum of |x_i y_i|), the standard forward budget for recursive
    summation, which stays meaningful on the cancellation corpus. *)

val value : float array -> Exact.t
(** Exact value of a component array. *)

val add_err : x:float array -> y:float array -> got:float array -> float
val sub_err : x:float array -> y:float array -> got:float array -> float
val mul_err : x:float array -> y:float array -> got:float array -> float

val div_err : x:float array -> y:float array -> got:float array -> float
(** [|got*y - x| / |x|], which equals [|got - x/y| / |x/y|] exactly. *)

val sqrt_err : x:float array -> got:float array -> float
(** [|got^2 - x| / (2x)]: first-order exact, second-order term
    negligible at expansion precisions. *)

val dot_err : x:float array array -> y:float array array -> got:float array -> float
val axpy_err :
  alpha:float array -> x:float array array -> y:float array array -> got:float array array -> float
(** Max elementwise error. *)

val gemv_err :
  m:int -> n:int -> a:float array array -> x:float array array -> got:float array array -> float
(** Max rowwise error ([a] is the row-major [m*n] element array). *)

(** {1 Absolute distances}

    [|reference - got|] as a float, accurate to ~2^-50 relative: the
    yardstick for ball-arithmetic containment, whose certified radius
    is an absolute error. *)

val add_abs : x:float array -> y:float array -> got:float array -> float
val sub_abs : x:float array -> y:float array -> got:float array -> float
val mul_abs : x:float array -> y:float array -> got:float array -> float
val dot_abs : x:float array array -> y:float array array -> got:float array -> float
