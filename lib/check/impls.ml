(* The implementation registry: every arithmetic under audit behind one
   uniform surface, operands and results as raw component arrays.

   Per precision tier (2/3/4 terms) the registry carries:
   - the MultiFloat scalar kernels (the verified FPAN path, gated);
   - the planar Batch path (gated, plus a bitwise-equality obligation
     against its scalar twin via [bitref]);
   - the branching baselines: QD (tiers 2 and 4), CAMPARY (all tiers),
     and the software FPU at the matching precision — audited for their
     ulp histograms but never gated (their divergence under cancellation
     is the paper's point, not a bug in this repository).

   Vector kernels go through the real BLAS layer ({!Blas.Kernels}), not
   a reimplementation, so the audit exercises the code users run. *)

type vec = float array array

(* A ball-arithmetic enclosure: midpoint as an expansion plus a
   certified absolute radius.  Rows carrying a ball surface are under
   the *containment* obligation — the exact result must lie within
   [b_rad] of [b_mid] — instead of the ulp gate. *)
type ball = { b_mid : float array; b_rad : float }

type t = {
  name : string;
  terms : int;
  gated : bool;
  bitref : string option;
      (* name of the implementation whose results must match bitwise *)
  add : (float array -> float array -> float array) option;
  sub : (float array -> float array -> float array) option;
  mul : (float array -> float array -> float array) option;
  div : (float array -> float array -> float array) option;
  sqrt_ : (float array -> float array) option;
  dot : (vec -> vec -> float array) option;
  axpy : (alpha:float array -> x:vec -> y:vec -> vec) option;
  gemv : (m:int -> n:int -> a:vec -> x:vec -> vec) option;
  ball : (Corpus.op -> vec -> ball option) option;
      (* operands in the differ's flat shape for the op; [None] for ops
         the ball surface does not enclose *)
}

let q_of_terms = function
  | 2 -> Multifloat.Mf2.error_exp
  | 3 -> Multifloat.Mf3.error_exp
  | 4 -> Multifloat.Mf4.error_exp
  | n -> invalid_arg (Printf.sprintf "Impls.q_of_terms: %d" n)

(* A scalar arithmetic pluggable into the audit: the BLAS numeric
   surface plus lossless (or precision-faithful) expansion transport. *)
module type ARITH = sig
  include Blas.Numeric.S

  val of_expansion : float array -> t
  val to_expansion : t -> float array
  val sub : t -> t -> t
  val div_opt : (t -> t -> t) option
  val sqrt_opt : (t -> t) option
end

module Lift (A : ARITH) = struct
  module Ks = Blas.Kernels.Make (A)

  let lift2 f x y = A.to_expansion (f (A.of_expansion x) (A.of_expansion y))
  let lift1 f x = A.to_expansion (f (A.of_expansion x))
  let vin = Array.map A.of_expansion
  let vout = Array.map A.to_expansion

  let impl ~name ~terms ~gated =
    { name; terms; gated; bitref = None; ball = None;
      add = Some (lift2 A.add);
      sub = Some (lift2 A.sub);
      mul = Some (lift2 A.mul);
      div = Option.map lift2 A.div_opt;
      sqrt_ = Option.map lift1 A.sqrt_opt;
      dot = Some (fun x y -> A.to_expansion (Ks.dot ~x:(vin x) ~y:(vin y)));
      axpy =
        Some
          (fun ~alpha ~x ~y ->
            let y' = vin y in
            Ks.axpy ~alpha:(A.of_expansion alpha) ~x:(vin x) ~y:y';
            vout y');
      gemv =
        Some
          (fun ~m ~n ~a ~x ->
            let y = Array.make m A.zero in
            Ks.gemv ~m ~n ~a:(vin a) ~x:(vin x) ~y;
            vout y)
    }
end

module LiftBatch (N : sig
  include Blas.Numeric.BATCHED

  val of_expansion : float array -> t
  val to_expansion : t -> float array
end) =
struct
  module Kb = Blas.Kernels.Make_batched (N)
  module V = Kb.V

  let vin v = V.of_array (Array.map N.of_expansion v)
  let vout v = Array.map N.to_expansion (V.to_array v)

  let lift2 vop x y =
    let vx = vin [| x |] and vy = vin [| y |] in
    let dst = V.create 1 in
    vop ~dst vx vy;
    N.to_expansion (V.get dst 0)

  let impl ~name ~terms ~bitref =
    { name; terms; gated = true; bitref = Some bitref; ball = None;
      add = Some (lift2 V.add);
      sub = Some (lift2 V.sub);
      mul = Some (lift2 V.mul);
      div = None;
      sqrt_ = None;
      dot = Some (fun x y -> N.to_expansion (Kb.dot ~x:(vin x) ~y:(vin y)));
      axpy =
        Some
          (fun ~alpha ~x ~y ->
            let y' = vin y in
            Kb.axpy ~alpha:(N.of_expansion alpha) ~x:(vin x) ~y:y';
            vout y');
      gemv =
        Some
          (fun ~m ~n ~a ~x ->
            let y = V.create m in
            Kb.gemv ~m ~n ~a:(vin a) ~x:(vin x) ~y;
            vout y)
    }
end

(* --- MultiFloat scalar + batch ------------------------------------- *)

module Mf2A = struct
  include Blas.Instances.Mf2

  let of_expansion = Multifloat.Mf2.of_components
  let to_expansion = Multifloat.Mf2.components
  let sub = Multifloat.Mf2.sub
  let div_opt = Some Multifloat.Mf2.div
  let sqrt_opt = Some Multifloat.Mf2.sqrt
end

module Mf3A = struct
  include Blas.Instances.Mf3

  let of_expansion = Multifloat.Mf3.of_components
  let to_expansion = Multifloat.Mf3.components
  let sub = Multifloat.Mf3.sub
  let div_opt = Some Multifloat.Mf3.div
  let sqrt_opt = Some Multifloat.Mf3.sqrt
end

module Mf4A = struct
  include Blas.Instances.Mf4

  let of_expansion = Multifloat.Mf4.of_components
  let to_expansion = Multifloat.Mf4.components
  let sub = Multifloat.Mf4.sub
  let div_opt = Some Multifloat.Mf4.div
  let sqrt_opt = Some Multifloat.Mf4.sqrt
end

module Mf2S = Lift (Mf2A)
module Mf3S = Lift (Mf3A)
module Mf4S = Lift (Mf4A)
module Mf2B = LiftBatch (Mf2A)
module Mf3B = LiftBatch (Mf3A)
module Mf4B = LiftBatch (Mf4A)

(* --- baselines ----------------------------------------------------- *)

module QddA = struct
  include Blas.Instances.Qd_dd

  let of_expansion c = { Baselines.Qd_dd.hi = c.(0); lo = c.(1) }
  let to_expansion = Baselines.Qd_dd.components
  let sub = Baselines.Qd_dd.sub
  let div_opt = Some Baselines.Qd_dd.div
  let sqrt_opt = Some Baselines.Qd_dd.sqrt
end

module QqdA = struct
  include Blas.Instances.Qd_qd

  let of_expansion = Baselines.Qd_qd.of_components
  let to_expansion = Baselines.Qd_qd.components
  let sub = Baselines.Qd_qd.sub
  let div_opt = Some Baselines.Qd_qd.div
  let sqrt_opt = Some Baselines.Qd_qd.sqrt
end

module CamparyA (I : Blas.Numeric.S with type t = Baselines.Campary.t) = struct
  include I

  let of_expansion = Array.copy
  let to_expansion = Array.copy
  let sub = Baselines.Campary.sub
  let div_opt = None
  let sqrt_opt = None
end

module FpuA (P : Baselines.Fpu_emul.S) (I : Blas.Numeric.S with type t = P.t) (T : sig
  val terms : int
end) =
struct
  include I

  let of_expansion = P.of_expansion
  let to_expansion = P.to_expansion ~n:T.terms
  let sub = P.sub
  let div_opt = Some P.div
  let sqrt_opt = Some P.sqrt
end

(* Arb ball arithmetic: the enclosure twin of each tier, audited under
   the containment obligation (the exact result must lie inside the
   returned ball) rather than the ulp gate.  The midpoint is exported
   at terms+1 components — lossless for the working precision — and
   the radius absorbs both the ball's own radius and the midpoint's
   export rounding (one ulp step of slack). *)
module ArbBall (T : sig
  val terms : int
end) =
struct
  module A = Baselines.Arb

  let prec = 53 * T.terms

  let wrap = A.of_expansion ~prec

  let ball_of (b : A.t) =
    let rad = Float.abs (Bigfloat.to_float b.A.rad) in
    let rad = if Float.is_nan rad then Float.infinity else Float.succ rad in
    Some { b_mid = Bigfloat.to_expansion ~n:(T.terms + 1) b.A.mid; b_rad = rad }

  let surface op (inputs : vec) =
    match op with
    | Corpus.Add -> ball_of (A.add (wrap inputs.(0)) (wrap inputs.(1)))
    | Corpus.Sub -> ball_of (A.sub (wrap inputs.(0)) (wrap inputs.(1)))
    | Corpus.Mul -> ball_of (A.mul (wrap inputs.(0)) (wrap inputs.(1)))
    | Corpus.Dot ->
        let n = Array.length inputs / 2 in
        let x = Array.map wrap (Array.sub inputs 0 n) in
        let y = Array.map wrap (Array.sub inputs n n) in
        ball_of (A.Vec.dot ~prec x y)
    | _ -> None

  let impl ~name =
    { name; terms = T.terms; gated = false; bitref = None;
      add = None; sub = None; mul = None; div = None; sqrt_ = None;
      dot = None; axpy = None; gemv = None; ball = Some surface }
end

module Arb106 = ArbBall (struct let terms = 2 end)
module Arb159 = ArbBall (struct let terms = 3 end)
module Arb212 = ArbBall (struct let terms = 4 end)

module QddS = Lift (QddA)
module QqdS = Lift (QqdA)
module Campary2S = Lift (CamparyA (Blas.Instances.Campary2))
module Campary3S = Lift (CamparyA (Blas.Instances.Campary3))
module Campary4S = Lift (CamparyA (Blas.Instances.Campary4))

module Fpu103S =
  Lift (FpuA (Baselines.Fpu_emul.P103) (Blas.Instances.Fpu103) (struct let terms = 2 end))

module Fpu156S =
  Lift (FpuA (Baselines.Fpu_emul.P156) (Blas.Instances.Fpu156) (struct let terms = 3 end))

module Fpu208S =
  Lift (FpuA (Baselines.Fpu_emul.P208) (Blas.Instances.Fpu208) (struct let terms = 4 end))

let all =
  [ Mf2S.impl ~name:"mf2" ~terms:2 ~gated:true;
    Mf2B.impl ~name:"mf2-batch" ~terms:2 ~bitref:"mf2";
    Arb106.impl ~name:"arb106";
    QddS.impl ~name:"qd-dd" ~terms:2 ~gated:false;
    Campary2S.impl ~name:"campary2" ~terms:2 ~gated:false;
    Fpu103S.impl ~name:"fpu103" ~terms:2 ~gated:false;
    Mf3S.impl ~name:"mf3" ~terms:3 ~gated:true;
    Mf3B.impl ~name:"mf3-batch" ~terms:3 ~bitref:"mf3";
    Arb159.impl ~name:"arb159";
    Campary3S.impl ~name:"campary3" ~terms:3 ~gated:false;
    Fpu156S.impl ~name:"fpu156" ~terms:3 ~gated:false;
    Mf4S.impl ~name:"mf4" ~terms:4 ~gated:true;
    Mf4B.impl ~name:"mf4-batch" ~terms:4 ~bitref:"mf4";
    Arb212.impl ~name:"arb212";
    QqdS.impl ~name:"qd-qd" ~terms:4 ~gated:false;
    Campary4S.impl ~name:"campary4" ~terms:4 ~gated:false;
    Fpu208S.impl ~name:"fpu208" ~terms:4 ~gated:false
  ]

let tier terms = List.filter (fun i -> i.terms = terms) all
let find name = List.find_opt (fun i -> i.name = name) all
