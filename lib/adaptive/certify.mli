(** Hybrid accuracy certification: a cheap static bound in doubles
    first, ball arithmetic only when the static certificate misses the
    threshold.

    Both certificates depend only on (op, tier, operands, result) — not
    on the SLA exponent [q] — so escalation is monotone in [q] by
    construction: the threshold [scale * 2^-q] shrinks as [q] grows
    while the per-tier bounds stay put. *)

val q_of_terms : int -> int
(** The tier's verified accuracy exponent ({!Multifloat.Kernel.KERNEL.error_exp}). *)

val prec_of_terms : int -> int

val ball_guard : int
(** Guard bits added on top of the tier precision for ball evaluation. *)

val scale : Sla.op -> Sla.inputs -> float
(** Deterministic magnitude proxy for the operation, computed in
    doubles from component-magnitude sums.  Always an upper bound on
    the relevant result magnitudes; may be [infinity] when the operands
    overflow a double sum or a divisor is not provably nonzero (the
    threshold then degrades to infinity — sound, just uninformative). *)

val threshold : q:int -> scale:float -> float
(** The SLA's absolute-error budget: [scale * 2^-q]. *)

val static_bound : Sla.op -> terms:int -> Sla.inputs -> float
(** [C_op * 2^-q_tier * scale]: a certified error bound for the tier's
    kernels that costs only a few double ops. *)

val static_bound_scaled : Sla.op -> n:int -> terms:int -> scale:float -> float
(** {!static_bound} with the operand scan hoisted: [n] is the row
    count, [scale] the precomputed {!scale}.  The ladder probes every
    rung with this, paying for the scan once per request. *)

val ball_bound : Sla.op -> prec:int -> Sla.inputs -> float array array -> float
(** Enclosure of the absolute error of [result]: re-evaluates the op in
    Arb ball arithmetic at [prec] bits and measures the distance from
    the returned expansion(s) to the ball under directed rounding.
    Multi-row results (axpy, axpy;dot) report the worst row.  Never
    NaN; infinite when nothing finite can be certified. *)

val certify :
  Sla.op -> terms:int -> q:int -> Sla.inputs -> float array array -> float * bool
(** [(bound, met)]: [bound] is a certified enclosure of the absolute
    error of [result] at this tier, [met] says whether it is within the
    SLA threshold.  Static certificate first; the ball runs only on a
    static miss at the last MultiFloat rung ([Sla.max_terms]) — at the
    cheaper rungs escalating is cheaper than a doomed ball, so a miss
    is final there. *)

val certify_scaled :
  Sla.op ->
  terms:int ->
  q:int ->
  scale:float ->
  Sla.inputs ->
  float array array ->
  float * bool
(** {!certify} with a precomputed {!scale}. *)
