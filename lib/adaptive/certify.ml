(* Hybrid accuracy certification.

   Two certificates, tried in cost order:

   - The STATIC bound costs a handful of double ops: C_op * 2^-q_tier *
     scale, where q_tier is the tier's verified accuracy exponent
     (Kernel.error_exp), scale is a deterministic magnitude proxy
     computed in doubles, and C_op a generous per-op safety constant.
     It certifies the common case without touching bignums, which is
     what keeps SLA-driven serving faster than always-mf4.

   - The BALL bound runs only when the static bound misses the
     threshold AND the tier is the last MultiFloat rung: re-evaluate
     the operation in Arb ball arithmetic at tier precision + 60 guard
     bits and measure the distance from the returned expansion to the
     ball, all under directed rounding.  It is an enclosure of the
     true error whatever the tier kernels did.  At the cheaper rungs a
     ball is never worth its bignum cost: the measured distance is
     dominated by the rung's own rounding error (~2^-q_tier * scale),
     so whenever the static certificate misses by more than its small
     constant factor the ball would miss too — escalating one rung
     costs far less than finding that out.  At mf4 the alternative is
     the 400-bit bigfloat fallback, which dwarfs a ball, so there the
     gamble pays.

   Both certificates depend only on (op, tier, operands, result) — not
   on q — so the escalation decision is monotone in the SLA by
   construction: the threshold scale * 2^-q shrinks as q grows while
   the per-tier bounds stay put. *)

module B = Bigfloat
module Arb = Baselines.Arb

let q_of_terms = function
  | 2 -> Multifloat.Mf2.error_exp
  | 3 -> Multifloat.Mf3.error_exp
  | 4 -> Multifloat.Mf4.error_exp
  | n -> invalid_arg (Printf.sprintf "Adaptive.Certify.q_of_terms: %d" n)

let prec_of_terms = function
  | 2 -> Multifloat.Mf2.precision_bits
  | 3 -> Multifloat.Mf3.precision_bits
  | 4 -> Multifloat.Mf4.precision_bits
  | n -> invalid_arg (Printf.sprintf "Adaptive.Certify.prec_of_terms: %d" n)

(* Guard bits on top of the tier precision so the ball's own rounding
   noise sits far below the error being measured. *)
let ball_guard = 60

(* --- magnitude scale ------------------------------------------------- *)

let sum_abs (e : float array) = Array.fold_left (fun a c -> a +. Float.abs c) 0.0 e
let sum_rows f rows = Array.fold_left (fun a e -> a +. f e) 0.0 rows

(* Lower bound on |value of e| computable in doubles: head magnitude
   minus the tail's magnitude sum, halved to absorb the rounding of
   this very computation.  Nonpositive means "not provably away from
   zero" — the caller degrades to an infinite scale (and so an
   infinite, still-sound threshold and bound). *)
let abs_lower (e : float array) =
  let hd = Float.abs e.(0) in
  let tl = ref 0.0 in
  for i = 1 to Array.length e - 1 do
    tl := !tl +. Float.abs e.(i)
  done;
  0.5 *. (hd -. !tl)

let scale op (inp : Sla.inputs) =
  match op with
  | Sla.Add -> sum_rows sum_abs inp.x +. sum_rows sum_abs inp.y
  | Sla.Mul -> sum_abs inp.x.(0) *. sum_abs inp.y.(0)
  | Sla.Div ->
      let num = sum_abs inp.x.(0) in
      let lo = abs_lower inp.y.(0) in
      if lo > 0.0 then num /. lo else Float.infinity
  | Sla.Sqrt -> Float.sqrt (sum_abs inp.x.(0))
  | Sla.Sum | Sla.Chain [ "sum" ] -> sum_rows sum_abs inp.x
  | Sla.Dot | Sla.Chain [ "mul"; "sum" ] ->
      let s = ref 0.0 in
      for i = 0 to Array.length inp.x - 1 do
        s := !s +. (sum_abs inp.x.(i) *. sum_abs inp.y.(i))
      done;
      !s
  | Sla.Axpy ->
      let a = sum_abs inp.y.(0) in
      let m = ref 0.0 in
      for i = 0 to Array.length inp.x - 1 do
        let s = (a *. sum_abs inp.x.(i)) +. sum_abs inp.y.(i + 1) in
        if s > !m then m := s
      done;
      !m
  | Sla.Chain [ "axpy"; "dot" ] ->
      (* the result carries both the dot accumulator and the updated
         vector rows, so the scale must cover both *)
      let a = sum_abs inp.y.(0) in
      let acc = ref 0.0 and m = ref 0.0 in
      for i = 0 to Array.length inp.x - 1 do
        let s = (a *. sum_abs inp.x.(i)) +. sum_abs inp.y.(i + 1) in
        if s > !m then m := s;
        acc := !acc +. (s *. sum_abs inp.z.(i))
      done;
      Float.max !acc !m
  | Sla.Chain c ->
      invalid_arg
        (Printf.sprintf "Adaptive.Certify.scale: unsupported chain %S" (String.concat ";" c))

let threshold ~q ~scale = Float.ldexp scale (-q)

(* --- static certificate ---------------------------------------------- *)

let static_c op ~n =
  match op with
  | Sla.Add | Sla.Mul -> 2.0
  | Sla.Div | Sla.Sqrt -> 16.0
  | Sla.Sum | Sla.Dot | Sla.Chain [ "sum" ] | Sla.Chain [ "mul"; "sum" ] -> 8.0 *. n
  | Sla.Axpy -> 8.0
  | Sla.Chain _ -> 32.0 *. n

let static_bound_scaled op ~n ~terms ~scale =
  static_c op ~n:(float_of_int n) *. Float.ldexp scale (-q_of_terms terms)

let static_bound op ~terms (inp : Sla.inputs) =
  static_bound_scaled op
    ~n:(max 1 (Array.length inp.x))
    ~terms ~scale:(scale op inp)

(* --- ball certificate ------------------------------------------------ *)

(* Upper bound, in the Upward direction throughout, of the distance
   between [res] (an expansion the tier kernels returned) and the ball
   [b] enclosing the exact value: |value(res) - mid| + ulp slack for
   converting res + rad.  The final [Float.succ] absorbs the correctly
   rounded (possibly downward) Bigfloat.to_float. *)
let err_row_up ~prec (b : Arb.t) (res : float array) =
  let r = B.of_expansion ~prec res in
  let d1 = B.sub_mode B.Upward r (Arb.mid b) in
  let d2 = B.sub_mode B.Upward (Arb.mid b) r in
  let d = if B.compare d1 d2 >= 0 then d1 else d2 in
  let total = B.add_mode B.Upward (B.add_mode B.Upward d (B.ulp_bound r)) (Arb.rad b) in
  let f = B.to_float total in
  if Float.is_nan f then Float.infinity else Float.succ (Float.abs f)

let max_rows f n =
  let m = ref 0.0 in
  for i = 0 to n - 1 do
    m := Float.max !m (f i)  (* f never yields nan: err_row_up maps it to inf *)
  done;
  !m

let ball_bound op ~prec (inp : Sla.inputs) (result : float array array) =
  let bx i = Arb.of_expansion ~prec inp.x.(i) in
  let by i = Arb.of_expansion ~prec inp.y.(i) in
  let bz i = Arb.of_expansion ~prec inp.z.(i) in
  let n = Array.length inp.x in
  match op with
  | Sla.Add -> err_row_up ~prec (Arb.add (bx 0) (by 0)) result.(0)
  | Sla.Mul -> err_row_up ~prec (Arb.mul (bx 0) (by 0)) result.(0)
  | Sla.Div -> err_row_up ~prec (Arb.div (bx 0) (by 0)) result.(0)
  | Sla.Sqrt -> err_row_up ~prec (Arb.sqrt (bx 0)) result.(0)
  | Sla.Sum | Sla.Chain [ "sum" ] ->
      err_row_up ~prec (Arb.Vec.sum ~prec (Array.init n bx)) result.(0)
  | Sla.Dot | Sla.Chain [ "mul"; "sum" ] ->
      err_row_up ~prec (Arb.Vec.dot ~prec (Array.init n bx) (Array.init n by)) result.(0)
  | Sla.Axpy ->
      let rows =
        Arb.Vec.axpy ~alpha:(by 0) ~x:(Array.init n bx)
          ~y:(Array.init n (fun i -> by (i + 1)))
      in
      max_rows (fun i -> err_row_up ~prec rows.(i) result.(i)) n
  | Sla.Chain [ "axpy"; "dot" ] ->
      let acc, ynew =
        Arb.Vec.axpy_dot ~prec ~alpha:(by 0) ~x:(Array.init n bx)
          ~y:(Array.init n (fun i -> by (i + 1)))
          ~z:(Array.init n bz)
      in
      Float.max
        (err_row_up ~prec acc result.(0))
        (max_rows (fun i -> err_row_up ~prec ynew.(i) result.(i + 1)) n)
  | Sla.Chain c ->
      invalid_arg
        (Printf.sprintf "Adaptive.Certify.ball_bound: unsupported chain %S"
           (String.concat ";" c))

(* --- the certification decision -------------------------------------- *)

let certify_scaled op ~terms ~q ~scale:sc (inp : Sla.inputs) (result : float array array) =
  let thr = threshold ~q ~scale:sc in
  let sb = static_bound_scaled op ~n:(max 1 (Array.length inp.x)) ~terms ~scale:sc in
  if sb <= thr then (sb, true)
  else if terms < Sla.max_terms then (sb, false)
  else begin
    let bb = ball_bound op ~prec:(prec_of_terms terms + ball_guard) inp result in
    let b = if Float.is_nan sb then bb else Float.min sb bb in
    (b, b <= thr)
  end

let certify op ~terms ~q (inp : Sla.inputs) result =
  certify_scaled op ~terms ~q ~scale:(scale op inp) inp result
