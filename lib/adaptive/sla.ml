(* Vocabulary of the adaptive-precision subsystem: which operations an
   accuracy SLA can be attached to, how requests describe their
   operands, and how operands move between tier widths.

   An SLA is an absolute-error budget in units of 2^-q: the server must
   return a result whose certified absolute error is at most
   [scale * 2^-q], where [scale] is a deterministic magnitude proxy for
   the operation (Certify.scale).  Only the certifiable core ops
   qualify — the transcendentals (exp/log/sin) and poly-eval carry no
   per-op error theorem and are rejected at the protocol boundary. *)

type op =
  | Add
  | Mul
  | Div
  | Sqrt
  | Sum
  | Dot
  | Axpy
  | Chain of string list

type inputs = {
  x : float array array;
  y : float array array;
  z : float array array;
}

let q_min = 1
let q_max = 200

let chains = [ [ "sum" ]; [ "mul"; "sum" ]; [ "axpy"; "dot" ] ]

let op_name = function
  | Add -> "add"
  | Mul -> "mul"
  | Div -> "div"
  | Sqrt -> "sqrt"
  | Sum -> "sum"
  | Dot -> "dot"
  | Axpy -> "axpy"
  | Chain c -> "program:" ^ String.concat ";" c

let of_wire ~op ~prog =
  match (op, prog) with
  | "add", [] -> Some Add
  | "mul", [] -> Some Mul
  | "div", [] -> Some Div
  | "sqrt", [] -> Some Sqrt
  | "sum", [] -> Some Sum
  | "dot", [] -> Some Dot
  | "axpy", [] -> Some Axpy
  | "program", c when List.mem c chains -> Some (Chain c)
  | _ -> None

let supported_wire_ops = [ "add"; "mul"; "div"; "sqrt"; "sum"; "dot"; "axpy"; "program" ]

let iter_elements inp f =
  Array.iter f inp.x;
  Array.iter f inp.y;
  Array.iter f inp.z

(* Uniform element width, or None when operands disagree (or there are
   no operands at all). *)
let width inp =
  let w = ref (-1) in
  let uniform = ref true in
  iter_elements inp (fun e ->
      let n = Array.length e in
      if !w = -1 then w := n else if n <> !w then uniform := false);
  if !uniform && !w >= 1 then Some !w else None

let finite inp =
  let ok = ref true in
  iter_elements inp (fun e ->
      Array.iter (fun c -> if not (Float.is_finite c) then ok := false) e);
  !ok

let min_terms = 2
let max_terms = 4

(* The escalation ladder starts at the cheapest tier that can hold the
   operands without truncation: widths 1 and 2 start at mf2, width 3 at
   mf3, width 4 at mf4. *)
let start_terms ~width = max min_terms width

let tier_name_of_terms = function
  | 2 -> "mf2"
  | 3 -> "mf3"
  | 4 -> "mf4"
  | n -> invalid_arg (Printf.sprintf "Adaptive.Sla.tier_name_of_terms: %d" n)

(* Zero-padding is exact (the expansion's value is the sum of its
   components), which is what makes results at the finally-chosen tier
   bitwise identical to a direct fixed-tier request carrying the padded
   operands.  Truncation would change the value, so it is refused. *)
let pad_element ~terms e =
  let w = Array.length e in
  if w = terms then e
  else if w < terms then
    Array.init terms (fun i -> if i < w then e.(i) else 0.0)
  else
    invalid_arg
      (Printf.sprintf "Adaptive.Sla.pad_element: cannot narrow %d terms to %d" w terms)

let pad ~terms inp =
  let same rows = Array.for_all (fun e -> Array.length e = terms) rows in
  if same inp.x && same inp.y && same inp.z then inp
  else
    let p rows = Array.map (pad_element ~terms) rows in
    { x = p inp.x; y = p inp.y; z = p inp.z }
