(** The escalation engine: jump to the cheapest rung whose static
    certificate ({!Certify.static_bound}, computable from the operands
    alone) meets the SLA threshold, evaluate only there, and fall
    through mf4's ball certificate to the bigfloat fallback when no
    rung certifies statically — mf2 → mf3 → mf4 → bigfloat. *)

type outcome = {
  result : float array array;
      (** At a tier rung: exactly the tier evaluator's output for the
          zero-padded operands — bitwise identical to a direct
          fixed-tier request.  At the bigfloat rung: each value rounded
          to a 4-term expansion (Eq. 6). *)
  bound : float;  (** Certified absolute error enclosure of [result]. *)
  chosen : string;  (** ["mf2"] | ["mf3"] | ["mf4"] | ["bigfloat"]. *)
  escalations : int;  (** Rungs climbed past the starting tier. *)
}

val big_prec : int
(** Working precision of the bigfloat fallback (400 bits). *)

val bigfloat_eval : Sla.op -> Sla.inputs -> float array array

val bigfloat_outcome : Sla.op -> Sla.inputs -> escalations:int -> outcome
(** The final rung packaged as an outcome: ball-certified at
    [big_prec] + guard bits, [chosen = "bigfloat"]. *)

val run :
  ?eval:(terms:int -> Sla.inputs -> float array array) ->
  q:int ->
  op:Sla.op ->
  Sla.inputs ->
  (outcome, string) result
(** Run the ladder for an SLA of [2^-q].  [eval] defaults to
    {!Eval.eval}; the serving layer passes its own (bitwise-identical)
    batched evaluator.  Errors on out-of-range [q], non-finite or
    non-uniform operands. *)
