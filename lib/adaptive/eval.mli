(** Canonical scalar tier evaluator for the certifiable ops — the same
    accumulation orders as the serving layer's scalar reference path,
    so results are bitwise what a fixed-tier request would return
    (fpan_tool's adaptive fuzz gate pins the equivalence). *)

val eval : terms:int -> Sla.op -> Sla.inputs -> float array array
(** Evaluate at the tier with [terms] components.  The operands must
    already be padded to [terms]-wide elements ({!Sla.pad}). *)
