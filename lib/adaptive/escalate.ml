(* The escalation engine: pick the cheapest rung whose static
   certificate meets the SLA threshold (computable from the operands
   alone, before any evaluation), evaluate there, and fall through
   mf4's ball certificate to the bigfloat rung only when no static
   certificate exists — mf2 -> mf3 -> mf4 -> bigfloat.

   The returned result at the finally-chosen tier is exactly what the
   tier evaluator produced for the zero-padded operands, so it is
   bitwise identical to a direct fixed-tier request.  The bigfloat
   fallback is the only rung with different numerics: one evaluation at
   400 bits, rounded back to a 4-term expansion (Eq. 6), with its own
   ball certificate. *)

module B = Bigfloat

type outcome = {
  result : float array array;
  bound : float;
  chosen : string;  (* "mf2" | "mf3" | "mf4" | "bigfloat" *)
  escalations : int;  (* rungs climbed past the starting tier *)
}

(* 400 bits leaves ~185 guard bits over the 4-term expansion's 215, so
   the fallback's certificate is dominated by the final Eq. 6 rounding
   and meets any q <= q_max for a finite scale. *)
let big_prec = 400

let bigfloat_eval op (inp : Sla.inputs) : float array array =
  let bf e = B.of_expansion ~prec:big_prec e in
  let out v = [| B.to_expansion ~n:Sla.max_terms v |] in
  let x i = bf inp.x.(i) in
  let y i = bf inp.y.(i) in
  match op with
  | Sla.Add -> out (B.add (x 0) (y 0))
  | Sla.Mul -> out (B.mul (x 0) (y 0))
  | Sla.Div -> out (B.div (x 0) (y 0))
  | Sla.Sqrt -> out (B.sqrt (x 0))
  | Sla.Sum | Sla.Chain [ "sum" ] ->
      let acc = ref (B.make_zero ~prec:big_prec) in
      for i = 0 to Array.length inp.x - 1 do
        acc := B.add !acc (x i)
      done;
      out !acc
  | Sla.Dot | Sla.Chain [ "mul"; "sum" ] ->
      let acc = ref (B.make_zero ~prec:big_prec) in
      for i = 0 to Array.length inp.x - 1 do
        acc := B.add !acc (B.mul (x i) (y i))
      done;
      out !acc
  | Sla.Axpy ->
      let alpha = y 0 in
      Array.init (Array.length inp.x) (fun i ->
          B.to_expansion ~n:Sla.max_terms (B.add (B.mul alpha (x i)) (y (i + 1))))
  | Sla.Chain [ "axpy"; "dot" ] ->
      let n = Array.length inp.x in
      let alpha = y 0 in
      let z i = bf inp.z.(i) in
      let ynew = Array.init n (fun i -> B.add (B.mul alpha (x i)) (y (i + 1))) in
      let acc = ref (B.make_zero ~prec:big_prec) in
      for i = 0 to n - 1 do
        acc := B.add !acc (B.mul ynew.(i) (z i))
      done;
      Array.append
        [| B.to_expansion ~n:Sla.max_terms !acc |]
        (Array.map (B.to_expansion ~n:Sla.max_terms) ynew)
  | Sla.Chain c ->
      invalid_arg
        (Printf.sprintf "Adaptive.Escalate: unsupported chain %S" (String.concat ";" c))

let bigfloat_outcome op (inp : Sla.inputs) ~escalations =
  let result = bigfloat_eval op inp in
  let bound = Certify.ball_bound op ~prec:(big_prec + Certify.ball_guard) inp result in
  { result; bound; chosen = "bigfloat"; escalations }

let run ?eval ~q ~op (inputs : Sla.inputs) =
  let eval = Option.value eval ~default:(fun ~terms inp -> Eval.eval ~terms op inp) in
  if q < Sla.q_min || q > Sla.q_max then
    Error (Printf.sprintf "sla %d out of range [%d, %d]" q Sla.q_min Sla.q_max)
  else if not (Sla.finite inputs) then Error "sla requires finite operand components"
  else
    match Sla.width inputs with
    | None -> Error "sla requires uniform operand element width"
    | Some w when w > Sla.max_terms ->
        Error (Printf.sprintf "operand width %d exceeds the widest tier" w)
    | Some w ->
        let start = Sla.start_terms ~width:w in
        let sc = Certify.scale op inputs in
        let thr = Certify.threshold ~q ~scale:sc in
        let n = max 1 (Array.length inputs.x) in
        (* the static certificate depends only on the operands, so the
           ladder jumps straight to its cheapest admissible rung
           instead of evaluating (and discarding) the rungs below —
           this is what keeps a mixed-SLA workload cheaper than
           always-mf4 serving *)
        let rec pick terms =
          if terms > Sla.max_terms then None
          else if Certify.static_bound_scaled op ~n ~terms ~scale:sc <= thr then
            Some terms
          else pick (terms + 1)
        in
        (match pick start with
        | Some terms ->
            let result = eval ~terms (Sla.pad ~terms inputs) in
            Ok
              { result;
                bound = Certify.static_bound_scaled op ~n ~terms ~scale:sc;
                chosen = Sla.tier_name_of_terms terms;
                escalations = terms - start }
        | None ->
            (* no rung certifies statically: the last MultiFloat rung
               may still pass under its ball certificate before the
               bigfloat fallback *)
            let terms = Sla.max_terms in
            let result = eval ~terms (Sla.pad ~terms inputs) in
            let bound, met = Certify.certify_scaled op ~terms ~q ~scale:sc inputs result in
            if met then
              Ok
                { result; bound; chosen = Sla.tier_name_of_terms terms;
                  escalations = terms - start }
            else Ok (bigfloat_outcome op inputs ~escalations:(terms - start + 1)))
