(* Canonical scalar tier evaluator for the certifiable ops: plain
   scalar kernels in index order, the same accumulation orders as the
   serving layer's scalar reference path (Serve.Batcher.eval_one) and —
   by the Batch contract — its planar batched kernels.  fpan_tool's
   adaptive fuzz gate pins this equivalence bitwise. *)

module Make (M : Multifloat.Ops.S) = struct
  let eval op (inp : Sla.inputs) : float array array =
    let x i = M.of_components inp.x.(i) in
    let y i = M.of_components inp.y.(i) in
    let one v = [| M.components v |] in
    match op with
    | Sla.Add -> one (M.add (x 0) (y 0))
    | Sla.Mul -> one (M.mul (x 0) (y 0))
    | Sla.Div -> one (M.div (x 0) (y 0))
    | Sla.Sqrt -> one (M.sqrt (x 0))
    | Sla.Sum | Sla.Chain [ "sum" ] ->
        let acc = ref M.zero in
        for i = 0 to Array.length inp.x - 1 do
          acc := M.add !acc (x i)
        done;
        one !acc
    | Sla.Dot | Sla.Chain [ "mul"; "sum" ] ->
        let acc = ref M.zero in
        for i = 0 to Array.length inp.x - 1 do
          acc := M.add !acc (M.mul (x i) (y i))
        done;
        one !acc
    | Sla.Axpy ->
        let alpha = y 0 in
        Array.init (Array.length inp.x) (fun i ->
            M.components (M.add (M.mul alpha (x i)) (y (i + 1))))
    | Sla.Chain [ "axpy"; "dot" ] ->
        let n = Array.length inp.x in
        let alpha = y 0 in
        let z i = M.of_components inp.z.(i) in
        let ynew = Array.init n (fun i -> M.add (M.mul alpha (x i)) (y (i + 1))) in
        let acc = ref M.zero in
        for i = 0 to n - 1 do
          acc := M.add !acc (M.mul ynew.(i) (z i))
        done;
        Array.append [| M.components !acc |] (Array.map M.components ynew)
    | Sla.Chain c ->
        invalid_arg
          (Printf.sprintf "Adaptive.Eval: unsupported chain %S" (String.concat ";" c))
end

module E2 = Make (Multifloat.Mf2)
module E3 = Make (Multifloat.Mf3)
module E4 = Make (Multifloat.Mf4)

(* [inp] must already be padded to [terms]-component elements. *)
let eval ~terms op inp =
  match terms with
  | 2 -> E2.eval op inp
  | 3 -> E3.eval op inp
  | 4 -> E4.eval op inp
  | n -> invalid_arg (Printf.sprintf "Adaptive.Eval.eval: no tier with %d terms" n)
