(** Vocabulary of the adaptive-precision subsystem.

    An SLA is an absolute-error budget in units of [2^-q]: the server
    must return a result whose certified absolute error is at most
    [Certify.scale * 2^-q].  Only the certifiable core operations
    qualify; the transcendentals and poly-eval carry no per-op error
    theorem and cannot be requested under an SLA. *)

type op =
  | Add
  | Mul
  | Div
  | Sqrt
  | Sum
  | Dot
  | Axpy
  | Chain of string list
      (** One of the fused wire-program chains: [["sum"]],
          [["mul"; "sum"]], or [["axpy"; "dot"]]. *)

type inputs = {
  x : float array array;
  y : float array array;
  z : float array array;
}

val q_min : int
val q_max : int
(** Accepted SLA range: [1..200].  200 keeps the bigfloat fallback
    (whose 4-term output carries ~2^-210 relative error) able to meet
    every admissible budget. *)

val chains : string list list
val op_name : op -> string

val of_wire : op:string -> prog:string list -> op option
(** Map a wire op name (+ program chain) to an SLA op; [None] for the
    uncertifiable ops. *)

val supported_wire_ops : string list

val width : inputs -> int option
(** Uniform element width across all operands, or [None] when elements
    disagree (or there are none). *)

val finite : inputs -> bool

val min_terms : int
val max_terms : int

val start_terms : width:int -> int
(** First rung of the escalation ladder: the cheapest tier that holds
    the operands without truncation. *)

val tier_name_of_terms : int -> string

val pad_element : terms:int -> float array -> float array
(** Exact widening by zero components; raises on an attempt to narrow. *)

val pad : terms:int -> inputs -> inputs
(** Returns the inputs unchanged (no copy) when every element already
    has [terms] components. *)
