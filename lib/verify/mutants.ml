(* Seeded-broken networks: known-bad wirings the verifier must catch.

   A verifier that has never caught a bug proves nothing about itself.
   [self_test] runs the sweep against [sloppy_add2] — add2 with its
   third TwoSum demoted to a plain Add, the classic "sloppy" double-word
   addition that silently discards the high-order rounding error — and
   demands a violation with a small shrunk counterexample, plus a clean
   pass on the real add2 over the same space.  [fpan_tool verify] runs
   this before emitting any certificate, mirroring [Check.Fuzz]'s
   self-test gate. *)

let ts top bot = { Fpan.Network.kind = Fpan.Network.Two_sum; top; bot }
let fts top bot = { Fpan.Network.kind = Fpan.Network.Fast_two_sum; top; bot }
let add_g top bot = { Fpan.Network.kind = Fpan.Network.Add; top; bot }

(* add2 with [ts 0 2] -> [add_g 0 2]: the error of the high-part
   combination (the dominant one) is dropped, so the discarded error is
   ~2^-w instead of the claimed 2^-(2w-1).  Same wire layout, same
   outputs, same (now false) error_exp claim as add2. *)
let sloppy_add2 =
  Fpan.Network.make ~name:"sloppy-add2" ~num_wires:4
    ~inputs:[| 0; 1; 2; 3 |]
    ~gates:[ ts 0 1; ts 2 3; add_g 0 2; add_g 1 3; add_g 2 1; fts 0 2 ]
    ~outputs:[| 0; 2 |] ~error_exp:105

(* Small spaces so the self-test costs milliseconds, not the sweep's
   minutes: width 4, gap 1, window 1. *)
let mutant_spec () = Sweep.add_network ~width:4 ~window:1 ~gap:1 sloppy_add2 ~terms:2
let clean_spec () = Sweep.add_network ~width:4 ~window:1 ~gap:1 Fpan.Networks.add2 ~terms:2

let self_test ~workers () =
  let mutant = Sweep.run ~max_cex:1 ~workers (mutant_spec ()) in
  let clean = Sweep.run ~max_cex:1 ~workers (clean_spec ()) in
  if Sweep.passed mutant then
    Error "self-test: sweep failed to catch sloppy-add2 (dropped TwoSum error)"
  else if not (Sweep.passed clean) then
    Error "self-test: sweep reports violations on the real add2"
  else
    match mutant.Sweep.failures with
    | [] -> Error "self-test: sloppy-add2 violation recorded no counterexample"
    | f :: _ ->
        if f.Sweep.shrunk_terms > 4 then
          Error
            (Printf.sprintf "self-test: sloppy-add2 counterexample did not shrink (%d terms)"
               f.Sweep.shrunk_terms)
        else Ok f
