(** Seeded-broken networks the verifier must catch before its
    certificates mean anything. *)

val sloppy_add2 : Fpan.Network.t
(** add2 with the third TwoSum demoted to a plain Add — the "sloppy"
    double-word addition that drops the dominant rounding error.  Its
    (inherited) 2^-105 error_exp claim is false, and the sweep must
    prove it false. *)

val mutant_spec : unit -> Sweep.spec
(** [sloppy_add2] over a small width-4 space (milliseconds). *)

val clean_spec : unit -> Sweep.spec
(** Real add2 over the same space, for the must-pass half. *)

val self_test : workers:int -> unit -> (Sweep.failure, string) result
(** The verifier's own gate: the mutant must fail with a shrunk
    counterexample of at most 4 nonzero terms, the real add2 must
    pass.  [fpan_tool verify] refuses to emit a certificate (exit 2)
    if this errors. *)
