(* Exhaustive small-width sweeps over constraint circuits.

   A sweep takes a [spec] — a network or fused chain plus an operand
   space shape — lowers the program to a {!Circuit}, enumerates every
   tuple of the {!Space} on the work-stealing runtime, and checks the
   paper's obligations against exact double arithmetic:

   - per-gate EFT exactness (TwoSum / FastTwoSum: s + e = a + b,
     TwoProd: p + e = a * b) for every constraint of the circuit;
   - nonoverlap ordering of the output expansion at the width
     (the checker's [Overlapping_output], transposed to width w);
   - the scaled relative error bound |reference - sum outputs| <=
     2^-q_w |reference| with q_w the network's [error_exp] rebased
     from precision 53 to the sweep width;
   - bitwise equivalence of the circuit against an independently
     coded scalar reference ([Fpan.Interp.run_rounded] on the source
     network, composed per chain) — two code paths, one semantics.

   Everything on the right-hand side of those comparisons is computed
   in plain double arithmetic.  That is exact — not approximately,
   exactly — because every value a sweep can produce lies on the grid
   [2^min_grid] with magnitude below [2^(max_exp + slack)], and
   [prepare] refuses to run unless that footprint fits in 52 bits.
   So "no violation counted" is a proof at width w, not an
   observation.

   Determinism: the sweep reduces through
   [Runtime.Sched.parallel_reduce] with a grain that never depends on
   the worker count, and every combine is order-independent on the
   fixed tree (sums, max, merge-sorted-keep-K of tuple indices) — the
   certificate is bitwise identical for any [--workers]. *)

module Minifloat = Gpu32.Minifloat

(* ------------------------------------------------------------------ *)
(* Obligations                                                         *)

type obligation =
  | Eft_two_sum
  | Eft_fast_two_sum
  | Eft_two_prod
  | Nonoverlap
  | Error_bound
  | Equivalence

let obligations =
  [| Eft_two_sum; Eft_fast_two_sum; Eft_two_prod; Nonoverlap; Error_bound; Equivalence |]

let n_obligations = Array.length obligations

let obligation_index = function
  | Eft_two_sum -> 0
  | Eft_fast_two_sum -> 1
  | Eft_two_prod -> 2
  | Nonoverlap -> 3
  | Error_bound -> 4
  | Equivalence -> 5

let obligation_name = function
  | Eft_two_sum -> "two_sum"
  | Eft_fast_two_sum -> "fast_two_sum"
  | Eft_two_prod -> "two_prod"
  | Nonoverlap -> "nonoverlap"
  | Error_bound -> "error_bound"
  | Equivalence -> "equivalence"

let obligation_of_eft = function
  | Circuit.Ts -> Eft_two_sum
  | Circuit.Fts -> Eft_fast_two_sum
  | Circuit.Tp -> Eft_two_prod

(* ------------------------------------------------------------------ *)
(* Specs                                                               *)

type kind = Add_network | Mul_network | Chain of string

let kind_name = function
  | Add_network -> "add_network"
  | Mul_network -> "mul_network"
  | Chain _ -> "chain"

type spec = {
  name : string;
  kind : kind;
  net : Fpan.Network.t option;  (* networks only: error_exp + scalar reference *)
  prog : Fpan_ir.Ir.t;
  terms : int;
  width : int;
  window : int;
  gap : int;
  n_slots : int;
  anchored_slot : int;
}

(* Kernel-shaped IR for an arbitrary add-shaped network (the core nets
   and the seeded mutants alike): component-major inputs x @ y fed to
   the network's interleaved wire order — exactly [Front.add_kernel]
   generalized over the network. *)
let add_shaped_ir (net : Fpan.Network.t) t =
  let open Fpan_ir in
  let b = Ir.B.create ~num_inputs:(2 * t) in
  let x = Array.init t (fun i -> Ir.In i) and y = Array.init t (fun i -> Ir.In (t + i)) in
  let outs = Front.inline_network b net (Front.interleave t x y) in
  Ir.B.finish b ~name:net.Fpan.Network.name ~outputs:outs

(* Likewise [Front.mul_kernel] generalized: TwoProd expansion of x * y
   feeding an arbitrary mul-shaped network. *)
let mul_shaped_ir (net : Fpan.Network.t) t =
  let open Fpan_ir in
  let b = Ir.B.create ~num_inputs:(2 * t) in
  let x = Array.init t (fun i -> Ir.In i) and y = Array.init t (fun i -> Ir.In (t + i)) in
  let wires = Front.inline_mul_expand b t x y in
  let outs = Front.inline_network b net wires in
  Ir.B.finish b ~name:net.Fpan.Network.name ~outputs:outs

let add_network ?(width = 5) ?(window = 1) ?(gap = 2) (net : Fpan.Network.t) ~terms =
  {
    name = net.Fpan.Network.name;
    kind = Add_network;
    net = Some net;
    prog = add_shaped_ir net terms;
    terms;
    width;
    window;
    gap;
    n_slots = 2;
    anchored_slot = 0;
  }

let mul_network ?(width = 5) ?(window = 1) ?(gap = 2) (net : Fpan.Network.t) ~terms =
  {
    name = net.Fpan.Network.name;
    kind = Mul_network;
    net = Some net;
    prog = mul_shaped_ir net terms;
    terms;
    width;
    window;
    gap;
    n_slots = 2;
    anchored_slot = 0;
  }

(* Operand slots and anchoring per fused chain.  The anchored slot is
   one whose scaling by 2^k scales the whole result by 2^k (jointly
   with the implicit rescaling of the other additive operands covered
   by their exponent windows) — see the equivariance note in space.ml. *)
let chain_slots =
  [
    ("add", (2, 0));
    ("sub", (2, 0));
    ("mul", (2, 0));
    ("axpy", (3, 0));
    ("madd", (3, 0));
    ("dot_step", (3, 1));
    ("sum_step", (2, 0));
    ("axpy_dot_step", (5, 0));
    ("residual_tail", (2, 0));
  ]

let chain ?(width = 4) ?(window = 1) ?(gap = 1) name ~terms =
  let prog = Fpan_ir.Fuse.chain name terms in
  let n_slots, anchored_slot =
    match List.assoc_opt name chain_slots with
    | Some v -> v
    | None -> invalid_arg (Printf.sprintf "Verify.Sweep.chain: unknown chain %S" name)
  in
  {
    name = prog.Fpan_ir.Ir.name;
    kind = Chain name;
    net = None;
    prog;
    terms;
    width;
    window;
    gap;
    n_slots;
    anchored_slot;
  }

(* ------------------------------------------------------------------ *)
(* Footprint bound                                                     *)

(* Highest multiplicative depth of any value the target computes:
   1 for pure sums, 2 with one product layer, 3 for axpy_dot_step's
   product of an already-multiplied intermediate. *)
let degree = function
  | Add_network -> 1
  | Mul_network -> 2
  | Chain ("add" | "sub" | "sum_step" | "residual_tail") -> 1
  | Chain ("mul" | "dot_step" | "axpy" | "madd") -> 2
  | Chain _ -> 3

let ceil_log2 n =
  let rec go b v = if v >= n then b else go (b + 1) (v * 2) in
  go 0 1

(* Bits spanned by the sweep: every value lies on grid 2^(d*min_grid)
   with magnitude < 2^(d*(max_exp+1) + slack), where d is the
   multiplicative depth and slack accommodates sums of all components.
   Under 52, every double add/sub/mul/fma the sweep performs is exact. *)
let footprint_bits spec (space : Space.t) =
  let max_e, min_g = Space.exponent_range space in
  let d = degree spec.kind in
  let slack = ceil_log2 (max 2 (Space.num_inputs space)) + 2 in
  (d * (max_e + 1 - min_g)) + slack

(* ------------------------------------------------------------------ *)
(* Scalar references                                                   *)

(* [Eft.two_prod] with every primitive rounded: pr = rnd(x*y),
   err = rnd(fma(x, y, -pr)); the fma is exact at width w <= 26. *)
let two_prod_r round x y =
  let p = round (x *. y) in
  (p, round (Float.fma x y (-.p)))

(* [Fpan.Networks.mul_expand] with rounded primitives, in the error
   flush order of the generated kernels (ascending — see the deviation
   note on [Front.inline_mul_expand]), so the reference is gate-for-gate
   the circuit's operand order and bitwise comparison is meaningful. *)
let mul_expand_r ~round n (x : float array) (y : float array) =
  let out = ref [] in
  let push v = out := v :: !out in
  let p00, e00 = two_prod_r round x.(0) y.(0) in
  push p00;
  let errs = ref [ [ e00 ] ] in
  for o = 1 to n - 1 do
    let new_errs = ref [] in
    for i = 0 to o do
      let j = o - i in
      if i < n && j < n then
        if o <= n - 2 then begin
          let p, e = two_prod_r round x.(i) y.(j) in
          push p;
          new_errs := e :: !new_errs
        end
        else push (round (x.(i) *. y.(j)))
    done;
    (match !errs with
    | prev :: rest ->
        List.iter push prev;
        errs := rest
    | [] -> ());
    errs := !errs @ [ List.rev !new_errs ]
  done;
  Array.of_list (List.rev !out)

let interleave_arr t (x : float array) (y : float array) =
  Array.init (2 * t) (fun k -> if k mod 2 = 0 then x.(k / 2) else y.(k / 2))

(* The independent scalar path for the equivalence obligation: the
   mutable-wire interpreter run gate-by-gate on the *network* (not the
   IR), composed per chain exactly as the fusion pass composes pieces.
   Shares no lowering code with [Circuit.eval]. *)
let scalar_reference spec ~round : float array -> float array =
  let t = spec.terms in
  let sub buf lo = Array.sub buf lo t in
  match spec.kind with
  | Add_network ->
      let net = Option.get spec.net in
      fun buf -> Fpan.Interp.run_rounded ~round net (interleave_arr t (sub buf 0) (sub buf t))
  | Mul_network ->
      let net = Option.get spec.net in
      fun buf ->
        Fpan.Interp.run_rounded ~round net (mul_expand_r ~round t (sub buf 0) (sub buf t))
  | Chain name -> (
      let add_net = Fpan.Networks.add t in
      let radd x y = Fpan.Interp.run_rounded ~round add_net (interleave_arr t x y) in
      let rmul =
        lazy
          (let mul_net = Fpan.Networks.mul t in
           fun x y -> Fpan.Interp.run_rounded ~round mul_net (mul_expand_r ~round t x y))
      in
      let rmul x y = (Lazy.force rmul) x y in
      let neg a = Array.map Float.neg a in
      match name with
      | "add" | "sum_step" -> fun buf -> radd (sub buf 0) (sub buf t)
      | "sub" | "residual_tail" -> fun buf -> radd (sub buf 0) (neg (sub buf t))
      | "mul" -> fun buf -> rmul (sub buf 0) (sub buf t)
      | "dot_step" -> fun buf -> radd (sub buf 0) (rmul (sub buf t) (sub buf (2 * t)))
      | "axpy" -> fun buf -> radd (rmul (sub buf 0) (sub buf t)) (sub buf (2 * t))
      | "madd" -> fun buf -> radd (sub buf (2 * t)) (rmul (sub buf 0) (sub buf t))
      | "axpy_dot_step" ->
          fun buf ->
            let y' = radd (rmul (sub buf 0) (sub buf t)) (sub buf (2 * t)) in
            let acc' = radd (sub buf (4 * t)) (rmul y' (sub buf (3 * t))) in
            Array.append y' acc'
      | other -> invalid_arg (Printf.sprintf "Verify.Sweep: no scalar reference for %S" other))

(* ------------------------------------------------------------------ *)
(* Prepared target                                                     *)

type target = {
  spec : spec;
  space : Space.t;
  circuit : Circuit.t;
  footprint : int;
  q_w : int option;  (* scaled error bound exponent, networks only *)
}

(* error_exp is stated at precision 53; each of its k = round(e/53)
   precision factors loses (53 - w) bits at width w. *)
let scaled_error_exp ~width error_exp =
  let k = (error_exp + 26) / 53 in
  error_exp - (k * (53 - width))

(* Worst-case footprint straight from the spec parameters — an upper
   bound on [footprint_bits] of the enumerated space (leading exponents
   span [-window, window], each tail drops at most width + gap - 1
   binades).  Checked *before* enumeration: at large widths the
   expansion lists themselves are astronomically big, so the guard
   must not require building them. *)
let worst_footprint spec =
  let d = degree spec.kind in
  let max_e = max 0 spec.window in
  let min_comp = -spec.window - ((spec.terms - 1) * (spec.width + spec.gap - 1)) in
  let min_grid = min_comp - spec.width + 1 in
  let slack = ceil_log2 (max 2 (spec.n_slots * spec.terms)) + 2 in
  (d * (max_e + 1 - min_grid)) + slack

let refuse spec footprint =
  invalid_arg
    (Printf.sprintf
       "Verify.Sweep.prepare: %s: footprint %d bits > 52 — double checks would stop being \
        exact; reduce width/window/gap"
       spec.name footprint)

let prepare spec =
  let worst = worst_footprint spec in
  if worst > 52 then refuse spec worst;
  let slots =
    Array.init spec.n_slots (fun s ->
        Space.expansions ~width:spec.width ~terms:spec.terms ~gap:spec.gap
          (if s = spec.anchored_slot then Space.Anchored else Space.Windowed spec.window))
  in
  let space = Space.make ~name:spec.name ~width:spec.width slots in
  let footprint = footprint_bits spec space in
  if footprint > 52 then refuse spec footprint;
  let q_w =
    match (spec.kind, spec.net) with
    | (Add_network | Mul_network), Some net ->
        Some (scaled_error_exp ~width:spec.width net.Fpan.Network.error_exp)
    | _ -> None
  in
  { spec; space; circuit = Circuit.of_ir spec.prog; footprint; q_w }

(* ------------------------------------------------------------------ *)
(* The sweep                                                           *)

type counts = { checked : int array; violations : int array; skipped : int array }

let zero_counts () =
  {
    checked = Array.make n_obligations 0;
    violations = Array.make n_obligations 0;
    skipped = Array.make n_obligations 0;
  }

let add_counts a b =
  let add2 x y = Array.init n_obligations (fun i -> x.(i) + y.(i)) in
  {
    checked = add2 a.checked b.checked;
    violations = add2 a.violations b.violations;
    skipped = add2 a.skipped b.skipped;
  }

type acc = {
  counts : counts;
  worst : float;  (* max log2 |discarded/reference|; -inf if never seen *)
  fails : (int * obligation) list;  (* ascending tuple index, <= max_cex *)
}

(* Order-independent merge on the fixed reduction tree: counter sums,
   max, and merge-of-sorted keeping the [max_cex] smallest indices —
   the recorded counterexamples are the globally smallest tuple
   indices regardless of how leaves were scheduled. *)
let merge_acc ~max_cex a b =
  let rec merge n xs ys =
    if n = 0 then []
    else
      match (xs, ys) with
      | [], [] -> []
      | x :: xs', [] -> x :: merge (n - 1) xs' []
      | [], y :: ys' -> y :: merge (n - 1) [] ys'
      | x :: xs', y :: ys' ->
          if fst x <= fst y then x :: merge (n - 1) xs' ys else y :: merge (n - 1) xs ys'
  in
  {
    counts = add_counts a.counts b.counts;
    worst = Float.max a.worst b.worst;
    fails = merge max_cex a.fails b.fails;
  }

let sum_range (buf : float array) lo len =
  let s = ref 0.0 in
  for i = lo to lo + len - 1 do
    s := !s +. buf.(i)
  done;
  !s

(* The exact double reference value of a network target (None for
   chains, whose obligation set has no scalar bound). *)
let reference_value spec (buf : float array) =
  match spec.kind with
  | Add_network -> sum_range buf 0 (2 * spec.terms)
  | Mul_network -> sum_range buf 0 spec.terms *. sum_range buf spec.terms spec.terms
  | Chain _ -> 0.0

let bits_eq a b = Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)

(* Evaluate one tuple's obligations; count into [counts]; return the
   first violated obligation, if any. *)
let check_tuple tgt ~round ~representable ~scalar_ref ~regs ~buf counts worst =
  let spec = tgt.spec in
  let first = ref None in
  let note ob verdict =
    let i = obligation_index ob in
    match (verdict : Circuit.verdict) with
    | Circuit.Holds -> counts.checked.(i) <- counts.checked.(i) + 1
    | Circuit.Skipped -> counts.skipped.(i) <- counts.skipped.(i) + 1
    | Circuit.Violated ->
        counts.checked.(i) <- counts.checked.(i) + 1;
        counts.violations.(i) <- counts.violations.(i) + 1;
        if !first = None then first := Some ob
  in
  Circuit.eval tgt.circuit ~round ~regs buf;
  Array.iter
    (fun (k : Circuit.eft) ->
      note (obligation_of_eft k.Circuit.kind) (Circuit.check_eft ~regs ~representable k))
    tgt.circuit.Circuit.efts;
  let outs = Circuit.outputs tgt.circuit ~regs in
  let outs_finite = Array.for_all Float.is_finite outs in
  note Nonoverlap
    (if not outs_finite then Circuit.Skipped
     else if Minifloat.is_nonoverlapping_seq_p spec.width outs then Circuit.Holds
     else Circuit.Violated);
  (match tgt.q_w with
  | None -> ()
  | Some q ->
      if not outs_finite then note Error_bound Circuit.Skipped
      else begin
        let reference = reference_value spec buf in
        let discarded = reference -. Array.fold_left ( +. ) 0.0 outs in
        note Error_bound
          (if Float.abs discarded <= Float.ldexp (Float.abs reference) (-q) then Circuit.Holds
           else Circuit.Violated);
        if discarded <> 0.0 && reference <> 0.0 then begin
          let e = Float.log2 (Float.abs discarded) -. Float.log2 (Float.abs reference) in
          if e > !worst then worst := e
        end
      end);
  let sc = scalar_ref buf in
  note Equivalence
    (if Array.length sc = Array.length outs && Array.for_all2 bits_eq sc outs then Circuit.Holds
     else Circuit.Violated);
  !first

(* ------------------------------------------------------------------ *)
(* Results                                                             *)

type failure = {
  index : int;
  obligation : obligation;
  operands : float array array;
  outputs : float array;
  shrunk : float array array;
  shrunk_terms : int;
}

type result = {
  spec : spec;
  tuples : int;
  circuit_ops : int;
  constraints : int;
  footprint : int;
  error_bound_exp : int option;
  counts : counts;
  worst_err_log2 : float;
  failures : failure list;
}

let passed r = Array.for_all (fun v -> v = 0) r.counts.violations

(* Does [ops] (a candidate counterexample, possibly outside the
   enumerated space) still violate [ob]?  The shrinker's [keep]. *)
let violates (tgt : target) ~round ~representable ~scalar_ref ~regs ~buf ob
    (ops : float array array) =
  Space.valid_operands ~width:tgt.spec.width ops
  &&
  let n = ref 0 in
  Array.iter
    (fun comps ->
      Array.blit comps 0 buf !n (Array.length comps);
      n := !n + Array.length comps)
    ops;
  let counts = zero_counts () in
  let worst = ref Float.neg_infinity in
  ignore (check_tuple tgt ~round ~representable ~scalar_ref ~regs ~buf counts worst);
  counts.violations.(obligation_index ob) > 0

let run ?(grain = 4096) ?(max_cex = 5) ~workers spec =
  let tgt = prepare spec in
  let round = Minifloat.round_p spec.width in
  let representable = Minifloat.is_representable_p spec.width in
  let total = tgt.space.Space.total in
  let leaf lo hi =
    let regs = Circuit.make_regs tgt.circuit in
    let buf = Array.make (Space.num_inputs tgt.space) 0.0 in
    let scalar_ref = scalar_reference spec ~round in
    let counts = zero_counts () in
    let worst = ref Float.neg_infinity in
    let fails = ref [] in
    let n_fails = ref 0 in
    for idx = lo to hi - 1 do
      Space.fill_inputs tgt.space idx buf;
      match check_tuple tgt ~round ~representable ~scalar_ref ~regs ~buf counts worst with
      | Some ob when !n_fails < max_cex ->
          fails := (idx, ob) :: !fails;
          incr n_fails
      | _ -> ()
    done;
    { counts; worst = !worst; fails = List.rev !fails }
  in
  let acc =
    Runtime.Sched.with_sched ~workers (fun rt ->
        Runtime.Sched.parallel_reduce rt ~grain ~lo:0 ~hi:total ~leaf (merge_acc ~max_cex))
  in
  (* Decode and shrink the recorded counterexamples after the sweep —
     never in the hot loop.  [operands] aliases the slot tables, so
     deep-copy before handing them to the in-place shrinker. *)
  let regs = Circuit.make_regs tgt.circuit in
  let buf = Array.make (Space.num_inputs tgt.space) 0.0 in
  let scalar_ref = scalar_reference spec ~round in
  let failures =
    List.map
      (fun (idx, ob) ->
        let operands = Array.map Array.copy (Space.operands tgt.space idx) in
        Space.fill_inputs tgt.space idx buf;
        Circuit.eval tgt.circuit ~round ~regs buf;
        let outputs = Circuit.outputs tgt.circuit ~regs in
        let shrunk =
          Check.Shrink.shrink ~canon:round
            ~keep:(violates tgt ~round ~representable ~scalar_ref ~regs ~buf ob)
            (Array.map Array.copy operands)
        in
        {
          index = idx;
          obligation = ob;
          operands;
          outputs;
          shrunk;
          shrunk_terms = Check.Shrink.nonzero_terms shrunk;
        })
      acc.fails
  in
  {
    spec;
    tuples = total;
    circuit_ops = Circuit.size tgt.circuit;
    constraints = Circuit.n_efts tgt.circuit;
    footprint = tgt.footprint;
    error_bound_exp = tgt.q_w;
    counts = acc.counts;
    worst_err_log2 = acc.worst;
    failures;
  }

(* ------------------------------------------------------------------ *)
(* Gate-level sweep: every ordered pair of a full reduced format        *)

type gate_counts = { g_checked : int; g_violations : int; g_skipped : int }

type gate_result = {
  fmt : Minifloat.fmt;
  values : int;
  pairs : int;
  two_sum : gate_counts;
  fast_two_sum : gate_counts;
  two_prod : gate_counts;
}

let gate_passed g =
  g.two_sum.g_violations = 0 && g.fast_two_sum.g_violations = 0 && g.two_prod.g_violations = 0

(* 3 kinds x (checked, violations, skipped), summed across leaves. *)
let gate_level ?(grain = 8192) ~workers fmt =
  let vals = Minifloat.all_finite fmt in
  let n = Array.length vals in
  let round = Minifloat.round fmt in
  let repr = Minifloat.is_representable fmt in
  let leaf lo hi =
    let c = Array.make 9 0 in
    let note k (v : Circuit.verdict) =
      match v with
      | Circuit.Holds -> c.((k * 3) + 0) <- c.((k * 3) + 0) + 1
      | Circuit.Violated ->
          c.((k * 3) + 0) <- c.((k * 3) + 0) + 1;
          c.((k * 3) + 1) <- c.((k * 3) + 1) + 1
      | Circuit.Skipped -> c.((k * 3) + 2) <- c.((k * 3) + 2) + 1
    in
    for k = lo to hi - 1 do
      let a = vals.(k / n) and b = vals.(k mod n) in
      (* 6-op TwoSum *)
      let s = round (a +. b) in
      let x_eff = round (s -. b) in
      let y_eff = round (s -. x_eff) in
      let dx = round (a -. x_eff) in
      let dy = round (b -. y_eff) in
      let e = round (dx +. dy) in
      note 0
        (if not (Float.is_finite s && Float.is_finite e) then Circuit.Skipped
         else if s +. e = a +. b then Circuit.Holds
         else Circuit.Violated);
      (* 3-op FastTwoSum, checked only where its |a| >= |b| exponent
         precondition holds (the network compiler's obligation, audited
         at p=53 by Interp.run_audited) *)
      let pre = b = 0.0 || (a <> 0.0 && Eft.exponent a >= Eft.exponent b) in
      if not pre then note 1 Circuit.Skipped
      else begin
        let s = round (a +. b) in
        let y_eff = round (s -. a) in
        let e = round (b -. y_eff) in
        note 1
          (if not (Float.is_finite s && Float.is_finite e) then Circuit.Skipped
           else if s +. e = a +. b then Circuit.Holds
           else Circuit.Violated)
      end;
      (* fma TwoProd; the a * b product is exact in double (2p <= 52) *)
      let p = round (a *. b) in
      if not (Float.is_finite p) then note 2 Circuit.Skipped
      else begin
        let e = round (Float.fma a b (-.p)) in
        let true_err = Float.fma a b (-.p) in
        note 2
          (if not (repr true_err) then Circuit.Skipped
           else if not (Float.is_finite e) then Circuit.Skipped
           else if p +. e = a *. b then Circuit.Holds
           else Circuit.Violated)
      end
    done;
    c
  in
  let c =
    Runtime.Sched.with_sched ~workers (fun rt ->
        Runtime.Sched.parallel_reduce rt ~grain ~lo:0 ~hi:(n * n) ~leaf (fun x y ->
            Array.init 9 (fun i -> x.(i) + y.(i))))
  in
  let counts k = { g_checked = c.((k * 3) + 0); g_violations = c.((k * 3) + 1); g_skipped = c.((k * 3) + 2) } in
  {
    fmt;
    values = n;
    pairs = n * n;
    two_sum = counts 0;
    fast_two_sum = counts 1;
    two_prod = counts 2;
  }

(* ------------------------------------------------------------------ *)
(* Certificate JSON (schema fpan-verify/1)                              *)

(* No worker count, no timestamps, no timings: certificates from
   different worker counts must be byte-identical (CI diffs them). *)

let hex v = Obs.Json_out.Str (Printf.sprintf "%h" v)
let hex_row comps = Obs.Json_out.List (Array.to_list (Array.map hex comps))
let hex_rows ops = Obs.Json_out.List (Array.to_list (Array.map hex_row ops))

let counts_json counts =
  Obs.Json_out.List
    (Array.to_list
       (Array.map
          (fun ob ->
            let i = obligation_index ob in
            Obs.Json_out.Obj
              [
                ("obligation", Obs.Json_out.Str (obligation_name ob));
                ("checked", Obs.Json_out.Num (float_of_int counts.checked.(i)));
                ("violations", Obs.Json_out.Num (float_of_int counts.violations.(i)));
                ("skipped", Obs.Json_out.Num (float_of_int counts.skipped.(i)));
              ])
          obligations))

let failure_json f =
  Obs.Json_out.Obj
    [
      ("index", Obs.Json_out.Num (float_of_int f.index));
      ("obligation", Obs.Json_out.Str (obligation_name f.obligation));
      ("operands", hex_rows f.operands);
      ("outputs", hex_row f.outputs);
      ("shrunk", hex_rows f.shrunk);
      ("shrunk_terms", Obs.Json_out.Num (float_of_int f.shrunk_terms));
    ]

let result_json r =
  let open Obs.Json_out in
  Obj
    [
      ("name", Str r.spec.name);
      ("kind", Str (kind_name r.spec.kind));
      ("width", Num (float_of_int r.spec.width));
      ("window", Num (float_of_int r.spec.window));
      ("gap", Num (float_of_int r.spec.gap));
      ("terms", Num (float_of_int r.spec.terms));
      ("slots", Num (float_of_int r.spec.n_slots));
      ("tuples", Num (float_of_int r.tuples));
      ("circuit_ops", Num (float_of_int r.circuit_ops));
      ("constraints", Num (float_of_int r.constraints));
      ("footprint_bits", Num (float_of_int r.footprint));
      ( "error_bound_exp",
        match r.error_bound_exp with None -> Null | Some q -> Num (float_of_int q) );
      ("obligations", counts_json r.counts);
      ("worst_error_log2", Num r.worst_err_log2);  (* -inf -> null *)
      ("failures", List (List.map failure_json r.failures));
      ("passed", Bool (passed r));
    ]

let gate_counts_json op (g : gate_counts) =
  Obs.Json_out.Obj
    [
      ("op", Obs.Json_out.Str op);
      ("checked", Obs.Json_out.Num (float_of_int g.g_checked));
      ("violations", Obs.Json_out.Num (float_of_int g.g_violations));
      ("skipped", Obs.Json_out.Num (float_of_int g.g_skipped));
    ]

let gate_json g =
  let open Obs.Json_out in
  Obj
    [
      ("precision", Num (float_of_int g.fmt.Minifloat.p));
      ("emin", Num (float_of_int g.fmt.Minifloat.emin));
      ("emax", Num (float_of_int g.fmt.Minifloat.emax));
      ("values", Num (float_of_int g.values));
      ("pairs", Num (float_of_int g.pairs));
      ( "ops",
        List
          [
            gate_counts_json "two_sum" g.two_sum;
            gate_counts_json "fast_two_sum" g.fast_two_sum;
            gate_counts_json "two_prod" g.two_prod;
          ] );
      ("passed", Bool (gate_passed g));
    ]

let certificate ?gate (results : result list) =
  let open Obs.Json_out in
  let all_passed =
    List.for_all passed results
    && match gate with None -> true | Some g -> gate_passed g
  in
  Obj
    [
      ("schema", Str "fpan-verify/1");
      ("gate_level", match gate with None -> Null | Some g -> gate_json g);
      ("sweeps", List (List.map result_json results));
      ("passed", Bool all_passed);
    ]
