(** Exhaustive small-width sweeps: enumerate an operand {!Space} over a
    {!Circuit} on the work-stealing runtime and check every paper
    obligation exactly.

    Two layers (DESIGN.md s12):

    - {!gate_level} proves the EFT building blocks (TwoSum,
      FastTwoSum, TwoProd) over {e every ordered pair} of a full
      reduced format — overflow, subnormals, signed zeros included;
    - {!run} proves whole networks and fused chains over every valid
      width-w expansion tuple of a shaped operand space, under the
      precision-only rounding and its scale/sign symmetry quotients.

    Results are bitwise identical for any worker count: the reduction
    tree is fixed by (total, grain) and every combine is
    order-independent. *)

type obligation =
  | Eft_two_sum
  | Eft_fast_two_sum
  | Eft_two_prod
  | Nonoverlap  (** output expansion ordered and nonoverlapping at the width *)
  | Error_bound  (** |reference - sum outputs| <= 2^-q_w |reference| *)
  | Equivalence  (** circuit bitwise equal to the scalar network path *)

val obligations : obligation array
val obligation_index : obligation -> int
val obligation_name : obligation -> string

type kind = Add_network | Mul_network | Chain of string

val kind_name : kind -> string

type spec = {
  name : string;
  kind : kind;
  net : Fpan.Network.t option;
  prog : Fpan_ir.Ir.t;
  terms : int;
  width : int;
  window : int;
  gap : int;
  n_slots : int;
  anchored_slot : int;
}

val add_shaped_ir : Fpan.Network.t -> int -> Fpan_ir.Ir.t
(** [Front.add_kernel] generalized to any add-shaped network
    (component-major x @ y inputs, interleaved wire binding) — how the
    seeded mutants get a circuit. *)

val mul_shaped_ir : Fpan.Network.t -> int -> Fpan_ir.Ir.t

val add_network : ?width:int -> ?window:int -> ?gap:int -> Fpan.Network.t -> terms:int -> spec
val mul_network : ?width:int -> ?window:int -> ?gap:int -> Fpan.Network.t -> terms:int -> spec

val chain : ?width:int -> ?window:int -> ?gap:int -> string -> terms:int -> spec
(** A fused-chain spec by {!Fpan_ir.Fuse.chain} name.  Chains carry the
    EFT, nonoverlap and equivalence obligations (no scalar error
    bound). *)

val scaled_error_exp : width:int -> int -> int
(** Rebase a precision-53 [error_exp] to width [w]:
    [e - round(e / 53) * (53 - w)] (add2's 105 = 2*53 - 1 becomes
    2w - 1, mul2's 103 becomes 2w - 3, ...). *)

type counts = { checked : int array; violations : int array; skipped : int array }
(** Indexed by {!obligation_index}; [checked] includes violations,
    [skipped] counts the carve-outs (non-finite intermediates,
    unrepresentable TwoProd errors, inapplicable obligations). *)

type failure = {
  index : int;  (** tuple index in the space's row-major order *)
  obligation : obligation;
  operands : float array array;
  outputs : float array;
  shrunk : float array array;  (** {!Check.Shrink} under the width's rounding *)
  shrunk_terms : int;
}

type result = {
  spec : spec;
  tuples : int;
  circuit_ops : int;
  constraints : int;
  footprint : int;  (** asserted <= 52: the exactness argument *)
  error_bound_exp : int option;  (** q_w, networks only *)
  counts : counts;
  worst_err_log2 : float;
  failures : failure list;
}

val passed : result -> bool

val run : ?grain:int -> ?max_cex:int -> workers:int -> spec -> result
(** Sweep every tuple; record the [max_cex] smallest-index violations
    and shrink them (after the sweep) to locally minimal
    counterexamples that stay representable at the width.
    @raise Invalid_argument if the space's bit footprint exceeds 52. *)

type gate_counts = { g_checked : int; g_violations : int; g_skipped : int }

type gate_result = {
  fmt : Gpu32.Minifloat.fmt;
  values : int;
  pairs : int;
  two_sum : gate_counts;
  fast_two_sum : gate_counts;
  two_prod : gate_counts;
}

val gate_passed : gate_result -> bool

val gate_level : ?grain:int -> workers:int -> Gpu32.Minifloat.fmt -> gate_result
(** Check the three EFTs over every ordered pair of the format's
    finite values, with the paper's carve-outs skipped and counted:
    overflowed intermediates, FastTwoSum pairs violating the exponent
    precondition, TwoProd errors below the representable range. *)

val result_json : result -> Obs.Json_out.t
val gate_json : gate_result -> Obs.Json_out.t

val certificate : ?gate:gate_result -> result list -> Obs.Json_out.t
(** The fpan-verify/1 certificate object.  Deliberately excludes
    worker count and timings so certificates are byte-identical across
    worker counts. *)
