(* Exhaustive operand spaces for the network sweeps.

   A sweep's operand space is the cartesian product of per-slot operand
   lists, each list enumerating every valid width-w expansion of a
   given term count inside an exponent budget.  Validity is the
   MultiFloat invariant at width w: components nonoverlapping in
   decreasing magnitude ([Minifloat.is_nonoverlapping_p]), and once a
   component is zero the rest are zero (a zero leading term admits no
   nonzero successor).

   Two symmetries of the precision-only rounding keep the product
   finite without losing generality (DESIGN.md s12):

   - scale equivariance: rnd_p (2^k x) = 2^k rnd_p x, so one slot's
     leading exponent is pinned to 0 ([`Anchored]);
   - sign symmetry: rnd_p is odd, so the anchored leading component is
     taken positive.

   The other slots range over a window of leading exponents relative
   to the anchor ([`Windowed ~window]) with both signs.  Tail
   components sit [0 .. gap-1] binades below the half-ulp nonoverlap
   limit of their predecessor; [gap] bounds how far apart the terms of
   one operand can be pulled, which is what bounds the sweep's total
   bit footprint. *)

module Minifloat = Gpu32.Minifloat

type t = {
  name : string;
  width : int;
  slots : float array array array;  (* slot -> choice -> components *)
  total : int;
}

let mantissa_values width =
  let half = 1 lsl (width - 1) in
  Array.init half (fun i -> half + i)

(* Values one operand component may take at leading exponent [e]:
   m * 2^(e - width + 1) for every width-bit mantissa m. *)
let at_exponent ~width e m = Float.ldexp (Float.of_int m) (e - width + 1)

(* Successors of a nonzero component [prev]: anything nonoverlapping at
   width w within [gap] binades of the limit.  At distance 0 only the
   exact half-ulp power of two survives the |v| <= 2^(ep - w) cut. *)
let tail_options ~width ~gap prev =
  let ep = Eft.exponent prev in
  let limit = Float.ldexp 1.0 (ep - width) in
  let out = ref [] in
  for d = 0 to gap - 1 do
    let e = ep - width - d in
    Array.iter
      (fun m ->
        let v = at_exponent ~width e m in
        if v <= limit then begin
          out := v :: !out;
          out := -.v :: !out
        end)
      (mantissa_values width)
  done;
  List.rev !out

type shape = Anchored | Windowed of int

let expansions ~width ~terms ~gap shape =
  if width < 2 || width > 26 then invalid_arg "Space.expansions: width out of [2, 26]";
  if terms < 1 then invalid_arg "Space.expansions: terms < 1";
  if gap < 1 then invalid_arg "Space.expansions: gap < 1";
  let leading =
    match shape with
    | Anchored ->
        Array.to_list (Array.map (fun m -> at_exponent ~width 0 m) (mantissa_values width))
    | Windowed window ->
        let out = ref [] in
        for e = -window to window do
          Array.iter
            (fun m ->
              let v = at_exponent ~width e m in
              out := -.v :: v :: !out)
            (mantissa_values width)
        done;
        List.rev !out
  in
  let acc = ref [] in
  let rec extend rev_comps k prev =
    if k = terms then acc := Array.of_list (List.rev rev_comps) :: !acc
    else if prev = 0.0 then extend (0.0 :: rev_comps) (k + 1) 0.0
    else
      List.iter
        (fun v -> extend (v :: rev_comps) (k + 1) v)
        (0.0 :: tail_options ~width ~gap prev)
  in
  (* the all-zero operand first, then every expansion by leading value *)
  extend [ 0.0 ] 1 0.0;
  List.iter (fun v -> extend [ v ] 1 v) leading;
  Array.of_list (List.rev !acc)

let make ~name ~width (slots : float array array array) =
  let total = Array.fold_left (fun acc s -> acc * Array.length s) 1 slots in
  if total <= 0 then invalid_arg "Space.make: empty slot";
  { name; width; slots; total }

(* Row-major tuple decoding: slot 0 varies slowest, so ascending tuple
   indices walk the last slot first — the enumeration order is part of
   the certificate's determinism contract. *)
let operands t idx =
  let n = Array.length t.slots in
  let out = Array.make n [||] in
  let rem = ref idx in
  for s = n - 1 downto 0 do
    let len = Array.length t.slots.(s) in
    out.(s) <- t.slots.(s).(!rem mod len);
    rem := !rem / len
  done;
  out

(* Concatenate the tuple's components into [buf] (component-major slot
   order — the layout of Front.add_kernel/mul_kernel and every fused
   chain).  Allocation-free: the sweep's inner loop. *)
let fill_inputs t idx (buf : float array) =
  let n = Array.length t.slots in
  let rem = ref idx in
  (* slot start offsets *)
  let off = ref (Array.fold_left (fun a s -> a + Array.length s.(0)) 0 t.slots) in
  for s = n - 1 downto 0 do
    let len = Array.length t.slots.(s) in
    let comps = t.slots.(s).(!rem mod len) in
    rem := !rem / len;
    off := !off - Array.length comps;
    Array.blit comps 0 buf !off (Array.length comps)
  done

let num_inputs t = Array.fold_left (fun a s -> a + Array.length s.(0)) 0 t.slots

(* Exponent extrema over every component the space can produce, for the
   footprint bound: [max_exp] is the largest leading exponent, and
   [min_grid] the finest grid any component sits on (exponent - w + 1).
   Zero components are ignored. *)
let exponent_range t =
  let max_e = ref min_int and min_g = ref max_int in
  Array.iter
    (fun slot ->
      Array.iter
        (fun comps ->
          Array.iter
            (fun v ->
              if v <> 0.0 then begin
                let e = Eft.exponent v in
                if e > !max_e then max_e := e;
                if e - t.width + 1 < !min_g then min_g := e - t.width + 1
              end)
            comps)
        slot)
    t.slots;
  if !max_e = min_int then (0, 0) else (!max_e, !min_g)

(* A valid operand tuple outside the enumeration (shrunk
   counterexamples): every slot representable at the width and
   nonoverlapping in sequence. *)
let valid_operands ~width ops =
  Array.for_all
    (fun comps ->
      Array.for_all (fun v -> v = 0.0 || Minifloat.is_representable_p width v) comps
      && Minifloat.is_nonoverlapping_seq_p width comps
      (* once zero, always zero *)
      && (let seen_zero = ref false and ok = ref true in
          Array.iter
            (fun v ->
              if v = 0.0 then seen_zero := true else if !seen_zero then ok := false)
            comps;
          !ok))
    ops
