(** Exhaustive operand spaces: the cartesian product of per-slot lists
    of every valid width-w expansion inside an exponent budget.  See
    space.ml and DESIGN.md s12 for the symmetry quotients (anchoring,
    sign) that keep the product finite without losing generality. *)

type t = {
  name : string;
  width : int;
  slots : float array array array;  (** slot -> choice -> components *)
  total : int;  (** product of slot lengths *)
}

type shape =
  | Anchored  (** leading component positive with exponent pinned to 0 *)
  | Windowed of int
      (** leading component of either sign with exponent in
          [-window, window] relative to the anchor *)

val expansions : width:int -> terms:int -> gap:int -> shape -> float array array
(** Every valid width-w expansion of [terms] components under the
    shape: the all-zero operand, then each choice of leading component,
    extended by tails [0 .. gap-1] binades below the predecessor's
    half-ulp nonoverlap limit (zero tails truncate the operand).
    Deterministic order. *)

val make : name:string -> width:int -> float array array array -> t

val operands : t -> int -> float array array
(** Decode tuple index -> per-slot operand (aliases into the slot
    tables; treat as read-only). *)

val fill_inputs : t -> int -> float array -> unit
(** Concatenate the tuple's components into a caller buffer of length
    {!num_inputs} (component-major slot order, the layout of
    [Front.add_kernel]/[mul_kernel] and the fused chains).
    Allocation-free. *)

val num_inputs : t -> int

val exponent_range : t -> int * int
(** [(max_exp, min_grid)] over every nonzero component the space can
    produce — the raw material of the sweep's footprint bound. *)

val valid_operands : width:int -> float array array -> bool
(** Membership test for tuples outside the enumeration (shrunk
    counterexamples): each slot width-representable, nonoverlapping in
    sequence, and zero-truncated. *)
