(** Constraint-circuit lowering of IR wire programs.

    [of_ir] compiles an {!Fpan_ir.Ir.t} — and hence, via
    [Fpan_ir.Front], any [Fpan.Network] or fused kernel chain — into a
    flat straight-line list of rounded primitive operations over a
    register file, plus one exactness {e constraint} per EFT gate
    (TwoSum/FastTwoSum: [s + e = a + b]; TwoProd: [p + e = a * b]).
    Evaluated with a reduced-width rounding ({!Gpu32.Minifloat}), the
    circuit is the network as a width-w machine executes it; the
    constraints are the paper's per-op obligations, checkable exactly
    in double while the operand space's bit footprint stays below 53
    bits (enforced by {!Space}). *)

type prim =
  | Padd of int * int
  | Psub of int * int
  | Pmul of int * int
  | Pfma of int * int * int
      (** rounded fused multiply-add; exact inner product needs
          [2 * width <= 53] *)
  | Pneg of int  (** exact — round-to-nearest-even is odd-symmetric *)
  | Pconst of float

type node = { dst : int; prim : prim }

type eft_kind = Ts | Fts | Tp

type eft = { gate : int; kind : eft_kind; a : int; b : int; s : int; e : int }
(** One exactness obligation: operand and result registers of an EFT
    gate; [gate] is the index in the source IR. *)

type t = {
  ir : Fpan_ir.Ir.t;
  nodes : node array;
  efts : eft array;
  input_regs : int array;
  output_regs : int array;
  num_regs : int;
}

val of_ir : Fpan_ir.Ir.t -> t

val make_regs : t -> float array
(** Scratch register file for {!eval} (reuse across tuples). *)

val eval : t -> round:(float -> float) -> regs:float array -> float array -> unit
(** Bind inputs, execute every node in order with each primitive
    rounded through [round]. *)

val outputs : t -> regs:float array -> float array
(** Read the output registers after {!eval}. *)

type verdict = Holds | Violated | Skipped

val check_eft : regs:float array -> representable:(float -> bool) -> eft -> verdict
(** Check one constraint against the evaluated registers.  [Skipped]
    covers the carve-outs the paper itself makes: a non-finite
    intermediate (overflow, full formats only) or a TwoProd whose true
    error is not representable at the width (Section 4.4 underflow
    saturation, decided by [representable]). *)

val n_efts : t -> int
val eft_kind : t -> int -> eft_kind
val ir_gate : t -> int -> int
val kind_name : eft_kind -> string
val size : t -> int
val pp : Format.formatter -> t -> unit
