(* Constraint-circuit lowering of IR wire programs.

   A circuit makes the FPAN's floating-point structure fully explicit:
   every EFT gate of the source program is expanded into its
   branch-free constituent operations (the 6-op TwoSum, the 3-op
   FastTwoSum, the mul+fma TwoProd) over a flat register file, and
   every EFT gate contributes one *constraint* — the exactness
   obligation s + e = a + b (resp. p + e = a * b) that the paper's
   correctness argument rests on.  Evaluating the circuit with a
   reduced-width rounding and checking every constraint over an
   exhaustively enumerated operand space is what turns "no
   counterexample found" into "no counterexample exists at width w".

   This is the same shape as the branch-free float gadgets of the
   zkp circom labs (ROADMAP item 5): a straight-line list of rounded
   primitive ops plus a list of equations the honest execution must
   satisfy — except our "prover" is an exhaustive sweep rather than a
   SAT/SMT backend, so the certificate is a counted enumeration.

   Exactness checks are performed in double arithmetic, which is
   itself exact as long as the operand space's bit footprint stays
   below 53 bits (lib/verify/space.ml computes and enforces the
   footprint; DESIGN.md s12 spells out the argument). *)

type prim =
  | Padd of int * int  (* regs *)
  | Psub of int * int
  | Pmul of int * int
  | Pfma of int * int * int  (* round (fma a b c) — used only by TwoProd lowering *)
  | Pneg of int  (* exact: RNE is odd-symmetric *)
  | Pconst of float

type node = { dst : int; prim : prim }

type eft_kind = Ts | Fts | Tp

(* One exactness obligation: registers holding the operands and the
   (sum, error) results of an EFT gate of the source program. *)
type eft = { gate : int; kind : eft_kind; a : int; b : int; s : int; e : int }

type t = {
  ir : Fpan_ir.Ir.t;
  nodes : node array;
  efts : eft array;
  input_regs : int array;  (* register of program input i (= i) *)
  output_regs : int array;
  num_regs : int;
}

let of_ir (ir : Fpan_ir.Ir.t) : t =
  let nodes = ref [] in
  let efts = ref [] in
  let n_inputs = ir.Fpan_ir.Ir.num_inputs in
  let next = ref n_inputs in
  let fresh prim =
    let r = !next in
    incr next;
    nodes := { dst = r; prim } :: !nodes;
    r
  in
  (* register holding port k of IR gate g *)
  let ports = Array.make (Array.length ir.Fpan_ir.Ir.gates) (0, 0) in
  let reg_of = function
    | Fpan_ir.Ir.In i -> i
    | Fpan_ir.Ir.Res (g, k) ->
        let p0, p1 = ports.(g) in
        if k = 0 then p0 else p1
  in
  Array.iteri
    (fun gi gate ->
      match gate with
      | Fpan_ir.Ir.Two_sum (a, b) ->
          let ra = reg_of a and rb = reg_of b in
          let s = fresh (Padd (ra, rb)) in
          let x_eff = fresh (Psub (s, rb)) in
          let y_eff = fresh (Psub (s, x_eff)) in
          let dx = fresh (Psub (ra, x_eff)) in
          let dy = fresh (Psub (rb, y_eff)) in
          let e = fresh (Padd (dx, dy)) in
          efts := { gate = gi; kind = Ts; a = ra; b = rb; s; e } :: !efts;
          ports.(gi) <- (s, e)
      | Fpan_ir.Ir.Fast_two_sum (a, b) ->
          let ra = reg_of a and rb = reg_of b in
          let s = fresh (Padd (ra, rb)) in
          let y_eff = fresh (Psub (s, ra)) in
          let e = fresh (Psub (rb, y_eff)) in
          efts := { gate = gi; kind = Fts; a = ra; b = rb; s; e } :: !efts;
          ports.(gi) <- (s, e)
      | Fpan_ir.Ir.Two_prod (a, b) ->
          let ra = reg_of a and rb = reg_of b in
          let p = fresh (Pmul (ra, rb)) in
          let np = fresh (Pneg p) in
          let e = fresh (Pfma (ra, rb, np)) in
          efts := { gate = gi; kind = Tp; a = ra; b = rb; s = p; e } :: !efts;
          ports.(gi) <- (p, e)
      | Fpan_ir.Ir.Add (a, b) ->
          let r = fresh (Padd (reg_of a, reg_of b)) in
          ports.(gi) <- (r, r)
      | Fpan_ir.Ir.Mul (a, b) ->
          let r = fresh (Pmul (reg_of a, reg_of b)) in
          ports.(gi) <- (r, r)
      | Fpan_ir.Ir.Neg a ->
          let r = fresh (Pneg (reg_of a)) in
          ports.(gi) <- (r, r)
      | Fpan_ir.Ir.Const c ->
          let r = fresh (Pconst c) in
          ports.(gi) <- (r, r))
    ir.Fpan_ir.Ir.gates;
  {
    ir;
    nodes = Array.of_list (List.rev !nodes);
    efts = Array.of_list (List.rev !efts);
    input_regs = Array.init n_inputs (fun i -> i);
    output_regs = Array.map reg_of ir.Fpan_ir.Ir.outputs;
    num_regs = !next;
  }

let make_regs c = Array.make c.num_regs 0.0

(* Evaluate the circuit: inputs into registers 0..n-1, then every node
   in order, each primitive rounded through [round].  [regs] is caller
   scratch (reused across the millions of tuples of a sweep). *)
let eval c ~round ~(regs : float array) (inputs : float array) =
  Array.blit inputs 0 regs 0 (Array.length inputs);
  Array.iter
    (fun { dst; prim } ->
      regs.(dst) <-
        (match prim with
        | Padd (a, b) -> round (regs.(a) +. regs.(b))
        | Psub (a, b) -> round (regs.(a) -. regs.(b))
        | Pmul (a, b) -> round (regs.(a) *. regs.(b))
        | Pfma (a, b, x) -> round (Float.fma regs.(a) regs.(b) regs.(x))
        | Pneg a -> -.regs.(a)
        | Pconst v -> round v))
    c.nodes;
  ()

let outputs c ~(regs : float array) = Array.map (fun r -> regs.(r)) c.output_regs

(* Constraint verdicts.  [Skipped] marks the carve-outs the paper
   itself makes: an intermediate overflowed to infinity (full formats
   only; the precision-only rounding never overflows), or a TwoProd
   whose true error term is not representable at the width (the
   Section 4.4 underflow saturation).  [representable] decides the
   latter — pass the sweep's rounding. *)
type verdict = Holds | Violated | Skipped

let check_eft ~(regs : float array) ~(representable : float -> bool) (k : eft) : verdict =
  let a = regs.(k.a) and b = regs.(k.b) and s = regs.(k.s) and e = regs.(k.e) in
  if
    not
      (Float.is_finite a && Float.is_finite b && Float.is_finite s && Float.is_finite e)
  then Skipped
  else begin
    match k.kind with
    | Ts | Fts ->
        (* s + e = a + b, all four exactly representable in double and
           the sums exact under the footprint bound *)
        if s +. e = a +. b then Holds else Violated
    | Tp ->
        (* p + e = a * b; skip when the true error cannot be
           represented at the width at all (underflow saturation) *)
        let true_err = Float.fma a b (-.s) in
        if not (representable true_err) then Skipped
        else if s +. e = a *. b then Holds
        else Violated
  end

let n_efts c = Array.length c.efts
let eft_kind c i = c.efts.(i).kind
let ir_gate c i = c.efts.(i).gate

let kind_name = function Ts -> "two_sum" | Fts -> "fast_two_sum" | Tp -> "two_prod"

let size c = Array.length c.nodes

let pp ppf c =
  Format.fprintf ppf "@[<v>circuit %s: %d inputs, %d ops, %d constraints@," c.ir.Fpan_ir.Ir.name
    (Array.length c.input_regs) (Array.length c.nodes) (Array.length c.efts);
  Array.iter
    (fun { dst; prim } ->
      (match prim with
      | Padd (a, b) -> Format.fprintf ppf "  r%-3d = rnd(r%d + r%d)" dst a b
      | Psub (a, b) -> Format.fprintf ppf "  r%-3d = rnd(r%d - r%d)" dst a b
      | Pmul (a, b) -> Format.fprintf ppf "  r%-3d = rnd(r%d * r%d)" dst a b
      | Pfma (a, b, x) -> Format.fprintf ppf "  r%-3d = rnd(fma(r%d, r%d, r%d))" dst a b x
      | Pneg a -> Format.fprintf ppf "  r%-3d = -r%d" dst a
      | Pconst v -> Format.fprintf ppf "  r%-3d = %h" dst v);
      Format.fprintf ppf "@,")
    c.nodes;
  Array.iter
    (fun k ->
      Format.fprintf ppf "  assert %s: r%d + r%d = r%d %s r%d@," (kind_name k.kind) k.s k.e k.a
        (match k.kind with Tp -> "*" | _ -> "+")
        k.b)
    c.efts;
  Format.fprintf ppf "outputs:";
  Array.iter (fun r -> Format.fprintf ppf " r%d" r) c.output_regs;
  Format.fprintf ppf "@]"
