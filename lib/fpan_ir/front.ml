(* Front end: derive IR programs from the FPAN networks, gate-for-gate.

   [inline_network] replays a network's wire discipline symbolically:
   each wire holds the IR value last written to it; an [Add] gate writes
   the sum to its top wire and *kills* the bottom wire (the interpreter
   zeroes it) -- a killed wire read later materializes a [Const 0.0]
   gate, so the program still computes exactly what [Fpan.Interp.run]
   would.  [inline_mul_expand] mirrors [Fpan.Networks.mul_expand]'s
   push order symbolically, emitting TwoProd gates for orders <= n-2
   and plain Mul gates for the last order. *)

let inline_network b (net : Fpan.Network.t) (args : Ir.value array) : Ir.value array =
  let open Fpan.Network in
  if Array.length args <> Array.length net.inputs then
    invalid_arg
      (Printf.sprintf "Fpan_ir.Front.inline_network: %s wants %d args, got %d" net.name
         (Array.length net.inputs) (Array.length args));
  let wire : Ir.value option array = Array.make net.num_wires None in
  Array.iteri (fun i w -> wire.(w) <- Some args.(i)) net.inputs;
  let read w =
    match wire.(w) with
    | Some v -> v
    | None ->
        (* wire never written (or killed by an Add): reads as 0.0 *)
        let g = Ir.B.push b (Ir.Const 0.0) in
        let v = Ir.Res (g, 0) in
        wire.(w) <- Some v;
        v
  in
  Array.iter
    (fun g ->
      let x = read g.top and y = read g.bot in
      match g.kind with
      | Add ->
          let i = Ir.B.push b (Ir.Add (x, y)) in
          wire.(g.top) <- Some (Ir.Res (i, 0));
          wire.(g.bot) <- None
      | Two_sum ->
          let i = Ir.B.push b (Ir.Two_sum (x, y)) in
          wire.(g.top) <- Some (Ir.Res (i, 0));
          wire.(g.bot) <- Some (Ir.Res (i, 1))
      | Fast_two_sum ->
          let i = Ir.B.push b (Ir.Fast_two_sum (x, y)) in
          wire.(g.top) <- Some (Ir.Res (i, 0));
          wire.(g.bot) <- Some (Ir.Res (i, 1)))
    net.gates;
  Array.map read net.outputs

let of_network (net : Fpan.Network.t) : Ir.t =
  let n = Array.length net.Fpan.Network.inputs in
  let b = Ir.B.create ~num_inputs:n in
  let outs = inline_network b net (Array.init n (fun i -> Ir.In i)) in
  Ir.B.finish b ~name:net.Fpan.Network.name ~outputs:outs

(* Symbolic replay of [Fpan.Networks.mul_expand]: the k-th element of
   the result is the IR value feeding the k-th input wire of the mulN
   network.  Products are pushed in ascending order (i ascending within
   each order o = i+j), each order followed by the error terms of the
   TwoProds one order below; the last order (o = n-1) uses plain
   products.

   One deliberate deviation: [mul_expand] flushes each order's error
   terms in descending i, while the scalar kernels (mf3.ml/mf4.ml) --
   and hence the generated planar kernels -- consume them ascending.
   The two layouts are bitwise-equal: the error wires only ever feed
   Add and TwoSum gates, plain [+.] is commutative on these values,
   and the 6-op TwoSum's outputs (sum, exact error) are symmetric in
   its operands.  We follow the scalar kernels' ascending order. *)
let inline_mul_expand b n (x : Ir.value array) (y : Ir.value array) : Ir.value array =
  let out = ref [] in
  let push v = out := v :: !out in
  let g00 = Ir.B.push b (Ir.Two_prod (x.(0), y.(0))) in
  push (Ir.Res (g00, 0));
  let errs = ref [ [ Ir.Res (g00, 1) ] ] in
  for o = 1 to n - 1 do
    let new_errs = ref [] in
    for i = 0 to o do
      let j = o - i in
      if i < n && j < n then
        if o <= n - 2 then begin
          let g = Ir.B.push b (Ir.Two_prod (x.(i), y.(j))) in
          push (Ir.Res (g, 0));
          new_errs := Ir.Res (g, 1) :: !new_errs
        end
        else begin
          let g = Ir.B.push b (Ir.Mul (x.(i), y.(j))) in
          push (Ir.Res (g, 0))
        end
    done;
    (match !errs with
    | prev :: rest ->
        List.iter push prev;
        errs := rest
    | [] -> ());
    errs := !errs @ [ List.rev !new_errs ]
  done;
  Array.of_list (List.rev !out)

(* --- kernel-shaped programs ------------------------------------------ *)
(* Inputs are laid out [x0..x_{t-1}; y0..y_{t-1}] (component-major by
   operand), matching how the planar kernels bind loads -- not the
   interleaved wire order of the add networks. *)

let interleave t x y =
  Array.init (2 * t) (fun k -> if k mod 2 = 0 then x.(k / 2) else y.(k / 2))

let add_kernel t : Ir.t =
  let b = Ir.B.create ~num_inputs:(2 * t) in
  let x = Array.init t (fun i -> Ir.In i) and y = Array.init t (fun i -> Ir.In (t + i)) in
  let outs = inline_network b (Fpan.Networks.add t) (interleave t x y) in
  Ir.B.finish b ~name:(Printf.sprintf "add%d" t) ~outputs:outs

(* a - b as the add network on (a, -b): exactly the scalar kernels'
   [sub a b = add_terms a0 a1 (-.b0) (-.b1)]. *)
let sub_kernel t : Ir.t =
  let b = Ir.B.create ~num_inputs:(2 * t) in
  let x = Array.init t (fun i -> Ir.In i) in
  let y =
    Array.init t (fun i ->
        let g = Ir.B.push b (Ir.Neg (Ir.In (t + i))) in
        Ir.Res (g, 0))
  in
  let outs = inline_network b (Fpan.Networks.add t) (interleave t x y) in
  Ir.B.finish b ~name:(Printf.sprintf "sub%d" t) ~outputs:outs

let mul_kernel t : Ir.t =
  let b = Ir.B.create ~num_inputs:(2 * t) in
  let x = Array.init t (fun i -> Ir.In i) and y = Array.init t (fun i -> Ir.In (t + i)) in
  let wires = inline_mul_expand b t x y in
  let outs = inline_network b (Fpan.Networks.mul t) wires in
  Ir.B.finish b ~name:(Printf.sprintf "mul%d" t) ~outputs:outs
