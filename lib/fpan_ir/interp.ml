(* Reference interpreters for IR programs.

   [run] evaluates a program on scalar floats through [Eft], so it is
   bitwise the semantics the codegen'd kernels must reproduce.
   [run_planes] stages a program over [floatarray] planes without
   codegen: one loop over the element range, inputs bound per slot to a
   plane load (optionally negated), a loop-invariant scalar, or a
   loop-carried accumulator.  It exists for two reasons: it is the
   interpreter half of the staging trade-off documented in DESIGN.md
   s10, and it gives the tests/tool an executable oracle for fused
   programs that does not go through the generated kernels. *)

module F = Float.Array

let run (p : Ir.t) (inputs : float array) : float array =
  if Array.length inputs <> p.Ir.num_inputs then
    invalid_arg
      (Printf.sprintf "Fpan_ir.Interp.run: %s wants %d inputs, got %d" p.Ir.name p.Ir.num_inputs
         (Array.length inputs));
  let vals = Array.make (2 * max 1 (Array.length p.Ir.gates)) 0.0 in
  let value = function Ir.In i -> inputs.(i) | Ir.Res (g, k) -> vals.((2 * g) + k) in
  Array.iteri
    (fun i g ->
      match g with
      | Ir.Two_sum (a, b) ->
          let s, e = Eft.two_sum (value a) (value b) in
          vals.(2 * i) <- s;
          vals.((2 * i) + 1) <- e
      | Ir.Fast_two_sum (a, b) ->
          let s, e = Eft.fast_two_sum (value a) (value b) in
          vals.(2 * i) <- s;
          vals.((2 * i) + 1) <- e
      | Ir.Two_prod (a, b) ->
          let s, e = Eft.two_prod (value a) (value b) in
          vals.(2 * i) <- s;
          vals.((2 * i) + 1) <- e
      | Ir.Add (a, b) -> vals.(2 * i) <- value a +. value b
      | Ir.Mul (a, b) -> vals.(2 * i) <- value a *. value b
      | Ir.Neg a -> vals.(2 * i) <- -.value a
      | Ir.Const c -> vals.(2 * i) <- c)
    p.Ir.gates;
  Array.map value p.Ir.outputs

(* Reduced-precision program semantics: [run] with every primitive
   floating-point operation rounded through [round] — the EFT gates
   become their branch-free multi-op circuits (6-op TwoSum, 3-op
   FastTwoSum, mul+fma TwoProd) with each constituent op rounded.
   This is the independent width-w oracle the verification backend's
   circuit evaluator is checked against bitwise; it is sound as a
   width-w reference only while each double step is exact (TwoProd
   additionally needs 2w <= 53 so the double product is exact). *)
let run_rounded ~round (p : Ir.t) (inputs : float array) : float array =
  if Array.length inputs <> p.Ir.num_inputs then
    invalid_arg
      (Printf.sprintf "Fpan_ir.Interp.run_rounded: %s wants %d inputs, got %d" p.Ir.name
         p.Ir.num_inputs (Array.length inputs));
  let vals = Array.make (2 * max 1 (Array.length p.Ir.gates)) 0.0 in
  let value = function Ir.In i -> inputs.(i) | Ir.Res (g, k) -> vals.((2 * g) + k) in
  Array.iteri
    (fun i g ->
      match g with
      | Ir.Two_sum (a, b) ->
          let x = value a and y = value b in
          let s = round (x +. y) in
          let x_eff = round (s -. y) in
          let y_eff = round (s -. x_eff) in
          let dx = round (x -. x_eff) in
          let dy = round (y -. y_eff) in
          vals.(2 * i) <- s;
          vals.((2 * i) + 1) <- round (dx +. dy)
      | Ir.Fast_two_sum (a, b) ->
          let x = value a and y = value b in
          let s = round (x +. y) in
          let y_eff = round (s -. x) in
          vals.(2 * i) <- s;
          vals.((2 * i) + 1) <- round (y -. y_eff)
      | Ir.Two_prod (a, b) ->
          let x = value a and y = value b in
          let pr = round (x *. y) in
          vals.(2 * i) <- pr;
          (* fma's x*y - pr is exact in double while 2w <= 53 *)
          vals.((2 * i) + 1) <- round (Float.fma x y (-.pr))
      | Ir.Add (a, b) -> vals.(2 * i) <- round (value a +. value b)
      | Ir.Mul (a, b) -> vals.(2 * i) <- round (value a *. value b)
      | Ir.Neg a -> vals.(2 * i) <- -.value a
      | Ir.Const c -> vals.(2 * i) <- round c)
    p.Ir.gates;
  Array.map value p.Ir.outputs

(* Per-slot input binding for [run_planes]. *)
type src =
  | Plane of F.t * int  (** plane, offset: slot reads [plane.(off + i)] *)
  | Neg_plane of F.t * int  (** negated plane load (the sub kernels) *)
  | Scalar of float  (** loop-invariant scalar (alpha components) *)
  | Acc of float ref  (** loop-carried accumulator, read each iteration *)

(* Per-output sink. *)
type dst =
  | Store of F.t * int  (** write [plane.(off + i)] *)
  | Update of float ref  (** accumulator update, after all reads *)
  | Discard

let run_planes (p : Ir.t) ~lo ~hi ~(args : src array) ~(outs : dst array) : unit =
  if Array.length args <> p.Ir.num_inputs then
    invalid_arg (Printf.sprintf "Fpan_ir.Interp.run_planes: %s: bad arg count" p.Ir.name);
  if Array.length outs <> Array.length p.Ir.outputs then
    invalid_arg (Printf.sprintf "Fpan_ir.Interp.run_planes: %s: bad out count" p.Ir.name);
  let inp = Array.make (Array.length args) 0.0 in
  for i = lo to hi - 1 do
    Array.iteri
      (fun k s ->
        inp.(k) <-
          (match s with
          | Plane (a, off) -> F.get a (off + i)
          | Neg_plane (a, off) -> -.F.get a (off + i)
          | Scalar v -> v
          | Acc r -> !r))
      args;
    let res = run p inp in
    (* all outputs are computed before any sink fires, so an [Update]
       feeding an [Acc] of the same ref is well-defined *)
    Array.iteri
      (fun k d ->
        match d with
        | Store (a, off) -> F.set a (off + i) res.(k)
        | Update r -> r := res.(k)
        | Discard -> ())
      outs
  done
