(* Staging by codegen: emit IR programs as straight-line OCaml float
   code, and assemble lib/multifloat/batch.ml from them.

   [emit_program] is the per-program emitter; it reproduces the naming
   scheme of the hand-expanded kernels (one monotone counter per
   program, letter by gate kind: TwoSum -> s/t/e, FastTwoSum -> s/e,
   TwoProd -> p/e, Mul -> m, Add -> a, Neg -> n, Const -> c) so the
   generated file diffs cleanly against history.  [batch_ml] renders
   the whole file: fixed templates for the module plumbing, emitted
   programs for every kernel loop body.  The drift rule in
   lib/multifloat/dune diffs the committed batch.ml against a fresh
   run of gen/gen_batch.exe on every `dune runtest`. *)

let spf = Printf.sprintf
let bpf = Printf.bprintf

let emit_program buf ~indent ~prefix (p : Ir.t) ~(args : string array) : string array =
  if Array.length args <> p.Ir.num_inputs then
    invalid_arg
      (spf "Fpan_ir.Codegen.emit_program: %s wants %d args, got %d" p.Ir.name p.Ir.num_inputs
         (Array.length args));
  let names = Array.make (Array.length p.Ir.gates) [||] in
  let k = ref 0 in
  let fresh letter =
    incr k;
    spf "%s%s%d" prefix letter !k
  in
  let v = function Ir.In i -> args.(i) | Ir.Res (g, port) -> names.(g).(port) in
  let line l =
    Buffer.add_string buf indent;
    Buffer.add_string buf l;
    Buffer.add_char buf '\n'
  in
  Array.iteri
    (fun i g ->
      match g with
      | Ir.Two_sum (a, b) ->
          let a = v a and b = v b in
          let s = fresh "s" in
          line (spf "let %s = %s +. %s in" s a b);
          let t = fresh "t" in
          line (spf "let %s = %s -. %s in" t s b);
          let e = fresh "e" in
          line (spf "let %s = (%s -. %s) +. (%s -. (%s -. %s)) in" e a t b s t);
          names.(i) <- [| s; e |]
      | Ir.Fast_two_sum (a, b) ->
          let a = v a and b = v b in
          let s = fresh "s" in
          line (spf "let %s = %s +. %s in" s a b);
          let e = fresh "e" in
          line (spf "let %s = %s -. (%s -. %s) in" e b s a);
          names.(i) <- [| s; e |]
      | Ir.Two_prod (a, b) ->
          let a = v a and b = v b in
          let pr = fresh "p" in
          line (spf "let %s = %s *. %s in" pr a b);
          let e = fresh "e" in
          line (spf "let %s = Float.fma %s %s (-. %s) in" e a b pr);
          names.(i) <- [| pr; e |]
      | Ir.Add (a, b) ->
          let a = v a and b = v b in
          let n = fresh "a" in
          line (spf "let %s = %s +. %s in" n a b);
          names.(i) <- [| n |]
      | Ir.Mul (a, b) ->
          let a = v a and b = v b in
          let n = fresh "m" in
          line (spf "let %s = %s *. %s in" n a b);
          names.(i) <- [| n |]
      | Ir.Neg a ->
          let a = v a in
          let n = fresh "n" in
          line (spf "let %s = -. %s in" n a);
          names.(i) <- [| n |]
      | Ir.Const c ->
          let n = fresh "c" in
          line (spf "let %s = %h in" n c);
          names.(i) <- [| n |])
    p.Ir.gates;
  Array.map v p.Ir.outputs

(* --- batch.ml assembly ----------------------------------------------- *)

type tier = { t : int; mf : string }

let tiers = [ { t = 2; mf = "Mf2" }; { t = 3; mf = "Mf3" }; { t = 4; mf = "Mf4" } ]

let seq t f = List.init t f
let cat sep t f = String.concat sep (seq t f)

(* "let a0 = x.c0 and a1 = x.c1 and b0 = y.c0 ... in" *)
let hoist tr srcs =
  "let "
  ^ String.concat " and "
      (List.concat_map (fun (l, r) -> seq tr.t (fun k -> spf "%s%d = %s.c%d" l k r k)) srcs)
  ^ " in"

let loads buf tr ~local ~plane ~idx ~neg =
  for k = 0 to tr.t - 1 do
    if neg then bpf buf "      let %s%d = -.(F.unsafe_get %s%d %s) in\n" local k plane k idx
    else bpf buf "      let %s%d = F.unsafe_get %s%d %s in\n" local k plane k idx
  done

let names local tr = Array.init tr.t (fun k -> spf "%s%d" local k)
let acc_names tr = Array.init tr.t (fun k -> spf "!acc%d" k)

(* alpha components hoist: "let al = Mf2.components alpha in let al0 = ..." *)
let scalar_hoist buf tr ~arr ~local ~expr =
  bpf buf "    let %s = %s.components %s in\n" arr tr.mf expr;
  bpf buf "    let %s in\n" (cat " and " tr.t (fun k -> spf "%s%d = %s.(%d)" local k arr k))

let acc_init buf tr ~from =
  (match from with
  | Some arr -> bpf buf "    %s\n" (cat " " tr.t (fun k -> spf "let acc%d = ref %s.(%d) in" k arr k))
  | None -> bpf buf "    %s\n" (cat " " tr.t (fun k -> spf "let acc%d = ref 0.0 in" k)))

let stores buf tr ~plane ~idx (outs : string array) =
  for k = 0 to tr.t - 1 do
    bpf buf "      F.unsafe_set %s%d %s %s;\n" plane k idx outs.(k)
  done

let acc_stores buf tr (outs : string array) =
  for k = 0 to tr.t - 1 do
    bpf buf "      acc%d := %s;\n" k outs.(k)
  done

let of_accs tr = spf "%s.of_components [| %s |]" tr.mf (cat "; " tr.t (fun k -> spf "!acc%d" k))

(* add / sub / mul: dst-writing elementwise kernels *)
let emit_ew buf tr ~name ~prog ~neg_y =
  bpf buf "  let %s ~dst a b =\n" name;
  bpf buf "    check2 \"Batch.%s\" a b;\n" name;
  bpf buf "    check2 \"Batch.%s\" a dst;\n" name;
  bpf buf "    %s\n" (hoist tr [ ("a", "a"); ("b", "b"); ("d", "dst") ]);
  bpf buf "    for i = 0 to a.n - 1 do\n";
  loads buf tr ~local:"x" ~plane:"a" ~idx:"i" ~neg:false;
  loads buf tr ~local:"y" ~plane:"b" ~idx:"i" ~neg:neg_y;
  let outs =
    emit_program buf ~indent:"      " ~prefix:"v" prog
      ~args:(Array.append (names "x" tr) (names "y" tr))
  in
  stores buf tr ~plane:"d" ~idx:"i" outs;
  bpf buf "      ()\n    done\n"

let emit_axpy buf tr =
  bpf buf "  let axpy ~lo ~hi ~alpha ~x ~y =\n";
  bpf buf "    check2 \"Batch.axpy\" x y;\n";
  bpf buf "    if lo < 0 || hi > x.n || lo > hi then invalid_arg \"Batch.axpy\";\n";
  scalar_hoist buf tr ~arr:"al" ~local:"al" ~expr:"alpha";
  bpf buf "    %s\n" (hoist tr [ ("a", "x"); ("b", "y") ]);
  bpf buf "    for i = lo to hi - 1 do\n";
  loads buf tr ~local:"x" ~plane:"a" ~idx:"i" ~neg:false;
  loads buf tr ~local:"y" ~plane:"b" ~idx:"i" ~neg:false;
  let p =
    emit_program buf ~indent:"      " ~prefix:"p" (Front.mul_kernel tr.t)
      ~args:(Array.append (names "al" tr) (names "x" tr))
  in
  let q =
    emit_program buf ~indent:"      " ~prefix:"q" (Front.add_kernel tr.t)
      ~args:(Array.append p (names "y" tr))
  in
  stores buf tr ~plane:"b" ~idx:"i" q;
  bpf buf "      ()\n    done\n"

let emit_madd buf tr =
  bpf buf "  let madd ~alpha ~x ~xoff ~y ~yoff ~len =\n";
  bpf buf "    check_range \"Batch.madd\" x ~off:xoff ~len;\n";
  bpf buf "    check_range \"Batch.madd\" y ~off:yoff ~len;\n";
  scalar_hoist buf tr ~arr:"al" ~local:"al" ~expr:"alpha";
  bpf buf "    %s\n" (hoist tr [ ("a", "x"); ("b", "y") ]);
  bpf buf "    for i = 0 to len - 1 do\n";
  loads buf tr ~local:"x" ~plane:"a" ~idx:"(xoff + i)" ~neg:false;
  loads buf tr ~local:"y" ~plane:"b" ~idx:"(yoff + i)" ~neg:false;
  let p =
    emit_program buf ~indent:"      " ~prefix:"p" (Front.mul_kernel tr.t)
      ~args:(Array.append (names "al" tr) (names "x" tr))
  in
  let q =
    emit_program buf ~indent:"      " ~prefix:"q" (Front.add_kernel tr.t)
      ~args:(Array.append (names "y" tr) p)
  in
  stores buf tr ~plane:"b" ~idx:"(yoff + i)" q;
  bpf buf "      ()\n    done\n"

(* shared dot loop: p = x*y products, q = acc + p; updates acc refs *)
let emit_dot_loop buf tr =
  bpf buf "    for i = 0 to len - 1 do\n";
  loads buf tr ~local:"x" ~plane:"a" ~idx:"(xoff + i)" ~neg:false;
  loads buf tr ~local:"y" ~plane:"b" ~idx:"(yoff + i)" ~neg:false;
  let p =
    emit_program buf ~indent:"      " ~prefix:"p" (Front.mul_kernel tr.t)
      ~args:(Array.append (names "x" tr) (names "y" tr))
  in
  let q =
    emit_program buf ~indent:"      " ~prefix:"q" (Front.add_kernel tr.t)
      ~args:(Array.append (acc_names tr) p)
  in
  acc_stores buf tr q;
  bpf buf "      ()\n    done"

let emit_dot buf tr =
  bpf buf "  let dot ~init ~x ~xoff ~y ~yoff ~len =\n";
  bpf buf "    check_range \"Batch.dot\" x ~off:xoff ~len;\n";
  bpf buf "    check_range \"Batch.dot\" y ~off:yoff ~len;\n";
  bpf buf "    let ic = %s.components init in\n" tr.mf;
  acc_init buf tr ~from:(Some "ic");
  bpf buf "    %s\n" (hoist tr [ ("a", "x"); ("b", "y") ]);
  emit_dot_loop buf tr;
  bpf buf ";\n    %s\n" (of_accs tr)

let emit_sum buf tr =
  bpf buf "  let sum ~init ~x ~xoff ~len =\n";
  bpf buf "    check_range \"Batch.sum\" x ~off:xoff ~len;\n";
  bpf buf "    let ic = %s.components init in\n" tr.mf;
  acc_init buf tr ~from:(Some "ic");
  bpf buf "    %s\n" (hoist tr [ ("a", "x") ]);
  bpf buf "    for i = 0 to len - 1 do\n";
  loads buf tr ~local:"x" ~plane:"a" ~idx:"(xoff + i)" ~neg:false;
  let outs =
    emit_program buf ~indent:"      " ~prefix:"v" (Front.add_kernel tr.t)
      ~args:(Array.append (acc_names tr) (names "x" tr))
  in
  acc_stores buf tr outs;
  bpf buf "      ()\n    done;\n";
  bpf buf "    %s\n" (of_accs tr)

let emit_dot_sub buf tr =
  bpf buf "  let dot_sub ~b ~x ~xoff ~y ~yoff ~len =\n";
  bpf buf "    check_range \"Batch.dot_sub\" x ~off:xoff ~len;\n";
  bpf buf "    check_range \"Batch.dot_sub\" y ~off:yoff ~len;\n";
  acc_init buf tr ~from:None;
  bpf buf "    %s\n" (hoist tr [ ("a", "x"); ("b", "y") ]);
  emit_dot_loop buf tr;
  bpf buf ";\n";
  bpf buf "    let bc = %s.components b in\n" tr.mf;
  bpf buf "    let %s in\n" (cat " and " tr.t (fun k -> spf "bb%d = bc.(%d)" k k));
  let outs =
    emit_program buf ~indent:"    " ~prefix:"r" (Front.sub_kernel tr.t)
      ~args:(Array.append (names "bb" tr) (acc_names tr))
  in
  bpf buf "    %s.of_components [| %s |]\n" tr.mf (String.concat "; " (Array.to_list outs))

let emit_axpy_dot buf tr =
  bpf buf "  let axpy_dot ~lo ~hi ~alpha ~x ~y ~w ~init =\n";
  bpf buf "    check2 \"Batch.axpy_dot\" x y;\n";
  bpf buf "    check2 \"Batch.axpy_dot\" x w;\n";
  bpf buf "    if lo < 0 || hi > x.n || lo > hi then invalid_arg \"Batch.axpy_dot\";\n";
  scalar_hoist buf tr ~arr:"al" ~local:"al" ~expr:"alpha";
  bpf buf "    let ic = %s.components init in\n" tr.mf;
  acc_init buf tr ~from:(Some "ic");
  bpf buf "    %s\n" (hoist tr [ ("a", "x"); ("b", "y"); ("w", "w") ]);
  bpf buf "    for i = lo to hi - 1 do\n";
  loads buf tr ~local:"x" ~plane:"a" ~idx:"i" ~neg:false;
  loads buf tr ~local:"y" ~plane:"b" ~idx:"i" ~neg:false;
  loads buf tr ~local:"z" ~plane:"w" ~idx:"i" ~neg:false;
  let p =
    emit_program buf ~indent:"      " ~prefix:"p" (Front.mul_kernel tr.t)
      ~args:(Array.append (names "al" tr) (names "x" tr))
  in
  let q =
    emit_program buf ~indent:"      " ~prefix:"q" (Front.add_kernel tr.t)
      ~args:(Array.append p (names "y" tr))
  in
  let r =
    emit_program buf ~indent:"      " ~prefix:"r" (Front.mul_kernel tr.t)
      ~args:(Array.append q (names "z" tr))
  in
  let s =
    emit_program buf ~indent:"      " ~prefix:"s" (Front.add_kernel tr.t)
      ~args:(Array.append (acc_names tr) r)
  in
  stores buf tr ~plane:"b" ~idx:"i" q;
  acc_stores buf tr s;
  bpf buf "      ()\n    done;\n";
  bpf buf "    %s\n" (of_accs tr)

let emit_transpose buf tr =
  bpf buf "  let transpose ~m ~n ~src ~dst =\n";
  bpf buf
    "    check_transpose \"Batch.transpose\" ~m ~n ~src_len:src.n ~dst_len:dst.n (src == dst)";
  for k = 0 to tr.t - 1 do
    bpf buf ";\n    transpose_plane ~m ~n src.c%d dst.c%d" k k
  done;
  bpf buf "\nend\n"

let emit_tier buf tr =
  bpf buf "module %sv = struct\n" tr.mf;
  bpf buf "  type elt = %s.t\n\n" tr.mf;
  bpf buf "  type t = { n : int; %s }\n\n" (cat "; " tr.t (fun k -> spf "c%d : floatarray" k));
  bpf buf "  let terms = %d\n" tr.t;
  bpf buf "  let length v = v.n\n\n";
  bpf buf "  let create n = { n; %s }\n" (cat "; " tr.t (fun k -> spf "c%d = F.make n 0.0" k));
  bpf buf "  let copy v = { n = v.n; %s }\n\n" (cat "; " tr.t (fun k -> spf "c%d = F.copy v.c%d" k k));
  bpf buf "  let get v i = %s.of_components [| %s |]\n\n" tr.mf
    (cat "; " tr.t (fun k -> spf "F.get v.c%d i" k));
  bpf buf "  let set v i e =\n";
  bpf buf "    let c = %s.components e in\n" tr.mf;
  bpf buf "    %s\n" (cat " " tr.t (fun k -> spf "F.set v.c%d i c.(%d);" k k));
  bpf buf "    ()\n\n";
  bpf buf "  let of_array es =\n";
  bpf buf "    let v = create (Array.length es) in\n";
  bpf buf "    Array.iteri (fun i e -> set v i e) es;\n";
  bpf buf "    v\n\n";
  bpf buf "  let to_array v = Array.init v.n (get v)\n\n";
  bpf buf "  let of_floats fs =\n";
  bpf buf "    let v = create (Array.length fs) in\n";
  bpf buf "    Array.iteri (fun i f -> F.set v.c0 i f) fs;\n";
  bpf buf "    v\n\n";
  bpf buf "  let to_floats v = Array.init v.n (fun i -> F.get v.c0 i)\n\n";
  bpf buf "  let check2 name a b = if a.n <> b.n then invalid_arg name\n\n";
  bpf buf "  let check_range name v ~off ~len =\n";
  bpf buf "    if off < 0 || len < 0 || off + len > v.n then invalid_arg name\n\n";
  emit_ew buf tr ~name:"add" ~prog:(Front.add_kernel tr.t) ~neg_y:false;
  bpf buf "\n";
  emit_ew buf tr ~name:"sub" ~prog:(Front.add_kernel tr.t) ~neg_y:true;
  bpf buf "\n";
  emit_ew buf tr ~name:"mul" ~prog:(Front.mul_kernel tr.t) ~neg_y:false;
  bpf buf "\n";
  bpf buf "  let map ~dst f src =\n";
  bpf buf "    check2 \"Batch.map\" src dst;\n";
  bpf buf "    for i = 0 to src.n - 1 do\n";
  bpf buf "      set dst i (f (get src i))\n";
  bpf buf "    done\n\n";
  bpf buf "  let map2 ~dst f a b =\n";
  bpf buf "    check2 \"Batch.map2\" a b;\n";
  bpf buf "    check2 \"Batch.map2\" a dst;\n";
  bpf buf "    for i = 0 to a.n - 1 do\n";
  bpf buf "      set dst i (f (get a i) (get b i))\n";
  bpf buf "    done\n\n";
  emit_axpy buf tr;
  bpf buf "\n";
  emit_madd buf tr;
  bpf buf "\n";
  emit_dot buf tr;
  bpf buf "\n";
  emit_sum buf tr;
  bpf buf "\n";
  emit_dot_sub buf tr;
  bpf buf "\n";
  emit_axpy_dot buf tr;
  bpf buf "\n";
  emit_transpose buf tr

let header =
  {|(* Planar (structure-of-arrays) MultiFloat vectors: an n-element
   2/3/4-term vector is stored as [terms] parallel unboxed
   [floatarray]s, one per expansion component, instead of an OCaml
   array of boxed component records.

   The batched operations below run the exact branch-free FPAN wire
   sequences of [Mf2]/[Mf3]/[Mf4] element-wise over the planes, with
   every TwoSum/FastTwoSum/TwoProd gate expanded to straight-line
   float code (no tuple returns, no per-element heap allocation; OCaml
   unboxes the local floats and float refs).  Gate order and operand
   order are identical to the scalar kernels, so batched results are
   bitwise equal to the scalar loops -- asserted by test/test_batch.ml.

   This is the OCaml stand-in for the paper's cross-element
   autovectorization (Section 5): branch-freedom makes the element loop
   a fixed dataflow, and the planar layout is what lets that dataflow
   stream through the FPU without pointer chasing -- the same reason the
   paper's AVX-512/NEON lanes want their operands planar.

   GENERATED by lib/fpan_ir/gen/gen_batch.ml: Fpan_ir.Front derives an
   IR program gate-for-gate from each Fpan.Networks network, and
   Fpan_ir.Codegen stages the (fused) programs as the straight-line
   kernels below.  Do not edit this file by hand -- edit the generator
   and run `dune runtest` (whose drift rule diffs this file against a
   fresh regeneration), then `dune promote` to accept the new
   output. *)

module F = Float.Array

(* Plane-level transpose helper shared by every vector size: dst is the
   column-major image of an m*n row-major plane.  Blocked 32x32 so both
   the gathered and scattered side stream through cache; pure float
   loads/stores, no boxing. *)
let transpose_plane ~m ~n src dst =
  let bs = 32 in
  let i0 = ref 0 in
  while !i0 < m do
    let ih = min m (!i0 + bs) in
    let j0 = ref 0 in
    while !j0 < n do
      let jh = min n (!j0 + bs) in
      for i = !i0 to ih - 1 do
        for j = !j0 to jh - 1 do
          F.unsafe_set dst ((j * m) + i) (F.unsafe_get src ((i * n) + j))
        done
      done;
      j0 := jh
    done;
    i0 := ih
  done

let check_transpose name ~m ~n ~src_len ~dst_len same =
  let fail what = invalid_arg (Printf.sprintf "%s: %s" name what) in
  if m < 0 || n < 0 then fail (Printf.sprintf "negative dimensions m=%d n=%d" m n);
  if src_len <> m * n then
    fail (Printf.sprintf "src length %d, want m*n = %d" src_len (m * n));
  if dst_len <> m * n then
    fail (Printf.sprintf "dst length %d, want m*n = %d" dst_len (m * n));
  if same then fail "src and dst alias"

(** Planar vector operations over one MultiFloat size.  The fold and
    update operations fix the accumulation order of the scalar BLAS
    kernels: [axpy] computes [y.(i) <- add (mul alpha x.(i)) y.(i)],
    [madd] computes [y.(yoff+i) <- add y.(yoff+i) (mul alpha
    x.(xoff+i))], and [dot] folds [acc <- add acc (mul x.(xoff+i)
    y.(yoff+i))] in index order starting from [init].  The fused
    operations ([sum], [dot_sub], [axpy_dot]) are staged compositions
    of the same wire programs: one pass over the planes, bitwise equal
    to the unfused op-by-op composition. *)
module type V = sig
  type elt
  (** The scalar MultiFloat element type. *)

  type t
  (** A planar vector of [elt]s. *)

  val terms : int
  val length : t -> int

  val create : int -> t
  (** Zero-filled planar vector. *)

  val copy : t -> t
  val get : t -> int -> elt
  val set : t -> int -> elt -> unit
  val of_array : elt array -> t
  val to_array : t -> elt array

  val of_floats : float array -> t
  (** Lift doubles: component 0 takes the value, the rest are zero. *)

  val to_floats : t -> float array
  (** Leading components. *)

  val add : dst:t -> t -> t -> unit
  (** Elementwise; [dst] may alias either operand. *)

  val sub : dst:t -> t -> t -> unit
  val mul : dst:t -> t -> t -> unit

  val map : dst:t -> (elt -> elt) -> t -> unit
  (** [dst.(i) <- f src.(i)] in index order ([dst] may alias the
      source): scalar-only operations over planar storage, bitwise the
      scalar loop by construction. *)

  val map2 : dst:t -> (elt -> elt -> elt) -> t -> t -> unit

  val axpy : lo:int -> hi:int -> alpha:elt -> x:t -> y:t -> unit
  (** [y.(i) <- add (mul alpha x.(i)) y.(i)] for [lo <= i < hi]. *)

  val madd : alpha:elt -> x:t -> xoff:int -> y:t -> yoff:int -> len:int -> unit
  (** [y.(yoff+i) <- add y.(yoff+i) (mul alpha x.(xoff+i))]: the GEMM
      rank-1 row update, accumulator-first operand order. *)

  val dot : init:elt -> x:t -> xoff:int -> y:t -> yoff:int -> len:int -> elt
  (** Index-order fold [acc <- add acc (mul x.(xoff+i) y.(yoff+i))]. *)

  val sum : init:elt -> x:t -> xoff:int -> len:int -> elt
  (** Index-order fold [acc <- add acc x.(xoff+i)]. *)

  val dot_sub : b:elt -> x:t -> xoff:int -> y:t -> yoff:int -> len:int -> elt
  (** [sub b (dot ~init:zero ~x ~xoff ~y ~yoff ~len)] with the final
      subtraction staged behind the dot accumulator: the GEMV-residual
      row in one pass, no boxed intermediate.  Bitwise the unfused
      composition. *)

  val axpy_dot : lo:int -> hi:int -> alpha:elt -> x:t -> y:t -> w:t -> init:elt -> elt
  (** Fused [axpy] + [dot]: stores [y.(i) <- add (mul alpha x.(i))
      y.(i)] and folds [acc <- add acc (mul y.(i) w.(i))] in the same
      pass over the planes, for [lo <= i < hi]; returns the fold
      started from [init].  Bitwise [axpy] followed by
      [dot ~x:y ~y:w]. *)

  val transpose : m:int -> n:int -> src:t -> dst:t -> unit
  (** [dst.(j*m+i) <- src.(i*n+j)] viewing [src] as an [m*n] row-major
      matrix: the plane-wise matrix transpose (used by the tiled
      runtime engine to pack [B^T] so GEMM columns become contiguous
      dot operands).  [dst] must be a distinct vector of length
      [m*n]. *)
end

(* ------------------------------------------------------------------ *)
(* 1-term vectors: native doubles in a single plane, so the 53-bit row
   of the benchmark tables runs through the same batched kernels.      *)

module Mf1v = struct
  type elt = float

  type t = { n : int; c0 : floatarray }

  let terms = 1
  let length v = v.n
  let create n = { n; c0 = F.make n 0.0 }
  let copy v = { n = v.n; c0 = F.copy v.c0 }
  let get v i = F.get v.c0 i
  let set v i e = F.set v.c0 i e
  let of_array es = { n = Array.length es; c0 = F.init (Array.length es) (Array.get es) }
  let to_array v = Array.init v.n (F.get v.c0)
  let of_floats = of_array
  let to_floats = to_array

  let check2 name a b = if a.n <> b.n then invalid_arg name

  let check_range name v ~off ~len =
    if off < 0 || len < 0 || off + len > v.n then invalid_arg name

  let add ~dst a b =
    check2 "Batch.add" a dst;
    check2 "Batch.add" a b;
    for i = 0 to a.n - 1 do
      F.unsafe_set dst.c0 i (F.unsafe_get a.c0 i +. F.unsafe_get b.c0 i)
    done

  let sub ~dst a b =
    check2 "Batch.sub" a dst;
    check2 "Batch.sub" a b;
    for i = 0 to a.n - 1 do
      F.unsafe_set dst.c0 i (F.unsafe_get a.c0 i -. F.unsafe_get b.c0 i)
    done

  let mul ~dst a b =
    check2 "Batch.mul" a dst;
    check2 "Batch.mul" a b;
    for i = 0 to a.n - 1 do
      F.unsafe_set dst.c0 i (F.unsafe_get a.c0 i *. F.unsafe_get b.c0 i)
    done

  let map ~dst f src =
    check2 "Batch.map" src dst;
    for i = 0 to src.n - 1 do
      set dst i (f (get src i))
    done

  let map2 ~dst f a b =
    check2 "Batch.map2" a b;
    check2 "Batch.map2" a dst;
    for i = 0 to a.n - 1 do
      set dst i (f (get a i) (get b i))
    done

  let axpy ~lo ~hi ~alpha ~x ~y =
    check2 "Batch.axpy" x y;
    if lo < 0 || hi > x.n || lo > hi then invalid_arg "Batch.axpy";
    for i = lo to hi - 1 do
      F.unsafe_set y.c0 i ((alpha *. F.unsafe_get x.c0 i) +. F.unsafe_get y.c0 i)
    done

  let madd ~alpha ~x ~xoff ~y ~yoff ~len =
    check_range "Batch.madd" x ~off:xoff ~len;
    check_range "Batch.madd" y ~off:yoff ~len;
    for i = 0 to len - 1 do
      F.unsafe_set y.c0 (yoff + i)
        (F.unsafe_get y.c0 (yoff + i) +. (alpha *. F.unsafe_get x.c0 (xoff + i)))
    done

  let dot ~init ~x ~xoff ~y ~yoff ~len =
    check_range "Batch.dot" x ~off:xoff ~len;
    check_range "Batch.dot" y ~off:yoff ~len;
    let acc = ref init in
    for i = 0 to len - 1 do
      acc := !acc +. (F.unsafe_get x.c0 (xoff + i) *. F.unsafe_get y.c0 (yoff + i))
    done;
    !acc

  let sum ~init ~x ~xoff ~len =
    check_range "Batch.sum" x ~off:xoff ~len;
    let acc = ref init in
    for i = 0 to len - 1 do
      acc := !acc +. F.unsafe_get x.c0 (xoff + i)
    done;
    !acc

  let dot_sub ~b ~x ~xoff ~y ~yoff ~len =
    check_range "Batch.dot_sub" x ~off:xoff ~len;
    check_range "Batch.dot_sub" y ~off:yoff ~len;
    let acc = ref 0.0 in
    for i = 0 to len - 1 do
      acc := !acc +. (F.unsafe_get x.c0 (xoff + i) *. F.unsafe_get y.c0 (yoff + i))
    done;
    b -. !acc

  let axpy_dot ~lo ~hi ~alpha ~x ~y ~w ~init =
    check2 "Batch.axpy_dot" x y;
    check2 "Batch.axpy_dot" x w;
    if lo < 0 || hi > x.n || lo > hi then invalid_arg "Batch.axpy_dot";
    let acc = ref init in
    for i = lo to hi - 1 do
      let t = (alpha *. F.unsafe_get x.c0 i) +. F.unsafe_get y.c0 i in
      F.unsafe_set y.c0 i t;
      acc := !acc +. (t *. F.unsafe_get w.c0 i)
    done;
    !acc

  let transpose ~m ~n ~src ~dst =
    check_transpose "Batch.transpose" ~m ~n ~src_len:src.n ~dst_len:dst.n (src == dst);
    transpose_plane ~m ~n src.c0 dst.c0
end

|}

let footer =
  {|
(* ------------------------------------------------------------------ *)
(* Generic fallback: planar layout over any scalar expansion type.     *)

(** What {!Of_scalar} needs from a scalar arithmetic: the
    component-array view plus the three ring operations. *)
module type SCALAR = sig
  type t

  val terms : int
  val zero : t
  val of_float : float -> t
  val to_float : t -> float
  val components : t -> float array
  val of_components : float array -> t
  val add : t -> t -> t
  val sub : t -> t -> t
  val mul : t -> t -> t
end

(** Planar storage with element-at-a-time scalar arithmetic: the same
    layout and accumulation orders as the generated vectors, for
    types without a specialized batch kernel (e.g. the emulated-float32
    GPU types).  Semantically -- and bitwise -- identical to running
    the scalar kernels over an element array. *)
module Of_scalar (K : SCALAR) : V with type elt = K.t = struct
  type elt = K.t

  type t = { n : int; planes : floatarray array }

  let terms = K.terms
  let length v = v.n
  let create n = { n; planes = Array.init K.terms (fun _ -> F.make n 0.0) }
  let copy v = { n = v.n; planes = Array.map F.copy v.planes }

  let get v i = K.of_components (Array.init K.terms (fun k -> F.get v.planes.(k) i))

  let set v i e =
    let c = K.components e in
    for k = 0 to K.terms - 1 do
      F.set v.planes.(k) i c.(k)
    done

  let of_array es =
    let v = create (Array.length es) in
    Array.iteri (fun i e -> set v i e) es;
    v

  let to_array v = Array.init v.n (get v)

  let of_floats fs =
    let v = create (Array.length fs) in
    Array.iteri (fun i f -> set v i (K.of_float f)) fs;
    v

  let to_floats v = Array.init v.n (fun i -> K.to_float (get v i))

  let check2 name a b = if a.n <> b.n then invalid_arg name

  let check_range name v ~off ~len =
    if off < 0 || len < 0 || off + len > v.n then invalid_arg name

  let ew name f ~dst a b =
    check2 name a dst;
    check2 name a b;
    for i = 0 to a.n - 1 do
      set dst i (f (get a i) (get b i))
    done

  let add ~dst a b = ew "Batch.add" K.add ~dst a b
  let sub ~dst a b = ew "Batch.sub" K.sub ~dst a b
  let mul ~dst a b = ew "Batch.mul" K.mul ~dst a b

  let map ~dst f src =
    check2 "Batch.map" src dst;
    for i = 0 to src.n - 1 do
      set dst i (f (get src i))
    done

  let map2 ~dst f a b =
    check2 "Batch.map2" a b;
    check2 "Batch.map2" a dst;
    for i = 0 to a.n - 1 do
      set dst i (f (get a i) (get b i))
    done

  let axpy ~lo ~hi ~alpha ~x ~y =
    check2 "Batch.axpy" x y;
    if lo < 0 || hi > x.n || lo > hi then invalid_arg "Batch.axpy";
    for i = lo to hi - 1 do
      set y i (K.add (K.mul alpha (get x i)) (get y i))
    done

  let madd ~alpha ~x ~xoff ~y ~yoff ~len =
    check_range "Batch.madd" x ~off:xoff ~len;
    check_range "Batch.madd" y ~off:yoff ~len;
    for i = 0 to len - 1 do
      set y (yoff + i) (K.add (get y (yoff + i)) (K.mul alpha (get x (xoff + i))))
    done

  let dot ~init ~x ~xoff ~y ~yoff ~len =
    check_range "Batch.dot" x ~off:xoff ~len;
    check_range "Batch.dot" y ~off:yoff ~len;
    let acc = ref init in
    for i = 0 to len - 1 do
      acc := K.add !acc (K.mul (get x (xoff + i)) (get y (yoff + i)))
    done;
    !acc

  let sum ~init ~x ~xoff ~len =
    check_range "Batch.sum" x ~off:xoff ~len;
    let acc = ref init in
    for i = 0 to len - 1 do
      acc := K.add !acc (get x (xoff + i))
    done;
    !acc

  let dot_sub ~b ~x ~xoff ~y ~yoff ~len =
    K.sub b (dot ~init:K.zero ~x ~xoff ~y ~yoff ~len)

  let axpy_dot ~lo ~hi ~alpha ~x ~y ~w ~init =
    check2 "Batch.axpy_dot" x y;
    check2 "Batch.axpy_dot" x w;
    if lo < 0 || hi > x.n || lo > hi then invalid_arg "Batch.axpy_dot";
    let acc = ref init in
    for i = lo to hi - 1 do
      let t = K.add (K.mul alpha (get x i)) (get y i) in
      set y i t;
      acc := K.add !acc (K.mul t (get w i))
    done;
    !acc

  let transpose ~m ~n ~src ~dst =
    check_transpose "Batch.transpose" ~m ~n ~src_len:src.n ~dst_len:dst.n (src == dst);
    for k = 0 to K.terms - 1 do
      transpose_plane ~m ~n src.planes.(k) dst.planes.(k)
    done
end
|}

let batch_ml () =
  let buf = Buffer.create (1 lsl 18) in
  Buffer.add_string buf header;
  Buffer.add_string buf "\n";
  List.iteri
    (fun i tr ->
      if i > 0 then Buffer.add_string buf "\n";
      emit_tier buf tr)
    tiers;
  Buffer.add_string buf footer;
  Buffer.contents buf
