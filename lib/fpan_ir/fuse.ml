(* Fusion pass: compose IR programs into one program.

   Fusion here is *inlining only*: the composed program's gate list is
   the concatenation of the pieces' gate lists with inputs substituted
   ([Ir.inline]), never a reordering, elision, or algebraic rewrite.
   That is the whole bitwise-safety argument -- each gate computes from
   exactly the values the unfused pipeline would have handed it through
   an intermediate plane, so the fused program is bitwise-equal to the
   op-by-op composition by construction.  What fusion buys is *staging*:
   one loop over the element planes instead of one loop (and one
   materialized intermediate plane set) per op. *)

type src =
  | Arg of int  (** input slot of the fused program *)
  | Out of int * int  (** output [j] of earlier piece [p]: [Out (p, j)] *)

type piece = { prog : Ir.t; args : src array }

let compose ~name ~num_inputs (pieces : piece list) ~(outputs : src list) : Ir.t =
  let b = Ir.B.create ~num_inputs in
  let outs : Ir.value array array = Array.make (List.length pieces) [||] in
  List.iteri
    (fun k piece ->
      let resolve = function
        | Arg i -> Ir.In i
        | Out (p, j) ->
            if p < 0 || p >= k then
              invalid_arg (Printf.sprintf "Fpan_ir.Fuse.compose: %s: piece %d reads piece %d" name k p);
            outs.(p).(j)
      in
      outs.(k) <- Ir.inline b piece.prog (Array.map resolve piece.args))
    pieces;
  let resolve_out = function
    | Arg i -> Ir.In i
    | Out (p, j) -> outs.(p).(j)
  in
  Ir.B.finish b ~name ~outputs:(Array.of_list (List.map resolve_out outputs))

(* --- canned per-element kernel chains -------------------------------- *)
(* [t] is the tier width (terms per element).  Input layout is
   documented per chain; scalar operands (alpha, accumulators) occupy
   [t] input slots just like element operands -- the staging layer
   decides which slots are loop-varying plane loads and which are
   loop-invariant scalars or loop-carried accumulators. *)

let args lo t = Array.init t (fun i -> Arg (lo + i))
let outs p t = Array.init t (fun j -> Out (p, j))
let app = Array.append

(* y' = alpha*x + y.  Inputs: alpha @ x @ y (3t). *)
let axpy t =
  compose ~name:(Printf.sprintf "axpy[mf%d]" t) ~num_inputs:(3 * t)
    [
      { prog = Front.mul_kernel t; args = app (args 0 t) (args t t) };
      { prog = Front.add_kernel t; args = app (outs 0 t) (args (2 * t) t) };
    ]
    ~outputs:(Array.to_list (outs 1 t))

(* y' = y + alpha*x (madd operand order).  Inputs: alpha @ x @ y (3t). *)
let madd t =
  compose ~name:(Printf.sprintf "madd[mf%d]" t) ~num_inputs:(3 * t)
    [
      { prog = Front.mul_kernel t; args = app (args 0 t) (args t t) };
      { prog = Front.add_kernel t; args = app (args (2 * t) t) (outs 0 t) };
    ]
    ~outputs:(Array.to_list (outs 1 t))

(* acc' = acc + x*y: the dot-product loop body.  Inputs: acc @ x @ y. *)
let dot_step t =
  compose ~name:(Printf.sprintf "dot_step[mf%d]" t) ~num_inputs:(3 * t)
    [
      { prog = Front.mul_kernel t; args = app (args t t) (args (2 * t) t) };
      { prog = Front.add_kernel t; args = app (args 0 t) (outs 0 t) };
    ]
    ~outputs:(Array.to_list (outs 1 t))

(* acc' = acc + x: the sum loop body.  Inputs: acc @ x. *)
let sum_step t =
  compose ~name:(Printf.sprintf "sum_step[mf%d]" t) ~num_inputs:(2 * t)
    [ { prog = Front.add_kernel t; args = app (args 0 t) (args t t) } ]
    ~outputs:(Array.to_list (outs 0 t))

(* The fused axpy+dot loop body: y' = alpha*x + y stored back, and
   acc' = acc + y'*w accumulated, in one pass.
   Inputs: alpha @ x @ y @ w @ acc (5t); outputs: y' @ acc' (2t). *)
let axpy_dot_step t =
  compose ~name:(Printf.sprintf "axpy_dot_step[mf%d]" t) ~num_inputs:(5 * t)
    [
      { prog = Front.mul_kernel t; args = app (args 0 t) (args t t) };
      { prog = Front.add_kernel t; args = app (outs 0 t) (args (2 * t) t) };
      { prog = Front.mul_kernel t; args = app (outs 1 t) (args (3 * t) t) };
      { prog = Front.add_kernel t; args = app (args (4 * t) t) (outs 2 t) };
    ]
    ~outputs:(Array.to_list (app (outs 1 t) (outs 3 t)))

(* r = b - acc: the residual tail fused behind a dot accumulator
   (Linalg.Refine_batched's per-row epilogue).  Inputs: b @ acc. *)
let residual_tail t =
  compose ~name:(Printf.sprintf "residual_tail[mf%d]" t) ~num_inputs:(2 * t)
    [ { prog = Front.sub_kernel t; args = app (args 0 t) (args t t) } ]
    ~outputs:(Array.to_list (outs 0 t))

(* Named chains for [fpan_tool fuse --dump] and the tests. *)
let chains : (string * (int -> Ir.t)) list =
  [
    ("add", Front.add_kernel);
    ("sub", Front.sub_kernel);
    ("mul", Front.mul_kernel);
    ("axpy", axpy);
    ("madd", madd);
    ("dot_step", dot_step);
    ("sum_step", sum_step);
    ("axpy_dot_step", axpy_dot_step);
    ("residual_tail", residual_tail);
  ]

let chain name t =
  match List.assoc_opt name chains with
  | Some f -> f t
  | None ->
      invalid_arg
        (Printf.sprintf "Fpan_ir.Fuse.chain: unknown chain %S (have: %s)" name
           (String.concat ", " (List.map fst chains)))
