(* Regenerates lib/multifloat/batch.ml on stdout.  Wired into
   lib/multifloat/dune as a drift rule: `dune runtest` diffs the
   committed file against this output, `dune promote` accepts it. *)
let () = print_string (Fpan_ir.Codegen.batch_ml ())
