(* SSA-style IR for FPAN wire programs.

   A program is a straight line of gates over values; a value is either
   a program input or an output port of an earlier gate.  The two-output
   gates are the error-free transformations (TwoSum / FastTwoSum /
   TwoProd: port 0 carries the principal result, port 1 the exact
   rounding error); Add / Mul / Neg / Const are the plain float ops the
   networks discard errors through.

   Unlike [Fpan.Network] -- whose gates mutate a fixed set of wires --
   this form is pure: every gate output is a fresh value, which is what
   makes programs composable (fusion is inlining, see {!Fuse}) and
   stageable (interpretation over planes, or OCaml codegen; see
   {!Interp} and {!Codegen}).  The front end ({!Front}) derives programs
   from the networks gate-for-gate, so a program evaluates bitwise
   identically to [Fpan.Interp.run] on the source network. *)

type value =
  | In of int  (** program input slot *)
  | Res of int * int  (** output port [p] of gate [g]: [Res (g, p)] *)

type gate =
  | Two_sum of value * value
  | Fast_two_sum of value * value
  | Two_prod of value * value
  | Add of value * value
  | Mul of value * value
  | Neg of value
  | Const of float

type t = {
  name : string;
  num_inputs : int;
  gates : gate array;
  outputs : value array;
}

let out_ports = function
  | Two_sum _ | Fast_two_sum _ | Two_prod _ -> 2
  | Add _ | Mul _ | Neg _ | Const _ -> 1

let operands = function
  | Two_sum (a, b) | Fast_two_sum (a, b) | Two_prod (a, b) | Add (a, b) | Mul (a, b) -> [ a; b ]
  | Neg a -> [ a ]
  | Const _ -> []

let gate_name = function
  | Two_sum _ -> "two_sum"
  | Fast_two_sum _ -> "fast_two_sum"
  | Two_prod _ -> "two_prod"
  | Add _ -> "add"
  | Mul _ -> "mul"
  | Neg _ -> "neg"
  | Const _ -> "const"

let size t = Array.length t.gates

(* Same flop convention as [Fpan.Network.flops], extended to the
   multiplicative gates (TwoProd = mul + fma). *)
let flops t =
  Array.fold_left
    (fun acc g ->
      acc
      +
      match g with
      | Two_sum _ -> 6
      | Fast_two_sum _ -> 3
      | Two_prod _ -> 2
      | Add _ | Mul _ | Neg _ -> 1
      | Const _ -> 0)
    0 t.gates

let validate t =
  let check_value ~gate v =
    match v with
    | In i ->
        if i < 0 || i >= t.num_inputs then
          invalid_arg (Printf.sprintf "Fpan_ir.%s: input %d out of range" t.name i)
    | Res (g, p) ->
        if g < 0 || g >= gate then
          invalid_arg (Printf.sprintf "Fpan_ir.%s: gate %d reads a later gate %d" t.name gate g);
        if p < 0 || p >= out_ports t.gates.(g) then
          invalid_arg (Printf.sprintf "Fpan_ir.%s: gate %d reads bad port %d.%d" t.name gate g p)
  in
  Array.iteri (fun i g -> List.iter (check_value ~gate:i) (operands g)) t.gates;
  Array.iter (check_value ~gate:(Array.length t.gates)) t.outputs;
  t

(* --- builder --------------------------------------------------------- *)

module B = struct
  type prog = t

  type t = { num_inputs : int; mutable rev_gates : gate list; mutable n : int }

  let create ~num_inputs = { num_inputs; rev_gates = []; n = 0 }

  let push b g =
    b.rev_gates <- g :: b.rev_gates;
    let i = b.n in
    b.n <- i + 1;
    i

  let finish b ~name ~outputs =
    validate
      {
        name;
        num_inputs = b.num_inputs;
        gates = Array.of_list (List.rev b.rev_gates);
        outputs;
      }
end

(* Append [prog]'s gates to builder [b], substituting [args] for its
   inputs; returns [prog]'s outputs re-based into [b].  This is the
   primitive every fusion is built from: gate order and operand order
   are preserved exactly, so the inlined copy computes bitwise the same
   values as running [prog] on the bound arguments. *)
let inline b prog (args : value array) : value array =
  if Array.length args <> prog.num_inputs then
    invalid_arg
      (Printf.sprintf "Fpan_ir.inline: %s wants %d args, got %d" prog.name prog.num_inputs
         (Array.length args));
  let base = Array.make (Array.length prog.gates) 0 in
  let subst = function In i -> args.(i) | Res (g, p) -> Res (base.(g), p) in
  Array.iteri
    (fun i g ->
      let g' =
        match g with
        | Two_sum (a, b') -> Two_sum (subst a, subst b')
        | Fast_two_sum (a, b') -> Fast_two_sum (subst a, subst b')
        | Two_prod (a, b') -> Two_prod (subst a, subst b')
        | Add (a, b') -> Add (subst a, subst b')
        | Mul (a, b') -> Mul (subst a, subst b')
        | Neg a -> Neg (subst a)
        | Const c -> Const c
      in
      base.(i) <- B.push b g')
    prog.gates;
  Array.map subst prog.outputs

(* --- printing -------------------------------------------------------- *)

let pp_value ppf = function
  | In i -> Format.fprintf ppf "in%d" i
  | Res (g, p) -> Format.fprintf ppf "g%d.%d" g p

let pp ppf t =
  Format.fprintf ppf "@[<v>program %s: %d inputs, %d gates, %d flops@," t.name t.num_inputs
    (size t) (flops t);
  Array.iteri
    (fun i g ->
      Format.fprintf ppf "  g%-3d %-13s" i (gate_name g);
      (match g with
      | Const c -> Format.fprintf ppf " %h" c
      | _ ->
          List.iter (fun v -> Format.fprintf ppf " %a" pp_value v) (operands g));
      Format.fprintf ppf "@,")
    t.gates;
  Format.fprintf ppf "outputs:";
  Array.iter (fun v -> Format.fprintf ppf " %a" pp_value v) t.outputs;
  Format.fprintf ppf "@]"
