(** Extended-precision BLAS kernels, generic over the arithmetic.

    The four kernels of the paper's evaluation (Section 5):

    - AXPY: [y <- alpha x + y]  (vector-vector)
    - DOT:  [x . y]             (vector-vector reduction)
    - GEMV: [y <- A x]          (matrix-vector, ij loop order)
    - GEMM: [C <- A B]          (matrix-matrix, ikj loop order)

    Matrices are dense row-major flat arrays.  One "operation" is one
    multiply plus one add (the numerical-linear-algebra convention the
    paper uses): AXPY and DOT over vectors of size [n] perform [n]
    operations, GEMV [n^2], GEMM [n^3].

    Each kernel has a sequential form and a [~pool] form partitioned
    over rows (thread-per-core, mirroring the paper's OpenMP setup).
    Reductions combine chunk partials in index order, so results do not
    depend on the number of domains. *)

module Make (N : Numeric.S) : sig
  val axpy : alpha:N.t -> x:N.t array -> y:N.t array -> unit
  (** In-place [y.(i) <- alpha * x.(i) + y.(i)]. *)

  val dot : x:N.t array -> y:N.t array -> N.t

  val gemv : m:int -> n:int -> a:N.t array -> x:N.t array -> y:N.t array -> unit
  (** [y <- A x] with [A] an [m*n] row-major matrix. *)

  val gemm : m:int -> n:int -> k:int -> a:N.t array -> b:N.t array -> c:N.t array -> unit
  (** [C <- C + A B] with [A : m*k], [B : k*n], [C : m*n], ikj order. *)

  val axpy_pool : Parallel.Pool.t -> alpha:N.t -> x:N.t array -> y:N.t array -> unit
  val dot_pool : Parallel.Pool.t -> x:N.t array -> y:N.t array -> N.t
  val gemv_pool : Parallel.Pool.t -> m:int -> n:int -> a:N.t array -> x:N.t array -> y:N.t array -> unit

  val gemm_pool :
    Parallel.Pool.t -> m:int -> n:int -> k:int -> a:N.t array -> b:N.t array -> c:N.t array -> unit

  val vec_of_floats : float array -> N.t array
  val vec_to_floats : N.t array -> float array
end

(** The same four kernels over planar (structure-of-arrays) vectors:
    the fast path for arithmetics advertising {!Numeric.BATCHED}.

    Identical per-element arithmetic and accumulation orders to
    {!Make}, so sequential results are bitwise equal to the scalar
    path, and the pooled variants reproduce the scalar pooled
    chunking/combination order bit-for-bit (asserted by
    [test/test_batch.ml]).  What changes is the data layout: one
    unboxed [floatarray] per expansion component instead of an array of
    boxed records, which removes the per-element pointer chase and heap
    allocation — the OCaml analogue of the paper's cross-element SIMD
    vectorization. *)
module Make_batched (N : Numeric.BATCHED) : sig
  module V : Numeric.VEC with type elt = N.t and type t = N.V.t

  val axpy : alpha:N.t -> x:V.t -> y:V.t -> unit
  (** In-place [y.(i) <- alpha * x.(i) + y.(i)]. *)

  val dot : x:V.t -> y:V.t -> N.t

  val gemv : m:int -> n:int -> a:V.t -> x:V.t -> y:V.t -> unit
  (** [y <- A x] with [A] an [m*n] row-major planar matrix. *)

  val gemm : m:int -> n:int -> k:int -> a:V.t -> b:V.t -> c:V.t -> unit
  (** [C <- C + A B] with [A : m*k], [B : k*n], [C : m*n], ikj order. *)

  val axpy_dot : alpha:N.t -> x:V.t -> y:V.t -> w:V.t -> N.t
  (** Fused [y <- alpha x + y] then [dot y w] in one pass over the
      planes (the iterative-refinement update + convergence-check
      chain); bitwise equal to {!axpy} followed by {!dot}. *)

  val gemv_residual : m:int -> n:int -> a:V.t -> x:V.t -> b:V.t -> r:V.t -> unit
  (** Fused [r <- b - A x] with the subtraction staged behind each
      row's dot accumulator; bitwise equal to {!gemv} followed by an
      elementwise subtract. *)

  val axpy_pool : Parallel.Pool.t -> alpha:N.t -> x:V.t -> y:V.t -> unit
  val dot_pool : Parallel.Pool.t -> x:V.t -> y:V.t -> N.t
  val gemv_pool : Parallel.Pool.t -> m:int -> n:int -> a:V.t -> x:V.t -> y:V.t -> unit

  val gemm_pool :
    Parallel.Pool.t -> m:int -> n:int -> k:int -> a:V.t -> b:V.t -> c:V.t -> unit

  (** {2 Runtime variants}

      The production parallel path: the work-stealing scheduler and
      tiled engine of {!Runtime}.  AXPY/GEMV/GEMM are bitwise equal to
      the sequential kernels above at any worker count and tile size;
      DOT uses the engine's fixed-shape reduction tree (deterministic
      across worker counts, though grouped differently from the
      sequential fold).  The [_pool] variants above remain as the
      ablation baseline (bench mode [ablation-sched]). *)

  val axpy_rt : Runtime.Sched.t -> alpha:N.t -> x:V.t -> y:V.t -> unit
  val dot_rt : Runtime.Sched.t -> x:V.t -> y:V.t -> N.t
  val gemv_rt : Runtime.Sched.t -> m:int -> n:int -> a:V.t -> x:V.t -> y:V.t -> unit

  val gemm_rt :
    Runtime.Sched.t ->
    ?tile:int * int ->
    m:int ->
    n:int ->
    k:int ->
    a:V.t ->
    b:V.t ->
    c:V.t ->
    unit ->
    unit
  (** [C <- C + A B], cache-blocked over [?tile] (default 32x32) with
      each tile a stealable task. *)

  val axpy_dot_rt : Runtime.Sched.t -> alpha:N.t -> x:V.t -> y:V.t -> w:V.t -> N.t
  (** Fused {!axpy_dot} on the engine's fixed reduction tree: bitwise
      equal to [axpy_rt] followed by [dot_rt y w] at any worker count. *)

  val gemv_residual_rt :
    Runtime.Sched.t -> m:int -> n:int -> a:V.t -> x:V.t -> b:V.t -> r:V.t -> unit
  (** Fused row-partitioned [r <- b - A x]; bitwise equal to [gemv_rt]
      followed by an elementwise subtract at any worker count. *)

  val vec_of_floats : float array -> V.t
  val vec_to_floats : V.t -> float array
end
