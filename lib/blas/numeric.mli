(** The number interface the extended-precision BLAS kernels need.

    Every arithmetic under benchmark — native doubles, the MultiFloat
    FPAN kernels, QD, CAMPARY, the software FPU ({!Bigfloat}) at a
    fixed precision, and the emulated-binary32 GPU types — implements
    this signature, so all of them run the {e same} kernel code and the
    comparison isolates the cost of the arithmetic itself, as in the
    paper's benchmark methodology (Section 5). *)

module type S = sig
  type t

  val name : string
  (** Display name for benchmark tables. *)

  val bits : int
  (** Nominal precision in bits (53, 103, 156, or 208). *)

  val zero : t
  val of_float : float -> t
  val to_float : t -> float
  val add : t -> t -> t
  val mul : t -> t -> t
end

(** Planar (structure-of-arrays) vectors over an arithmetic: the
    batched counterpart of an element array, mirroring
    {!Multifloat.Batch.V} so the hand-inlined planar MultiFloat
    kernels plug in directly.  The fold and update operations fix the
    accumulation order of the scalar kernels in {!Kernels.Make}, which
    is what makes batched results bitwise equal to the scalar path. *)
module type VEC = sig
  type elt
  type t

  val terms : int
  val length : t -> int
  val create : int -> t
  val copy : t -> t
  val get : t -> int -> elt
  val set : t -> int -> elt -> unit
  val of_array : elt array -> t
  val to_array : t -> elt array
  val of_floats : float array -> t
  val to_floats : t -> float array
  val add : dst:t -> t -> t -> unit
  val sub : dst:t -> t -> t -> unit
  val mul : dst:t -> t -> t -> unit

  val axpy : lo:int -> hi:int -> alpha:elt -> x:t -> y:t -> unit
  (** [y.(i) <- add (mul alpha x.(i)) y.(i)]. *)

  val madd : alpha:elt -> x:t -> xoff:int -> y:t -> yoff:int -> len:int -> unit
  (** [y.(yoff+i) <- add y.(yoff+i) (mul alpha x.(xoff+i))]. *)

  val dot : init:elt -> x:t -> xoff:int -> y:t -> yoff:int -> len:int -> elt
  (** Index-order fold [acc <- add acc (mul x.(xoff+i) y.(yoff+i))]. *)

  val sum : init:elt -> x:t -> xoff:int -> len:int -> elt
  (** Index-order fold [acc <- add acc x.(xoff+i)]. *)

  val dot_sub : b:elt -> x:t -> xoff:int -> y:t -> yoff:int -> len:int -> elt
  (** Fused [sub b (dot ~init:zero ...)] — the GEMV-residual row —
      bitwise equal to the unfused composition. *)

  val axpy_dot : lo:int -> hi:int -> alpha:elt -> x:t -> y:t -> w:t -> init:elt -> elt
  (** Fused [axpy] + [dot ~x:y ~y:w] over [lo <= i < hi]; updates [y]
      in place and returns the fold from [init] — bitwise equal to the
      two-pass composition. *)

  val transpose : m:int -> n:int -> src:t -> dst:t -> unit
  (** Plane-wise matrix transpose of an [m*n] row-major [src] into a
      distinct [dst] (the panel-packing primitive: matrix columns
      become contiguous planar rows). *)
end

(** An arithmetic that additionally advertises a planar fast path.
    Every {!BATCHED} is an {!S} (first-class-module coercion included),
    so baselines without a planar representation simply stay {!S} and
    keep the scalar kernels — same kernel code, same op-count
    convention, the comparison still isolates the arithmetic. *)
module type BATCHED = sig
  include S

  module V : VEC with type elt = t
end
