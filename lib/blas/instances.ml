(** {!Numeric.S} instances for every arithmetic under benchmark: the
    library zoo of the paper's evaluation, all driving the same kernel
    code in {!Kernels}. *)

module Double : Numeric.BATCHED with type t = float = struct
  type t = float

  let name = "double"
  let bits = 53
  let zero = 0.0
  let of_float x = x
  let to_float x = x
  let add = ( +. )
  let mul = ( *. )

  module V = Multifloat.Batch.Mf1v
end

module Mf2 : Numeric.BATCHED with type t = Multifloat.Mf2.t = struct
  include Multifloat.Mf2

  let name = "MultiFloats (ours)"
  let bits = 103

  module V = Multifloat.Batch.Mf2v
end

module Mf3 : Numeric.BATCHED with type t = Multifloat.Mf3.t = struct
  include Multifloat.Mf3

  let name = "MultiFloats (ours)"
  let bits = 156

  module V = Multifloat.Batch.Mf3v
end

module Mf4 : Numeric.BATCHED with type t = Multifloat.Mf4.t = struct
  include Multifloat.Mf4

  let name = "MultiFloats (ours)"
  let bits = 208

  module V = Multifloat.Batch.Mf4v
end

module Qd_dd : Numeric.S with type t = Baselines.Qd_dd.t = struct
  include Baselines.Qd_dd

  let name = "QD (dd_real)"
  let bits = 103
end

module Qd_qd : Numeric.S with type t = Baselines.Qd_qd.t = struct
  include Baselines.Qd_qd

  let name = "QD (qd_real)"
  let bits = 208
end

module Campary_n (K : sig
  val n : int
  val bits : int
end) : Numeric.S with type t = Baselines.Campary.t = struct
  type t = Baselines.Campary.t

  let name = "CAMPARY (certified)"
  let bits = K.bits
  let zero = Baselines.Campary.zero ~n:K.n
  let of_float = Baselines.Campary.of_float ~n:K.n
  let to_float = Baselines.Campary.to_float
  let add = Baselines.Campary.add
  let mul = Baselines.Campary.mul
end

module Campary2 = Campary_n (struct
  let n = 2
  let bits = 103
end)

module Campary3 = Campary_n (struct
  let n = 3
  let bits = 156
end)

module Campary4 = Campary_n (struct
  let n = 4
  let bits = 208
end)

module Fpu_n (P : Baselines.Fpu_emul.S) (Tag : sig
  val name : string
end) : Numeric.S with type t = P.t = struct
  type t = P.t

  let name = Tag.name
  let bits = P.prec
  let zero = P.zero
  let of_float = P.of_float
  let to_float = P.to_float
  let add = P.add
  let mul = P.mul
end

(* The software-FPU baseline stands in for the whole MPFR / GMP /
   FLINT / Boost class (one implementation, labeled as the class). *)
module Fpu53 = Fpu_n (Baselines.Fpu_emul.P53) (struct
  let name = "SoftFPU (MPFR-class)"
end)

module Fpu103 = Fpu_n (Baselines.Fpu_emul.P103) (struct
  let name = "SoftFPU (MPFR-class)"
end)

module Fpu156 = Fpu_n (Baselines.Fpu_emul.P156) (struct
  let name = "SoftFPU (MPFR-class)"
end)

module Fpu208 = Fpu_n (Baselines.Fpu_emul.P208) (struct
  let name = "SoftFPU (MPFR-class)"
end)

(* Ball arithmetic (Arb): the FLINT-class baseline. *)
module Arb_n (P : sig
  val prec : int
end) : Numeric.S with type t = Baselines.Arb.t = struct
  type t = Baselines.Arb.t

  let name = "Ball/Arb (FLINT-class)"
  let bits = P.prec
  let zero = Baselines.Arb.of_float ~prec:P.prec 0.0
  let of_float = Baselines.Arb.of_float ~prec:P.prec
  let to_float b = Bigfloat.to_float (Baselines.Arb.mid b)
  let add = Baselines.Arb.add
  let mul = Baselines.Arb.mul
end

module Arb53 = Arb_n (struct
  let prec = 53
end)

module Arb103 = Arb_n (struct
  let prec = 103
end)

module Arb156 = Arb_n (struct
  let prec = 156
end)

module Arb208 = Arb_n (struct
  let prec = 208
end)

module Gpu_n (G : sig
  type t

  val terms : int
  val precision_bits : int
  val zero : t
  val of_float : float -> t
  val to_float : t -> float
  val components : t -> float array
  val of_components : float array -> t
  val add : t -> t -> t
  val sub : t -> t -> t
  val mul : t -> t -> t
end) : Numeric.BATCHED with type t = G.t = struct
  type t = G.t

  let name = Printf.sprintf "MultiFloat<float32,%d>" G.terms
  let bits = G.precision_bits
  let zero = G.zero
  let of_float = G.of_float
  let to_float = G.to_float
  let add = G.add
  let mul = G.mul

  (* Planar layout with element-at-a-time emulated-binary32 arithmetic:
     no hand-inlined plane kernels for the GPU base type (yet), but the
     same batched code path and accumulation orders. *)
  module V = Multifloat.Batch.Of_scalar (G)
end

module Gpu1 = Gpu_n (Gpu32.Gpu.Mf1)
module Gpu2 = Gpu_n (Gpu32.Gpu.Mf2)
module Gpu3 = Gpu_n (Gpu32.Gpu.Mf3)
module Gpu4 = Gpu_n (Gpu32.Gpu.Mf4)
