module Make (N : Numeric.S) = struct
  let axpy ~alpha ~x ~y =
    let n = Array.length x in
    assert (Array.length y = n);
    for i = 0 to n - 1 do
      y.(i) <- N.add (N.mul alpha x.(i)) y.(i)
    done

  let dot ~x ~y =
    let n = Array.length x in
    assert (Array.length y = n);
    let acc = ref N.zero in
    for i = 0 to n - 1 do
      acc := N.add !acc (N.mul x.(i) y.(i))
    done;
    !acc

  let gemv ~m ~n ~a ~x ~y =
    assert (Array.length a = m * n && Array.length x = n && Array.length y = m);
    for i = 0 to m - 1 do
      let acc = ref N.zero in
      let row = i * n in
      for j = 0 to n - 1 do
        acc := N.add !acc (N.mul a.(row + j) x.(j))
      done;
      y.(i) <- !acc
    done

  let gemm ~m ~n ~k ~a ~b ~c =
    assert (Array.length a = m * k && Array.length b = k * n && Array.length c = m * n);
    for i = 0 to m - 1 do
      let crow = i * n in
      for p = 0 to k - 1 do
        let aip = a.((i * k) + p) in
        let brow = p * n in
        for j = 0 to n - 1 do
          c.(crow + j) <- N.add c.(crow + j) (N.mul aip b.(brow + j))
        done
      done
    done

  let axpy_pool pool ~alpha ~x ~y =
    let n = Array.length x in
    assert (Array.length y = n);
    Parallel.Pool.parallel_for pool ~lo:0 ~hi:n (fun i -> y.(i) <- N.add (N.mul alpha x.(i)) y.(i))

  let dot_pool pool ~x ~y =
    let n = Array.length x in
    assert (Array.length y = n);
    Parallel.Pool.parallel_reduce pool ~lo:0 ~hi:n ~init:N.zero
      ~map:(fun i -> N.mul x.(i) y.(i))
      ~combine:N.add

  let gemv_pool pool ~m ~n ~a ~x ~y =
    assert (Array.length a = m * n && Array.length x = n && Array.length y = m);
    Parallel.Pool.parallel_for pool ~lo:0 ~hi:m (fun i ->
        let acc = ref N.zero in
        let row = i * n in
        for j = 0 to n - 1 do
          acc := N.add !acc (N.mul a.(row + j) x.(j))
        done;
        y.(i) <- !acc)

  let gemm_pool pool ~m ~n ~k ~a ~b ~c =
    assert (Array.length a = m * k && Array.length b = k * n && Array.length c = m * n);
    Parallel.Pool.parallel_for pool ~lo:0 ~hi:m (fun i ->
        let crow = i * n in
        for p = 0 to k - 1 do
          let aip = a.((i * k) + p) in
          let brow = p * n in
          for j = 0 to n - 1 do
            c.(crow + j) <- N.add c.(crow + j) (N.mul aip b.(brow + j))
          done
        done)

  let vec_of_floats fs = Array.map N.of_float fs
  let vec_to_floats vs = Array.map N.to_float vs
end

(* Batched kernels over a planar (structure-of-arrays) vector type.
   Same kernels, same op-count convention, same accumulation orders as
   [Make] — the per-element arithmetic is identical, so sequential
   results are bitwise equal to the scalar path, and the pooled
   variants reproduce the scalar pooled chunking/combination order
   bit-for-bit (Pool.chunk_ranges is the same partition parallel_for
   and parallel_reduce use). *)
module Make_batched (N : Numeric.BATCHED) = struct
  module V = N.V

  let axpy ~alpha ~x ~y =
    let n = V.length x in
    assert (V.length y = n);
    V.axpy ~lo:0 ~hi:n ~alpha ~x ~y

  let dot ~x ~y =
    let n = V.length x in
    assert (V.length y = n);
    V.dot ~init:N.zero ~x ~xoff:0 ~y ~yoff:0 ~len:n

  let gemv ~m ~n ~a ~x ~y =
    assert (V.length a = m * n && V.length x = n && V.length y = m);
    for i = 0 to m - 1 do
      V.set y i (V.dot ~init:N.zero ~x:a ~xoff:(i * n) ~y:x ~yoff:0 ~len:n)
    done

  let gemm ~m ~n ~k ~a ~b ~c =
    assert (V.length a = m * k && V.length b = k * n && V.length c = m * n);
    for i = 0 to m - 1 do
      for p = 0 to k - 1 do
        let aip = V.get a ((i * k) + p) in
        V.madd ~alpha:aip ~x:b ~xoff:(p * n) ~y:c ~yoff:(i * n) ~len:n
      done
    done

  (* Fused cross-op kernels: single-pass compositions emitted from the
     wire-program IR (lib/fpan_ir Fuse).  Bitwise equal to the unfused
     two-pass forms by construction. *)

  let axpy_dot ~alpha ~x ~y ~w =
    let n = V.length x in
    assert (V.length y = n && V.length w = n);
    V.axpy_dot ~lo:0 ~hi:n ~alpha ~x ~y ~w ~init:N.zero

  let gemv_residual ~m ~n ~a ~x ~b ~r =
    assert (V.length a = m * n && V.length x = n && V.length b = m && V.length r = m);
    for i = 0 to m - 1 do
      V.set r i (V.dot_sub ~b:(V.get b i) ~x:a ~xoff:(i * n) ~y:x ~yoff:0 ~len:n)
    done

  (* Pooled variants: chunk over contiguous planar ranges.  Writes land
     on disjoint ranges/rows; the dot reduction combines chunk partials
     in index order (deterministic, independent of scheduling). *)

  let ranges pool ~lo ~hi =
    Array.of_list (Parallel.Pool.chunk_ranges ~lo ~hi ~parts:(Parallel.Pool.size pool))

  let axpy_pool pool ~alpha ~x ~y =
    let n = V.length x in
    assert (V.length y = n);
    let rs = ranges pool ~lo:0 ~hi:n in
    Parallel.Pool.parallel_for pool ~lo:0 ~hi:(Array.length rs) (fun pi ->
        let lo, hi = rs.(pi) in
        V.axpy ~lo ~hi ~alpha ~x ~y)

  let dot_pool pool ~x ~y =
    let n = V.length x in
    assert (V.length y = n);
    let rs = ranges pool ~lo:0 ~hi:n in
    let partials = Array.make (max 1 (Array.length rs)) N.zero in
    Parallel.Pool.parallel_for pool ~lo:0 ~hi:(Array.length rs) (fun pi ->
        let lo, hi = rs.(pi) in
        partials.(pi) <- V.dot ~init:N.zero ~x ~xoff:lo ~y ~yoff:lo ~len:(hi - lo));
    Array.fold_left N.add N.zero partials

  let gemv_pool pool ~m ~n ~a ~x ~y =
    assert (V.length a = m * n && V.length x = n && V.length y = m);
    Parallel.Pool.parallel_for pool ~lo:0 ~hi:m (fun i ->
        V.set y i (V.dot ~init:N.zero ~x:a ~xoff:(i * n) ~y:x ~yoff:0 ~len:n))

  let gemm_pool pool ~m ~n ~k ~a ~b ~c =
    assert (V.length a = m * k && V.length b = k * n && V.length c = m * n);
    Parallel.Pool.parallel_for pool ~lo:0 ~hi:m (fun i ->
        for p = 0 to k - 1 do
          let aip = V.get a ((i * k) + p) in
          V.madd ~alpha:aip ~x:b ~xoff:(p * n) ~y:c ~yoff:(i * n) ~len:n
        done)

  (* Runtime variants: the work-stealing scheduler + tiled engine
     (lib/runtime).  GEMV/GEMM/AXPY are bitwise equal to the
     sequential kernels above at any worker count and tile size; DOT
     uses the engine's fixed-shape reduction tree (deterministic
     across worker counts, grouped differently from the sequential
     fold).  This is the production parallel path; the [_pool]
     variants above are kept as the ablation baseline (bench mode
     [ablation-sched]). *)

  module Rt = Runtime.Engine.Make (N) (V)

  let cfg_of ?tile () =
    match tile with
    | None -> Runtime.Engine.default_cfg
    | Some (tm, tn) -> { Runtime.Engine.default_cfg with tile_m = tm; tile_n = tn }

  (* Entry spans cover the whole scheduled call (task-tree setup
     included), with the total extended-precision operation count as
     the argument; the engine adds per-tile spans beneath gemm's. *)
  let traced name fl f =
    let tr = Obs.Trace.enabled () in
    if tr then Obs.Trace.begin_span Obs.Trace.Kernel name;
    let finish () =
      if tr then Obs.Trace.end_span_f ~arg_name:"flops" ~arg:(float_of_int fl)
    in
    match f () with
    | v ->
        finish ();
        v
    | exception e ->
        finish ();
        raise e

  let axpy_rt rt ~alpha ~x ~y =
    assert (V.length y = V.length x);
    traced "kernels.axpy_rt" (V.length x) (fun () -> Rt.axpy rt ~alpha ~x ~y ())

  let dot_rt rt ~x ~y =
    assert (V.length y = V.length x);
    traced "kernels.dot_rt" (V.length x) (fun () -> Rt.dot rt x y)

  let gemv_rt rt ~m ~n ~a ~x ~y =
    assert (V.length a = m * n && V.length x = n && V.length y = m);
    traced "kernels.gemv_rt" (m * n) (fun () -> Rt.gemv rt ~m ~n ~a ~x ~y ())

  let gemm_rt rt ?tile ~m ~n ~k ~a ~b ~c () =
    assert (V.length a = m * k && V.length b = k * n && V.length c = m * n);
    traced "kernels.gemm_rt" (m * n * k) (fun () ->
        Rt.gemm rt ~cfg:(cfg_of ?tile ()) ~m ~n ~k ~a ~b ~c ())

  let axpy_dot_rt rt ~alpha ~x ~y ~w =
    let n = V.length x in
    assert (V.length y = n && V.length w = n);
    traced "kernels.axpy_dot_rt" (2 * n) (fun () -> Rt.axpy_dot rt ~alpha ~x ~y ~w ())

  let gemv_residual_rt rt ~m ~n ~a ~x ~b ~r =
    assert (V.length a = m * n && V.length x = n && V.length b = m && V.length r = m);
    traced "kernels.gemv_residual_rt" (m * (n + 1)) (fun () ->
        Rt.gemv_residual rt ~m ~n ~a ~x ~b ~r ())

  let vec_of_floats = V.of_floats
  let vec_to_floats = V.to_floats
end
