(* Every machine-readable artifact validates against its declared
   schema: the committed BENCH_*.json files on disk, plus CHECK and
   TRACE documents generated in-process.  Objects are closed, so an
   emitter growing a key fails here until Obs.Schemas declares it. *)

module J = Obs.Json_out
module S = Obs.Schema

let validate_file name schema path =
  match J.parse_file path with
  | Error msg -> Alcotest.fail (Printf.sprintf "%s: %s" path msg)
  | Ok doc -> S.check ~name schema doc

(* Under `dune runtest` the cwd is _build/default/test/ and the
   committed artifacts are dune deps one level up; under `dune exec`
   from the workspace root they are right here. *)
let artifact f =
  let up = Filename.concat ".." f in
  if Sys.file_exists up then up else f

let test_bench_figs () =
  List.iter
    (fun f -> validate_file f Obs.Schemas.bench_fig (artifact f))
    [ "BENCH_fig9.json"; "BENCH_fig10.json"; "BENCH_fig11.json" ]

let test_bench_sched () =
  validate_file "BENCH_sched.json" Obs.Schemas.bench_sched (artifact "BENCH_sched.json")

let test_bench_serve () =
  validate_file "BENCH_serve.json" Obs.Schemas.bench_serve (artifact "BENCH_serve.json")

let test_bench_fuse () =
  validate_file "BENCH_fuse.json" Obs.Schemas.bench_fuse (artifact "BENCH_fuse.json")

(* The committed verification certificate: schema-valid and actually a
   passing certificate (worker-count-independent by construction, so
   no environment dependence beyond libm's log2 — validated
   structurally here, byte-compared across domain counts in CI). *)
let test_verify_certificate () =
  validate_file "VERIFY_core.json" Obs.Schemas.verify_certificate (artifact "VERIFY_core.json");
  let json = In_channel.with_open_text (artifact "VERIFY_core.json") In_channel.input_all in
  let has needle =
    let n = String.length needle and h = String.length json in
    let rec go i = i + n <= h && (String.sub json i n = needle || go (i + 1)) in
    if not (go 0) then Alcotest.failf "VERIFY_core.json missing %s" needle
  in
  has "\"passed\": true";
  has "\"name\": \"add2\"";
  has "\"name\": \"add3\"";
  has "\"name\": \"mul2\"";
  has "\"name\": \"dot_step";
  (* no sweep may have failed *)
  let bad = "\"passed\": false" in
  let n = String.length bad and h = String.length json in
  let rec go i = i + n <= h && (String.sub json i n = bad || go (i + 1)) in
  if go 0 then Alcotest.fail "committed certificate records a failing sweep"

(* The committed chaos campaign report: schema-valid under
   fpan-chaos/1 and actually a passing campaign — zero invariant
   violations, every scenario present. *)
let test_chaos_report () =
  validate_file "CHAOS_report.json" Obs.Schemas.chaos_report
    (artifact "CHAOS_report.json");
  let json =
    In_channel.with_open_text (artifact "CHAOS_report.json")
      In_channel.input_all
  in
  let has needle =
    let n = String.length needle and h = String.length json in
    let rec go i = i + n <= h && (String.sub json i n = needle || go (i + 1)) in
    if not (go 0) then Alcotest.failf "CHAOS_report.json missing %s" needle
  in
  has "\"schema\": \"fpan-chaos/1\"";
  has "\"passed\": true";
  (* every scenario of the matrix ran *)
  List.iter
    (fun (s : Chaos.Plan.scenario) ->
      has (Printf.sprintf "\"name\": %S" s.Chaos.Plan.name))
    Chaos.Plan.matrix;
  (* the three invariants all held *)
  has "\"server_deaths\": 0";
  has "\"bitwise_mismatches\": 0";
  has "\"fd_leak\": 0";
  let bad = "\"passed\": false" in
  let n = String.length bad and h = String.length json in
  let rec go i = i + n <= h && (String.sub json i n = bad || go (i + 1)) in
  if go 0 then Alcotest.fail "committed chaos report records a failing scenario"

(* Wire documents of the serving layer validate against their declared
   schemas in both directions: what the encoder emits passes, and the
   parse -> validate -> decode pipeline reproduces the request. *)
let test_serve_wire_schemas () =
  let module P = Serve.Protocol in
  let req =
    {
      P.id = 7;
      op = P.Dot;
      tier = P.Mf2;
      sla = None;
      deadline_ms = Some 12.5;
      prog = [];
      x = [| [| 1.5; 1e-18 |]; [| -0.25; 0.0 |] |];
      y = [| [| 3.0; 0.0 |]; [| Float.max_float; 1e292 |] |];
      z = [||];
    }
  in
  let prog_req =
    {
      P.id = 8;
      op = P.Program;
      tier = P.Mf2;
      sla = None;
      deadline_ms = None;
      prog = [ "axpy"; "dot" ];
      x = [| [| 1.5; 1e-18 |] |];
      y = [| [| 2.0; 0.0 |]; [| -0.25; 0.0 |] |];
      z = [| [| 3.0; 0.0 |] |];
    }
  in
  List.iter
    (fun req ->
      let doc = J.parse_exn (J.to_string_compact (P.request_to_json req)) in
      S.check ~name:"serve request" Obs.Schemas.serve_request doc;
      match P.request_of_json doc with
      | Error e -> Alcotest.fail ("request did not round-trip: " ^ e)
      | Ok r -> Alcotest.(check bool) "request round-trips bitwise" true (r = req))
    [ req; prog_req ];
  List.iter
    (fun resp ->
      S.check ~name:"serve response" Obs.Schemas.serve_response
        (J.parse_exn (J.to_string_compact (P.response_to_json resp))))
    [ P.Result
        { id = 7; result = [| [| 4.5; 0.0 |] |]; batch = 3; chosen = None; bound = None };
      P.Result
        { id = 10; result = [| [| 4.5; 0.0 |] |]; batch = 1; chosen = Some "mf3";
          bound = Some 2.5e-40 };
      P.Shed { id = 8; reason = "queue_full" };
      P.Failed { id = 9; error = "boom" } ]

(* RFC 8259 leaves duplicate object keys undefined; the parser rejects
   them outright so last-write-wins smuggling can never reach the
   schema validator (which sees an assoc list and checks the first
   binding only). *)
let test_duplicate_keys_rejected () =
  let rejects s =
    match J.parse s with
    | Error _ -> true
    | Ok _ -> false
  in
  Alcotest.(check bool) "top-level dup" true (rejects {|{"a":1,"a":2}|});
  Alcotest.(check bool) "nested dup" true (rejects {|{"x":{"k":true,"k":false}}|});
  Alcotest.(check bool) "dup inside array element" true
    (rejects {|[1,{"id":1,"id":2}]|});
  Alcotest.(check bool) "same key different depths ok" true
    (not (rejects {|{"a":{"a":1},"b":[{"a":2}]}|}));
  (* the serving layer depends on this: a frame smuggling a second
     "op" must die in the parser, before dispatch *)
  Alcotest.(check bool) "dup op in a request frame" true
    (rejects {|{"schema":"fpan-serve/1","id":1,"op":"add","op":"div"}|})

let test_trace_artifacts () =
  validate_file "TRACE_gemm.json" Obs.Schemas.trace_summary (artifact "TRACE_gemm.json");
  validate_file "TRACE_gemm_chrome.json" Obs.Schemas.chrome_trace
    (artifact "TRACE_gemm_chrome.json");
  validate_file "BENCH_sched_trace.json" Obs.Schemas.trace_summary
    (artifact "BENCH_sched_trace.json");
  validate_file "BENCH_sched_chrome_trace.json" Obs.Schemas.chrome_trace
    (artifact "BENCH_sched_chrome_trace.json")

let test_check_report () =
  let cfg = { Check.Fuzz.default with Check.Fuzz.cases = 40; tiers = [ 2 ]; max_findings = 2 } in
  let report = Check.Fuzz.run cfg in
  S.check ~name:"fpan-check/1" Obs.Schemas.check_report (Check.Fuzz.to_json report)

let test_trace_summary () =
  Obs.Trace.set_enabled true;
  Obs.Trace.clear ();
  Obs.Metrics.reset ();
  Obs.Trace.with_span Obs.Trace.Kernel "outer" (fun () ->
      Obs.Trace.with_span Obs.Trace.Eft "inner" (fun () -> ()));
  Obs.Metrics.incr (Obs.Metrics.counter "schemas.test.c");
  Obs.Metrics.set (Obs.Metrics.gauge "schemas.test.g") 1.5;
  Obs.Metrics.observe (Obs.Metrics.hist "schemas.test.h") 2.0;
  let dropped = Obs.Trace.dropped () in
  let spans = Obs.Trace.drain () in
  Obs.Trace.set_enabled false;
  let sched =
    Runtime.Sched.with_sched ~workers:2 (fun rt ->
        Runtime.Sched.parallel_for rt ~lo:0 ~hi:64 (fun _ _ -> ());
        Runtime.Sched.stats_json (Runtime.Sched.stats rt))
  in
  let overhead =
    J.Obj
      [ ("untraced_wall_s", J.Num 1.0);
        ("traced_wall_s", J.Num 1.01);
        ("overhead_pct", J.Num 1.0) ]
  in
  let summary =
    Obs.Export.summary ~workload:"schema-test" ~sched ~extra:[ ("overhead", overhead) ] ~spans
      ~metrics:(Obs.Metrics.snapshot ()) ~dropped ~unbalanced:(Obs.Trace.unbalanced ()) ()
  in
  S.check ~name:"fpan-trace/1" Obs.Schemas.trace_summary summary;
  S.check ~name:"chrome" Obs.Schemas.chrome_trace (Obs.Export.chrome_trace spans);
  (* and the sched rows of the summary validate on their own *)
  match J.member "sched" summary with
  | Some rows -> S.check ~name:"worker rows" (S.List Obs.Schemas.worker_row) rows
  | None -> Alcotest.fail "summary lost the sched block"

(* The validator itself: closed objects, required keys, type and
   constant mismatches all produce violations with paths. *)
let test_validator_rejects () =
  let schema = S.Obj [ S.Req ("a", S.Int); S.Opt ("b", S.Str) ] in
  let ok v = Result.is_ok (S.validate schema v) in
  Alcotest.(check bool) "conforming" true (ok (J.Obj [ ("a", J.Num 3.0) ]));
  Alcotest.(check bool) "optional present" true
    (ok (J.Obj [ ("a", J.Num 3.0); ("b", J.Str "x") ]));
  Alcotest.(check bool) "missing required" false (ok (J.Obj [ ("b", J.Str "x") ]));
  Alcotest.(check bool) "unknown key" false
    (ok (J.Obj [ ("a", J.Num 3.0); ("zzz", J.Null) ]));
  Alcotest.(check bool) "non-integral Int" false (ok (J.Obj [ ("a", J.Num 3.5) ]));
  Alcotest.(check bool) "wrong type" false (ok (J.Obj [ ("a", J.Str "3") ]));
  Alcotest.(check bool) "str const" false
    (Result.is_ok (S.validate (S.Str_const "v1") (J.Str "v2")));
  Alcotest.(check bool) "nullable accepts null" true
    (Result.is_ok (S.validate (S.nullable S.Num) J.Null))

let () =
  Alcotest.run "json_schemas"
    [ ( "artifacts",
        [ Alcotest.test_case "BENCH_fig9/10/11.json" `Quick test_bench_figs;
          Alcotest.test_case "BENCH_sched.json" `Quick test_bench_sched;
          Alcotest.test_case "BENCH_serve.json" `Quick test_bench_serve;
          Alcotest.test_case "BENCH_fuse.json" `Quick test_bench_fuse;
          Alcotest.test_case "VERIFY_core.json" `Quick test_verify_certificate;
          Alcotest.test_case "CHAOS_report.json" `Quick test_chaos_report;
          Alcotest.test_case "TRACE_gemm(_chrome).json" `Quick test_trace_artifacts;
          Alcotest.test_case "CHECK report (in-process)" `Quick test_check_report;
          Alcotest.test_case "TRACE summary (in-process)" `Quick test_trace_summary ] );
      ( "validator",
        [ Alcotest.test_case "rejections" `Quick test_validator_rejects;
          Alcotest.test_case "serve wire documents" `Quick test_serve_wire_schemas;
          Alcotest.test_case "duplicate keys rejected" `Quick test_duplicate_keys_rejected ] ) ]
