(* Tests for the emulated binary32 base and the GPU MultiFloat types.

   Bigfloat at prec = 24 implements the same arithmetic (modulo the
   unbounded exponent range), so every F32 operation can be checked
   against it bit-for-bit away from the binary32 overflow/underflow
   thresholds. *)

module F32 = Gpu32.F32
module Gpu = Gpu32.Gpu

let rng = Random.State.make [| 0xf32; 99 |]

let random_f32 () =
  let m = Random.State.float rng 2.0 -. 1.0 in
  let e = Random.State.int rng 40 - 20 in
  match Random.State.int rng 8 with
  | 0 -> 0.0
  | 1 -> F32.round (Float.ldexp 1.0 e)
  | _ -> F32.round (Float.ldexp m e)

let b24 f = Bigfloat.of_float ~prec:24 f
let bits f = Int64.bits_of_float f

let test_round_is_f32 () =
  for _ = 1 to 5000 do
    let x = Float.ldexp (Random.State.float rng 2.0 -. 1.0) (Random.State.int rng 60 - 30) in
    let r = F32.round x in
    (* Idempotent and exactly representable in 24 bits. *)
    if bits (F32.round r) <> bits r then Alcotest.fail "round not idempotent";
    if bits (Bigfloat.to_float (b24 r)) <> bits r then Alcotest.fail "not a binary32 value"
  done

let binop_matches name f32_op big_op =
  for _ = 1 to 5000 do
    let x = random_f32 () and y = random_f32 () in
    let got = f32_op x y in
    let got = if got = 0.0 then 0.0 else got in
    let expected = Bigfloat.to_float (big_op (b24 x) (b24 y)) in
    let expected = if expected = 0.0 then 0.0 else expected in
    if Float.is_finite expected && bits got <> bits expected then
      Alcotest.failf "%s %h %h: got %h, expected %h" name x y got expected
  done

let test_add () = binop_matches "add" F32.add Bigfloat.add
let test_sub () = binop_matches "sub" F32.sub Bigfloat.sub
let test_mul () = binop_matches "mul" F32.mul Bigfloat.mul
let test_div () = binop_matches "div" F32.div Bigfloat.div

let test_sqrt () =
  for _ = 1 to 5000 do
    let x = Float.abs (random_f32 ()) in
    let got = F32.sqrt x in
    let expected = Bigfloat.to_float (Bigfloat.sqrt (b24 x)) in
    if bits got <> bits expected then Alcotest.failf "sqrt %h: got %h, expected %h" x got expected
  done

let test_fma () =
  for _ = 1 to 20000 do
    let x = random_f32 () and y = random_f32 () and z = random_f32 () in
    let got = F32.fma x y z in
    let got = if got = 0.0 then 0.0 else got in
    (* Reference: exact product at 48 bits, exact-enough sum at high
       precision, single rounding to 24. *)
    let p = Bigfloat.mul (Bigfloat.round_to ~prec:100 (b24 x)) (b24 y) in
    let s = Bigfloat.add p (b24 z) in
    let expected = Bigfloat.to_float (Bigfloat.round_to ~prec:24 s) in
    let expected = if expected = 0.0 then 0.0 else expected in
    if Float.is_finite expected && bits got <> bits expected then
      Alcotest.failf "fma %h %h %h: got %h, expected %h" x y z got expected
  done

let test_fma_is_single_rounded () =
  (* A classic double-rounding witness: choose x*y+z landing exactly on
     a binary32 tie only when computed exactly. *)
  let x = F32.round (1.0 +. Float.ldexp 1.0 (-12)) in
  let y = F32.round (1.0 +. Float.ldexp 1.0 (-12)) in
  let z = F32.round (-1.0) in
  let got = F32.fma x y z in
  let p = Bigfloat.mul (Bigfloat.round_to ~prec:60 (b24 x)) (b24 y) in
  let expected = Bigfloat.to_float (Bigfloat.round_to ~prec:24 (Bigfloat.add p (b24 z))) in
  Alcotest.(check (float 0.0)) "tie case" expected got

(* GPU MultiFloat types: 2-term binary32 expansions carry ~49 bits, so
   a double-precision reference suffices. *)
let test_gpu_mf2_add_mul () =
  for _ = 1 to 3000 do
    let x = random_f32 () and y = random_f32 () in
    let a = Gpu.Mf2.of_float x and b = Gpu.Mf2.of_float y in
    (* The full value lives in the component sum (the leading component
       alone only has 24 bits). *)
    let s = Exact.approx (Exact.sum_floats (Gpu.Mf2.components (Gpu.Mf2.add a b))) in
    if Float.abs (s -. (x +. y)) > Float.abs (x +. y) *. Float.ldexp 1.0 (-45) then
      Alcotest.failf "gpu add %h %h -> %h" x y s;
    let p = Exact.approx (Exact.sum_floats (Gpu.Mf2.components (Gpu.Mf2.mul a b))) in
    if Float.abs (p -. (x *. y)) > Float.abs (x *. y) *. Float.ldexp 1.0 (-45) then
      Alcotest.failf "gpu mul %h %h -> %h" x y p
  done

let test_gpu_mf4_precision () =
  (* 4-term binary32 expansions: ~99 bits.  sqrt(2)^2 - 2 must be below
     2^-90 (checked in double, which only resolves 2^-53 relative, so
     compare through components). *)
  let two = Gpu.Mf4.of_float 2.0 in
  let s = Gpu.Mf4.sqrt two in
  let err = Gpu.Mf4.components (Gpu.Mf4.sub (Gpu.Mf4.mul s s) two) in
  let mag = Float.abs (Exact.approx (Exact.sum_floats err)) in
  Alcotest.(check bool) (Printf.sprintf "err %h" mag) true (mag < Float.ldexp 1.0 (-85))

let test_gpu_components_are_f32 () =
  for _ = 1 to 1000 do
    let a = Gpu.Mf3.of_float (random_f32 ()) in
    let b = Gpu.Mf3.of_float (random_f32 ()) in
    let c = Gpu.Mf3.components (Gpu.Mf3.mul a b) in
    Array.iter
      (fun v -> if bits (F32.round v) <> bits v then Alcotest.failf "component %h not binary32" v)
      c
  done

(* binary16 emulation: precision, range, and the Section 4.4
   saturation. *)
module F16 = Gpu32.F16

let test_f16_rounding () =
  Alcotest.(check (float 0.0)) "1.0005" 0x1.004p+0 (F16.round 1.0005);
  Alcotest.(check (float 0.0)) "max" 65504.0 (F16.round 65504.0);
  Alcotest.(check (float 0.0)) "overflow" Float.infinity (F16.round 65520.0);
  Alcotest.(check (float 0.0)) "subnormal grid" (Float.ldexp 1.0 (-23))
    (F16.round (1.5 *. Float.ldexp 1.0 (-24)));
  Alcotest.(check (float 0.0)) "underflow to 0" 0.0 (F16.round (Float.ldexp 1.0 (-26)));
  (* idempotent on its own grid *)
  for _ = 1 to 2000 do
    let x = F16.round (Float.ldexp (Random.State.float rng 2.0 -. 1.0) (Random.State.int rng 30 - 15)) in
    if Float.is_finite x && Int64.bits_of_float (F16.round x) <> Int64.bits_of_float x then
      Alcotest.failf "f16 round not idempotent at %h" x
  done

let test_f16_ops_closed () =
  (* every op result lies on the binary16 grid *)
  for _ = 1 to 2000 do
    let a = F16.round (Float.ldexp (Random.State.float rng 2.0 -. 1.0) (Random.State.int rng 20 - 10)) in
    let b = F16.round (Float.ldexp (Random.State.float rng 2.0 -. 1.0) (Random.State.int rng 20 - 10)) in
    List.iter
      (fun v ->
        if Float.is_finite v && Int64.bits_of_float (F16.round v) <> Int64.bits_of_float v then
          Alcotest.failf "op escaped the grid: %h" v)
      [ F16.add a b; F16.sub a b; F16.mul a b; F16.sqrt (Float.abs a) ]
  done

let test_f16_expansion_saturation () =
  (* Section 4.4: half-precision expansions stop gaining precision
     after ~2 terms.  sqrt(2)^2 - 2 shows no improvement from 2 to 4
     terms. *)
  let module G2 = Multifloat.Generic.Make (Gpu32.F16) (struct let terms = 2 end) in
  let module G4 = Multifloat.Generic.Make (Gpu32.F16) (struct let terms = 4 end) in
  let e2 =
    let s = G2.sqrt (G2.of_float 2.0) in
    Float.abs (Exact.approx (Exact.sum_floats (G2.components (G2.sub (G2.mul s s) (G2.of_float 2.0)))))
  in
  let e4 =
    let s = G4.sqrt (G4.of_float 2.0) in
    Float.abs (Exact.approx (Exact.sum_floats (G4.components (G4.sub (G4.mul s s) (G4.of_float 2.0)))))
  in
  (* 2-term achieves ~2^-23; 4 terms does NOT improve on it (saturated
     at the underflow grid). *)
  Alcotest.(check bool) "2-term decent" true (e2 <= Float.ldexp 1.0 (-20));
  Alcotest.(check bool) "4-term saturated" true (e4 >= e2 /. 4.0)

(* --- Minifloat: arbitrary reduced-width formats ---------------------- *)

module M = Gpu32.Minifloat

let tiny = M.fmt ~p:4 ~emin:(-3) ~emax:3

let test_minifloat_value_set () =
  let vals = M.all_finite tiny in
  (* 2 zeros + per sign: (2^(p-1) - 1) subnormals + (emax-emin+1) * 2^(p-1) normals *)
  Alcotest.(check int) "cardinality" (2 * (8 + (7 * 8))) (Array.length vals);
  (* every value is a fixed point of round; no duplicates *)
  Array.iter
    (fun v ->
      if bits (M.round tiny v) <> bits v then Alcotest.failf "%h not a fixed point" v)
    vals;
  let sorted = Array.copy vals in
  Array.sort compare (Array.map bits sorted);
  for i = 1 to Array.length sorted - 1 do
    if bits sorted.(i - 1) = bits sorted.(i) then Alcotest.failf "duplicate %h" sorted.(i)
  done;
  Alcotest.(check (float 0.0)) "max_value" 15.0 (M.max_value tiny);
  Alcotest.(check (float 0.0)) "min_subnormal" (Float.ldexp 1.0 (-6)) (M.min_subnormal tiny)

let test_minifloat_subnormal_boundary () =
  let sub = M.min_subnormal tiny in
  (* halfway to the smallest subnormal ties to even zero; just above rounds up *)
  Alcotest.(check (float 0.0)) "tie to zero" 0.0 (M.round tiny (sub /. 2.0));
  Alcotest.(check (float 0.0)) "above tie rounds up" sub (M.round tiny (sub *. 0.75));
  Alcotest.(check (float 0.0)) "sign preserved" (-.sub) (M.round tiny (-.sub *. 0.75));
  (* the subnormal grid is uniform: 1.5 grid steps ties to the even 2-step *)
  Alcotest.(check (float 0.0)) "subnormal tie to even" (2.0 *. sub) (M.round tiny (1.5 *. sub));
  (* largest subnormal and smallest normal are adjacent *)
  Alcotest.(check (float 0.0)) "7 steps" (7.0 *. sub) (M.round tiny (7.0 *. sub));
  Alcotest.(check (float 0.0)) "8 steps = min normal" (Float.ldexp 1.0 (-3))
    (M.round tiny (8.0 *. sub))

let test_minifloat_overflow () =
  let mx = M.max_value tiny in
  let threshold = M.overflow_threshold tiny in
  Alcotest.(check (float 0.0)) "threshold" 15.5 threshold;
  Alcotest.(check (float 0.0)) "below threshold stays finite" mx (M.round tiny 15.49);
  Alcotest.(check bool) "at threshold overflows" true (M.round tiny threshold = Float.infinity);
  Alcotest.(check bool) "negative overflow" true
    (M.round tiny (-1e300) = Float.neg_infinity);
  Alcotest.(check bool) "inf passes through" true (M.round tiny Float.infinity = Float.infinity);
  Alcotest.(check bool) "nan passes through" true (Float.is_nan (M.round tiny Float.nan))

let test_minifloat_rne_ties_p8 () =
  (* round-to-nearest-even at the 8-bit mantissa: every odd 9-bit
     mantissa is exactly halfway between two 8-bit neighbors and must
     round to the even one. *)
  for k = 128 to 255 do
    let v = Float.ldexp (Float.of_int ((2 * k) + 1)) (-9) in
    (* halfway between k*2^-8 and (k+1)*2^-8 *)
    let r = M.round_p 8 v in
    let even = if k mod 2 = 0 then k else k + 1 in
    Alcotest.(check (float 0.0))
      (Printf.sprintf "tie at %d" k)
      (Float.ldexp (Float.of_int even) (-8))
      r;
    (* and one ulp/4 off the midpoint resolves to nearest, not even *)
    let quarter = Float.ldexp 1.0 (-11) in
    Alcotest.(check (float 0.0)) "below midpoint" (Float.ldexp (Float.of_int k) (-8))
      (M.round_p 8 (v -. quarter));
    Alcotest.(check (float 0.0)) "above midpoint" (Float.ldexp (Float.of_int (k + 1)) (-8))
      (M.round_p 8 (v +. quarter))
  done

let test_minifloat_round_p_symmetries () =
  let rng = Random.State.make [| 0x51ab |] in
  for _ = 1 to 2000 do
    let x = Float.ldexp (Random.State.float rng 2.0 -. 1.0) (Random.State.int rng 60 - 30) in
    let p = 2 + Random.State.int rng 25 in
    let r = M.round_p p x in
    if bits (M.round_p p r) <> bits r then Alcotest.fail "round_p not idempotent";
    if bits (M.round_p p (-.x)) <> bits (-.r) then Alcotest.fail "round_p not odd";
    let k = Random.State.int rng 41 - 20 in
    if bits (M.round_p p (Float.ldexp x k)) <> bits (Float.ldexp r k) then
      Alcotest.fail "round_p not scale-equivariant";
    if not (M.is_representable_p p r) then Alcotest.fail "round_p result not representable"
  done

let test_minifloat_nonoverlap () =
  (* half-ulp rule at width 4: 1.0 tolerates at most 2^-4 *)
  Alcotest.(check bool) "half ulp ok" true (M.is_nonoverlapping_p 4 1.0 (Float.ldexp 1.0 (-4)));
  Alcotest.(check bool) "beyond half ulp" false
    (M.is_nonoverlapping_p 4 1.0 (Float.ldexp 1.5 (-4)));
  Alcotest.(check bool) "zero tail ok" true (M.is_nonoverlapping_p 4 1.0 0.0);
  Alcotest.(check bool) "zero head, nonzero tail" false (M.is_nonoverlapping_p 4 0.0 1.0);
  (* coincides with the p = 53 Eft predicate on random doubles *)
  let rng = Random.State.make [| 0x4107 |] in
  for _ = 1 to 2000 do
    let a = Float.ldexp (Random.State.float rng 2.0 -. 1.0) (Random.State.int rng 40 - 20) in
    let b = Float.ldexp (Random.State.float rng 2.0 -. 1.0) (Random.State.int rng 80 - 60) in
    if M.is_nonoverlapping_p 53 a b <> Eft.is_nonoverlapping a b then
      Alcotest.failf "p=53 disagrees with Eft at %h %h" a b
  done

let () =
  Alcotest.run "f32"
    [ ( "base",
        [ Alcotest.test_case "round" `Quick test_round_is_f32;
          Alcotest.test_case "add" `Quick test_add;
          Alcotest.test_case "sub" `Quick test_sub;
          Alcotest.test_case "mul" `Quick test_mul;
          Alcotest.test_case "div" `Quick test_div;
          Alcotest.test_case "sqrt" `Quick test_sqrt;
          Alcotest.test_case "fma" `Quick test_fma;
          Alcotest.test_case "fma single-rounded" `Quick test_fma_is_single_rounded ] );
      ( "gpu-multifloat",
        [ Alcotest.test_case "mf2 add/mul" `Quick test_gpu_mf2_add_mul;
          Alcotest.test_case "mf4 precision" `Quick test_gpu_mf4_precision;
          Alcotest.test_case "components on grid" `Quick test_gpu_components_are_f32 ] );
      ( "f16",
        [ Alcotest.test_case "rounding" `Quick test_f16_rounding;
          Alcotest.test_case "ops closed" `Quick test_f16_ops_closed;
          Alcotest.test_case "saturation (4.4)" `Quick test_f16_expansion_saturation ] );
      ( "minifloat",
        [ Alcotest.test_case "value set" `Quick test_minifloat_value_set;
          Alcotest.test_case "subnormal boundary" `Quick test_minifloat_subnormal_boundary;
          Alcotest.test_case "overflow to inf" `Quick test_minifloat_overflow;
          Alcotest.test_case "RNE ties at p=8" `Quick test_minifloat_rne_ties_p8;
          Alcotest.test_case "round_p symmetries" `Quick test_minifloat_round_p_symmetries;
          Alcotest.test_case "nonoverlap predicate" `Quick test_minifloat_nonoverlap ] ) ]
