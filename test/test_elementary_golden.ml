(* Golden accuracy tests for Multifloat.Elementary: exp/log/sin on a
   stored worst-case input set, checked against a Bigfloat reference
   evaluated at twice the working precision.

   The existing test_elementary.ml checks identities (log(exp x) = x,
   addition formulas), which a correlated error can slip through; this
   file pins each function's value against an independent oracle.  The
   reference evaluator lives here, in test code, built only from
   Bigfloat's correctly-rounded ring operations: Machin's formula for
   pi, the atanh series for ln 2, argument-reduced Taylor series for
   exp and sin, and Newton inversion of exp for log.  At reference
   precision 2p+40 its own error is ~2^-(2p), invisible next to the
   2^-(p-12) gate. *)

module B = Bigfloat

(* atan(1/q) by Taylor, [iters] chosen by the caller from the per-term
   bit gain 2*log2 q. *)
let atan_inv ~prec q ~iters =
  let one = B.of_int ~prec 1 in
  let qb = B.of_int ~prec q in
  let inv_q2 = B.div one (B.mul qb qb) in
  let acc = ref (B.div one qb) in
  let pow = ref (B.div one qb) in
  for j = 1 to iters do
    pow := B.mul !pow inv_q2;
    let term = B.div !pow (B.of_int ~prec ((2 * j) + 1)) in
    acc := if j land 1 = 1 then B.sub !acc term else B.add !acc term
  done;
  !acc

let atanh_inv ~prec q ~iters =
  let one = B.of_int ~prec 1 in
  let qb = B.of_int ~prec q in
  let inv_q2 = B.div one (B.mul qb qb) in
  let acc = ref (B.div one qb) in
  let pow = ref (B.div one qb) in
  for j = 1 to iters do
    pow := B.mul !pow inv_q2;
    acc := B.add !acc (B.div !pow (B.of_int ~prec ((2 * j) + 1)))
  done;
  !acc

let pi_ref ~prec =
  let a = atan_inv ~prec 5 ~iters:((prec / 4) + 8) in
  let b = atan_inv ~prec 239 ~iters:((prec / 15) + 8) in
  B.sub (B.mul (B.of_int ~prec 16) a) (B.mul (B.of_int ~prec 4) b)

let ln2_ref ~prec = B.mul (B.of_int ~prec 2) (atanh_inv ~prec 3 ~iters:((prec / 3) + 8))

(* exp: reduce by ln 2 to |r| <= ln2/2, shift out [s] more bits so the
   Taylor series gains [s] bits per term, square back up. *)
let exp_ref ~prec x =
  let one = B.of_int ~prec 1 in
  let l2 = ln2_ref ~prec in
  let k = int_of_float (Float.round (B.to_float x /. 0.6931471805599453)) in
  let r = B.sub x (B.mul (B.of_int ~prec k) l2) in
  let s = 16 in
  let r' = B.mul r (B.of_float ~prec (Float.ldexp 1.0 (-s))) in
  let acc = ref one and term = ref one in
  for n = 1 to (prec / s) + 8 do
    term := B.div (B.mul !term r') (B.of_int ~prec n);
    acc := B.add !acc !term
  done;
  let e = ref !acc in
  for _ = 1 to s do
    e := B.mul !e !e
  done;
  (* scale by 2^k: k is bounded by the double exponent range here *)
  B.mul !e (B.of_float ~prec (Float.ldexp 1.0 k))

(* log by Newton inversion of exp: y <- y + (x exp(-y) - 1), doubling
   the 53 correct bits of the libm seed each round. *)
let log_ref ~prec x =
  let one = B.of_int ~prec 1 in
  let y = ref (B.of_float ~prec (Float.log (B.to_float x))) in
  for _ = 1 to 5 do
    let e = exp_ref ~prec (B.neg !y) in
    y := B.add !y (B.sub (B.mul x e) one)
  done;
  !y

(* sin: reduce by pi/2 with quadrant dispatch, Taylor on |r| <= pi/4. *)
let sin_ref ~prec x =
  let pi = pi_ref ~prec in
  let half_pi = B.div pi (B.of_int ~prec 2) in
  let k = int_of_float (Float.round (B.to_float x /. 1.5707963267948966)) in
  let r = B.sub x (B.mul (B.of_int ~prec k) half_pi) in
  let r2 = B.mul r r in
  let series first_term first_n =
    (* sum of t, t * -r^2/((n+1)(n+2)), ... *)
    let acc = ref first_term and term = ref first_term and n = ref first_n in
    for _ = 1 to (prec / 3) + 32 do
      term := B.neg (B.div (B.mul !term r2) (B.of_int ~prec ((!n + 1) * (!n + 2))));
      acc := B.add !acc !term;
      n := !n + 2
    done;
    !acc
  in
  let sin_r () = series r 1 in
  let cos_r () = series (B.of_int ~prec 1) 0 in
  match ((k mod 4) + 4) mod 4 with
  | 0 -> sin_r ()
  | 1 -> cos_r ()
  | 2 -> B.neg (sin_r ())
  | _ -> B.neg (cos_r ())

(* --- the golden input sets ------------------------------------------ *)

(* Stored worst cases: reduction boundaries (near ln2/2 and pi
   multiples), cancellation-prone arguments (log near 1, exp of tiny),
   range extremes, and plain interior points. *)
let exp_inputs =
  [ 0x1.62e42fefa39efp-2;  (* ln2/2 rounded: reduction tie *)
    0x1.62e42fefa39efp+5;  (* 64 * ln2-ish: large k, cancelling r *)
    (* +-700 is out: e^700 ~ 2^1010 puts expansion tails under the
       subnormal floor, the documented Section 4.4 exponent-range
       limitation (see test_edge_semantics); 200 keeps the reduction
       count large while every tail term stays normal. *)
    1.0; -1.0; 0x1p-30; -0x1p-30; 0.5; 2.5; -0x1.5p+3; 100.0; -100.0; 200.0; -200.0;
    0x1.921fb54442d18p+1   (* pi *) ]

let log_inputs =
  [ 0x1.00001p+0;          (* 1 + 2^-20: cancellation against the seed *)
    0x1.ffffep-1;          (* 1 - 2^-20 *)
    0x1.5bf0a8b145769p+1;  (* e rounded *)
    2.0; 10.0; 0.001; 0x1p+100; 0x1p-100; 3.5; 0x1.8p-9 ]

let sin_inputs =
  [ 0x1.921fb54442d18p+1;  (* double nearest pi: tiny result, reduction stress *)
    0x1.921fb54442d18p+0;  (* nearest pi/2: cos-quadrant tie *)
    3.0; 0.5; -0.5; -7.0; 22.0;  (* near 7 pi *)
    1.0; 100.0; -0x1.921fb54442d18p+1 ]

module Check (M : Multifloat.Ops.S) (F : sig
  val exp : M.t -> M.t
  val log : M.t -> M.t
  val sin : M.t -> M.t
end) =
struct
  let prec = (2 * M.precision_bits) + 40
  let gate_bits = M.precision_bits - 12

  (* Error in units of the reference — except that functions with an
     O(1)-scale computation and a possibly tiny result (log near 1)
     are judged on absolute error there: the cancelled bits are
     inherent to the function, not lost by the implementation (QD's
     log has the same contract). *)
  let err ~floor_at_one got ref_v =
    let got_b = B.of_expansion ~prec (M.components got) in
    let d = B.abs (B.sub got_b ref_v) in
    let denom = B.abs ref_v in
    if B.is_zero denom || (floor_at_one && B.compare denom (B.of_int ~prec 1) < 0) then
      B.to_float d
    else B.to_float (B.div d denom)

  let check_fn ?(floor_at_one = false) name fn ref_fn inputs =
    List.iter
      (fun x ->
        let got = fn (M.of_float x) in
        let ref_v = ref_fn ~prec (B.of_float ~prec x) in
        let e = err ~floor_at_one got ref_v in
        if e > Float.ldexp 1.0 (-gate_bits) then
          Alcotest.failf "%s(%h): relative error 2^%.1f above gate 2^-%d" name x (Float.log2 e)
            gate_bits)
      inputs

  let run () =
    check_fn "exp" F.exp exp_ref exp_inputs;
    check_fn ~floor_at_one:true "log" F.log log_ref log_inputs;
    (* sin near a pi multiple has the same shape: the result is tiny
       but the reduction works at O(1) scale against a p-bit pi, so
       absolute accuracy at the gate is the achievable contract. *)
    check_fn ~floor_at_one:true "sin" F.sin sin_ref sin_inputs
end

module C2 = Check (Multifloat.Mf2) (Multifloat.Elementary.F2)
module C3 = Check (Multifloat.Mf3) (Multifloat.Elementary.F3)
module C4 = Check (Multifloat.Mf4) (Multifloat.Elementary.F4)

(* The planar batched path (what the serving layer's micro-batcher
   runs for exp/log/sin groups) must be bitwise the scalar path on the
   same worst-case inputs — not merely inside the accuracy gate.  Any
   divergence means a served response depends on how requests were
   batched. *)
module Bitwise
    (M : Multifloat.Ops.S)
    (V : Multifloat.Batch.V with type elt = M.t) =
struct
  module E = Multifloat.Elementary.Make (M)

  let check_fn name fn inputs =
    let xs = Array.of_list inputs in
    let n = Array.length xs in
    let v = V.create n in
    Array.iteri (fun i x -> V.set v i (M.of_float x)) xs;
    let dst = V.create n in
    V.map ~dst fn v;
    Array.iteri
      (fun i x ->
        let scalar = M.components (fn (M.of_float x)) in
        let batched = M.components (V.get dst i) in
        Array.iteri
          (fun j c ->
            if Int64.bits_of_float c <> Int64.bits_of_float batched.(j) then
              Alcotest.failf "%s(%h): batched component %d is %h, scalar %h" name x j
                batched.(j) c)
          scalar)
      xs

  let run () =
    check_fn "exp" E.exp exp_inputs;
    check_fn "log" E.log log_inputs;
    check_fn "sin" E.sin sin_inputs
end

module B2 = Bitwise (Multifloat.Mf2) (Multifloat.Batch.Mf2v)
module B3 = Bitwise (Multifloat.Mf3) (Multifloat.Batch.Mf3v)
module B4 = Bitwise (Multifloat.Mf4) (Multifloat.Batch.Mf4v)

(* Same obligation through the generic Of_scalar planar storage (the
   path types without hand-inlined kernels take). *)
module G2 = Bitwise (Multifloat.Mf2) (Multifloat.Batch.Of_scalar (Multifloat.Mf2))
module G3 = Bitwise (Multifloat.Mf3) (Multifloat.Batch.Of_scalar (Multifloat.Mf3))
module G4 = Bitwise (Multifloat.Mf4) (Multifloat.Batch.Of_scalar (Multifloat.Mf4))

(* The reference itself is cross-checked at double precision against
   libm before it is trusted to judge anything. *)
let test_reference_sanity () =
  let prec = 300 in
  let close a b = Float.abs (a -. b) <= 1e-13 *. Float.abs b in
  List.iter
    (fun x ->
      assert (close (B.to_float (exp_ref ~prec (B.of_float ~prec x))) (Float.exp x));
      assert (close (B.to_float (sin_ref ~prec (B.of_float ~prec x))) (Float.sin x));
      if x > 0.0 then
        assert (close (B.to_float (log_ref ~prec (B.of_float ~prec x))) (Float.log x)))
    [ 0.5; 1.7; -3.2; 10.0; 0.001; 22.0 ]

let () =
  Alcotest.run "elementary-golden"
    [ ( "vs-bigfloat-oracle",
        [ Alcotest.test_case "reference sanity" `Quick test_reference_sanity;
          Alcotest.test_case "mf2" `Quick (fun () -> C2.run ());
          Alcotest.test_case "mf3" `Quick (fun () -> C3.run ());
          Alcotest.test_case "mf4" `Quick (fun () -> C4.run ()) ] );
      ( "batched-bitwise-scalar",
        [ Alcotest.test_case "mf2" `Quick (fun () -> B2.run ());
          Alcotest.test_case "mf3" `Quick (fun () -> B3.run ());
          Alcotest.test_case "mf4" `Quick (fun () -> B4.run ());
          Alcotest.test_case "of_scalar mf2" `Quick (fun () -> G2.run ());
          Alcotest.test_case "of_scalar mf3" `Quick (fun () -> G3.run ());
          Alcotest.test_case "of_scalar mf4" `Quick (fun () -> G4.run ()) ] ) ]
