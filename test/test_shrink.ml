(* Check.Shrink: the shrunk counterexample must still fail, and must
   be locally minimal — running one more shrink pass over the result
   changes nothing. *)

module Sh = Check.Shrink

(* A deterministic family of "failing checks" over operand arrays,
   each keeping a different structural feature alive so shrinking has
   something to chew on and something it must not destroy. *)
let predicates =
  [ (* fails while any component is nonzero *)
    ("any-nonzero", fun inputs -> Sh.nonzero_terms inputs > 0);
    (* fails while at least 3 components survive *)
    ("three-terms", fun inputs -> Sh.nonzero_terms inputs >= 3);
    (* fails while operand 0 still sums to something >= 1.0 *)
    ( "sum-ge-1",
      fun inputs ->
        Array.length inputs > 0 && Array.fold_left ( +. ) 0.0 inputs.(0) >= 1.0 );
    (* fails while some component has a long mantissa (> 12 bits) *)
    ( "long-mantissa",
      fun inputs ->
        Array.exists
          (Array.exists (fun v ->
               v <> 0.0
               && Float.is_finite v
               &&
               let m, _ = Float.frexp v in
               Float.ldexp m 13 <> Float.round (Float.ldexp m 13)))
          inputs ) ]

let operands_gen =
  QCheck.Gen.(
    let component =
      oneof
        [ float_bound_inclusive 1e6;
          map (fun (m, e) -> Float.ldexp m (e - 30)) (pair (float_bound_inclusive 2.0) (int_bound 60));
          return 0.0 ]
    in
    list_size (int_range 1 3) (array_size (int_range 1 6) component)
    |> map Array.of_list)

let copy inputs = Array.map Array.copy inputs

let prop_shrunk_still_fails =
  QCheck.Test.make ~count:300 ~name:"shrunk case still fails"
    (QCheck.make operands_gen)
    (fun inputs ->
      List.for_all
        (fun (_, keep) ->
          (not (keep (copy inputs)))
          || keep (Sh.shrink ~keep (copy inputs)))
        predicates)

let prop_shrink_is_fixpoint =
  QCheck.Test.make ~count:300 ~name:"one more shrink pass changes nothing"
    (QCheck.make operands_gen)
    (fun inputs ->
      List.for_all
        (fun (_, keep) ->
          (not (keep (copy inputs)))
          ||
          let once = Sh.shrink ~keep (copy inputs) in
          let twice = Sh.shrink ~keep (copy once) in
          once = twice)
        predicates)

let prop_never_grows =
  QCheck.Test.make ~count:300 ~name:"shrinking never adds terms"
    (QCheck.make operands_gen)
    (fun inputs ->
      List.for_all
        (fun (_, keep) ->
          (not (keep (copy inputs)))
          || Sh.nonzero_terms (Sh.shrink ~keep (copy inputs)) <= Sh.nonzero_terms inputs)
        predicates)

(* A raising keep counts as "no longer failing": the shrinker must
   back the mutation out rather than crash or accept it. *)
let test_keep_exception () =
  let inputs = [| [| 1.0; 2.0; 3.0 |] |] in
  let keep c =
    if c.(0).(1) <> 2.0 then failwith "probe mutated the sacred component"
    else Sh.nonzero_terms c > 0
  in
  let shrunk = Sh.shrink ~keep (copy inputs) in
  Alcotest.(check (float 0.0)) "component the check depends on survives" 2.0 shrunk.(0).(1)

let test_known_minimum () =
  (* the "three-terms" predicate admits exactly 3 surviving terms, and
     greedy zeroing must reach it from any larger failing start *)
  let keep c = Sh.nonzero_terms c >= 3 in
  let inputs = [| Array.init 8 (fun i -> Float.of_int (i + 1) *. 0.37) |] in
  let shrunk = Sh.shrink ~keep inputs in
  Alcotest.(check int) "reaches the 3-term minimum" 3 (Sh.nonzero_terms shrunk)

(* canon projects every candidate onto a reduced-width value domain:
   shrinking under round_p 4 must land on width-4 representable values
   while still failing, and never propose the original value back. *)
let test_canon_rounds_candidates () =
  let canon = Gpu32.Minifloat.round_p 4 in
  let keep c = Array.fold_left ( +. ) 0.0 c.(0) >= 1.0 in
  let inputs = [| [| canon 1.75; canon 0.4375; canon (Float.ldexp 1.0 (-9)) |] |] in
  let shrunk = Sh.shrink ~canon ~keep (copy inputs) in
  Alcotest.(check bool) "still failing" true (keep (copy shrunk));
  Array.iter
    (fun o ->
      Array.iter
        (fun v ->
          if not (v = 0.0 || Gpu32.Minifloat.is_representable_p 4 v) then
            Alcotest.failf "shrunk component %h not width-4 representable" v)
        o)
    shrunk;
  (* and shrinking did make progress *)
  Alcotest.(check bool) "simplified" true (Sh.nonzero_terms shrunk <= Sh.nonzero_terms inputs)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "shrink"
    [ ( "shrink",
        [ q prop_shrunk_still_fails;
          q prop_shrink_is_fixpoint;
          q prop_never_grows;
          Alcotest.test_case "keep exception backs out" `Quick test_keep_exception;
          Alcotest.test_case "known minimum reached" `Quick test_known_minimum;
          Alcotest.test_case "canon projects candidates" `Quick test_canon_rounds_candidates ] ) ]
