(* Stress and soak for the sharded serving layer.

   Test order is load-bearing.  OCaml 5 forbids Unix.fork in a process
   that has ever spawned a domain, so every sharded fixture (which
   forks shard children) runs before any in-process server (which
   spawns io/batcher domains).  Alcotest runs cases sequentially in
   declaration order; the "sharded" group is declared first, the
   single-process slowloris/soak cases after.

   Scale: the concurrent-connection test aims for 4096 connections —
   past select's FD_SETSIZE by 4x — and degrades gracefully where
   ulimit forbids (it keeps as many as the kernel grants and skips
   below a floor).  FPAN_STRESS=1 lengthens the soak. *)

module P = Serve.Protocol
module J = Obs.Json_out

let stress = Sys.getenv_opt "FPAN_STRESS" <> None

let bits = Int64.bits_of_float

let elements_bits_equal a b =
  Array.length a = Array.length b
  && Array.for_all2
       (fun ea eb ->
         Array.length ea = Array.length eb
         && Array.for_all2 (fun x y -> Int64.equal (bits x) (bits y)) ea eb)
       a b

(* a small deterministic mix, distinct operands per index *)
let req_for i =
  let v k = 1.0 +. (float_of_int ((i + k) mod 1009) /. 1009.0) in
  let e k = [| v k; v k *. 1e-17 |] in
  match i mod 3 with
  | 0 ->
      { P.id = i + 1; op = P.Add; tier = P.Mf2; sla = None; deadline_ms = None; prog = [];
        x = [| e 0 |]; y = [| e 1 |]; z = [||] }
  | 1 ->
      { P.id = i + 1; op = P.Mul; tier = P.Mf2; sla = None; deadline_ms = None; prog = [];
        x = [| e 0 |]; y = [| e 1 |]; z = [||] }
  | _ ->
      { P.id = i + 1; op = P.Sqrt; tier = P.Mf2; sla = None; deadline_ms = None; prog = [];
        x = [| e 0 |]; y = [||]; z = [||] }

let frame_of_req i =
  P.frame_of_string (J.to_string_compact (P.request_to_json (req_for i)))

let connect_retry sockaddr =
  let fd = Unix.socket ~cloexec:true (Unix.domain_of_sockaddr sockaddr) SOCK_STREAM 0 in
  let rec go tries =
    try Unix.connect fd sockaddr
    with Unix.Unix_error ((ECONNREFUSED | EAGAIN | EINTR), _, _) when tries < 100 ->
      (* accept-backlog overflow under the storm: back off, retry *)
      Unix.sleepf 0.01;
      go (tries + 1)
  in
  go 0;
  fd

let roundtrip fd i =
  let r = req_for i in
  P.write_frame fd (J.to_string_compact (P.request_to_json r));
  match P.read_frame fd with
  | None -> Alcotest.fail "server closed connection mid-request"
  | Some payload -> (
      match P.response_of_json (J.parse_exn payload) with
      | Ok (P.Result { id; result; _ }) ->
          Alcotest.(check int) "response id" r.P.id id;
          let expect =
            match Serve.Batcher.eval_one r with
            | Ok e -> e
            | Error e -> Alcotest.fail e
          in
          Alcotest.(check bool) "bitwise vs scalar path" true
            (elements_bits_equal result expect)
      | Ok _ -> Alcotest.fail "request was shed or failed"
      | Error e -> Alcotest.fail e)

(* --- sharded fixtures (fork before any domain exists) ----------------- *)

(* Sockets live under a per-process temp directory, never the source
   tree, and are swept (with the directory) on exit — even when a test
   fails mid-fixture, since the server's own unlink never runs for
   SIGKILLed shards. *)
let sock_dir =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "fpan_stress_%d" (Unix.getpid ()))
  in
  (try Unix.mkdir dir 0o700 with Unix.Unix_error (EEXIST, _, _) -> ());
  at_exit (fun () ->
      (try
         Array.iter
           (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
           (Sys.readdir dir)
       with Sys_error _ -> ());
      try Unix.rmdir dir with Unix.Unix_error _ -> ());
  dir

let sock_counter = ref 0

let fresh_sock () =
  incr sock_counter;
  Filename.concat sock_dir
    (Printf.sprintf "serve_stress_%d_%d.sock" (Unix.getpid ()) !sock_counter)

let with_fleet ?(shards = 2) ?cache_capacity f =
  let path = fresh_sock () in
  let t =
    Serve.Shard.start ~addr:(Serve.Server.Unix_path path) ~shards ~sched_workers:1
      ~queue_capacity:256 ~max_batch:1 ~window_us:0. ?cache_capacity ()
  in
  Fun.protect ~finally:(fun () -> Serve.Shard.stop t) (fun () -> f t (Unix.ADDR_UNIX path))

(* 4096 concurrent connections — 4x past FD_SETSIZE — all open at
   once, each completing one bitwise-checked request.  Where ulimit
   denies descriptors the test keeps what it got; below a minimum
   floor there is nothing meaningful left to assert, so it skips. *)
let test_concurrent_connections () =
  with_fleet (fun fleet sockaddr ->
      let target = 4096 in
      let conns = ref [] in
      let n = ref 0 in
      (try
         while !n < target do
           conns := connect_retry sockaddr :: !conns;
           incr n
         done
       with Unix.Unix_error ((EMFILE | ENFILE), _, _) -> ());
      let conns = Array.of_list (List.rev !conns) in
      Fun.protect
        ~finally:(fun () ->
          Array.iter (fun fd -> try Unix.close fd with _ -> ()) conns)
        (fun () ->
          let got = Array.length conns in
          if got < 1024 then begin
            Printf.printf "ulimit granted only %d fds; skipping\n%!" got;
            Alcotest.skip ()
          end;
          (* every connection is open simultaneously; requests complete
             on each while all the others stay connected *)
          Array.iteri (fun i fd -> roundtrip fd i) conns;
          Alcotest.(check bool)
            (Printf.sprintf "held %d concurrent connections" got)
            true (got >= 1024);
          if got >= target then
            Alcotest.(check int) "full target reached" target got;
          (* both shards took a share *)
          let s = Serve.Shard.stats fleet in
          Array.iteri
            (fun i d ->
              Alcotest.(check bool)
                (Printf.sprintf "shard %d dispatched (%d)" i d)
                true (d > 0))
            s.Serve.Shard.dispatched))

(* Mass-disconnect storms: hundreds of connections vanish abruptly —
   some mid-frame — and the fleet keeps serving new arrivals. *)
let test_disconnect_storm () =
  with_fleet (fun _fleet sockaddr ->
      for round = 1 to 3 do
        let conns = Array.init 512 (fun _ -> connect_retry sockaddr) in
        Array.iteri
          (fun i fd ->
            match i mod 3 with
            | 0 ->
                (* complete frame, then vanish without reading the reply *)
                let s = frame_of_req i in
                ignore (Unix.write_substring fd s 0 (String.length s))
            | 1 ->
                (* half a frame: the deframer holds a partial cursor *)
                let s = frame_of_req i in
                ignore (Unix.write_substring fd s 0 (String.length s / 2))
            | _ -> ())
          conns;
        (* the storm: everyone disconnects at once *)
        Array.iter (fun fd -> try Unix.close fd with _ -> ()) conns;
        (* service is undisturbed for the next client *)
        let fd = connect_retry sockaddr in
        Fun.protect
          ~finally:(fun () -> try Unix.close fd with _ -> ())
          (fun () -> roundtrip fd (round * 1000))
      done)

(* Kill a shard mid-service: the parent detects the death, forks a
   replacement, and the endpoint keeps answering. *)
let test_shard_death_restart () =
  with_fleet (fun fleet sockaddr ->
      (* prove service first *)
      let fd = connect_retry sockaddr in
      roundtrip fd 1;
      (try Unix.close fd with _ -> ());
      (match Serve.Shard.pids fleet with
      | pid :: _ -> Unix.kill pid Sys.sigkill
      | [] -> Alcotest.fail "no live shards");
      (* wait for the reaper to notice and re-fork *)
      let deadline = Unix.gettimeofday () +. 5.0 in
      while
        (Serve.Shard.stats fleet).Serve.Shard.restarts < 1
        && Unix.gettimeofday () < deadline
      do
        Unix.sleepf 0.02
      done;
      Alcotest.(check int) "restart recorded" 1
        (Serve.Shard.stats fleet).Serve.Shard.restarts;
      (* a shard killed young counts as a quick death, so the re-fork
         may sit out one short backoff delay before the slot refills *)
      let deadline = Unix.gettimeofday () +. 5.0 in
      while
        List.length (Serve.Shard.pids fleet) < 2
        && Unix.gettimeofday () < deadline
      do
        Unix.sleepf 0.02
      done;
      Alcotest.(check int) "fleet back to strength" 2
        (List.length (Serve.Shard.pids fleet));
      (* and the endpoint still serves — several conns so both the
         survivor and the replacement take traffic *)
      for i = 0 to 7 do
        let fd = connect_retry sockaddr in
        Fun.protect
          ~finally:(fun () -> try Unix.close fd with _ -> ())
          (fun () -> roundtrip fd (2000 + i))
      done)

(* A crash-looping shard must not pin the distributor in a fork storm:
   every replacement fork is chaos-doomed (the child aborts before
   building anything), so consecutive quick deaths have to accumulate
   exponential re-fork delays.  Disarming ends the storm and the fleet
   must recover to full strength and keep serving. *)
let test_refork_backoff () =
  with_fleet (fun fleet sockaddr ->
      let fd = connect_retry sockaddr in
      roundtrip fd 1;
      (try Unix.close fd with _ -> ());
      (* every fork from here aborts in the child *)
      Chaos.Injector.arm ~seed:0
        [ (Chaos.Fault.Fork, [ (Chaos.Fault.Abort_child, 1) ]) ];
      Fun.protect
        ~finally:(fun () -> Chaos.Injector.disarm ())
        (fun () ->
          (match Serve.Shard.pids fleet with
          | pid :: _ -> Unix.kill pid Sys.sigkill
          | [] -> Alcotest.fail "no live shards");
          let deadline = Unix.gettimeofday () +. 15.0 in
          while
            (Serve.Shard.stats fleet).Serve.Shard.backoff_delays < 2
            && Unix.gettimeofday () < deadline
          do
            Unix.sleepf 0.02
          done;
          let s = Serve.Shard.stats fleet in
          Alcotest.(check bool)
            (Printf.sprintf "backoff delays recorded (%d)" s.Serve.Shard.backoff_delays)
            true
            (s.Serve.Shard.backoff_delays >= 2);
          Alcotest.(check bool)
            (Printf.sprintf "every death was reaped (%d)" s.Serve.Shard.restarts)
            true
            (s.Serve.Shard.restarts >= 2);
          (* the surviving shard kept the endpoint alive all along *)
          let fd = connect_retry sockaddr in
          roundtrip fd 2;
          (try Unix.close fd with _ -> ()));
      (* storm over: the next delayed re-fork sticks *)
      let deadline = Unix.gettimeofday () +. 15.0 in
      while
        List.length (Serve.Shard.pids fleet) < 2
        && Unix.gettimeofday () < deadline
      do
        Unix.sleepf 0.05
      done;
      Alcotest.(check int) "fleet recovered to strength" 2
        (List.length (Serve.Shard.pids fleet));
      (* deadline-bounded client against the recovered fleet *)
      let cl = Serve.Client.connect_sockaddr ~deadline_ms:10_000 sockaddr in
      Fun.protect
        ~finally:(fun () -> Serve.Client.close cl)
        (fun () ->
          let r = req_for 3 in
          match Serve.Client.call_retry ~seed:0 cl r with
          | P.Result { result; _ } ->
              let expect =
                match Serve.Batcher.eval_one r with
                | Ok e -> e
                | Error e -> Alcotest.fail e
              in
              Alcotest.(check bool) "post-recovery bitwise" true
                (elements_bits_equal result expect)
          | _ -> Alcotest.fail "post-recovery request not served"))

(* --- single-process cases (domains fine; no forking after this) ------- *)

let with_server ?cache_capacity f =
  let path = fresh_sock () in
  Runtime.Sched.with_sched ~workers:2 (fun sched ->
      let srv =
        Serve.Server.start ~sched ~addr:(Serve.Server.Unix_path path)
          ~queue_capacity:256 ?cache_capacity ()
      in
      Fun.protect
        ~finally:(fun () -> Serve.Server.stop srv)
        (fun () -> f srv (Unix.ADDR_UNIX path)))

(* Slowloris: one client trickles a frame a byte at a time through the
   cursor deframer while a fast client completes a hundred requests on
   the side.  The slow frame must still evaluate correctly once its
   last byte lands, and the slow client must never stall the fast
   one. *)
let test_slowloris () =
  with_server (fun _srv sockaddr ->
      let slow = connect_retry sockaddr in
      let fast = connect_retry sockaddr in
      Fun.protect
        ~finally:(fun () ->
          (try Unix.close slow with _ -> ());
          try Unix.close fast with _ -> ())
        (fun () ->
          let sreq = req_for 77 in
          let sframe = frame_of_req 77 in
          ignore sreq;
          let n = String.length sframe in
          for k = 0 to n - 1 do
            ignore (Unix.write_substring slow sframe k 1);
            (* fast traffic interleaves with every trickled byte *)
            if k mod 2 = 0 then roundtrip fast (k mod 97)
          done;
          match P.read_frame slow with
          | None -> Alcotest.fail "slow connection dropped"
          | Some payload -> (
              match P.response_of_json (J.parse_exn payload) with
              | Ok (P.Result { id; result; _ }) ->
                  Alcotest.(check int) "slow response id" sreq.P.id id;
                  let expect =
                    match Serve.Batcher.eval_one sreq with
                    | Ok e -> e
                    | Error e -> Alcotest.fail e
                  in
                  Alcotest.(check bool) "slow response bitwise" true
                    (elements_bits_equal result expect)
              | _ -> Alcotest.fail "slow request not served")))

let fd_count () = Array.length (Sys.readdir "/proc/self/fd")

(* Timed soak: churn connections — orderly and abrupt — against one
   server and assert the process descriptor count returns exactly to
   its baseline.  Both sides of every socket live in this process, so
   a leak on either the client or the server path shows up here. *)
let test_soak_no_fd_leak () =
  if not (Sys.file_exists "/proc/self/fd") then Alcotest.skip ();
  with_server ~cache_capacity:64 (fun _srv sockaddr ->
      let baseline = fd_count () in
      let deadline = Unix.gettimeofday () +. if stress then 10.0 else 2.0 in
      let i = ref 0 in
      while Unix.gettimeofday () < deadline do
        incr i;
        let fd = connect_retry sockaddr in
        (match !i mod 5 with
        | 0 ->
            (* abrupt: request written, reply never read, fd slammed *)
            let s = frame_of_req !i in
            ignore (Unix.write_substring fd s 0 (String.length s))
        | 1 ->
            (* mid-frame abandon *)
            let s = frame_of_req !i in
            ignore (Unix.write_substring fd s 0 (max 1 (String.length s / 3)))
        | _ -> roundtrip fd !i);
        try Unix.close fd with _ -> ()
      done;
      (* let the io domain sweep the corpses, then the count must be
         exactly the baseline — zero descriptors leaked *)
      let settle = Unix.gettimeofday () +. 3.0 in
      while fd_count () > baseline && Unix.gettimeofday () < settle do
        Unix.sleepf 0.05
      done;
      Alcotest.(check int)
        (Printf.sprintf "fd count after %d churned connections" !i)
        baseline (fd_count ()))

let () =
  Alcotest.run "serve_stress"
    [ ( "sharded",
        [ Alcotest.test_case "4096 concurrent connections" `Slow
            test_concurrent_connections;
          Alcotest.test_case "mass-disconnect storms" `Slow test_disconnect_storm;
          Alcotest.test_case "shard death and restart" `Slow
            test_shard_death_restart;
          Alcotest.test_case "re-fork storm backoff" `Slow
            test_refork_backoff ] );
      ( "single",
        [ Alcotest.test_case "slowloris byte-at-a-time" `Slow test_slowloris;
          Alcotest.test_case "soak: zero fd leaks" `Slow test_soak_no_fd_leak ] ) ]
