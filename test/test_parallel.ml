(* Tests for the domain pool. *)

let test_parallel_for_covers () =
  Parallel.Pool.with_pool ~domains:4 (fun pool ->
      let n = 1000 in
      let hits = Array.make n 0 in
      (* Distinct indices: no synchronization needed. *)
      Parallel.Pool.parallel_for pool ~lo:0 ~hi:n (fun i -> hits.(i) <- hits.(i) + 1);
      Alcotest.(check bool) "each index once" true (Array.for_all (fun h -> h = 1) hits))

let test_parallel_for_empty () =
  Parallel.Pool.with_pool ~domains:2 (fun pool ->
      let fired = ref false in
      Parallel.Pool.parallel_for pool ~lo:5 ~hi:5 (fun _ -> fired := true);
      Alcotest.(check bool) "empty range" false !fired)

let test_reduce_sum () =
  Parallel.Pool.with_pool ~domains:3 (fun pool ->
      let n = 10_000 in
      let s =
        Parallel.Pool.parallel_reduce pool ~lo:0 ~hi:n ~init:0 ~map:(fun i -> i) ~combine:( + )
      in
      Alcotest.(check int) "gauss" (n * (n - 1) / 2) s)

let test_reduce_deterministic_float () =
  (* Chunked combination must not depend on worker count for a fixed
     chunking; compare 1-domain and k-domain pools on an associative
     reduction (int max) and on float sums with identical chunking
     (sequential fold as the witness). *)
  let n = 5000 in
  let data = Array.init n (fun i -> Float.sin (Float.of_int i)) in
  let via domains =
    Parallel.Pool.with_pool ~domains (fun pool ->
        Parallel.Pool.parallel_reduce pool ~lo:0 ~hi:n ~init:0.0
          ~map:(fun i -> data.(i))
          ~combine:( +. ))
  in
  (* Determinism within the same pool size: run twice. *)
  let a = via 4 and b = via 4 in
  Alcotest.(check (float 0.0)) "same pool size reproducible" a b

let test_pool_reuse () =
  Parallel.Pool.with_pool ~domains:2 (fun pool ->
      for _ = 1 to 50 do
        let acc = ref 0 in
        let m = Mutex.create () in
        Parallel.Pool.parallel_for pool ~lo:0 ~hi:100 (fun _ ->
            Mutex.lock m;
            incr acc;
            Mutex.unlock m);
        Alcotest.(check int) "reused batch" 100 !acc
      done)

let test_single_domain_inline () =
  Parallel.Pool.with_pool ~domains:1 (fun pool ->
      Alcotest.(check int) "size" 1 (Parallel.Pool.size pool);
      let s =
        Parallel.Pool.parallel_reduce pool ~lo:0 ~hi:100 ~init:0 ~map:(fun i -> i) ~combine:( + )
      in
      Alcotest.(check int) "inline" 4950 s)

let test_exception_in_job_propagates () =
  (* A raising job must not wedge the batch accounting, and the
     exception must re-raise on the calling domain. *)
  Parallel.Pool.with_pool ~domains:3 (fun pool ->
      let raised =
        match
          Parallel.Pool.parallel_for pool ~lo:0 ~hi:100 (fun i ->
              if i = 50 then failwith "boom")
        with
        | () -> None
        | exception e -> Some e
      in
      (match raised with
      | Some (Failure msg) -> Alcotest.(check string) "propagated" "boom" msg
      | Some e -> Alcotest.failf "unexpected exception %s" (Printexc.to_string e)
      | None -> Alcotest.fail "exception was swallowed");
      (* the pool survives and can run another batch *)
      let s =
        Parallel.Pool.parallel_reduce pool ~lo:0 ~hi:10 ~init:0 ~map:(fun i -> i) ~combine:( + )
      in
      Alcotest.(check int) "pool alive after exception" 45 s)

let test_exception_from_worker_chunk () =
  (* The raising index lands in a worker's chunk (not the caller's
     first chunk): it must still propagate. *)
  Parallel.Pool.with_pool ~domains:4 (fun pool ->
      let raised =
        match Parallel.Pool.parallel_for pool ~lo:0 ~hi:100 (fun i -> if i = 99 then failwith "w") with
        | () -> false
        | exception Failure _ -> true
      in
      Alcotest.(check bool) "worker-chunk exception propagated" true raised)

let test_run_batch_single_domain_drains () =
  (* A 1-domain pool has no workers: the caller must drain queued jobs
     itself instead of deadlocking on batch completion. *)
  Parallel.Pool.with_pool ~domains:1 (fun pool ->
      let hits = Array.make 8 0 in
      let jobs = List.init 8 (fun i () -> hits.(i) <- hits.(i) + 1) in
      Parallel.Pool.run_batch pool jobs;
      Alcotest.(check bool) "all jobs ran" true (Array.for_all (fun h -> h = 1) hits))

let test_run_batch_exception_still_runs_rest () =
  Parallel.Pool.with_pool ~domains:1 (fun pool ->
      let hits = Array.make 6 0 in
      let jobs =
        List.init 6 (fun i () -> if i = 2 then failwith "mid" else hits.(i) <- hits.(i) + 1)
      in
      let raised = match Parallel.Pool.run_batch pool jobs with
        | () -> false
        | exception Failure _ -> true
      in
      Alcotest.(check bool) "raised" true raised;
      let others = List.filteri (fun i _ -> i <> 2) (Array.to_list hits) in
      Alcotest.(check bool) "other jobs still ran" true (List.for_all (fun h -> h = 1) others))

let test_large_fanout () =
  Parallel.Pool.with_pool ~domains:4 (fun pool ->
      let n = 100_000 in
      let s =
        Parallel.Pool.parallel_reduce pool ~lo:0 ~hi:n ~init:0
          ~map:(fun i -> if i land 1 = 0 then 1 else -1)
          ~combine:( + )
      in
      Alcotest.(check int) "alternating" 0 s)

let test_default_domain_count () =
  let pool = Parallel.Pool.create () in
  Alcotest.(check bool) "at least one" true (Parallel.Pool.size pool >= 1);
  Parallel.Pool.shutdown pool

let () =
  Alcotest.run "parallel"
    [ ( "pool",
        [ Alcotest.test_case "parallel_for covers" `Quick test_parallel_for_covers;
          Alcotest.test_case "empty range" `Quick test_parallel_for_empty;
          Alcotest.test_case "reduce sum" `Quick test_reduce_sum;
          Alcotest.test_case "reduce deterministic" `Quick test_reduce_deterministic_float;
          Alcotest.test_case "pool reuse" `Quick test_pool_reuse;
          Alcotest.test_case "single domain" `Quick test_single_domain_inline;
          Alcotest.test_case "exception in job" `Quick test_exception_in_job_propagates;
          Alcotest.test_case "exception from worker chunk" `Quick test_exception_from_worker_chunk;
          Alcotest.test_case "run_batch 1-domain drains" `Quick test_run_batch_single_domain_drains;
          Alcotest.test_case "run_batch exception runs rest" `Quick
            test_run_batch_exception_still_runs_rest;
          Alcotest.test_case "large fanout" `Quick test_large_fanout;
          Alcotest.test_case "default domains" `Quick test_default_domain_count ] ) ]
