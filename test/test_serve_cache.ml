(* The response cache's two contracts.  Correctness: a cached response
   is bitwise the uncached one, for arbitrary operand bit patterns —
   NaN payloads, signed zero, subnormals, infinities — across every
   scalar op and tier (qcheck drives a real server twice per request
   and compares both replies against the scalar path).  Mechanics: the
   LRU is bounded, evicts least-recently-used first, and keys on exact
   bit patterns so lookalike operands never collide. *)

module P = Serve.Protocol
module C = Serve.Cache

let bits = Int64.bits_of_float

(* --- keying exactness ------------------------------------------------ *)

let mk ?sla ?deadline_ms ?(op = P.Add) ?(tier = P.Mf2) ?(prog = []) ?(z = [||]) x y =
  { P.id = 1; op; tier; sla; deadline_ms; prog; x; y; z }

let key_exn r =
  match C.key_of_request r with
  | Some k -> k
  | None -> Alcotest.fail "request unexpectedly uncacheable"

let test_keying () =
  let base = mk [| [| 1.0; 0.0 |] |] [| [| 2.0; 0.0 |] |] in
  (* the keys that must differ: same printed value, different bits *)
  let neg_zero = mk [| [| 1.0; -0.0 |] |] [| [| 2.0; 0.0 |] |] in
  Alcotest.(check bool) "0.0 vs -0.0 distinct" false
    (String.equal (key_exn base) (key_exn neg_zero));
  let nan1 = Int64.float_of_bits 0x7ff8000000000001L in
  let nan2 = Int64.float_of_bits 0x7ff8000000000002L in
  let k1 = key_exn (mk [| [| nan1; 0.0 |] |] [| [| 2.0; 0.0 |] |]) in
  let k2 = key_exn (mk [| [| nan2; 0.0 |] |] [| [| 2.0; 0.0 |] |]) in
  Alcotest.(check bool) "NaN payloads distinct" false (String.equal k1 k2);
  let sub1 = mk [| [| 4.9e-324; 0.0 |] |] [| [| 2.0; 0.0 |] |] in
  let sub2 = mk [| [| 9.9e-324; 0.0 |] |] [| [| 2.0; 0.0 |] |] in
  Alcotest.(check bool) "subnormals distinct" false
    (String.equal (key_exn sub1) (key_exn sub2));
  (* op / tier / program chain are part of the identity *)
  Alcotest.(check bool) "ops distinct" false
    (String.equal (key_exn base) (key_exn (mk ~op:P.Mul [| [| 1.0; 0.0 |] |] [| [| 2.0; 0.0 |] |])));
  Alcotest.(check bool) "tiers distinct" false
    (String.equal
       (key_exn (mk ~op:P.Sqrt [| [| 1.0; 0.0 |] |] [||]))
       (key_exn (mk ~op:P.Sqrt ~tier:P.Mf3 [| [| 1.0; 0.0; 0.0 |] |] [||])));
  (* the uncacheable shapes *)
  (* the SLA exponent is part of the identity: a loose-bound entry must
     never answer a tighter-bound request, and an SLA request must never
     collide with the fixed-tier request carrying the same operands *)
  let sla80 = mk ~sla:80 [| [| 1.0; 0.0 |] |] [| [| 2.0; 0.0 |] |] in
  let sla120 = mk ~sla:120 [| [| 1.0; 0.0 |] |] [| [| 2.0; 0.0 |] |] in
  Alcotest.(check bool) "sla exponents distinct" false
    (String.equal (key_exn sla80) (key_exn sla120));
  Alcotest.(check bool) "sla vs fixed-tier distinct" false
    (String.equal (key_exn sla80) (key_exn base));
  (* the uncacheable shapes *)
  Alcotest.(check bool) "deadline is uncacheable" true
    (C.key_of_request (mk ~deadline_ms:5.0 [| [| 1.0; 0.0 |] |] [| [| 2.0; 0.0 |] |])
     = None);
  Alcotest.(check bool) "stats is uncacheable" true
    (C.key_of_request
       { P.id = 1; op = P.Stats; tier = P.Mf2; sla = None; deadline_ms = None; prog = [];
         x = [||]; y = [||]; z = [||] }
     = None);
  let big = Array.init 9 (fun i -> [| float_of_int i; 0.0 |]) in
  Alcotest.(check bool) "large vector operand is uncacheable" true
    (C.key_of_request (mk ~op:P.Sum big [||]) = None)

(* --- LRU mechanics ---------------------------------------------------- *)

let v f = { C.result = [| [| f |] |]; chosen = None; bound = None }

let lru_keys c = List.rev (C.fold_lru (fun k acc -> k :: acc) c [])

let test_eviction_order () =
  let c = C.create ~capacity:3 in
  C.add c "a" (v 1.0);
  C.add c "b" (v 2.0);
  C.add c "c" (v 3.0);
  Alcotest.(check (list string)) "LRU-first after fills" [ "a"; "b"; "c" ]
    (lru_keys c);
  (* touching "a" moves it to MRU, so "b" becomes the victim *)
  (match C.find c "a" with
  | Some r ->
      Alcotest.(check int64) "touched value intact" (bits 1.0)
        (bits r.C.result.(0).(0))
  | None -> Alcotest.fail "resident key missed");
  C.add c "d" (v 4.0);
  Alcotest.(check (list string)) "b evicted, not a" [ "c"; "a"; "d" ] (lru_keys c);
  Alcotest.(check bool) "evicted key misses" true (C.find c "b" = None);
  let s = C.stats c in
  Alcotest.(check int) "size at capacity" 3 s.C.size;
  Alcotest.(check int) "one eviction" 1 s.C.evictions;
  (* re-adding an existing key refreshes in place: no eviction *)
  C.add c "c" (v 30.0);
  Alcotest.(check int) "refresh does not grow" 3 (C.stats c).C.size;
  Alcotest.(check int) "refresh does not evict" 1 (C.stats c).C.evictions;
  (match C.find c "c" with
  | Some r ->
      Alcotest.(check int64) "refreshed value" (bits 30.0) (bits r.C.result.(0).(0))
  | None -> Alcotest.fail "refreshed key missed");
  Alcotest.(check (list string)) "refresh moved to MRU" [ "a"; "d"; "c" ] (lru_keys c)

let test_capacity_bound () =
  (* arbitrary add/find interleavings never grow past capacity, and
     the list view always agrees with the table size *)
  let prop ops =
    let c = C.create ~capacity:4 in
    List.iter
      (fun (k, is_add) ->
        let key = "k" ^ string_of_int (k mod 10) in
        if is_add then C.add c key (v (float_of_int k)) else ignore (C.find c key);
        let s = C.stats c in
        if s.C.size > 4 then failwith "capacity exceeded";
        if List.length (lru_keys c) <> s.C.size then failwith "list/table disagree")
      ops;
    true
  in
  QCheck.Test.check_exn
    (QCheck.Test.make ~count:200 ~name:"bounded LRU"
       QCheck.(list (pair small_nat bool))
       prop)

let test_disabled () =
  let c = C.create ~capacity:0 in
  C.add c "a" (v 1.0);
  Alcotest.(check bool) "disabled never stores" true (C.find c "a" = None);
  let s = C.stats c in
  Alcotest.(check int) "disabled size" 0 s.C.size;
  Alcotest.(check int) "disabled hits" 0 s.C.hits

let test_kind_counters () =
  (* hits and misses are attributed to the kind the caller names, and
     the stats view keeps the per-kind split consistent with the
     global counters *)
  let c = C.create ~capacity:8 in
  ignore (C.find ~kind:"add" c "k1");
  C.add c "k1" (v 1.0);
  ignore (C.find ~kind:"add" c "k1");
  ignore (C.find ~kind:"add" c "k1");
  ignore (C.find ~kind:"sla:add" c "k2");
  C.add c "k2" (v 2.0);
  ignore (C.find ~kind:"sla:add" c "k2");
  ignore (C.find c "k3") (* default kind: "other" *);
  let s = C.stats c in
  Alcotest.(check int) "global hits" 3 s.C.hits;
  Alcotest.(check int) "global misses" 3 s.C.misses;
  let by k =
    match List.find_opt (fun (ks : C.kind_stats) -> ks.C.kind = k) s.C.by_kind with
    | Some ks -> (ks.C.k_hits, ks.C.k_misses)
    | None -> Alcotest.fail (Printf.sprintf "kind %s missing from stats" k)
  in
  Alcotest.(check (pair int int)) "add split" (2, 1) (by "add");
  Alcotest.(check (pair int int)) "sla:add split" (1, 1) (by "sla:add");
  Alcotest.(check (pair int int)) "other split" (0, 1) (by "other");
  let total_h = List.fold_left (fun a (k : C.kind_stats) -> a + k.C.k_hits) 0 s.C.by_kind in
  let total_m =
    List.fold_left (fun a (k : C.kind_stats) -> a + k.C.k_misses) 0 s.C.by_kind
  in
  Alcotest.(check int) "kinds sum to global hits" s.C.hits total_h;
  Alcotest.(check int) "kinds sum to global misses" s.C.misses total_m;
  (* kind attribution names: op name, "sla:"-prefixed for SLA requests *)
  Alcotest.(check string) "fixed-tier kind" "add"
    (C.kind_of_request (mk [| [| 1.0; 0.0 |] |] [| [| 2.0; 0.0 |] |]));
  Alcotest.(check string) "sla kind" "sla:add"
    (C.kind_of_request (mk ~sla:80 [| [| 1.0; 0.0 |] |] [| [| 2.0; 0.0 |] |]))

(* --- cached = uncached, bitwise, through a real server ---------------- *)

let sock_dir =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "fpan_cache_%d" (Unix.getpid ()))
  in
  (try Unix.mkdir dir 0o700 with Unix.Unix_error (EEXIST, _, _) -> ());
  at_exit (fun () ->
      (try
         Array.iter
           (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
           (Sys.readdir dir)
       with Sys_error _ -> ());
      try Unix.rmdir dir with Unix.Unix_error _ -> ());
  dir

let sock_counter = ref 0

let fresh_sock () =
  incr sock_counter;
  Filename.concat sock_dir
    (Printf.sprintf "serve_cache_%d_%d.sock" (Unix.getpid ()) !sock_counter)

let scalar_ops = [| P.Add; P.Mul; P.Div; P.Sqrt; P.Exp; P.Log; P.Sin |]
let all_tiers = [| P.Mf2; P.Mf3; P.Mf4 |]

let special_bits =
  [ 0x7ff8000000000001L;  (* NaN, low payload bit *)
    0xfff8000000000042L;  (* negative NaN, payload 0x42 *)
    Int64.bits_of_float Float.nan;
    Int64.bits_of_float Float.infinity;
    Int64.bits_of_float Float.neg_infinity;
    0x8000000000000000L;  (* -0.0 *)
    0x0000000000000000L;
    0x0000000000000001L;  (* smallest subnormal *)
    0x8000000000000001L;
    Int64.bits_of_float Float.max_float;
    Int64.bits_of_float Float.min_float;
    Int64.bits_of_float 1.0 ]

let gen_bits64 =
  (* two 32-bit halves: every double bit pattern is reachable *)
  QCheck.Gen.(
    map2
      (fun hi lo ->
        Int64.logor
          (Int64.shift_left (Int64.of_int hi) 32)
          (Int64.of_int lo))
      (int_bound 0xffffffff) (int_bound 0xffffffff))

let gen_component =
  QCheck.Gen.(
    map Int64.float_of_bits
      (frequency [ (2, oneofl special_bits); (3, gen_bits64) ]))

let gen_request =
  QCheck.Gen.(
    int_range 0 (Array.length scalar_ops - 1) >>= fun oi ->
    int_range 0 (Array.length all_tiers - 1) >>= fun ti ->
    let op = scalar_ops.(oi) and tier = all_tiers.(ti) in
    let terms = P.tier_terms tier in
    let element = array_size (return terms) gen_component in
    element >>= fun e1 ->
    element >>= fun e2 ->
    let binary = match op with P.Add | P.Mul | P.Div -> true | _ -> false in
    return
      { P.id = 1; op; tier; sla = None; deadline_ms = None; prog = [];
        x = [| e1 |]; y = (if binary then [| e2 |] else [||]); z = [||] })

let arb_request =
  QCheck.make
    ~print:(fun r -> Obs.Json_out.to_string_compact (P.request_to_json r))
    gen_request

let elements_bits_equal a b =
  Array.length a = Array.length b
  && Array.for_all2
       (fun ea eb ->
         Array.length ea = Array.length eb
         && Array.for_all2 (fun x y -> Int64.equal (bits x) (bits y)) ea eb)
       a b

let test_cached_bitwise () =
  let path = fresh_sock () in
  Runtime.Sched.with_sched ~workers:2 (fun sched ->
      let srv =
        Serve.Server.start ~sched ~addr:(Serve.Server.Unix_path path)
          ~queue_capacity:64 ~max_batch:8 ~window_us:100. ~cache_capacity:1024 ()
      in
      Fun.protect
        ~finally:(fun () -> Serve.Server.stop srv)
        (fun () ->
          let cl = Serve.Client.connect (Serve.Server.Unix_path path) in
          Fun.protect
            ~finally:(fun () -> Serve.Client.close cl)
            (fun () ->
              let prop req =
                let expect =
                  match Serve.Batcher.eval_one req with
                  | Ok r -> r
                  | Error e -> failwith ("scalar path refused: " ^ e)
                in
                let once tag =
                  match Serve.Client.call cl req with
                  | P.Result { result; _ } ->
                      if not (elements_bits_equal result expect) then
                        failwith (tag ^ " response differs from scalar path");
                      result
                  | _ -> failwith (tag ^ " response not a result")
                in
                (* the first call populates; the second answers from
                   the LRU — both must be bit-for-bit the scalar path *)
                let cold = once "cold" in
                let warm = once "warm" in
                if not (elements_bits_equal cold warm) then
                  failwith "hit differs from miss";
                true
              in
              QCheck.Test.check_exn
                (QCheck.Test.make ~count:120 ~name:"cached = uncached, bitwise"
                   arb_request prop);
              (* the warm calls really did come from the cache *)
              let s = Serve.Server.cache_stats srv in
              Alcotest.(check bool)
                (Printf.sprintf "cache hits recorded (%d)" s.C.hits)
                true (s.C.hits > 0))))

(* --- cache behavior under injected faults ----------------------------- *)

(* A client that vanishes mid-reply while being answered from the LRU
   must never poison the entry: qcheck populates the cache, slams a
   raw connection shut the instant the cached-hit reply is in flight,
   then re-asks — the survivor hit must still be bitwise the scalar
   path. *)
let test_disconnect_no_poison () =
  let path = fresh_sock () in
  Runtime.Sched.with_sched ~workers:2 (fun sched ->
      let srv =
        Serve.Server.start ~sched ~addr:(Serve.Server.Unix_path path)
          ~queue_capacity:64 ~max_batch:8 ~window_us:100. ~cache_capacity:1024 ()
      in
      Fun.protect
        ~finally:(fun () -> Serve.Server.stop srv)
        (fun () ->
          let cl = Serve.Client.connect ~deadline_ms:30_000 (Serve.Server.Unix_path path) in
          Fun.protect
            ~finally:(fun () -> Serve.Client.close cl)
            (fun () ->
              let sockaddr = Unix.ADDR_UNIX path in
              let prop req =
                let expect =
                  match Serve.Batcher.eval_one req with
                  | Ok r -> r
                  | Error e -> failwith ("scalar path refused: " ^ e)
                in
                let ask tag =
                  match Serve.Client.call cl req with
                  | P.Result { result; _ } ->
                      if not (elements_bits_equal result expect) then
                        failwith (tag ^ " differs from scalar path")
                  | _ -> failwith (tag ^ " not a result")
                in
                (* populate, then the mid-stream disconnect: a raw conn
                   sends the (now cached) request and slams shut
                   without reading the hit reply *)
                ask "cold";
                let fd =
                  Unix.socket ~cloexec:true
                    (Unix.domain_of_sockaddr sockaddr)
                    SOCK_STREAM 0
                in
                (try
                   Unix.connect fd sockaddr;
                   let frame =
                     P.frame_of_string
                       (Obs.Json_out.to_string_compact (P.request_to_json req))
                   in
                   ignore (Unix.write_substring fd frame 0 (String.length frame))
                 with _ -> ());
                (try Unix.close fd with _ -> ());
                (* the entry must have survived the wreck intact *)
                ask "post-disconnect hit";
                true
              in
              QCheck.Test.check_exn
                (QCheck.Test.make ~count:60
                   ~name:"mid-stream disconnect never poisons the LRU"
                   arb_request prop);
              let s = Serve.Server.cache_stats srv in
              Alcotest.(check bool)
                (Printf.sprintf "hits actually exercised (%d)" s.C.hits)
                true (s.C.hits > 0))))

(* Shed requests must never populate the cache: jam the batcher with
   uncacheable slow work so cacheable flood requests shed queue_full,
   then check the cache holds exactly the answered distinct requests
   and nothing more. *)
let test_shed_never_cached () =
  let path = fresh_sock () in
  Runtime.Sched.with_sched ~workers:2 (fun sched ->
      let srv =
        Serve.Server.start ~sched ~addr:(Serve.Server.Unix_path path)
          ~queue_capacity:4 ~max_batch:1 ~window_us:0. ~cache_capacity:1024 ()
      in
      Fun.protect
        ~finally:(fun () -> Serve.Server.stop srv)
        (fun () ->
          let addr = Serve.Server.Unix_path path in
          let slow = Serve.Client.connect ~deadline_ms:60_000 addr in
          let flood = Serve.Client.connect ~deadline_ms:60_000 addr in
          Fun.protect
            ~finally:(fun () ->
              Serve.Client.close slow;
              Serve.Client.close flood)
            (fun () ->
              (* poison: mf4 poly-eval over a large coefficient vector —
                 far past the cacheable operand bound, so the cache sees
                 only the flood *)
              let coeff i =
                [| 1.0 +. float_of_int i; 1e-17; 1e-34; 1e-51 |]
              in
              let poisons =
                List.init 5 (fun i ->
                    { P.id = i + 1; op = P.Poly_eval; tier = P.Mf4; sla = None;
                      deadline_ms = None; prog = [];
                      x = Array.init 20_000 coeff;
                      y = [| [| 0.9999999; 1e-18; 1e-35; 1e-52 |] |];
                      z = [||] })
              in
              List.iter (Serve.Client.send slow) poisons;
              Unix.sleepf 0.05;
              (* flood: distinct cacheable requests; some must shed *)
              let floods =
                List.init 64 (fun i ->
                    mk ~op:P.Add
                      [| [| 3.0 +. float_of_int i; 1e-18 |] |]
                      [| [| 2.0; 0.0 |] |]
                    |> fun r -> { r with P.id = i + 100 })
              in
              let resps = Serve.Client.call_many flood floods in
              let ok =
                List.length
                  (List.filter (function P.Result _ -> true | _ -> false) resps)
              in
              let shed =
                List.length
                  (List.filter
                     (function
                       | P.Shed { reason = "queue_full"; _ } -> true
                       | _ -> false)
                     resps)
              in
              Alcotest.(check int) "every flood answered" 64 (ok + shed);
              Alcotest.(check bool)
                (Printf.sprintf "overload produced sheds (%d)" shed)
                true (shed > 0);
              (* drain the poisons so the server is quiet *)
              List.iter
                (fun _ -> ignore (Serve.Client.recv slow))
                poisons;
              (* the cache holds exactly the answered flood requests:
                 every flood operand is distinct, the poisons are
                 uncacheable, so size = answered — a shed that slipped
                 into the LRU would show up as size > ok *)
              let s = Serve.Server.cache_stats srv in
              Alcotest.(check int) "cache size = answered distinct requests"
                ok s.C.size)))

let () =
  Alcotest.run "serve_cache"
    [ ( "keying",
        [ Alcotest.test_case "exact bit-pattern identity" `Quick test_keying ] );
      ( "lru",
        [ Alcotest.test_case "eviction order" `Quick test_eviction_order;
          Alcotest.test_case "capacity bound" `Quick test_capacity_bound;
          Alcotest.test_case "disabled cache" `Quick test_disabled;
          Alcotest.test_case "per-kind counters" `Quick test_kind_counters ] );
      ( "bitwise",
        [ Alcotest.test_case "cached = uncached over arbitrary bits" `Quick
            test_cached_bitwise ] );
      ( "faults",
        [ Alcotest.test_case "mid-stream disconnect never poisons the LRU"
            `Quick test_disconnect_no_poison;
          Alcotest.test_case "shed requests never populate the cache" `Quick
            test_shed_never_cached ] ) ]
