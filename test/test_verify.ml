(* The exhaustive small-width verification backend (lib/verify):
   gate-level EFT proofs over full reduced formats, whole-network
   sweeps over shaped operand spaces, the seeded-mutant regression
   with its pinned minimal counterexample, IR-vs-interpreter bitwise
   equivalence, and worker-count determinism of the certificate. *)

module M = Gpu32.Minifloat
module Sweep = Verify.Sweep
module Space = Verify.Space

let workers = 2

(* --- gate level ----------------------------------------------------- *)

let tiny_fmt = M.fmt ~p:4 ~emin:(-3) ~emax:3

let test_gate_level_tiny () =
  let g = Sweep.gate_level ~workers tiny_fmt in
  (* 2 zeros + per sign: 7 subnormals + 7 binades * 8 mantissas *)
  Alcotest.(check int) "values" 128 g.Sweep.values;
  Alcotest.(check int) "pairs" (128 * 128) g.Sweep.pairs;
  Alcotest.(check bool) "no EFT violations" true (Sweep.gate_passed g);
  (* every pair is either checked or skipped, for each op *)
  List.iter
    (fun (name, (c : Sweep.gate_counts)) ->
      Alcotest.(check int) (name ^ " covers all pairs") g.Sweep.pairs
        (c.Sweep.g_checked + c.Sweep.g_skipped))
    [ ("two_sum", g.Sweep.two_sum);
      ("fast_two_sum", g.Sweep.fast_two_sum);
      ("two_prod", g.Sweep.two_prod) ];
  (* the sweep is not vacuous: the vast majority of TwoSum pairs check *)
  Alcotest.(check bool) "two_sum mostly checked" true
    (g.Sweep.two_sum.Sweep.g_checked > g.Sweep.pairs / 2)

(* --- whole-network sweeps ------------------------------------------- *)

let small_add2 () = Sweep.add_network ~width:4 ~window:1 ~gap:1 Fpan.Networks.add2 ~terms:2

let test_add2_sweep_passes () =
  let r = Sweep.run ~workers (small_add2 ()) in
  Alcotest.(check bool) "add2 passes" true (Sweep.passed r);
  Alcotest.(check (list int)) "no failures" [] (List.map (fun f -> f.Sweep.index) r.Sweep.failures);
  (* the equivalence obligation ran on every tuple *)
  let eq = Sweep.obligation_index Sweep.Equivalence in
  Alcotest.(check int) "equivalence on every tuple" r.Sweep.tuples r.Sweep.counts.Sweep.checked.(eq);
  (* worst observed relative error respects the scaled bound 2^-(2w-1) *)
  Alcotest.(check bool) "worst error within bound" true
    (r.Sweep.worst_err_log2 <= -.float_of_int (Option.get r.Sweep.error_bound_exp))

let test_mul2_sweep_passes () =
  let r = Sweep.run ~workers (Sweep.mul_network ~width:4 ~window:1 ~gap:1 Fpan.Networks.mul2 ~terms:2) in
  Alcotest.(check bool) "mul2 passes" true (Sweep.passed r);
  let tp = Sweep.obligation_index Sweep.Eft_two_prod in
  Alcotest.(check bool) "two_prod constraints actually checked" true
    (r.Sweep.counts.Sweep.checked.(tp) > 0)

(* --- the seeded mutant and its pinned minimal counterexample --------- *)

let test_mutant_self_test () =
  match Verify.Mutants.self_test ~workers () with
  | Error msg -> Alcotest.fail msg
  | Ok f ->
      Alcotest.(check string) "violated obligation" "error_bound"
        (Sweep.obligation_name f.Sweep.obligation);
      Alcotest.(check int) "known-minimal size" 2 f.Sweep.shrunk_terms;
      (* the pinned minimum: x = 0, y = (1/2, 2^-5) — the smallest pair
         whose dropped TwoSum error exceeds sloppy-add2's claimed
         bound.  Deterministic: smallest violating tuple index, greedy
         shrink under the width-4 rounding. *)
      let expected = [| [| 0.0; 0.0 |]; [| 0.5; Float.ldexp 1.0 (-5) |] |] in
      Alcotest.(check bool) "pinned counterexample" true (f.Sweep.shrunk = expected);
      (* and it is a genuine width-4 operand pair *)
      Alcotest.(check bool) "valid at width 4" true
        (Space.valid_operands ~width:4 f.Sweep.shrunk)

let test_mutant_sweep_details () =
  let r = Sweep.run ~max_cex:3 ~workers (Verify.Mutants.mutant_spec ()) in
  Alcotest.(check bool) "sloppy-add2 fails" false (Sweep.passed r);
  let eb = Sweep.obligation_index Sweep.Error_bound in
  Alcotest.(check bool) "error_bound violations counted" true
    (r.Sweep.counts.Sweep.violations.(eb) > 0);
  Alcotest.(check int) "max_cex failures recorded" 3 (List.length r.Sweep.failures);
  (* failure indices ascend (smallest-index merge) and shrink stayed small *)
  let idxs = List.map (fun f -> f.Sweep.index) r.Sweep.failures in
  Alcotest.(check (list int)) "ascending smallest indices" (List.sort compare idxs) idxs;
  List.iter
    (fun f -> Alcotest.(check bool) "shrunk <= 4 terms" true (f.Sweep.shrunk_terms <= 4))
    r.Sweep.failures

(* --- fused chains: bitwise IR equivalence at reduced width ----------- *)

let test_chain_sweeps_pass () =
  List.iter
    (fun (name, terms, width) ->
      let r = Sweep.run ~workers (Sweep.chain ~width ~window:1 ~gap:1 name ~terms) in
      Alcotest.(check bool) (name ^ " passes") true (Sweep.passed r);
      let eq = Sweep.obligation_index Sweep.Equivalence in
      Alcotest.(check int)
        (name ^ " equivalence on every tuple")
        r.Sweep.tuples r.Sweep.counts.Sweep.checked.(eq))
    [ ("sum_step", 2, 3); ("dot_step", 2, 3); ("residual_tail", 2, 3) ]

(* Direct Fpan_ir.Interp.run_rounded vs Fpan.Interp.run_rounded: the
   Front-derived kernel program and the mutable-wire network interpreter
   agree bitwise on every width-3 operand tuple (the sweeps above check
   the circuit path; this checks the IR interpreter path). *)
let test_ir_interp_bitwise_equivalence () =
  let width = 3 in
  let round = M.round_p width in
  let t = 2 in
  let slots =
    [| Space.expansions ~width ~terms:t ~gap:1 Space.Anchored;
       Space.expansions ~width ~terms:t ~gap:1 (Space.Windowed 1) |]
  in
  let space = Space.make ~name:"ir-equiv" ~width slots in
  let buf = Array.make (Space.num_inputs space) 0.0 in
  let prog_sum = Fpan_ir.Fuse.chain "sum_step" t in
  let prog_res = Fpan_ir.Fuse.chain "residual_tail" t in
  let interleave x y = Array.init (2 * t) (fun k -> if k mod 2 = 0 then x.(k / 2) else y.(k / 2)) in
  let bits = Array.map Int64.bits_of_float in
  for idx = 0 to space.Space.total - 1 do
    Space.fill_inputs space idx buf;
    let x = Array.sub buf 0 t and y = Array.sub buf t t in
    (* sum_step(acc, x) = add2 on interleaved wires *)
    let ir = Fpan_ir.Interp.run_rounded ~round prog_sum buf in
    let net = Fpan.Interp.run_rounded ~round Fpan.Networks.add2 (interleave x y) in
    if bits ir <> bits net then
      Alcotest.failf "sum_step mismatch at tuple %d: ir %h %h net %h %h" idx ir.(0) ir.(1) net.(0)
        net.(1);
    (* residual_tail(b, acc) = add2 on (b, -acc) *)
    let ir = Fpan_ir.Interp.run_rounded ~round prog_res buf in
    let net =
      Fpan.Interp.run_rounded ~round Fpan.Networks.add2 (interleave x (Array.map Float.neg y))
    in
    if bits ir <> bits net then Alcotest.failf "residual_tail mismatch at tuple %d" idx
  done

(* run_rounded with the identity rounding is exactly the plain
   interpreter — the p = 53 degenerate case. *)
let test_run_rounded_identity () =
  let net = Fpan.Networks.add2 in
  let inputs = [| 1.0; Float.ldexp 1.0 (-40); -0.25; Float.ldexp 3.0 (-45) |] in
  Alcotest.(check bool) "run_rounded Fun.id = run" true
    (Fpan.Interp.run_rounded ~round:Fun.id net inputs = Fpan.Interp.run net inputs);
  let prog = Fpan_ir.Front.add_kernel 2 in
  let buf = [| 1.0; -0.25; Float.ldexp 1.0 (-40); Float.ldexp 3.0 (-45) |] in
  Alcotest.(check bool) "IR run_rounded Fun.id = run" true
    (Fpan_ir.Interp.run_rounded ~round:Fun.id prog buf = Fpan_ir.Interp.run prog buf)

(* --- operand space internals ----------------------------------------- *)

let test_space_membership_and_layout () =
  let spec = small_add2 () in
  let slots =
    [| Space.expansions ~width:spec.Sweep.width ~terms:2 ~gap:1 Space.Anchored;
       Space.expansions ~width:spec.Sweep.width ~terms:2 ~gap:1 (Space.Windowed 1) |]
  in
  let space = Space.make ~name:"membership" ~width:spec.Sweep.width slots in
  let buf = Array.make (Space.num_inputs space) 0.0 in
  for idx = 0 to space.Space.total - 1 do
    let ops = Space.operands space idx in
    if not (Space.valid_operands ~width:spec.Sweep.width ops) then
      Alcotest.failf "tuple %d not a valid operand pair" idx;
    (* fill_inputs is exactly the concatenation of the decoded operands *)
    Space.fill_inputs space idx buf;
    let concat = Array.concat (Array.to_list ops) in
    if buf <> concat then Alcotest.failf "tuple %d: fill_inputs disagrees with operands" idx
  done

let test_footprint_guard () =
  (* width 24 with a 20-binade gap spans far more than 52 bits: the
     sweep must refuse rather than silently lose exactness *)
  let spec = Sweep.add_network ~width:24 ~window:1 ~gap:20 Fpan.Networks.add2 ~terms:2 in
  match Sweep.run ~workers:1 spec with
  | _ -> Alcotest.fail "footprint over 52 bits was not rejected"
  | exception Invalid_argument msg ->
      Alcotest.(check bool) "names the footprint" true
        (String.length msg > 0 && String.sub msg 0 26 = "Verify.Sweep.prepare: add2")

(* --- determinism across worker counts -------------------------------- *)

let test_worker_determinism () =
  let run w = Sweep.run ~workers:w (small_add2 ()) in
  let j w = Obs.Json_out.to_string (Sweep.result_json (run w)) in
  Alcotest.(check string) "certificate rows identical for 1 vs 2 workers" (j 1) (j 2);
  let g w = Obs.Json_out.to_string (Sweep.gate_json (Sweep.gate_level ~workers:w tiny_fmt)) in
  Alcotest.(check string) "gate level identical for 1 vs 2 workers" (g 1) (g 2)

(* --- certificate schema ----------------------------------------------- *)

let test_certificate_schema () =
  let gate = Sweep.gate_level ~workers tiny_fmt in
  let clean = Sweep.run ~workers (small_add2 ()) in
  let mutant = Sweep.run ~workers (Verify.Mutants.mutant_spec ()) in
  let chain = Sweep.run ~workers (Sweep.chain ~width:3 ~window:1 ~gap:1 "sum_step" ~terms:2) in
  (* covers: gate block, passing network, failing network with shrunk
     counterexample rows, chain with null error_bound_exp *)
  let json = Sweep.certificate ~gate [ clean; mutant; chain ] in
  Obs.Schema.check ~name:"fpan-verify/1" Obs.Schemas.verify_certificate json;
  (match json with
  | Obs.Json_out.Obj fields ->
      Alcotest.(check bool) "certificate not passed with mutant" true
        (List.assoc "passed" fields = Obs.Json_out.Bool false)
  | _ -> Alcotest.fail "certificate not an object");
  let json_ok = Sweep.certificate ~gate [ clean; chain ] in
  Obs.Schema.check ~name:"fpan-verify/1-ok" Obs.Schemas.verify_certificate json_ok;
  match json_ok with
  | Obs.Json_out.Obj fields ->
      Alcotest.(check bool) "clean certificate passed" true
        (List.assoc "passed" fields = Obs.Json_out.Bool true)
  | _ -> Alcotest.fail "certificate not an object"

let () =
  Alcotest.run "verify"
    [ ( "gate-level",
        [ Alcotest.test_case "tiny format exhaustive" `Quick test_gate_level_tiny ] );
      ( "sweeps",
        [ Alcotest.test_case "add2 passes" `Quick test_add2_sweep_passes;
          Alcotest.test_case "mul2 passes" `Quick test_mul2_sweep_passes;
          Alcotest.test_case "chains pass" `Quick test_chain_sweeps_pass ] );
      ( "mutant",
        [ Alcotest.test_case "self-test pinned minimum" `Quick test_mutant_self_test;
          Alcotest.test_case "sweep details" `Quick test_mutant_sweep_details ] );
      ( "equivalence",
        [ Alcotest.test_case "IR interp bitwise" `Quick test_ir_interp_bitwise_equivalence;
          Alcotest.test_case "identity rounding" `Quick test_run_rounded_identity ] );
      ( "space",
        [ Alcotest.test_case "membership and layout" `Quick test_space_membership_and_layout;
          Alcotest.test_case "footprint guard" `Quick test_footprint_guard ] );
      ( "determinism",
        [ Alcotest.test_case "workers 1 vs 2" `Quick test_worker_determinism ] );
      ( "certificate",
        [ Alcotest.test_case "schema" `Quick test_certificate_schema ] ) ]
