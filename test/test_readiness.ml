(* The readiness loop under the server: poll-backend registration /
   deregistration churn, event delivery with no spurious reports, the
   select backend's explicit descriptor ceiling, and the regression
   the whole abstraction exists for — registering and serving a
   descriptor whose numeric value is beyond FD_SETSIZE. *)

module R = Serve.Readiness

let with_pipe f =
  let r, w = Unix.pipe ~cloexec:true () in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close r with _ -> ());
      try Unix.close w with _ -> ())
    (fun () -> f r w)

let test_backend_selection () =
  let t = R.create () in
  Alcotest.(check string) "default backend" "poll" (R.backend_name t);
  let s = R.create ~backend:R.Select () in
  Alcotest.(check string) "explicit select" "select" (R.backend_name s)

let test_churn () =
  List.iter
    (fun backend ->
      let t = R.create ~backend () in
      let name = R.backend_name t in
      let pipes = Array.init 100 (fun _ -> Unix.pipe ~cloexec:true ()) in
      Fun.protect
        ~finally:(fun () ->
          Array.iter
            (fun (r, w) ->
              (try Unix.close r with _ -> ());
              try Unix.close w with _ -> ())
            pipes)
        (fun () ->
          (* grow, interleaving adds with removes, several rounds *)
          for round = 1 to 3 do
            Array.iter (fun (r, _) -> R.add t r ~read:true ~write:false) pipes;
            Alcotest.(check int)
              (Printf.sprintf "%s: all registered (round %d)" name round)
              100 (R.registered t);
            Array.iteri
              (fun i (r, _) -> if i mod 2 = 0 then R.remove t r)
              pipes;
            Alcotest.(check int)
              (Printf.sprintf "%s: half removed (round %d)" name round)
              50 (R.registered t);
            (* double-add of a live registration is a caller bug *)
            (match pipes.(1) with
            | r, _ -> (
                match R.add t r ~read:true ~write:false with
                | () -> Alcotest.fail (name ^ ": double add accepted")
                | exception Invalid_argument _ -> ()));
            (* remove is idempotent: a second remove is a no-op *)
            (match pipes.(0) with r, _ -> R.remove t r);
            Array.iteri (fun i (r, _) -> if i mod 2 = 1 then R.remove t r) pipes;
            Alcotest.(check int)
              (Printf.sprintf "%s: all removed (round %d)" name round)
              0 (R.registered t)
          done;
          (* mem tracks membership through modify *)
          (match pipes.(7) with
          | r, _ ->
              R.add t r ~read:true ~write:false;
              Alcotest.(check bool) (name ^ ": mem after add") true (R.mem t r);
              R.modify t r ~read:true ~write:true;
              Alcotest.(check bool) (name ^ ": mem after modify") true (R.mem t r);
              R.remove t r;
              Alcotest.(check bool) (name ^ ": mem after remove") false (R.mem t r))))
    [ R.Poll; R.Select ]

let test_event_delivery () =
  List.iter
    (fun backend ->
      let t = R.create ~backend () in
      let name = R.backend_name t in
      with_pipe (fun r1 w1 ->
          with_pipe (fun r2 _w2 ->
              R.add t r1 ~read:true ~write:false;
              R.add t r2 ~read:true ~write:false;
              (* nothing ready: a timed wait returns no events *)
              Alcotest.(check int)
                (name ^ ": quiet timeout") 0
                (List.length (R.wait t ~timeout_ms:10));
              (* only the fd with data reports — no spurious events for
                 the idle sibling *)
              ignore (Unix.write w1 (Bytes.of_string "x") 0 1);
              let evs = R.wait t ~timeout_ms:1000 in
              Alcotest.(check int) (name ^ ": one event") 1 (List.length evs);
              let e = List.hd evs in
              Alcotest.(check bool) (name ^ ": right fd") true (e.R.fd = r1);
              Alcotest.(check bool) (name ^ ": readable") true e.R.readable;
              Alcotest.(check bool) (name ^ ": not writable") false e.R.writable;
              (* drained: the level-triggered report stops *)
              ignore (Unix.read r1 (Bytes.create 8) 0 8);
              Alcotest.(check int)
                (name ^ ": quiet after drain") 0
                (List.length (R.wait t ~timeout_ms:10)))))
    [ R.Poll; R.Select ]

let test_write_interest () =
  List.iter
    (fun backend ->
      let t = R.create ~backend () in
      let name = R.backend_name t in
      with_pipe (fun _r w ->
          (* read-only interest on a writable fd: no event *)
          R.add t w ~read:true ~write:false;
          Alcotest.(check int)
            (name ^ ": no write event without interest") 0
            (List.length (R.wait t ~timeout_ms:10));
          (* flip interest to writes: an empty pipe is ready at once *)
          R.modify t w ~read:false ~write:true;
          let evs = R.wait t ~timeout_ms:1000 in
          Alcotest.(check int) (name ^ ": writable event") 1 (List.length evs);
          Alcotest.(check bool) (name ^ ": writable flag") true
            (List.hd evs).R.writable))
    [ R.Poll; R.Select ]

let test_hangup () =
  let t = R.create () in
  let r, w = Unix.pipe ~cloexec:true () in
  R.add t r ~read:true ~write:false;
  Unix.close w;
  let evs = R.wait t ~timeout_ms:1000 in
  Alcotest.(check int) "hangup reported" 1 (List.length evs);
  let e = List.hd evs in
  Alcotest.(check bool) "hangup or readable" true (e.R.hangup || e.R.readable);
  R.remove t r;
  Unix.close r

let test_poll1 () =
  with_pipe (fun r w ->
      Alcotest.(check bool) "not readable yet" false
        (R.wait_readable r ~timeout_ms:10);
      Alcotest.(check bool) "writable pipe" true (R.wait_writable w ~timeout_ms:10);
      ignore (Unix.write w (Bytes.of_string "!") 0 1);
      Alcotest.(check bool) "readable now" true (R.wait_readable r ~timeout_ms:1000);
      match R.poll1 r ~read:true ~write:false ~timeout_ms:100 with
      | Some e ->
          Alcotest.(check bool) "poll1 readable" true e.R.readable;
          Alcotest.(check bool) "poll1 fd" true (e.R.fd = r)
      | None -> Alcotest.fail "poll1 returned no event")

(* The regression the poll backend exists for: a descriptor whose
   *value* is past FD_SETSIZE.  select(2) cannot represent it at all
   (our select backend refuses it loudly); poll serves it like any
   other.  The ladder of dups pushes a pipe's fd number beyond 1024
   without needing 1024 live sockets. *)
let test_beyond_fd_setsize () =
  let target = 1300 in
  let r, w = Unix.pipe ~cloexec:true () in
  let held = ref [] in
  let high = ref r in
  (try
     while (Obj.magic !high : int) <= target do
       let d = Unix.dup ~cloexec:true r in
       held := d :: !held;
       high := d
     done
   with Unix.Unix_error ((EMFILE | ENFILE), _, _) ->
     (* ulimit too low to manufacture a high descriptor: nothing to test *)
     List.iter (fun d -> try Unix.close d with _ -> ()) !held;
     Unix.close r;
     Unix.close w;
     Alcotest.skip ());
  let high = !high in
  Fun.protect
    ~finally:(fun () ->
      List.iter (fun d -> try Unix.close d with _ -> ()) !held;
      (try Unix.close r with _ -> ());
      try Unix.close w with _ -> ())
    (fun () ->
      Alcotest.(check bool) "fd value beyond FD_SETSIZE" true
        ((Obj.magic high : int) > 1024);
      (* the select backend refuses: it cannot watch this fd *)
      let s = R.create ~backend:R.Select () in
      (match R.add s high ~read:true ~write:false with
      | () -> Alcotest.fail "select backend accepted an fd beyond its ceiling"
      | exception Invalid_argument _ -> ());
      (* the poll backend serves it *)
      let t = R.create ~backend:R.Poll () in
      R.add t high ~read:true ~write:false;
      ignore (Unix.write w (Bytes.of_string "!") 0 1);
      let evs = R.wait t ~timeout_ms:1000 in
      Alcotest.(check int) "high fd event" 1 (List.length evs);
      Alcotest.(check bool) "high fd readable" true (List.hd evs).R.readable;
      R.remove t high)

let () =
  Alcotest.run "readiness"
    [ ( "backend",
        [ Alcotest.test_case "selection" `Quick test_backend_selection ] );
      ( "registration",
        [ Alcotest.test_case "churn" `Quick test_churn ] );
      ( "events",
        [ Alcotest.test_case "delivery, no spurious reports" `Quick
            test_event_delivery;
          Alcotest.test_case "write interest" `Quick test_write_interest;
          Alcotest.test_case "hangup" `Quick test_hangup;
          Alcotest.test_case "poll1 and timed waits" `Quick test_poll1 ] );
      ( "scale",
        [ Alcotest.test_case "fd beyond FD_SETSIZE" `Quick
            test_beyond_fd_setsize ] ) ]
