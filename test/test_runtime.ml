(* Tests for lib/runtime: the Chase-Lev deque, the work-stealing
   scheduler, and the tiled engine.

   The load-bearing property is DETERMINISM: every engine kernel must
   return bitwise-identical results at any worker count, and
   GEMM/GEMV/AXPY must be bitwise equal to the sequential batched
   kernels (the scheduler only moves work, never changes the
   accumulation order).  Worker counts under test include 1 (inline),
   2, 4, and an oversubscribed 8 (the CI box may have a single core);
   FPAN_TEST_DOMAINS adds an extra count from the environment. *)

module Sched = Runtime.Sched
module Deque = Runtime.Deque

let worker_counts =
  let base = [ 1; 2; 4; 8 ] in
  match Sys.getenv_opt "FPAN_TEST_DOMAINS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some d when d >= 1 && not (List.mem d base) -> base @ [ d ]
      | _ -> base)
  | None -> base

(* ------------------------------------------------------------------ *)
(* Deque *)

let test_deque_lifo_fifo () =
  let d = Deque.create ~capacity:16 () in
  Alcotest.(check bool) "empty" true (Deque.is_empty d);
  for i = 0 to 9 do
    Alcotest.(check bool) "push" true (Deque.push d i)
  done;
  (* owner pops newest *)
  Alcotest.(check (option int)) "pop lifo" (Some 9) (Deque.pop d);
  (* thief steals oldest *)
  Alcotest.(check (option int)) "steal fifo" (Some 0) (Deque.steal d);
  Alcotest.(check (option int)) "steal next" (Some 1) (Deque.steal d)

let test_deque_full_rejects () =
  let d = Deque.create ~capacity:4 () in
  for i = 0 to 3 do
    ignore (Deque.push d i)
  done;
  Alcotest.(check bool) "full push rejected" false (Deque.push d 99);
  ignore (Deque.steal d);
  Alcotest.(check bool) "slot freed" true (Deque.push d 99)

let test_deque_exactly_once_concurrent () =
  (* One owner pushing/popping, several thieves stealing: every element
     must surface exactly once across pop and steal. *)
  let n = 20_000 in
  let d = Deque.create ~capacity:32768 () in
  let seen = Array.make n (Atomic.make 0) in
  for i = 0 to n - 1 do
    seen.(i) <- Atomic.make 0
  done;
  let claim i = Atomic.incr seen.(i) in
  let stop = Atomic.make false in
  let thieves =
    Array.init 3 (fun _ ->
        Domain.spawn (fun () ->
            while not (Atomic.get stop) do
              match Deque.steal d with
              | Some i -> claim i
              | None -> Domain.cpu_relax ()
            done))
  in
  for i = 0 to n - 1 do
    while not (Deque.push d i) do
      (* full: pop one ourselves to make room *)
      match Deque.pop d with Some j -> claim j | None -> ()
    done;
    if i land 7 = 0 then match Deque.pop d with Some j -> claim j | None -> ()
  done;
  let rec drain () =
    match Deque.pop d with
    | Some j ->
        claim j;
        drain ()
    | None -> if not (Deque.is_empty d) then drain ()
  in
  drain ();
  (* let thieves finish any in-flight steal, then stop them *)
  while not (Deque.is_empty d) do
    Domain.cpu_relax ()
  done;
  Atomic.set stop true;
  Array.iter Domain.join thieves;
  let bad = ref 0 in
  Array.iter (fun a -> if Atomic.get a <> 1 then incr bad) seen;
  Alcotest.(check int) "every element exactly once" 0 !bad

(* ------------------------------------------------------------------ *)
(* Scheduler *)

let test_sched_reduce_matches_seq () =
  let n = 100_000 in
  let expect = n * (n - 1) / 2 in
  List.iter
    (fun w ->
      Sched.with_sched ~workers:w (fun rt ->
          let s =
            Sched.parallel_reduce rt ~grain:64 ~lo:0 ~hi:n
              ~leaf:(fun lo hi ->
                let acc = ref 0 in
                for i = lo to hi - 1 do
                  acc := !acc + i
                done;
                !acc)
              ( + )
          in
          Alcotest.(check int) (Printf.sprintf "sum @%d workers" w) expect s))
    worker_counts

let test_sched_for_covers () =
  List.iter
    (fun w ->
      Sched.with_sched ~workers:w (fun rt ->
          let n = 10_000 in
          let hits = Array.make n 0 in
          Sched.parallel_for rt ~grain:16 ~lo:0 ~hi:n (fun lo hi ->
              for i = lo to hi - 1 do
                hits.(i) <- hits.(i) + 1
              done);
          Alcotest.(check bool)
            (Printf.sprintf "cover @%d workers" w)
            true
            (Array.for_all (fun h -> h = 1) hits)))
    worker_counts

let test_sched_float_reduce_bitwise_across_workers () =
  (* The reduction tree shape is fixed by (lo, hi, grain): float sums
     must be bitwise identical for every worker count. *)
  let n = 65_537 in
  let data = Array.init n (fun i -> Float.sin (Float.of_int i)) in
  let via w =
    Sched.with_sched ~workers:w (fun rt ->
        Sched.parallel_reduce rt ~grain:100 ~lo:0 ~hi:n
          ~leaf:(fun lo hi ->
            let acc = ref 0.0 in
            for i = lo to hi - 1 do
              acc := !acc +. data.(i)
            done;
            !acc)
          ( +. ))
  in
  let reference = via (List.hd worker_counts) in
  List.iter
    (fun w ->
      Alcotest.(check bool)
        (Printf.sprintf "bitwise @%d workers" w)
        true
        (Int64.equal (Int64.bits_of_float reference) (Int64.bits_of_float (via w))))
    worker_counts

let test_sched_exception_propagates () =
  Sched.with_sched ~workers:4 (fun rt ->
      let raised =
        match
          Sched.parallel_for rt ~lo:0 ~hi:1000 (fun lo _ -> if lo >= 500 then failwith "task-boom")
        with
        | () -> false
        | exception Failure _ -> true
      in
      Alcotest.(check bool) "exception propagated" true raised;
      (* scheduler still usable after the failed run *)
      let s =
        Sched.parallel_reduce rt ~lo:0 ~hi:100
          ~leaf:(fun lo hi ->
            let acc = ref 0 in
            for i = lo to hi - 1 do
              acc := !acc + i
            done;
            !acc)
          ( + )
      in
      Alcotest.(check int) "alive after exception" 4950 s)

let test_sched_nested_run () =
  Sched.with_sched ~workers:2 (fun rt ->
      let v = Sched.run rt (fun () -> Sched.run rt (fun () -> 42)) in
      Alcotest.(check int) "nested run inline" 42 v)

let test_sched_shutdown_under_load_and_reuse () =
  (* Repeated create/heavy-use/shutdown must neither deadlock nor leak
     wedged domains. *)
  for _ = 1 to 5 do
    Sched.with_sched ~workers:4 (fun rt ->
        for _ = 1 to 20 do
          Sched.parallel_for rt ~grain:8 ~lo:0 ~hi:2000 (fun lo hi -> ignore (hi - lo))
        done)
  done;
  Alcotest.(check pass) "no deadlock" () ()

let test_sched_shutdown_idempotent () =
  let rt = Sched.create ~workers:3 () in
  Sched.shutdown rt;
  Sched.shutdown rt;
  let raised = match Sched.run rt (fun () -> ()) with
    | () -> false
    | exception Invalid_argument _ -> true
  in
  Alcotest.(check bool) "run after shutdown rejected" true raised

(* ------------------------------------------------------------------ *)
(* Engine: bitwise determinism of the BLAS kernels *)

module N2 = Blas.Instances.Mf2
module N3 = Blas.Instances.Mf3
module K2 = Blas.Kernels.Make_batched (N2)
module K3 = Blas.Kernels.Make_batched (N3)

module Gen (N : Blas.Numeric.BATCHED) = struct
  (* random planar vectors with non-trivial tails, so accumulation
     order differences would actually show up in the bits *)
  let vec n seed =
    let st = Random.State.make [| seed; n |] in
    N.V.of_array
      (Array.init n (fun _ ->
           N.add
             (N.of_float (Random.State.float st 2.0 -. 1.0))
             (N.of_float (Float.ldexp (Random.State.float st 1.0) (-40)))))
end

module Gen2 = Gen (N2)
module Gen3 = Gen (N3)

let floats_equal_bitwise a b =
  Array.length a = Array.length b
  && Array.for_all2 (fun x y -> Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y)) a b

let check_bitwise name a b = Alcotest.(check bool) name true (floats_equal_bitwise a b)

let test_engine_gemm_bitwise_mf2 () =
  let m = 23 and n = 17 and k = 31 in
  let a = Gen2.vec (m * k) 1 in
  let b = Gen2.vec (k * n) 2 in
  (* sequential reference *)
  let c_ref = K2.V.create (m * n) in
  K2.gemm ~m ~n ~k ~a ~b ~c:c_ref;
  let reference = K2.vec_to_floats c_ref in
  List.iter
    (fun w ->
      Sched.with_sched ~workers:w (fun rt ->
          (* deliberately awkward tile size to exercise edge tiles *)
          List.iter
            (fun tile ->
              let c = K2.V.create (m * n) in
              K2.gemm_rt rt ?tile ~m ~n ~k ~a ~b ~c ();
              check_bitwise
                (Printf.sprintf "gemm @%d workers tile=%s" w
                   (match tile with None -> "default" | Some (tm, tn) -> Printf.sprintf "%dx%d" tm tn))
                reference (K2.vec_to_floats c))
            [ None; Some (8, 8); Some (5, 7); Some (64, 64) ]))
    worker_counts

let test_engine_gemm_accumulates () =
  (* C <- C + A B semantics: a warm C must accumulate, exactly like
     the sequential kernel. *)
  let m = 9 and n = 11 and k = 7 in
  let a = Gen2.vec (m * k) 3 in
  let b = Gen2.vec (k * n) 4 in
  let c0 = Gen2.vec (m * n) 5 in
  let c_ref = K2.V.copy c0 in
  K2.gemm ~m ~n ~k ~a ~b ~c:c_ref;
  Sched.with_sched ~workers:3 (fun rt ->
      let c = K2.V.copy c0 in
      K2.gemm_rt rt ~m ~n ~k ~a ~b ~c ();
      check_bitwise "warm C accumulation" (K2.vec_to_floats c_ref) (K2.vec_to_floats c))

let test_engine_gemv_bitwise_mf3 () =
  let m = 41 and n = 29 in
  let a = Gen3.vec (m * n) 6 in
  let x = Gen3.vec n 7 in
  let y_ref = K3.V.create m in
  K3.gemv ~m ~n ~a ~x ~y:y_ref;
  let reference = K3.vec_to_floats y_ref in
  List.iter
    (fun w ->
      Sched.with_sched ~workers:w (fun rt ->
          let y = K3.V.create m in
          K3.gemv_rt rt ~m ~n ~a ~x ~y;
          check_bitwise (Printf.sprintf "gemv @%d workers" w) reference (K3.vec_to_floats y)))
    worker_counts

let test_engine_axpy_bitwise_mf2 () =
  let n = 10_007 in
  let alpha = N2.of_float 1.5 in
  let x = Gen2.vec n 8 in
  let y0 = Gen2.vec n 9 in
  let y_ref = K2.V.copy y0 in
  K2.axpy ~alpha ~x ~y:y_ref;
  let reference = K2.vec_to_floats y_ref in
  List.iter
    (fun w ->
      Sched.with_sched ~workers:w (fun rt ->
          let y = K2.V.copy y0 in
          K2.axpy_rt rt ~alpha ~x ~y;
          check_bitwise (Printf.sprintf "axpy @%d workers" w) reference (K2.vec_to_floats y)))
    worker_counts

let test_engine_dot_deterministic_across_workers () =
  (* DOT's reduction tree differs from the sequential fold, but must be
     identical across worker counts. *)
  let n = 30_011 in
  let x = Gen2.vec n 10 in
  let y = Gen2.vec n 11 in
  let via w = Sched.with_sched ~workers:w (fun rt -> N2.to_float (K2.dot_rt rt ~x ~y)) in
  let reference = via (List.hd worker_counts) in
  List.iter
    (fun w ->
      Alcotest.(check bool)
        (Printf.sprintf "dot bitwise @%d workers" w)
        true
        (Int64.equal (Int64.bits_of_float reference) (Int64.bits_of_float (via w))))
    worker_counts;
  (* and it is numerically the same dot product *)
  let seq = N2.to_float (K2.dot ~x ~y) in
  Alcotest.(check bool)
    "tree dot close to sequential dot" true
    (Float.abs (reference -. seq) <= 1e-12 *. Float.max 1.0 (Float.abs seq))

let test_engine_matches_pool_path () =
  (* The runtime GEMM must agree bitwise with the row-parallel pool
     path too (both reproduce the sequential accumulation order). *)
  let m = 19 and n = 13 and k = 21 in
  let a = Gen2.vec (m * k) 12 in
  let b = Gen2.vec (k * n) 13 in
  let c_pool = K2.V.create (m * n) in
  Parallel.Pool.with_pool ~domains:3 (fun pool -> K2.gemm_pool pool ~m ~n ~k ~a ~b ~c:c_pool);
  let c_rt = K2.V.create (m * n) in
  Sched.with_sched ~workers:3 (fun rt -> K2.gemm_rt rt ~m ~n ~k ~a ~b ~c:c_rt ());
  check_bitwise "runtime vs pool gemm" (K2.vec_to_floats c_pool) (K2.vec_to_floats c_rt)

(* ------------------------------------------------------------------ *)
(* Refinement through the runtime *)

module Refine2 = Linalg.Refine_batched (Multifloat.Mf2) (Multifloat.Batch.Mf2v)

let test_refine_rt_bitwise () =
  let n = 24 in
  let st = Random.State.make [| 77 |] in
  (* diagonally dominant -> LU stable, refinement converges *)
  let a =
    Array.init (n * n) (fun idx ->
        let i = idx / n and j = idx mod n in
        if i = j then 4.0 +. Random.State.float st 1.0 else Random.State.float st 0.5 /. Float.of_int n)
  in
  let b = Array.init n (fun i -> Multifloat.Mf2.of_float (Float.sin (Float.of_int i))) in
  let x_seq, s_seq = Refine2.solve ~n ~a ~b () in
  List.iter
    (fun w ->
      Sched.with_sched ~workers:w (fun rt ->
          let x_rt, s_rt = Refine2.solve ~rt ~n ~a ~b () in
          Alcotest.(check int) (Printf.sprintf "iters @%d" w) s_seq.iterations s_rt.iterations;
          Alcotest.(check bool)
            (Printf.sprintf "solution bitwise @%d" w)
            true
            (Array.for_all2
               (fun p q ->
                 floats_equal_bitwise
                   (Multifloat.Mf2.components p)
                   (Multifloat.Mf2.components q))
               x_seq x_rt)))
    worker_counts;
  Alcotest.(check bool) "converged" true s_seq.converged

(* ------------------------------------------------------------------ *)
(* Telemetry *)

let test_telemetry_flops_and_tasks () =
  Sched.with_sched ~workers:2 (fun rt ->
      Sched.reset_stats rt;
      let m = 16 and n = 16 and k = 16 in
      let a = Gen2.vec (m * k) 20 in
      let b = Gen2.vec (k * n) 21 in
      let c = K2.V.create (m * n) in
      K2.gemm_rt rt ~m ~n ~k ~a ~b ~c ();
      let st = Sched.stats rt in
      let total_flops = Array.fold_left (fun acc s -> acc + s.Sched.tile_flops) 0 st in
      let total_tasks = Array.fold_left (fun acc s -> acc + s.Sched.tasks_executed) 0 st in
      Alcotest.(check int) "flops = m*n*k" (m * n * k) total_flops;
      Alcotest.(check bool) "tasks executed" true (total_tasks > 0);
      Array.iter
        (fun s ->
          let f = Sched.busy_fraction s in
          Alcotest.(check bool) "busy fraction in [0,1]" true (f >= 0.0 && f <= 1.0))
        st;
      Sched.reset_stats rt;
      let st = Sched.stats rt in
      Alcotest.(check int) "reset clears flops" 0
        (Array.fold_left (fun acc s -> acc + s.Sched.tile_flops) 0 st))

(* reset_stats between runs must be exact even with live (parked)
   worker domains: the snapshot after a reset is all-zero, and the
   counters of the next run are not polluted by anything from before
   the reset — in particular no idle time leaks across it from a
   worker that was parked while the reset happened. *)
let test_reset_stats_exact_between_runs w =
  Sched.with_sched ~workers:w (fun rt ->
      let work () = Sched.parallel_for rt ~lo:0 ~hi:256 (fun _ _ -> ()) in
      work ();
      (* let in-flight spin iterations finish and the workers park:
         a worker that saw active > 0 just before the run ended may
         still account one ~0.2ms idle slice after it *)
      Unix.sleepf 0.05;
      Sched.reset_stats rt;
      Array.iter
        (fun s ->
          Alcotest.(check int) "tasks zero" 0 s.Sched.tasks_executed;
          Alcotest.(check int) "steals zero" 0 s.Sched.steals;
          Alcotest.(check int) "attempts zero" 0 s.Sched.steal_attempts;
          Alcotest.(check int) "helps zero" 0 s.Sched.join_helps;
          Alcotest.(check int) "flops zero" 0 s.Sched.tile_flops;
          Alcotest.(check (float 0.0)) "busy zero" 0.0 s.Sched.busy_seconds;
          Alcotest.(check (float 0.0)) "idle zero" 0.0 s.Sched.idle_seconds)
        (Sched.stats rt);
      (* park the workers well past the reset, then run again: if the
         park interval leaked into idle_seconds, the total would
         exceed the post-reset wall time by the sleep duration *)
      let parked_s = 0.3 in
      Unix.sleepf parked_s;
      let t0 = Unix.gettimeofday () in
      work ();
      let wall = Unix.gettimeofday () -. t0 in
      let stats = Sched.stats rt in
      let idle = Array.fold_left (fun acc s -> acc +. s.Sched.idle_seconds) 0.0 stats in
      Alcotest.(check bool)
        (Printf.sprintf "no parked time in idle (idle %.4f, wall %.4f)" idle wall)
        true
        (idle <= Float.of_int w *. wall +. (parked_s /. 2.0));
      (* the task count is exact and worker-count independent: one
         task per fork (255 internal splits of 256 leaves) + the root *)
      let tasks = Array.fold_left (fun acc s -> acc + s.Sched.tasks_executed) 0 stats in
      Alcotest.(check int) "exact task count after reset" 256 tasks)

let test_reset_stats_1 () = test_reset_stats_exact_between_runs 1
let test_reset_stats_4 () = test_reset_stats_exact_between_runs 4

(* ------------------------------------------------------------------ *)
(* QCheck: random shapes stay bitwise equal to the sequential kernel *)

let qcheck_gemm_random_shapes =
  QCheck.Test.make ~count:25 ~name:"runtime gemm bitwise == sequential (random shapes)"
    QCheck.(triple (int_range 1 40) (int_range 1 40) (int_range 1 40))
    (fun (m, n, k) ->
      let a = Gen2.vec (m * k) (m + (100 * n)) in
      let b = Gen2.vec (k * n) (n + (100 * k)) in
      let c_ref = K2.V.create (m * n) in
      K2.gemm ~m ~n ~k ~a ~b ~c:c_ref;
      let ok =
        Sched.with_sched ~workers:3 (fun rt ->
            let c = K2.V.create (m * n) in
            K2.gemm_rt rt ~tile:(8, 8) ~m ~n ~k ~a ~b ~c ();
            floats_equal_bitwise (K2.vec_to_floats c_ref) (K2.vec_to_floats c))
      in
      ok)

let qcheck_dot_worker_invariance =
  QCheck.Test.make ~count:25 ~name:"runtime dot bitwise-invariant in worker count"
    QCheck.(int_range 1 5000)
    (fun n ->
      let x = Gen3.vec n (n + 1) in
      let y = Gen3.vec n (n + 2) in
      let via w = Sched.with_sched ~workers:w (fun rt -> N3.to_float (K3.dot_rt rt ~x ~y)) in
      Int64.equal (Int64.bits_of_float (via 1)) (Int64.bits_of_float (via 4)))

let () =
  Alcotest.run "runtime"
    [ ( "deque",
        [ Alcotest.test_case "lifo/fifo ends" `Quick test_deque_lifo_fifo;
          Alcotest.test_case "full rejects" `Quick test_deque_full_rejects;
          Alcotest.test_case "exactly-once concurrent" `Quick test_deque_exactly_once_concurrent ] );
      ( "sched",
        [ Alcotest.test_case "reduce matches seq" `Quick test_sched_reduce_matches_seq;
          Alcotest.test_case "for covers" `Quick test_sched_for_covers;
          Alcotest.test_case "float reduce bitwise" `Quick
            test_sched_float_reduce_bitwise_across_workers;
          Alcotest.test_case "exception propagates" `Quick test_sched_exception_propagates;
          Alcotest.test_case "nested run" `Quick test_sched_nested_run;
          Alcotest.test_case "shutdown under load" `Quick test_sched_shutdown_under_load_and_reuse;
          Alcotest.test_case "shutdown idempotent" `Quick test_sched_shutdown_idempotent ] );
      ( "engine",
        [ Alcotest.test_case "gemm bitwise mf2" `Quick test_engine_gemm_bitwise_mf2;
          Alcotest.test_case "gemm accumulates" `Quick test_engine_gemm_accumulates;
          Alcotest.test_case "gemv bitwise mf3" `Quick test_engine_gemv_bitwise_mf3;
          Alcotest.test_case "axpy bitwise mf2" `Quick test_engine_axpy_bitwise_mf2;
          Alcotest.test_case "dot deterministic" `Quick test_engine_dot_deterministic_across_workers;
          Alcotest.test_case "runtime vs pool" `Quick test_engine_matches_pool_path ] );
      ( "refine",
        [ Alcotest.test_case "refine ?rt bitwise" `Quick test_refine_rt_bitwise ] );
      ( "telemetry",
        [ Alcotest.test_case "flops and tasks" `Quick test_telemetry_flops_and_tasks;
          Alcotest.test_case "reset exact @1 worker" `Quick test_reset_stats_1;
          Alcotest.test_case "reset exact @4 workers" `Quick test_reset_stats_4 ] );
      ( "qcheck",
        [ QCheck_alcotest.to_alcotest qcheck_gemm_random_shapes;
          QCheck_alcotest.to_alcotest qcheck_dot_worker_invariance ] ) ]
