(* Batched (planar, structure-of-arrays) kernels vs the scalar path.

   The batch layer promises *bitwise* equality with the scalar kernels:
   the per-element arithmetic is the same FPAN wire sequence, hand
   inlined over component planes, and the accumulation orders match.
   So these tests don't use error budgets — every comparison is on the
   raw bits of every expansion component, over random inputs and over
   the adversarial structures that break naive networks (massive
   cancellation, ulp-adjacent values, powers of two, nonoverlapping
   expansions with extreme gaps), sequential and pooled. *)

let rng = Random.State.make [| 0xba7c; 11 |]

let bits_eq a b = Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)

(* A batched instance plus the scalar component surface the bitwise
   comparison needs (Instances seals everything down to
   Numeric.BATCHED, so the extra ops come from the multifloat module
   itself). *)
module type INSTANCE = sig
  include Blas.Numeric.BATCHED

  val sub : t -> t -> t
  val components : t -> float array
  val of_components : float array -> t
end

module CheckB (N : INSTANCE) = struct
  module Ks = Blas.Kernels.Make (N)
  module Kb = Blas.Kernels.Make_batched (N)
  module V = Kb.V

  let eq_t a b =
    let ca = N.components a and cb = N.components b in
    Array.length ca = Array.length cb
    && Array.for_all2 (fun x y -> bits_eq x y) ca cb

  let check_vec what xs v =
    if Array.length xs <> V.length v then Alcotest.failf "%s %s: length" N.name what;
    Array.iteri
      (fun i x ->
        if not (eq_t x (V.get v i)) then Alcotest.failf "%s %s: element %d differs" N.name what i)
      xs

  (* --- input vectors: random and adversarial, element for element --- *)

  let random_elt () =
    N.of_components (Fpan.Gen.expansion rng ~n:V.terms ~e0_min:(-40) ~e0_max:40 ())

  let adversarial_elt i =
    match i mod 4 with
    | 0 ->
        (* extreme inter-term gaps *)
        N.of_components (Fpan.Gen.expansion rng ~n:V.terms ~e0_min:(-200) ~e0_max:200 ())
    | 1 ->
        (* ulp-adjacent to a power of two *)
        let b = Float.ldexp 1.0 (Random.State.int rng 41 - 20) in
        N.of_float (if Random.State.bool rng then Float.succ b else Float.pred b)
    | 2 ->
        (* exact power of two, half of them negative *)
        let b = Float.ldexp 1.0 (Random.State.int rng 81 - 40) in
        N.of_float (if Random.State.bool rng then b else -.b)
    | _ -> random_elt ()

  let random_elts n = Array.init n (fun _ -> random_elt ())
  let adversarial_elts n = Array.init n adversarial_elt

  (* y built to cancel massively against x: y_i = tiny - x_i, so
     x_i + y_i collapses ~all leading bits. *)
  let cancelling_against x =
    Array.map
      (fun xi -> N.sub (N.of_float (Float.ldexp (Random.State.float rng 1.0) (-45))) xi)
      x

  (* --- element/bulk op equality: add, sub, mul, roundtrips --- *)

  let test_ops () =
    List.iter
      (fun (what, xs) ->
        let n = Array.length xs in
        let ys =
          if what = "cancel" then cancelling_against xs
          else adversarial_elts n
        in
        let xv = V.of_array xs and yv = V.of_array ys in
        check_vec (what ^ " roundtrip") xs xv;
        let dst = V.create n in
        V.add ~dst xv yv;
        check_vec (what ^ " add") (Array.map2 N.add xs ys) dst;
        V.sub ~dst xv yv;
        check_vec (what ^ " sub") (Array.map2 N.sub xs ys) dst;
        V.mul ~dst xv yv;
        check_vec (what ^ " mul") (Array.map2 N.mul xs ys) dst;
        (* set/get and copy preserve bits *)
        let cp = V.copy xv in
        V.set cp 0 ys.(0);
        if not (eq_t ys.(0) (V.get cp 0)) then Alcotest.failf "%s set/get" N.name;
        check_vec "copy unaliased" xs xv)
      [ ("random", random_elts 33); ("adversarial", adversarial_elts 33);
        ("cancel", random_elts 33) ]

  (* --- kernel equality, sequential --- *)

  let check_kernels what xs ys =
    let n = Array.length xs in
    let xv = V.of_array xs and yv = V.of_array ys in
    (* DOT *)
    let ds = Ks.dot ~x:xs ~y:ys in
    let db = Kb.dot ~x:xv ~y:yv in
    if not (eq_t ds db) then Alcotest.failf "%s %s dot differs" N.name what;
    (* AXPY *)
    let alpha = adversarial_elt 0 in
    let y1 = Array.copy ys and y2 = V.of_array ys in
    Ks.axpy ~alpha ~x:xs ~y:y1;
    Kb.axpy ~alpha ~x:xv ~y:y2;
    check_vec (what ^ " axpy") y1 y2;
    (* GEMV: reuse a prefix of xs as a 6x(n/6) matrix *)
    let m = 6 in
    let nn = n / m in
    let am = Array.sub xs 0 (m * nn) in
    let ys1 = Array.make m N.zero and ys2 = V.create m in
    Ks.gemv ~m ~n:nn ~a:am ~x:(Array.sub ys 0 nn) ~y:ys1;
    Kb.gemv ~m ~n:nn ~a:(V.of_array am) ~x:(V.of_array (Array.sub ys 0 nn)) ~y:ys2;
    check_vec (what ^ " gemv") ys1 ys2;
    (* GEMM: 4x5 * 5x3 *)
    let m, k, nn = (4, 5, 3) in
    let a = Array.sub xs 0 (m * k) and b = Array.sub ys 0 (k * nn) in
    let c1 = Array.make (m * nn) N.zero in
    let c2 = V.of_array c1 in
    Ks.gemm ~m ~n:nn ~k ~a ~b ~c:c1;
    Kb.gemm ~m ~n:nn ~k ~a:(V.of_array a) ~b:(V.of_array b) ~c:c2;
    check_vec (what ^ " gemm") c1 c2

  let test_kernels () =
    let xs = random_elts 48 in
    check_kernels "random" xs (random_elts 48);
    check_kernels "cancel" xs (cancelling_against xs);
    check_kernels "adversarial" (adversarial_elts 48) (adversarial_elts 48)

  (* --- kernel equality, pooled: batched pooled must reproduce the
     scalar pooled results bit-for-bit (same chunk partition, same
     index-order combination), and the disjoint-write kernels must also
     match their own sequential forms --- *)

  let test_pool () =
    Parallel.Pool.with_pool ~domains:3 (fun pool ->
        List.iter
          (fun (what, xs, ys) ->
            let n = Array.length xs in
            let xv = V.of_array xs and yv = V.of_array ys in
            let ds = Ks.dot_pool pool ~x:xs ~y:ys in
            let db = Kb.dot_pool pool ~x:xv ~y:yv in
            if not (eq_t ds db) then Alcotest.failf "%s %s pool dot differs" N.name what;
            let alpha = adversarial_elt 0 in
            let y1 = Array.copy ys and y2 = V.of_array ys in
            Ks.axpy_pool pool ~alpha ~x:xs ~y:y1;
            Kb.axpy_pool pool ~alpha ~x:xv ~y:y2;
            check_vec (what ^ " pool axpy") y1 y2;
            let m = 6 in
            let nn = n / m in
            let am = Array.sub xs 0 (m * nn) in
            let ys1 = Array.make m N.zero and ys2 = V.create m in
            Ks.gemv_pool pool ~m ~n:nn ~a:am ~x:(Array.sub ys 0 nn) ~y:ys1;
            Kb.gemv_pool pool ~m ~n:nn ~a:(V.of_array am) ~x:(V.of_array (Array.sub ys 0 nn))
              ~y:ys2;
            check_vec (what ^ " pool gemv") ys1 ys2;
            let m, k, nn = (4, 5, 3) in
            let a = Array.sub xs 0 (m * k) and b = Array.sub ys 0 (k * nn) in
            let c1 = Array.make (m * nn) N.zero in
            let c2 = V.of_array c1 in
            Ks.gemm_pool pool ~m ~n:nn ~k ~a ~b ~c:c1;
            Kb.gemm_pool pool ~m ~n:nn ~k ~a:(V.of_array a) ~b:(V.of_array b) ~c:c2;
            check_vec (what ^ " pool gemm") c1 c2)
          (let xs = random_elts 64 in
           [ ("random", xs, random_elts 64);
             ("cancel", xs, cancelling_against xs);
             ("adversarial", adversarial_elts 64, adversarial_elts 64) ]))

  (* --- transpose: index spot-checks against the definition, and
     transpose-twice = identity, across shapes that straddle the 32x32
     cache block (tall, wide, square, degenerate) --- *)

  let test_transpose () =
    List.iter
      (fun (m, n) ->
        let xs = random_elts (m * n) in
        let src = V.of_array xs in
        let dst = V.create (m * n) in
        V.transpose ~m ~n ~src ~dst;
        for i = 0 to m - 1 do
          for j = 0 to n - 1 do
            if not (eq_t xs.((i * n) + j) (V.get dst ((j * m) + i))) then
              Alcotest.failf "%s transpose %dx%d: (%d,%d) differs" N.name m n i j
          done
        done;
        let back = V.create (m * n) in
        V.transpose ~m:n ~n:m ~src:dst ~dst:back;
        check_vec (Printf.sprintf "transpose twice %dx%d" m n) xs back)
      [ (1, 1); (1, 17); (17, 1); (5, 7); (32, 32); (33, 31); (40, 96) ]

  (* --- outputs of the batched networks stay nonoverlapping (the
     paper's Eq. 8 invariant), including under massive cancellation --- *)

  let test_nonoverlap () =
    let n = 64 in
    let xs = random_elts n in
    List.iter
      (fun ys ->
        let xv = V.of_array xs and yv = V.of_array ys in
        let dst = V.create n in
        List.iter
          (fun (what, (op : dst:V.t -> V.t -> V.t -> unit)) ->
            op ~dst xv yv;
            for i = 0 to n - 1 do
              if not (Eft.is_nonoverlapping_seq (N.components (V.get dst i))) then
                Alcotest.failf "%s batched %s output %d overlaps" N.name what i
            done)
          [ ("add", V.add); ("sub", V.sub); ("mul", V.mul) ])
      [ random_elts n; cancelling_against xs ]

  (* --- qcheck: dot bitwise equality on arbitrary sign/magnitude mixes --- *)

  let arb_elt_floats =
    let open QCheck.Gen in
    let tricky =
      let* m = float_range (-2.0) 2.0 in
      let* e = int_range (-40) 40 in
      return (Float.ldexp m e)
    in
    let one = frequency [ (6, tricky); (1, return 0.0); (1, return 1.0); (1, return (-1.0)) ] in
    QCheck.make
      ~print:(fun l -> String.concat ";" (List.map (Printf.sprintf "%h") l))
      (list_size (int_range 1 40) one)

  let qcheck_dot =
    QCheck.Test.make ~count:300 ~name:(N.name ^ " batched dot bitwise = scalar dot")
      (QCheck.pair arb_elt_floats arb_elt_floats)
      (fun (lx, ly) ->
        let n = min (List.length lx) (List.length ly) in
        let xs = Array.init n (List.nth lx) |> Array.map N.of_float in
        let ys = Array.init n (List.nth ly) |> Array.map N.of_float in
        eq_t (Ks.dot ~x:xs ~y:ys) (Kb.dot ~x:(V.of_array xs) ~y:(V.of_array ys)))

  let qcheck_axpy =
    QCheck.Test.make ~count:300 ~name:(N.name ^ " batched axpy bitwise = scalar axpy")
      (QCheck.pair arb_elt_floats arb_elt_floats)
      (fun (lx, ly) ->
        let n = min (List.length lx) (List.length ly) in
        let xs = Array.init n (List.nth lx) |> Array.map N.of_float in
        let ys = Array.init n (List.nth ly) |> Array.map N.of_float in
        let alpha = N.of_float (List.nth lx 0) in
        let y1 = Array.copy ys and y2 = V.of_array ys in
        Ks.axpy ~alpha ~x:xs ~y:y1;
        Kb.axpy ~alpha ~x:(V.of_array xs) ~y:y2;
        Array.for_all (fun b -> b) (Array.mapi (fun i v -> eq_t v (V.get y2 i)) y1))

  (* --- cross-op fusion: the fused single-pass kernels (sum, dot,
     dot_sub, axpy_dot, gemv_residual) are bitwise their op-by-op
     compositions -- the spellings that materialize every intermediate
     plane -- over the Section 4.4 corpus classes (subnormal,
     near-overflow, cancellation, ulp ties, zeros, specials), lengths
     {0, 1, 7, 1024}, and on the work-stealing engine at 1 and 4
     workers. --- *)

  module Eng = Runtime.Engine.Make (N) (V)

  (* the corpus speaks multi-term expansions only; the single-plane
     double tier falls back to the adversarial element mix *)
  let corpus_elts len off =
    if V.terms < 2 then (adversarial_elts len, adversarial_elts len)
    else
    let xs = Array.make len N.zero and ys = Array.make len N.zero in
    for j = 0 to len - 1 do
      let c = Check.Corpus.scalar_case rng ~terms:V.terms (off + j) in
      xs.(j) <- N.of_components c.Check.Corpus.x;
      ys.(j) <- N.of_components c.Check.Corpus.y
    done;
    (xs, ys)

  let check_elt what len b1 b2 =
    if not (eq_t b1 b2) then Alcotest.failf "%s fused %s (len %d) differs" N.name what len

  let test_fused () =
    List.iter
      (fun len ->
        let xs, ys = corpus_elts len (7 * len) in
        let ws, _ = corpus_elts len ((11 * len) + 3) in
        let alpha = if len = 0 then N.of_float 1.5 else ys.(0) in
        let b0 = if len = 0 then N.of_float 0.75 else xs.(0) in
        let xv = V.of_array xs and yv = V.of_array ys and wv = V.of_array ws in
        (* sum is the scalar add fold in index order *)
        check_elt "sum" len
          (Array.fold_left N.add N.zero xs)
          (V.sum ~init:N.zero ~x:xv ~xoff:0 ~len);
        (* dot = elementwise mul into a temporary plane set, then sum *)
        let tmp = V.create len in
        V.mul ~dst:tmp xv yv;
        let d_unfused = V.sum ~init:N.zero ~x:tmp ~xoff:0 ~len in
        let d_fused = V.dot ~init:N.zero ~x:xv ~xoff:0 ~y:yv ~yoff:0 ~len in
        check_elt "dot" len d_unfused d_fused;
        (* dot_sub = the subtract after the dot fold *)
        check_elt "dot_sub" len (N.sub b0 d_fused)
          (V.dot_sub ~b:b0 ~x:xv ~xoff:0 ~y:yv ~yoff:0 ~len);
        (* axpy_dot = axpy pass, then dot re-reading the updated plane *)
        let y1 = V.of_array ys and y2 = V.of_array ys in
        let acc_f = V.axpy_dot ~lo:0 ~hi:len ~alpha ~x:xv ~y:y1 ~w:wv ~init:N.zero in
        V.axpy ~lo:0 ~hi:len ~alpha ~x:xv ~y:y2;
        let acc_u = V.dot ~init:N.zero ~x:y2 ~xoff:0 ~y:wv ~yoff:0 ~len in
        check_elt "axpy_dot acc" len acc_u acc_f;
        check_vec (Printf.sprintf "axpy_dot y (len %d)" len) (V.to_array y2) y1;
        (* gemv_residual = gemv into a temporary vector, then subtract *)
        let m = 3 in
        let amat, _ = corpus_elts (m * len) ((13 * len) + 1) in
        let bvec, _ = corpus_elts m ((17 * len) + 5) in
        let av = V.of_array amat and bv = V.of_array bvec in
        let r_f = V.create m and yt = V.create m and r_u = V.create m in
        Kb.gemv_residual ~m ~n:len ~a:av ~x:xv ~b:bv ~r:r_f;
        Kb.gemv ~m ~n:len ~a:av ~x:xv ~y:yt;
        V.sub ~dst:r_u bv yt;
        check_vec (Printf.sprintf "gemv_residual (len %d)" len) (V.to_array r_u) r_f;
        (* the engine's fused paths reproduce their own two-pass
           compositions at 1 and 4 workers *)
        List.iter
          (fun workers ->
            Runtime.Sched.with_sched ~workers (fun rt ->
                let y3 = V.of_array ys and y4 = V.of_array ys in
                let af = Eng.axpy_dot rt ~alpha ~x:xv ~y:y3 ~w:wv () in
                Eng.axpy rt ~alpha ~x:xv ~y:y4 ();
                let au = Eng.dot rt y4 wv in
                check_elt (Printf.sprintf "engine axpy_dot (%d workers)" workers) len au af;
                check_vec
                  (Printf.sprintf "engine axpy_dot y (%d workers, len %d)" workers len)
                  (V.to_array y4) y3;
                let r_rt = V.create m in
                Eng.gemv_residual rt ~m ~n:len ~a:av ~x:xv ~b:bv ~r:r_rt ();
                check_vec
                  (Printf.sprintf "engine gemv_residual (%d workers, len %d)" workers len)
                  (V.to_array r_f) r_rt))
          [ 1; 4 ])
      [ 0; 1; 7; 1024 ]

  (* --- the IR interpreter is an executable oracle: iterating the
     fused per-element wire programs from lib/fpan_ir reproduces the
     planar kernels bit for bit (tiers with a wire program only) --- *)

  let test_ir_oracle () =
    if V.terms >= 2 && V.terms <= 4 then begin
      let t = V.terms in
      let len = 23 in
      let comps = N.components in
      let xs, ys = corpus_elts len 31 in
      let ws, _ = corpus_elts len 57 in
      let xv = V.of_array xs in
      let dot_step = Fpan_ir.Fuse.chain "dot_step" t in
      let acc = ref N.zero in
      for i = 0 to len - 1 do
        acc :=
          N.of_components
            (Fpan_ir.Interp.run dot_step
               (Array.concat [ comps !acc; comps xs.(i); comps ys.(i) ]))
      done;
      let v = V.dot ~init:N.zero ~x:xv ~xoff:0 ~y:(V.of_array ys) ~yoff:0 ~len in
      if not (eq_t !acc v) then Alcotest.failf "%s IR dot oracle differs" N.name;
      let rtail = Fpan_ir.Fuse.chain "residual_tail" t in
      let b0 = ys.(0) in
      let r = N.of_components (Fpan_ir.Interp.run rtail (Array.append (comps b0) (comps v))) in
      let v2 = V.dot_sub ~b:b0 ~x:xv ~xoff:0 ~y:(V.of_array ys) ~yoff:0 ~len in
      if not (eq_t r v2) then Alcotest.failf "%s IR residual_tail oracle differs" N.name;
      let step = Fpan_ir.Fuse.chain "axpy_dot_step" t in
      let alpha = ws.(0) in
      let y = Array.copy ys in
      let acc = ref N.zero in
      for i = 0 to len - 1 do
        let out =
          Fpan_ir.Interp.run step
            (Array.concat
               [ comps alpha; comps xs.(i); comps y.(i); comps ws.(i); comps !acc ])
        in
        y.(i) <- N.of_components (Array.sub out 0 t);
        acc := N.of_components (Array.sub out t t)
      done;
      let yv = V.of_array ys in
      let accv = V.axpy_dot ~lo:0 ~hi:len ~alpha ~x:xv ~y:yv ~w:(V.of_array ws) ~init:N.zero in
      if not (eq_t !acc accv) then Alcotest.failf "%s IR axpy_dot oracle acc differs" N.name;
      check_vec "IR axpy_dot oracle y" y yv
    end

  let qcheck_fused =
    QCheck.Test.make ~count:300
      ~name:(N.name ^ " fused axpy_dot/dot_sub bitwise = unfused")
      (QCheck.pair arb_elt_floats arb_elt_floats)
      (fun (lx, ly) ->
        let n = min (List.length lx) (List.length ly) in
        let xs = Array.init n (List.nth lx) |> Array.map N.of_float in
        let ys = Array.init n (List.nth ly) |> Array.map N.of_float in
        let alpha = N.of_float (List.nth ly 0) in
        let b = N.of_float (List.nth lx 0) in
        let xv = V.of_array xs and wv = V.of_array xs in
        let y1 = V.of_array ys and y2 = V.of_array ys in
        let acc_f = V.axpy_dot ~lo:0 ~hi:n ~alpha ~x:xv ~y:y1 ~w:wv ~init:N.zero in
        V.axpy ~lo:0 ~hi:n ~alpha ~x:xv ~y:y2;
        let acc_u = V.dot ~init:N.zero ~x:y2 ~xoff:0 ~y:wv ~yoff:0 ~len:n in
        let ds = V.dot_sub ~b ~x:xv ~xoff:0 ~y:(V.of_array ys) ~yoff:0 ~len:n in
        let du =
          N.sub b (V.dot ~init:N.zero ~x:xv ~xoff:0 ~y:(V.of_array ys) ~yoff:0 ~len:n)
        in
        eq_t acc_f acc_u && eq_t ds du
        && Array.for_all (fun ok -> ok)
             (Array.mapi (fun i v -> eq_t v (V.get y1 i)) (V.to_array y2)))

  let cases name =
    [ Alcotest.test_case (name ^ " ops bitwise") `Quick test_ops;
      Alcotest.test_case (name ^ " kernels bitwise") `Quick test_kernels;
      Alcotest.test_case (name ^ " pooled bitwise") `Quick test_pool;
      Alcotest.test_case (name ^ " transpose") `Quick test_transpose;
      Alcotest.test_case (name ^ " outputs nonoverlapping") `Quick test_nonoverlap;
      Alcotest.test_case (name ^ " fused kernels bitwise") `Quick test_fused;
      Alcotest.test_case (name ^ " IR oracle") `Quick test_ir_oracle;
      QCheck_alcotest.to_alcotest qcheck_dot;
      QCheck_alcotest.to_alcotest qcheck_axpy;
      QCheck_alcotest.to_alcotest qcheck_fused ]
end

module C2 = CheckB (struct
  include Blas.Instances.Mf2

  let sub = Multifloat.Mf2.sub
  let components = Multifloat.Mf2.components
  let of_components = Multifloat.Mf2.of_components
end)

module C3 = CheckB (struct
  include Blas.Instances.Mf3

  let sub = Multifloat.Mf3.sub
  let components = Multifloat.Mf3.components
  let of_components = Multifloat.Mf3.of_components
end)

module C4 = CheckB (struct
  include Blas.Instances.Mf4

  let sub = Multifloat.Mf4.sub
  let components = Multifloat.Mf4.components
  let of_components = Multifloat.Mf4.of_components
end)

(* Double (Mf1v) rides the same planar machinery with a single plane. *)
module C1 = CheckB (struct
  include Blas.Instances.Double

  let sub a b = a -. b
  let components x = [| x |]
  let of_components c = c.(0)
end)

let () =
  Alcotest.run "batch"
    [ ("double", C1.cases "double");
      ("mf2", C2.cases "mf2");
      ("mf3", C3.cases "mf3");
      ("mf4", C4.cases "mf4") ]
