(* The randomized verifier on the multiplication networks: mul2/mul3/mul4
   driven through Checker.check_mul (TwoProd expansion step included)
   must satisfy both Section 3 correctness conditions, with the observed
   worst discarded-error mass below the format's claimed 2^-q bound.

   The worst_error_log2 assertion is the quantitative half: it is the
   measured analogue of the SMT certificate, and a regression in a
   renormalization wire order shows up here as the bound creeping above
   -error_exp long before it breaks an end-to-end value test. *)

let check_network name net terms =
  let expand = Fpan.Networks.mul_expand terms in
  let report = Fpan.Checker.check_mul net ~terms ~expand ~cases:20_000 ~seed:1 in
  Alcotest.(check bool)
    (Printf.sprintf "%s passes both correctness conditions" name)
    true
    (Fpan.Checker.passed report);
  Alcotest.(check int) (Printf.sprintf "%s ran all cases" name) 20_000 report.Fpan.Checker.cases_run;
  let bound = -.Float.of_int net.Fpan.Network.error_exp in
  if report.Fpan.Checker.worst_error_log2 > bound then
    Alcotest.failf "%s: worst discarded error 2^%.2f above claimed bound 2^%.0f" name
      report.Fpan.Checker.worst_error_log2 bound

let test_mul2 () = check_network "mul2" Fpan.Networks.mul2 2
let test_mul3 () = check_network "mul3" Fpan.Networks.mul3 3
let test_mul4 () = check_network "mul4" Fpan.Networks.mul4 4

(* The verifier itself must have teeth: dropping the last renormalization
   gate from mul2 (a plausible "optimization" bug) has to be caught. *)
let test_checker_catches_truncated_net () =
  let net = Fpan.Networks.mul2 in
  let truncated =
    { net with
      Fpan.Network.gates =
        Array.sub net.Fpan.Network.gates 0 (Array.length net.Fpan.Network.gates - 1)
    }
  in
  let report =
    Fpan.Checker.check_mul truncated ~terms:2 ~expand:(Fpan.Networks.mul_expand 2) ~cases:20_000
      ~seed:1
  in
  Alcotest.(check bool) "truncated mul2 is rejected" false (Fpan.Checker.passed report)

let () =
  Alcotest.run "checker-mul"
    [ ( "section-3-bounds",
        [ Alcotest.test_case "mul2" `Quick test_mul2;
          Alcotest.test_case "mul3" `Quick test_mul3;
          Alcotest.test_case "mul4" `Quick test_mul4;
          Alcotest.test_case "truncated net caught" `Quick test_checker_catches_truncated_net ] ) ]
