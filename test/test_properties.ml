(* QCheck property tests over the public arithmetic types: algebraic
   laws that must hold exactly, and accuracy laws that must hold to the
   documented bounds, on randomly generated expansions. *)

let ( ==> ) = QCheck.( ==> )

let rng_of_seed seed = Random.State.make [| seed; 0x9c9 |]

(* Arbitrary nonoverlapping expansions, sized per module. *)
let arb_expansion n =
  let gen st =
    (* QCheck gives us its own random state. *)
    Fpan.Gen.expansion st ~n ~e0_min:(-50) ~e0_max:50 ()
  in
  QCheck.make
    ~print:(fun xs -> String.concat "," (Array.to_list (Array.map (Printf.sprintf "%h") xs)))
    gen

module Props (M : Multifloat.Ops.S) = struct
  let arb =
    QCheck.map
      ~rev:(fun m -> M.components m)
      M.of_components (arb_expansion M.terms)

  let exact_of m = Exact.sum_floats (M.components m)

  let within_bits got ref_ bits =
    let diff = Exact.sum (exact_of got) (Exact.neg ref_) in
    let d = Float.abs (Exact.approx (Exact.compress diff)) in
    let r = Float.abs (Exact.approx (Exact.compress ref_)) in
    d = 0.0 || (r > 0.0 && Float.log2 d -. Float.log2 r <= Float.of_int (-bits))

  let tests name =
    [ QCheck.Test.make ~count:2000 ~name:(name ^ ": add commutes (bitwise)") (QCheck.pair arb arb)
        (fun (a, b) -> M.components (M.add a b) = M.components (M.add b a));
      QCheck.Test.make ~count:2000 ~name:(name ^ ": mul commutes (bitwise)") (QCheck.pair arb arb)
        (fun (a, b) -> M.components (M.mul a b) = M.components (M.mul b a));
      QCheck.Test.make ~count:2000 ~name:(name ^ ": neg is exact involution") arb (fun a ->
          M.components (M.neg (M.neg a)) = M.components a);
      QCheck.Test.make ~count:2000 ~name:(name ^ ": a + 0 = a") arb (fun a ->
          M.equal (M.add a M.zero) a);
      QCheck.Test.make ~count:2000 ~name:(name ^ ": a * 1 = a") arb (fun a ->
          M.equal (M.mul a M.one) a);
      QCheck.Test.make ~count:2000 ~name:(name ^ ": a - a = 0") arb (fun a -> M.is_zero (M.sub a a));
      QCheck.Test.make ~count:1000 ~name:(name ^ ": add accuracy bound") (QCheck.pair arb arb)
        (fun (a, b) ->
          within_bits (M.add a b) (Exact.sum (exact_of a) (exact_of b)) M.error_exp);
      QCheck.Test.make ~count:1000 ~name:(name ^ ": mul accuracy bound") (QCheck.pair arb arb)
        (fun (a, b) -> within_bits (M.mul a b) (Exact.mul (exact_of a) (exact_of b)) M.error_exp);
      QCheck.Test.make ~count:1000 ~name:(name ^ ": output nonoverlapping") (QCheck.pair arb arb)
        (fun (a, b) ->
          Eft.is_nonoverlapping_seq (M.components (M.add a b))
          && Eft.is_nonoverlapping_seq (M.components (M.mul a b)));
      QCheck.Test.make ~count:500 ~name:(name ^ ": distributivity within bounds")
        (QCheck.triple arb arb arb) (fun (a, b, c) ->
          (* a (b + c) vs ab + ac.  When b and c cancel, the error of the
             right-hand side is naturally relative to |ab| + |ac|, not to
             the small result, so exclude heavy cancellation. *)
          QCheck.assume
            (Float.abs (M.to_float (M.add b c))
            >= (Float.abs (M.to_float b) +. Float.abs (M.to_float c)) *. Float.ldexp 1.0 (-8));
          let lhs = M.mul a (M.add b c) in
          let rhs = M.add (M.mul a b) (M.mul a c) in
          let ref_ = Exact.mul (exact_of a) (Exact.sum (exact_of b) (exact_of c)) in
          within_bits lhs ref_ (M.error_exp - 3) && within_bits rhs ref_ (M.error_exp - 12));
      QCheck.Test.make ~count:500 ~name:(name ^ ": compare antisymmetry") (QCheck.pair arb arb)
        (fun (a, b) -> M.compare a b = -M.compare b a);
      QCheck.Test.make ~count:500 ~name:(name ^ ": triangle |a+b| <= |a| + |b|")
        (QCheck.pair arb arb) (fun (a, b) ->
          M.compare (M.abs (M.add a b)) (M.add (M.abs a) (M.abs b)) <= 0);
      QCheck.Test.make ~count:300 ~name:(name ^ ": sqrt monotone") (QCheck.pair arb arb)
        (fun (a, b) ->
          let a = M.abs a and b = M.abs b in
          M.compare a b <= 0 ==> (M.compare (M.sqrt a) (M.sqrt b) <= 0));
      QCheck.Test.make ~count:300 ~name:(name ^ ": to_string/of_string roundtrip") arb (fun a ->
          let b = M.of_string (M.to_string a) in
          within_bits b (exact_of a) (M.precision_bits - 10)) ]
end

module P2 = Props (Multifloat.Mf2)
module P3 = Props (Multifloat.Mf3)
module P4 = Props (Multifloat.Mf4)

(* Bigfloat properties at mixed precisions. *)
let arb_bigfloat =
  let gen st =
    let m = Random.State.float st 2.0 -. 1.0 in
    let e = Random.State.int st 100 - 50 in
    Bigfloat.of_float ~prec:150 (Float.ldexp m e)
  in
  QCheck.make ~print:Bigfloat.to_string gen

let bigfloat_tests =
  [ QCheck.Test.make ~count:2000 ~name:"bigfloat: add commutes" (QCheck.pair arb_bigfloat arb_bigfloat)
      (fun (a, b) -> Bigfloat.equal (Bigfloat.add a b) (Bigfloat.add b a));
    QCheck.Test.make ~count:2000 ~name:"bigfloat: mul commutes" (QCheck.pair arb_bigfloat arb_bigfloat)
      (fun (a, b) -> Bigfloat.equal (Bigfloat.mul a b) (Bigfloat.mul b a));
    QCheck.Test.make ~count:2000 ~name:"bigfloat: a - a = 0" arb_bigfloat (fun a ->
        Bigfloat.is_zero (Bigfloat.sub a a));
    QCheck.Test.make ~count:1000 ~name:"bigfloat: (a/b)*b ~ a" (QCheck.pair arb_bigfloat arb_bigfloat)
      (fun (a, b) ->
        (not (Bigfloat.is_zero b))
        ==>
        let q = Bigfloat.div a b in
        let back = Bigfloat.mul q b in
        let diff = Bigfloat.abs (Bigfloat.sub back a) in
        Bigfloat.is_zero diff
        || Bigfloat.compare diff
             (Bigfloat.mul (Bigfloat.abs a) (Bigfloat.of_float ~prec:150 (Float.ldexp 1.0 (-145))))
           <= 0);
    QCheck.Test.make ~count:1000 ~name:"bigfloat: sqrt(a)^2 ~ a" arb_bigfloat (fun a ->
        let a = Bigfloat.abs a in
        let s = Bigfloat.sqrt a in
        let diff = Bigfloat.abs (Bigfloat.sub (Bigfloat.mul s s) a) in
        Bigfloat.is_zero diff
        || Bigfloat.compare diff
             (Bigfloat.mul a (Bigfloat.of_float ~prec:150 (Float.ldexp 1.0 (-145))))
           <= 0);
    QCheck.Test.make ~count:500 ~name:"bigfloat: round_to widens exactly" arb_bigfloat (fun a ->
        Bigfloat.equal (Bigfloat.round_to ~prec:300 a) a) ]

(* CAMPARY baseline properties. *)
let campary_tests =
  [ QCheck.Test.make ~count:1000 ~name:"campary: add accuracy" (QCheck.pair (arb_expansion 3) (arb_expansion 3))
      (fun (x, y) ->
        let s = Baselines.Campary.add x y in
        let ref_ = Exact.sum (Exact.sum_floats x) (Exact.sum_floats y) in
        let diff = Exact.sum (Exact.sum_floats s) (Exact.neg ref_) in
        let d = Float.abs (Exact.approx (Exact.compress diff)) in
        let r = Float.abs (Exact.approx (Exact.compress ref_)) in
        d = 0.0 || (r > 0.0 && Float.log2 d -. Float.log2 r <= -150.0));
    QCheck.Test.make ~count:1000 ~name:"campary: sub self = 0" (arb_expansion 4) (fun x ->
        Baselines.Campary.to_float (Baselines.Campary.sub x x) = 0.0) ]

(* Quad-double baseline properties. *)
let qd_tests =
  let arb4 = arb_expansion 4 in
  [ QCheck.Test.make ~count:1000 ~name:"qd: add accuracy class" (QCheck.pair arb4 arb4)
      (fun (x, y) ->
        let s = Baselines.Qd_qd.add (Baselines.Qd_qd.of_components x) (Baselines.Qd_qd.of_components y) in
        let ref_ = Exact.sum (Exact.sum_floats x) (Exact.sum_floats y) in
        let diff = Exact.sum (Exact.sum_floats (Baselines.Qd_qd.components s)) (Exact.neg ref_) in
        let d = Float.abs (Exact.approx (Exact.compress diff)) in
        let r = Float.abs (Exact.approx (Exact.compress ref_)) in
        d = 0.0 || (r > 0.0 && Float.log2 d -. Float.log2 r <= -200.0));
    QCheck.Test.make ~count:1000 ~name:"qd: sub self = 0" arb4 (fun x ->
        let v = Baselines.Qd_qd.of_components x in
        Baselines.Qd_qd.to_float (Baselines.Qd_qd.sub v v) = 0.0) ]

(* Emulated-binary32 generic type properties. *)
let gpu_tests =
  let arbf = QCheck.map Gpu32.F32.round (QCheck.float_range (-1000.0) 1000.0) in
  [ QCheck.Test.make ~count:1000 ~name:"gpu mf3: add commutes" (QCheck.pair arbf arbf)
      (fun (x, y) ->
        let a = Gpu32.Gpu.Mf3.of_float x and b = Gpu32.Gpu.Mf3.of_float y in
        Gpu32.Gpu.Mf3.components (Gpu32.Gpu.Mf3.add a b)
        = Gpu32.Gpu.Mf3.components (Gpu32.Gpu.Mf3.add b a));
    QCheck.Test.make ~count:1000 ~name:"gpu mf3: a - a = 0" arbf (fun x ->
        let a = Gpu32.Gpu.Mf3.of_float x in
        Gpu32.Gpu.Mf3.to_float (Gpu32.Gpu.Mf3.sub a a) = 0.0) ]

let () =
  ignore rng_of_seed;
  (* Fixed QCheck seed (each test gets a fresh state, so the stream does
     not depend on test order).  The accuracy-class properties here bound
     the error of *approximate* baselines (QD, CAMPARY); such bounds are
     falsifiable on rare adversarial draws — QD's add, e.g., exceeds the
     2^-200 class on heavy cancellation with a component one ulp under a
     power of two, roughly once per ~7 self-seeded runs — so a
     self-seeded suite flakes.  Override with QCHECK_SEED to explore. *)
  let to_alcotest =
    List.map (fun t -> QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 0x5eed |]) t)
  in
  Alcotest.run "properties"
    [ ("mf2", to_alcotest (P2.tests "mf2"));
      ("mf3", to_alcotest (P3.tests "mf3"));
      ("mf4", to_alcotest (P4.tests "mf4"));
      ("bigfloat", to_alcotest bigfloat_tests);
      ("campary", to_alcotest campary_tests);
      ("qd", to_alcotest qd_tests);
      ("gpu", to_alcotest gpu_tests) ]
