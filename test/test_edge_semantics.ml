(* Section 4.4 of the paper documents exactly how the branch-free
   algorithms deviate from IEEE 754 on special values; these tests pin
   that documented behavior so it cannot drift silently:

   - the sign of zero is not preserved (-0.0 becomes +0.0 in results);
   - +/-Inf collapses to NaN (TwoSum computes Inf - Inf internally);
   - the effective overflow threshold is one machine epsilon narrower
     than DBL_MAX (TwoSum can overflow internally at the boundary);
   - NaN propagates. *)

module M2 = Multifloat.Mf2
module M4 = Multifloat.Mf4

let tf = M2.to_float

let test_negative_zero_not_preserved () =
  (* -0.0 + 0.0: IEEE says -0.0 under roundTiesToEven?  No: +0.0; but
     -0.0 + -0.0 is -0.0 in IEEE.  Our algorithms lose the sign. *)
  let nz = M2.of_float (-0.0) in
  let r = M2.add nz nz in
  Alcotest.(check bool) "result is zero" true (tf r = 0.0);
  Alcotest.(check bool) "sign of zero dropped" false
    (Int64.bits_of_float (tf r) = Int64.bits_of_float (-0.0) )
  (* the bit pattern is +0.0, unlike IEEE's -0.0 *)

let test_infinity_collapses_to_nan () =
  let inf = M2.of_float Float.infinity in
  let one = M2.one in
  (* inf + 1: TwoSum computes (inf + 1) - 1 - ... = inf - inf = nan
     internally, so the result is NaN, not inf (Section 4.4). *)
  Alcotest.(check bool) "inf + 1 -> nan" true (M2.is_nan (M2.add inf one));
  Alcotest.(check bool) "inf * 1 -> nan or inf" true
    (let p = M2.mul inf one in
     M2.is_nan p || tf p = Float.infinity);
  Alcotest.(check bool) "inf - inf -> nan" true (M2.is_nan (M2.sub inf inf))

let test_nan_propagates () =
  let nan = M2.of_float Float.nan in
  Alcotest.(check bool) "nan + 1" true (M2.is_nan (M2.add nan M2.one));
  Alcotest.(check bool) "nan * 2" true (M2.is_nan (M2.mul nan M2.two));
  Alcotest.(check bool) "sqrt nan" true (M2.is_nan (M2.sqrt nan));
  Alcotest.(check bool) "1 / nan" true (M2.is_nan (M2.div M2.one nan))

let test_overflow_threshold () =
  (* Far from the threshold everything is fine... *)
  let big = M2.of_float (Float.ldexp 1.0 1000) in
  let r = M2.add big big in
  Alcotest.(check (float 0.0)) "2^1000 doubles" (Float.ldexp 1.0 1001) (tf r);
  (* ...at DBL_MAX itself, the result overflows to inf or collapses to
     NaN through the internal TwoSum (documented, one-ulp-narrower
     threshold). *)
  let dmax = M2.of_float Float.max_float in
  let r = M2.add dmax dmax in
  Alcotest.(check bool) "DBL_MAX + DBL_MAX degenerates" true
    (M2.is_nan r || tf r = Float.infinity)

let test_underflow_gradual () =
  (* Subnormal-range values: the expansion loses relative precision but
     sums stay ordered and finite (the paper's formal machinery handles
     subnormals transparently; the library inherits hardware gradual
     underflow). *)
  let tiny = M4.of_float (Float.ldexp 1.0 (-1070)) in
  let s = M4.add tiny tiny in
  Alcotest.(check (float 0.0)) "2 * 2^-1070" (Float.ldexp 1.0 (-1069)) (M4.to_float s);
  let prod = M4.mul tiny tiny in
  Alcotest.(check (float 0.0)) "underflow to zero" 0.0 (M4.to_float prod)

let test_exponent_range_not_extended () =
  (* Section 4.4: expansions extend precision, NOT exponent range.
     2^600 * 2^600 overflows even though true quad would hold it. *)
  let big = M4.of_float (Float.ldexp 1.0 600) in
  let p = M4.mul big big in
  Alcotest.(check bool) "2^1200 overflows" true
    (M4.is_nan p || M4.to_float p = Float.infinity)

let test_division_by_zero () =
  Alcotest.(check bool) "1/0" true
    (let q = M2.div M2.one M2.zero in
     M2.to_float q = Float.infinity || M2.is_nan q);
  Alcotest.(check bool) "0/0 nan-ish" true
    (let q = M2.div M2.zero M2.zero in
     M2.is_nan q || M2.is_zero q)

let test_comparisons_with_specials () =
  let nan = M2.of_float Float.nan in
  (* equal never holds for nan *)
  Alcotest.(check bool) "nan <> nan" false (M2.equal nan nan);
  Alcotest.(check bool) "min/max total on finites" true
    (M2.equal (M2.min M2.one M2.two) M2.one && M2.equal (M2.max M2.one M2.two) M2.two)

(* The planar Batch path advertises bitwise equality with the scalar
   kernels — including on the special values above, where "the
   documented deviation" must be the SAME deviation: the same NaN
   collapse, the same sign-of-zero loss, the same overflow behavior,
   component for component. *)

let special_pool =
  [ Float.nan; Float.infinity; Float.neg_infinity; 0.0; -0.0; Float.max_float; -.Float.max_float;
    0x1p-1074; -0x1p-1074; 1.0; -1.5; 0x1.fffffffffffffp+1023 ]

let bits_eq a b = Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)

let check_batch_matches_scalar (type s v) (name : string)
    (module S : Multifloat.Batch.SCALAR with type t = s)
    (module V : Multifloat.Batch.V with type elt = s and type t = v) ops =
  let pool = Array.of_list special_pool in
  let n = Array.length pool in
  (* All ordered pairs of specials in the leading component, a few with
     live tails, as one batch. *)
  let mk f = S.of_components (Array.init S.terms (fun i -> if i = 0 then f else 0.0)) in
  let mk_tail f =
    S.of_components
      (Array.init S.terms (fun i -> if i = 0 then f else if i = 1 then 0x1p-60 else 0.0))
  in
  let xs = Array.init (n * n * 2) (fun k -> (if k < n * n then mk else mk_tail) pool.(k mod n)) in
  let ys = Array.init (n * n * 2) (fun k -> (if k < n * n then mk else mk_tail) pool.(k / n mod n)) in
  List.iter
    (fun (opname, scalar_op, batch_op) ->
      let vx = V.of_array xs and vy = V.of_array ys in
      let dst = V.create (Array.length xs) in
      batch_op ~dst vx vy;
      Array.iteri
        (fun i x ->
          let want = S.components (scalar_op x ys.(i)) in
          let got = S.components (V.get dst i) in
          let ok = Array.for_all2 bits_eq want got in
          if not ok then
            Alcotest.failf "%s %s: lane %d differs bitwise from scalar (want %s, got %s)" name
              opname i
              (String.concat " " (Array.to_list (Array.map (Printf.sprintf "%h") want)))
              (String.concat " " (Array.to_list (Array.map (Printf.sprintf "%h") got))))
        xs)
    ops

let test_batch_specials_mf2 () =
  check_batch_matches_scalar "mf2"
    (module Multifloat.Mf2)
    (module Multifloat.Batch.Mf2v)
    [ ("add", Multifloat.Mf2.add, Multifloat.Batch.Mf2v.add);
      ("sub", Multifloat.Mf2.sub, Multifloat.Batch.Mf2v.sub);
      ("mul", Multifloat.Mf2.mul, Multifloat.Batch.Mf2v.mul) ]

let test_batch_specials_mf3 () =
  check_batch_matches_scalar "mf3"
    (module Multifloat.Mf3)
    (module Multifloat.Batch.Mf3v)
    [ ("add", Multifloat.Mf3.add, Multifloat.Batch.Mf3v.add);
      ("sub", Multifloat.Mf3.sub, Multifloat.Batch.Mf3v.sub);
      ("mul", Multifloat.Mf3.mul, Multifloat.Batch.Mf3v.mul) ]

let test_batch_specials_mf4 () =
  check_batch_matches_scalar "mf4"
    (module Multifloat.Mf4)
    (module Multifloat.Batch.Mf4v)
    [ ("add", Multifloat.Mf4.add, Multifloat.Batch.Mf4v.add);
      ("sub", Multifloat.Mf4.sub, Multifloat.Batch.Mf4v.sub);
      ("mul", Multifloat.Mf4.mul, Multifloat.Batch.Mf4v.mul) ]

let () =
  Alcotest.run "edge-semantics"
    [ ( "section-4.4",
        [ Alcotest.test_case "negative zero" `Quick test_negative_zero_not_preserved;
          Alcotest.test_case "infinity -> nan" `Quick test_infinity_collapses_to_nan;
          Alcotest.test_case "nan propagates" `Quick test_nan_propagates;
          Alcotest.test_case "overflow threshold" `Quick test_overflow_threshold;
          Alcotest.test_case "gradual underflow" `Quick test_underflow_gradual;
          Alcotest.test_case "exponent range" `Quick test_exponent_range_not_extended;
          Alcotest.test_case "division by zero" `Quick test_division_by_zero;
          Alcotest.test_case "comparisons" `Quick test_comparisons_with_specials ] );
      ( "batch-bitwise",
        [ Alcotest.test_case "mf2 specials" `Quick test_batch_specials_mf2;
          Alcotest.test_case "mf3 specials" `Quick test_batch_specials_mf3;
          Alcotest.test_case "mf4 specials" `Quick test_batch_specials_mf4 ] ) ]
