(* Observability layer: JSON reader/writer round-trips, span stack
   discipline, the zero-cost disabled mode, order-independent metric
   merges, Chrome-trace balance, and the cross-layer guarantee that
   traced flop counts agree with scheduler telemetry. *)

module J = Obs.Json_out
module T = Obs.Trace
module M = Obs.Metrics

let bits = Int64.bits_of_float

(* --- Json_out ------------------------------------------------------- *)

(* Regression: [num] used to print through %.6g, silently truncating
   anything with more than six significant digits (nanosecond
   timestamps, flop totals).  Emission must now round-trip bitwise. *)
let test_num_roundtrip () =
  let cases =
    [ 0.0; -0.0; 1.0; -1.0; 0.1; 1.0 /. 3.0; 123456789.0; 9007199254740991.0;
      1.23456789012345e18; Float.ldexp 1.0 60; Float.max_float; Float.min_float;
      4.9e-324; -2.718281828459045e-7; 3.141592653589793 ]
  in
  List.iter
    (fun f ->
      match J.parse_exn (J.to_string (J.Num f)) with
      | J.Num g ->
          Alcotest.(check int64) (Printf.sprintf "num %h" f) (bits f) (bits g)
      | _ -> Alcotest.fail "not a number")
    cases;
  Alcotest.(check string) "integral stays integral" "123456789"
    (String.trim (J.to_string (J.Num 123456789.0)));
  (* inf/nan have no JSON literal: emitted as null *)
  Alcotest.(check string) "nan is null" "null" (String.trim (J.to_string (J.Num Float.nan)));
  Alcotest.(check string) "inf is null" "null"
    (String.trim (J.to_string (J.Num Float.infinity)))

let test_string_escaping () =
  let cases =
    [ ""; "plain"; "\""; "\\"; "\n"; "\r"; "\t"; "\x00"; "\x1f"; "a\"b\\c";
      "line1\nline2"; "nul\x00mid"; String.init 32 Char.chr; "caf\xc3\xa9" ]
  in
  List.iter
    (fun s ->
      match J.parse_exn (J.to_string (J.Str s)) with
      | J.Str s' -> Alcotest.(check string) (Printf.sprintf "escape %S" s) s s'
      | _ -> Alcotest.fail "not a string")
    cases;
  (* \uXXXX escapes decode to UTF-8 *)
  (match J.parse_exn {|"éA"|} with
  | J.Str s -> Alcotest.(check string) "unicode escape" "\xc3\xa9A" s
  | _ -> Alcotest.fail "not a string")

let json_gen =
  let open QCheck.Gen in
  sized (fun n ->
      fix
        (fun self n ->
          if n <= 0 then
            oneof
              [ return J.Null;
                map (fun b -> J.Bool b) bool;
                map (fun f -> J.Num (if Float.is_finite f then f else 0.0)) float;
                map (fun s -> J.Str s) (string_size (int_bound 12)) ]
          else
            oneof
              [ map (fun l -> J.List l) (list_size (int_bound 4) (self (n / 2)));
                map
                  (fun kvs ->
                    (* the parser rejects duplicate keys as malformed, so
                       a round-trippable document can't contain them:
                       keep the first binding of each key *)
                    let seen = Hashtbl.create 8 in
                    J.Obj
                      (List.filter
                         (fun (k, _) ->
                           if Hashtbl.mem seen k then false
                           else begin
                             Hashtbl.add seen k ();
                             true
                           end)
                         kvs))
                  (list_size (int_bound 4)
                     (pair (string_size (int_bound 8)) (self (n / 2)))) ])
        (min n 12))

(* structural equality with bitwise float comparison *)
let rec json_eq a b =
  match (a, b) with
  | J.Null, J.Null -> true
  | J.Bool x, J.Bool y -> x = y
  | J.Num x, J.Num y -> bits x = bits y
  | J.Str x, J.Str y -> String.equal x y
  | J.List x, J.List y -> List.length x = List.length y && List.for_all2 json_eq x y
  | J.Obj x, J.Obj y ->
      List.length x = List.length y
      && List.for_all2 (fun (k, v) (k', v') -> String.equal k k' && json_eq v v') x y
  | _ -> false

let prop_json_roundtrip =
  QCheck.Test.make ~count:500 ~name:"parse (to_string doc) = doc"
    (QCheck.make json_gen)
    (fun doc ->
      json_eq doc (J.parse_exn (J.to_string doc))
      (* the single-line wire emitter parses back identically too *)
      && json_eq doc (J.parse_exn (J.to_string_compact doc)))

(* --- Trace: stack discipline ---------------------------------------- *)

let with_tracing f =
  T.set_enabled true;
  T.clear ();
  Fun.protect ~finally:(fun () -> T.set_enabled false; T.clear ()) f

let test_span_nesting () =
  with_tracing (fun () ->
      T.begin_span T.Kernel "outer";
      T.begin_span T.Eft "inner";
      T.end_span ();
      T.end_span_f ~arg_name:"flops" ~arg:42.0;
      let spans = T.drain () in
      Alcotest.(check int) "two spans" 2 (List.length spans);
      let outer = List.find (fun s -> s.T.name = "outer") spans in
      let inner = List.find (fun s -> s.T.name = "inner") spans in
      Alcotest.(check int) "outer depth" 0 outer.T.depth;
      Alcotest.(check int) "inner depth" 1 inner.T.depth;
      Alcotest.(check bool) "inner starts inside" true (inner.T.t0_ns >= outer.T.t0_ns);
      Alcotest.(check bool) "inner ends inside" true (inner.T.t1_ns <= outer.T.t1_ns);
      Alcotest.(check string) "arg lands on outer" "flops" outer.T.arg_name;
      Alcotest.(check (float 0.0)) "arg value" 42.0 outer.T.arg;
      Alcotest.(check int) "balanced" 0 (T.unbalanced ()))

let test_unbalanced_end () =
  with_tracing (fun () ->
      T.end_span ();
      Alcotest.(check int) "unbalanced counted" 1 (T.unbalanced ());
      Alcotest.(check int) "nothing recorded" 0 (List.length (T.drain ())))

let test_with_span_exception () =
  with_tracing (fun () ->
      (try T.with_span T.Io "doomed" (fun () -> failwith "boom") with Failure _ -> ());
      let spans = T.drain () in
      Alcotest.(check int) "closed on exception" 1 (List.length spans);
      Alcotest.(check int) "balanced" 0 (T.unbalanced ()))

(* Random balanced begin/end programs against a reference stack: the
   drained (name, depth) multiset must match the simulation exactly. *)
let prop_stack_discipline =
  QCheck.Test.make ~count:200 ~name:"span stack matches reference simulation"
    QCheck.(list_of_size Gen.(int_bound 60) bool)
    (fun pushes ->
      T.set_enabled true;
      T.clear ();
      let stack = ref [] and completed = ref [] and fresh = ref 0 in
      let push () =
        let name = Printf.sprintf "n%d" !fresh in
        incr fresh;
        T.begin_span T.Fuzz name;
        stack := (name, List.length !stack) :: !stack
      in
      let pop () =
        match !stack with
        | [] -> ()
        | top :: rest ->
            T.end_span ();
            completed := top :: !completed;
            stack := rest
      in
      List.iter (fun b -> if b then push () else pop ()) pushes;
      while !stack <> [] do pop () done;
      let got =
        T.drain () |> List.map (fun s -> (s.T.name, s.T.depth)) |> List.sort compare
      in
      let expect = List.sort compare !completed in
      T.set_enabled false;
      got = expect && T.unbalanced () = 0)

let test_disabled_mode () =
  T.set_enabled false;
  T.clear ();
  let w0 = Gc.minor_words () in
  for _ = 1 to 10_000 do
    T.begin_span T.Kernel "never";
    T.end_span ()
  done;
  let w1 = Gc.minor_words () in
  Alcotest.(check (float 0.0)) "no allocation on disabled fast path" 0.0 (w1 -. w0);
  Alcotest.(check int) "no spans" 0 (List.length (T.drain ()));
  Alcotest.(check int) "no unbalanced" 0 (T.unbalanced ());
  Alcotest.(check int) "no dropped" 0 (T.dropped ())

(* --- Metrics -------------------------------------------------------- *)

let test_metrics_basic () =
  M.reset ();
  let c = M.counter "t.obs.c" in
  M.add c 5;
  M.incr c;
  let g = M.gauge "t.obs.g" in
  M.set g 2.5;
  let h = M.hist "t.obs.h" in
  M.observe h 3.0;
  M.observe h 3.5;
  M.observe h 1e30;
  let snap = M.snapshot () in
  (match List.assoc "t.obs.c" snap with
  | M.Counter n -> Alcotest.(check int) "counter" 6 n
  | _ -> Alcotest.fail "kind");
  (match List.assoc "t.obs.g" snap with
  | M.Gauge v -> Alcotest.(check (float 0.0)) "gauge" 2.5 v
  | _ -> Alcotest.fail "kind");
  (match List.assoc "t.obs.h" snap with
  | M.Hist h ->
      Alcotest.(check int) "hist count" 3 h.M.count;
      Alcotest.(check int) "3.0 and 3.5 share a binade bucket" 2
        h.M.buckets.(M.bucket_of ~lo_exp:h.M.lo_exp ~hi_exp:h.M.hi_exp 3.0)
  | _ -> Alcotest.fail "kind");
  Alcotest.check_raises "kind clash rejected"
    (Invalid_argument "Obs.Metrics.gauge: t.obs.c has another kind") (fun () ->
      ignore (M.gauge "t.obs.c"))

let test_metrics_multidomain () =
  M.reset ();
  let per_domain = [| 1000; 2000; 3000; 4000 |] in
  let doms =
    Array.map
      (fun n ->
        Domain.spawn (fun () ->
            let c = M.counter "t.obs.md" in
            let h = M.hist "t.obs.mdh" in
            for i = 1 to n do
              M.incr c;
              M.observe h (Float.of_int i)
            done))
      per_domain
  in
  Array.iter Domain.join doms;
  let snap = M.snapshot () in
  (match List.assoc "t.obs.md" snap with
  | M.Counter n -> Alcotest.(check int) "sharded counter sums" 10000 n
  | _ -> Alcotest.fail "kind");
  match List.assoc "t.obs.mdh" snap with
  | M.Hist h -> Alcotest.(check int) "sharded histogram sums" 10000 h.M.count
  | _ -> Alcotest.fail "kind"

(* Synthetic snapshots: merging in any order gives the same counters
   and bucket arrays bitwise (int sums and max are order-independent;
   float sums agree to rounding, checked loosely). *)
let snapshot_gen =
  let open QCheck.Gen in
  let hist_of obs =
    List.fold_left
      (fun (h : M.histogram) v ->
        let b = M.bucket_of ~lo_exp:h.M.lo_exp ~hi_exp:h.M.hi_exp v in
        let buckets = Array.copy h.M.buckets in
        buckets.(b) <- buckets.(b) + 1;
        { h with
          M.buckets = buckets;
          count = h.M.count + 1;
          sum = h.M.sum +. v;
          max_v = Float.max h.M.max_v v })
      { M.lo_exp = -4; hi_exp = 4; buckets = Array.make 10 0; count = 0; sum = 0.0; max_v = 0.0 }
      obs
  in
  (* a fixed name pool so snapshots overlap (the interesting case),
     with the kind determined by the name so merges are well-typed *)
  let entry =
    oneof
      [ map (fun n -> ("m.counter", M.Counter n)) (int_bound 1000);
        map (fun f -> ("m.gauge", M.Gauge f)) (float_bound_inclusive 100.0);
        map
          (fun vs -> ("m.hist", M.Hist (hist_of vs)))
          (list_size (int_bound 20) (float_bound_inclusive 64.0)) ]
  in
  list_size (int_bound 4) entry
  |> map (fun kvs ->
         (* registry snapshots are sorted and name-unique *)
         List.sort_uniq (fun (a, _) (b, _) -> compare a b) kvs)

let counters_and_buckets snap =
  List.map
    (fun (name, v) ->
      match v with
      | M.Counter n -> (name, `C n)
      | M.Gauge g -> (name, `G (bits g))
      | M.Hist h -> (name, `H (Array.to_list h.M.buckets, h.M.count, bits h.M.max_v)))
    snap

let prop_merge_order_independent =
  QCheck.Test.make ~count:300 ~name:"metric merge is order-independent"
    QCheck.(triple (make snapshot_gen) (make snapshot_gen) (make snapshot_gen))
    (fun (a, b, c) ->
      let l = M.merge (M.merge a b) c and r = M.merge a (M.merge b c) in
      let comm_ab = M.merge a b and comm_ba = M.merge b a in
      counters_and_buckets l = counters_and_buckets r
      && counters_and_buckets comm_ab = counters_and_buckets comm_ba)

(* --- Chrome trace --------------------------------------------------- *)

let check_chrome_balance doc span_count =
  Obs.Schema.check ~name:"chrome trace" Obs.Schemas.chrome_trace doc;
  let events =
    match J.member "traceEvents" doc with
    | Some (J.List l) -> l
    | _ -> Alcotest.fail "no traceEvents"
  in
  let depth : (int, int) Hashtbl.t = Hashtbl.create 7 in
  let begins = ref 0 and ends = ref 0 in
  List.iter
    (fun ev ->
      let ph = match J.member "ph" ev with Some (J.Str s) -> s | _ -> "?" in
      let tid =
        match J.member "tid" ev with Some (J.Num n) -> int_of_float n | _ -> -1
      in
      let d = Option.value ~default:0 (Hashtbl.find_opt depth tid) in
      match ph with
      | "B" ->
          incr begins;
          Hashtbl.replace depth tid (d + 1)
      | "E" ->
          incr ends;
          Alcotest.(check bool) "E never outruns B" true (d > 0);
          Hashtbl.replace depth tid (d - 1)
      | _ -> ())
    events;
  Hashtbl.iter (fun tid d -> Alcotest.(check int) (Printf.sprintf "tid %d closed" tid) 0 d) depth;
  Alcotest.(check int) "one B per span" span_count !begins;
  Alcotest.(check int) "one E per span" span_count !ends

let test_chrome_roundtrip () =
  with_tracing (fun () ->
      (* a nested burst, including zero-width spans that tie on the
         coarse timestamp — depth must still keep B/E balanced *)
      for i = 0 to 19 do
        T.begin_span T.Kernel "burst";
        T.begin_span T.Eft (Printf.sprintf "leaf%d" (i mod 3));
        T.end_span ();
        T.end_span ()
      done;
      let spans = T.drain () in
      Alcotest.(check int) "all spans recorded" 40 (List.length spans);
      let doc = J.parse_exn (J.to_string (Obs.Export.chrome_trace spans)) in
      check_chrome_balance doc 40)

(* Multi-domain: tiles traced from worker domains must still yield a
   balanced per-tid interleaving, and the flops recorded on gemm.tile
   spans must agree bitwise with the scheduler's telemetry. *)
let test_traced_gemm_agrees_with_sched () =
  let module K = Blas.Kernels.Make_batched (Blas.Instances.Mf2) in
  let n = 48 in
  let rng = Random.State.make [| 17; n |] in
  let vec len = K.vec_of_floats (Array.init len (fun _ -> Random.State.float rng 2.0 -. 1.0)) in
  let a = vec (n * n) and b = vec (n * n) in
  with_tracing (fun () ->
      Runtime.Sched.with_sched ~workers:4 (fun rt ->
          Runtime.Sched.reset_stats rt;
          let c = K.V.create (n * n) in
          K.gemm_rt rt ~tile:(16, 16) ~m:n ~n ~k:n ~a ~b ~c ();
          let stats = Runtime.Sched.stats rt in
          let spans = T.drain () in
          let tile_arg_sum =
            List.fold_left
              (fun acc s -> if s.T.name = "gemm.tile" then acc +. s.T.arg else acc)
              0.0 spans
          in
          let sched_flops =
            Array.fold_left (fun acc s -> acc + s.Runtime.Sched.tile_flops) 0 stats
          in
          Alcotest.(check int) "span flops = sched flops = n^3" (n * n * n)
            (int_of_float tile_arg_sum);
          Alcotest.(check int) "sched flops" (n * n * n) sched_flops;
          let doc = J.parse_exn (J.to_string (Obs.Export.chrome_trace spans)) in
          check_chrome_balance doc (List.length spans)))

(* Fuzz instrumentation: per-class case counters must sum to the
   campaign's case totals. *)
let test_fuzz_counters () =
  M.reset ();
  with_tracing (fun () ->
      let cfg =
        { Check.Fuzz.default with Check.Fuzz.cases = 64; tiers = [ 2 ]; max_findings = 1 }
      in
      let r = Check.Fuzz.run cfg in
      let counted =
        List.fold_left
          (fun acc (name, v) ->
            match v with
            | M.Counter n when String.length name >= 10 && String.sub name 0 10 = "fuzz.cases" ->
                acc + n
            | _ -> acc)
          0 (M.snapshot ())
      in
      Alcotest.(check int) "per-class counters sum to case total"
        (r.Check.Fuzz.scalar_cases + r.Check.Fuzz.vector_cases)
        counted;
      let spans = T.drain () in
      let tier = List.find (fun s -> s.T.name = "fuzz.tier2") spans in
      Alcotest.(check string) "tier span carries case count" "cases" tier.T.arg_name;
      Alcotest.(check (float 0.0)) "tier case count"
        (Float.of_int (r.Check.Fuzz.scalar_cases + r.Check.Fuzz.vector_cases))
        tier.T.arg)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "obs"
    [ ( "json",
        [ Alcotest.test_case "num round-trip" `Quick test_num_roundtrip;
          Alcotest.test_case "string escaping" `Quick test_string_escaping;
          q prop_json_roundtrip ] );
      ( "trace",
        [ Alcotest.test_case "span nesting" `Quick test_span_nesting;
          Alcotest.test_case "unbalanced end" `Quick test_unbalanced_end;
          Alcotest.test_case "with_span exception" `Quick test_with_span_exception;
          q prop_stack_discipline;
          Alcotest.test_case "disabled mode is free" `Quick test_disabled_mode ] );
      ( "metrics",
        [ Alcotest.test_case "basic registry" `Quick test_metrics_basic;
          Alcotest.test_case "multi-domain sharding" `Quick test_metrics_multidomain;
          q prop_merge_order_independent ] );
      ( "export",
        [ Alcotest.test_case "chrome round-trip" `Quick test_chrome_roundtrip;
          Alcotest.test_case "traced gemm vs sched telemetry" `Quick
            test_traced_gemm_agrees_with_sched;
          Alcotest.test_case "fuzz counters" `Quick test_fuzz_counters ] ) ]
