(* Check.Ulp_stats: bucket boundaries sit at exact powers of two, and
   [merge] combines shards independently of grouping and order. *)

module U = Check.Ulp_stats

let test_bucket_boundaries () =
  let lo = U.lo_exp and hi = U.hi_exp in
  (* bucket 0: strictly below 2^lo (exact results live here) *)
  Alcotest.(check int) "zero" 0 (U.bucket_of 0.0);
  Alcotest.(check int) "just below 2^lo" 0
    (U.bucket_of (Float.pred (Float.ldexp 1.0 lo)));
  (* each power of two 2^e, lo <= e < hi, opens bucket e - lo + 1 *)
  for e = lo to hi - 1 do
    Alcotest.(check int)
      (Printf.sprintf "2^%d opens its bucket" e)
      (e - lo + 1)
      (U.bucket_of (Float.ldexp 1.0 e));
    Alcotest.(check int)
      (Printf.sprintf "just below 2^%d stays in the bucket below" e)
      (e - lo)
      (U.bucket_of (Float.pred (Float.ldexp 1.0 e)))
  done;
  (* overflow bucket: everything at or above 2^hi *)
  Alcotest.(check int) "2^hi" (U.nbuckets - 1) (U.bucket_of (Float.ldexp 1.0 hi));
  Alcotest.(check int) "just below 2^hi" (U.nbuckets - 2)
    (U.bucket_of (Float.pred (Float.ldexp 1.0 hi)));
  Alcotest.(check int) "infinity" (U.nbuckets - 1) (U.bucket_of Float.infinity)

let test_nan_counted_nonfinite () =
  let t = U.create () in
  U.record t Float.nan;
  U.record t 1.0;
  Alcotest.(check int) "both counted" 2 (U.count t);
  let occupied = ref 0 in
  for i = 0 to U.nbuckets - 1 do
    occupied := !occupied + U.bucket t i
  done;
  Alcotest.(check int) "nan bucketed nowhere" 1 !occupied

let ulps_gen =
  QCheck.Gen.(
    oneof
      [ return 0.0;
        float_bound_inclusive 2.0;
        map (fun (m, e) -> Float.ldexp m (e - 16)) (pair (float_bound_inclusive 2.0) (int_bound 32));
        return Float.infinity ])

let fill ulps =
  let t = U.create () in
  List.iter (U.record t) ulps;
  t

(* Everything [merge] reports except the float mean is exact counts
   and a max: those must be identical under any association or order
   of the merges.  The mean rides on a float sum, so it agrees to
   rounding only. *)
let fingerprint t =
  ( U.count t,
    U.skipped t,
    U.exceed t,
    Int64.bits_of_float (U.max_ulps t),
    List.init U.nbuckets (U.bucket t) )

let close a b =
  let m1 = U.mean a and m2 = U.mean b in
  m1 = m2 || Float.abs (m1 -. m2) <= 1e-9 *. Float.max (Float.abs m1) (Float.abs m2)

let prop_merge_assoc =
  QCheck.Test.make ~count:300 ~name:"merge is associative"
    QCheck.(
      triple
        (list_of_size Gen.(int_bound 40) (make ulps_gen))
        (list_of_size Gen.(int_bound 40) (make ulps_gen))
        (list_of_size Gen.(int_bound 40) (make ulps_gen)))
    (fun (a, b, c) ->
      let ta = fill a and tb = fill b and tc = fill c in
      let l = U.merge (U.merge ta tb) tc and r = U.merge ta (U.merge tb tc) in
      fingerprint l = fingerprint r && close l r)

let prop_merge_comm =
  QCheck.Test.make ~count:300 ~name:"merge is commutative"
    QCheck.(
      pair
        (list_of_size Gen.(int_bound 40) (make ulps_gen))
        (list_of_size Gen.(int_bound 40) (make ulps_gen)))
    (fun (a, b) ->
      let ta = fill a and tb = fill b in
      fingerprint (U.merge ta tb) = fingerprint (U.merge tb ta))

let prop_merge_is_concat =
  QCheck.Test.make ~count:300 ~name:"merge = recording the concatenated stream"
    QCheck.(
      pair
        (list_of_size Gen.(int_bound 40) (make ulps_gen))
        (list_of_size Gen.(int_bound 40) (make ulps_gen)))
    (fun (a, b) ->
      let merged = U.merge (fill a) (fill b) in
      let whole = fill (a @ b) in
      fingerprint merged = fingerprint whole)

let test_merge_identity () =
  let t = fill [ 0.5; 1.0; 3.0; Float.infinity ] in
  U.skip t;
  U.fail t;
  let z = U.create () in
  Alcotest.(check bool) "empty is a left identity" true
    (fingerprint (U.merge z t) = fingerprint t);
  Alcotest.(check bool) "empty is a right identity" true
    (fingerprint (U.merge t z) = fingerprint t)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "ulp_stats"
    [ ( "buckets",
        [ Alcotest.test_case "boundaries at powers of two" `Quick test_bucket_boundaries;
          Alcotest.test_case "nan counted separately" `Quick test_nan_counted_nonfinite ] );
      ( "merge",
        [ q prop_merge_assoc; q prop_merge_comm; q prop_merge_is_concat;
          Alcotest.test_case "identity" `Quick test_merge_identity ] ) ]
