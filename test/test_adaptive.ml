(* The adaptive-precision escalation engine's three contracts, pinned
   directly against the library (no server in the loop).  Soundness:
   the certified bound contains the true error (high-precision ball
   oracle).  Monotonicity: a tighter SLA never picks a cheaper tier.
   Fidelity: when a MultiFloat rung wins, the answer is bitwise what a
   direct fixed-tier request over the zero-padded operands returns. *)

module AD = Adaptive
module E = AD.Escalate

let bits = Int64.bits_of_float

let rows_bits_equal a b =
  Array.length a = Array.length b
  && Array.for_all2
       (fun ra rb ->
         Array.length ra = Array.length rb
         && Array.for_all2 (fun u v -> Int64.equal (bits u) (bits v)) ra rb)
       a b

let tier_rank = function
  | "mf2" -> 0
  | "mf3" -> 1
  | "mf4" -> 2
  | "bigfloat" -> 3
  | t -> Alcotest.fail ("unknown tier name " ^ t)

let run_exn ~q ~op inp =
  match E.run ~q ~op inp with
  | Ok o -> o
  | Error e -> Alcotest.fail (Printf.sprintf "escalate refused (q=%d): %s" q e)

let add_inp =
  { AD.Sla.x = [| [| 1.0; 1e-17 |] |]; y = [| [| 0.5; -1e-18 |] |]; z = [||] }

(* --- the ladder ------------------------------------------------------- *)

let test_ladder_basics () =
  let op = AD.Sla.Add in
  (* a loose budget is met on the first rung *)
  let loose = run_exn ~q:10 ~op add_inp in
  Alcotest.(check string) "loose budget stays on mf2" "mf2" loose.E.chosen;
  Alcotest.(check int) "no escalations" 0 loose.E.escalations;
  let fixed = AD.Eval.eval ~terms:2 op (AD.Sla.pad ~terms:2 add_inp) in
  Alcotest.(check bool) "mf2 answer is the fixed-tier answer" true
    (rows_bits_equal loose.E.result fixed);
  let thr q = AD.Certify.threshold ~q ~scale:(AD.Certify.scale op add_inp) in
  Alcotest.(check bool) "loose bound within threshold" true
    (loose.E.bound <= thr 10);
  (* a tight budget climbs, and the rung count matches the climb *)
  let tight = run_exn ~q:200 ~op add_inp in
  Alcotest.(check bool) "tight budget escalates" true
    (tier_rank tight.E.chosen > tier_rank loose.E.chosen);
  Alcotest.(check int) "escalations = rungs climbed from mf2"
    (tier_rank tight.E.chosen) tight.E.escalations;
  Alcotest.(check bool) "tight bound within threshold" true
    (tight.E.bound <= thr 200);
  (match tight.E.chosen with
  | "mf2" | "mf3" | "mf4" ->
      let terms = tier_rank tight.E.chosen + 2 in
      let twin = AD.Eval.eval ~terms op (AD.Sla.pad ~terms add_inp) in
      Alcotest.(check bool) "escalated answer is the fixed-tier answer" true
        (rows_bits_equal tight.E.result twin)
  | _ -> ());
  (* invalid budgets are refused, not mis-served *)
  (match E.run ~q:0 ~op add_inp with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "q=0 accepted");
  match
    E.run ~q:50 ~op
      { AD.Sla.x = [| [| Float.infinity |] |]; y = [| [| 1.0 |] |]; z = [||] }
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "non-finite operands accepted"

let test_monotone_in_q () =
  let op = AD.Sla.Dot in
  let inp =
    { AD.Sla.x = [| [| 1.0; 1e-17 |]; [| -0.75; 1e-18 |]; [| 0.125; 0.0 |] |];
      y = [| [| 2.0; 0.0 |]; [| 0.5; -1e-19 |]; [| -3.0; 1e-16 |] |];
      z = [||] }
  in
  let scale = AD.Certify.scale op inp in
  let last = ref (-1) in
  for q = AD.Sla.q_min to AD.Sla.q_max do
    let o = run_exn ~q ~op inp in
    let r = tier_rank o.E.chosen in
    if r < !last then
      Alcotest.fail
        (Printf.sprintf "q=%d chose %s, cheaper than the q=%d tier" q o.E.chosen (q - 1));
    last := r;
    if not (o.E.bound <= AD.Certify.threshold ~q ~scale) then
      Alcotest.fail (Printf.sprintf "q=%d bound above the threshold" q)
  done

let test_bigfloat_rung () =
  (* the final rung straight on: certified, labelled, 4-term rows *)
  let op = AD.Sla.Mul in
  let inp = AD.Sla.pad ~terms:2 add_inp in
  let o = E.bigfloat_outcome op inp ~escalations:3 in
  Alcotest.(check string) "labelled bigfloat" "bigfloat" o.E.chosen;
  Alcotest.(check int) "escalations pass through" 3 o.E.escalations;
  Alcotest.(check int) "4-term rows" 4 (Array.length o.E.result.(0));
  Alcotest.(check bool) "finite certified bound" true
    (Float.is_finite o.E.bound && o.E.bound >= 0.0);
  (* far tighter than any admissible threshold at this magnitude *)
  Alcotest.(check bool) "meets the tightest admissible budget" true
    (o.E.bound <= AD.Certify.threshold ~q:AD.Sla.q_max ~scale:(AD.Certify.scale op inp))

(* --- padding is exact ------------------------------------------------- *)

let test_padding () =
  let e = AD.Sla.pad_element ~terms:4 [| 1.0; -4.9e-324 |] in
  Alcotest.(check int) "widened to 4" 4 (Array.length e);
  Alcotest.(check int64) "component 0 intact" (bits 1.0) (bits e.(0));
  Alcotest.(check int64) "component 1 intact" (bits (-4.9e-324)) (bits e.(1));
  Alcotest.(check int64) "zero-filled" (bits 0.0) (bits e.(3));
  match AD.Sla.pad_element ~terms:2 [| 1.0; 2.0; 3.0 |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "narrowing did not raise"

(* --- containment ------------------------------------------------------ *)

let oracle_prec = 1200

let test_containment_smoke () =
  let cases =
    [ (AD.Sla.Add, add_inp);
      (AD.Sla.Mul, add_inp);
      ( AD.Sla.Div,
        { AD.Sla.x = [| [| 1.0; 1e-17 |] |]; y = [| [| 3.0; -1e-18 |] |]; z = [||] } );
      (AD.Sla.Sqrt, { AD.Sla.x = [| [| 2.0; 1e-17 |] |]; y = [||]; z = [||] });
      ( AD.Sla.Sum,
        { AD.Sla.x = [| [| 1.0; 1e-16 |]; [| -1.0; 1e-17 |]; [| 1e-20; 0.0 |] |];
          y = [||]; z = [||] } ) ]
  in
  List.iter
    (fun (op, inp) ->
      List.iter
        (fun q ->
          let o = run_exn ~q ~op inp in
          (* the oracle upper-bounds the true error; containment means
             it never exceeds the certificate the ladder returned *)
          let true_err_up = AD.Certify.ball_bound op ~prec:oracle_prec inp o.E.result in
          if not (true_err_up <= o.E.bound) then
            Alcotest.fail
              (Printf.sprintf "%s q=%d: true error %.3e above certified %.3e"
                 (AD.Sla.op_name op) q true_err_up o.E.bound))
        [ 20; 100; 180 ])
    cases

let test_arb_ball_containment () =
  (* the Impls registry's Arb rows export balls that contain the exact
     value: |exact - mid| <= rad, measured through the Exact oracle *)
  let impl =
    match Check.Impls.find "arb106" with
    | Some i -> i
    | None -> Alcotest.fail "arb106 missing from the registry"
  in
  let ball op inputs =
    match impl.Check.Impls.ball with
    | Some surface -> (
        match surface op inputs with
        | Some b -> b
        | None -> Alcotest.fail "arb row declined a supported op")
    | None -> Alcotest.fail "arb row exports no ball surface"
  in
  let contains dist rad = dist <= (rad *. (1.0 +. 1e-9)) +. Float.ldexp 1.0 (-1070) in
  let x = [| 1.0; 1e-17 |] and y = [| 0.5; -1e-18 |] in
  let b = ball Check.Corpus.Add [| x; y |] in
  Alcotest.(check bool) "add ball contains the exact sum" true
    (contains
       (Check.Oracle.add_abs ~x ~y ~got:b.Check.Impls.b_mid)
       b.Check.Impls.b_rad);
  let b = ball Check.Corpus.Mul [| x; y |] in
  Alcotest.(check bool) "mul ball contains the exact product" true
    (contains
       (Check.Oracle.mul_abs ~x ~y ~got:b.Check.Impls.b_mid)
       b.Check.Impls.b_rad);
  let xs = [| [| 1.0; 1e-17 |]; [| -0.25; 0.0 |] |] in
  let ys = [| [| 2.0; 0.0 |]; [| 4.0; 1e-16 |] |] in
  let b = ball Check.Corpus.Dot (Array.append xs ys) in
  Alcotest.(check bool) "dot ball contains the exact dot" true
    (contains
       (Check.Oracle.dot_abs ~x:xs ~y:ys ~got:b.Check.Impls.b_mid)
       b.Check.Impls.b_rad)

(* --- the fuzz gate, shrunk -------------------------------------------- *)

let test_fuzz_gate () =
  let r = Check.Sla_fuzz.run ~cases:400 ~seed:7 () in
  Alcotest.(check int) "ran every case" 400 r.Check.Sla_fuzz.cases;
  Alcotest.(check int) "no containment violations" 0
    r.Check.Sla_fuzz.containment_violations;
  Alcotest.(check int) "no monotonicity violations" 0
    r.Check.Sla_fuzz.monotonicity_violations;
  Alcotest.(check int) "no bitwise mismatches" 0 r.Check.Sla_fuzz.bitwise_mismatches;
  Alcotest.(check int) "no generator rejections" 0 r.Check.Sla_fuzz.errors;
  Alcotest.(check bool) "gate passes" true (Check.Sla_fuzz.passed r)

let () =
  Alcotest.run "adaptive"
    [ ( "ladder",
        [ Alcotest.test_case "basics" `Quick test_ladder_basics;
          Alcotest.test_case "monotone in q" `Quick test_monotone_in_q;
          Alcotest.test_case "bigfloat rung" `Quick test_bigfloat_rung;
          Alcotest.test_case "padding is exact" `Quick test_padding ] );
      ( "containment",
        [ Alcotest.test_case "ladder vs ball oracle" `Quick test_containment_smoke;
          Alcotest.test_case "arb registry balls" `Quick test_arb_ball_containment ] );
      ("fuzz", [ Alcotest.test_case "sla gate" `Quick test_fuzz_gate ]) ]
