(* lib/chaos: the determinism contracts behind the fault-injection
   subsystem.  The rng and plan layers must be pure functions of their
   seeds; the injector must fire on an exact count-based schedule and
   cost zero allocation when disarmed; priority displacement in the
   admission queue must shed oldest-lowest first and never touch
   equal-priority pushes; the client deadline must bound a read
   against a mute peer; and a server with armed syscall seams must
   stay bitwise-identical to the fault-free scalar path.

   No test here forks, so domain-spawning fixtures are safe
   anywhere. *)

module P = Serve.Protocol
module F = Chaos.Fault
module I = Chaos.Injector

let bits = Int64.bits_of_float

let elements_bits_equal a b =
  Array.length a = Array.length b
  && Array.for_all2
       (fun ea eb ->
         Array.length ea = Array.length eb
         && Array.for_all2 (fun x y -> Int64.equal (bits x) (bits y)) ea eb)
       a b

(* --- rng -------------------------------------------------------------- *)

let test_rng_deterministic () =
  for n = 0 to 99 do
    Alcotest.(check int64) "hash reproducible"
      (Chaos.Rng.hash ~seed:42 ~salt:7 ~n)
      (Chaos.Rng.hash ~seed:42 ~salt:7 ~n);
    let u = Chaos.Rng.uniform ~seed:42 ~salt:7 ~n in
    Alcotest.(check (float 0.0)) "uniform reproducible" u
      (Chaos.Rng.uniform ~seed:42 ~salt:7 ~n);
    Alcotest.(check bool) "uniform in [0,1)" true (u >= 0.0 && u < 1.0)
  done;
  (* streams and seeds decorrelate *)
  Alcotest.(check bool) "seed matters" false
    (Int64.equal
       (Chaos.Rng.hash ~seed:1 ~salt:7 ~n:3)
       (Chaos.Rng.hash ~seed:2 ~salt:7 ~n:3));
  Alcotest.(check bool) "salt matters" false
    (Int64.equal
       (Chaos.Rng.hash ~seed:1 ~salt:7 ~n:3)
       (Chaos.Rng.hash ~seed:1 ~salt:8 ~n:3))

let test_rng_backoff () =
  for attempt = 0 to 20 do
    let ms =
      Chaos.Rng.backoff_ms ~seed:0 ~stream:5 ~attempt ~base_ms:10.0
    in
    Alcotest.(check (float 0.0)) "backoff reproducible" ms
      (Chaos.Rng.backoff_ms ~seed:0 ~stream:5 ~attempt ~base_ms:10.0);
    Alcotest.(check bool)
      (Printf.sprintf "attempt %d in [5, 500] ms (got %g)" attempt ms)
      true
      (ms >= 5.0 && ms <= 500.0)
  done

(* --- plan ------------------------------------------------------------- *)

let test_plan_deterministic () =
  List.iter
    (fun (s : Chaos.Plan.scenario) ->
      let a = Chaos.Plan.actions ~seed:3 s ~n:64 in
      let b = Chaos.Plan.actions ~seed:3 s ~n:64 in
      Alcotest.(check bool) (s.Chaos.Plan.name ^ " schedule reproducible") true
        (a = b);
      let non_clean =
        Array.fold_left
          (fun k act -> if act = Chaos.Plan.Clean then k else k + 1)
          0 a
      in
      match Chaos.Plan.injected_count ~seed:3 s ~n:64 with
      | Some k ->
          Alcotest.(check int) (s.Chaos.Plan.name ^ " injected count exact")
            non_clean k;
          Alcotest.(check bool) (s.Chaos.Plan.name ^ " wire scenario") true
            (s.Chaos.Plan.wire <> [])
      | None ->
          Alcotest.(check int) (s.Chaos.Plan.name ^ " seam-only: no wire actions")
            0 non_clean)
    Chaos.Plan.matrix

let test_plan_lookup () =
  Alcotest.(check bool) "matrix non-empty" true (Chaos.Plan.matrix <> []);
  List.iter
    (fun (s : Chaos.Plan.scenario) ->
      match Chaos.Plan.find s.Chaos.Plan.name with
      | Some s' ->
          Alcotest.(check string) "find returns the scenario"
            s.Chaos.Plan.name s'.Chaos.Plan.name
      | None -> Alcotest.fail ("find lost " ^ s.Chaos.Plan.name))
    Chaos.Plan.matrix;
  Alcotest.(check bool) "unknown name" true
    (Chaos.Plan.find "no-such-scenario" = None)

(* --- injector --------------------------------------------------------- *)

let schedule () =
  I.arm ~seed:7 [ (F.Read, [ (F.Eintr, 5) ]) ];
  let l = List.init 50 (fun _ -> I.read_fault ()) in
  I.disarm ();
  l

let test_injector_schedule () =
  let a = schedule () in
  let b = schedule () in
  Alcotest.(check bool) "re-arm reproduces the firing pattern" true (a = b);
  let fired = List.length (List.filter (fun f -> f = F.Eintr) a) in
  (* 50 calls at period 5: exactly one firing per period window *)
  Alcotest.(check int) "period honored exactly" 10 fired;
  Alcotest.(check bool) "everything else passes" true
    (List.for_all (fun f -> f = F.Eintr || f = F.Pass) a);
  (* sites are independent streams: the write seam was never armed *)
  I.arm ~seed:7 [ (F.Read, [ (F.Eintr, 5) ]) ];
  Alcotest.(check bool) "unarmed site passes" true (I.write_fault () = F.Pass);
  I.disarm ()

let test_injector_disarmed_zero_alloc () =
  I.disarm ();
  (* warm the code paths before measuring *)
  for _ = 1 to 100 do
    ignore (I.read_fault ());
    ignore (I.write_fault ());
    ignore (I.accept_fault ());
    ignore (I.wait_fault ());
    ignore (I.dispatch_fault ());
    ignore (I.fork_fault ())
  done;
  let before = Gc.minor_words () in
  for _ = 1 to 50_000 do
    ignore (I.read_fault ());
    ignore (I.write_fault ());
    ignore (I.accept_fault ());
    ignore (I.wait_fault ());
    ignore (I.dispatch_fault ());
    ignore (I.fork_fault ())
  done;
  let delta = Gc.minor_words () -. before in
  Alcotest.(check (float 0.0)) "disarmed hooks allocate nothing" 0.0 delta

(* --- admission priority displacement ---------------------------------- *)

let test_admission_displacement () =
  let q = Serve.Admission.create ~capacity:2 in
  Alcotest.(check bool) "a admitted" true (Serve.Admission.push q "a" = `Ok);
  Alcotest.(check bool) "b admitted" true (Serve.Admission.push q "b" = `Ok);
  (* equal priorities keep the historical full-means-`Full behavior *)
  Alcotest.(check bool) "tie never displaces" true
    (Serve.Admission.push q "c" = `Full);
  (* a higher-priority push evicts the oldest lowest-priority entry *)
  (match Serve.Admission.push ~priority:5 q "d" with
  | `Displaced "a" -> ()
  | `Displaced v -> Alcotest.fail ("wrong victim: " ^ v)
  | _ -> Alcotest.fail "expected displacement");
  (match Serve.Admission.push ~priority:3 q "e" with
  | `Displaced "b" -> ()
  | `Displaced v -> Alcotest.fail ("wrong victim: " ^ v)
  | _ -> Alcotest.fail "expected displacement");
  (* queue now d(5), e(3): a 4 displaces only the strictly lower 3 *)
  (match Serve.Admission.push ~priority:4 q "f" with
  | `Displaced "e" -> ()
  | `Displaced v -> Alcotest.fail ("wrong victim: " ^ v)
  | _ -> Alcotest.fail "expected displacement");
  (* queue d(5), f(4): another 4 ties with the minimum and refuses *)
  Alcotest.(check bool) "equal-to-minimum refuses" true
    (Serve.Admission.push ~priority:4 q "g" = `Full);
  Alcotest.(check int) "depth bounded throughout" 2 (Serve.Admission.depth q);
  Alcotest.(check int) "displacements counted" 3 (Serve.Admission.displaced q);
  (* survivors drain in arrival order *)
  Serve.Admission.close q;
  Alcotest.(check (list string)) "FIFO among survivors" [ "d"; "f" ]
    (Serve.Admission.pop_batch q ~max:8 ~window_ns:0L);
  Serve.Admission.destroy q

(* --- client deadline -------------------------------------------------- *)

let sock_dir =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "fpan_chaos_test_%d" (Unix.getpid ()))
  in
  (try Unix.mkdir dir 0o700 with Unix.Unix_error (EEXIST, _, _) -> ());
  at_exit (fun () ->
      (try
         Array.iter
           (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
           (Sys.readdir dir)
       with Sys_error _ -> ());
      try Unix.rmdir dir with Unix.Unix_error _ -> ());
  dir

let sock_counter = ref 0

let fresh_sock () =
  incr sock_counter;
  Filename.concat sock_dir (Printf.sprintf "chaos_%d.sock" !sock_counter)

let test_client_deadline () =
  (* a listener that never accepts: connect lands in the backlog, the
     request is swallowed by the kernel, and no reply ever comes — the
     read deadline is the only way out *)
  let path = fresh_sock () in
  let srv = Unix.socket ~cloexec:true PF_UNIX SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close srv with _ -> ());
      try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Unix.bind srv (Unix.ADDR_UNIX path);
      Unix.listen srv 4;
      let cl = Serve.Client.connect_sockaddr ~deadline_ms:300 (Unix.ADDR_UNIX path) in
      Fun.protect
        ~finally:(fun () -> Serve.Client.close cl)
        (fun () ->
          let req =
            { P.id = 1; op = P.Add; tier = P.Mf2; sla = None; deadline_ms = None;
              prog = []; x = [| [| 1.0; 0.0 |] |]; y = [| [| 2.0; 0.0 |] |]; z = [||] }
          in
          let t0 = Unix.gettimeofday () in
          (match Serve.Client.call cl req with
          | exception Failure msg ->
              Alcotest.(check bool)
                ("failure names the deadline: " ^ msg)
                true
                (String.length msg >= 8
                && String.index_opt msg 'd' <> None
                &&
                let re = "deadline" in
                let n = String.length msg and m = String.length re in
                let rec scan i =
                  i + m <= n && (String.sub msg i m = re || scan (i + 1))
                in
                scan 0)
          | _ -> Alcotest.fail "read against a mute peer returned");
          let elapsed = Unix.gettimeofday () -. t0 in
          Alcotest.(check bool)
            (Printf.sprintf "deadline bounded the wait (%.2fs)" elapsed)
            true
            (elapsed < 5.0)))

(* --- armed seams against a live server -------------------------------- *)

let chaos_req n =
  let v k = 1.0 +. (float_of_int ((n + k) mod 211) /. 211.0) in
  let e2 k = [| v k; v k *. 1e-17 |] in
  let e4 k = [| v k; v k *. 1e-17; v k *. 1e-34; v k *. 1e-51 |] in
  match n mod 4 with
  | 0 ->
      { P.id = n + 1; op = P.Add; tier = P.Mf2; sla = None; deadline_ms = None;
        prog = []; x = [| e2 0 |]; y = [| e2 1 |]; z = [||] }
  | 1 ->
      { P.id = n + 1; op = P.Mul; tier = P.Mf4; sla = None; deadline_ms = None;
        prog = []; x = [| e4 0 |]; y = [| e4 1 |]; z = [||] }
  | 2 ->
      { P.id = n + 1; op = P.Sqrt; tier = P.Mf3; sla = None; deadline_ms = None;
        prog = [];
        x = [| [| v 0; v 0 *. 1e-17; v 0 *. 1e-34 |] |]; y = [||]; z = [||] }
  | _ ->
      { P.id = n + 1; op = P.Div; tier = P.Mf2; sla = Some 60; deadline_ms = None;
        prog = []; x = [| e2 0 |]; y = [| e2 1 |]; z = [||] }

let test_armed_server_bitwise () =
  let s =
    match Chaos.Plan.find "syscall-noise" with
    | Some s -> s
    | None -> Alcotest.fail "syscall-noise scenario missing"
  in
  let path = fresh_sock () in
  Runtime.Sched.with_sched ~workers:2 (fun sched ->
      I.arm ~seed:0 s.Chaos.Plan.seam_rules;
      Fun.protect
        ~finally:(fun () -> I.disarm ())
        (fun () ->
          let srv =
            Serve.Server.start ~sched ~addr:(Serve.Server.Unix_path path)
              ~queue_capacity:64 ~max_batch:8 ~window_us:100. ()
          in
          Fun.protect
            ~finally:(fun () -> Serve.Server.stop srv)
            (fun () ->
              let cl =
                Serve.Client.connect_sockaddr ~deadline_ms:10_000
                  (Unix.ADDR_UNIX path)
              in
              Fun.protect
                ~finally:(fun () -> Serve.Client.close cl)
                (fun () ->
                  for n = 0 to 39 do
                    let req = chaos_req n in
                    let expect =
                      match Serve.Batcher.eval_one req with
                      | Ok e -> e
                      | Error e -> Alcotest.fail e
                    in
                    match Serve.Client.call_retry ~seed:0 cl req with
                    | P.Result { result; _ } ->
                        Alcotest.(check bool)
                          (Printf.sprintf "request %d bitwise under noise" n)
                          true
                          (elements_bits_equal result expect)
                    | _ ->
                        Alcotest.fail
                          (Printf.sprintf "request %d not served under noise" n)
                  done))))

let () =
  Alcotest.run "chaos"
    [ ( "rng",
        [ Alcotest.test_case "hash/uniform determinism" `Quick
            test_rng_deterministic;
          Alcotest.test_case "backoff schedule" `Quick test_rng_backoff ] );
      ( "plan",
        [ Alcotest.test_case "schedule determinism" `Quick
            test_plan_deterministic;
          Alcotest.test_case "matrix lookup" `Quick test_plan_lookup ] );
      ( "injector",
        [ Alcotest.test_case "count-based schedule" `Quick
            test_injector_schedule;
          Alcotest.test_case "disarmed is zero-allocation" `Quick
            test_injector_disarmed_zero_alloc ] );
      ( "admission",
        [ Alcotest.test_case "priority displacement" `Quick
            test_admission_displacement ] );
      ( "client",
        [ Alcotest.test_case "read deadline against a mute peer" `Quick
            test_client_deadline ] );
      ( "server",
        [ Alcotest.test_case "armed syscall seams stay bitwise" `Slow
            test_armed_server_bitwise ] ) ]
