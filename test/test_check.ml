(* Tests for the differential audit subsystem itself: the mutation
   sanity check (a harness that cannot catch a known-broken
   renormalization proves nothing), the shrinker, and a short real
   campaign that must come back clean. *)

let test_mutation_caught () =
  match Check.Fuzz.self_test () with
  | Error msg -> Alcotest.fail msg
  | Ok (finding, shrunk, terms) ->
      Alcotest.(check bool)
        "sloppy_add flagged on a cancellation-family class" true
        (match finding.Check.Differ.kind with
        | Check.Differ.Bound_exceeded | Check.Differ.Nonfinite_result -> true
        | _ -> false);
      Alcotest.(check bool) "shrunk to <= 4 nonzero terms" true (terms <= 4);
      Alcotest.(check int) "shrink preserves operand count" 2 (Array.length shrunk)

let test_shrink_minimizes () =
  (* Failing check: "operand 0 still contains a component > 1".  The
     shrinker must zero everything else and simplify the witness to a
     power of two. *)
  let keep inputs = Array.exists (fun v -> Float.abs v > 1.0) inputs.(0) in
  let inputs = [| [| 3.5; 0.25; 100.0; 1e-9 |]; [| 7.0; 2.0 |] |] in
  let shrunk = Check.Shrink.shrink ~keep inputs in
  Alcotest.(check bool) "still failing" true (keep shrunk);
  Alcotest.(check int) "one surviving term" 1 (Check.Shrink.nonzero_terms shrunk);
  let survivor = Array.concat (Array.to_list shrunk) |> Array.to_list |> List.filter (fun v -> v <> 0.0) in
  (match survivor with
  | [ v ] ->
      (* the 100.0 witness simplifies to the power of two in its binade *)
      Alcotest.(check (float 0.0)) "simplified to a power of two" 64.0 v
  | _ -> Alcotest.fail "expected exactly one surviving component")

let test_shrink_keeps_original_on_minimal () =
  (* Already-minimal input: nothing to do, nothing corrupted. *)
  let keep inputs = inputs.(0).(0) = 1.0 in
  let shrunk = Check.Shrink.shrink ~keep [| [| 1.0 |] |] in
  Alcotest.(check (float 0.0)) "untouched" 1.0 shrunk.(0).(0)

let test_short_campaign_clean () =
  let cfg = { Check.Fuzz.default with Check.Fuzz.cases = 400; seed = 7 } in
  let report = Check.Fuzz.run cfg in
  if not (Check.Fuzz.passed report) then begin
    List.iter
      (fun f ->
        Printf.eprintf "FAIL %s %s %s\n" f.Check.Fuzz.finding.Check.Differ.impl
          (Check.Corpus.op_name f.Check.Fuzz.finding.Check.Differ.op)
          (Check.Differ.kind_name f.Check.Fuzz.finding.Check.Differ.kind))
      report.Check.Fuzz.failures;
    Alcotest.failf "short campaign found %d failure(s)" report.Check.Fuzz.failure_count
  end;
  Alcotest.(check bool) "scalar cases ran" true (report.Check.Fuzz.scalar_cases >= 1200);
  (* Every gated row must have recorded real measurements, and the batch
     rows must mirror their scalar twins exactly (same count, same max —
     they are bitwise-identical results). *)
  List.iter
    (fun row ->
      if row.Check.Fuzz.gated && row.Check.Fuzz.op = "add" then
        Alcotest.(check bool)
          (Printf.sprintf "%s add measured" row.Check.Fuzz.impl)
          true
          (Check.Ulp_stats.count row.Check.Fuzz.stats > 0))
    report.Check.Fuzz.rows;
  let find impl op =
    List.find
      (fun r -> r.Check.Fuzz.impl = impl && r.Check.Fuzz.op = op)
      report.Check.Fuzz.rows
  in
  List.iter
    (fun (scalar, batch) ->
      List.iter
        (fun op ->
          let s = find scalar op and b = find batch op in
          Alcotest.(check int)
            (Printf.sprintf "%s/%s %s: same case count" scalar batch op)
            (Check.Ulp_stats.count s.Check.Fuzz.stats)
            (Check.Ulp_stats.count b.Check.Fuzz.stats);
          Alcotest.(check (float 0.0))
            (Printf.sprintf "%s/%s %s: same max error" scalar batch op)
            (Check.Ulp_stats.max_ulps s.Check.Fuzz.stats)
            (Check.Ulp_stats.max_ulps b.Check.Fuzz.stats))
        [ "add"; "sub"; "mul"; "dot" ])
    [ ("mf2", "mf2-batch"); ("mf3", "mf3-batch"); ("mf4", "mf4-batch") ]

let test_report_json_wellformed () =
  let cfg =
    { Check.Fuzz.default with Check.Fuzz.cases = 50; tiers = [ 2 ]; ops = [ Check.Corpus.Add ] }
  in
  let report = Check.Fuzz.run cfg in
  let s = Check.Json_out.to_string (Check.Fuzz.to_json report) in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "mentions schema" true (contains s "fpan-check/1");
  Alcotest.(check bool) "carries results" true (contains s "\"results\"")

let () =
  Alcotest.run "check"
    [ ( "audit-harness",
        [ Alcotest.test_case "mutation self-test" `Quick test_mutation_caught;
          Alcotest.test_case "shrinker minimizes" `Quick test_shrink_minimizes;
          Alcotest.test_case "shrinker no-op on minimal" `Quick test_shrink_keeps_original_on_minimal;
          Alcotest.test_case "short campaign clean" `Quick test_short_campaign_clean;
          Alcotest.test_case "report json" `Quick test_report_json_wellformed ] ) ]
