(* The serving layer's contract: wire codec exactness (hex-float
   transport of NaN / infinities / signed zero / subnormals), deframer
   reassembly under arbitrary fragmentation, bitwise equality of served
   batched responses against the scalar path for every op x tier over
   Check.Corpus adversarial operands, the admission bound with explicit
   shed responses, deadline sheds, and the zero-loss graceful drain. *)

module P = Serve.Protocol
module J = Obs.Json_out

let bits = Int64.bits_of_float

let check_elements msg (a : float array array) (b : float array array) =
  Alcotest.(check int) (msg ^ ": element count") (Array.length a) (Array.length b);
  Array.iteri
    (fun i ea ->
      let eb = b.(i) in
      Alcotest.(check int) (msg ^ ": component count") (Array.length ea) (Array.length eb);
      Array.iteri
        (fun j c ->
          Alcotest.(check int64)
            (Printf.sprintf "%s: element %d component %d" msg i j)
            (bits c) (bits eb.(j)))
        ea)
    a

(* --- codec ----------------------------------------------------------- *)

let specials =
  [| Float.nan; Float.infinity; Float.neg_infinity; -0.0; 0.0; 4.9e-324;
     -4.9e-324; Float.max_float; Float.min_float; 1.0; -1.5 |]

let test_request_roundtrip () =
  let reqs =
    [ { P.id = 7; op = P.Add; tier = P.Mf2; sla = None; deadline_ms = Some 12.5; prog = [];
        x = [| [| 1.0; 4.9e-324 |] |]; y = [| [| Float.nan; -0.0 |] |]; z = [||] };
      { P.id = 8; op = P.Dot; tier = P.Mf3; sla = None; deadline_ms = None; prog = [];
        x = [| [| Float.infinity; 0.0; -0.0 |]; [| 1.0; 1e-300; 4.9e-324 |] |];
        y = [| [| -1.0; 2.0; 3.0 |]; [| Float.neg_infinity; 0.5; -0.25 |] |]; z = [||] };
      { P.id = 9; op = P.Sqrt; tier = P.Mf4; sla = None; deadline_ms = None; prog = [];
        x = [| [| 2.0; 1e-17; 1e-34; 4.9e-324 |] |]; y = [||]; z = [||] };
      { P.id = 10; op = P.Program; tier = P.Mf2; sla = None; deadline_ms = None;
        prog = [ "axpy"; "dot" ];
        x = [| [| 1.0; 4.9e-324 |] |];
        y = [| [| 2.0; -0.0 |]; [| 0.5; 1e-300 |] |];
        z = [| [| Float.nan; 3.0 |] |] };
      (* an sla request: v2 frame, tier derived from the operand width *)
      { P.id = 11; op = P.Mul; tier = P.Mf2; sla = Some 80; deadline_ms = None; prog = [];
        x = [| [| 1.5; 4.9e-324 |] |]; y = [| [| 0.75; -0.0 |] |]; z = [||] } ]
  in
  List.iter
    (fun r ->
      let doc = J.parse_exn (J.to_string (P.request_to_json r)) in
      match P.request_of_json doc with
      | Error e -> Alcotest.fail ("request did not round-trip: " ^ e)
      | Ok r' ->
          Alcotest.(check int) "id" r.P.id r'.P.id;
          Alcotest.(check string) "op" (P.op_name r.P.op) (P.op_name r'.P.op);
          Alcotest.(check string) "tier" (P.tier_name r.P.tier) (P.tier_name r'.P.tier);
          Alcotest.(check (option int)) "sla" r.P.sla r'.P.sla;
          Alcotest.(check (list string)) "prog" r.P.prog r'.P.prog;
          check_elements "x" r.P.x r'.P.x;
          check_elements "y" r.P.y r'.P.y;
          check_elements "z" r.P.z r'.P.z)
    reqs;
  (* every special double survives the hex transport bitwise *)
  let x = Array.map (fun f -> [| f; 0.0 |]) specials in
  let r =
    { P.id = 1; op = P.Sum; tier = P.Mf2; sla = None; deadline_ms = None; prog = []; x;
      y = [||]; z = [||] }
  in
  match P.request_of_json (J.parse_exn (J.to_string (P.request_to_json r))) with
  | Error e -> Alcotest.fail e
  | Ok r' -> check_elements "specials" x r'.P.x

let test_response_roundtrip () =
  let resps =
    [ P.Result
        { id = 3; result = Array.map (fun f -> [| f; -0.0 |]) specials; batch = 17;
          chosen = None; bound = None };
      (* an sla response: chosen tier + certified bound ride the frame *)
      P.Result
        { id = 6; result = [| [| 1.5; 4.9e-324 |] |]; batch = 1; chosen = Some "mf2";
          bound = Some 1.25e-30 };
      P.Shed { id = 4; reason = "queue_full" };
      P.Failed { id = 5; error = "no such op" } ]
  in
  List.iter
    (fun resp ->
      match P.response_of_json (J.parse_exn (J.to_string (P.response_to_json resp))) with
      | Error e -> Alcotest.fail e
      | Ok got -> (
          Alcotest.(check int) "id" (P.response_id resp) (P.response_id got);
          match (resp, got) with
          | P.Result a, P.Result b ->
              check_elements "result" a.result b.result;
              Alcotest.(check int) "batch" a.batch b.batch;
              Alcotest.(check (option string)) "chosen" a.chosen b.chosen;
              Alcotest.(check bool) "bound bitwise" true
                (match (a.bound, b.bound) with
                | None, None -> true
                | Some u, Some v -> Int64.equal (bits u) (bits v)
                | _ -> false)
          | P.Shed a, P.Shed b -> Alcotest.(check string) "reason" a.reason b.reason
          | P.Failed a, P.Failed b -> Alcotest.(check string) "error" a.error b.error
          | _ -> Alcotest.fail "response kind changed in flight"))
    resps

let test_request_validation () =
  let reject msg json =
    match P.request_of_json (J.parse_exn json) with
    | Ok _ -> Alcotest.fail (msg ^ ": accepted")
    | Error _ -> ()
  in
  reject "unknown op"
    {|{"schema":"fpan-serve/1","id":1,"op":"cbrt","tier":"mf2","x":[["0x1p+0","0x0p+0"]]}|};
  reject "unknown tier"
    {|{"schema":"fpan-serve/1","id":1,"op":"add","tier":"mf9","x":[["0x1p+0"]]}|};
  reject "wrong component count"
    {|{"schema":"fpan-serve/1","id":1,"op":"sqrt","tier":"mf3","x":[["0x1p+0","0x0p+0"]]}|};
  reject "missing y"
    {|{"schema":"fpan-serve/1","id":1,"op":"mul","tier":"mf2","x":[["0x1p+0","0x0p+0"]]}|};
  reject "unknown key"
    {|{"schema":"fpan-serve/1","id":1,"op":"stats","junk":true}|};
  reject "bad schema" {|{"schema":"fpan-serve/9","id":1,"op":"stats"}|};
  reject "sla and tier together"
    {|{"schema":"fpan-serve/2","id":1,"op":"add","tier":"mf2","sla":80,"x":[["0x1p+0","0x0p+0"]],"y":[["0x1p+0","0x0p+0"]]}|};
  reject "sla on an uncertifiable op"
    {|{"schema":"fpan-serve/2","id":1,"op":"exp","sla":80,"x":[["0x1p+0","0x0p+0"]]}|};
  reject "sla out of range"
    {|{"schema":"fpan-serve/2","id":1,"op":"add","sla":500,"x":[["0x1p+0","0x0p+0"]],"y":[["0x1p+0","0x0p+0"]]}|};
  reject "sla with non-uniform operand widths"
    {|{"schema":"fpan-serve/2","id":1,"op":"add","sla":80,"x":[["0x1p+0","0x0p+0"]],"y":[["0x1p+0"]]}|};
  reject "sla with non-finite operands"
    {|{"schema":"fpan-serve/2","id":1,"op":"add","sla":80,"x":[["inf"]],"y":[["0x1p+0"]]}|};
  reject "axpy length mismatch"
    {|{"schema":"fpan-serve/1","id":1,"op":"axpy","tier":"mf2","x":[["0x1p+0","0x0p+0"]],"y":[["0x1p+0","0x0p+0"]]}|};
  reject "unknown program chain"
    {|{"schema":"fpan-serve/1","id":1,"op":"program","tier":"mf2","prog":["dot","sum"],"x":[["0x1p+0","0x0p+0"]]}|};
  reject "program without prog"
    {|{"schema":"fpan-serve/1","id":1,"op":"program","tier":"mf2","x":[["0x1p+0","0x0p+0"]]}|};
  reject "prog on a plain op"
    {|{"schema":"fpan-serve/1","id":1,"op":"sum","tier":"mf2","prog":["sum"],"x":[["0x1p+0","0x0p+0"]]}|};
  reject "z on a plain op"
    {|{"schema":"fpan-serve/1","id":1,"op":"sum","tier":"mf2","x":[["0x1p+0","0x0p+0"]],"z":[["0x1p+0","0x0p+0"]]}|};
  reject "program axpy;dot missing z"
    {|{"schema":"fpan-serve/1","id":1,"op":"program","tier":"mf2","prog":["axpy","dot"],"x":[["0x1p+0","0x0p+0"]],"y":[["0x1p+0","0x0p+0"],["0x1p+1","0x0p+0"]]}|}

let test_deframer_fragmentation () =
  let payloads = [ "alpha"; ""; String.make 5000 'x'; "{\"last\":1}" ] in
  let stream = String.concat "" (List.map P.frame_of_string payloads) in
  (* every chunk size reassembles the same frames *)
  List.iter
    (fun chunk ->
      let d = P.deframer () in
      let got = ref [] in
      let pos = ref 0 in
      let n = String.length stream in
      while !pos < n do
        let len = min chunk (n - !pos) in
        let b = Bytes.of_string (String.sub stream !pos len) in
        (match P.feed d b len with
        | Ok frames -> got := !got @ frames
        | Error e -> Alcotest.fail e);
        pos := !pos + len
      done;
      Alcotest.(check (list string))
        (Printf.sprintf "chunk=%d" chunk)
        payloads !got)
    [ 1; 2; 3; 4; 5; 7; 4096; String.length stream ];
  (* oversized length prefix is refused *)
  let d = P.deframer () in
  let evil = Bytes.create 4 in
  Bytes.set_int32_be evil 0 (Int32.of_int (P.max_frame + 1));
  match P.feed d evil 4 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "oversized frame accepted"

(* A near-1-MiB frame arriving in 64 KiB reads, with a small frame
   straddling the tail: exercises the deframer's buffer growth,
   compaction, and cursor-reset paths. *)
let test_deframer_large_frame () =
  let big = String.init (1 lsl 20) (fun i -> Char.chr (i land 0xff)) in
  let payloads = [ big; "tail" ] in
  let stream = String.concat "" (List.map P.frame_of_string payloads) in
  let d = P.deframer () in
  let got = ref [] in
  let pos = ref 0 in
  let n = String.length stream in
  while !pos < n do
    let len = min 65536 (n - !pos) in
    let b = Bytes.of_string (String.sub stream !pos len) in
    (match P.feed d b len with
    | Ok frames -> got := !got @ frames
    | Error e -> Alcotest.fail e);
    pos := !pos + len
  done;
  Alcotest.(check (list string)) "large frame reassembles" payloads !got

(* --- server fixture -------------------------------------------------- *)

let sock_dir =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "fpan_serve_%d" (Unix.getpid ()))
  in
  (try Unix.mkdir dir 0o700 with Unix.Unix_error (EEXIST, _, _) -> ());
  at_exit (fun () ->
      (try
         Array.iter
           (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
           (Sys.readdir dir)
       with Sys_error _ -> ());
      try Unix.rmdir dir with Unix.Unix_error _ -> ());
  dir

let sock_counter = ref 0

let fresh_sock () =
  incr sock_counter;
  Filename.concat sock_dir
    (Printf.sprintf "serve_test_%d_%d.sock" (Unix.getpid ()) !sock_counter)

let with_server ?queue_capacity ?max_batch ?window_us f =
  let path = fresh_sock () in
  Runtime.Sched.with_sched ~workers:2 (fun sched ->
      let srv =
        Serve.Server.start ~sched ~addr:(Serve.Server.Unix_path path) ?queue_capacity
          ?max_batch ?window_us ()
      in
      Fun.protect
        ~finally:(fun () -> Serve.Server.stop srv)
        (fun () -> f srv (Serve.Server.Unix_path path)))

let mk_req ?sla ?deadline_ms ?(prog = []) ?(z = [||]) ~id ~op ~tier ~x ~y () =
  { P.id; op; tier; sla; deadline_ms; prog; x; y; z }

let stats_int doc k =
  match Option.bind (J.member k doc) J.to_num with
  | Some f -> int_of_float f
  | None -> Alcotest.fail ("stats missing " ^ k)

(* --- bitwise server vs scalar over the adversarial corpus ------------ *)

let corpus_operands ~terms n =
  let rng = Random.State.make [| 0x5e7e; terms |] in
  Array.init n (fun i ->
      let c = Check.Corpus.scalar_case rng ~terms i in
      (c.Check.Corpus.x, c.Check.Corpus.y))

(* Requests for one (op, tier), ids from [first_id]; returns them with
   the next free id. *)
let requests_for_op ~tier ~op ~first_id =
  let terms = P.tier_terms tier in
  let ops = corpus_operands ~terms 24 in
  let reqs =
    match op with
    | P.Add | P.Mul | P.Div ->
        Array.to_list
          (Array.mapi
             (fun i (x, y) ->
               mk_req ~id:(first_id + i) ~op ~tier ~x:[| x |] ~y:[| y |] ())
             ops)
    | P.Sqrt | P.Exp | P.Log | P.Sin ->
        Array.to_list
          (Array.mapi
             (fun i (x, _) -> mk_req ~id:(first_id + i) ~op ~tier ~x:[| x |] ~y:[||] ())
             ops)
    | P.Dot ->
        let xs = Array.map fst ops and ys = Array.map snd ops in
        [ mk_req ~id:first_id ~op ~tier ~x:xs ~y:ys () ]
    | P.Axpy ->
        let xs = Array.map fst ops in
        let ys = Array.append [| fst ops.(0) |] (Array.map snd ops) in
        [ mk_req ~id:first_id ~op ~tier ~x:xs ~y:ys () ]
    | P.Sum -> [ mk_req ~id:first_id ~op ~tier ~x:(Array.map fst ops) ~y:[||] () ]
    | P.Poly_eval ->
        [ mk_req ~id:first_id ~op ~tier
            ~x:(Array.sub (Array.map fst ops) 0 8)
            ~y:[| snd ops.(1) |] () ]
    | P.Program ->
        (* one request per fused chain, over the same corpus operands *)
        let xs = Array.map fst ops and ys = Array.map snd ops in
        [ mk_req ~id:first_id ~op ~tier ~prog:[ "sum" ] ~x:xs ~y:[||] ();
          mk_req ~id:(first_id + 1) ~op ~tier ~prog:[ "mul"; "sum" ] ~x:xs ~y:ys ();
          mk_req ~id:(first_id + 2) ~op ~tier ~prog:[ "axpy"; "dot" ] ~x:xs
            ~y:(Array.append [| fst ops.(0) |] ys)
            ~z:xs () ]
    | P.Stats -> []
  in
  (reqs, first_id + List.length reqs)

let test_bitwise_vs_scalar () =
  with_server ~queue_capacity:512 ~max_batch:64 ~window_us:2000. (fun _srv addr ->
      let cl = Serve.Client.connect addr in
      Fun.protect
        ~finally:(fun () -> Serve.Client.close cl)
        (fun () ->
          List.iter
            (fun tier ->
              let next = ref 1 in
              let reqs =
                List.concat_map
                  (fun op ->
                    let rs, nid = requests_for_op ~tier ~op ~first_id:!next in
                    next := nid;
                    rs)
                  P.compute_ops
              in
              let resps = Serve.Client.call_many cl reqs in
              List.iter2
                (fun (req : P.request) resp ->
                  let label =
                    Printf.sprintf "%s/%s id=%d" (P.tier_name tier)
                      (P.op_name req.P.op) req.P.id
                  in
                  match resp with
                  | P.Result { result; batch; _ } -> (
                      Alcotest.(check bool) (label ^ ": batch >= 1") true (batch >= 1);
                      match Serve.Batcher.eval_one req with
                      | Ok expect -> check_elements label expect result
                      | Error e -> Alcotest.fail (label ^ ": scalar path failed: " ^ e))
                  | P.Shed { reason; _ } -> Alcotest.fail (label ^ ": shed " ^ reason)
                  | P.Failed { error; _ } -> Alcotest.fail (label ^ ": " ^ error)
                  | P.Stats_reply _ -> Alcotest.fail (label ^ ": stats?"))
                reqs resps)
            [ P.Mf2; P.Mf3; P.Mf4 ]))

(* Batching actually happened and still matched the scalar path: a
   pipelined burst of adds must land in micro-batches larger than 1
   (window 50 ms, far beyond the burst's arrival spread). *)
let test_batches_form () =
  with_server ~queue_capacity:512 ~max_batch:128 ~window_us:50_000. (fun _srv addr ->
      let cl = Serve.Client.connect addr in
      Fun.protect
        ~finally:(fun () -> Serve.Client.close cl)
        (fun () ->
          let reqs =
            List.init 64 (fun i ->
                mk_req ~id:(i + 1) ~op:P.Add ~tier:P.Mf2
                  ~x:[| [| float_of_int i; 1e-20 |] |]
                  ~y:[| [| 1.0; -1e-21 |] |] ())
          in
          let resps = Serve.Client.call_many cl reqs in
          let max_batch_seen =
            List.fold_left
              (fun acc r ->
                match r with P.Result { batch; _ } -> max acc batch | _ -> acc)
              0 resps
          in
          Alcotest.(check bool) "micro-batches formed" true (max_batch_seen > 1)))

(* --- adaptive SLA requests through the server ------------------------ *)

let sla_requests () =
  (* mixed ops and budgets over width-2 operands (the ladder starts at
     mf2 for all of them, so the budget alone drives escalation) *)
  let e i k =
    let v = 1.0 +. (float_of_int ((17 * i) + k) /. 64.0) in
    [| v; v *. 1e-18 |]
  in
  let next = ref 0 in
  let fresh () = incr next; !next in
  List.concat_map
    (fun q ->
      [ mk_req ~sla:q ~id:(fresh ()) ~op:P.Add ~tier:P.Mf2 ~x:[| e 1 0 |]
          ~y:[| e 2 1 |] ();
        mk_req ~sla:q ~id:(fresh ()) ~op:P.Mul ~tier:P.Mf2 ~x:[| e 3 0 |]
          ~y:[| e 4 1 |] ();
        mk_req ~sla:q ~id:(fresh ()) ~op:P.Div ~tier:P.Mf2 ~x:[| e 5 0 |]
          ~y:[| e 6 1 |] ();
        mk_req ~sla:q ~id:(fresh ()) ~op:P.Dot ~tier:P.Mf2
          ~x:(Array.init 4 (fun i -> e i 0))
          ~y:(Array.init 4 (fun i -> e i 1))
          ();
        mk_req ~sla:q ~id:(fresh ()) ~op:P.Sum ~tier:P.Mf2
          ~x:(Array.init 5 (fun i -> e i 2))
          ~y:[||] () ])
    [ 20; 60; 100; 140; 180 ]

let test_sla_end_to_end () =
  with_server ~queue_capacity:256 ~max_batch:32 ~window_us:1000. (fun srv addr ->
      let cl = Serve.Client.connect addr in
      Fun.protect
        ~finally:(fun () -> Serve.Client.close cl)
        (fun () ->
          let reqs = sla_requests () in
          let resps = Serve.Client.call_many cl reqs in
          List.iter2
            (fun (req : P.request) resp ->
              let q = Option.get req.P.sla in
              let label = Printf.sprintf "%s/sla=%d id=%d" (P.op_name req.P.op) q req.P.id in
              match resp with
              | P.Result { result; chosen; bound; _ } -> (
                  let chosen =
                    match chosen with
                    | Some c -> c
                    | None -> Alcotest.fail (label ^ ": no chosen tier on the reply")
                  in
                  let bound =
                    match bound with
                    | Some b -> b
                    | None -> Alcotest.fail (label ^ ": no certified bound on the reply")
                  in
                  (* the certificate honours the SLA threshold *)
                  (match
                     Adaptive.Sla.of_wire ~op:(P.op_name req.P.op) ~prog:req.P.prog
                   with
                  | None -> Alcotest.fail (label ^ ": op not certifiable?")
                  | Some op ->
                      let inp =
                        { Adaptive.Sla.x = req.P.x; y = req.P.y; z = req.P.z }
                      in
                      let scale = Adaptive.Certify.scale op inp in
                      Alcotest.(check bool) (label ^ ": bound within threshold") true
                        (bound <= Adaptive.Certify.threshold ~q ~scale));
                  (* the served answer is bitwise the scalar ladder's, and —
                     on a MultiFloat rung — the direct fixed-tier answer *)
                  (match Serve.Batcher.eval_adaptive req with
                  | Ok o ->
                      check_elements label o.Adaptive.Escalate.result result;
                      Alcotest.(check string) (label ^ ": chosen matches scalar ladder")
                        o.Adaptive.Escalate.chosen chosen
                  | Error e -> Alcotest.fail (label ^ ": scalar ladder failed: " ^ e));
                  match chosen with
                  | "mf2" | "mf3" | "mf4" -> (
                      let terms =
                        match chosen with "mf2" -> 2 | "mf3" -> 3 | _ -> 4
                      in
                      match
                        Serve.Batcher.eval_one (Serve.Batcher.pad_request ~terms req)
                      with
                      | Ok twin -> check_elements (label ^ ": fixed-tier twin") twin result
                      | Error e -> Alcotest.fail (label ^ ": twin failed: " ^ e))
                  | "bigfloat" -> ()
                  | t -> Alcotest.fail (label ^ ": unknown tier " ^ t))
              | P.Shed { reason; _ } -> Alcotest.fail (label ^ ": shed " ^ reason)
              | P.Failed { error; _ } -> Alcotest.fail (label ^ ": " ^ error)
              | P.Stats_reply _ -> Alcotest.fail (label ^ ": stats?"))
            reqs resps;
          (* the stats document saw the SLA traffic *)
          let doc = Serve.Server.stats_doc srv in
          (match Obs.Schema.validate Obs.Schemas.serve_stats doc with
          | Ok () -> ()
          | Error vs -> Alcotest.fail (String.concat "; " vs));
          match J.member "sla" doc with
          | Some sla_doc ->
              Alcotest.(check int) "sla requests counted" (List.length reqs)
                (stats_int sla_doc "requests");
              Alcotest.(check bool) "escalations counted" true
                (stats_int sla_doc "escalations" >= 0)
          | None -> Alcotest.fail "stats missing the sla block"))

(* --- admission bound and explicit sheds ------------------------------ *)

let poison_req ~id ~degree =
  (* one long-running mf4 poly-eval holds the batcher busy *)
  let coeff i = [| 1.0 +. float_of_int i; 1e-17; 1e-34; 1e-51 |] in
  mk_req ~id ~op:P.Poly_eval ~tier:P.Mf4
    ~x:(Array.init degree coeff)
    ~y:[| [| 0.9999999; 1e-18; 1e-35; 1e-52 |] |]
    ()

let test_admission_bound () =
  let cap = 4 in
  with_server ~queue_capacity:cap ~max_batch:1 ~window_us:0. (fun srv addr ->
      let slow = Serve.Client.connect addr in
      let flood = Serve.Client.connect addr in
      Fun.protect
        ~finally:(fun () ->
          Serve.Client.close slow;
          Serve.Client.close flood)
        (fun () ->
          (* fill the batcher (1 executing) and the whole queue (cap) *)
          let n_poison = cap + 1 in
          let poisons =
            List.init n_poison (fun i -> poison_req ~id:(i + 1) ~degree:20_000)
          in
          List.iter (Serve.Client.send slow) poisons;
          (* give the io loop time to ingest the poisons *)
          Unix.sleepf 0.05;
          let n_flood = 40 in
          let floods =
            List.init n_flood (fun i ->
                mk_req ~id:(i + 100) ~op:P.Add ~tier:P.Mf2
                  ~x:[| [| 1.0; 0.0 |] |] ~y:[| [| 2.0; 0.0 |] |] ())
          in
          let flood_resps = Serve.Client.call_many flood floods in
          let shed_full =
            List.length
              (List.filter
                 (function P.Shed { reason = "queue_full"; _ } -> true | _ -> false)
                 flood_resps)
          in
          (* every flooded request was answered, none silently dropped *)
          Alcotest.(check int) "flood responses" n_flood (List.length flood_resps);
          Alcotest.(check bool) "overload produced explicit sheds" true (shed_full > 0);
          List.iter
            (function
              | P.Result _ | P.Shed { reason = "queue_full"; _ } -> ()
              | P.Shed { reason; _ } -> Alcotest.fail ("unexpected shed: " ^ reason)
              | P.Failed { error; _ } -> Alcotest.fail error
              | P.Stats_reply _ -> Alcotest.fail "stats?")
            flood_resps;
          (* the poisons are all answered: served, or refused explicitly *)
          List.iter
            (fun _ ->
              match Serve.Client.recv slow with
              | P.Result _ | P.Shed { reason = "queue_full"; _ } -> ()
              | P.Shed { reason; _ } -> Alcotest.fail ("poison shed: " ^ reason)
              | P.Failed { error; _ } -> Alcotest.fail ("poison failed: " ^ error)
              | P.Stats_reply _ -> Alcotest.fail "stats?")
            poisons;
          (* the bound held: depth never exceeded the capacity *)
          let doc = Serve.Server.stats_doc srv in
          (match Obs.Schema.validate Obs.Schemas.serve_stats doc with
          | Ok () -> ()
          | Error vs -> Alcotest.fail (String.concat "; " vs));
          Alcotest.(check bool) "max depth within bound" true
            (stats_int doc "queue_max_depth" <= cap);
          Alcotest.(check bool) "sheds counted" true
            (stats_int doc "shed_full" >= shed_full)))

let test_deadline_shed () =
  with_server ~queue_capacity:16 ~max_batch:8 ~window_us:5_000. (fun _srv addr ->
      let cl = Serve.Client.connect addr in
      Fun.protect
        ~finally:(fun () -> Serve.Client.close cl)
        (fun () ->
          let req =
            mk_req ~deadline_ms:0.0 ~id:1 ~op:P.Add ~tier:P.Mf2
              ~x:[| [| 1.0; 0.0 |] |] ~y:[| [| 2.0; 0.0 |] |] ()
          in
          match Serve.Client.call cl req with
          | P.Shed { reason = "deadline"; _ } -> ()
          | P.Shed { reason; _ } -> Alcotest.fail ("wrong reason: " ^ reason)
          | P.Result _ -> Alcotest.fail "expired deadline was served"
          | P.Failed { error; _ } -> Alcotest.fail error
          | P.Stats_reply _ -> Alcotest.fail "stats?"))

(* --- bad input on the wire ------------------------------------------- *)

let test_wire_errors () =
  with_server (fun _srv addr ->
      let send_raw payload =
        let fd =
          match addr with
          | Serve.Server.Unix_path p ->
              let fd = Unix.socket ~cloexec:true PF_UNIX SOCK_STREAM 0 in
              Unix.connect fd (ADDR_UNIX p);
              fd
          | _ -> Alcotest.fail "unix fixture expected"
        in
        P.write_frame fd payload;
        let resp = P.read_frame fd in
        Unix.close fd;
        resp
      in
      (* duplicate keys are rejected by the parser, as a Failed reply *)
      (match send_raw {|{"schema":"fpan-serve/1","id":3,"op":"stats","op":"add"}|} with
      | Some payload -> (
          match P.response_of_json (J.parse_exn payload) with
          | Ok (P.Failed _) -> ()
          | Ok _ -> Alcotest.fail "duplicate-key frame was not an error"
          | Error e -> Alcotest.fail e)
      | None -> Alcotest.fail "no reply to duplicate-key frame");
      (* unknown op: Failed with the offending id echoed *)
      match send_raw {|{"schema":"fpan-serve/1","id":42,"op":"cbrt","tier":"mf2"}|} with
      | Some payload -> (
          match P.response_of_json (J.parse_exn payload) with
          | Ok (P.Failed { id; _ }) -> Alcotest.(check int) "id echoed" 42 id
          | Ok _ -> Alcotest.fail "unknown op accepted"
          | Error e -> Alcotest.fail e)
      | None -> Alcotest.fail "no reply to unknown-op frame")

(* One client vanishing with unread replies pending must not take the
   service down: SIGPIPE is ignored, so the failed reply write just
   marks the conn dead and the io domain sweeps (and closes) it. *)
let test_abrupt_disconnect () =
  with_server ~queue_capacity:256 ~max_batch:8 ~window_us:500. (fun _srv addr ->
      let rude = Serve.Client.connect addr in
      let reqs =
        List.init 64 (fun i ->
            mk_req ~id:(i + 1) ~op:P.Add ~tier:P.Mf2
              ~x:[| [| float_of_int i; 0.0 |] |] ~y:[| [| 1.0; 0.0 |] |] ())
      in
      List.iter (Serve.Client.send rude) reqs;
      (* hang up without reading a single reply *)
      Serve.Client.close rude;
      Unix.sleepf 0.1;
      (* the server survived and still serves fresh clients *)
      let cl = Serve.Client.connect addr in
      Fun.protect
        ~finally:(fun () -> Serve.Client.close cl)
        (fun () ->
          let req =
            mk_req ~id:1 ~op:P.Mul ~tier:P.Mf2 ~x:[| [| 3.0; 0.0 |] |]
              ~y:[| [| 7.0; 0.0 |] |] ()
          in
          match Serve.Client.call cl req with
          | P.Result _ -> ()
          | _ -> Alcotest.fail "server unhealthy after abrupt disconnect"))

(* --- stats over the wire --------------------------------------------- *)

let test_wire_stats () =
  with_server (fun _srv addr ->
      let cl = Serve.Client.connect addr in
      Fun.protect
        ~finally:(fun () -> Serve.Client.close cl)
        (fun () ->
          let req =
            mk_req ~id:1 ~op:P.Add ~tier:P.Mf3
              ~x:[| [| 1.0; 1e-20; 1e-40 |] |] ~y:[| [| 2.0; 0.0; 0.0 |] |] ()
          in
          (match Serve.Client.call cl req with
          | P.Result _ -> ()
          | _ -> Alcotest.fail "warm-up request failed");
          let doc = Serve.Client.stats cl in
          (match Obs.Schema.validate Obs.Schemas.serve_stats doc with
          | Ok () -> ()
          | Error vs -> Alcotest.fail (String.concat "; " vs));
          Alcotest.(check bool) "the warm-up was served" true
            (stats_int doc "completed" >= 1)))

(* --- graceful drain loses nothing ------------------------------------ *)

let test_graceful_drain () =
  with_server ~queue_capacity:256 ~max_batch:32 ~window_us:5_000. (fun srv addr ->
      let cl = Serve.Client.connect addr in
      Fun.protect
        ~finally:(fun () -> Serve.Client.close cl)
        (fun () ->
          let n = 100 in
          let reqs =
            List.init n (fun i ->
                mk_req ~id:(i + 1) ~op:P.Mul ~tier:P.Mf2
                  ~x:[| [| float_of_int (i + 1); 1e-18 |] |]
                  ~y:[| [| 3.0; -1e-19 |] |] ())
          in
          List.iter (Serve.Client.send cl) reqs;
          (* let the io loop ingest the burst, then pull the rug *)
          Unix.sleepf 0.05;
          Serve.Server.stop srv;
          let resps = ref [] in
          (try
             for _ = 1 to n do
               resps := Serve.Client.recv cl :: !resps
             done
           with Failure _ -> ());
          let n_result =
            List.length
              (List.filter (function P.Result _ -> true | _ -> false) !resps)
          in
          let n_closed =
            List.length
              (List.filter
                 (function P.Shed { reason = "closed"; _ } -> true | _ -> false)
                 !resps)
          in
          (* every frame got an answer: served or explicitly refused *)
          Alcotest.(check int) "all requests answered" n (List.length !resps);
          Alcotest.(check int) "answers partition into served + closed" n
            (n_result + n_closed);
          (* zero accepted requests were lost *)
          let doc = Serve.Server.stats_doc srv in
          Alcotest.(check int) "completed = accepted" (stats_int doc "accepted")
            (stats_int doc "completed");
          Alcotest.(check int) "served = accepted" (stats_int doc "accepted") n_result;
          (* the listener is down: connecting now fails *)
          match Serve.Client.connect addr with
          | exception Unix.Unix_error _ -> ()
          | cl2 ->
              Serve.Client.close cl2;
              Alcotest.fail "listener still accepting after stop"))

(* Sched.drain_all (the signal-handler path) also drains the server:
   the on_shutdown hook runs before the workers stop. *)
let test_drain_all_hook () =
  let path = fresh_sock () in
  let sched = Runtime.Sched.create ~workers:2 () in
  let srv =
    Serve.Server.start ~sched ~addr:(Serve.Server.Unix_path path) ~max_batch:4
      ~window_us:1000. ()
  in
  let cl = Serve.Client.connect (Serve.Server.Unix_path path) in
  let n = 20 in
  let reqs =
    List.init n (fun i ->
        mk_req ~id:(i + 1) ~op:P.Add ~tier:P.Mf4
          ~x:[| [| 1.0; 1e-17; 1e-34; 1e-51 |] |]
          ~y:[| [| float_of_int i; 0.0; 0.0; 0.0 |] |] ())
  in
  List.iter (Serve.Client.send cl) reqs;
  Unix.sleepf 0.05;
  Runtime.Sched.drain_all ();
  let resps = ref [] in
  (try
     for _ = 1 to n do
       resps := Serve.Client.recv cl :: !resps
     done
   with Failure _ -> ());
  Serve.Client.close cl;
  Alcotest.(check int) "all answered through drain_all" n (List.length !resps);
  let doc = Serve.Server.stats_doc srv in
  Alcotest.(check int) "completed = accepted" (stats_int doc "accepted")
    (stats_int doc "completed")

let () =
  Alcotest.run "serve"
    [ ( "protocol",
        [ Alcotest.test_case "request round-trip" `Quick test_request_roundtrip;
          Alcotest.test_case "response round-trip" `Quick test_response_roundtrip;
          Alcotest.test_case "request validation" `Quick test_request_validation;
          Alcotest.test_case "deframer fragmentation" `Quick test_deframer_fragmentation;
          Alcotest.test_case "deframer large frame" `Quick test_deframer_large_frame ] );
      ( "bitwise",
        [ Alcotest.test_case "server vs scalar, all ops x tiers" `Quick
            test_bitwise_vs_scalar;
          Alcotest.test_case "micro-batches form" `Quick test_batches_form ] );
      ( "sla",
        [ Alcotest.test_case "escalation end to end" `Quick test_sla_end_to_end ] );
      ( "admission",
        [ Alcotest.test_case "bound holds, sheds explicit" `Quick test_admission_bound;
          Alcotest.test_case "deadline shed" `Quick test_deadline_shed;
          Alcotest.test_case "wire errors" `Quick test_wire_errors;
          Alcotest.test_case "abrupt disconnect survived" `Quick test_abrupt_disconnect;
          Alcotest.test_case "wire stats" `Quick test_wire_stats ] );
      ( "drain",
        [ Alcotest.test_case "graceful drain zero loss" `Quick test_graceful_drain;
          Alcotest.test_case "drain_all runs the hook" `Quick test_drain_all_hook ] ) ]
