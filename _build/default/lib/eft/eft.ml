(* Error-free transformations.  See eft.mli for the interface story.

   The [Sys.opaque_identity] barriers are not needed for correctness on
   x86-64/ARM64 (OCaml performs no unsafe floating-point reassociation),
   so the implementations below are straight transliterations of
   Algorithms 1-3 of the paper. *)

let two_sum x y =
  let s = x +. y in
  let x_eff = s -. y in
  let y_eff = s -. x_eff in
  let dx = x -. x_eff in
  let dy = y -. y_eff in
  (s, dx +. dy)

let fast_two_sum x y =
  let s = x +. y in
  let y_eff = s -. x in
  (s, y -. y_eff)

let two_prod x y =
  let p = x *. y in
  (p, Float.fma x y (-.p))

(* 2^27 + 1: Veltkamp's splitting constant for p = 53. *)
let splitter = 134217729.0

let split x =
  let t = splitter *. x in
  let hi = t -. (t -. x) in
  (hi, x -. hi)

let two_prod_dekker x y =
  let p = x *. y in
  let xhi, xlo = split x in
  let yhi, ylo = split y in
  let e1 = (xhi *. yhi) -. p in
  let e2 = e1 +. (xhi *. ylo) in
  let e3 = e2 +. (xlo *. yhi) in
  (p, e3 +. (xlo *. ylo))

let exponent x = if x = 0.0 then min_int else snd (Float.frexp x) - 1

let ulp x =
  if x = 0.0 then 0.0
  else if Float.is_nan x then Float.nan
  else
    (* For normal x, ulp x = 2^(exponent x - 52); ldexp handles the
       subnormal range by flushing gracefully to the smallest step. *)
    let e = exponent x in
    if e - 52 < -1074 then Float.ldexp 1.0 (-1074) else Float.ldexp 1.0 (e - 52)

let is_nonoverlapping a b =
  if b = 0.0 then true
  else if a = 0.0 then false
  else Float.abs b <= 0.5 *. ulp a

let is_nonoverlapping_seq xs =
  let n = Array.length xs in
  let rec check i = i >= n - 1 || (is_nonoverlapping xs.(i) xs.(i + 1) && check (i + 1)) in
  check 0
