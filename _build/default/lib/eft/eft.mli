(** Error-free transformations (EFTs).

    These are the floating-point building blocks of the paper
    "High-Performance Branch-Free Algorithms for Extended-Precision
    Floating-Point Arithmetic" (Zhang & Aiken, SC '25): Algorithm 1
    (TwoSum), Algorithm 2 (TwoProd), and Algorithm 3 (FastTwoSum).

    An EFT simultaneously computes a correctly-rounded floating-point
    operation and the exact rounding error incurred by that operation,
    using only rounded machine-precision operations.  All functions assume
    round-to-nearest-even (the IEEE 754 default, which OCaml inherits) and
    are exact for all finite inputs within the overflow and underflow
    thresholds. *)

val two_sum : float -> float -> float * float
(** [two_sum x y] is [(s, e)] with [s = fl (x + y)] and
    [e = (x + y) - s] exactly (Møller–Knuth, Algorithm 1; 6 flops).
    Valid for all finite [x], [y] with no precondition. *)

val fast_two_sum : float -> float -> float * float
(** [fast_two_sum x y] is [(s, e)] like {!two_sum} (Dekker, Algorithm 3;
    3 flops) but requires [x = 0.], [y = 0.], or
    [exponent x >= exponent y].  Undefined (inexact) otherwise. *)

val two_prod : float -> float -> float * float
(** [two_prod x y] is [(p, e)] with [p = fl (x * y)] and [e = x*y - p]
    exactly (Algorithm 2; 2 flops using a fused multiply-add). *)

val two_prod_dekker : float -> float -> float * float
(** FMA-free variant of {!two_prod} using Dekker/Veltkamp splitting
    (17 flops).  Exact under the same conditions provided [x*y] neither
    overflows nor loses bits to underflow; used to cross-check
    {!two_prod} on hardware without FMA. *)

val split : float -> float * float
(** [split x] is [(hi, lo)] with [x = hi + lo] exactly, where [hi] holds
    the upper 26 bits of the mantissa and [lo] the lower 26 bits
    (Veltkamp splitting; 4 flops). *)

val ulp : float -> float
(** [ulp x] is the unit in the last place of [x]: the gap between [x] and
    the next representable float of larger magnitude, computed from the
    exponent of [x].  [ulp 0. = 0.]. *)

val exponent : float -> int
(** [exponent x] is the IEEE exponent of [x]: the unique [e] such that
    [2^e <= |x| < 2^(e+1)] for normal [x].  [exponent 0.] is [min_int]. *)

val is_nonoverlapping : float -> float -> bool
(** [is_nonoverlapping a b] checks the paper's Eq. 8 invariant between two
    adjacent expansion terms: [|b| <= ulp a /. 2.], treating [b = 0.] as
    always nonoverlapping.  When [a = 0.], requires [b = 0.]. *)

val is_nonoverlapping_seq : float array -> bool
(** Eq. 8 for every adjacent pair of an expansion. *)
